#include "apps/graphchi/model.h"

#include <numeric>

#include "apps/graphchi/engine.h"
#include "apps/graphchi/graph.h"
#include "apps/graphchi/sharder.h"
#include "interp/exec_context.h"
#include "model/ir.h"
#include "runtime/churn.h"
#include "runtime/isolate.h"
#include "support/error.h"

namespace msv::apps::graphchi {

using model::Annotation;
using model::IrBuilder;
using rt::Value;

model::AppModel build_graphchi_app(bool partitioned,
                                   const GraphChiWorkload& workload,
                                   std::shared_ptr<PhaseBreakdown> breakdown) {
  MSV_CHECK_MSG(breakdown != nullptr, "breakdown sink required");
  model::AppModel app;

  auto& sharder_cls = app.add_class(
      "FastSharder",
      partitioned ? Annotation::kUntrusted : Annotation::kNeutral);
  sharder_cls.add_field("unused");
  sharder_cls.add_constructor(0).body_native(
      [](model::NativeCall&) { return Value(); });
  // long shard(long nshards) — phase 1 of Fig. 8.
  sharder_cls.add_method("shard", 1)
      .body_native([workload, breakdown](model::NativeCall& call) {
        Env& env = call.ctx.env();
        const double start = env.clock.seconds();
        FastSharder sharder(env, call.isolate.domain(), call.ctx.io());
        const auto nshards =
            static_cast<std::uint32_t>(call.args[0].as_i64());
        const ShardingResult result =
            sharder.shard(workload.edge_file, nshards, workload.prefix);
        // The Java sharder boxes edges while bucketing/sorting: real
        // allocation churn on this runtime's heap (expensive inside the
        // enclave: MEE on allocation and GC traffic).
        rt::alloc_churn(call.isolate, result.nedges * 60, 2ull << 20);
        breakdown->sharding_seconds += env.clock.seconds() - start;
        return Value(static_cast<std::int64_t>(result.nedges));
      })
      .code_size(9 << 10);

  auto& engine_cls = app.add_class(
      "GraphChiEngine",
      partitioned ? Annotation::kTrusted : Annotation::kNeutral);
  engine_cls.add_field("unused");
  engine_cls.add_constructor(0).body_native(
      [](model::NativeCall&) { return Value(); });
  // double pagerank(long nshards, long iterations) — phase 2 of Fig. 8;
  // returns the rank mass (a correctness fingerprint).
  engine_cls.add_method("pagerank", 2)
      .body_native([workload, breakdown](model::NativeCall& call) {
        Env& env = call.ctx.env();
        const double start = env.clock.seconds();
        // The engine re-derives the sharding metadata from the file
        // layout, as the real engine does from the shard directory.
        ShardingResult sharding;
        sharding.nshards = static_cast<std::uint32_t>(call.args[0].as_i64());
        const auto header =
            read_edge_list_header(call.ctx.io(), workload.edge_file);
        sharding.nvertices = header.nvertices;
        sharding.nedges = header.nedges;
        const std::uint32_t span =
            (sharding.nvertices + sharding.nshards - 1) / sharding.nshards;
        for (std::uint32_t s = 0; s < sharding.nshards; ++s) {
          sharding.intervals.emplace_back(
              s * span, std::min(sharding.nvertices, (s + 1) * span));
          sharding.shard_paths.push_back(workload.prefix + ".shard" +
                                         std::to_string(s));
        }
        sharding.degree_path = workload.prefix + ".deg";

        GraphChiEngine engine(env, call.isolate.domain(), call.ctx.io());
        PageRankProgram pagerank;
        const auto ranks = engine.run(
            sharding, pagerank,
            static_cast<std::uint32_t>(call.args[1].as_i64()),
            workload.prefix);
        // The engine reuses flyweight edge objects; its churn is an order
        // of magnitude lighter than the sharder's.
        rt::alloc_churn(call.isolate,
                        sharding.nedges * 8 *
                            static_cast<std::uint64_t>(call.args[1].as_i64()),
                        1ull << 20);
        breakdown->engine_seconds += env.clock.seconds() - start;
        breakdown->rank_sum =
            std::accumulate(ranks.begin(), ranks.end(), 0.0);
        return Value(breakdown->rank_sum);
      })
      .code_size(14 << 10);

  auto& main_cls = app.add_class("Main", Annotation::kUntrusted);
  main_cls.add_static_method("main", 0)
      .body(IrBuilder()
                .new_object("FastSharder", 0)
                .const_val(Value(static_cast<std::int64_t>(workload.nshards)))
                .call("shard", 1)
                .pop()
                .new_object("GraphChiEngine", 0)
                .const_val(Value(static_cast<std::int64_t>(workload.nshards)))
                .const_val(Value(static_cast<std::int64_t>(
                    workload.pagerank_iterations)))
                .call("pagerank", 2)
                .pop()
                .ret_void()
                .build());
  app.set_main_class("Main");
  app.validate();
  return app;
}

}  // namespace msv::apps::graphchi
