#include "apps/graphchi/engine.h"

#include "support/bytes.h"
#include "support/error.h"

namespace msv::apps::graphchi {
namespace {

constexpr double kPerEdgeCycles = 4000.0;  // ~1 us/edge: GraphChi-Java's
                                            // ChiPointer/DataBlock machinery
constexpr double kPerVertexCycles = 200.0;  // apply + callback dispatch
constexpr std::uint64_t kEdgeTrafficBytes = 12;  // edge + touched value

std::vector<std::uint32_t> load_degrees(shim::IoService& io,
                                        const std::string& path,
                                        std::uint32_t nvertices) {
  std::vector<std::uint8_t> raw(static_cast<std::size_t>(nvertices) * 4);
  const auto f = io.open(path, vfs::OpenMode::kRead);
  MSV_CHECK_MSG(io.read(f, raw.data(), raw.size()) == raw.size(),
                "degree file truncated");
  io.close(f);
  std::vector<std::uint32_t> deg(nvertices);
  ByteReader r(raw.data(), raw.size());
  for (auto& d : deg) d = r.get_u32();
  return deg;
}

void store_values(shim::IoService& io, const std::string& path,
                  const std::vector<double>& values) {
  ByteBuffer buf;
  for (const auto v : values) buf.put_f64(v);
  const auto f = io.open(path, vfs::OpenMode::kWrite);
  io.write(f, buf.data(), buf.size());
  io.flush(f);
  io.close(f);
}

std::vector<double> load_values(shim::IoService& io, const std::string& path,
                                std::uint32_t nvertices) {
  std::vector<std::uint8_t> raw(static_cast<std::size_t>(nvertices) * 8);
  const auto f = io.open(path, vfs::OpenMode::kRead);
  MSV_CHECK_MSG(io.read(f, raw.data(), raw.size()) == raw.size(),
                "vertex data truncated");
  io.close(f);
  std::vector<double> values(nvertices);
  ByteReader r(raw.data(), raw.size());
  for (auto& v : values) v = r.get_f64();
  return values;
}

}  // namespace

std::vector<double> GraphChiEngine::run(const ShardingResult& sharding,
                                        const GatherApplyProgram& program,
                                        std::uint32_t iterations,
                                        const std::string& prefix) {
  const std::string vdata_path = prefix + ".vdata";
  const std::uint64_t buffer_region =
      domain_.register_region(prefix + "/membudget");
  const std::uint64_t buffer_pages =
      config_.membudget_bytes / env_.cost.page_bytes;
  const std::vector<std::uint32_t> out_degree =
      load_degrees(io_, sharding.degree_path, sharding.nvertices);

  // Initialise vertex data on disk.
  std::vector<double> values(sharding.nvertices);
  for (std::uint32_t v = 0; v < sharding.nvertices; ++v) {
    values[v] = program.init_value(v);
  }
  store_values(io_, vdata_path, values);

  for (std::uint32_t iter = 0; iter < iterations; ++iter) {
    ++stats_.iterations;
    // The out-of-core engine re-reads vertex data at the start of every
    // pass and writes it back at the end.
    values = load_values(io_, vdata_path, sharding.nvertices);
    std::vector<double> gathered(sharding.nvertices, 0.0);

    for (std::uint32_t s = 0; s < sharding.nshards; ++s) {
      ++stats_.shard_loads;
      const auto f = io_.open(sharding.shard_paths[s], vfs::OpenMode::kRead);
      std::uint8_t count_raw[8];
      MSV_CHECK_MSG(io_.read(f, count_raw, 8) == 8, "shard truncated");
      ByteReader count_reader(count_raw, 8);
      std::uint64_t remaining = count_reader.get_u64();

      constexpr std::uint64_t kChunkEdges = 1024;  // 8 KiB buffered stream
      std::vector<std::uint8_t> chunk(kChunkEdges * 8);
      while (remaining > 0) {
        const std::uint64_t want = std::min(kChunkEdges, remaining) * 8;
        MSV_CHECK_MSG(io_.read(f, chunk.data(), want) == want,
                      "shard truncated mid-stream");
        ByteReader r(chunk.data(), want);
        while (!r.done()) {
          const std::uint32_t src = r.get_u32();
          const std::uint32_t dst = r.get_u32();
          gathered[dst] += program.gather(values[src], out_degree[src]);
          ++stats_.edges_processed;
        }
        remaining -= want / 8;
      }
      io_.close(f);
    }

    for (std::uint32_t v = 0; v < sharding.nvertices; ++v) {
      values[v] = program.apply(gathered[v]);
    }

    // Cost of the pass: per-edge gather work + per-vertex apply, plus the
    // memory traffic of streaming edges and vertex values.
    env_.clock.advance(static_cast<Cycles>(
        static_cast<double>(sharding.nedges) * kPerEdgeCycles +
        static_cast<double>(sharding.nvertices) * kPerVertexCycles));
    // Streaming the edges and scattering into the gather array is memory
    // traffic; inside the enclave it pays the MEE factor (Fig. 9's engine
    // slowdown under SGX).
    domain_.charge_traffic(sharding.nedges * kEdgeTrafficBytes +
                           sharding.nvertices * 16);
    // Every pass cycles the engine's block buffers (the membudget). That
    // working set exceeds the EPC, so inside the enclave this is a paging
    // sweep; outside it stays in the page cache.
    domain_.touch_pages(buffer_region, 0, buffer_pages);
    domain_.charge_traffic(config_.membudget_bytes / 2);
    store_values(io_, vdata_path, values);
  }
  return values;
}

}  // namespace msv::apps::graphchi
