// The partitioned GraphChi application of §6.5 (Figs. 8, 9, 11).
//
// "A possible partitioning scheme for the application would be along the
// FastSharder and GraphChiEngine classes. For this we make the
// GraphChiEngine trusted and the FastSharder untrusted."
//
// main() runs the two-phase workflow of Fig. 8: FastSharder splits the
// input graph into shards, then GraphChiEngine computes PageRank over
// them. The phases record their virtual-time spans into a PhaseBreakdown
// so benchmarks can reproduce Fig. 9's stacked bars.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "model/app_model.h"

namespace msv::apps::graphchi {

struct GraphChiWorkload {
  std::string edge_file = "graph.bin";
  std::string prefix = "pr";
  std::uint32_t nshards = 2;
  std::uint32_t pagerank_iterations = 4;
};

// Filled during main(): virtual seconds spent in each phase.
struct PhaseBreakdown {
  double sharding_seconds = 0;
  double engine_seconds = 0;
  double rank_sum = 0;  // sanity check across configurations
};

// `partitioned` selects the paper's scheme (engine @Trusted, sharder
// @Untrusted); otherwise both classes are neutral (for the NoSGX / NoPart
// runners). `breakdown` must outlive the application run.
model::AppModel build_graphchi_app(bool partitioned,
                                   const GraphChiWorkload& workload,
                                   std::shared_ptr<PhaseBreakdown> breakdown);

}  // namespace msv::apps::graphchi
