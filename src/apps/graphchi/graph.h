// Graph representation and RMAT generation for the GraphChi workload
// (§6.5): the paper runs PageRank on synthetic directed graphs generated
// with the R-MAT recursive model [11], varying |V| and |E|.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "shim/io_service.h"
#include "sim/env.h"
#include "support/rng.h"

namespace msv::apps::graphchi {

struct Edge {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  bool operator==(const Edge&) const = default;
};

// R-MAT: recursively pick a quadrant with probabilities (a, b, c, d).
// Self-loops are re-drawn; duplicate edges are allowed, as in the original
// generator. `nvertices` is rounded up to a power of two internally but
// emitted ids stay below the requested count.
std::vector<Edge> generate_rmat(Rng& rng, std::uint32_t nvertices,
                                std::uint64_t nedges, double a = 0.57,
                                double b = 0.19, double c = 0.19);

// Binary edge-list file: u32 vertex count, u64 edge count, then (u32 src,
// u32 dst) pairs. This is the "input graph" of Fig. 8, written/read
// through the I/O service so the costs land on the right side.
void write_edge_list(shim::IoService& io, const std::string& path,
                     std::uint32_t nvertices, const std::vector<Edge>& edges);

struct EdgeListHeader {
  std::uint32_t nvertices = 0;
  std::uint64_t nedges = 0;
};

EdgeListHeader read_edge_list_header(shim::IoService& io,
                                     const std::string& path);

}  // namespace msv::apps::graphchi
