#include "apps/graphchi/graph.h"

#include "support/bytes.h"
#include "support/error.h"

namespace msv::apps::graphchi {

std::vector<Edge> generate_rmat(Rng& rng, std::uint32_t nvertices,
                                std::uint64_t nedges, double a, double b,
                                double c) {
  MSV_CHECK_MSG(nvertices >= 2, "graph needs at least two vertices");
  MSV_CHECK_MSG(a + b + c < 1.0, "quadrant probabilities must sum below 1");
  std::uint32_t scale = 1;
  while ((1u << scale) < nvertices) ++scale;

  std::vector<Edge> edges;
  edges.reserve(nedges);
  while (edges.size() < nedges) {
    std::uint32_t x = 0, y = 0;
    for (std::uint32_t level = 0; level < scale; ++level) {
      const double p = rng.next_double();
      const std::uint32_t bit = 1u << level;
      if (p < a) {
        // top-left: nothing
      } else if (p < a + b) {
        y |= bit;
      } else if (p < a + b + c) {
        x |= bit;
      } else {
        x |= bit;
        y |= bit;
      }
    }
    if (x == y || x >= nvertices || y >= nvertices) continue;
    edges.push_back(Edge{x, y});
  }
  return edges;
}

void write_edge_list(shim::IoService& io, const std::string& path,
                     std::uint32_t nvertices, const std::vector<Edge>& edges) {
  const auto f = io.open(path, vfs::OpenMode::kWrite);
  ByteBuffer header;
  header.put_u32(nvertices);
  header.put_u64(edges.size());
  io.write(f, header.data(), header.size());
  // Chunked writes, like a buffered Java output stream.
  ByteBuffer chunk;
  for (const auto& e : edges) {
    chunk.put_u32(e.src);
    chunk.put_u32(e.dst);
    if (chunk.size() >= (64 << 10)) {
      io.write(f, chunk.data(), chunk.size());
      chunk.clear();
    }
  }
  if (!chunk.empty()) io.write(f, chunk.data(), chunk.size());
  io.flush(f);
  io.close(f);
}

EdgeListHeader read_edge_list_header(shim::IoService& io,
                                     const std::string& path) {
  const auto f = io.open(path, vfs::OpenMode::kRead);
  std::uint8_t raw[12];
  const auto got = io.read(f, raw, sizeof(raw));
  io.close(f);
  MSV_CHECK_MSG(got == sizeof(raw), "edge list truncated: " + path);
  ByteReader r(raw, sizeof(raw));
  EdgeListHeader h;
  h.nvertices = r.get_u32();
  h.nedges = r.get_u64();
  return h;
}

}  // namespace msv::apps::graphchi
