// FastSharder — phase 1 of the GraphChi workflow (Fig. 8).
//
// The input edge list is split into `nshards` shards by destination-vertex
// interval; within each shard, edges are sorted by source vertex so the
// engine can stream them with its parallel sliding windows. Sharding is
// I/O heavy (read the whole edge list, write every shard plus the degree
// file), which is why moving the FastSharder out of the enclave is the
// paper's partitioning win for GraphChi (§6.5).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "shim/io_service.h"
#include "sim/domain.h"
#include "sim/env.h"

namespace msv::apps::graphchi {

struct ShardingResult {
  std::uint32_t nvertices = 0;
  std::uint64_t nedges = 0;
  std::uint32_t nshards = 0;
  // Destination-vertex intervals, one [lo, hi) per shard.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> intervals;
  std::vector<std::string> shard_paths;
  std::string degree_path;  // u32 out-degree per vertex
};

struct SharderStats {
  std::uint64_t edges_read = 0;
  std::uint64_t bytes_written = 0;
};

class FastSharder {
 public:
  FastSharder(Env& env, MemoryDomain& domain, shim::IoService& io)
      : env_(env), domain_(domain), io_(io) {}

  // Shards `edge_file` into `nshards` files "<prefix>.shard<i>" plus
  // "<prefix>.deg".
  ShardingResult shard(const std::string& edge_file, std::uint32_t nshards,
                       const std::string& prefix);

  const SharderStats& stats() const { return stats_; }

 private:
  Env& env_;
  MemoryDomain& domain_;
  shim::IoService& io_;
  SharderStats stats_;
};

}  // namespace msv::apps::graphchi
