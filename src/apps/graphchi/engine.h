// GraphChiEngine — phase 2 of the GraphChi workflow (Fig. 8).
//
// A gather-apply engine over the sharded graph: each iteration streams
// every shard (the "memory shard" of the interval plus the sliding
// windows of the others collapse to a per-shard stream in this
// single-threaded setting), gathers contributions along in-edges and
// applies the vertex update. Vertex values persist in a data file between
// iterations, as in the out-of-core original.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "apps/graphchi/sharder.h"
#include "shim/io_service.h"
#include "sim/domain.h"
#include "sim/env.h"

namespace msv::apps::graphchi {

// Synchronous gather-apply vertex program.
class GatherApplyProgram {
 public:
  virtual ~GatherApplyProgram() = default;
  virtual double init_value(std::uint32_t vertex) const = 0;
  // Contribution of an in-neighbor with value `value` and out-degree
  // `out_degree`.
  virtual double gather(double value, std::uint32_t out_degree) const = 0;
  virtual double apply(double gathered_sum) const = 0;
};

// PageRank [2]: rank = 0.15 + 0.85 * sum(rank(n) / outdeg(n)).
class PageRankProgram final : public GatherApplyProgram {
 public:
  explicit PageRankProgram(double damping = 0.85) : damping_(damping) {}
  double init_value(std::uint32_t) const override { return 1.0; }
  double gather(double value, std::uint32_t out_degree) const override {
    return out_degree == 0 ? 0.0 : value / out_degree;
  }
  double apply(double gathered_sum) const override {
    return (1.0 - damping_) + damping_ * gathered_sum;
  }

 private:
  double damping_;
};

struct EngineStats {
  std::uint64_t iterations = 0;
  std::uint64_t edges_processed = 0;
  std::uint64_t shard_loads = 0;
};

struct EngineConfig {
  // GraphChi's in-memory budget: block buffers, vertex/edge data caches.
  // Far above the ~93 MB of usable EPC, so every in-enclave pass sweeps
  // the page cache through EPC paging — the dominant NoPart penalty of
  // Figs. 9/11.
  std::uint64_t membudget_bytes = 160ull << 20;
};

class GraphChiEngine {
 public:
  // `domain` is the memory domain of the runtime hosting the engine: the
  // per-edge streaming traffic pays the MEE factor when the engine runs
  // inside the enclave (the partitioned configuration keeps it there).
  GraphChiEngine(Env& env, MemoryDomain& domain, shim::IoService& io,
                 EngineConfig config = {})
      : env_(env), domain_(domain), io_(io), config_(config) {}

  // Runs `iterations` synchronous passes; returns the final vertex values
  // (also persisted to "<prefix>.vdata").
  std::vector<double> run(const ShardingResult& sharding,
                          const GatherApplyProgram& program,
                          std::uint32_t iterations,
                          const std::string& prefix);

  const EngineStats& stats() const { return stats_; }

 private:
  Env& env_;
  MemoryDomain& domain_;
  shim::IoService& io_;
  EngineConfig config_;
  EngineStats stats_;
};

}  // namespace msv::apps::graphchi
