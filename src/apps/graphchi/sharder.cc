#include "apps/graphchi/sharder.h"

#include <algorithm>
#include <cmath>

#include "support/bytes.h"
#include "support/error.h"

namespace msv::apps::graphchi {
namespace {

// CPU cost per edge for bucketing and degree counting; sort cost is
// charged per comparison.
constexpr double kPerEdgeCycles = 9000.0;  // ~2.4 us/edge: Java text
                                            // parsing, boxing, shuffling
constexpr double kSortCyclesPerCmp = 25.0;  // comparator object calls

}  // namespace

ShardingResult FastSharder::shard(const std::string& edge_file,
                                  std::uint32_t nshards,
                                  const std::string& prefix) {
  MSV_CHECK_MSG(nshards >= 1, "need at least one shard");

  // Stream the edge list in.
  const auto in = io_.open(edge_file, vfs::OpenMode::kRead);
  std::uint8_t header_raw[12];
  MSV_CHECK_MSG(io_.read(in, header_raw, sizeof(header_raw)) ==
                    sizeof(header_raw),
                "edge list truncated");
  ByteReader header(header_raw, sizeof(header_raw));
  ShardingResult result;
  result.nvertices = header.get_u32();
  result.nedges = header.get_u64();
  result.nshards = nshards;

  // Destination intervals of (nearly) equal vertex span.
  const std::uint32_t span =
      (result.nvertices + nshards - 1) / nshards;
  for (std::uint32_t s = 0; s < nshards; ++s) {
    const std::uint32_t lo = s * span;
    const std::uint32_t hi =
        std::min(result.nvertices, (s + 1) * span);
    result.intervals.emplace_back(lo, hi);
  }

  std::vector<std::vector<std::uint8_t>> buckets(nshards);
  std::vector<std::uint32_t> out_degree(result.nvertices, 0);

  constexpr std::uint64_t kChunkEdges = 1024;  // 8 KiB buffered stream
  std::vector<std::uint8_t> chunk(kChunkEdges * 8);
  std::uint64_t remaining = result.nedges;
  while (remaining > 0) {
    const std::uint64_t want = std::min(kChunkEdges, remaining) * 8;
    const std::uint64_t got = io_.read(in, chunk.data(), want);
    MSV_CHECK_MSG(got == want, "edge list truncated mid-stream");
    ByteReader r(chunk.data(), got);
    while (!r.done()) {
      const std::uint32_t src = r.get_u32();
      const std::uint32_t dst = r.get_u32();
      MSV_CHECK_MSG(src < result.nvertices && dst < result.nvertices,
                    "edge endpoint out of range");
      ++out_degree[src];
      auto& bucket = buckets[std::min<std::uint32_t>(dst / span, nshards - 1)];
      const std::uint32_t words[2] = {src, dst};
      bucket.insert(bucket.end(),
                    reinterpret_cast<const std::uint8_t*>(words),
                    reinterpret_cast<const std::uint8_t*>(words) + 8);
      ++stats_.edges_read;
    }
    remaining -= got / 8;
  }
  io_.close(in);
  env_.clock.advance(static_cast<Cycles>(
      static_cast<double>(result.nedges) * kPerEdgeCycles));
  // Bucketing scatters every edge once.
  domain_.charge_traffic(result.nedges * 8);
  // The sharder preallocates shuffle/sort buffers at GraphChi's memory
  // budget and sweeps them twice (bucket pass + sort pass); inside the
  // enclave the working set exceeds the EPC and pages.
  constexpr std::uint64_t kShuffleBufferBytes = 110ull << 20;
  const std::uint64_t buffer_region =
      domain_.register_region(prefix + "/shuffle");
  const std::uint64_t buffer_pages =
      kShuffleBufferBytes / env_.cost.page_bytes;
  for (int pass = 0; pass < 2; ++pass) {
    domain_.touch_pages(buffer_region, 0, buffer_pages);
    domain_.charge_traffic(kShuffleBufferBytes / 2);
  }

  // Sort each shard by source and write it out.
  for (std::uint32_t s = 0; s < nshards; ++s) {
    auto& raw = buckets[s];
    const std::uint64_t count = raw.size() / 8;
    auto* pairs = reinterpret_cast<std::uint64_t*>(raw.data());
    // Little-endian (src, dst) pairs: sorting the raw u64 orders by dst
    // first; sort via explicit comparator on src.
    std::sort(pairs, pairs + count,
              [](std::uint64_t lhs, std::uint64_t rhs) {
                return static_cast<std::uint32_t>(lhs) <
                       static_cast<std::uint32_t>(rhs);
              });
    if (count > 1) {
      env_.clock.advance(static_cast<Cycles>(
          static_cast<double>(count) *
          std::max(1.0, std::log2(static_cast<double>(count))) *
          kSortCyclesPerCmp));
      domain_.charge_traffic(count * 8 * 2);  // sort reads + writes
    }

    const std::string path = prefix + ".shard" + std::to_string(s);
    const auto out = io_.open(path, vfs::OpenMode::kWrite);
    ByteBuffer shard_header;
    shard_header.put_u64(count);
    io_.write(out, shard_header.data(), shard_header.size());
    // Write in chunks as a buffered stream would.
    constexpr std::uint64_t kWriteChunk = 8 << 10;  // BufferedOutputStream
    for (std::uint64_t off = 0; off < raw.size(); off += kWriteChunk) {
      const std::uint64_t n = std::min<std::uint64_t>(kWriteChunk,
                                                      raw.size() - off);
      io_.write(out, raw.data() + off, n);
      stats_.bytes_written += n;
    }
    io_.flush(out);
    io_.close(out);
    result.shard_paths.push_back(path);
  }

  // Out-degree file, needed by PageRank's gather.
  result.degree_path = prefix + ".deg";
  const auto deg = io_.open(result.degree_path, vfs::OpenMode::kWrite);
  ByteBuffer deg_bytes;
  for (const auto d : out_degree) deg_bytes.put_u32(d);
  io_.write(deg, deg_bytes.data(), deg_bytes.size());
  stats_.bytes_written += deg_bytes.size();
  io_.flush(deg);
  io_.close(deg);
  return result;
}

}  // namespace msv::apps::graphchi
