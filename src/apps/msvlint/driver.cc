#include "apps/msvlint/driver.h"

#include <chrono>
#include <fstream>
#include <sstream>
#include <utility>

#include "analysis/verify.h"
#include "apps/illustrative/bank.h"
#include "apps/synthetic/generator.h"
#include "core/app.h"
#include "dsl/parser.h"
#include "support/error.h"

namespace msv::apps::msvlint {

namespace {

struct Target {
  std::string name;
  model::AppModel app;
};

std::string basename_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

// Assembles the lint targets. Throws ConfigError on unreadable sources.
std::vector<Target> build_targets(const DriverOptions& options) {
  std::vector<Target> targets;
  for (const auto& path : options.dsl_paths) {
    std::ifstream in(path);
    if (!in) throw ConfigError("cannot open " + path);
    std::ostringstream source;
    source << in.rdbuf();
    targets.push_back({basename_of(path), dsl::parse_program(source.str())});
  }
  if (options.bank) {
    targets.push_back({"bank", apps::build_bank_app(/*with_audit=*/true)});
  }
  if (options.micro) {
    targets.push_back({"micro", apps::synthetic::build_micro_app()});
  }
  if (options.synthetic_classes >= 0) {
    apps::synthetic::SyntheticSpec spec;
    spec.n_classes = static_cast<std::uint32_t>(options.synthetic_classes);
    spec.untrusted_fraction = options.synthetic_untrusted;
    targets.push_back(
        {"synthetic-" + std::to_string(spec.n_classes),
         apps::synthetic::generate(spec)});
  }
  return targets;
}

// The GraalVM-agent-style dry run behind --trace-native: execute main in a
// plain native image with call-edge tracing on, so MSV004 can diff what
// native bodies actually invoked against their declared_callees() hints.
std::vector<analysis::NativeEdge> trace_native_edges(const Target& target,
                                                     std::ostream& err) {
  std::vector<analysis::NativeEdge> edges;
  if (target.app.main_class().empty()) {
    err << "msvlint: " << target.name
        << ": no main class, skipping native-edge trace\n";
    return edges;
  }
  try {
    core::NativeApp native(target.app);
    native.context().enable_native_edge_tracing();
    native.run_main();
    for (const auto& edge : native.context().native_edges()) {
      edges.push_back(edge);
    }
  } catch (const Error& e) {
    err << "msvlint: " << target.name
        << ": native-edge trace failed: " << e.what() << "\n";
  }
  return edges;
}

}  // namespace

int run_driver(const DriverOptions& options, std::ostream& out,
               std::ostream& err) {
  if (options.list_rules) {
    for (const auto& rule : analysis::lint_rules()) {
      out << rule.id << "  " << rule.summary << "\n";
    }
    return 0;
  }

  std::vector<Target> targets;
  try {
    targets = build_targets(options);
  } catch (const Error& e) {
    err << "msvlint: " << e.what() << "\n";
    return 2;
  }
  if (targets.empty()) {
    err << "msvlint: no targets (pass a .msv file or --bank/--micro/"
           "--synthetic)\n";
    return 2;
  }

  analysis::Baseline baseline;
  if (!options.baseline_path.empty()) {
    std::ifstream in(options.baseline_path);
    if (!in) {
      err << "msvlint: cannot open baseline " << options.baseline_path << "\n";
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    baseline = analysis::Baseline::parse(text.str());
  }

  analysis::Report total;
  std::string target_names;
  const auto t0 = std::chrono::steady_clock::now();
  for (auto& target : targets) {
    if (!target_names.empty()) target_names += ",";
    target_names += target.name;

    analysis::LintOptions lint_options;
    if (options.trace_native) {
      lint_options.native_edges = trace_native_edges(target, err);
    }
    analysis::Report report;
    try {
      report = options.verify_only ? analysis::verify_app(target.app)
                                   : analysis::lint(target.app, lint_options);
    } catch (const Error& e) {
      err << "msvlint: " << target.name << ": " << e.what() << "\n";
      return 2;
    }
    report.apply_baseline(baseline);
    if (!options.quiet) {
      out << "== " << target.name << ": " << report.diagnostics().size()
          << " finding(s), " << report.errors() << " error(s), "
          << report.warnings() << " warning(s)\n";
      out << report.to_text();
    }
    total.merge(std::move(report));
  }
  total.sort();
  total.stats().wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();

  if (!options.write_baseline_path.empty()) {
    std::ofstream bl(options.write_baseline_path);
    if (!bl) {
      err << "msvlint: cannot write baseline " << options.write_baseline_path
          << "\n";
      return 2;
    }
    bl << total.to_baseline().to_text();
  }
  if (!options.json_path.empty()) {
    const std::vector<std::string> rules =
        options.verify_only ? std::vector<std::string>{"verify"}
                            : analysis::lint_rule_ids();
    const std::string json = total.to_json(rules, total.stats(), target_names);
    if (options.json_path == "-") {
      out << json;
    } else {
      std::ofstream jf(options.json_path);
      if (!jf) {
        err << "msvlint: cannot write " << options.json_path << "\n";
        return 2;
      }
      jf << json;
    }
  }

  out << "msvlint: " << targets.size() << " target(s), "
      << total.stats().methods_analyzed << " method(s), "
      << total.diagnostics().size() << " finding(s): " << total.errors()
      << " error(s), " << total.warnings() << " warning(s)"
      << (total.diagnostics().size() >
                  total.errors() + total.warnings() +
                      total.count(analysis::Severity::kInfo)
              ? " (rest suppressed by baseline)"
              : "")
      << "\n";
  return total.errors() > 0 ? 1 : 0;
}

}  // namespace msv::apps::msvlint
