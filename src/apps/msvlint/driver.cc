#include "apps/msvlint/driver.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <functional>
#include <iomanip>
#include <memory>
#include <sstream>
#include <utility>

#include "analysis/optimize.h"
#include "analysis/trust.h"
#include "analysis/verify.h"
#include "apps/graphchi/graph.h"
#include "apps/graphchi/model.h"
#include "apps/illustrative/bank.h"
#include "apps/paldb/model.h"
#include "apps/specjvm/harness.h"
#include "apps/synthetic/generator.h"
#include "core/app.h"
#include "dsl/parser.h"
#include "shim/host_io.h"
#include "support/error.h"
#include "vfs/fs.h"

namespace msv::apps::msvlint {

namespace {

struct Target {
  std::string name;
  model::AppModel app;
  // Builds a FRESH seeded filesystem for each dry run / replay (null =
  // fresh empty MemFs). Fresh per run, never shared: the --fix replay
  // self-check compares two runs of the same partition byte-for-byte, and
  // a reused filesystem would carry the first run's outputs into the
  // second.
  std::function<std::shared_ptr<vfs::FileSystem>()> make_fs;

  std::shared_ptr<vfs::FileSystem> fresh_fs() const {
    return make_fs ? make_fs() : std::make_shared<vfs::MemFs>();
  }
};

std::string basename_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

// Assembles the lint targets. Throws ConfigError on unreadable sources.
std::vector<Target> build_targets(const DriverOptions& options) {
  std::vector<Target> targets;
  for (const auto& path : options.dsl_paths) {
    std::ifstream in(path);
    if (!in) throw ConfigError("cannot open " + path);
    std::ostringstream source;
    source << in.rdbuf();
    targets.push_back({basename_of(path), dsl::parse_program(source.str())});
  }
  if (options.bank) {
    targets.push_back({"bank", apps::build_bank_app(/*with_audit=*/true)});
  }
  if (options.micro) {
    targets.push_back({"micro", apps::synthetic::build_micro_app()});
  }
  if (options.paldb) {
    // The paper's RTWU scheme over a small workload, so the optional
    // profiled dry run stays cheap.
    apps::paldb::PaldbWorkload workload;
    workload.n_keys = 200;
    targets.push_back(
        {"paldb",
         apps::paldb::build_paldb_app(
             apps::paldb::Scheme::kReaderTrustedWriterUntrusted, workload)});
  }
  if (options.graphchi) {
    // Small RMAT graph so the optional dry runs (--trace-native,
    // --propose-partition) stay cheap; the graph is regenerated into a
    // fresh filesystem for every run (see Target::make_fs).
    Target target;
    target.name = "graphchi";
    target.app = apps::graphchi::build_graphchi_app(
        /*partitioned=*/true, apps::graphchi::GraphChiWorkload{},
        std::make_shared<apps::graphchi::PhaseBreakdown>());
    target.make_fs = [] {
      auto fs = std::make_shared<vfs::MemFs>();
      Env scratch(CostModel::paper(), fs);
      UntrustedDomain domain(scratch);
      shim::HostIo io(scratch, domain);
      Rng rng(0x97a9);
      apps::graphchi::write_edge_list(
          io, "graph.bin", /*nvertices=*/512,
          apps::graphchi::generate_rmat(rng, 512, 2048));
      return fs;
    };
    targets.push_back(std::move(target));
  }
  if (options.specjvm) {
    targets.push_back(
        {"specjvm",
         apps::specjvm::build_model(
             apps::specjvm::Benchmark::kFft,
             apps::specjvm::WorkloadSpec::defaults(
                 apps::specjvm::Benchmark::kFft))});
  }
  if (options.synthetic_classes >= 0) {
    apps::synthetic::SyntheticSpec spec;
    spec.n_classes = static_cast<std::uint32_t>(options.synthetic_classes);
    spec.untrusted_fraction = options.synthetic_untrusted;
    spec.secret_fraction = options.synthetic_secret;
    targets.push_back(
        {"synthetic-" + std::to_string(spec.n_classes),
         apps::synthetic::generate(spec)});
  }
  return targets;
}

// The GraalVM-agent-style dry run behind --trace-native: execute main in a
// plain native image with call-edge tracing on, so MSV004 can diff what
// native bodies actually invoked against their declared_callees() hints.
std::vector<analysis::NativeEdge> trace_native_edges(const Target& target,
                                                     std::ostream& err) {
  std::vector<analysis::NativeEdge> edges;
  if (target.app.main_class().empty()) {
    err << "msvlint: " << target.name
        << ": no main class, skipping native-edge trace\n";
    return edges;
  }
  try {
    core::AppConfig config;
    config.fs = target.fresh_fs();
    core::NativeApp native(target.app, config);
    native.context().enable_native_edge_tracing();
    native.run_main();
    for (const auto& edge : native.context().native_edges()) {
      edges.push_back(edge);
    }
  } catch (const Error& e) {
    err << "msvlint: " << target.name
        << ": native-edge trace failed: " << e.what() << "\n";
  }
  return edges;
}

// ---- Partition optimizer (--propose-partition / --fix) ----

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

struct ReplayResult {
  std::uint64_t digest = 0;     // run_main value + full filesystem contents
  std::uint64_t crossings = 0;  // measured ecalls + ocalls
};

// Replays the fig06-style workload (the target's own main) on a
// partitioned build over a fresh (possibly pre-seeded) filesystem and
// digests every observable output. Two runs of the same (app, plan) must
// produce the same digest — the deterministic self-check --fix relies on.
ReplayResult replay_partitioned(
    const model::AppModel& app,
    std::shared_ptr<const analysis::PartitionPlan> plan,
    std::shared_ptr<vfs::FileSystem> fs) {
  core::AppConfig config;
  config.fs = fs;
  config.partition_plan = std::move(plan);
  core::PartitionedApp papp(app, config);
  const rt::Value result = papp.run_main();

  ReplayResult r;
  r.digest = 1469598103934665603ull;
  const std::string repr = result.to_debug_string();
  r.digest = fnv1a(r.digest, repr.data(), repr.size());
  std::vector<std::string> paths = fs->list("");
  std::sort(paths.begin(), paths.end());
  for (const auto& path : paths) {
    r.digest = fnv1a(r.digest, path.data(), path.size());
    const auto bytes = fs->map(path);
    if (bytes != nullptr && !bytes->empty()) {
      r.digest = fnv1a(r.digest, bytes->data(), bytes->size());
    }
  }
  const sgx::BridgeStats& stats = papp.bridge().stats();
  r.crossings = stats.ecalls + stats.ocalls;
  return r;
}

// The --propose-partition / --fix flow for one target: profiled dry run ->
// trust fixpoint -> min-cut plan; under --fix, additionally apply the plan
// and verify byte-identical replays plus the measured crossing drop.
int propose_or_fix(const Target& target, const DriverOptions& options,
                   const analysis::TrustOptions& trust_options,
                   std::ostream& out, std::ostream& err) {
  if (target.app.main_class().empty()) {
    err << "msvlint: " << target.name
        << ": --propose-partition needs a main class to profile\n";
    return 2;
  }

  // 1. Telemetry: profile the workload's call counts in a plain native
  // run (annotations do not change semantics, so the native profile is
  // the partitioned profile).
  analysis::CallProfile profile;
  try {
    core::AppConfig config;
    config.fs = target.fresh_fs();
    core::NativeApp native(target.app, config);
    native.context().enable_call_profiling();
    native.run_main();
    profile = analysis::CallProfile::from_context(native.context());
  } catch (const Error& e) {
    err << "msvlint: " << target.name
        << ": profiling dry run failed: " << e.what() << "\n";
    return 2;
  }

  // 2. Trust facts + min-cut optimization.
  analysis::PartitionPlan plan;
  try {
    const analysis::TrustFacts trust =
        analysis::analyze_trust(target.app, trust_options);
    analysis::PartitionPolicy policy;
    policy.seed = options.plan_seed;
    policy.min_gain = options.plan_min_gain;
    plan = analysis::optimize_partition(target.app, trust, profile,
                                        CostModel::paper(), policy);
  } catch (const Error& e) {
    err << "msvlint: " << target.name << ": optimizer failed: " << e.what()
        << "\n";
    return 2;
  }
  if (!options.quiet) out << plan.to_text();
  if (!options.plan_out.empty()) {
    if (options.plan_out == "-") {
      out << plan.to_json();
    } else {
      std::ofstream pf(options.plan_out);
      if (!pf) {
        err << "msvlint: cannot write " << options.plan_out << "\n";
        return 2;
      }
      pf << plan.to_json();
    }
  }
  if (!options.fix) return 0;

  // 3. Fix-it verification: the original and the re-partitioned app replay
  // the workload twice each; all runs must agree byte-for-byte, and the
  // re-partitioned app must not cross the boundary more.
  try {
    const auto shared = std::make_shared<analysis::PartitionPlan>(plan);
    const ReplayResult base1 =
        replay_partitioned(target.app, nullptr, target.fresh_fs());
    const ReplayResult base2 =
        replay_partitioned(target.app, nullptr, target.fresh_fs());
    const ReplayResult opt1 =
        replay_partitioned(target.app, shared, target.fresh_fs());
    const ReplayResult opt2 =
        replay_partitioned(target.app, shared, target.fresh_fs());
    if (base1.digest != base2.digest || opt1.digest != opt2.digest) {
      err << "msvlint: " << target.name
          << ": --fix replay is nondeterministic (two runs of the same "
             "partition disagree) — plan rejected\n";
      return 1;
    }
    if (base1.digest != opt1.digest) {
      err << "msvlint: " << target.name
          << ": --fix replay mismatch: re-partitioned app produced "
             "different observable output — plan rejected\n";
      return 1;
    }
    if (plan.changed() && opt1.crossings > base1.crossings) {
      err << "msvlint: " << target.name
          << ": --fix regressed boundary crossings (" << base1.crossings
          << " -> " << opt1.crossings << ") — plan rejected\n";
      return 1;
    }
    const double drop =
        base1.crossings == 0
            ? 0.0
            : 100.0 *
                  static_cast<double>(base1.crossings - opt1.crossings) /
                  static_cast<double>(base1.crossings);
    out << "msvlint: --fix " << target.name << ": replay digest 0x"
        << std::hex << base1.digest << std::dec
        << " byte-identical across 2+2 runs; boundary crossings "
        << base1.crossings << " -> " << opt1.crossings << " ("
        << std::fixed << std::setprecision(1) << drop << "% fewer), "
        << plan.moved.size() << " class(es) moved\n";
  } catch (const Error& e) {
    err << "msvlint: " << target.name << ": --fix replay failed: " << e.what()
        << "\n";
    return 2;
  }
  return 0;
}

}  // namespace

int run_driver(const DriverOptions& options, std::ostream& out,
               std::ostream& err) {
  if (options.list_rules) {
    for (const auto& rule : analysis::lint_rules()) {
      out << rule.id << "  " << rule.summary << "\n";
    }
    return 0;
  }

  std::vector<Target> targets;
  try {
    targets = build_targets(options);
  } catch (const Error& e) {
    err << "msvlint: " << e.what() << "\n";
    return 2;
  }
  if (targets.empty()) {
    err << "msvlint: no targets (pass a .msv file or --bank/--micro/"
           "--synthetic)\n";
    return 2;
  }

  analysis::Baseline baseline;
  if (!options.baseline_path.empty()) {
    std::ifstream in(options.baseline_path);
    if (!in) {
      err << "msvlint: cannot open baseline " << options.baseline_path << "\n";
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    baseline = analysis::Baseline::parse(text.str());
  }

  analysis::Report total;
  std::string target_names;
  const auto t0 = std::chrono::steady_clock::now();
  for (auto& target : targets) {
    if (!target_names.empty()) target_names += ",";
    target_names += target.name;

    analysis::LintOptions lint_options;
    lint_options.trust_analysis = options.trust_analysis ||
                                  options.propose_partition || options.fix;
    if (options.trace_native) {
      lint_options.native_edges = trace_native_edges(target, err);
    }
    analysis::Report report;
    try {
      report = options.verify_only ? analysis::verify_app(target.app)
                                   : analysis::lint(target.app, lint_options);
    } catch (const Error& e) {
      err << "msvlint: " << target.name << ": " << e.what() << "\n";
      return 2;
    }
    report.apply_baseline(baseline);
    if (!options.quiet) {
      out << "== " << target.name << ": " << report.diagnostics().size()
          << " finding(s), " << report.errors() << " error(s), "
          << report.warnings() << " warning(s)\n";
      out << report.to_text();
    }
    if ((options.propose_partition || options.fix) && !options.verify_only) {
      const int rc =
          propose_or_fix(target, options, lint_options.trust, out, err);
      if (rc != 0) return rc;
    }
    total.merge(std::move(report));
  }
  total.sort();
  total.stats().wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();

  if (!options.write_baseline_path.empty()) {
    std::ofstream bl(options.write_baseline_path);
    if (!bl) {
      err << "msvlint: cannot write baseline " << options.write_baseline_path
          << "\n";
      return 2;
    }
    bl << total.to_baseline().to_text();
  }
  if (!options.json_path.empty()) {
    std::vector<std::string> rules =
        options.verify_only ? std::vector<std::string>{"verify"}
                            : analysis::lint_rule_ids();
    if (!options.verify_only && !options.trust_analysis &&
        !options.propose_partition && !options.fix) {
      rules.erase(std::remove(rules.begin(), rules.end(), "MSV010"),
                  rules.end());
    }
    const std::string json = total.to_json(rules, total.stats(), target_names,
                                           options.json_version);
    if (options.json_path == "-") {
      out << json;
    } else {
      std::ofstream jf(options.json_path);
      if (!jf) {
        err << "msvlint: cannot write " << options.json_path << "\n";
        return 2;
      }
      jf << json;
    }
  }

  out << "msvlint: " << targets.size() << " target(s), "
      << total.stats().methods_analyzed << " method(s), "
      << total.diagnostics().size() << " finding(s): " << total.errors()
      << " error(s), " << total.warnings() << " warning(s)"
      << (total.diagnostics().size() >
                  total.errors() + total.warnings() +
                      total.count(analysis::Severity::kInfo)
              ? " (rest suppressed by baseline)"
              : "")
      << "\n";
  return total.errors() > 0 ? 1 : 0;
}

}  // namespace msv::apps::msvlint
