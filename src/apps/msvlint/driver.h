// msvlint driver — target assembly and report plumbing for the msvlint
// CLI (tools/msvlint.cc).
//
// Lives in the library (not the tool) so tests can drive the exact code
// path the CLI ships: target construction from DSL sources and the
// built-in app factories, the optional native-edge dry run feeding
// MSV004, baseline suppression, and text/JSON emission.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "analysis/lint.h"

namespace msv::apps::msvlint {

struct DriverOptions {
  // Targets: Montsalvat DSL sources plus the built-in app factories.
  std::vector<std::string> dsl_paths;
  bool bank = false;                     // the Listing-1 application
  bool micro = false;                    // the Fig. 3-4 micro model
  bool paldb = false;                    // the §6.5 PalDB app (RTWU scheme)
  bool graphchi = false;                 // the §6.5 GraphChi app
  bool specjvm = false;                  // the §6.6 SPECjvm harness (fft)
  std::int32_t synthetic_classes = -1;   // >= 0: the §6.5 generator output
  double synthetic_untrusted = 0.5;      // generator @Untrusted fraction
  double synthetic_secret = 0.0;         // generator secret-field fraction

  // Dry-run each target's main in a NativeApp with native call-edge
  // tracing enabled, feeding observed edges into MSV004's dynamic check.
  bool trace_native = false;

  // Value-granular trust analysis (analysis/trust.h): runs the
  // interprocedural trust fixpoint and the MSV010 over-trusted-field rule.
  bool trust_analysis = false;

  // Partition optimizer (DESIGN.md §15). --propose-partition profiles each
  // target's main in a NativeApp (ExecContext call profiling), feeds the
  // measured call counts + trust facts into analysis::optimize_partition,
  // and prints the plan. --fix additionally *applies* the plan
  // (AppConfig::partition_plan) and verifies it by replay: the fig06-style
  // workload runs on the original and the re-partitioned app twice each;
  // all four replays must produce byte-identical results (run_main value +
  // full filesystem contents) and the re-partitioned app must cross the
  // boundary less. Both imply trust_analysis.
  bool propose_partition = false;
  bool fix = false;
  std::string plan_out;   // write the plan JSON here ('-' for stdout)
  std::uint64_t plan_seed = 0;   // PartitionPolicy::seed (digest salt)
  double plan_min_gain = 0.0;    // PartitionPolicy::min_gain

  bool verify_only = false;  // bytecode verifier only, no partition rules
  bool list_rules = false;   // print the rule catalogue and exit

  std::string baseline_path;        // suppress findings listed in this file
  std::string write_baseline_path;  // write a baseline covering all findings
  std::string json_path;            // emit the JSON report here
  int json_version = 2;             // 1 = msvlint-report-v1 compat schema
  bool quiet = false;               // suppress per-finding text output
};

// Runs the driver. Returns the process exit code: 0 when no unsuppressed
// error-severity findings remain, 1 when some do, 2 on usage/IO errors.
int run_driver(const DriverOptions& options, std::ostream& out,
               std::ostream& err);

}  // namespace msv::apps::msvlint
