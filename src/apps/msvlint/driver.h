// msvlint driver — target assembly and report plumbing for the msvlint
// CLI (tools/msvlint.cc).
//
// Lives in the library (not the tool) so tests can drive the exact code
// path the CLI ships: target construction from DSL sources and the
// built-in app factories, the optional native-edge dry run feeding
// MSV004, baseline suppression, and text/JSON emission.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "analysis/lint.h"

namespace msv::apps::msvlint {

struct DriverOptions {
  // Targets: Montsalvat DSL sources plus the built-in app factories.
  std::vector<std::string> dsl_paths;
  bool bank = false;                     // the Listing-1 application
  bool micro = false;                    // the Fig. 3-4 micro model
  std::int32_t synthetic_classes = -1;   // >= 0: the §6.5 generator output
  double synthetic_untrusted = 0.5;      // generator @Untrusted fraction

  // Dry-run each target's main in a NativeApp with native call-edge
  // tracing enabled, feeding observed edges into MSV004's dynamic check.
  bool trace_native = false;

  bool verify_only = false;  // bytecode verifier only, no partition rules
  bool list_rules = false;   // print the rule catalogue and exit

  std::string baseline_path;        // suppress findings listed in this file
  std::string write_baseline_path;  // write a baseline covering all findings
  std::string json_path;            // emit the msvlint-report-v1 JSON here
  bool quiet = false;               // suppress per-finding text output
};

// Runs the driver. Returns the process exit code: 0 when no unsuppressed
// error-severity findings remain, 1 when some do, 2 on usage/IO errors.
int run_driver(const DriverOptions& options, std::ostream& out,
               std::ostream& err);

}  // namespace msv::apps::msvlint
