// The paper's illustrative application (Listing 1): trusted Account and
// AccountRegistry classes, untrusted Person and Main classes.
//
// Used by the quickstart example, the end-to-end tests and as the base
// shape for RMI micro-benchmarks. The model follows the listing, plus
// getters (getBalance/getOwner/count) so tests and examples can observe
// state through the public API (the encapsulation assumption of §5.1 —
// fields are private and only reachable through methods).
#pragma once

#include "model/app_model.h"

namespace msv::apps {

// Builds the Listing-1 application model. When `with_audit` is set, a
// trusted Vault class that constructs and calls an untrusted Logger is
// added, exercising the enclave -> untrusted proxy direction as well.
model::AppModel build_bank_app(bool with_audit = false);

}  // namespace msv::apps
