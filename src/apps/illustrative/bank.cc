#include "apps/illustrative/bank.h"

#include "interp/exec_context.h"
#include "model/ir.h"
#include "runtime/isolate.h"
#include "support/error.h"

namespace msv::apps {

using model::Annotation;
using model::ClassDecl;
using model::IrBuilder;
using rt::Value;

namespace {

void add_account_class(model::AppModel& app) {
  ClassDecl& account = app.add_class("Account", Annotation::kTrusted);
  account.add_field("owner");
  account.add_field("balance");
  const std::int32_t owner_idx = account.field_index("owner");
  const std::int32_t balance_idx = account.field_index("balance");

  // Account(String s, int b) { this.owner = s; this.balance = b; }
  account.add_constructor(2).body(IrBuilder()
                                      .locals(3)
                                      .load_local(0)
                                      .load_local(1)
                                      .put_field(owner_idx)
                                      .load_local(0)
                                      .load_local(2)
                                      .put_field(balance_idx)
                                      .ret_void()
                                      .build());
  // void updateBalance(int v) { this.balance += v; }
  account.add_method("updateBalance", 1)
      .body(IrBuilder()
                .locals(2)
                .load_local(0)
                .load_local(0)
                .get_field(balance_idx)
                .load_local(1)
                .add()
                .put_field(balance_idx)
                .ret_void()
                .build());
  // int getBalance() { return this.balance; }
  account.add_method("getBalance", 0)
      .body(IrBuilder()
                .locals(1)
                .load_local(0)
                .get_field(balance_idx)
                .ret()
                .build());
  // String getOwner() { return this.owner; }
  account.add_method("getOwner", 0)
      .body(IrBuilder()
                .locals(1)
                .load_local(0)
                .get_field(owner_idx)
                .ret()
                .build());
}

void add_registry_class(model::AppModel& app) {
  ClassDecl& registry = app.add_class("AccountRegistry", Annotation::kTrusted);
  registry.add_field("reg");

  // The registry manipulates its account list natively (the Java original
  // uses ArrayList); the declared callees act as reflection config for the
  // reachability analysis (§2.2).
  registry.add_constructor(0).body_native([](model::NativeCall& call) {
    call.isolate.set_field(call.self, 0, Value(rt::ValueList{}));
    return Value();
  });
  registry.add_method("addAccount", 1)
      .body_native([](model::NativeCall& call) {
        Value list = call.isolate.get_field(call.self, 0);
        rt::ValueList items = list.as_list();
        items.push_back(call.args[0]);
        call.isolate.set_field(call.self, 0, Value(std::move(items)));
        return Value();
      })
      .calls("Account", "updateBalance");
  registry.add_method("count", 0).body_native([](model::NativeCall& call) {
    return Value(static_cast<std::int32_t>(
        call.isolate.get_field(call.self, 0).as_list().size()));
  });
  // int totalBalance() — walks the accounts inside the enclave.
  registry.add_method("totalBalance", 0)
      .body_native([](model::NativeCall& call) {
        std::int32_t total = 0;
        const Value accounts = call.isolate.get_field(call.self, 0);
        for (const auto& acct : accounts.as_list()) {
          total += call.ctx.invoke(acct.as_ref(), "getBalance", {}).as_i32();
        }
        return Value(total);
      })
      .calls("Account", "getBalance");
}

void add_person_class(model::AppModel& app) {
  ClassDecl& person = app.add_class("Person", Annotation::kUntrusted);
  person.add_field("name");
  const std::int32_t name_idx = person.field_index("name");
  person.add_field("account");
  const std::int32_t account_idx = person.field_index("account");

  // Person(String s, int v) { this.name = s; this.account = new Account(s, v); }
  person.add_constructor(2).body(IrBuilder()
                                     .locals(3)
                                     .load_local(0)
                                     .load_local(1)
                                     .put_field(name_idx)
                                     .load_local(0)
                                     .load_local(1)
                                     .load_local(2)
                                     .new_object("Account", 2)
                                     .put_field(account_idx)
                                     .ret_void()
                                     .build());
  // Account getAccount() { return this.account; }
  person.add_method("getAccount", 0)
      .body(IrBuilder()
                .locals(1)
                .load_local(0)
                .get_field(account_idx)
                .ret()
                .build());
  // void transfer(Person p, int v) {
  //   p.getAccount().updateBalance(v);
  //   this.account.updateBalance(-v);
  // }
  person.add_method("transfer", 2)
      .body(IrBuilder()
                .locals(3)
                .load_local(1)
                .call("getAccount", 0)
                .load_local(2)
                .call("updateBalance", 1)
                .pop()
                .load_local(0)
                .get_field(account_idx)
                .const_val(Value(std::int32_t{0}))
                .load_local(2)
                .sub()
                .call("updateBalance", 1)
                .pop()
                .ret_void()
                .build());
}

void add_main_class(model::AppModel& app) {
  ClassDecl& main_cls = app.add_class("Main", Annotation::kUntrusted);
  // public static void main() — Listing 1, lines 40-47.
  main_cls.add_static_method("main", 0)
      .body(IrBuilder()
                .locals(3)
                .const_val(Value("Alice"))
                .const_val(Value(std::int32_t{100}))
                .new_object("Person", 2)
                .store_local(0)
                .const_val(Value("Bob"))
                .const_val(Value(std::int32_t{25}))
                .new_object("Person", 2)
                .store_local(1)
                .load_local(0)
                .load_local(1)
                .const_val(Value(std::int32_t{25}))
                .call("transfer", 2)
                .pop()
                .new_object("AccountRegistry", 0)
                .store_local(2)
                .load_local(2)
                .load_local(0)
                .call("getAccount", 0)
                .call("addAccount", 1)
                .pop()
                .ret_void()
                .build());
}

void add_audit_classes(model::AppModel& app) {
  // Untrusted Logger: system-related functionality kept out of the
  // enclave (the §5.1 argument for @Untrusted).
  ClassDecl& logger = app.add_class("Logger", Annotation::kUntrusted);
  logger.add_field("lines");
  logger.add_constructor(0).body_native([](model::NativeCall& call) {
    call.isolate.set_field(call.self, 0, Value(std::int32_t{0}));
    return Value();
  });
  logger.add_method("log", 1).body_native([](model::NativeCall& call) {
    const std::string& msg = call.args[0].as_string();
    const auto id = call.ctx.io().open("audit.log", vfs::OpenMode::kAppend);
    call.ctx.io().write(id, msg.data(), msg.size());
    call.ctx.io().write(id, "\n", 1);
    call.ctx.io().close(id);
    call.isolate.set_field(
        call.self, 0,
        Value(call.isolate.get_field(call.self, 0).as_i32() + 1));
    return Value();
  });
  logger.add_method("lineCount", 0).body_native([](model::NativeCall& call) {
    return call.isolate.get_field(call.self, 0);
  });

  // Trusted Vault: creates and drives the untrusted Logger from inside
  // the enclave (proxy-in -> concrete-out direction).
  ClassDecl& vault = app.add_class("Vault", Annotation::kTrusted);
  vault.add_field("logger");
  vault.add_constructor(0)
      .body_native([](model::NativeCall& call) {
        call.isolate.set_field(call.self, 0,
                               call.ctx.construct("Logger", {}));
        return Value();
      })
      .calls("Logger", model::kConstructorName);
  vault.add_method("audit", 1)
      .body_native([](model::NativeCall& call) {
        const rt::GcRef logger =
            call.isolate.get_field(call.self, 0).as_ref();
        call.ctx.invoke(logger, "log",
                        {Value("audit: " + call.args[0].as_string())});
        return Value();
      })
      .calls("Logger", "log");
  vault.add_method("auditCount", 0)
      .body_native([](model::NativeCall& call) {
        const rt::GcRef logger =
            call.isolate.get_field(call.self, 0).as_ref();
        return call.ctx.invoke(logger, "lineCount", {});
      })
      .calls("Logger", "lineCount");
}

}  // namespace

model::AppModel build_bank_app(bool with_audit) {
  model::AppModel app;
  add_account_class(app);
  add_registry_class(app);
  add_person_class(app);
  add_main_class(app);
  if (with_audit) add_audit_classes(app);
  app.set_main_class("Main");
  app.validate();
  return app;
}

}  // namespace msv::apps
