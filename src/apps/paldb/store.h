// A write-once embeddable key-value store modelled on LinkedIn's PalDB
// (§6.5), the first macro-benchmark application of the paper.
//
// Format of "<name>.paldb":
//   header   : magic, version, key count, index offset, slot count
//   data     : length-prefixed (key, value) records
//   index    : open-addressed hash table of (key hash, record offset+1)
//
// The performance asymmetry the paper exploits is reproduced exactly:
//   * the writer does regular buffered I/O — every put() appends the
//     record to a temporary file through write() (an ocall storm when the
//     writer runs inside the enclave: the RUWT scheme's 23x ocalls);
//   * the reader memory-maps the store file and probes the index in the
//     mapping — nearly free outside the enclave, but paying per-page
//     copy-in plus MEE traffic inside it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "shim/io_service.h"
#include "sim/env.h"

namespace msv::apps::paldb {

constexpr std::uint32_t kMagic = 0x50414c44;  // "PALD"
constexpr std::uint32_t kVersion = 1;
constexpr std::uint64_t kHeaderBytes = 4 + 4 + 8 + 8 + 8;
constexpr std::uint64_t kSlotBytes = 16;

struct WriterStats {
  std::uint64_t puts = 0;
  std::uint64_t bytes_staged = 0;
};

// Builds a store file. Write-once: after close() the store is immutable.
class StoreWriter {
 public:
  // Creates "<path>.keys.tmp" / "<path>.values.tmp" for staging; close()
  // merges them into "<path>".
  StoreWriter(Env& env, shim::IoService& io, std::string path);
  ~StoreWriter();

  StoreWriter(const StoreWriter&) = delete;
  StoreWriter& operator=(const StoreWriter&) = delete;

  // Appends one record. Duplicate keys are not detected until close()
  // (PalDB semantics: last write wins is *not* supported; duplicates are
  // an error).
  void put(std::string_view key, std::string_view value);

  // Builds the index and writes the final store file; removes the staging
  // file. Must be called exactly once before reading.
  void close();

  const WriterStats& stats() const { return stats_; }

 private:
  Env& env_;
  shim::IoService& io_;
  std::string path_;
  shim::FileId keys_tmp_;
  shim::FileId values_tmp_;
  bool closed_ = false;
  WriterStats stats_;
};

struct ReaderStats {
  std::uint64_t gets = 0;
  std::uint64_t hits = 0;
  std::uint64_t probes = 0;
};

// Reads a store file through a memory mapping.
class StoreReader {
 public:
  StoreReader(Env& env, shim::IoService& io, const std::string& path);

  std::optional<std::string> get(std::string_view key);
  std::uint64_t key_count() const { return key_count_; }
  const ReaderStats& stats() const { return stats_; }

 private:
  Env& env_;
  std::shared_ptr<shim::MappedFile> map_;
  std::uint64_t key_count_ = 0;
  std::uint64_t index_offset_ = 0;
  std::uint64_t slot_count_ = 0;
  ReaderStats stats_;
};

}  // namespace msv::apps::paldb
