#include "apps/paldb/store.h"

#include <cstring>
#include <vector>

#include "support/bytes.h"
#include "support/error.h"
#include "support/fnv.h"

namespace msv::apps::paldb {
namespace {

// CPU cost of hashing + record bookkeeping per put/get.
constexpr Cycles kRecordCpuCycles = 2'000;  // Java-side hashing,
                                            // stream encoding, bookkeeping

std::uint64_t key_hash(std::string_view key) {
  std::uint64_t h = fnv1a64(key);
  return h == 0 ? 1 : h;  // 0 marks an empty slot
}

}  // namespace

StoreWriter::StoreWriter(Env& env, shim::IoService& io, std::string path)
    : env_(env),
      io_(io),
      path_(std::move(path)),
      keys_tmp_(io.open(path_ + ".keys.tmp", vfs::OpenMode::kWrite)),
      values_tmp_(io.open(path_ + ".values.tmp", vfs::OpenMode::kWrite)) {}

StoreWriter::~StoreWriter() {
  // A store that was never closed leaves only the staging file behind;
  // that is a usage bug but must not throw from a destructor.
}

void StoreWriter::put(std::string_view key, std::string_view value) {
  MSV_CHECK_MSG(!closed_, "put() after close()");
  env_.clock.advance(kRecordCpuCycles);
  // PalDB stages keys and values in separate per-key-length streams; each
  // put writes both. From inside an enclave that is two ocalls per record
  // — the write amplification behind the RUWT scheme's ocall storm.
  ByteBuffer key_rec;
  key_rec.put_string(key);
  io_.write(keys_tmp_, key_rec.data(), key_rec.size());
  ByteBuffer value_rec;
  value_rec.put_string(value);
  io_.write(values_tmp_, value_rec.data(), value_rec.size());
  ++stats_.puts;
  stats_.bytes_staged += key_rec.size() + value_rec.size();
}

namespace {

std::vector<std::uint8_t> read_back(shim::IoService& io,
                                    const std::string& path) {
  const std::uint64_t size = io.file_size(path);
  std::vector<std::uint8_t> data(size);
  const auto in = io.open(path, vfs::OpenMode::kRead);
  std::uint64_t off = 0;
  // Chunked reads, as the Java implementation would do through a buffered
  // stream.
  constexpr std::uint64_t kChunk = 64 << 10;
  while (off < size) {
    const std::uint64_t want = std::min(kChunk, size - off);
    const std::uint64_t got = io.read(in, data.data() + off, want);
    MSV_CHECK_MSG(got > 0, "staging file truncated");
    off += got;
  }
  io.close(in);
  return data;
}

}  // namespace

void StoreWriter::close() {
  MSV_CHECK_MSG(!closed_, "close() called twice");
  closed_ = true;
  io_.flush(keys_tmp_);
  io_.close(keys_tmp_);
  io_.flush(values_tmp_);
  io_.close(values_tmp_);

  // Read the staged streams back and merge them into the final file:
  // header, data region (records in insertion order), index region.
  const std::string keys_path = path_ + ".keys.tmp";
  const std::string values_path = path_ + ".values.tmp";
  const std::vector<std::uint8_t> staged_keys = read_back(io_, keys_path);
  const std::vector<std::uint8_t> staged_values = read_back(io_, values_path);

  struct Slot {
    std::uint64_t hash;
    std::uint64_t offset;
  };
  std::vector<Slot> records;
  ByteBuffer data_buf;
  {
    ByteReader keys(staged_keys.data(), staged_keys.size());
    ByteReader values(staged_values.data(), staged_values.size());
    while (!keys.done()) {
      MSV_CHECK_MSG(!values.done(), "staging streams out of sync");
      const std::string key = keys.get_string();
      const std::string value = values.get_string();
      records.push_back(Slot{key_hash(key), data_buf.size()});
      data_buf.put_string(key);
      data_buf.put_string(value);
    }
    MSV_CHECK_MSG(values.done(), "staging streams out of sync");
  }
  const std::vector<std::uint8_t>& data = data_buf.bytes();
  env_.clock.advance(records.size() * kRecordCpuCycles);

  // Open-addressed index at load factor <= 0.5 (power-of-two slots).
  std::uint64_t slot_count = 16;
  while (slot_count < records.size() * 2) slot_count *= 2;
  std::vector<std::uint64_t> index(slot_count * 2, 0);
  for (const auto& rec : records) {
    std::uint64_t s = rec.hash & (slot_count - 1);
    while (index[s * 2] != 0) {
      if (index[s * 2] == rec.hash) {
        throw RuntimeFault("duplicate key in write-once store " + path_);
      }
      s = (s + 1) & (slot_count - 1);
    }
    index[s * 2] = rec.hash;
    index[s * 2 + 1] = rec.offset + 1;
  }

  // Final file: header + data + index, written through regular I/O.
  ByteBuffer header;
  header.put_u32(kMagic);
  header.put_u32(kVersion);
  header.put_u64(records.size());
  header.put_u64(kHeaderBytes + data.size());
  header.put_u64(slot_count);
  MSV_CHECK(header.size() == kHeaderBytes);

  const auto out = io_.open(path_, vfs::OpenMode::kWrite);
  io_.write(out, header.data(), header.size());
  io_.write(out, data.data(), data.size());
  ByteBuffer index_bytes;
  for (const auto w : index) index_bytes.put_u64(w);
  io_.write(out, index_bytes.data(), index_bytes.size());
  io_.flush(out);
  io_.close(out);
  io_.remove(keys_path);
  io_.remove(values_path);
}

StoreReader::StoreReader(Env& env, shim::IoService& io,
                         const std::string& path)
    : env_(env), map_(io.map(path)) {
  MSV_CHECK_MSG(map_->size() >= kHeaderBytes, "store file too small: " + path);
  if (map_->read_u32(0) != kMagic) {
    throw RuntimeFault("not a PalDB store: " + path);
  }
  MSV_CHECK_MSG(map_->read_u32(4) == kVersion, "store version mismatch");
  key_count_ = map_->read_u64(8);
  index_offset_ = map_->read_u64(16);
  slot_count_ = map_->read_u64(24);
}

std::optional<std::string> StoreReader::get(std::string_view key) {
  env_.clock.advance(kRecordCpuCycles);
  ++stats_.gets;
  const std::uint64_t h = key_hash(key);
  std::uint64_t s = h & (slot_count_ - 1);
  for (std::uint64_t i = 0; i < slot_count_; ++i) {
    ++stats_.probes;
    const std::uint64_t slot_off = index_offset_ + s * kSlotBytes;
    const std::uint64_t slot_hash = map_->read_u64(slot_off);
    if (slot_hash == 0) return std::nullopt;
    if (slot_hash == h) {
      const std::uint64_t rec_off = map_->read_u64(slot_off + 8) - 1;
      // Read the record: key (verify), then value. Records are usually
      // small; pull a bounded window from the mapping and grow it if the
      // record turns out to be larger.
      const std::uint64_t data_start = kHeaderBytes + rec_off;
      const std::uint64_t available = index_offset_ - data_start;
      // Records are length-prefixed and usually small; PalDB reads just
      // the record, not a page-sized window.
      std::uint64_t window = std::min<std::uint64_t>(256, available);
      while (true) {
        std::vector<std::uint8_t> buf(window);
        map_->read(data_start, buf.data(), window);
        try {
          ByteReader r(buf.data(), buf.size());
          const std::string stored_key = r.get_string();
          if (stored_key != key) break;  // hash collision: keep probing
          ++stats_.hits;
          return r.get_string();
        } catch (const RuntimeFault&) {
          MSV_CHECK_MSG(window < available, "corrupt record in store");
          window = std::min(window * 2, available);
        }
      }
    }
    s = (s + 1) & (slot_count_ - 1);
  }
  return std::nullopt;
}

}  // namespace msv::apps::paldb
