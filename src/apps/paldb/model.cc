#include "apps/paldb/model.h"

#include "apps/paldb/store.h"
#include "interp/exec_context.h"
#include "model/ir.h"
#include "runtime/isolate.h"
#include "support/rng.h"

namespace msv::apps::paldb {

using model::Annotation;
using model::IrBuilder;
using rt::Value;

const char* scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kUnpartitioned:
      return "unpartitioned";
    case Scheme::kReaderTrustedWriterUntrusted:
      return "RTWU";
    case Scheme::kReaderUntrustedWriterTrusted:
      return "RUWT";
  }
  return "?";
}

std::string workload_key(const PaldbWorkload& w, std::uint64_t i) {
  // "string values of randomly generated integers in [0, 2^31-1]" — drawn
  // from a per-workload deterministic sequence; the index salt keeps keys
  // distinct (the store is write-once).
  Rng rng(w.seed ^ (i * 0x9e3779b97f4a7c15ull));
  return std::to_string(rng.next_below(1ull << 31)) + "#" + std::to_string(i);
}

std::string workload_value(const PaldbWorkload& w, std::uint64_t i) {
  Rng rng(~w.seed ^ (i * 0xc2b2ae3d27d4eb4full));
  std::string v(w.value_length, ' ');
  for (auto& c : v) {
    c = static_cast<char>('a' + rng.next_below(26));
  }
  return v;
}

model::AppModel build_paldb_app(Scheme scheme, const PaldbWorkload& workload) {
  model::AppModel app;

  const Annotation reader_annotation =
      scheme == Scheme::kReaderTrustedWriterUntrusted
          ? Annotation::kTrusted
          : (scheme == Scheme::kReaderUntrustedWriterTrusted
                 ? Annotation::kUntrusted
                 : Annotation::kNeutral);
  const Annotation writer_annotation =
      scheme == Scheme::kReaderTrustedWriterUntrusted
          ? Annotation::kUntrusted
          : (scheme == Scheme::kReaderUntrustedWriterTrusted
                 ? Annotation::kTrusted
                 : Annotation::kNeutral);

  auto& writer = app.add_class("DBWriter", writer_annotation);
  writer.add_field("unused");
  writer.add_constructor(0).body_native(
      [](model::NativeCall&) { return Value(); });
  // long writeBatch(long n) — builds the store with n K/V pairs through
  // PalDB's API; every put() is regular file I/O (§6.5).
  writer.add_method("writeBatch", 1)
      .body_native([workload](model::NativeCall& call) {
        const auto n = static_cast<std::uint64_t>(call.args[0].as_i64());
        StoreWriter store(call.ctx.env(), call.ctx.io(), workload.store_path);
        for (std::uint64_t i = 0; i < n; ++i) {
          store.put(workload_key(workload, i), workload_value(workload, i));
        }
        store.close();
        return Value(static_cast<std::int64_t>(n));
      })
      .code_size(6 << 10);

  auto& reader = app.add_class("DBReader", reader_annotation);
  reader.add_field("unused");
  reader.add_constructor(0).body_native(
      [](model::NativeCall&) { return Value(); });
  // long readBatch(long n) — memory-maps the store and reads every pair
  // back; returns the number of hits (must equal n).
  reader.add_method("readBatch", 1)
      .body_native([workload](model::NativeCall& call) {
        const auto n = static_cast<std::uint64_t>(call.args[0].as_i64());
        StoreReader store(call.ctx.env(), call.ctx.io(), workload.store_path);
        std::uint64_t hits = 0;
        for (std::uint64_t i = 0; i < n; ++i) {
          const auto v = store.get(workload_key(workload, i));
          if (v.has_value() && v->size() == workload.value_length) ++hits;
        }
        MSV_CHECK_MSG(hits == n, "PalDB read-back lost keys");
        return Value(static_cast<std::int64_t>(hits));
      })
      .code_size(5 << 10);

  auto& main_cls = app.add_class("Main", Annotation::kUntrusted);
  main_cls.add_static_method("main", 0)
      .body(IrBuilder()
                .locals(1)
                .new_object("DBWriter", 0)
                .const_val(Value(static_cast<std::int64_t>(workload.n_keys)))
                .call("writeBatch", 1)
                .pop()
                .new_object("DBReader", 0)
                .const_val(Value(static_cast<std::int64_t>(workload.n_keys)))
                .call("readBatch", 1)
                .pop()
                .ret_void()
                .build());
  app.set_main_class("Main");
  app.validate();
  return app;
}

}  // namespace msv::apps::paldb
