// The partitioned PalDB application of §6.5.
//
// "We consider a Java application based on PalDB which writes and reads a
// list of key-value pairs in a store file. The keys are string values of
// randomly generated integers, the values are randomly generated strings
// of length 128. We introduced two classes: DBReader and DBWriter."
//
// The two partitioning schemes of Fig. 7 are expressed with the class
// annotations: RTWU (DBReader @Trusted, DBWriter @Untrusted) and RUWT
// (DBReader @Untrusted, DBWriter @Trusted).
#pragma once

#include <cstdint>
#include <string>

#include "model/app_model.h"

namespace msv::apps::paldb {

enum class Scheme {
  kUnpartitioned,  // both classes neutral (NoSGX / NoPart runners)
  kReaderTrustedWriterUntrusted,  // RTWU
  kReaderUntrustedWriterTrusted,  // RUWT
};

const char* scheme_name(Scheme s);

struct PaldbWorkload {
  std::uint64_t n_keys = 10'000;
  std::uint32_t value_length = 128;  // §6.5
  std::uint64_t seed = 7;
  std::string store_path = "bench.paldb";
};

// Deterministic i-th key ("string values of randomly generated integers in
// [0, 2^31-1]") and value for a given seed; writer and reader agree on
// them.
std::string workload_key(const PaldbWorkload& w, std::uint64_t i);
std::string workload_value(const PaldbWorkload& w, std::uint64_t i);

// Builds the application model. main() writes all pairs through DBWriter,
// then reads them all back through DBReader ("time to read and write K/V
// pairs"), failing loudly on a missing key.
model::AppModel build_paldb_app(Scheme scheme, const PaldbWorkload& workload);

}  // namespace msv::apps::paldb
