#include "apps/specjvm/harness.h"

#include "baselines/jvm.h"
#include "core/app.h"
#include "kernels/kernels.h"
#include "runtime/churn.h"
#include "support/error.h"

namespace msv::apps::specjvm {

const char* benchmark_name(Benchmark b) {
  switch (b) {
    case Benchmark::kMpegaudio:
      return "mpegaudio";
    case Benchmark::kFft:
      return "fft";
    case Benchmark::kMonteCarlo:
      return "monte_carlo";
    case Benchmark::kSor:
      return "sor";
    case Benchmark::kLu:
      return "lu";
    case Benchmark::kSparse:
      return "sparse";
  }
  return "?";
}

WorkloadSpec WorkloadSpec::defaults(Benchmark b) {
  WorkloadSpec spec;
  switch (b) {
    case Benchmark::kMpegaudio:
      spec.iterations = 1;
      spec.mpeg_frames = 800'000;
      spec.jvm_compute_factor = 1.7;
      break;
    case Benchmark::kFft:
      spec.iterations = 25;
      spec.fft_doubles = 1 << 18;
      spec.jvm_compute_factor = 2.0;
      break;
    case Benchmark::kMonteCarlo:
      spec.iterations = 1;
      spec.mc_samples = 8'000'000;
      // The serial-GC pathology (Table 1, [28]): the live window nearly
      // fills a semispace, so every few MB of allocation triggers a full
      // copy of the window.
      spec.heap_bytes = 48ull << 20;
      spec.churn_live_bytes = 22ull << 20;
      spec.jvm_compute_factor = 1.2;
      break;
    case Benchmark::kSor:
      spec.iterations = 6;
      spec.sor_grid = 384;
      spec.sor_iters = 110;
      spec.jvm_compute_factor = 1.05;
      break;
    case Benchmark::kLu:
      spec.iterations = 30;
      spec.lu_n = 320;
      spec.jvm_compute_factor = 1.08;
      break;
    case Benchmark::kSparse:
      spec.iterations = 4;
      spec.sparse_n = 12'000;
      spec.sparse_nz = 360'000;
      spec.sparse_iters = 110;
      spec.jvm_compute_factor = 1.05;
      break;
  }
  return spec;
}

model::AppModel build_model(Benchmark b, const WorkloadSpec& spec) {
  model::AppModel app;
  auto& bench = app.add_class("Bench", model::Annotation::kNeutral);
  bench.add_constructor(0).body_native(
      [](model::NativeCall&) { return rt::Value(); });
  bench.add_method("run", 0).body_native(
      [b, spec](model::NativeCall& call) {
        Env& env = call.ctx.env();
        MemoryDomain& domain = call.isolate.domain();
        Rng rng(0xbe7c5 + static_cast<std::uint64_t>(b));
        double checksum = 0;
        for (std::uint32_t it = 0; it < spec.iterations; ++it) {
          kernels::KernelResult r;
          switch (b) {
            case Benchmark::kMpegaudio:
              r = kernels::mpegaudio(env, domain, spec.mpeg_frames, rng);
              break;
            case Benchmark::kFft:
              r = kernels::fft(env, domain, spec.fft_doubles, rng);
              break;
            case Benchmark::kMonteCarlo:
              r = kernels::monte_carlo(env, domain, spec.mc_samples, rng);
              break;
            case Benchmark::kSor:
              r = kernels::sor(env, domain, spec.sor_grid, spec.sor_iters,
                               rng);
              break;
            case Benchmark::kLu:
              r = kernels::lu(env, domain, spec.lu_n, rng);
              break;
            case Benchmark::kSparse:
              r = kernels::sparse_matmult(env, domain, spec.sparse_n,
                                          spec.sparse_nz, spec.sparse_iters,
                                          rng);
              break;
          }
          checksum += r.checksum;
          if (r.alloc_bytes > 0) {
            rt::alloc_churn(call.isolate, r.alloc_bytes,
                            spec.churn_live_bytes);
          }
        }
        return rt::Value(checksum);
      });

  auto& main_cls = app.add_class("Main", model::Annotation::kNeutral);
  main_cls.add_static_method("main", 0)
      .body(model::IrBuilder()
                .new_object("Bench", 0)
                .call("run", 0)
                .ret()
                .build());
  app.set_main_class("Main");
  return app;
}

NiRun run_native_image(Benchmark b, const WorkloadSpec& spec, bool in_sgx,
                       const CostModel& cost) {
  const model::AppModel app_model = build_model(b, spec);
  core::AppConfig config;
  config.cost = cost;
  config.trusted_heap_bytes = spec.heap_bytes;
  config.untrusted_heap_bytes = spec.heap_bytes;

  NiRun run;
  if (in_sgx) {
    core::UnpartitionedApp app(app_model, config);
    app.run_main();
    run.total_cycles = app.env().clock.now();
    run.gc_cycles = app.context().isolate().heap().stats().gc_cycles_total;
    run.gc_count = app.context().isolate().heap().stats().gc_count;
    run.seconds = app.now_seconds();
  } else {
    core::NativeApp app(app_model, config);
    app.run_main();
    run.total_cycles = app.env().clock.now();
    run.gc_cycles = app.context().isolate().heap().stats().gc_cycles_total;
    run.gc_count = app.context().isolate().heap().stats().gc_count;
    run.seconds = app.now_seconds();
  }
  return run;
}

SpecRow run_all_modes(Benchmark b, const WorkloadSpec& spec,
                      const CostModel& cost) {
  const NiRun nosgx = run_native_image(b, spec, /*in_sgx=*/false, cost);
  const NiRun sgx = run_native_image(b, spec, /*in_sgx=*/true, cost);

  const baselines::JvmEstimator jvm(cost);
  const auto nosgx_jvm =
      jvm.estimate(kSpecJvmClassCount, nosgx.total_cycles, nosgx.gc_cycles,
                   /*in_scone=*/false, spec.jvm_compute_factor);
  const auto scone_jvm =
      jvm.estimate(kSpecJvmClassCount, sgx.total_cycles, sgx.gc_cycles,
                   /*in_scone=*/true, spec.jvm_compute_factor);

  SpecRow row;
  row.nosgx_ni = nosgx.seconds;
  row.sgx_ni = sgx.seconds;
  row.nosgx_jvm = nosgx_jvm.seconds(cost);
  row.scone_jvm = scone_jvm.seconds(cost);
  return row;
}

}  // namespace msv::apps::specjvm
