// SPECjvm2008 micro-benchmark harness (Fig. 12 / Table 1).
//
// Each benchmark runs the real kernel (src/kernels) inside a managed
// runtime as a native image — outside SGX (NoSGX-NI) or inside an enclave
// (SGX-NI) — and converts the kernel's allocation pressure into real
// allocations on the isolate heap so the serial collector's behaviour is
// measured, not assumed. The JVM columns (NoSGX+JVM, SCONE+JVM) come from
// the baselines::JvmEstimator applied to the measured decomposition.
#pragma once

#include <cstdint>
#include <string>

#include "model/app_model.h"
#include "support/cost_model.h"

namespace msv::apps::specjvm {

enum class Benchmark { kMpegaudio, kFft, kMonteCarlo, kSor, kLu, kSparse };

constexpr Benchmark kAllBenchmarks[] = {
    Benchmark::kMpegaudio, Benchmark::kFft, Benchmark::kMonteCarlo,
    Benchmark::kSor,       Benchmark::kLu,  Benchmark::kSparse};

const char* benchmark_name(Benchmark b);

// Workload sizes ("default workloads" of §6.6), chosen so the NoSGX-NI
// runs land in the sub-second to few-second range of Fig. 12.
struct WorkloadSpec {
  std::uint32_t iterations = 1;
  std::uint64_t fft_doubles = 1 << 19;
  std::uint32_t sor_grid = 256;
  std::uint32_t sor_iters = 60;
  std::uint32_t lu_n = 180;
  std::uint32_t sparse_n = 8000;
  std::uint32_t sparse_nz = 120'000;
  std::uint32_t sparse_iters = 80;
  std::uint64_t mc_samples = 400'000;
  std::uint32_t mpeg_frames = 40'000;
  // Heap configuration for the native image (-Xmx analog) and the live
  // window of the allocation churn.
  std::uint64_t heap_bytes = 48ull << 20;
  std::uint64_t churn_live_bytes = 6ull << 20;
  // Measured JVM-vs-AOT throughput gap for this kernel (SPECjvm kernels
  // differ widely: trig-heavy butterflies suffer under the JIT, plain
  // array sweeps run at AOT speed).
  double jvm_compute_factor = 1.35;

  static WorkloadSpec defaults(Benchmark b);
};

struct NiRun {
  double seconds = 0;
  Cycles total_cycles = 0;
  Cycles gc_cycles = 0;
  std::uint64_t gc_count = 0;
  double checksum = 0;
};

// The application model the harness runs (a neutral Bench class whose
// native run() executes the kernel). Exposed so msvlint can lint the
// SPECjvm corpus target with the same model the benchmarks execute.
model::AppModel build_model(Benchmark b, const WorkloadSpec& spec);

// Runs one benchmark as a native image; `in_sgx` selects the enclave.
NiRun run_native_image(Benchmark b, const WorkloadSpec& spec, bool in_sgx,
                       const CostModel& cost = CostModel::paper());

// All four configurations of Fig. 12 (seconds).
struct SpecRow {
  double nosgx_jvm = 0;
  double nosgx_ni = 0;
  double sgx_ni = 0;
  double scone_jvm = 0;
  // Table 1: "latency gain over SCONE+JVM" of the in-enclave native image.
  double table1_gain() const { return scone_jvm / sgx_ni; }
};

SpecRow run_all_modes(Benchmark b, const WorkloadSpec& spec,
                      const CostModel& cost = CostModel::paper());

// Class count the JVM would load for the SPECjvm harness + benchmark.
constexpr std::uint64_t kSpecJvmClassCount = 420;

}  // namespace msv::apps::specjvm
