// The synthetic Java program generator (§6.5).
//
// "We developed a Java program generator to create Java applications with
// various numbers of classes annotated as trusted or untrusted. We
// generated a Java application with 100 classes. Each class contains an
// instance method which performs either CPU intensive operations (compute
// a fast Fourier transform on a 1 MB double array) or I/O intensive
// operations (writes 4 KB of data to a file). The main method instantiates
// each class and invokes the associated instance method."
//
// The generator also builds the minimal trusted/untrusted object models
// used by the §6.2–§6.3 micro-benchmarks (proxy creation, RMI,
// serialization).
#pragma once

#include <cstdint>

#include "model/app_model.h"

namespace msv::apps::synthetic {

enum class WorkKind { kCpu, kIo };

struct SyntheticSpec {
  std::uint32_t n_classes = 100;
  // Fraction of classes annotated @Untrusted (the x-axis of Fig. 6); the
  // rest are @Trusted.
  double untrusted_fraction = 0.0;
  WorkKind work = WorkKind::kCpu;
  std::uint32_t fft_mb = 1;        // CPU variant: FFT over fft_mb MB
  std::uint32_t io_bytes = 4096;   // I/O variant: bytes written per call
  std::uint64_t seed = 42;         // which classes get which annotation
  // Fraction of the @Trusted classes whose constructor stores genuinely
  // enclave-confined material (`enclave_secret(i)`) into `state` instead
  // of the constant 0. The value-trust analysis (analysis/trust.h) proves
  // the remaining trusted classes secret-free, which is what gives the
  // partition optimizer room to move: the abl_partition workload uses
  // untrusted_fraction = 0 with a small secret_fraction, so the optimal
  // partition keeps only the secret holders inside. 0.0 (the default)
  // leaves the generated model byte-identical to the historical output.
  double secret_fraction = 0.0;
  // Extra work() invocations main issues per instance — weights the
  // profiled call-count edges so crossing savings dominate the modeled
  // cost. 0 keeps the historical single-call main.
  std::uint32_t extra_work_calls = 0;
};

// Generates the application: classes C0..Cn-1 with an instance method
// work(), plus an untrusted Main whose main() instantiates every class and
// invokes work() on it.
model::AppModel generate(const SyntheticSpec& spec);

// Micro-benchmark model for Figs. 3–4: a trusted Worker and an untrusted
// Sink, each with a no-arg constructor, a cheap setter set(v), and a
// setter taking a serializable list set_list(values).
model::AppModel build_micro_app();

}  // namespace msv::apps::synthetic
