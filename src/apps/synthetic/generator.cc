#include "apps/synthetic/generator.h"

#include "interp/exec_context.h"
#include "model/ir.h"
#include "support/error.h"
#include "support/rng.h"

namespace msv::apps::synthetic {

using model::Annotation;
using model::IrBuilder;
using rt::Value;

model::AppModel generate(const SyntheticSpec& spec) {
  MSV_CHECK_MSG(spec.untrusted_fraction >= 0.0 &&
                    spec.untrusted_fraction <= 1.0,
                "untrusted_fraction must be in [0, 1]");
  model::AppModel app;

  // Choose which classes are untrusted: a deterministic shuffle so a 40%
  // run is not simply a prefix of a 50% run.
  const auto n_untrusted = static_cast<std::uint32_t>(
      spec.untrusted_fraction * spec.n_classes + 0.5);
  std::vector<std::uint32_t> order(spec.n_classes);
  for (std::uint32_t i = 0; i < spec.n_classes; ++i) order[i] = i;
  Rng rng(spec.seed);
  for (std::uint32_t i = spec.n_classes; i > 1; --i) {
    std::swap(order[i - 1], order[rng.next_below(i)]);
  }
  std::vector<bool> untrusted(spec.n_classes, false);
  for (std::uint32_t i = 0; i < n_untrusted; ++i) untrusted[order[i]] = true;

  // Which trusted classes hold genuine secrets: a deterministic pick from
  // a separate Rng stream so enabling secret_fraction never perturbs the
  // annotation shuffle above.
  MSV_CHECK_MSG(spec.secret_fraction >= 0.0 && spec.secret_fraction <= 1.0,
                "secret_fraction must be in [0, 1]");
  std::vector<bool> secret(spec.n_classes, false);
  if (spec.secret_fraction > 0.0) {
    std::vector<std::uint32_t> trusted_ids;
    for (std::uint32_t i = 0; i < spec.n_classes; ++i) {
      if (!untrusted[i]) trusted_ids.push_back(i);
    }
    const auto n_secret = static_cast<std::uint32_t>(
        spec.secret_fraction * trusted_ids.size() + 0.5);
    Rng secret_rng(spec.seed ^ 0x5ec2e7);
    for (std::uint32_t i = static_cast<std::uint32_t>(trusted_ids.size());
         i > 1; --i) {
      std::swap(trusted_ids[i - 1], trusted_ids[secret_rng.next_below(i)]);
    }
    for (std::uint32_t i = 0; i < n_secret && i < trusted_ids.size(); ++i) {
      secret[trusted_ids[i]] = true;
    }
  }

  IrBuilder main_ir;
  for (std::uint32_t i = 0; i < spec.n_classes; ++i) {
    const std::string name = "C" + std::to_string(i);
    auto& cls = app.add_class(
        name, untrusted[i] ? Annotation::kUntrusted : Annotation::kTrusted);
    cls.add_field("state");
    IrBuilder ctor;
    ctor.locals(1).load_local(0);
    if (secret[i]) {
      // state = enclave_secret(i): enclave-confined key material the
      // trust analysis must keep inside (kSecret, never demotable).
      ctor.const_val(Value(static_cast<std::int64_t>(i)))
          .intrinsic("enclave_secret", 1);
    } else {
      ctor.const_val(Value(std::int32_t{0}));
    }
    ctor.put_field(0).ret_void();
    cls.add_constructor(0).body(ctor.build());
    IrBuilder work;
    work.locals(1);
    if (spec.work == WorkKind::kCpu) {
      work.const_val(Value(static_cast<std::int64_t>(spec.fft_mb)))
          .intrinsic("compute_fft", 1)
          .pop();
    } else {
      work.const_val(Value("out_" + name + ".dat"))
          .const_val(Value(static_cast<std::int64_t>(spec.io_bytes)))
          .intrinsic("io_write", 2)
          .pop();
    }
    work.ret_void();
    cls.add_method("work", 0).body(work.build());

    main_ir.new_object(name, 0);
    for (std::uint32_t k = 0; k < spec.extra_work_calls; ++k) {
      main_ir.dup().call("work", 0).pop();
    }
    main_ir.call("work", 0).pop();
  }
  main_ir.ret_void();

  auto& main_cls = app.add_class("Main", Annotation::kUntrusted);
  main_cls.add_static_method("main", 0).body(main_ir.build());
  app.set_main_class("Main");
  app.validate();
  return app;
}

model::AppModel build_micro_app() {
  model::AppModel app;
  for (const auto& [name, annotation] :
       {std::pair<const char*, Annotation>{"Worker", Annotation::kTrusted},
        std::pair<const char*, Annotation>{"Sink",
                                           Annotation::kUntrusted}}) {
    auto& cls = app.add_class(name, annotation);
    cls.add_field("value");
    cls.add_field("items");
    cls.add_constructor(0).body(IrBuilder()
                                    .locals(1)
                                    .load_local(0)
                                    .const_val(Value(std::int32_t{0}))
                                    .put_field(0)
                                    .ret_void()
                                    .build());
    // void set(int v) { this.value = v; } — the paper's micro-benchmark
    // methods are "setter methods updating an object field" (§6.3). The
    // declared signature is all-primitive, so its relay qualifies for the
    // fixed-layout wire path.
    // batch_async: a pure receiver-field write commutes with any batch it
    // can appear in, so the async RMI layer may pipeline it (MSV009 keeps
    // this honest).
    cls.add_method("set", 1)
        .primitive_signature()
        .batch_async()
        .body(IrBuilder()
                  .locals(2)
                  .load_local(0)
                  .load_local(1)
                  .put_field(0)
                  .ret_void()
                  .build());
    // void set_list(List values) { this.items = values; }
    cls.add_method("set_list", 1).body(IrBuilder()
                                           .locals(2)
                                           .load_local(0)
                                           .load_local(1)
                                           .put_field(1)
                                           .ret_void()
                                           .build());
    cls.add_method("get", 0).primitive_signature().batch_async().body(
        IrBuilder().locals(1).load_local(0).get_field(0).ret().build());
  }
  // Trusted Driver: runs creation/invocation loops *inside* the enclave so
  // the micro-benchmarks can measure the concrete-in, proxy-in->out and
  // proxy-in->out+s scenarios of Figs. 3-4 with a single entering ecall.
  auto& driver = app.add_class("Driver", Annotation::kTrusted);
  driver.add_field("unused");
  driver.add_constructor(0).body_native(
      [](model::NativeCall&) { return Value(); });
  driver.add_method("make_workers", 1)
      .body_native([](model::NativeCall& call) {
        const std::int64_t n = call.args[0].as_i64();
        for (std::int64_t i = 0; i < n; ++i) call.ctx.construct("Worker", {});
        return Value(n);
      })
      .calls("Worker", model::kConstructorName);
  driver.add_method("call_worker", 1)
      .body_native([](model::NativeCall& call) {
        const std::int64_t n = call.args[0].as_i64();
        const rt::GcRef w = call.ctx.construct("Worker", {}).as_ref();
        for (std::int64_t i = 0; i < n; ++i) {
          call.ctx.invoke(w, "set", {Value(static_cast<std::int32_t>(i))});
        }
        return Value(n);
      })
      .calls("Worker", model::kConstructorName)
      .calls("Worker", "set");
  driver.add_method("make_sinks", 1)
      .body_native([](model::NativeCall& call) {
        const std::int64_t n = call.args[0].as_i64();
        for (std::int64_t i = 0; i < n; ++i) call.ctx.construct("Sink", {});
        return Value(n);
      })
      .calls("Sink", model::kConstructorName);
  driver.add_method("call_sink", 1)
      .body_native([](model::NativeCall& call) {
        const std::int64_t n = call.args[0].as_i64();
        const rt::GcRef s = call.ctx.construct("Sink", {}).as_ref();
        for (std::int64_t i = 0; i < n; ++i) {
          call.ctx.invoke(s, "set", {Value(static_cast<std::int32_t>(i))});
        }
        return Value(n);
      })
      .calls("Sink", model::kConstructorName)
      .calls("Sink", "set");
  driver.add_method("call_sink_list", 2)
      .body_native([](model::NativeCall& call) {
        const std::int64_t n = call.args[0].as_i64();
        const rt::GcRef s = call.ctx.construct("Sink", {}).as_ref();
        for (std::int64_t i = 0; i < n; ++i) {
          call.ctx.invoke(s, "set_list", {call.args[1]});
        }
        return Value(n);
      })
      .calls("Sink", model::kConstructorName)
      .calls("Sink", "set_list");

  // main exercises both classes so the §5.3 reachability keeps them (and
  // their proxies) in both images.
  auto& main_cls = app.add_class("Main", Annotation::kUntrusted);
  main_cls.add_static_method("main", 0)
      .body(IrBuilder()
                .locals(1)
                .new_object("Worker", 0)
                .store_local(0)
                .load_local(0)
                .const_val(Value(std::int32_t{1}))
                .call("set", 1)
                .pop()
                .load_local(0)
                .call("get", 0)
                .pop()
                .new_object("Sink", 0)
                .store_local(0)
                .load_local(0)
                .const_val(Value(std::int32_t{1}))
                .call("set", 1)
                .pop()
                .new_object("Driver", 0)
                .store_local(0)
                .load_local(0)
                .const_val(Value(std::int64_t{1}))
                .call("call_sink", 1)
                .pop()
                .ret_void()
                .build());
  app.set_main_class("Main");
  app.validate();
  return app;
}

}  // namespace msv::apps::synthetic
