#include "interp/exec_context.h"

#include <map>

#include "analysis/verify.h"
#include "support/error.h"

namespace msv::interp {

using model::ClassDecl;
using model::MethodDecl;
using model::MethodKind;
using model::Op;
using rt::GcRef;
using rt::Value;
using rt::ValueType;

ExecContext::ExecContext(Env& env, rt::Isolate& isolate,
                         const model::AppModel& classes, shim::IoService& io,
                         IntrinsicTable intrinsics)
    : env_(env),
      isolate_(isolate),
      classes_(classes),
      io_(io),
      intrinsics_(std::move(intrinsics)) {
  // Class ids are indices into the image's class table; they end up in
  // object headers so class_of() can resolve a receiver.
  for (const auto& c : classes_.classes()) {
    class_ids_.emplace(c.name(),
                       static_cast<std::uint32_t>(class_table_.size()));
    class_table_.push_back(&c);
  }
}

std::uint32_t ExecContext::class_id(const std::string& name) const {
  const auto it = class_ids_.find(name);
  if (it == class_ids_.end()) {
    throw RuntimeFault("class " + name + " is not part of image '" +
                       isolate_.name() + "' (pruned or never defined)");
  }
  return it->second;
}

const ClassDecl& ExecContext::class_by_id(std::uint32_t id) const {
  MSV_CHECK_MSG(id < class_table_.size(), "bad class id");
  return *class_table_[id];
}

const ClassDecl& ExecContext::class_of(const GcRef& obj) const {
  MSV_CHECK_MSG(!obj.is_null(), "class_of(null)");
  MSV_CHECK_MSG(obj.isolate() == &isolate_, "object from a foreign isolate");
  return class_by_id(isolate_.heap().class_id(obj.address()));
}

const MethodDecl* ExecContext::resolve_method(const ClassDecl& cls,
                                              const std::string& method) const {
  // Legacy mode reproduces the pre-overhaul linear name scan.
  if (!fast_paths_) return cls.find_method(method);
  auto it = method_index_.find(&cls);
  if (it == method_index_.end()) {
    MethodIndex index;
    index.reserve(cls.methods().size());
    for (const auto& m : cls.methods()) index.emplace(m.name(), &m);
    it = method_index_.emplace(&cls, std::move(index)).first;
  }
  const auto mit = it->second.find(std::string_view(method));
  return mit == it->second.end() ? nullptr : mit->second;
}

rt::Value ExecContext::construct(const std::string& cls_name,
                                 std::vector<Value> args) {
  const ClassDecl& cls = classes_.cls(cls_name);
  if (cls.is_proxy()) {
    MSV_CHECK_MSG(remote_ != nullptr,
                  "proxy construction without an RMI layer: " + cls_name);
    ++stats_.proxy_constructions;
    return remote_->construct_proxy(*this, cls, args);
  }
  ++stats_.objects_constructed;
  const GcRef self = isolate_.new_instance(
      class_id(cls_name), static_cast<std::uint32_t>(cls.fields().size()));
  const MethodDecl* ctor = resolve_method(cls, model::kConstructorName);
  if (ctor != nullptr) {
    if (args.size() != ctor->param_count()) {
      throw RuntimeFault("constructor of " + cls_name + " expects " +
                         std::to_string(ctor->param_count()) + " args, got " +
                         std::to_string(args.size()));
    }
    invoke_method(cls, *ctor, self, args);
  } else if (!args.empty()) {
    throw RuntimeFault("class " + cls_name +
                       " has no constructor but got arguments");
  }
  return Value(self);
}

rt::Value ExecContext::invoke(const GcRef& receiver, const std::string& method,
                              std::vector<Value> args) {
  const ClassDecl& cls = class_of(receiver);
  const MethodDecl* m = resolve_method(cls, method);
  if (m == nullptr) {
    throw RuntimeFault("no method " + cls.name() + "." + method);
  }
  MSV_CHECK_MSG(!m->is_static(), "instance call to static method " + method);
  return invoke_method(cls, *m, receiver, args);
}

rt::Value ExecContext::invoke_static(const std::string& cls_name,
                                     const std::string& method,
                                     std::vector<Value> args) {
  const ClassDecl& cls = classes_.cls(cls_name);
  const MethodDecl* m = resolve_method(cls, method);
  if (m == nullptr || !m->is_static()) {
    throw RuntimeFault("no static method " + cls_name + "." + method);
  }
  return invoke_method(cls, *m, GcRef(), args);
}

rt::Value ExecContext::run_main(std::vector<Value> args) {
  MSV_CHECK_MSG(!classes_.main_class().empty(),
                "image '" + isolate_.name() + "' has no main class");
  return invoke_static(classes_.main_class(), "main", std::move(args));
}

std::string ExecContext::trace_to_json() const {
  // The shape of the GraalVM agent's reflect-config.json: one entry per
  // class listing the methods observed at run time.
  std::map<std::string, std::vector<std::string>> by_class;
  for (const auto& [cls, method] : traced_) by_class[cls].push_back(method);

  std::string out = "[\n";
  bool first_class = true;
  for (const auto& [cls, methods] : by_class) {
    if (!first_class) out += ",\n";
    first_class = false;
    out += "  { \"name\": \"" + cls + "\", \"methods\": [";
    for (std::size_t i = 0; i < methods.size(); ++i) {
      if (i > 0) out += ", ";
      out += "{ \"name\": \"" + methods[i] + "\" }";
    }
    out += "] }";
  }
  out += "\n]\n";
  return out;
}

rt::Value ExecContext::invoke_method(const ClassDecl& cls,
                                     const MethodDecl& method,
                                     const GcRef& self,
                                     std::vector<Value>& args) {
  if (args.size() != method.param_count()) {
    throw RuntimeFault("method " + cls.name() + "." + method.name() +
                       " expects " + std::to_string(method.param_count()) +
                       " args, got " + std::to_string(args.size()));
  }
  ++stats_.method_calls;
  env_.clock.advance(env_.cost.method_call_cycles);
  if (tracing_) traced_.emplace(cls.name(), method.name());
  if (edge_tracing_) {
    if (!edge_stack_.empty() && edge_stack_.back().second != nullptr) {
      native_edges_.insert({{edge_stack_.back().first->name(),
                             edge_stack_.back().second->name()},
                            {cls.name(), method.name()}});
    }
    edge_stack_.push_back(
        {&cls, method.kind() == MethodKind::kNative ? &method : nullptr});
  }
  struct EdgeGuard {
    ExecContext* ctx;  // null: tracing disabled
    ~EdgeGuard() {
      if (ctx != nullptr) ctx->edge_stack_.pop_back();
    }
  } edge_guard{edge_tracing_ ? this : nullptr};
  if (call_profiling_) {
    const MethodRef callee{cls.name(), method.name()};
    ++call_counts_[{profile_stack_.empty() ? MethodRef{"<entry>", ""}
                                           : profile_stack_.back(),
                    callee}];
    profile_stack_.push_back(callee);
  }
  struct ProfileGuard {
    ExecContext* ctx;  // null: profiling disabled
    ~ProfileGuard() {
      if (ctx != nullptr) ctx->profile_stack_.pop_back();
    }
  } profile_guard{call_profiling_ ? this : nullptr};

  switch (method.kind()) {
    case MethodKind::kIr: {
      if (verify_bytecode_) ensure_verified(cls, method);
      if (fast_paths_ && !self.is_null()) {
        // Quickened bodies replicate exec_ir's op count and charges; null
        // receivers fall through so the generic loop raises its errors.
        const QuickInfo q = quick_info(method);
        if (q.kind == QuickKind::kSetter) {
          stats_.ir_ops += 4;
          env_.clock.advance(4 * env_.cost.ir_op_cycles);
          isolate_.set_field(self, q.field, args[0]);
          return Value();
        }
        if (q.kind == QuickKind::kGetter) {
          stats_.ir_ops += 3;
          env_.clock.advance(3 * env_.cost.ir_op_cycles);
          return Value(isolate_.get_field(self, q.field));
        }
      }
      return exec_ir(cls, method, self, args);
    }
    case MethodKind::kNative: {
      model::NativeCall call{*this, isolate_, self, args};
      return method.native()(call);
    }
    case MethodKind::kProxyStub: {
      MSV_CHECK_MSG(remote_ != nullptr,
                    "proxy stub without an RMI layer: " + cls.name() + "." +
                        method.name());
      ++stats_.proxy_invocations;
      return remote_->invoke_proxy(*this, self, cls, method, args);
    }
    case MethodKind::kRelay:
      // Relay methods are bridge entry points; they are dispatched by the
      // RMI layer (which resolves their target), never invoked as normal
      // methods.
      throw RuntimeFault("relay method " + cls.name() + "." + method.name() +
                         " invoked locally");
  }
  return Value();
}

void ExecContext::ensure_verified(const ClassDecl& cls,
                                  const MethodDecl& method) {
  auto it = verified_.find(&method);
  if (it == verified_.end()) {
    analysis::VerifyOptions opts;
    opts.app = &classes_;
    opts.cls = &cls;
    opts.method = &method;
    const auto errors = analysis::verify(method.ir(), opts);
    it = verified_
             .emplace(&method,
                      errors.empty() ? std::string() : errors.front().message)
             .first;
  }
  if (!it->second.empty()) {
    throw TrapError("verify gate: refusing to execute " + cls.name() + "." +
                    method.name() + ": " + it->second);
  }
}

rt::Value ExecContext::invoke_quick(const ClassDecl& cls,
                                    const MethodDecl& method,
                                    const QuickInfo& q, const GcRef& self,
                                    std::vector<Value>& args) {
  // Charges and stats replicate invoke_method's quickened kIr case exactly
  // (one method call plus the body's op count); only the per-call
  // classifier lookup is gone.
  if (args.size() != method.param_count()) {
    throw RuntimeFault("method " + cls.name() + "." + method.name() +
                       " expects " + std::to_string(method.param_count()) +
                       " args, got " + std::to_string(args.size()));
  }
  ++stats_.method_calls;
  if (tracing_) traced_.emplace(cls.name(), method.name());
  if (call_profiling_) {
    // Quickened bodies are leaves; count the edge without a stack frame.
    ++call_counts_[{profile_stack_.empty() ? MethodRef{"<entry>", ""}
                                           : profile_stack_.back(),
                    {cls.name(), method.name()}}];
  }
  if (verify_bytecode_) ensure_verified(cls, method);
  if (q.kind == QuickKind::kSetter) {
    stats_.ir_ops += 4;
    env_.clock.advance(env_.cost.method_call_cycles +
                       4 * env_.cost.ir_op_cycles);
    isolate_.set_field(self, q.field, args[0]);
    return Value();
  }
  stats_.ir_ops += 3;
  env_.clock.advance(env_.cost.method_call_cycles + 3 * env_.cost.ir_op_cycles);
  return Value(isolate_.get_field(self, q.field));
}

namespace {

bool is_numeric(const Value& v) {
  const ValueType t = v.type();
  return t == ValueType::kI32 || t == ValueType::kI64 || t == ValueType::kF64;
}

Value arith(Op op, const Value& lhs, const Value& rhs) {
  MSV_CHECK_MSG(is_numeric(lhs) && is_numeric(rhs),
                "arithmetic on non-numeric values");
  const bool f = lhs.type() == ValueType::kF64 || rhs.type() == ValueType::kF64;
  const bool wide =
      lhs.type() == ValueType::kI64 || rhs.type() == ValueType::kI64;
  if (f) {
    const double a = lhs.as_f64(), b = rhs.as_f64();
    switch (op) {
      case Op::kAdd:
        return Value(a + b);
      case Op::kSub:
        return Value(a - b);
      case Op::kMul:
        return Value(a * b);
      case Op::kDiv:
        return Value(a / b);
      case Op::kLt:
        return Value(a < b);
      case Op::kLe:
        return Value(a <= b);
      default:
        return Value(a == b);
    }
  }
  const std::int64_t a = lhs.as_i64(), b = rhs.as_i64();
  auto narrow = [&](std::int64_t r) {
    return wide ? Value(r) : Value(static_cast<std::int32_t>(r));
  };
  switch (op) {
    case Op::kAdd:
      return narrow(a + b);
    case Op::kSub:
      return narrow(a - b);
    case Op::kMul:
      return narrow(a * b);
    case Op::kDiv:
      if (b == 0) throw RuntimeFault("integer division by zero");
      return narrow(a / b);
    case Op::kLt:
      return Value(a < b);
    case Op::kLe:
      return Value(a <= b);
    default:
      return Value(a == b);
  }
}

bool value_equals(const Value& a, const Value& b) {
  if (is_numeric(a) && is_numeric(b)) return a.as_f64() == b.as_f64();
  if (a.type() != b.type()) return false;
  switch (a.type()) {
    case ValueType::kNull:
      return true;
    case ValueType::kBool:
      return a.as_bool() == b.as_bool();
    case ValueType::kString:
      return a.as_string() == b.as_string();
    case ValueType::kRef:
      return a.as_ref().same_object(b.as_ref());
    default:
      return false;
  }
}

}  // namespace

ExecContext::QuickInfo ExecContext::quick_info(
    const model::MethodDecl& method) const {
  const auto it = quick_.find(&method);
  if (it != quick_.end()) return it->second;
  QuickInfo info;
  const auto& code = method.ir().code;
  if (!method.is_static()) {
    if (method.param_count() == 1 && code.size() == 4 &&
        code[0].op == Op::kLoadLocal && code[0].a == 0 &&
        code[1].op == Op::kLoadLocal && code[1].a == 1 &&
        code[2].op == Op::kPutField && code[3].op == Op::kReturnVoid) {
      info = {QuickKind::kSetter, static_cast<std::uint32_t>(code[2].a)};
    } else if (method.param_count() == 0 && code.size() == 3 &&
               code[0].op == Op::kLoadLocal && code[0].a == 0 &&
               code[1].op == Op::kGetField && code[2].op == Op::kReturn) {
      info = {QuickKind::kGetter, static_cast<std::uint32_t>(code[1].a)};
    }
  }
  quick_.emplace(&method, info);
  return info;
}

rt::Value ExecContext::exec_ir(const ClassDecl& cls, const MethodDecl& method,
                               GcRef self, std::vector<Value>& args) {
  const model::IrBody& ir = method.ir();

  // Locals: `this` at 0 for instance methods, then parameters. Both frame
  // vectors come from the pool and go back on every exit path (legacy mode
  // allocates fresh ones, like the pre-overhaul interpreter).
  std::vector<Value> locals = fast_paths_ ? frame_take() : std::vector<Value>();
  std::vector<Value> stack = fast_paths_ ? frame_take() : std::vector<Value>();
  struct FrameGuard {
    ExecContext* ctx;  // null: pooling disabled
    std::vector<Value>* locals;
    std::vector<Value>* stack;
    ~FrameGuard() {
      if (ctx == nullptr) return;
      ctx->frame_put(std::move(*locals));
      ctx->frame_put(std::move(*stack));
    }
  } frame_guard{fast_paths_ ? this : nullptr, &locals, &stack};
  locals.resize(
      std::max<std::size_t>(ir.local_count,
                            args.size() + (method.is_static() ? 0 : 1)));
  std::size_t next = 0;
  if (!method.is_static()) locals[next++] = Value(self);
  for (auto& a : args) locals[next++] = std::move(a);
  auto pop = [&]() {
    MSV_CHECK_MSG(!stack.empty(), "operand stack underflow in " + cls.name() +
                                      "." + method.name());
    Value v = std::move(stack.back());
    stack.pop_back();
    return v;
  };
  auto pop_args = [&](std::int32_t argc) {
    std::vector<Value> out(static_cast<std::size_t>(argc));
    for (std::int32_t i = argc - 1; i >= 0; --i) out[i] = pop();
    return out;
  };
  auto as_obj = [&](const Value& v) {
    MSV_CHECK_MSG(v.type() == ValueType::kRef && !v.as_ref().is_null(),
                  "object expected in " + cls.name() + "." + method.name());
    return v.as_ref();
  };

  std::size_t pc = 0;
  std::uint64_t ops = 0;
  // Operand decoding traps: an out-of-bounds constant-pool/name-pool/
  // local/field index or jump target raises a typed TrapError instead of
  // indexing past the pool (UB) or silently exiting the dispatch loop.
  auto trap = [&](const std::string& what) -> void {
    throw TrapError(what + " in " + cls.name() + "." + method.name() + "@" +
                    std::to_string(pc));
  };
  auto checked_index = [&](std::int32_t index, std::size_t size,
                           const char* pool) {
    if (index < 0 || static_cast<std::size_t>(index) >= size) {
      trap(std::string(pool) + " index " + std::to_string(index) +
           " out of bounds (size " + std::to_string(size) + ")");
    }
    return static_cast<std::size_t>(index);
  };
  while (pc < ir.code.size()) {
    const model::Instr instr = ir.code[pc];
    ++ops;
    bool jumped = false;
    switch (instr.op) {
      case Op::kNop:
        break;
      case Op::kConst:
        stack.push_back(
            ir.consts[checked_index(instr.a, ir.consts.size(), "constant-pool")]);
        break;
      case Op::kLoadLocal:
        stack.push_back(locals[checked_index(instr.a, locals.size(), "local")]);
        break;
      case Op::kStoreLocal:
        locals[checked_index(instr.a, locals.size(), "local")] = pop();
        break;
      case Op::kGetField: {
        const GcRef obj = as_obj(pop());
        checked_index(instr.a, class_of(obj).fields().size(), "field");
        stack.push_back(isolate_.get_field(obj, instr.a));
        break;
      }
      case Op::kPutField: {
        Value value = pop();
        const GcRef obj = as_obj(pop());
        checked_index(instr.a, class_of(obj).fields().size(), "field");
        isolate_.set_field(obj, instr.a, value);
        break;
      }
      case Op::kNew: {
        if (instr.b < 0) trap("negative argument count");
        auto ctor_args = pop_args(instr.b);
        stack.push_back(construct(
            ir.names[checked_index(instr.a, ir.names.size(), "name-pool")],
            std::move(ctor_args)));
        break;
      }
      case Op::kCall: {
        if (instr.b < 0) trap("negative argument count");
        const std::size_t name_index =
            checked_index(instr.a, ir.names.size(), "name-pool");
        auto call_args = pop_args(instr.b);
        const GcRef receiver = as_obj(pop());
        stack.push_back(
            invoke(receiver, ir.names[name_index], std::move(call_args)));
        break;
      }
      case Op::kIntrinsic: {
        if (instr.b < 0) trap("negative argument count");
        const std::string& name =
            ir.names[checked_index(instr.a, ir.names.size(), "name-pool")];
        auto call_args = pop_args(instr.b);
        if (!intrinsics_.contains(name)) {
          throw RuntimeFault("unknown intrinsic " + name);
        }
        stack.push_back(intrinsics_.get(name)(*this, call_args));
        break;
      }
      case Op::kAdd:
      case Op::kSub:
      case Op::kMul:
      case Op::kDiv:
      case Op::kLt:
      case Op::kLe: {
        const Value rhs = pop();
        const Value lhs = pop();
        stack.push_back(arith(instr.op, lhs, rhs));
        break;
      }
      case Op::kEq: {
        const Value rhs = pop();
        const Value lhs = pop();
        stack.push_back(Value(value_equals(lhs, rhs)));
        break;
      }
      case Op::kJump:
        pc = checked_index(instr.a, ir.code.size(), "jump target");
        jumped = true;
        break;
      case Op::kBranchFalse:
        checked_index(instr.a, ir.code.size(), "branch target");
        if (!pop().as_bool()) {
          pc = static_cast<std::size_t>(instr.a);
          jumped = true;
        }
        break;
      case Op::kPop:
        pop();
        break;
      case Op::kDup:
        MSV_CHECK_MSG(!stack.empty(), "dup on empty stack");
        stack.push_back(stack.back());
        break;
      case Op::kReturn: {
        Value result = pop();
        stats_.ir_ops += ops;
        env_.clock.advance(ops * env_.cost.ir_op_cycles);
        return result;
      }
      case Op::kReturnVoid:
        stats_.ir_ops += ops;
        env_.clock.advance(ops * env_.cost.ir_op_cycles);
        return Value();
    }
    if (!jumped) ++pc;
  }
  stats_.ir_ops += ops;
  env_.clock.advance(ops * env_.cost.ir_op_cycles);
  return Value();  // fell off the end: implicit void return
}

}  // namespace msv::interp
