// Interface between the execution engine and the RMI machinery.
//
// When the interpreter hits a proxy class — a `new` of a stripped class or
// a call on a proxy object — the actual work lives in the opposite runtime.
// The engine delegates to this interface; rmi::ProxyRuntime implements it
// (§5.2). Keeping it abstract breaks the interp <-> rmi dependency cycle
// and lets tests stub out the remote side.
#pragma once

#include <vector>

#include "model/app_model.h"
#include "runtime/value.h"

namespace msv::interp {

class ExecContext;

class RemoteInvoker {
 public:
  virtual ~RemoteInvoker() = default;

  // `new Proxy(args...)`: creates the local proxy object and the remote
  // mirror, registers both in the GC-synchronisation structures, and
  // returns the proxy reference.
  virtual rt::Value construct_proxy(ExecContext& caller,
                                    const model::ClassDecl& proxy_cls,
                                    std::vector<rt::Value>& args) = 0;

  // `proxy.method(args...)`: remote method invocation through the bridge.
  // `proxy` is null for static proxy methods.
  virtual rt::Value invoke_proxy(ExecContext& caller, const rt::GcRef& proxy,
                                 const model::ClassDecl& proxy_cls,
                                 const model::MethodDecl& stub,
                                 std::vector<rt::Value>& args) = 0;
};

}  // namespace msv::interp
