// The execution engine of one runtime (one native image in one isolate).
//
// An ExecContext binds together the pruned class set of a native image, the
// isolate it executes in, the I/O service visible on that side (HostIo or
// the enclave shim) and the remote invoker used when execution crosses the
// partition boundary. It interprets bytecode bodies, dispatches native
// bodies, and constructs objects — routing proxy classes to the RMI layer.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "interp/intrinsics.h"
#include "interp/remote.h"
#include "model/app_model.h"
#include "runtime/isolate.h"
#include "shim/io_service.h"
#include "sim/env.h"

namespace msv::interp {

struct ExecStats {
  std::uint64_t method_calls = 0;
  std::uint64_t ir_ops = 0;
  std::uint64_t objects_constructed = 0;
  std::uint64_t proxy_constructions = 0;
  std::uint64_t proxy_invocations = 0;
};

class ExecContext {
 public:
  // `classes` must outlive the context (it is the image's class set).
  ExecContext(Env& env, rt::Isolate& isolate, const model::AppModel& classes,
              shim::IoService& io, IntrinsicTable intrinsics);

  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  // Wires the RMI layer in; may stay null for unpartitioned images.
  void set_remote(RemoteInvoker* remote) { remote_ = remote; }

  // Hot-path machinery (cached method resolution, pooled frame vectors).
  // On by default; disabled by AppConfig::fast_rmi = false so the RMI
  // benchmark can compare against the legacy allocate-and-scan shape.
  // Simulated cycle charges are identical either way.
  void set_fast_paths(bool v) { fast_paths_ = v; }

  // Verify gate (AppConfig::verify_bytecode): refuse to execute any kIr
  // body that fails analysis::verify, raising TrapError at first dispatch
  // instead of trapping mid-method. Verdicts are cached per MethodDecl
  // (the image is frozen after load).
  void set_verify_bytecode(bool v) { verify_bytecode_ = v; }
  bool verify_bytecode() const { return verify_bytecode_; }

  // ---- Class table ----
  std::uint32_t class_id(const std::string& name) const;
  const model::ClassDecl& class_by_id(std::uint32_t id) const;
  const model::ClassDecl& class_of(const rt::GcRef& obj) const;

  // Cached method resolution: ClassDecl::find_method is a linear string
  // scan, too slow for the invoke/RMI hot path. The per-class index is
  // built on first use (after which the class is assumed frozen, like a
  // loaded image). Returns nullptr when absent.
  const model::MethodDecl* resolve_method(const model::ClassDecl& cls,
                                          const std::string& method) const;

  // ---- Execution ----
  // Allocates an instance of `cls` and runs its constructor (or builds a
  // proxy + remote mirror if `cls` is a proxy class). Returns the ref.
  rt::Value construct(const std::string& cls, std::vector<rt::Value> args);
  rt::Value invoke(const rt::GcRef& receiver, const std::string& method,
                   std::vector<rt::Value> args);
  rt::Value invoke_static(const std::string& cls, const std::string& method,
                          std::vector<rt::Value> args);
  // Runs the image's main entry point.
  rt::Value run_main(std::vector<rt::Value> args = {});

  // Dispatches an already-resolved method (used by the RMI relay path).
  rt::Value invoke_method(const model::ClassDecl& cls,
                          const model::MethodDecl& method,
                          const rt::GcRef& self, std::vector<rt::Value>& args);

  // Quickening (fast mode): trivial setter/getter bodies — the dominant
  // RMI relay targets (§6.3 measures "setter methods updating an object
  // field") — execute directly instead of through the generic IR loop.
  // Op counts and cycle charges replicate exec_ir exactly.
  enum class QuickKind : std::uint8_t { kNone, kSetter, kGetter };
  struct QuickInfo {
    QuickKind kind = QuickKind::kNone;
    std::uint32_t field = 0;
  };
  // Classifies a kIr method (cached per decl; the image is frozen after
  // load, so registration-time classification is sound).
  QuickInfo quick_info(const model::MethodDecl& method) const;

  // Invokes a pre-classified quickened method (`q.kind != kNone`, `self`
  // non-null). Charges are identical to invoke_method on the same decl;
  // the only difference is that the per-call classifier lookup is hoisted
  // to the caller (the RMI relay resolves it once at registration).
  rt::Value invoke_quick(const model::ClassDecl& cls,
                         const model::MethodDecl& method, const QuickInfo& q,
                         const rt::GcRef& self, std::vector<rt::Value>& args);

  // ---- Services for native method bodies ----
  Env& env() { return env_; }
  rt::Isolate& isolate() { return isolate_; }
  shim::IoService& io() { return io_; }
  const model::AppModel& classes() const { return classes_; }
  const ExecStats& stats() const { return stats_; }

  // Charges pure CPU work.
  void charge(Cycles cycles) { env_.clock.advance(cycles); }
  // Charges memory traffic through the isolate's domain (MEE-aware).
  void charge_traffic(std::uint64_t bytes) {
    isolate_.domain().charge_traffic(bytes);
  }

  // ---- Tracing agent (§2.2) ----
  // GraalVM ships a tracing agent that records dynamically accessed
  // program elements during a test run and emits the reflection
  // configuration the closed-world analysis needs. This is that agent:
  // enable it on an unpartitioned/native dry run, then feed
  // traced_methods() into AppConfig::extra_entry_points (or persist
  // trace_to_json(), the format the real agent writes).
  void enable_tracing() { tracing_ = true; }
  const std::set<std::pair<std::string, std::string>>& traced_methods()
      const {
    return traced_;
  }
  std::string trace_to_json() const;

  // Native call-edge tracing: records (native caller -> callee) pairs for
  // every invoke/construct a *native body* performs through this context,
  // so msvlint's MSV004 can diff observed edges against declared_callees()
  // hints. Only the immediate native caller records an edge — bytecode
  // frames between a native body and a deeper call push a sentinel.
  using MethodRef = std::pair<std::string, std::string>;
  void enable_native_edge_tracing() { edge_tracing_ = true; }
  const std::set<std::pair<MethodRef, MethodRef>>& native_edges() const {
    return native_edges_;
  }

  // Call-count profiling: records (caller -> callee) invocation counts for
  // every dispatch through this context, including the quickened fast
  // path. The caller is the innermost enclosing method frame; entry
  // invocations (run_main, harness-driven calls) are attributed to
  // ("<entry>", ""). This is the telemetry feeding the partition
  // optimizer's crossing-cost edges (analysis/optimize.h): a profiled dry
  // run on the unpartitioned app stands in for the recorded workload.
  void enable_call_profiling() { call_profiling_ = true; }
  const std::map<std::pair<MethodRef, MethodRef>, std::uint64_t>&
  call_counts() const {
    return call_counts_;
  }

 private:
  rt::Value exec_ir(const model::ClassDecl& cls,
                    const model::MethodDecl& method, rt::GcRef self,
                    std::vector<rt::Value>& args);

  // Verify-gate helper: throws TrapError when the body fails verification.
  void ensure_verified(const model::ClassDecl& cls,
                       const model::MethodDecl& method);

  // Frame-vector pool: locals and operand stacks are acquired here instead
  // of freshly allocated, so steady-state interpretation performs no heap
  // allocation per call (nested calls pull additional vectors).
  std::vector<rt::Value> frame_take() {
    if (frame_pool_.empty()) return {};
    std::vector<rt::Value> v = std::move(frame_pool_.back());
    frame_pool_.pop_back();
    return v;
  }
  void frame_put(std::vector<rt::Value>&& v) {
    // Clear before pooling: a parked Value would keep its GcRef rooted and
    // its referent alive across collections.
    v.clear();
    if (frame_pool_.size() < kMaxPooledFrames) {
      frame_pool_.push_back(std::move(v));
    }
  }
  static constexpr std::size_t kMaxPooledFrames = 64;

  Env& env_;
  rt::Isolate& isolate_;
  const model::AppModel& classes_;
  shim::IoService& io_;
  IntrinsicTable intrinsics_;
  RemoteInvoker* remote_ = nullptr;
  std::unordered_map<std::string, std::uint32_t> class_ids_;
  std::vector<const model::ClassDecl*> class_table_;
  // Lazily built name -> decl index per class (string_views point into the
  // stable MethodDecl names, methods live in a deque).
  using MethodIndex =
      std::unordered_map<std::string_view, const model::MethodDecl*>;
  mutable std::unordered_map<const model::ClassDecl*, MethodIndex>
      method_index_;
  std::vector<std::vector<rt::Value>> frame_pool_;
  mutable std::unordered_map<const model::MethodDecl*, QuickInfo> quick_;
  bool fast_paths_ = true;
  ExecStats stats_;
  bool tracing_ = false;
  std::set<std::pair<std::string, std::string>> traced_;
  bool verify_bytecode_ = false;
  // Verify-gate verdicts; value = first verification error ("" = clean).
  std::unordered_map<const model::MethodDecl*, std::string> verified_;
  bool edge_tracing_ = false;
  // Call stack for edge tracing: the declaring class plus the method when
  // it is native, nullptr sentinel otherwise (see enable_native_edge_tracing).
  std::vector<std::pair<const model::ClassDecl*, const model::MethodDecl*>>
      edge_stack_;
  std::set<std::pair<MethodRef, MethodRef>> native_edges_;
  bool call_profiling_ = false;
  std::vector<MethodRef> profile_stack_;
  std::map<std::pair<MethodRef, MethodRef>, std::uint64_t> call_counts_;
};

}  // namespace msv::interp
