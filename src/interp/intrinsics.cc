#include "interp/intrinsics.h"

#include <cstdio>

#include "interp/exec_context.h"
#include "kernels/kernels.h"
#include "support/error.h"

namespace msv::interp {

void IntrinsicTable::add(const std::string& name, IntrinsicFn fn) {
  MSV_CHECK_MSG(table_.emplace(name, std::move(fn)).second,
                "duplicate intrinsic " + name);
}

bool IntrinsicTable::contains(const std::string& name) const {
  return table_.count(name) != 0;
}

const IntrinsicFn& IntrinsicTable::get(const std::string& name) const {
  const auto it = table_.find(name);
  MSV_CHECK_MSG(it != table_.end(), "unknown intrinsic " + name);
  return it->second;
}

IntrinsicTable IntrinsicTable::defaults() {
  IntrinsicTable t;

  t.add("compute_fft", [](ExecContext& ctx, std::vector<rt::Value>& args) {
    MSV_CHECK_MSG(args.size() == 1, "compute_fft(mb)");
    const std::uint64_t doubles =
        static_cast<std::uint64_t>(args[0].as_i64()) * (1 << 20) / 8;
    Rng rng(doubles ^ 0x5eed);
    const auto r =
        kernels::fft(ctx.env(), ctx.isolate().domain(), doubles, rng);
    return rt::Value(r.checksum);
  });

  t.add("io_write", [](ExecContext& ctx, std::vector<rt::Value>& args) {
    MSV_CHECK_MSG(args.size() == 2, "io_write(path, bytes)");
    const std::string& path = args[0].as_string();
    const std::uint64_t bytes = static_cast<std::uint64_t>(args[1].as_i64());
    // The naive Java idiom: a fresh FileOutputStream per record. Stream
    // construction, buffer setup and finalizer registration cost ~40 us on
    // either side of the boundary.
    ctx.charge(150'000);
    const std::vector<std::uint8_t> buf(bytes, 0x5a);
    const auto id = ctx.io().open(path, vfs::OpenMode::kAppend);
    ctx.io().write(id, buf.data(), buf.size());
    ctx.io().close(id);
    return rt::Value(static_cast<std::int64_t>(bytes));
  });

  t.add("io_read", [](ExecContext& ctx, std::vector<rt::Value>& args) {
    MSV_CHECK_MSG(args.size() == 2, "io_read(path, bytes)");
    const std::string& path = args[0].as_string();
    const std::uint64_t bytes = static_cast<std::uint64_t>(args[1].as_i64());
    ctx.charge(110'000);  // FileInputStream setup, as for io_write
    std::vector<std::uint8_t> buf(bytes);
    const auto id = ctx.io().open(path, vfs::OpenMode::kRead);
    const std::uint64_t got = ctx.io().read(id, buf.data(), buf.size());
    ctx.io().close(id);
    return rt::Value(static_cast<std::int64_t>(got));
  });

  t.add("busy", [](ExecContext& ctx, std::vector<rt::Value>& args) {
    MSV_CHECK_MSG(args.size() == 1, "busy(cycles)");
    ctx.charge(static_cast<Cycles>(args[0].as_i64()));
    return rt::Value();
  });

  t.add("print", [](ExecContext&, std::vector<rt::Value>& args) {
    std::string line;
    for (const auto& a : args) {
      if (!line.empty()) line += " ";
      line += a.type() == rt::ValueType::kString ? a.as_string()
                                                 : a.to_debug_string();
    }
    std::puts(line.c_str());
    return rt::Value();
  });

  t.add("str_concat", [](ExecContext&, std::vector<rt::Value>& args) {
    MSV_CHECK_MSG(args.size() == 2, "str_concat(a, b)");
    return rt::Value(args[0].as_string() + args[1].as_string());
  });

  t.add("to_string", [](ExecContext&, std::vector<rt::Value>& args) {
    MSV_CHECK_MSG(args.size() == 1, "to_string(v)");
    if (args[0].type() == rt::ValueType::kString) return args[0];
    return rt::Value(args[0].to_debug_string());
  });

  // Models enclave-confined material: sealed-key derivation or hardware
  // entropy available only inside the enclave. The value is a deterministic
  // function of the tag (the simulation must replay bit-identically); what
  // matters to the toolchain is that analysis/trust.h treats the result as
  // kSecret (TrustOptions::secret_intrinsics), so classes storing it must
  // stay inside the enclave under any proposed re-partitioning.
  t.add("enclave_secret", [](ExecContext& ctx, std::vector<rt::Value>& args) {
    MSV_CHECK_MSG(args.size() == 1, "enclave_secret(tag)");
    ctx.charge(4'000);  // EGETKEY-style key derivation latency
    Rng rng(static_cast<std::uint64_t>(args[0].as_i64()) ^ 0xeb5c1a7e);
    return rt::Value(static_cast<std::int64_t>(rng.next_u64()));
  });

  return t;
}

}  // namespace msv::interp
