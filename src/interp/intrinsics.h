// Intrinsic functions callable from bytecode (Op::kIntrinsic).
//
// These model the "library" work the paper's synthetic workloads perform —
// CPU-intensive kernels (FFT over a 1 MB double array) and I/O-intensive
// operations (4 KB file writes), §6.5 — plus small helpers used by tests
// and examples. Application-specific intrinsics can be registered on top.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "runtime/value.h"

namespace msv::interp {

class ExecContext;

using IntrinsicFn =
    std::function<rt::Value(ExecContext&, std::vector<rt::Value>&)>;

class IntrinsicTable {
 public:
  void add(const std::string& name, IntrinsicFn fn);
  bool contains(const std::string& name) const;
  const IntrinsicFn& get(const std::string& name) const;

  // The default table:
  //   compute_fft(mb)        — FFT over a `mb`-megabyte double array
  //   io_write(path, bytes)  — appends `bytes` of data to `path`
  //   io_read(path, bytes)   — reads up to `bytes` from `path`
  //   busy(cycles)           — pure CPU spin of `cycles`
  //   print(value)           — debug output (no-op cost-wise)
  //   str_concat(a, b)       — string concatenation
  //   to_string(v)           — number to string
  static IntrinsicTable defaults();

 private:
  std::map<std::string, IntrinsicFn> table_;
};

}  // namespace msv::interp
