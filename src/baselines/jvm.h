// The SCONE+JVM baseline model (§6.6).
//
// The paper compares native images against unmodified applications running
// on OpenJDK inside a SCONE container. We cannot run a JVM, so the
// baseline is a calibrated analytical model applied to the *measured*
// decomposition of the equivalent native-image run (same workload, same
// enclave placement). The model encodes exactly the paper's explanation of
// the JVM gap:
//
//   (1) "the JVM spends some time for class loading, bytecode
//       interpretation and dynamic compilation; these operations are
//       absent in native images" -> a startup term (JVM boot + per-class
//       loading) plus a multiplicative factor on non-GC work;
//   (2) "the in-enclave JVM increases the number of objects in the
//       enclave heap, which leads to more data exchange between the EPC
//       and CPU" -> a heap-bloat factor on the same work when inside
//       SCONE;
//   (3) HotSpot's generational collectors beat the native image's serial
//       semispace GC on allocation-heavy workloads ([28], Table 1's
//       Monte_Carlo row) -> the measured NI GC share is *rescaled down*
//       by jvm_gc_efficiency.
#pragma once

#include "support/cost_model.h"

namespace msv::baselines {

struct JvmEstimate {
  Cycles startup = 0;  // JVM boot + class loading (+ SCONE attach)
  Cycles compute = 0;  // non-GC work under interpretation/JIT residue
  Cycles gc = 0;       // generational-GC equivalent of the NI GC share
  Cycles total() const { return startup + compute + gc; }
  double seconds(const CostModel& cost) const {
    return static_cast<double>(total()) / cost.cpu_hz;
  }
};

class JvmEstimator {
 public:
  explicit JvmEstimator(CostModel cost) : cost_(cost) {}

  // `ni_total_cycles` / `ni_gc_cycles`: measured cycles of the equivalent
  // native-image run and its GC share (from HeapStats). `app_classes`:
  // classes the JVM would load. `in_scone`: the JVM runs inside an SGX
  // enclave via SCONE (heap bloat pays the MEE factor; container adds
  // startup overhead). `compute_factor` overrides the cost model's
  // jvm_compute_factor — the JVM-vs-AOT gap is workload dependent (tight
  // numeric loops and serialization-heavy code suffer more under
  // interpretation/JIT warm-up than plain array sweeps); 0 keeps the
  // default.
  JvmEstimate estimate(std::uint64_t app_classes, Cycles ni_total_cycles,
                       Cycles ni_gc_cycles, bool in_scone,
                       double compute_factor = 0) const;

 private:
  // Extra MEE/EPC traffic caused by the JVM's larger in-enclave footprint,
  // applied to compute and GC inside SCONE.
  static constexpr double kSconeBloatFactor = 1.05;

  CostModel cost_;
};

}  // namespace msv::baselines
