#include "baselines/jvm.h"

#include "support/error.h"

namespace msv::baselines {

JvmEstimate JvmEstimator::estimate(std::uint64_t app_classes,
                                   Cycles ni_total_cycles,
                                   Cycles ni_gc_cycles, bool in_scone,
                                   double compute_factor) const {
  if (compute_factor <= 0) compute_factor = cost_.jvm_compute_factor;
  MSV_CHECK_MSG(ni_gc_cycles <= ni_total_cycles,
                "GC share exceeds the total run time");
  JvmEstimate e;
  e.startup = cost_.jvm_startup_cycles +
              app_classes * cost_.jvm_class_load_cycles;
  if (in_scone) {
    // SCONE's shielded syscall layer slows the (syscall-heavy) boot path.
    e.startup = static_cast<Cycles>(static_cast<double>(e.startup) *
                                    cost_.scone_syscall_factor);
  }

  const double bloat = in_scone ? kSconeBloatFactor : 1.0;
  e.compute = static_cast<Cycles>(
      static_cast<double>(ni_total_cycles - ni_gc_cycles) * compute_factor *
      bloat);
  e.gc = static_cast<Cycles>(static_cast<double>(ni_gc_cycles) *
                             cost_.jvm_gc_efficiency * bloat);
  return e;
}

}  // namespace msv::baselines
