// Fleet front-end: consistent-hash routing over N shards, fleet-level
// admission control, hot-tenant migration, and fault-plan distribution
// (DESIGN.md §14).
//
// The router owns the shards and the only mutable copy of the
// tenant->shard route table. The table is *seeded* from the ring at
// start and *amended* by migrations — routing follows the table, never
// the ring directly, so moving a hot tenant off its ring-assigned home
// is an explicit, stateful act (and `tenants_off_ring` gauges how far
// the table has drifted from the ring's equilibrium).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "faults/injector.h"
#include "fleet/ring.h"
#include "fleet/shard.h"
#include "telemetry/slo.h"

namespace msv::fleet {

struct FleetConfig {
  std::uint32_t shards = 4;
  std::uint32_t tenants = 64;
  // Ring geometry. More vnodes = smoother tenant spread per shard.
  std::uint32_t vnodes = 16;
  std::uint64_t ring_seed = 0x6d73762d666c74ull;  // "msv-flt"
  // Fleet-level admission cap: submissions to a shard whose total backlog
  // (queued + in flight) reaches this are shed at the router.
  std::size_t max_shard_pending = 256;
  ShardConfig shard;
  core::AppConfig app;
  // Fleet health (DESIGN.md §16). slo_enabled builds a per-shard
  // SloMonitor and wires every shard's sheds/faults/latencies into it;
  // slo_enforce additionally closes router admission to shards the
  // monitor holds critical. Observe-mode (enforce off) changes no
  // routing decision and no cycle total — the monitor only reads the
  // clock, never advances it.
  bool slo_enabled = false;
  bool slo_enforce = false;
  telemetry::SloConfig slo;
};

// Aggregated across shards, plus the router's own counters.
struct FleetStats {
  std::uint64_t accepted = 0;
  std::uint64_t shed = 0;
  std::uint64_t shed_admission = 0;  // shed at the router's fleet-level cap
  std::uint64_t shed_slo = 0;        // shed because the shard is critical
  std::uint64_t shed_recovery = 0;
  std::uint64_t shed_migrating = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t retries = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t replicated_blobs = 0;
  std::uint64_t replicated_bytes = 0;
  std::uint64_t restored = 0;
  std::uint64_t checkpoint_corrupt = 0;
  std::uint64_t promotions = 0;
  std::uint64_t restarts = 0;
  std::uint64_t standby_rebuilds = 0;
  std::uint64_t migrations = 0;
  Cycles recovery_cycles = 0;
};

class FleetRouter {
 public:
  FleetRouter(Env& env, sched::Scheduler& sched,
              const model::AppModel& app_model, FleetConfig config);
  ~FleetRouter();

  FleetRouter(const FleetRouter&) = delete;
  FleetRouter& operator=(const FleetRouter&) = delete;

  // Builds the shards' worker pools and binds every tenant to its
  // ring-assigned shard. Must be called outside tasks; idempotent.
  void start();
  // Retires every worker (and any in-flight standby rebuilds) by running
  // the scheduler to quiescence. Idempotent; also called by the dtor.
  void stop();

  Env& env() { return env_; }
  sched::Scheduler& scheduler() { return sched_; }
  const FleetConfig& config() const { return config_; }
  std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  Shard& shard(std::uint32_t k) { return *shards_[k]; }
  const Shard& shard(std::uint32_t k) const { return *shards_[k]; }
  const HashRing& ring() const { return ring_; }

  // Current routing (table, including migrations) vs ring equilibrium.
  std::uint32_t shard_of(std::uint32_t tenant) const;
  std::uint32_t ring_owner(std::uint32_t tenant) const {
    return ring_.owner_of(tenant);
  }
  // How many tenants the table routes away from their ring owner — the
  // rebalance debt a ring change or migration leaves behind.
  std::uint32_t tenants_off_ring() const;

  // ---- Serving ----
  // Fire-and-forget through the route table; sheds at the fleet-level
  // admission cap before the shard even sees the request.
  bool submit(std::uint32_t tenant, server::Request r);
  // Closed-loop variant (task-only); bypasses the shed ladder by blocking.
  std::int64_t submit_and_wait(std::uint32_t tenant, server::Request r);
  std::size_t pending() const;

  // ---- Hot-tenant migration (task-only) ----
  // Drains the tenant behind the coalescing fence, seals its state,
  // rebinds it on `to_shard`, and flips the route table. In-flight work
  // finishes on the source first; requests arriving mid-drain shed.
  void migrate_tenant(std::uint32_t tenant, std::uint32_t to_shard);
  // Router-side per-tenant accepted counters: the hottest tenant is the
  // natural migration candidate fig_fleet picks.
  std::uint64_t tenant_accepted(std::uint32_t tenant) const;
  std::uint32_t hottest_tenant() const;

  // ---- Failover / faults ----
  // Planned promotion of shard k's warm standby (requires replication).
  void promote_shard(std::uint32_t k) { shards_[k]->promote_standby(); }
  // Partitions a fleet fault plan (absolute instants) into per-shard
  // schedules, builds one injector per targeted shard, arms each at its
  // shard's active enclave and attaches it to the bridge. The injectors
  // follow promotions automatically (Shard re-attaches + retargets).
  void attach_fault_plan(const faults::FaultPlan& plan);
  const faults::FaultInjector* injector_for(std::uint32_t k) const {
    return injectors_[k].get();
  }

  // ---- Fleet health (DESIGN.md §16) ----
  // Null unless config.slo_enabled.
  telemetry::SloMonitor* slo() { return slo_.get(); }
  const telemetry::SloMonitor* slo() const { return slo_.get(); }
  // Migration hint: the hottest tenant of the sickest shard, pointed at
  // the healthiest (ties: coldest) other shard. Empty when every shard is
  // healthy, the fleet has one shard, or the SLO monitor is off. The
  // router never acts on this by itself — migration is task-side and the
  // operator's (or the bench harness's) call.
  struct MigrationHint {
    std::uint32_t tenant = 0;
    std::uint32_t from_shard = 0;
    std::uint32_t to_shard = 0;
  };
  // Non-const: evaluating health rolls the monitor's windows to now().
  std::optional<MigrationHint> migration_hint();

  FleetStats stats() const;
  // Absorbs fleet + per-shard counters into the metrics registry
  // (telemetry::publish_fleet / publish_fleet_shard).
  void publish_metrics();

 private:
  Env& env_;
  sched::Scheduler& sched_;
  const model::AppModel& app_model_;
  FleetConfig config_;
  HashRing ring_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::map<std::uint32_t, std::uint32_t> route_;  // tenant -> shard
  std::vector<std::uint64_t> accepted_by_tenant_;
  // One slot per shard; null where the plan targets nothing.
  std::vector<std::unique_ptr<faults::FaultInjector>> injectors_;
  std::unique_ptr<telemetry::SloMonitor> slo_;
  std::uint64_t shed_admission_ = 0;
  std::uint64_t shed_slo_ = 0;
  std::uint64_t migrations_ = 0;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace msv::fleet
