#include "fleet/load.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "support/error.h"
#include "support/rng.h"

namespace msv::fleet {

namespace {

// Exponential gap with the given mean, quantized to whole cycles; one Rng
// draw per call, in task program order (the harness's determinism idiom).
Cycles exp_gap(Rng& rng, Cycles mean) {
  const double u = rng.next_double();  // [0, 1)
  return static_cast<Cycles>(-std::log(1.0 - u) * static_cast<double>(mean));
}

constexpr Cycles kDrainQuantum = 10'000;

}  // namespace

std::vector<double> FleetLoad::zipf_cdf(std::uint32_t tenants, double s) {
  MSV_CHECK_MSG(tenants > 0, "zipf over zero tenants");
  std::vector<double> cdf(tenants);
  double total = 0;
  for (std::uint32_t t = 0; t < tenants; ++t) {
    total += 1.0 / std::pow(static_cast<double>(t + 1), s);
    cdf[t] = total;
  }
  for (double& c : cdf) c /= total;
  cdf.back() = 1.0;  // close the interval against rounding
  return cdf;
}

FleetLoadReport FleetLoad::run(const FleetLoadSpec& spec) {
  router_.start();
  sched::Scheduler& sched = router_.scheduler();
  const std::uint32_t tenants = router_.config().tenants;
  const std::vector<double> cdf = zipf_cdf(tenants, spec.zipf_s);

  FleetLoadReport rep;
  const FleetStats before = router_.stats();
  const Cycles run_start = env_.clock.now();

  sched.spawn("fleet-gen", [&] {
    Rng rng(spec.seed * 0x9e3779b97f4a7c15ull + 1);
    Cycles next = env_.clock.now();
    for (std::uint64_t i = 0; i < spec.requests; ++i) {
      next += exp_gap(rng, spec.mean_interarrival_cycles);
      if (next > env_.clock.now()) sched.sleep_until(next);
      // Zipf draw: invert the precomputed CDF with one uniform sample.
      const double u = rng.next_double();
      const std::uint32_t tenant = static_cast<std::uint32_t>(
          std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
      server::Request r;
      r.op = rng.next_bool(spec.read_fraction) ? server::RequestOp::kBalance
                                               : server::RequestOp::kDeposit;
      r.arrival = next;
      ++rep.submitted;
      if (router_.submit(tenant, r)) ++rep.accepted;
    }
  });
  sched.run();  // the generator finishes (worker daemons may hold work)
  sched.spawn("fleet-drain", [&] {
    while (router_.pending() > 0) sched.sleep_for(kDrainQuantum);
  });
  sched.run();

  const double hz = env_.clock.hz();
  std::vector<Cycles> all;
  for (std::uint32_t k = 0; k < router_.shard_count(); ++k) {
    const std::vector<Cycles>& lat = router_.shard(k).latencies();
    rep.per_shard.push_back(server::summarize_latencies(lat, hz));
    for (const Cycles c : lat) rep.latency_cycle_sum += c;
    all.insert(all.end(), lat.begin(), lat.end());
  }
  rep.aggregate = server::summarize_latencies(all, hz);
  rep.stats = router_.stats();
  // Counters accumulate on the router across runs; subtract the baseline
  // so back-to-back phases report their own deltas.
  rep.stats.accepted -= before.accepted;
  rep.stats.shed -= before.shed;
  rep.stats.completed -= before.completed;
  rep.stats.failed -= before.failed;
  rep.final_clock = env_.clock.now();
  rep.elapsed_seconds =
      static_cast<double>(rep.final_clock - run_start) / hz;
  rep.throughput_rps =
      rep.elapsed_seconds > 0
          ? static_cast<double>(rep.stats.completed) / rep.elapsed_seconds
          : 0;
  return rep;
}

}  // namespace msv::fleet
