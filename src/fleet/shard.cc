#include "fleet/shard.h"

#include <algorithm>
#include <utility>

#include "faults/injector.h"
#include "support/error.h"
#include "telemetry/flight.h"
#include "telemetry/slo.h"

namespace msv::fleet {

Shard::Shard(Env& env, sched::Scheduler& sched,
             const model::AppModel& app_model, std::uint32_t shard_id,
             ShardConfig config, core::AppConfig app_config)
    : env_(env),
      sched_(sched),
      shard_id_(shard_id),
      config_(config),
      sealer_(config.recovery.platform_secret),
      work_available_(sched),
      recovery_done_(sched) {
  MSV_CHECK_MSG(config_.slots > 0, "shard needs at least one slot");
  MSV_CHECK_MSG(config_.workers > 0, "shard needs at least one worker");
  MSV_CHECK_MSG(config_.max_queue_depth > 0, "queue depth must be positive");
  MSV_CHECK_MSG(config_.recovery.max_attempts > 0,
                "retry budget needs at least one attempt");
  const std::string tag = "shard" + std::to_string(shard_id_);
  // Both enclaves are built (and their ECREATE/EADD/EINIT bill paid) at
  // fleet start, on the shared clock — the standby's warmth is exactly
  // this prepaid cost.
  apps_[0] = std::make_unique<core::MultiIsolateApp>(
      env_, app_model, config_.slots, app_config, tag + "-a");
  if (config_.replication) {
    apps_[1] = std::make_unique<core::MultiIsolateApp>(
        env_, app_model, config_.slots, app_config, tag + "-b");
    standby_ready_ = true;
  }
  for (std::uint32_t i = 0; i < config_.slots; ++i) {
    slots_.push_back(std::make_unique<Slot>(sched_));
    slots_.back()->index = i;
  }
}

Shard::~Shard() = default;

void Shard::start() {
  if (started_) return;
  MSV_CHECK_MSG(!sched_.in_task(), "start() must be called outside tasks");
  apps_[0]->bridge().attach_scheduler(sched_);
  if (apps_[1] != nullptr) apps_[1]->bridge().attach_scheduler(sched_);
  for (std::uint32_t w = 0; w < config_.workers; ++w) {
    sched_.spawn_daemon(
        "flt-s" + std::to_string(shard_id_) + "-w" + std::to_string(w),
        [this] { worker_loop(); });
  }
  started_ = true;
}

void Shard::begin_stop() {
  stopping_ = true;
  work_available_.notify_all();
}

// ---------------------------------------------------------------------------
// Residency

Shard::Slot& Shard::slot_for(std::uint32_t tenant) {
  const auto it = slot_of_.find(tenant);
  MSV_CHECK_MSG(it != slot_of_.end(),
                "tenant " + std::to_string(tenant) + " is not resident on "
                "shard " + std::to_string(shard_id_));
  return *slots_[it->second];
}

const Shard::Slot& Shard::slot_for(std::uint32_t tenant) const {
  return const_cast<Shard*>(this)->slot_for(tenant);
}

void Shard::bind_tenant(std::uint32_t tenant) {
  MSV_CHECK_MSG(slot_of_.count(tenant) == 0, "tenant already resident");
  for (auto& sp : slots_) {
    if (sp->tenant != Slot::kFree) continue;
    sp->tenant = tenant;
    sp->state = server::TenantState{};
    sp->session_generation = 0;  // built lazily on first touch
    sp->replica_checkpoint.clear();
    sp->quiescing = false;
    slot_of_[tenant] = sp->index;
    return;
  }
  MSV_CHECK_MSG(false, "shard " + std::to_string(shard_id_) +
                           " has no free isolate slot");
}

void Shard::adopt_checkpoint(std::uint32_t tenant,
                             std::vector<std::uint8_t> blob) {
  bind_tenant(tenant);
  Slot& slot = slot_for(tenant);
  slot.state.checkpoint = std::move(blob);
  // Seed the standby's copy too: a promotion immediately after a
  // migration must not lose the migrated tenant.
  if (config_.replication) slot.replica_checkpoint = slot.state.checkpoint;
}

std::vector<std::uint8_t> Shard::seal_tenant(std::uint32_t tenant) {
  Slot& slot = slot_for(tenant);
  prepare_slot(slot);
  seal_now(slot);
  return slot.state.checkpoint;
}

void Shard::unbind_tenant(std::uint32_t tenant) {
  Slot& slot = slot_for(tenant);
  MSV_CHECK_MSG(slot.queue.empty() && slot.in_flight == 0,
                "unbinding a tenant with requests in flight");
  slot_of_.erase(tenant);
  slot.tenant = Slot::kFree;
  slot.state = server::TenantState{};
  slot.session_generation = 0;
  slot.replica_checkpoint.clear();
  slot.quiescing = false;
}

bool Shard::hosts(std::uint32_t tenant) const {
  return slot_of_.count(tenant) != 0;
}

std::vector<std::uint32_t> Shard::resident_tenants() const {
  std::vector<std::uint32_t> out;
  out.reserve(slot_of_.size());
  for (const auto& [tenant, index] : slot_of_) out.push_back(tenant);
  return out;
}

// ---------------------------------------------------------------------------
// Admission

void Shard::enqueue(Slot& slot, Pending* p) {
  slot.queue.push_back(p);
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, slot.queue.size());
  ++stats_.accepted;
  work_.push_back(slot.index);
  work_available_.notify_one();
}

bool Shard::submit(std::uint32_t tenant, server::Request r) {
  MSV_CHECK_MSG(started_, "shard not started");
  Slot& slot = slot_for(tenant);
  // Degradation ladder at admission: a recovering shard cannot serve, and
  // a quiesced tenant is about to move — shed rather than queue against
  // either (the counters keep the two causes distinguishable).
  if (recovering_) {
    ++stats_.shed;
    ++stats_.shed_recovery;
    if (slo_ != nullptr) slo_->record_shed(shard_id_);
    return false;
  }
  if (slot.quiescing) {
    ++stats_.shed;
    ++stats_.shed_migrating;
    if (slo_ != nullptr) slo_->record_shed(shard_id_);
    return false;
  }
  if (slot.queue.size() >= config_.max_queue_depth) {
    ++stats_.shed;
    if (slo_ != nullptr) slo_->record_shed(shard_id_);
    return false;
  }
  if (r.arrival == 0) r.arrival = env_.clock.now();
  auto* p = new Pending;
  p->req = r;
  p->tenant = tenant;
  p->owned = true;
  if (env_.telemetry.tracer().enabled(telemetry::Category::kFleet)) {
    p->span = env_.telemetry.tracer().begin_detached(
        telemetry::Category::kFleet, env_.telemetry.names().fleet_request,
        static_cast<std::int32_t>(tenant));
  }
  enqueue(slot, p);
  return true;
}

std::int64_t Shard::submit_and_wait(std::uint32_t tenant, server::Request r) {
  MSV_CHECK_MSG(started_, "shard not started");
  MSV_CHECK_MSG(sched_.in_task(), "submit_and_wait must run inside a task");
  Slot& slot = slot_for(tenant);
  while (slot.queue.size() >= config_.max_queue_depth) slot.space.wait();
  if (r.arrival == 0) r.arrival = env_.clock.now();
  Pending p;
  p.req = r;
  p.tenant = tenant;
  p.waiter = sched_.current();
  if (env_.telemetry.tracer().enabled(telemetry::Category::kFleet)) {
    p.span = env_.telemetry.tracer().begin_detached(
        telemetry::Category::kFleet, env_.telemetry.names().fleet_request,
        static_cast<std::int32_t>(tenant));
  }
  enqueue(slot, &p);
  try {
    while (!p.done) sched_.suspend();
  } catch (...) {
    auto it = std::find(slot.queue.begin(), slot.queue.end(), &p);
    if (it != slot.queue.end()) slot.queue.erase(it);
    throw;
  }
  if (p.error) std::rethrow_exception(p.error);
  return p.result;
}

std::size_t Shard::pending() const {
  std::size_t n = 0;
  for (const auto& sp : slots_) n += sp->queue.size() + sp->in_flight;
  return n;
}

std::size_t Shard::pending_for(std::uint32_t tenant) const {
  const Slot& slot = slot_for(tenant);
  return slot.queue.size() + slot.in_flight;
}

void Shard::quiesce_tenant(std::uint32_t tenant) {
  MSV_CHECK_MSG(sched_.in_task(), "quiesce must run inside a task");
  Slot& slot = slot_for(tenant);
  slot.quiescing = true;
  // A worker mid-swing finishes its whole coalesced batch before the
  // in-flight count returns to zero — the §13 fence the drain sits behind.
  while (!slot.queue.empty() || slot.in_flight > 0) slot.drained.wait();
}

void Shard::resume_tenant(std::uint32_t tenant) {
  slot_for(tenant).quiescing = false;
}

// ---------------------------------------------------------------------------
// Serving

void Shard::worker_loop() {
  for (;;) {
    while (work_.empty()) {
      if (stopping_) return;
      work_available_.wait();
    }
    const std::uint32_t si = work_.front();
    work_.pop_front();
    Slot& slot = *slots_[si];
    // One work token is pushed per enqueue; a batch consumes several
    // queue entries at once, so later tokens may find nothing left.
    if (slot.queue.empty()) continue;
    if (config_.coalesce_max > 1 && slot.queue.size() > 1) {
      std::vector<Pending*> batch;
      while (!slot.queue.empty() && batch.size() < config_.coalesce_max) {
        batch.push_back(slot.queue.front());
        slot.queue.pop_front();
        slot.space.notify_one();
        ++slot.in_flight;
      }
      execute_batch(slot, batch);
      continue;
    }
    Pending* p = slot.queue.front();
    slot.queue.pop_front();
    slot.space.notify_one();
    ++slot.in_flight;
    {
      telemetry::AdoptedSpanScope handle(
          env_.telemetry.tracer(), p->span.ctx, telemetry::Category::kServer,
          env_.telemetry.names().server_handle,
          static_cast<std::int32_t>(slot.tenant));
      try {
        p->result = execute_with_retry(slot, *p);
        maybe_checkpoint(slot);
      } catch (const sched::TaskCancelled&) {
        throw;
      } catch (...) {
        p->error = std::current_exception();
      }
    }
    finish_request(slot, p);
  }
}

void Shard::finish_request(Slot& slot, Pending* p) {
  const Cycles done_at = env_.clock.now();
  env_.telemetry.tracer().end_detached(p->span);
  if (p->error) {
    ++stats_.failed;
    if (slo_ != nullptr) slo_->record_error(shard_id_);
  } else {
    const Cycles lat = done_at - p->req.arrival;
    if (latency_hist != nullptr) latency_hist->record(lat);
    latencies_.push_back(lat);
    ++stats_.completed;
    if (slo_ != nullptr) slo_->record_latency(shard_id_, lat);
  }
  --slot.in_flight;
  p->done = true;
  if (p->waiter != sched::kNoTask) sched_.wake(p->waiter);
  if (p->owned) delete p;
  if (slot.quiescing && slot.queue.empty() && slot.in_flight == 0) {
    slot.drained.notify_all();
  }
}

void Shard::execute_batch(Slot& slot, std::vector<Pending*>& batch) {
  bool batched = false;
  try {
    // Recovery (and the lazy session build) run inside the try: a fault
    // here drops to the per-request fallback, which owns the retry budget.
    if (config_.recovery.enabled) ensure_recovered();
    prepare_slot(slot);
    core::MultiIsolateApp& app = active_app();
    const model::ClassDecl& cls =
        app.untrusted_context().class_of(slot.state.session.as_ref());
    std::vector<rmi::MultiIsolateRuntime::BatchCall> calls(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const Pending& p = *batch[i];
      calls[i].proxy = slot.state.session.as_ref();
      if (p.req.op == server::RequestOp::kDeposit) {
        calls[i].stub = cls.find_method("updateBalance");
        calls[i].args = {rt::Value(p.req.amount)};
      } else {
        calls[i].stub = cls.find_method("getBalance");
      }
    }
    const std::vector<rmi::MultiIsolateRuntime::BatchOutcome> outcomes =
        app.rmi().invoke_batch(calls);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      Pending* p = batch[i];
      if (outcomes[i].ok) {
        p->result = outcomes[i].value.type() == rt::ValueType::kI32
                        ? outcomes[i].value.as_i32()
                        : 0;
        maybe_checkpoint(slot);
      } else {
        p->error = std::make_exception_ptr(RuntimeFault(outcomes[i].error));
      }
      finish_request(slot, p);
    }
    batched = true;
  } catch (const sched::TaskCancelled&) {
    throw;
  } catch (const sgx::EnclaveLostError&) {
    note_fault();
  } catch (const rmi::StaleProxyError&) {
    note_fault();
    slot.session_generation = 0;
  } catch (const sgx::TransitionError&) {
    note_fault();
  }
  if (batched) return;
  // Whole-batch abort before any call executed (invoke_batch's up-front
  // epoch fence guarantees no partial execution): per-request retry ladder.
  for (Pending* p : batch) {
    try {
      p->result = execute_with_retry(slot, *p);
      maybe_checkpoint(slot);
    } catch (const sched::TaskCancelled&) {
      throw;
    } catch (...) {
      p->error = std::current_exception();
    }
    finish_request(slot, p);
  }
}

std::int64_t Shard::execute_with_retry(Slot& slot, Pending& p) {
  const server::RecoveryConfig& rc = config_.recovery;
  const Cycles deadline = p.req.arrival + rc.request_deadline_cycles;
  Cycles backoff = rc.initial_backoff_cycles;
  std::uint32_t attempt = 0;
  for (;;) {
    try {
      if (rc.enabled) ensure_recovered();
      prepare_slot(slot);
      core::MultiIsolateApp& app = active_app();
      const rt::Value result =
          p.req.op == server::RequestOp::kDeposit
              ? app.untrusted_context().invoke(slot.state.session.as_ref(),
                                               "updateBalance",
                                               {rt::Value(p.req.amount)})
              : app.untrusted_context().invoke(slot.state.session.as_ref(),
                                               "getBalance", {});
      return result.type() == rt::ValueType::kI32 ? result.as_i32() : 0;
    } catch (const sgx::EnclaveLostError&) {
      note_fault();
      if (!rc.enabled) throw;
    } catch (const rmi::StaleProxyError&) {
      note_fault();
      // The session itself is what went stale (fenced by a promotion this
      // worker raced, or minted under a dead incarnation): force its
      // rebuild on the next attempt even if no global recovery runs.
      slot.session_generation = 0;
      if (!rc.enabled) throw;
    } catch (const sgx::TransitionError&) {
      note_fault();
      if (!rc.enabled) throw;
    }
    ++attempt;
    ++stats_.retries;
    if (attempt >= rc.max_attempts) {
      throw server::RetriesExhaustedError(
          "request failed after " + std::to_string(attempt) +
          " attempts (shard " + std::to_string(shard_id_) + ", tenant " +
          std::to_string(slot.tenant) + ")");
    }
    if (env_.clock.now() + backoff > deadline) {
      throw server::RetriesExhaustedError(
          "retry backoff would exceed the request deadline (shard " +
          std::to_string(shard_id_) + ", tenant " +
          std::to_string(slot.tenant) + ")");
    }
    {
      telemetry::SpanScope span(
          env_.telemetry.tracer(), telemetry::Category::kFault,
          env_.telemetry.names().rmi_retry,
          static_cast<std::int32_t>(slot.tenant));
      sched_.sleep_for(backoff);
    }
    backoff = std::min(
        static_cast<Cycles>(static_cast<double>(backoff) *
                            rc.backoff_multiplier),
        rc.max_backoff_cycles);
  }
}

// ---------------------------------------------------------------------------
// Recovery

void Shard::note_fault() {
  ++stats_.fault_errors;
  if (stats_.first_fault_seen_cycles == 0) {
    stats_.first_fault_seen_cycles = env_.clock.now();
  }
  // Recorded at the catch site — before ensure_recovered() can run the
  // ladder — so the SLO monitor's health flip is never later than the
  // failover it predicts (the fig_fleet degraded-before-ladder gate).
  if (slo_ != nullptr) slo_->record_error(shard_id_);
}

void Shard::ensure_recovered() {
  while (recovering_) recovery_done_.wait();
  if (active_app().enclave().state() != sgx::EnclaveState::kLost) return;
  recovering_ = true;
  if (stats_.first_recovery_started_cycles == 0) {
    stats_.first_recovery_started_cycles = env_.clock.now();
  }
  const Cycles t0 = env_.clock.now();
  try {
    telemetry::SpanScope span(env_.telemetry.tracer(),
                              telemetry::Category::kFleet,
                              env_.telemetry.names().fleet_failover,
                              static_cast<std::int32_t>(shard_id_));
    if (standby_ready_) {
      promote_standby_locked();
    } else {
      // Cold path: the PR 5 ladder — re-create and re-measure the enclave
      // inline, on the serving timeline. Sessions rebuild lazily.
      active_app().restart_enclave();
      ++stats_.restarts;
      ++generation_;
    }
  } catch (...) {
    recovering_ = false;
    recovery_done_.notify_all();
    throw;
  }
  stats_.last_recovery_cycles = env_.clock.now() - t0;
  stats_.recovery_cycles += stats_.last_recovery_cycles;
  recovering_ = false;
  recovery_done_.notify_all();
  // A new authority (or freshly re-measured enclave) starts with a clean
  // error budget: the outage is the old incarnation's debt.
  if (slo_ != nullptr) slo_->note_epoch(shard_id_, authority_epoch_);
}

void Shard::promote_standby() {
  MSV_CHECK_MSG(!recovering_, "promotion while a recovery is in flight");
  MSV_CHECK_MSG(standby_ready_, "no warm standby to promote");
  promote_standby_locked();
  if (slo_ != nullptr) slo_->note_epoch(shard_id_, authority_epoch_);
}

void Shard::promote_standby_locked() {
  MSV_CHECK_MSG(apps_[active_ ^ 1] != nullptr && standby_ready_,
                "promote without a ready standby");
  telemetry::SpanScope span(env_.telemetry.tracer(),
                            telemetry::Category::kFleet,
                            env_.telemetry.names().fleet_promote,
                            static_cast<std::int32_t>(shard_id_));
  // Fence first: requests still holding sessions minted on the demoted
  // runtime fault with StaleProxyError and rebuild — never double-execute
  // against an enclave that stopped being the authority (which, in a
  // planned failover, is still perfectly alive).
  apps_[active_]->rmi().fence_proxies();
  const std::uint32_t demoted = active_;
  active_ ^= 1;
  ++authority_epoch_;
  ++generation_;
  ++stats_.promotions;
  // Freeze the demoted enclave's flight ring: the post-mortem shows what
  // the old authority was doing when it stopped being the authority.
  if (telemetry::FlightBus* bus = env_.telemetry.flight()) {
    bus->recorder(apps_[demoted]->enclave().name())
        .record(telemetry::FlightEventKind::kLifecycle, "shard.promote",
                static_cast<std::int64_t>(shard_id_),
                static_cast<std::int64_t>(authority_epoch_));
    bus->snapshot(apps_[demoted]->enclave().name(), "promotion",
                  {{"shard", std::to_string(shard_id_)},
                   {"authority_epoch", std::to_string(authority_epoch_)}});
  }
  // The replica's streamed copies are the blobs the new authority actually
  // holds; adopt them as the authoritative checkpoints.
  for (auto& sp : slots_) {
    if (sp->tenant != Slot::kFree && !sp->replica_checkpoint.empty()) {
      sp->state.checkpoint = sp->replica_checkpoint;
    }
  }
  // The injector follows the authority: faults strike whichever enclave
  // serves the shard.
  if (injector_ != nullptr) {
    apps_[demoted]->bridge().attach_fault_injector(nullptr);
    apps_[active_]->bridge().attach_fault_injector(injector_);
    injector_->retarget(apps_[active_]->enclave());
  }
  standby_ready_ = false;
  if (apps_[demoted]->enclave().state() == sgx::EnclaveState::kLost) {
    // Rebuild the lost enclave as the next standby on a detached core
    // (the §5.5 helper-thread pattern): its 20M-cycle re-measure never
    // stalls the promoted authority's serving timeline.
    sched_.spawn("flt-s" + std::to_string(shard_id_) + "-rebuild",
                 [this, demoted] {
                   const Cycles cost = env_.clock.measure_detached(
                       [&] { apps_[demoted]->restart_enclave(); });
                   sched_.sleep_for(cost);
                   standby_ready_ = true;
                   ++stats_.standby_rebuilds;
                 });
  } else {
    // Planned failover: the healthy demoted app is the new standby as-is.
    standby_ready_ = true;
  }
}

void Shard::prepare_slot(Slot& slot) {
  // construct_in yields inside its ecall, and another worker may run a
  // promotion meanwhile — so the generation a session counts for is the
  // one captured *before* the build, and a mid-build flip just loops.
  while (slot.session_generation != generation_) {
    const std::uint64_t gen = generation_;
    telemetry::SpanScope span(env_.telemetry.tracer(),
                              telemetry::Category::kFleet,
                              env_.telemetry.names().fleet_restore,
                              static_cast<std::int32_t>(slot.tenant));
    core::MultiIsolateApp& app = active_app();
    std::int32_t balance = config_.initial_balance;
    try {
      if (const auto restored = slot.state.unseal_checkpoint(
              sealer_, app.enclave(), slot.tenant)) {
        balance = *restored;
        ++stats_.restored;
      }
    } catch (const SecurityFault&) {
      ++stats_.checkpoint_corrupt;
      slot.state.checkpoint.clear();
      balance = config_.initial_balance;
    }
    slot.state.session = app.construct_in(
        slot.index, "Account",
        {rt::Value("tenant-" + std::to_string(slot.tenant)),
         rt::Value(balance)});
    slot.state.session_epoch = app.enclave().epoch();
    slot.session_generation = gen;
  }
}

void Shard::maybe_checkpoint(Slot& slot) {
  const server::RecoveryConfig& rc = config_.recovery;
  if (!rc.enabled || rc.checkpoint_every == 0) return;
  if (++slot.state.since_checkpoint < rc.checkpoint_every) return;
  slot.state.since_checkpoint = 0;
  try {
    seal_now(slot);
  } catch (const sched::TaskCancelled&) {
    throw;
  } catch (...) {
    // A fault mid-checkpoint loses this checkpoint, not the request; the
    // previous sealed blob (and its replica copy) stay valid.
  }
}

void Shard::seal_now(Slot& slot) {
  const rt::Value bal = active_app().untrusted_context().invoke(
      slot.state.session.as_ref(), "getBalance", {});
  const std::vector<std::uint8_t>& blob = slot.state.seal_checkpoint(
      sealer_, active_app().enclave(), slot.tenant, bal.as_i32());
  ++stats_.checkpoints;
  if (config_.replication) {
    // The replication stream: the sealed blob is forwarded to the standby
    // verbatim (sealed bytes are already safe in untrusted hands, and the
    // standby's measurement derives the same unsealing key).
    slot.replica_checkpoint = blob;
    ++stats_.replicated_blobs;
    stats_.replicated_bytes += blob.size();
  }
}

void Shard::attach_injector(faults::FaultInjector* injector) {
  injector_ = injector;
  active_app().bridge().attach_fault_injector(injector);
}

}  // namespace msv::fleet
