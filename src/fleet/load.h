// Fleet load generator: one fleet-wide open-loop Poisson arrival process
// with Zipfian tenant popularity (DESIGN.md §14).
//
// Unlike the per-tenant generators in server/harness, the fleet generator
// models a *front door*: a single arrival stream whose every request picks
// a tenant by a Zipf draw over a precomputed harmonic CDF. Skew is the
// point — with s ≈ 1.1 the head tenant absorbs an order of magnitude more
// traffic than the median one, which is what makes one shard hot and the
// migration path worth having.
//
// Determinism contract (same as the harness): the generator owns one
// seeded Rng consumed in task program order, latencies are measured from
// intended arrival instants (coordinated-omission honest), and two runs
// of the same spec produce identical cycle totals, latency sums and
// counters — fig_fleet asserts this fleet-wide.
#pragma once

#include <cstdint>
#include <vector>

#include "fleet/router.h"
#include "server/harness.h"

namespace msv::fleet {

struct FleetLoadSpec {
  // Total requests across the whole fleet (not per tenant).
  std::uint64_t requests = 20'000;
  // Mean exponential gap of the fleet-wide arrival process, in cycles.
  Cycles mean_interarrival_cycles = 60'000;
  // Zipf exponent over tenant popularity (0 = uniform).
  double zipf_s = 1.1;
  std::uint64_t seed = 42;
  double read_fraction = 0.5;  // getBalance share; rest are deposits
};

struct FleetLoadReport {
  server::LatencySummary aggregate;
  std::vector<server::LatencySummary> per_shard;
  FleetStats stats;  // fleet counters at the end of the run
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  Cycles final_clock = 0;
  // Exact-integer latency digest for the determinism self-check.
  Cycles latency_cycle_sum = 0;
  double elapsed_seconds = 0;
  double throughput_rps = 0;
};

class FleetLoad {
 public:
  explicit FleetLoad(FleetRouter& router)
      : router_(router), env_(router.env()) {}

  // Starts the fleet if needed, runs the arrival process to completion,
  // drains every shard, and reports. Shard latency vectors accumulate
  // across runs; use a fresh fleet per measured configuration.
  FleetLoadReport run(const FleetLoadSpec& spec);

  // The Zipf CDF the generator draws from (exposed for tests: the head
  // tenant's mass explains why migration has a target worth moving).
  static std::vector<double> zipf_cdf(std::uint32_t tenants, double s);

 private:
  FleetRouter& router_;
  Env& env_;
};

}  // namespace msv::fleet
