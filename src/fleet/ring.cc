#include "fleet/ring.h"

#include <string>

#include "support/error.h"
#include "support/fnv.h"

namespace msv::fleet {

namespace {

// FNV-1a avalanches poorly into the high bits on short inputs — all
// "tenant-N" keys would land in one narrow arc of the 64-bit ring (and
// therefore on one node). The splitmix64 finalizer spreads every input
// bit across the whole word; ring positions are mix64(fnv1a64(tag)).
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

}  // namespace

HashRing::HashRing(std::uint64_t seed, std::uint32_t vnodes_per_node)
    : seed_(seed), vnodes_(vnodes_per_node) {
  MSV_CHECK_MSG(vnodes_ > 0, "ring needs at least one vnode per node");
}

std::uint64_t HashRing::vnode_point(std::uint32_t node,
                                    std::uint32_t replica) const {
  const std::string tag = std::to_string(seed_) + "/node-" +
                          std::to_string(node) + "#" +
                          std::to_string(replica);
  return mix64(fnv1a64(tag));
}

void HashRing::add_node(std::uint32_t node) {
  MSV_CHECK_MSG(!has_node(node), "node already on the ring");
  std::vector<std::uint64_t>& mine = points_of_[node];
  for (std::uint32_t r = 0; r < vnodes_; ++r) {
    std::uint64_t pt = vnode_point(node, r);
    // Collisions are vanishingly rare at 64 bits but must not silently
    // drop a vnode (or steal another node's): probe deterministically.
    while (ring_.count(pt) != 0) pt = fnv1a64(&pt, sizeof pt);
    ring_.emplace(pt, node);
    mine.push_back(pt);
  }
}

void HashRing::remove_node(std::uint32_t node) {
  const auto it = points_of_.find(node);
  MSV_CHECK_MSG(it != points_of_.end(), "node not on the ring");
  for (const std::uint64_t pt : it->second) ring_.erase(pt);
  points_of_.erase(it);
}

bool HashRing::has_node(std::uint32_t node) const {
  return points_of_.count(node) != 0;
}

std::vector<std::uint32_t> HashRing::nodes() const {
  std::vector<std::uint32_t> out;
  out.reserve(points_of_.size());
  for (const auto& [node, pts] : points_of_) out.push_back(node);
  return out;
}

std::uint64_t HashRing::point_of_key(std::uint32_t key) const {
  const std::string tag = "tenant-" + std::to_string(key);
  return mix64(fnv1a64(tag) ^ seed_);
}

std::uint32_t HashRing::owner_of(std::uint32_t key) const {
  MSV_CHECK_MSG(!ring_.empty(), "owner lookup on an empty ring");
  const auto it = ring_.lower_bound(point_of_key(key));
  return it == ring_.end() ? ring_.begin()->second : it->second;
}

}  // namespace msv::fleet
