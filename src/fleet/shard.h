// One fleet shard: an active enclave, an optional warm standby, and a
// worker pool serving the tenants the ring assigns here (DESIGN.md §14).
//
// A shard owns up to two MultiIsolateApp instances on the fleet's shared
// Env (one clock, one cost model, one telemetry spine):
//
//   * The *active* app holds every resident tenant's live session and
//     serves all requests.
//   * With replication enabled, a *standby* app idles warm: its enclave is
//     already created and measured — the 20M-cycle ECREATE/EADD/EINIT bill
//     was paid at fleet start — and the replication stream keeps a copy of
//     every sealed checkpoint on its side. Enclave loss then becomes a
//     *promotion*: fence the demoted runtime's proxies (no double
//     execution), flip the active index, bump the shard's authority epoch
//     and lazily rebuild sessions from the replicated checkpoints; the
//     lost enclave is re-measured in the background (on a detached core,
//     the §5.5 helper-thread pattern) to become the next standby. Without
//     a ready standby the shard falls back to the PR 5 restart-and-restore
//     ladder inline — the 3x+ p99 gap fig_fleet measures.
//
// Sessions are restored *lazily*, one tenant per first post-recovery
// touch: the recovery window itself stays O(1) and the per-tenant restore
// cost lands on the requests that need that tenant, which is both honest
// latency accounting and what keeps promotion cheap at 16+ residents.
//
// Cross-enclave unsealing is legal by construction: both apps run the same
// trusted image, so both enclaves carry the same measurement and the
// sealing KDF (MRENCLAVE policy) derives the same key.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/multi_app.h"
#include "sched/scheduler.h"
#include "server/server.h"
#include "server/tenant_state.h"

namespace msv::faults {
class FaultInjector;
}

namespace msv::telemetry {
class SloMonitor;  // telemetry/slo.h
}

namespace msv::fleet {

struct ShardConfig {
  // Isolate slots per enclave = maximum resident tenants of this shard.
  std::uint32_t slots = 8;
  std::uint32_t workers = 1;
  std::size_t max_queue_depth = 64;  // per resident tenant
  // Coalescing width (DESIGN.md §13); 1 disables batching.
  std::uint32_t coalesce_max = 1;
  // Keep a warm standby enclave fed by the checkpoint replication stream.
  bool replication = false;
  std::int32_t initial_balance = 0;
  // Retry ladder + checkpoint cadence, shared with the single-enclave
  // server so the restart-and-restore fallback is cycle-comparable.
  server::RecoveryConfig recovery;
};

struct ShardStats {
  std::uint64_t accepted = 0;
  std::uint64_t shed = 0;
  std::uint64_t shed_recovery = 0;   // of shed: admission closed mid-recovery
  std::uint64_t shed_migrating = 0;  // of shed: tenant quiesced for migration
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t retries = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t replicated_blobs = 0;  // checkpoints streamed to the standby
  std::uint64_t replicated_bytes = 0;
  std::uint64_t restored = 0;
  std::uint64_t checkpoint_corrupt = 0;
  std::uint64_t promotions = 0;        // replica promotions (warm path)
  std::uint64_t restarts = 0;          // inline restart-and-restore (cold path)
  std::uint64_t standby_rebuilds = 0;  // background re-measures completed
  Cycles recovery_cycles = 0;          // total serving-stall across recoveries
  Cycles last_recovery_cycles = 0;
  std::size_t max_queue_depth = 0;
  // Health timeline (DESIGN.md §16): recoverable faults workers caught,
  // and the instants the bench gate compares ("the SLO monitor must flag
  // the shard degraded no later than the ladder fires").
  std::uint64_t fault_errors = 0;
  Cycles first_fault_seen_cycles = 0;        // first caught recoverable fault
  Cycles first_recovery_started_cycles = 0;  // first ladder activation
};

class Shard {
 public:
  Shard(Env& env, sched::Scheduler& sched, const model::AppModel& app_model,
        std::uint32_t shard_id, ShardConfig config,
        core::AppConfig app_config);
  ~Shard();

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  // Spawns the worker daemons. Must be called outside tasks; idempotent.
  void start();
  // Cooperative stop: flags workers to retire once their queues drain and
  // wakes them. The router runs the scheduler afterwards.
  void begin_stop();

  std::uint32_t shard_id() const { return shard_id_; }

  // ---- Tenant residency ----
  // Binds a tenant to a free isolate slot; the session itself is built
  // lazily on first touch (fresh, or from the adopted checkpoint).
  void bind_tenant(std::uint32_t tenant);
  // bind_tenant + seed the tenant's sealed checkpoint (migration arrival).
  void adopt_checkpoint(std::uint32_t tenant, std::vector<std::uint8_t> blob);
  // Force-seals the tenant's current state and returns the blob
  // (migration departure). Task-side; the tenant should be quiesced.
  std::vector<std::uint8_t> seal_tenant(std::uint32_t tenant);
  // Ends residency. The tenant must be fully drained.
  void unbind_tenant(std::uint32_t tenant);
  bool hosts(std::uint32_t tenant) const;
  std::vector<std::uint32_t> resident_tenants() const;  // sorted
  std::uint32_t resident_count() const {
    return static_cast<std::uint32_t>(slot_of_.size());
  }

  // ---- Serving ----
  // Fire-and-forget; sheds on a full queue, mid-recovery, or while the
  // tenant is quiesced for migration.
  bool submit(std::uint32_t tenant, server::Request r);
  // Closed-loop: blocks for queue space, waits for the result. Task-only.
  std::int64_t submit_and_wait(std::uint32_t tenant, server::Request r);
  std::size_t pending() const;  // queued + in-flight across residents
  std::size_t pending_for(std::uint32_t tenant) const;

  // Task-side migration fence: closes admission for `tenant` and waits
  // until its queue and in-flight work drain. A worker mid-batch finishes
  // the whole coalesced swing first — the PR 6 fence the migration drains
  // behind. resume_tenant reopens admission (migration abandoned).
  void quiesce_tenant(std::uint32_t tenant);
  void resume_tenant(std::uint32_t tenant);

  // ---- Failover ----
  bool standby_ready() const { return standby_ready_; }
  bool recovering() const { return recovering_; }
  // Planned promotion (tests / operator-driven failover): requires a ready
  // standby and no recovery in flight.
  void promote_standby();
  // Authority epoch: bumped once per promotion. Proxies of earlier epochs
  // were fenced and fault with StaleProxyError.
  std::uint64_t authority_epoch() const { return authority_epoch_; }

  core::MultiIsolateApp& active_app() { return *apps_[active_]; }
  const core::MultiIsolateApp& active_app() const { return *apps_[active_]; }
  // Null when replication is off.
  core::MultiIsolateApp* standby_app() {
    return apps_[active_ ^ 1] == nullptr ? nullptr : apps_[active_ ^ 1].get();
  }

  // Fault wiring: the injector is attached to the *active* bridge and
  // follows the authority across promotions (retarget + re-attach).
  void attach_injector(faults::FaultInjector* injector);

  // SLO wiring (DESIGN.md §16): sheds, caught recoverable faults and
  // completion latencies feed the monitor keyed by shard id. Faults are
  // recorded at the *catch* site — before the recovery ladder runs — so
  // the health state machine flips degraded no later than the failover
  // starts. nullptr detaches; every record site is one pointer test.
  void attach_slo(telemetry::SloMonitor* slo) { slo_ = slo; }

  const ShardStats& stats() const { return stats_; }
  // Completed-request latencies, shard-wide, in completion order.
  const std::vector<Cycles>& latencies() const { return latencies_; }
  telemetry::Histogram* latency_hist = nullptr;  // resolved by the router

 private:
  struct Pending {
    server::Request req;
    std::uint32_t tenant = 0;
    bool owned = false;
    bool done = false;
    sched::TaskId waiter = sched::kNoTask;
    std::int64_t result = 0;
    std::exception_ptr error;
    telemetry::Tracer::DetachedSpan span;
  };

  struct Slot {
    explicit Slot(sched::Scheduler& s) : space(s), drained(s) {}
    static constexpr std::uint32_t kFree = 0xffffffffu;
    std::uint32_t index = 0;  // isolate index inside the enclave
    std::uint32_t tenant = kFree;
    server::TenantState state;
    // Shard generation the session was built under; != generation_ means
    // the session must be (re)built before the next invoke.
    std::uint64_t session_generation = 0;
    // The standby's copy of the latest sealed checkpoint — what the
    // replication stream has delivered so far. Promotion restores from
    // this, the bytes the new authority actually holds.
    std::vector<std::uint8_t> replica_checkpoint;
    std::deque<Pending*> queue;
    sched::WaitQueue space;    // submitters park here when the queue is full
    sched::WaitQueue drained;  // migration fence parks here
    std::size_t in_flight = 0;
    bool quiescing = false;
  };

  Slot& slot_for(std::uint32_t tenant);
  const Slot& slot_for(std::uint32_t tenant) const;
  void enqueue(Slot& slot, Pending* p);
  void worker_loop();
  void finish_request(Slot& slot, Pending* p);
  void execute_batch(Slot& slot, std::vector<Pending*>& batch);
  std::int64_t execute_with_retry(Slot& slot, Pending& p);
  // First worker to find the active enclave lost runs the failover —
  // promotion when a standby is warm, inline restart otherwise; the rest
  // park on recovery_done_ and admission sheds meanwhile.
  void ensure_recovered();
  void promote_standby_locked();
  // Catch-site bookkeeping for a recoverable fault (SLO + timeline).
  void note_fault();
  // Lazy per-tenant session build: fresh, or from the sealed checkpoint.
  void prepare_slot(Slot& slot);
  void maybe_checkpoint(Slot& slot);
  void seal_now(Slot& slot);

  Env& env_;
  sched::Scheduler& sched_;
  std::uint32_t shard_id_;
  ShardConfig config_;
  sgx::SealingPlatform sealer_;
  // [0] primary at start; [1] standby (null with replication off).
  std::unique_ptr<core::MultiIsolateApp> apps_[2];
  std::uint32_t active_ = 0;
  std::uint64_t authority_epoch_ = 1;
  // Bumped whenever every resident session becomes invalid (promotion or
  // enclave restart); slots rebuild lazily against the new value.
  std::uint64_t generation_ = 1;
  bool standby_ready_ = false;
  bool recovering_ = false;
  bool started_ = false;
  bool stopping_ = false;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::map<std::uint32_t, std::uint32_t> slot_of_;  // tenant -> slot index
  std::deque<std::uint32_t> work_;  // slot indices with queued work
  sched::WaitQueue work_available_;
  sched::WaitQueue recovery_done_;
  faults::FaultInjector* injector_ = nullptr;
  telemetry::SloMonitor* slo_ = nullptr;
  ShardStats stats_;
  std::vector<Cycles> latencies_;
};

}  // namespace msv::fleet
