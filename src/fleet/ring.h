// Seeded consistent-hash ring (DESIGN.md §14).
//
// Tenants are sharded across fleet nodes by consistent hashing: each node
// contributes `vnodes` virtual points on a 64-bit ring (FNV-1a of
// "<seed>/node-<id>#<replica>"), and a key is owned by the first point at
// or clockwise after its hash. The properties the fleet needs — and
// fleet_test asserts — follow directly:
//
//   * Stable assignment: ownership is a pure function of (seed, member
//     set), never of insertion order or wall anything.
//   * Bounded churn: adding or removing one node moves only the keys in
//     the arcs that node's points cover — about 1/N of the keyspace —
//     while every other key keeps its owner.
//
// The ring is routing policy only; it holds no tenant state. The router
// keeps its own tenant->shard table (seeded from the ring, amended by
// migrations) so a ring change never implicitly teleports live state.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace msv::fleet {

class HashRing {
 public:
  HashRing(std::uint64_t seed, std::uint32_t vnodes_per_node);

  void add_node(std::uint32_t node);
  void remove_node(std::uint32_t node);
  bool has_node(std::uint32_t node) const;
  std::size_t node_count() const { return points_of_.size(); }
  std::vector<std::uint32_t> nodes() const;

  // Owner of a tenant key. Throws when the ring is empty.
  std::uint32_t owner_of(std::uint32_t key) const;

  // The raw ring point a key hashes to (exposed for diagnostics/tests).
  std::uint64_t point_of_key(std::uint32_t key) const;

 private:
  std::uint64_t vnode_point(std::uint32_t node, std::uint32_t replica) const;

  std::uint64_t seed_;
  std::uint32_t vnodes_;
  // point -> node; ordered, so owner lookup is one upper_bound and
  // iteration order is deterministic.
  std::map<std::uint64_t, std::uint32_t> ring_;
  // The points each member actually inserted (collisions are re-hashed
  // deterministically, so removal must erase exactly these).
  std::map<std::uint32_t, std::vector<std::uint64_t>> points_of_;
};

}  // namespace msv::fleet
