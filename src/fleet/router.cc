#include "fleet/router.h"

#include <algorithm>
#include <string>
#include <utility>

#include "support/error.h"
#include "telemetry/adapters.h"

namespace msv::fleet {

FleetRouter::FleetRouter(Env& env, sched::Scheduler& sched,
                         const model::AppModel& app_model, FleetConfig config)
    : env_(env),
      sched_(sched),
      app_model_(app_model),
      config_(config),
      ring_(config.ring_seed, config.vnodes) {
  MSV_CHECK_MSG(config_.shards > 0, "fleet needs at least one shard");
  MSV_CHECK_MSG(config_.tenants > 0, "fleet needs at least one tenant");
  for (std::uint32_t k = 0; k < config_.shards; ++k) ring_.add_node(k);
  // Seed the route table from the ring before sizing shards: each shard
  // needs one isolate slot per resident, and the ring's spread decides
  // residency. `slots` in the shard config is a floor; a shard that the
  // ring loads heavier gets exactly what it needs.
  std::vector<std::uint32_t> residents(config_.shards, 0);
  for (std::uint32_t t = 0; t < config_.tenants; ++t) {
    const std::uint32_t owner = ring_.owner_of(t);
    route_[t] = owner;
    ++residents[owner];
  }
  for (std::uint32_t k = 0; k < config_.shards; ++k) {
    ShardConfig sc = config_.shard;
    // Headroom above the ring's current spread lets migrations land
    // without rebuilding the shard.
    sc.slots = std::max(sc.slots, residents[k] + 2);
    shards_.push_back(std::make_unique<Shard>(env_, sched_, app_model_, k,
                                              sc, config_.app));
  }
  injectors_.resize(config_.shards);
  accepted_by_tenant_.assign(config_.tenants, 0);
}

FleetRouter::~FleetRouter() {
  try {
    stop();
  } catch (...) {
    // Destructors stay noexcept; stop() failures surface on explicit calls.
  }
}

void FleetRouter::start() {
  if (started_) return;
  for (auto& shard : shards_) shard->start();
  for (const auto& [tenant, k] : route_) shards_[k]->bind_tenant(tenant);
  if (config_.slo_enabled) {
    slo_ = std::make_unique<telemetry::SloMonitor>(env_.clock, config_.slo,
                                                   "shard");
    for (auto& shard : shards_) shard->attach_slo(slo_.get());
  }
  if (env_.telemetry.metrics_enabled()) {
    for (std::uint32_t k = 0; k < shards_.size(); ++k) {
      shards_[k]->latency_hist = &env_.telemetry.metrics().histogram(
          "msv_fleet_request_latency_cycles",
          {{"shard", std::to_string(k)}});
    }
  }
  started_ = true;
}

void FleetRouter::stop() {
  if (!started_ || stopped_) return;
  for (auto& shard : shards_) shard->begin_stop();
  sched_.run();
  stopped_ = true;
}

std::uint32_t FleetRouter::shard_of(std::uint32_t tenant) const {
  const auto it = route_.find(tenant);
  MSV_CHECK_MSG(it != route_.end(),
                "tenant " + std::to_string(tenant) + " is not routed");
  return it->second;
}

std::uint32_t FleetRouter::tenants_off_ring() const {
  std::uint32_t n = 0;
  for (const auto& [tenant, k] : route_) {
    if (ring_.owner_of(tenant) != k) ++n;
  }
  return n;
}

bool FleetRouter::submit(std::uint32_t tenant, server::Request r) {
  const std::uint32_t k = shard_of(tenant);
  Shard& shard = *shards_[k];
  // SLO enforcement: a shard the monitor holds critical stops taking new
  // work at the router — the backlog it has is the backlog it drains.
  // Router-level sheds are *not* recorded back into the monitor (that
  // feedback loop would hold a critical shard critical forever on its own
  // rejections); the shard's organic sheds/errors alone drive recovery.
  if (config_.slo_enforce && slo_ != nullptr &&
      slo_->health(k) == telemetry::HealthState::kCritical) {
    ++shed_slo_;
    return false;
  }
  if (shard.pending() >= config_.max_shard_pending) {
    ++shed_admission_;
    return false;
  }
  const bool accepted = shard.submit(tenant, r);
  if (accepted) ++accepted_by_tenant_[tenant];
  return accepted;
}

std::int64_t FleetRouter::submit_and_wait(std::uint32_t tenant,
                                          server::Request r) {
  Shard& shard = *shards_[shard_of(tenant)];
  const std::int64_t result = shard.submit_and_wait(tenant, r);
  ++accepted_by_tenant_[tenant];
  return result;
}

std::size_t FleetRouter::pending() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) n += shard->pending();
  return n;
}

void FleetRouter::migrate_tenant(std::uint32_t tenant,
                                 std::uint32_t to_shard) {
  MSV_CHECK_MSG(to_shard < shards_.size(), "migration target out of range");
  const std::uint32_t from_shard = shard_of(tenant);
  MSV_CHECK_MSG(from_shard != to_shard,
                "tenant already lives on the target shard");
  telemetry::SpanScope span(env_.telemetry.tracer(),
                            telemetry::Category::kFleet,
                            env_.telemetry.names().fleet_migrate,
                            static_cast<std::int32_t>(tenant));
  Shard& src = *shards_[from_shard];
  Shard& dst = *shards_[to_shard];
  // Drain behind the coalescing fence, then move the *sealed* state: the
  // blob is safe in untrusted hands, and the target enclave's identical
  // measurement derives the same unsealing key (§11).
  src.quiesce_tenant(tenant);
  std::vector<std::uint8_t> blob = src.seal_tenant(tenant);
  src.unbind_tenant(tenant);
  dst.adopt_checkpoint(tenant, std::move(blob));
  route_[tenant] = to_shard;
  ++migrations_;
}

std::uint64_t FleetRouter::tenant_accepted(std::uint32_t tenant) const {
  return accepted_by_tenant_[tenant];
}

std::uint32_t FleetRouter::hottest_tenant() const {
  std::uint32_t best = 0;
  for (std::uint32_t t = 1; t < accepted_by_tenant_.size(); ++t) {
    if (accepted_by_tenant_[t] > accepted_by_tenant_[best]) best = t;
  }
  return best;
}

void FleetRouter::attach_fault_plan(const faults::FaultPlan& plan) {
  for (std::uint32_t k = 0; k < shards_.size(); ++k) {
    faults::FaultPlan mine = plan.for_target(k);
    if (mine.empty()) continue;
    MSV_CHECK_MSG(injectors_[k] == nullptr,
                  "shard already has a fault plan attached");
    injectors_[k] =
        std::make_unique<faults::FaultInjector>(env_, std::move(mine));
    injectors_[k]->arm(shards_[k]->active_app().enclave());
    shards_[k]->attach_injector(injectors_[k].get());
  }
}

std::optional<FleetRouter::MigrationHint> FleetRouter::migration_hint() {
  if (slo_ == nullptr || shards_.size() < 2) return std::nullopt;
  // Sickest shard: worst health state, ties broken by deepest backlog.
  std::uint32_t worst = 0;
  auto worst_h = telemetry::HealthState::kHealthy;
  for (std::uint32_t k = 0; k < shards_.size(); ++k) {
    const auto h = slo_->health(k);
    if (k == 0 || h > worst_h ||
        (h == worst_h && shards_[k]->pending() > shards_[worst]->pending())) {
      worst = k;
      worst_h = h;
    }
  }
  if (worst_h == telemetry::HealthState::kHealthy) return std::nullopt;
  // Healthiest other shard, ties broken by shallowest backlog.
  std::uint32_t best = worst == 0 ? 1 : 0;
  auto best_h = slo_->health(best);
  for (std::uint32_t k = 0; k < shards_.size(); ++k) {
    if (k == worst || k == best) continue;
    const auto h = slo_->health(k);
    if (h < best_h ||
        (h == best_h && shards_[k]->pending() < shards_[best]->pending())) {
      best = k;
      best_h = h;
    }
  }
  if (best_h >= worst_h) return std::nullopt;
  // Hottest tenant resident on the sick shard.
  std::uint32_t tenant = 0;
  std::uint64_t hottest = 0;
  bool found = false;
  for (const std::uint32_t t : shards_[worst]->resident_tenants()) {
    if (!found || accepted_by_tenant_[t] > hottest) {
      tenant = t;
      hottest = accepted_by_tenant_[t];
      found = true;
    }
  }
  if (!found) return std::nullopt;
  return MigrationHint{tenant, worst, best};
}

FleetStats FleetRouter::stats() const {
  FleetStats out;
  out.shed_admission = shed_admission_;
  out.shed_slo = shed_slo_;
  out.shed = shed_admission_ + shed_slo_;
  out.migrations = migrations_;
  for (const auto& shard : shards_) {
    const ShardStats& s = shard->stats();
    out.accepted += s.accepted;
    out.shed += s.shed;
    out.shed_recovery += s.shed_recovery;
    out.shed_migrating += s.shed_migrating;
    out.completed += s.completed;
    out.failed += s.failed;
    out.retries += s.retries;
    out.checkpoints += s.checkpoints;
    out.replicated_blobs += s.replicated_blobs;
    out.replicated_bytes += s.replicated_bytes;
    out.restored += s.restored;
    out.checkpoint_corrupt += s.checkpoint_corrupt;
    out.promotions += s.promotions;
    out.restarts += s.restarts;
    out.standby_rebuilds += s.standby_rebuilds;
    out.recovery_cycles += s.recovery_cycles;
  }
  return out;
}

void FleetRouter::publish_metrics() {
  if (!env_.telemetry.metrics_enabled()) return;
  telemetry::MetricsRegistry& m = env_.telemetry.metrics();
  telemetry::publish_fleet(m, stats());
  m.gauge("msv_fleet_shards").set(static_cast<double>(shards_.size()));
  m.gauge("msv_fleet_tenants_off_ring")
      .set(static_cast<double>(tenants_off_ring()));
  for (std::uint32_t k = 0; k < shards_.size(); ++k) {
    telemetry::publish_fleet_shard(m, shards_[k]->stats(), k);
  }
  if (slo_ != nullptr) slo_->publish(m);
}

}  // namespace msv::fleet
