#include "fleet/router.h"

#include <algorithm>
#include <string>
#include <utility>

#include "support/error.h"
#include "telemetry/adapters.h"

namespace msv::fleet {

FleetRouter::FleetRouter(Env& env, sched::Scheduler& sched,
                         const model::AppModel& app_model, FleetConfig config)
    : env_(env),
      sched_(sched),
      app_model_(app_model),
      config_(config),
      ring_(config.ring_seed, config.vnodes) {
  MSV_CHECK_MSG(config_.shards > 0, "fleet needs at least one shard");
  MSV_CHECK_MSG(config_.tenants > 0, "fleet needs at least one tenant");
  for (std::uint32_t k = 0; k < config_.shards; ++k) ring_.add_node(k);
  // Seed the route table from the ring before sizing shards: each shard
  // needs one isolate slot per resident, and the ring's spread decides
  // residency. `slots` in the shard config is a floor; a shard that the
  // ring loads heavier gets exactly what it needs.
  std::vector<std::uint32_t> residents(config_.shards, 0);
  for (std::uint32_t t = 0; t < config_.tenants; ++t) {
    const std::uint32_t owner = ring_.owner_of(t);
    route_[t] = owner;
    ++residents[owner];
  }
  for (std::uint32_t k = 0; k < config_.shards; ++k) {
    ShardConfig sc = config_.shard;
    // Headroom above the ring's current spread lets migrations land
    // without rebuilding the shard.
    sc.slots = std::max(sc.slots, residents[k] + 2);
    shards_.push_back(std::make_unique<Shard>(env_, sched_, app_model_, k,
                                              sc, config_.app));
  }
  injectors_.resize(config_.shards);
  accepted_by_tenant_.assign(config_.tenants, 0);
}

FleetRouter::~FleetRouter() {
  try {
    stop();
  } catch (...) {
    // Destructors stay noexcept; stop() failures surface on explicit calls.
  }
}

void FleetRouter::start() {
  if (started_) return;
  for (auto& shard : shards_) shard->start();
  for (const auto& [tenant, k] : route_) shards_[k]->bind_tenant(tenant);
  if (env_.telemetry.metrics_enabled()) {
    for (std::uint32_t k = 0; k < shards_.size(); ++k) {
      shards_[k]->latency_hist = &env_.telemetry.metrics().histogram(
          "msv_fleet_request_latency_cycles",
          {{"shard", std::to_string(k)}});
    }
  }
  started_ = true;
}

void FleetRouter::stop() {
  if (!started_ || stopped_) return;
  for (auto& shard : shards_) shard->begin_stop();
  sched_.run();
  stopped_ = true;
}

std::uint32_t FleetRouter::shard_of(std::uint32_t tenant) const {
  const auto it = route_.find(tenant);
  MSV_CHECK_MSG(it != route_.end(),
                "tenant " + std::to_string(tenant) + " is not routed");
  return it->second;
}

std::uint32_t FleetRouter::tenants_off_ring() const {
  std::uint32_t n = 0;
  for (const auto& [tenant, k] : route_) {
    if (ring_.owner_of(tenant) != k) ++n;
  }
  return n;
}

bool FleetRouter::submit(std::uint32_t tenant, server::Request r) {
  Shard& shard = *shards_[shard_of(tenant)];
  if (shard.pending() >= config_.max_shard_pending) {
    ++shed_admission_;
    return false;
  }
  const bool accepted = shard.submit(tenant, r);
  if (accepted) ++accepted_by_tenant_[tenant];
  return accepted;
}

std::int64_t FleetRouter::submit_and_wait(std::uint32_t tenant,
                                          server::Request r) {
  Shard& shard = *shards_[shard_of(tenant)];
  const std::int64_t result = shard.submit_and_wait(tenant, r);
  ++accepted_by_tenant_[tenant];
  return result;
}

std::size_t FleetRouter::pending() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) n += shard->pending();
  return n;
}

void FleetRouter::migrate_tenant(std::uint32_t tenant,
                                 std::uint32_t to_shard) {
  MSV_CHECK_MSG(to_shard < shards_.size(), "migration target out of range");
  const std::uint32_t from_shard = shard_of(tenant);
  MSV_CHECK_MSG(from_shard != to_shard,
                "tenant already lives on the target shard");
  telemetry::SpanScope span(env_.telemetry.tracer(),
                            telemetry::Category::kFleet,
                            env_.telemetry.names().fleet_migrate,
                            static_cast<std::int32_t>(tenant));
  Shard& src = *shards_[from_shard];
  Shard& dst = *shards_[to_shard];
  // Drain behind the coalescing fence, then move the *sealed* state: the
  // blob is safe in untrusted hands, and the target enclave's identical
  // measurement derives the same unsealing key (§11).
  src.quiesce_tenant(tenant);
  std::vector<std::uint8_t> blob = src.seal_tenant(tenant);
  src.unbind_tenant(tenant);
  dst.adopt_checkpoint(tenant, std::move(blob));
  route_[tenant] = to_shard;
  ++migrations_;
}

std::uint64_t FleetRouter::tenant_accepted(std::uint32_t tenant) const {
  return accepted_by_tenant_[tenant];
}

std::uint32_t FleetRouter::hottest_tenant() const {
  std::uint32_t best = 0;
  for (std::uint32_t t = 1; t < accepted_by_tenant_.size(); ++t) {
    if (accepted_by_tenant_[t] > accepted_by_tenant_[best]) best = t;
  }
  return best;
}

void FleetRouter::attach_fault_plan(const faults::FaultPlan& plan) {
  for (std::uint32_t k = 0; k < shards_.size(); ++k) {
    faults::FaultPlan mine = plan.for_target(k);
    if (mine.empty()) continue;
    MSV_CHECK_MSG(injectors_[k] == nullptr,
                  "shard already has a fault plan attached");
    injectors_[k] =
        std::make_unique<faults::FaultInjector>(env_, std::move(mine));
    injectors_[k]->arm(shards_[k]->active_app().enclave());
    shards_[k]->attach_injector(injectors_[k].get());
  }
}

FleetStats FleetRouter::stats() const {
  FleetStats out;
  out.shed_admission = shed_admission_;
  out.shed = shed_admission_;
  out.migrations = migrations_;
  for (const auto& shard : shards_) {
    const ShardStats& s = shard->stats();
    out.accepted += s.accepted;
    out.shed += s.shed;
    out.shed_recovery += s.shed_recovery;
    out.shed_migrating += s.shed_migrating;
    out.completed += s.completed;
    out.failed += s.failed;
    out.retries += s.retries;
    out.checkpoints += s.checkpoints;
    out.replicated_blobs += s.replicated_blobs;
    out.replicated_bytes += s.replicated_bytes;
    out.restored += s.restored;
    out.checkpoint_corrupt += s.checkpoint_corrupt;
    out.promotions += s.promotions;
    out.restarts += s.restarts;
    out.standby_rebuilds += s.standby_rebuilds;
    out.recovery_cycles += s.recovery_cycles;
  }
  return out;
}

void FleetRouter::publish_metrics() {
  if (!env_.telemetry.metrics_enabled()) return;
  telemetry::MetricsRegistry& m = env_.telemetry.metrics();
  telemetry::publish_fleet(m, stats());
  m.gauge("msv_fleet_shards").set(static_cast<double>(shards_.size()));
  m.gauge("msv_fleet_tenants_off_ring")
      .set(static_cast<double>(tenants_off_ring()));
  for (std::uint32_t k = 0; k < shards_.size(); ++k) {
    telemetry::publish_fleet_shard(m, shards_[k]->stats(), k);
  }
}

}  // namespace msv::fleet
