#include "rmi/proxy_runtime.h"

#include "sched/scheduler.h"
#include "support/error.h"
#include "transform/transformer.h"

namespace msv::rmi {

using interp::ExecContext;
using model::ClassDecl;
using model::MethodDecl;
using model::MethodKind;
using rt::GcRef;
using rt::Value;

ProxyRuntime::ProxyRuntime(Env& env, sgx::TransitionBridge& bridge,
                           ExecContext& trusted_ctx, ExecContext& untrusted_ctx,
                           Config config)
    : env_(env),
      bridge_(bridge),
      config_(config),
      trusted_(trusted_ctx, config.hash_scheme),
      untrusted_(untrusted_ctx, config.hash_scheme),
      scan_period_(env.clock.seconds_to_cycles(config.gc_scan_period_seconds)) {
  MSV_CHECK_MSG(trusted_ctx.isolate().trusted(),
                "trusted context must run in an enclave-backed isolate");
  MSV_CHECK_MSG(!untrusted_ctx.isolate().trusted(),
                "untrusted context must not run inside the enclave");
  trusted_.next_scan = scan_period_;
  untrusted_.next_scan = scan_period_;
}

ProxyRuntime::ProxyRuntime(Env& env, sgx::TransitionBridge& bridge,
                           ExecContext& trusted_ctx,
                           ExecContext& untrusted_ctx)
    : ProxyRuntime(env, bridge, trusted_ctx, untrusted_ctx, Config()) {}

ProxyRuntime::~ProxyRuntime() {
  // The suspend hook captures `this`; unhook before the runtime dies (the
  // scheduler outlives the RMI layer by the documented destruction order).
  if (hook_installed_ && bridge_.scheduler() != nullptr) {
    bridge_.scheduler()->set_suspend_hook(nullptr);
  }
}

ProxyRuntime::SideState& ProxyRuntime::state(Side side) {
  return side == Side::kTrusted ? trusted_ : untrusted_;
}

const ProxyRuntime::SideState& ProxyRuntime::state(Side side) const {
  return side == Side::kTrusted ? trusted_ : untrusted_;
}

ProxyRuntime::SideState& ProxyRuntime::state_of(ExecContext& ctx) {
  if (&ctx == &trusted_.ctx) return trusted_;
  MSV_CHECK_MSG(&ctx == &untrusted_.ctx, "context unknown to this runtime");
  return untrusted_;
}

ProxyRuntime::SideState& ProxyRuntime::other(SideState& s) {
  return &s == &trusted_ ? untrusted_ : trusted_;
}

// ---------------------------------------------------------------------------
// Wire helpers

RefEncoder ProxyRuntime::make_ref_encoder(SideState& s, std::uint32_t depth) {
  return [this, &s, depth](ByteBuffer& out, const GcRef& ref) {
    const ClassDecl& cls = s.ctx.class_of(ref);
    if (cls.is_proxy()) {
      // Our proxy of an object owned by the decoder: its hash resolves in
      // the decoder's registry.
      out.put_u8(static_cast<std::uint8_t>(WireTag::kRefOwnedByDecoder));
      out.put_i64(s.ctx.isolate().get_field(ref, 0).as_i64());
      return;
    }
    if (cls.annotation() != model::Annotation::kNeutral) {
      // Our concrete annotated object: register it (if new) so the decoder
      // side can call back through a materialized proxy.
      std::int64_t hash;
      if (const auto existing = s.registry.hash_for(ref)) {
        hash = *existing;
      } else {
        hash = s.hasher.next(s.ctx.isolate().heap().identity_hash(ref.address()));
        s.registry.add(hash, ref);
        ++stats_.mirrors_registered;
      }
      out.put_u8(static_cast<std::uint8_t>(WireTag::kRefOwnedByEncoder));
      out.put_i64(hash);
      out.put_string(cls.name());
      return;
    }
    // Instance of a neutral class: serialized field by field — a copy
    // "which may evolve independently" (§5.1).
    if (depth >= config_.max_serialization_depth) {
      throw RuntimeFault("neutral object graph too deep to serialize (cycle?)");
    }
    out.put_u8(static_cast<std::uint8_t>(WireTag::kNeutralObject));
    out.put_string(cls.name());
    const auto nfields = static_cast<std::uint32_t>(cls.fields().size());
    out.put_varint(nfields);
    for (std::uint32_t i = 0; i < nfields; ++i) {
      encode_value(out, s.ctx.isolate().get_field(ref, i),
                   make_ref_encoder(s, depth + 1));
    }
  };
}

RefDecoder ProxyRuntime::make_ref_decoder(SideState& s, std::uint32_t depth) {
  return [this, &s, depth](ByteReader& in, WireTag tag) -> Value {
    switch (tag) {
      case WireTag::kRefOwnedByDecoder:
        // One of our own objects coming home: resolve the mirror.
        return Value(s.registry.get(in.get_i64()));
      case WireTag::kRefOwnedByEncoder: {
        const std::int64_t hash = in.get_i64();
        const std::string cls = in.get_string();
        return Value(materialize_proxy(s, hash, cls));
      }
      case WireTag::kNeutralObject: {
        if (depth >= config_.max_serialization_depth) {
          throw RuntimeFault("neutral object graph too deep to deserialize");
        }
        const std::string name = in.get_string();
        const ClassDecl& cls = s.ctx.classes().cls(name);
        MSV_CHECK_MSG(!cls.is_proxy() &&
                          cls.annotation() == model::Annotation::kNeutral,
                      "wire neutral object of non-neutral class " + name);
        const auto nfields = static_cast<std::uint32_t>(in.get_varint());
        MSV_CHECK_MSG(nfields == cls.fields().size(),
                      "field count mismatch deserializing " + name);
        const GcRef obj =
            s.ctx.isolate().new_instance(s.ctx.class_id(name), nfields);
        for (std::uint32_t i = 0; i < nfields; ++i) {
          s.ctx.isolate().set_field(
              obj, i, decode_value(in, make_ref_decoder(s, depth + 1)));
        }
        return Value(obj);
      }
      default:
        throw RuntimeFault("corrupt wire ref tag");
    }
  };
}

GcRef ProxyRuntime::materialize_proxy(SideState& s, std::int64_t hash,
                                      const std::string& class_name) {
  // Reuse the live proxy for this hash if there is one: each mirror must
  // have at most one proxy per runtime or mirror eviction would fire while
  // a twin proxy is still alive.
  const auto it = s.proxy_by_hash.find(hash);
  if (it != s.proxy_by_hash.end()) {
    const rt::WeakEntry& e = s.ctx.isolate().weak_refs().entry(it->second);
    if (e.target != rt::kNullAddr &&
        e.payload == static_cast<std::uint64_t>(hash)) {
      return s.ctx.isolate().make_ref(e.target);
    }
  }
  const ClassDecl& cls = s.ctx.classes().cls(class_name);
  MSV_CHECK_MSG(cls.is_proxy(), "materializing a proxy of concrete class " +
                                    class_name + " (image mix-up)");
  const GcRef proxy = s.ctx.isolate().new_instance(s.ctx.class_id(class_name),
                                                   /*field_count=*/1);
  s.ctx.isolate().set_field(proxy, 0, Value(hash));
  const std::uint32_t weak_index = s.ctx.isolate().weak_refs().add(
      proxy.address(), static_cast<std::uint64_t>(hash));
  s.proxy_by_hash[hash] = weak_index;
  ++stats_.proxies_materialized;
  return proxy;
}

const ProxyRuntime::RelayPlan& ProxyRuntime::plan_for(const MethodDecl& stub) {
  // Monomorphic fast case: the same stub invoked back-to-back.
  if (&stub == last_plan_stub_) return *last_plan_;
  const auto it = plans_.find(&stub);
  const RelayPlan* plan;
  if (it != plans_.end()) {
    plan = &it->second;
  } else {
    const model::ProxyStubInfo& info = stub.proxy();
    const sgx::CallId id = info.via_ecall ? bridge_.ecall_id(info.relay_name)
                                          : bridge_.ocall_id(info.relay_name);
    const std::uint32_t span_name =
        env_.telemetry.tracer().intern("rmi.invoke " + info.relay_name);
    plan = &plans_
                .emplace(&stub, RelayPlan{id, info.via_ecall,
                                          stub.has_primitive_signature(),
                                          span_name})
                .first->second;
  }
  last_plan_stub_ = &stub;
  last_plan_ = plan;
  return *plan;
}

void ProxyRuntime::encode_call_into(ByteBuffer& buf, SideState& caller,
                                    std::int64_t self_hash,
                                    std::vector<Value>& args) {
  buf.put_i64(self_hash);
  buf.put_varint(args.size());
  std::uint64_t elements = 0;
  RefEncoder enc;  // built lazily, only if a non-primitive argument shows up
  bool all_primitive = true;
  for (auto& a : args) {
    if (encode_primitive(buf, a)) {
      ++elements;  // element_count() of a primitive is 1
      continue;
    }
    all_primitive = false;
    elements += element_count(a);
    if (!enc) enc = make_ref_encoder(caller);
    encode_value(buf, a, enc);
  }
  if (all_primitive) ++stats_.fast_path_calls;
  charge_serialize(env_, caller.ctx.isolate().domain(), elements, buf.size());
}

// Legacy (pre-fast-path) encoder: fresh buffer, seed-shape byte ops,
// ref-encoder closure built up front whether or not any argument needs it.
ByteBuffer ProxyRuntime::encode_call(SideState& caller, std::int64_t self_hash,
                                     std::vector<Value>& args) {
  ByteBuffer buf;
  compat::put_i64(buf, self_hash);
  compat::put_varint(buf, args.size());
  std::uint64_t elements = 0;
  for (auto& a : args) {
    elements += element_count(a);
    encode_value_compat(buf, a, make_ref_encoder(caller));
  }
  charge_serialize(env_, caller.ctx.isolate().domain(), elements, buf.size());
  return buf;
}

ByteBuffer ProxyRuntime::transition(SideState& /*caller*/,
                                    const std::string& name,
                                    const ByteBuffer& payload, bool via_ecall) {
  if (config_.gc_auto_pump) pump_gc();
  // Legacy shape: the name is resolved on every call (what the PR-1 shim
  // did), but dispatch goes through the ID overload — the deprecated
  // string entry points have no callers left in the library.
  ByteBuffer response;
  if (via_ecall) {
    bridge_.ecall(bridge_.ecall_id(name), payload, response);
  } else {
    bridge_.ocall(bridge_.ocall_id(name), payload, response);
  }
  return response;
}

void ProxyRuntime::transition_fast(const RelayPlan& plan,
                                   const ByteBuffer& payload,
                                   ByteBuffer& response) {
  if (config_.gc_auto_pump) pump_gc();
  if (plan.via_ecall) {
    bridge_.ecall(plan.id, payload, response);
  } else {
    bridge_.ocall(plan.id, payload, response);
  }
}

// ---------------------------------------------------------------------------
// RemoteInvoker

Value ProxyRuntime::construct_proxy(ExecContext& caller,
                                    const ClassDecl& proxy_cls,
                                    std::vector<Value>& args) {
  // Construction is always synchronous; a pending batch flushes first so
  // program order is preserved (the new mirror may be touched by code the
  // caller runs right after `new`).
  if (config_.batching) flush_batches();
  ++stats_.transitions;
  SideState& from = state_of(caller);
  const MethodDecl* ctor_stub = proxy_cls.find_method(model::kConstructorName);
  MSV_CHECK_MSG(ctor_stub != nullptr &&
                    ctor_stub->kind() == MethodKind::kProxyStub,
                "proxy class " + proxy_cls.name() + " has no constructor stub");

  // The local proxy object: a single hash field (§5.2, Listing 2/3).
  const GcRef proxy = caller.isolate().new_instance(
      caller.class_id(proxy_cls.name()), /*field_count=*/1);
  const std::int64_t hash =
      from.hasher.next(caller.isolate().heap().identity_hash(proxy.address()));
  caller.isolate().set_field(proxy, 0, Value(hash));

  // GC helper bookkeeping: weak reference + hash (§5.5).
  const std::uint32_t weak_index = caller.isolate().weak_refs().add(
      proxy.address(), static_cast<std::uint64_t>(hash));
  from.proxy_by_hash[hash] = weak_index;
  ++stats_.proxies_created;

  // Create the mirror in the opposite runtime.
  if (config_.fast_paths) {
    const RelayPlan& plan = plan_for(*ctor_stub);
    // Caller-side RMI span: encode -> transition -> (mirror registered).
    telemetry::SpanScope span(env_.telemetry.tracer(),
                              telemetry::Category::kRmi, plan.span_name);
    ArenaLease payload(arena_);
    encode_call_into(*payload, from, hash, args);
    ArenaLease response(arena_);
    transition_fast(plan, *payload, *response);
  } else {
    telemetry::SpanScope span(env_.telemetry.tracer(),
                              telemetry::Category::kRmi,
                              env_.telemetry.names().rmi_construct);
    ByteBuffer payload = encode_call(from, hash, args);
    transition(from, ctor_stub->proxy().relay_name, payload,
               ctor_stub->proxy().via_ecall);
  }
  return Value(proxy);
}

Value ProxyRuntime::invoke_proxy(ExecContext& caller, const GcRef& proxy,
                                 const ClassDecl& proxy_cls,
                                 const MethodDecl& stub,
                                 std::vector<Value>& args) {
  // Dependency fence: a synchronous call both observes results of and
  // orders after everything already enqueued.
  if (config_.batching) flush_batches();
  ++stats_.transitions;
  SideState& from = state_of(caller);
  MSV_CHECK_MSG(stub.kind() == MethodKind::kProxyStub, "not a proxy stub");
  std::int64_t self_hash = 0;
  if (!stub.is_static()) {
    MSV_CHECK_MSG(!proxy.is_null(),
                  "instance RMI without a proxy object: " + proxy_cls.name() +
                      "." + stub.name());
    self_hash = caller.isolate().get_field(proxy, 0).as_i64();
  }
  ++stats_.remote_invocations;

  if (config_.fast_paths) {
    const RelayPlan& plan = plan_for(stub);
    // Caller-side RMI span: covers marshalling, the bridge transition
    // (whose span nests under this one) and result decoding.
    telemetry::SpanScope span(env_.telemetry.tracer(),
                              telemetry::Category::kRmi, plan.span_name);
    ArenaLease payload(arena_);
    encode_call_into(*payload, from, self_hash, args);
    ArenaLease response(arena_);
    transition_fast(plan, *payload, *response);
    ByteReader r(*response);
    Value result;
    if (!decode_primitive(r, result)) {
      result = decode_value(r, make_ref_decoder(from));
    }
    charge_deserialize(env_, caller.isolate().domain(), element_count(result),
                       response->size());
    return result;
  }

  telemetry::SpanScope span(env_.telemetry.tracer(), telemetry::Category::kRmi,
                            env_.telemetry.names().rmi_invoke);
  ByteBuffer payload = encode_call(from, self_hash, args);
  ByteBuffer response = transition(from, stub.proxy().relay_name, payload,
                                   stub.proxy().via_ecall);
  ByteReader r(response);
  Value result = decode_value_compat(r, make_ref_decoder(from));
  charge_deserialize(env_, caller.isolate().domain(), element_count(result),
                     response.size());
  return result;
}

// ---------------------------------------------------------------------------
// Batched & async RMI (caller side, DESIGN.md §13)

void ProxyRuntime::set_batching(bool enabled) {
  if (!enabled) flush_batches();
  MSV_CHECK_MSG(!enabled || config_.fast_paths,
                "batching requires the fast-path machinery");
  config_.batching = enabled;
}

void ProxyRuntime::install_suspend_hook() {
  if (hook_installed_) return;
  sched::Scheduler* sched = bridge_.scheduler();
  if (sched == nullptr) return;
  // Flush at every voluntary suspension point: once control can change
  // hands, another task could observe state a pending call mutates.
  sched->set_suspend_hook([this] { flush_batches(); });
  hook_installed_ = true;
}

RmiFuture ProxyRuntime::invoke_proxy_async(ExecContext& caller,
                                           const GcRef& proxy,
                                           const ClassDecl& proxy_cls,
                                           const MethodDecl& stub,
                                           std::vector<Value>& args) {
  MSV_CHECK_MSG(stub.kind() == MethodKind::kProxyStub, "not a proxy stub");
  bool all_primitive = config_.batching && stub.has_primitive_signature();
  for (const auto& a : args) {
    if (!all_primitive) break;
    all_primitive = is_primitive(a);
  }
  // Conservative dependency rule: a call that is not declared-and-actually
  // all-primitive may carry refs aliasing state an earlier batched call
  // mutates (or a batch may be mid-flush already) — flush and run it
  // synchronously, returning a resolved future.
  if (!all_primitive || flushing_) {
    auto state = std::make_shared<RmiFutureState>();
    state->done = true;
    try {
      state->result = invoke_proxy(caller, proxy, proxy_cls, stub, args);
    } catch (const sched::TaskCancelled&) {
      throw;
    } catch (...) {
      state->error = std::current_exception();
    }
    return RmiFuture(std::move(state));
  }

  SideState& from = state_of(caller);
  const RelayPlan& plan = plan_for(stub);
  // One pending batch per runtime: a caller-side or direction change is a
  // dependency boundary and flushes (strict order per (task, side)).
  if (!pending_calls_.empty() &&
      (pending_from_ != &from || pending_via_ecall_ != plan.via_ecall)) {
    flush_batches();
  }
  install_suspend_hook();

  std::int64_t self_hash = 0;
  if (!stub.is_static()) {
    MSV_CHECK_MSG(!proxy.is_null(),
                  "instance RMI without a proxy object: " + proxy_cls.name() +
                      "." + stub.name());
    self_hash = caller.isolate().get_field(proxy, 0).as_i64();
  }
  ++stats_.remote_invocations;

  // Marshal now, into a scratch buffer first so charge_serialize sees this
  // call's bytes exactly as the unbatched encoder would; the bare payload
  // is then appended to the pending frame body.
  ArenaLease scratch(arena_);
  encode_call_into(*scratch, from, self_hash, args);
  const std::size_t offset = batch_buf_.size();
  batch_buf_.put_bytes(scratch->data(), scratch->size());

  auto state = std::make_shared<RmiFutureState>();
  state->sink = this;
  pending_from_ = &from;
  pending_via_ecall_ = plan.via_ecall;
  pending_calls_.push_back(
      PendingCall{&plan, state, offset, scratch->size()});

  if (pending_calls_.size() >= config_.max_batch_calls ||
      batch_buf_.size() >= config_.max_batch_bytes) {
    flush_batches();
  }
  return RmiFuture(std::move(state));
}

void ProxyRuntime::flush_batches() {
  if (flushing_ || pending_calls_.empty()) return;
  flushing_ = true;
  try {
    do_flush();
  } catch (...) {
    // Cancellation (or a codec bug) unwinding through the flush: orphan
    // the futures cleanly so a surviving get() fails loud, not dangling.
    for (auto& c : pending_calls_) c.state->sink = nullptr;
    pending_calls_.clear();
    batch_buf_.clear();
    pending_from_ = nullptr;
    flushing_ = false;
    throw;
  }
  pending_calls_.clear();
  batch_buf_.clear();
  pending_from_ = nullptr;
  flushing_ = false;
}

void ProxyRuntime::do_flush() {
  SideState& from = *pending_from_;
  const std::size_t n = pending_calls_.size();
  ++stats_.transitions;
  ++stats_.batch_flushes;
  stats_.batched_calls += n;

  if (n == 1) {
    // A single pending call replays the unbatched wire path exactly: the
    // bare payload IS the whole frame body, no header ever exists, and
    // the simulated cycle charges are byte-identical to a sync call (the
    // batch-size-1 honesty contract asserted by bench/abl_rmi_batch).
    PendingCall& c = pending_calls_.front();
    telemetry::SpanScope span(env_.telemetry.tracer(),
                              telemetry::Category::kRmi, c.plan->span_name);
    ArenaLease response(arena_);
    try {
      transition_fast(*c.plan, batch_buf_, *response);
    } catch (const sched::TaskCancelled&) {
      throw;
    } catch (...) {
      c.state->error = std::current_exception();
      c.state->done = true;
      c.state->sink = nullptr;
      return;
    }
    ByteReader r(*response);
    Value result;
    if (!decode_primitive(r, result)) {
      result = decode_value(r, make_ref_decoder(from));
    }
    charge_deserialize(env_, from.ctx.isolate().domain(),
                       element_count(result), response->size());
    c.state->result = result;
    c.state->done = true;
    c.state->sink = nullptr;
    return;
  }

  // N >= 2: one rmi.batch span with a zero-duration child marker per
  // packed call (tracing charges no cycles), one frame, ONE transition.
  telemetry::SpanScope span(env_.telemetry.tracer(), telemetry::Category::kRmi,
                            env_.telemetry.names().rmi_batch);
  ArenaLease frame(arena_);
  encode_batch_header(*frame, n);
  for (const auto& c : pending_calls_) {
    telemetry::SpanScope marker(env_.telemetry.tracer(),
                                telemetry::Category::kRmi, c.plan->span_name);
    encode_batch_entry(*frame, c.plan->id, batch_buf_.data() + c.offset,
                       c.size);
  }
  if (config_.gc_auto_pump) pump_gc();
  ArenaLease response(arena_);
  try {
    if (pending_via_ecall_) {
      bridge_.ecall(batch_ecall_id_, *frame, *response);
    } else {
      bridge_.ocall(batch_ocall_id_, *frame, *response);
    }
  } catch (const sched::TaskCancelled&) {
    throw;
  } catch (...) {
    // Whole-batch failure (enclave lost mid-batch, transition fault):
    // every packed call fails with the same error, surfaced per-future at
    // get() and retried by the caller's usual recovery policy.
    const std::exception_ptr err = std::current_exception();
    for (auto& c : pending_calls_) {
      c.state->error = err;
      c.state->done = true;
      c.state->sink = nullptr;
    }
    return;
  }

  const std::vector<BatchResultView> results =
      decode_batch_response(*response, n, batch_limits_);
  for (std::size_t i = 0; i < n; ++i) {
    PendingCall& c = pending_calls_[i];
    const BatchResultView& v = results[i];
    if (v.ok) {
      ByteReader r(v.data, v.size);
      Value result;
      if (!decode_primitive(r, result)) {
        result = decode_value(r, make_ref_decoder(from));
      }
      charge_deserialize(env_, from.ctx.isolate().domain(),
                         element_count(result), v.size);
      c.state->result = result;
    } else {
      c.state->error = std::make_exception_ptr(RuntimeFault(
          std::string(reinterpret_cast<const char*>(v.data), v.size)));
    }
    c.state->done = true;
    c.state->sink = nullptr;
  }
}

// ---------------------------------------------------------------------------
// Relay dispatch (callee side)

void ProxyRuntime::dispatch_relay(SideState& callee, const ClassDecl& cls,
                                  const MethodDecl& relay,
                                  const MethodDecl* target,
                                  const interp::ExecContext::QuickInfo* quick,
                                  ByteReader& in, ByteBuffer& out,
                                  bool charge_attach) {
  // Callee-side span, nested under the bridge transition span: isolate
  // attach, argument decoding, the mirrored invocation, result encoding.
  telemetry::SpanScope span(env_.telemetry.tracer(), telemetry::Category::kRmi,
                            env_.telemetry.names().rmi_dispatch);
  // Entering the callee's isolate: the relay method is a @CEntryPoint and
  // the transition must attach the calling thread to the isolate (§5.2).
  // Switchless calls are served by persistent worker threads that attach
  // once at startup (§7 / HotCalls), so they skip this cost. Batched
  // dispatch charges the attach once for the whole frame (charge_attach
  // false per entry) — the amortization the batch exists for.
  if (charge_attach && !bridge_.current_call_switchless()) {
    env_.clock.advance(callee.ctx.isolate().trusted()
                           ? env_.cost.isolate_attach_trusted_cycles
                           : env_.cost.isolate_attach_untrusted_cycles);
  }
  const model::RelayInfo& info = relay.relay();

  const std::size_t payload_bytes = in.remaining();
  const std::int64_t self_hash =
      config_.fast_paths ? in.get_i64() : compat::get_i64(in);
  std::vector<Value> args =
      config_.fast_paths ? args_take() : std::vector<Value>();
  args.resize(config_.fast_paths ? in.get_varint() : compat::get_varint(in));
  std::uint64_t elements = 0;
  RefDecoder dec;
  for (auto& a : args) {
    if (config_.fast_paths) {
      if (decode_primitive(in, a)) {
        ++elements;
        continue;
      }
      if (!dec) dec = make_ref_decoder(callee);
      a = decode_value(in, dec);
    } else {
      a = decode_value_compat(in, make_ref_decoder(callee));
    }
    elements += element_count(a);
  }
  charge_deserialize(env_, callee.ctx.isolate().domain(), elements,
                     payload_bytes);

  Value result;
  if (info.is_constructor) {
    // Instantiate the mirror and register it under the proxy's hash
    // (Listing 4: relayAccount).
    Value mirror = callee.ctx.construct(info.target_class, std::move(args));
    callee.registry.add(self_hash, mirror.as_ref());
    ++stats_.mirrors_registered;
  } else {
    MSV_CHECK_MSG(target != nullptr, "relay target missing");
    if (config_.fast_paths) {
      // invoke/invoke_static are resolve-then-invoke_method wrappers; with
      // the target pre-resolved the direct call charges identical cycles.
      if (quick != nullptr &&
          quick->kind != interp::ExecContext::QuickKind::kNone &&
          !target->is_static()) {
        // Quickened bodies cannot nest relays, so holding the registry
        // reference across the invocation is safe (see get_ref).
        result = callee.ctx.invoke_quick(
            cls, *target, *quick, callee.registry.get_ref(self_hash), args);
      } else {
        const GcRef self =
            target->is_static() ? GcRef() : callee.registry.get(self_hash);
        result = callee.ctx.invoke_method(cls, *target, self, args);
      }
      args_put(std::move(args));
    } else if (target->is_static()) {
      result = callee.ctx.invoke_static(info.target_class, info.target_method,
                                        std::move(args));
    } else {
      const GcRef mirror = callee.registry.get(self_hash);
      result = callee.ctx.invoke(mirror, info.target_method, std::move(args));
    }
  }

  if (config_.fast_paths) {
    if (!encode_primitive(out, result)) {
      encode_value(out, result, make_ref_encoder(callee));
    }
  } else {
    encode_value_compat(out, result, make_ref_encoder(callee));
  }
  charge_serialize(env_, callee.ctx.isolate().domain(), element_count(result),
                   out.size());
}

void ProxyRuntime::dispatch_batch(SideState& callee, ByteReader& in,
                                  ByteBuffer& out) {
  telemetry::SpanScope span(env_.telemetry.tracer(), telemetry::Category::kRmi,
                            env_.telemetry.names().rmi_batch);
  // One isolate attach for the whole frame; each packed dispatch then
  // runs with charge_attach=false. This is the batched counterpart of the
  // per-call attach in dispatch_relay.
  if (!bridge_.current_call_switchless()) {
    env_.clock.advance(callee.ctx.isolate().trusted()
                           ? env_.cost.isolate_attach_trusted_cycles
                           : env_.cost.isolate_attach_untrusted_cycles);
  }
  const std::vector<BatchEntryView> entries =
      decode_batch_request(in.raw() + in.position(), in.remaining(),
                           batch_limits_);
  in.seek(in.position() + in.remaining());

  encode_batch_header(out, entries.size());
  ArenaLease result(arena_);
  for (const BatchEntryView& e : entries) {
    const auto it = sites_by_id_.find(static_cast<sgx::CallId>(e.call_id));
    if (it == sites_by_id_.end() || it->second->callee != &callee) {
      throw BatchCodecError("batch entry routes to unknown or wrong-side "
                            "call id " +
                            std::to_string(e.call_id));
    }
    const RelaySite* site = it->second;
    result->clear();
    ByteReader er(e.data, e.size);
    bool ok = true;
    std::string err;
    try {
      dispatch_relay(*site->callee, *site->cls, *site->relay, site->target,
                     &site->quick, er, *result, /*charge_attach=*/false);
    } catch (const sched::TaskCancelled&) {
      throw;
    } catch (const Error& f) {
      // Per-entry application fault: report it in-band so the rest of the
      // batch still executes; the caller rethrows it from that future.
      ok = false;
      err = f.what();
    }
    if (ok) {
      encode_batch_result(out, true, result->data(), result->size());
    } else {
      encode_batch_result(
          out, false, reinterpret_cast<const std::uint8_t*>(err.data()),
          err.size());
    }
  }
}

void ProxyRuntime::register_handlers() {
  MSV_CHECK_MSG(!handlers_registered_, "handlers registered twice");
  handlers_registered_ = true;

  auto register_side = [this](SideState& callee, bool callee_is_trusted) {
    // ClassDecls and MethodDecls live in deques: the captured references
    // stay valid for the runtime's lifetime.
    for (const auto& cls : callee.ctx.classes().classes()) {
      for (const auto& m : cls.methods()) {
        if (m.kind() != MethodKind::kRelay) continue;
        const std::string name = xform::transition_name(
            cls.name(), m.relay().target_method, callee_is_trusted);
        if (config_.fast_paths) {
          // Pre-resolve the relay target once; per-call work is pure
          // dispatch.
          const MethodDecl* target =
              m.relay().is_constructor
                  ? nullptr
                  : cls.find_method(m.relay().target_method);
          MSV_CHECK_MSG(m.relay().is_constructor || target != nullptr,
                        "relay target " + cls.name() + "." +
                            m.relay().target_method + " missing");
          // Classify the target for quickening once, here; per-call
          // dispatch then skips the classifier cache lookup entirely.
          interp::ExecContext::QuickInfo quick{};
          if (target != nullptr && target->kind() == MethodKind::kIr) {
            quick = callee.ctx.quick_info(*target);
          }
          // One-pointer capture: see RelaySite.
          RelaySite& site = relay_sites_.emplace_back(
              RelaySite{this, &callee, &cls, &m, target, quick});
          auto handler = [site = &site](ByteReader& in, ByteBuffer& out) {
            site->rt->dispatch_relay(*site->callee, *site->cls, *site->relay,
                                     site->target, &site->quick, in, out);
          };
          const sgx::CallId id =
              callee_is_trusted
                  ? bridge_.register_ecall_raw(name, std::move(handler))
                  : bridge_.register_ocall_raw(name, std::move(handler));
          // The batch dispatcher routes packed entries by interned CallId.
          sites_by_id_[id] = &site;
        } else {
          // Legacy string-dispatch shape: class and methods re-resolved on
          // every call, response in a fresh buffer.
          auto handler = [this, &callee, cls_name = cls.name(),
                          relay_name = m.name()](ByteReader& in) {
            const ClassDecl& cls = callee.ctx.classes().cls(cls_name);
            const MethodDecl* relay = cls.find_method(relay_name);
            MSV_CHECK_MSG(relay != nullptr &&
                              relay->kind() == MethodKind::kRelay,
                          "relay method " + cls_name + "." + relay_name +
                              " missing");
            const MethodDecl* target =
                relay->relay().is_constructor
                    ? nullptr
                    : cls.find_method(relay->relay().target_method);
            ByteBuffer out;
            dispatch_relay(callee, cls, *relay, target, /*quick=*/nullptr, in,
                           out);
            return out;
          };
          if (callee_is_trusted) {
            bridge_.register_ecall(name, std::move(handler));
          } else {
            bridge_.register_ocall(name, std::move(handler));
          }
        }
      }
    }
  };
  register_side(trusted_, /*callee_is_trusted=*/true);
  register_side(untrusted_, /*callee_is_trusted=*/false);

  // Batch endpoints: one ecall/ocall carries a whole frame of packed
  // relay invocations (DESIGN.md §13).
  if (config_.fast_paths) {
    batch_ecall_id_ = bridge_.register_ecall_raw(
        "ecall_rmi_batch", [this](ByteReader& in, ByteBuffer& out) {
          dispatch_batch(trusted_, in, out);
        });
    batch_ocall_id_ = bridge_.register_ocall_raw(
        "ocall_rmi_batch", [this](ByteReader& in, ByteBuffer& out) {
          dispatch_batch(untrusted_, in, out);
        });
  }

  // GC-helper transitions (§5.5); the interned IDs are kept for the
  // eviction/scan dispatch sites.
  gc_evict_ecall_id_ =
      bridge_.register_ecall("ecall_gc_evict_mirrors", [this](ByteReader& in) {
        const std::uint64_t n = in.get_varint();
        for (std::uint64_t i = 0; i < n; ++i)
          trusted_.registry.remove(in.get_i64());
        return ByteBuffer();
      });
  gc_evict_ocall_id_ =
      bridge_.register_ocall("ocall_gc_evict_mirrors", [this](ByteReader& in) {
        const std::uint64_t n = in.get_varint();
        for (std::uint64_t i = 0; i < n; ++i)
          untrusted_.registry.remove(in.get_i64());
        return ByteBuffer();
      });
  // The in-enclave helper's scan-and-evict, entered when the untrusted
  // pump observes cleared entries in the trusted weak list.
  gc_scan_ecall_id_ =
      bridge_.register_ecall("ecall_gc_scan_trusted", [this](ByteReader&) {
        const auto dead = collect_dead_proxies(trusted_);
        evict_remote(trusted_, dead);
        return ByteBuffer();
      });
}

// ---------------------------------------------------------------------------
// GC helpers

std::vector<std::int64_t> ProxyRuntime::collect_dead_proxies(SideState& s) {
  rt::WeakRefTable& weak = s.ctx.isolate().weak_refs();
  env_.clock.advance(weak.size() * env_.cost.weakref_scan_entry_cycles);

  std::vector<std::int64_t> dead;
  weak.remove_if([&](const rt::WeakEntry& e) {
    if (e.was_set && e.target == rt::kNullAddr) {
      dead.push_back(static_cast<std::int64_t>(e.payload));
      return true;
    }
    return false;
  });
  // The table was compacted: weak indices shifted, rebuild the cache.
  s.proxy_by_hash.clear();
  for (std::uint32_t i = 0; i < weak.size(); ++i) {
    const rt::WeakEntry& e = weak.entry(i);
    if (e.target != rt::kNullAddr) {
      s.proxy_by_hash[static_cast<std::int64_t>(e.payload)] = i;
    }
  }
  ++s.gc_stats.scans;
  s.gc_stats.proxies_collected += dead.size();
  return dead;
}

void ProxyRuntime::evict_remote(SideState& local,
                                const std::vector<std::int64_t>& dead) {
  if (dead.empty()) return;
  ByteBuffer payload;
  payload.put_varint(dead.size());
  for (const auto h : dead) payload.put_i64(h);
  ++local.gc_stats.eviction_calls;
  ByteBuffer response;
  if (side_of(local) == Side::kUntrusted) {
    bridge_.ecall(gc_evict_ecall_id_, payload, response);
  } else {
    bridge_.ocall(gc_evict_ocall_id_, payload, response);
  }
}

void ProxyRuntime::pump_gc() {
  // Only at top level: a helper thread cannot run "inside" the call it is
  // relaying, and the eviction transitions need the untrusted side.
  if (pumping_ || bridge_.side() != Side::kUntrusted) return;
  pumping_ = true;
  const Cycles now = env_.clock.now();

  if (untrusted_.next_scan <= now) {
    untrusted_.next_scan = now + scan_period_;
    const auto dead = collect_dead_proxies(untrusted_);
    evict_remote(untrusted_, dead);
  }
  if (trusted_.next_scan <= now) {
    trusted_.next_scan = now + scan_period_;
    // The in-enclave helper scans its own list without leaving the
    // enclave; it only transitions (ocall) when there is something to
    // evict. We peek first and enter the enclave only when needed.
    if (trusted_.ctx.isolate().weak_refs().cleared_count() > 0) {
      ByteBuffer empty, response;
      bridge_.ecall(gc_scan_ecall_id_, empty, response);
    } else {
      // Idle scan: charge the in-enclave scan work.
      env_.clock.advance(trusted_.ctx.isolate().weak_refs().size() *
                         env_.cost.weakref_scan_entry_cycles);
      ++trusted_.gc_stats.scans;
    }
  }
  pumping_ = false;
}

void ProxyRuntime::force_gc_scan() {
  trusted_.next_scan = 0;
  untrusted_.next_scan = 0;
  pump_gc();
}

const MirrorProxyRegistry& ProxyRuntime::registry(Side side) const {
  return state(side).registry;
}

std::size_t ProxyRuntime::live_proxy_count(Side side) const {
  const rt::WeakRefTable& weak =
      const_cast<SideState&>(state(side)).ctx.isolate().weak_refs();
  return weak.size() - weak.cleared_count();
}

const GcHelperStats& ProxyRuntime::gc_stats(Side side) const {
  return state(side).gc_stats;
}

}  // namespace msv::rmi
