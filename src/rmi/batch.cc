#include "rmi/batch.h"

namespace msv::rmi {

void encode_batch_header(ByteBuffer& out, std::uint64_t count) {
  out.put_varint(count);
}

void encode_batch_entry(ByteBuffer& out, std::uint32_t call_id,
                        const std::uint8_t* payload, std::size_t size) {
  out.put_varint(call_id);
  out.put_varint(size);
  if (size > 0) out.put_bytes(payload, size);
}

void encode_batch_result(ByteBuffer& out, bool ok, const std::uint8_t* payload,
                         std::size_t size) {
  out.put_u8(ok ? 0 : 1);
  out.put_varint(size);
  if (size > 0) out.put_bytes(payload, size);
}

namespace {

// get_varint on a frame of attacker-reachable bytes: translate the
// ByteReader's generic truncation fault into the typed codec error.
std::uint64_t bounded_varint(ByteReader& r, const char* what) {
  try {
    return r.get_varint();
  } catch (const RuntimeFault&) {
    throw BatchCodecError(std::string("truncated batch frame reading ") +
                          what);
  }
}

}  // namespace

std::vector<BatchEntryView> decode_batch_request(const std::uint8_t* data,
                                                 std::size_t size,
                                                 const BatchLimits& limits) {
  if (size > limits.max_frame_bytes) {
    throw BatchCodecError("batch request frame of " + std::to_string(size) +
                          " bytes exceeds the " +
                          std::to_string(limits.max_frame_bytes) +
                          "-byte frame bound");
  }
  ByteReader r(data, size);
  const std::uint64_t count = bounded_varint(r, "entry count");
  if (count == 0) {
    throw BatchCodecError("empty batch request frame");
  }
  if (count > limits.max_calls) {
    throw BatchCodecError("batch entry count " + std::to_string(count) +
                          " exceeds the " + std::to_string(limits.max_calls) +
                          "-call bound");
  }
  // The count is now bounded, so reserving is safe.
  std::vector<BatchEntryView> entries;
  entries.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    BatchEntryView e;
    e.call_id = static_cast<std::uint32_t>(bounded_varint(r, "call id"));
    const std::uint64_t nbytes = bounded_varint(r, "entry size");
    if (nbytes > limits.max_entry_bytes) {
      throw BatchCodecError("batch entry " + std::to_string(i) + " of " +
                            std::to_string(nbytes) + " bytes exceeds the " +
                            std::to_string(limits.max_entry_bytes) +
                            "-byte entry bound");
    }
    if (nbytes > r.remaining()) {
      throw BatchCodecError("truncated batch frame: entry " +
                            std::to_string(i) + " claims " +
                            std::to_string(nbytes) + " bytes, " +
                            std::to_string(r.remaining()) + " remain");
    }
    e.data = data + r.position();
    e.size = static_cast<std::size_t>(nbytes);
    r.seek(r.position() + e.size);
    entries.push_back(e);
  }
  if (!r.done()) {
    throw BatchCodecError("trailing bytes after the last batch entry");
  }
  return entries;
}

std::vector<BatchResultView> decode_batch_response(const std::uint8_t* data,
                                                   std::size_t size,
                                                   std::uint64_t expected,
                                                   const BatchLimits& limits) {
  if (size > limits.max_frame_bytes) {
    throw BatchCodecError("batch response frame of " + std::to_string(size) +
                          " bytes exceeds the " +
                          std::to_string(limits.max_frame_bytes) +
                          "-byte frame bound");
  }
  ByteReader r(data, size);
  const std::uint64_t count = bounded_varint(r, "result count");
  if (count != expected) {
    throw BatchCodecError("batch response carries " + std::to_string(count) +
                          " results for " + std::to_string(expected) +
                          " calls");
  }
  std::vector<BatchResultView> results;
  results.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    BatchResultView v;
    std::uint8_t status;
    try {
      status = r.get_u8();
    } catch (const RuntimeFault&) {
      throw BatchCodecError("truncated batch frame reading result status");
    }
    if (status > 1) {
      throw BatchCodecError("corrupt batch result status " +
                            std::to_string(status));
    }
    v.ok = status == 0;
    const std::uint64_t nbytes = bounded_varint(r, "result size");
    if (nbytes > limits.max_entry_bytes) {
      throw BatchCodecError("batch result " + std::to_string(i) + " of " +
                            std::to_string(nbytes) + " bytes exceeds the " +
                            std::to_string(limits.max_entry_bytes) +
                            "-byte entry bound");
    }
    if (nbytes > r.remaining()) {
      throw BatchCodecError("truncated batch frame: result " +
                            std::to_string(i) + " claims " +
                            std::to_string(nbytes) + " bytes, " +
                            std::to_string(r.remaining()) + " remain");
    }
    v.data = data + r.position();
    v.size = static_cast<std::size_t>(nbytes);
    r.seek(r.position() + v.size);
    results.push_back(v);
  }
  if (!r.done()) {
    throw BatchCodecError("trailing bytes after the last batch result");
  }
  return results;
}

rt::Value RmiFuture::get() {
  MSV_CHECK_MSG(state_ != nullptr, "get() on an empty RmiFuture");
  if (!state_->done && state_->sink != nullptr) {
    state_->sink->flush_batches();
  }
  MSV_CHECK_MSG(state_->done,
                "RmiFuture unresolved after flush (runtime destroyed with a "
                "pending batch?)");
  if (state_->error) std::rethrow_exception(state_->error);
  return state_->result;
}

}  // namespace msv::rmi
