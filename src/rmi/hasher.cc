#include "rmi/hasher.h"

#include <cstring>

#include "support/md5.h"

namespace msv::rmi {

std::int64_t ProxyHasher::next(std::uint32_t identity_hash) {
  ++counter_;
  if (scheme_ == HashScheme::kIdentityHash) {
    return static_cast<std::int64_t>(identity_hash);
  }
  Md5 h;
  h.update(domain_);
  h.update(&identity_hash, sizeof(identity_hash));
  h.update(&counter_, sizeof(counter_));
  const Md5::Digest d = h.finish();
  std::int64_t out;
  std::memcpy(&out, d.data(), sizeof(out));
  return out;
}

}  // namespace msv::rmi
