// Wire encoding of relay-method parameters and return values (§5.2).
//
// A relayed call carries: primitives by value, *neutral* values (strings,
// lists, instances of neutral classes) by serialization, and annotated
// objects by proxy hash. References use two tags relative to the encoding
// side:
//   * kRefOwnedByEncoder — the encoder's concrete object; the decoder
//     materializes (or reuses) a local proxy carrying the hash;
//   * kRefOwnedByDecoder — the encoder's proxy of a decoder-owned object;
//     the decoder resolves the hash in its mirror-proxy registry.
//
// The ref classification and materialization live in ProxyRuntime; this
// module owns the byte format and the serialization cost accounting.
#pragma once

#include <cstdint>
#include <functional>

#include "runtime/value.h"
#include "sim/domain.h"
#include "sim/env.h"
#include "support/bytes.h"

namespace msv::rmi {

enum class WireTag : std::uint8_t {
  kNull = 0,
  kBool = 1,
  kI32 = 2,
  kI64 = 3,
  kF64 = 4,
  kString = 5,
  kList = 6,
  kRefOwnedByEncoder = 7,   // payload: i64 hash, class name
  kRefOwnedByDecoder = 8,   // payload: i64 hash
  kNeutralObject = 9,       // payload: class name, field values
};

// Writes the tag and payload for a GcRef (classification done by caller).
using RefEncoder = std::function<void(ByteBuffer&, const rt::GcRef&)>;
// Reads a ref-tagged payload and produces the local Value.
using RefDecoder =
    std::function<rt::Value(ByteReader&, WireTag tag)>;

// Encodes one value; refs are delegated to `ref_encoder`.
void encode_value(ByteBuffer& out, const rt::Value& v,
                  const RefEncoder& ref_encoder);

// Decodes one value; ref tags are delegated to `ref_decoder`.
rt::Value decode_value(ByteReader& in, const RefDecoder& ref_decoder);

// ---- Primitive fast path -------------------------------------------------
//
// Null, bool, i32, i64 and f64 have a fixed-layout wire form (tag byte +
// fixed payload) and can never contain references, so relay signatures made
// of them need neither the tagged-encoder switch nor the std::function
// ref-encoder/decoder indirection. These helpers write/read EXACTLY the
// bytes encode_value/decode_value would: payload sizes — and therefore
// every simulated serialize/copy charge — are identical on both paths.

// True for values the fast path covers (kNull/kBool/kI32/kI64/kF64).
// Defined inline: these three sit directly on the per-argument hot loop.
inline bool is_primitive(const rt::Value& v) {
  switch (v.type()) {
    case rt::ValueType::kNull:
    case rt::ValueType::kBool:
    case rt::ValueType::kI32:
    case rt::ValueType::kI64:
    case rt::ValueType::kF64:
      return true;
    case rt::ValueType::kString:
    case rt::ValueType::kRef:
    case rt::ValueType::kList:
      return false;
  }
  return false;
}

// Encodes `v` if primitive and returns true; writes nothing otherwise.
inline bool encode_primitive(ByteBuffer& out, const rt::Value& v) {
  switch (v.type()) {
    case rt::ValueType::kNull:
      out.put_u8(static_cast<std::uint8_t>(WireTag::kNull));
      return true;
    case rt::ValueType::kBool:
      out.put_u8(static_cast<std::uint8_t>(WireTag::kBool));
      out.put_u8(v.as_bool() ? 1 : 0);
      return true;
    case rt::ValueType::kI32:
      out.put_u8(static_cast<std::uint8_t>(WireTag::kI32));
      out.put_i32(v.as_i32());
      return true;
    case rt::ValueType::kI64:
      out.put_u8(static_cast<std::uint8_t>(WireTag::kI64));
      out.put_i64(v.as_i64());
      return true;
    case rt::ValueType::kF64:
      out.put_u8(static_cast<std::uint8_t>(WireTag::kF64));
      out.put_f64(v.as_f64());
      return true;
    case rt::ValueType::kString:
    case rt::ValueType::kRef:
    case rt::ValueType::kList:
      return false;
  }
  return false;
}

// Decodes the next value if its tag is primitive and returns true; leaves
// the reader position untouched otherwise so the generic decoder can take
// over.
inline bool decode_primitive(ByteReader& in, rt::Value& out) {
  const std::size_t start = in.position();
  switch (static_cast<WireTag>(in.get_u8())) {
    case WireTag::kNull:
      out = rt::Value();
      return true;
    case WireTag::kBool:
      out = rt::Value(in.get_u8() != 0);
      return true;
    case WireTag::kI32:
      out = rt::Value(in.get_i32());
      return true;
    case WireTag::kI64:
      out = rt::Value(in.get_i64());
      return true;
    case WireTag::kF64:
      out = rt::Value(in.get_f64());
      return true;
    default:
      in.seek(start);
      return false;
  }
}

// ---- Seed-shape (pre-overhaul) codec -------------------------------------
//
// The legacy benchmark baseline (ProxyRuntime::Config::fast_paths = false)
// must reproduce the marshalling host-cost shape from before this
// overhaul: out-of-line byte ops that assemble multi-byte values one
// checked byte at a time, exactly as the original ByteBuffer did before
// the fixed-width ops were bulked and inlined. The wire bytes — and
// therefore every simulated charge — are identical to the normal codec;
// only the host-CPU shape differs. Never use these outside the legacy
// path.
namespace compat {
void put_u32(ByteBuffer& out, std::uint32_t v);
void put_u64(ByteBuffer& out, std::uint64_t v);
void put_f64(ByteBuffer& out, double v);
void put_varint(ByteBuffer& out, std::uint64_t v);
void put_string(ByteBuffer& out, std::string_view s);
inline void put_i32(ByteBuffer& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}
inline void put_i64(ByteBuffer& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}
std::uint32_t get_u32(ByteReader& in);
std::uint64_t get_u64(ByteReader& in);
double get_f64(ByteReader& in);
std::uint64_t get_varint(ByteReader& in);
std::string get_string(ByteReader& in);
inline std::int32_t get_i32(ByteReader& in) {
  return static_cast<std::int32_t>(get_u32(in));
}
inline std::int64_t get_i64(ByteReader& in) {
  return static_cast<std::int64_t>(get_u64(in));
}
}  // namespace compat

// encode_value/decode_value through the seed-shape byte ops (recursively,
// for lists). Byte-identical output; legacy-path only.
void encode_value_compat(ByteBuffer& out, const rt::Value& v,
                         const RefEncoder& ref_encoder);
rt::Value decode_value_compat(ByteReader& in, const RefDecoder& ref_decoder);

// Serialization cost accounting (§6.3): CPU work proportional to elements
// and bytes, plus memory traffic through `domain` (so serializing inside
// the enclave pays the MEE factor — Fig. 4b's in/out asymmetry).
void charge_serialize(Env& env, MemoryDomain& domain, std::uint64_t elements,
                      std::uint64_t bytes);
void charge_deserialize(Env& env, MemoryDomain& domain, std::uint64_t elements,
                        std::uint64_t bytes);

// Number of "elements" a value contributes to serialization cost (lists
// count their items recursively). Scalar case inline: it runs once per
// relayed call on the result-charging path.
std::uint64_t element_count_list(const rt::Value& v);
inline std::uint64_t element_count(const rt::Value& v) {
  return v.type() == rt::ValueType::kList ? element_count_list(v) : 1;
}

}  // namespace msv::rmi
