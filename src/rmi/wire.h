// Wire encoding of relay-method parameters and return values (§5.2).
//
// A relayed call carries: primitives by value, *neutral* values (strings,
// lists, instances of neutral classes) by serialization, and annotated
// objects by proxy hash. References use two tags relative to the encoding
// side:
//   * kRefOwnedByEncoder — the encoder's concrete object; the decoder
//     materializes (or reuses) a local proxy carrying the hash;
//   * kRefOwnedByDecoder — the encoder's proxy of a decoder-owned object;
//     the decoder resolves the hash in its mirror-proxy registry.
//
// The ref classification and materialization live in ProxyRuntime; this
// module owns the byte format and the serialization cost accounting.
#pragma once

#include <cstdint>
#include <functional>

#include "runtime/value.h"
#include "sim/domain.h"
#include "sim/env.h"
#include "support/bytes.h"

namespace msv::rmi {

enum class WireTag : std::uint8_t {
  kNull = 0,
  kBool = 1,
  kI32 = 2,
  kI64 = 3,
  kF64 = 4,
  kString = 5,
  kList = 6,
  kRefOwnedByEncoder = 7,   // payload: i64 hash, class name
  kRefOwnedByDecoder = 8,   // payload: i64 hash
  kNeutralObject = 9,       // payload: class name, field values
};

// Writes the tag and payload for a GcRef (classification done by caller).
using RefEncoder = std::function<void(ByteBuffer&, const rt::GcRef&)>;
// Reads a ref-tagged payload and produces the local Value.
using RefDecoder =
    std::function<rt::Value(ByteReader&, WireTag tag)>;

// Encodes one value; refs are delegated to `ref_encoder`.
void encode_value(ByteBuffer& out, const rt::Value& v,
                  const RefEncoder& ref_encoder);

// Decodes one value; ref tags are delegated to `ref_decoder`.
rt::Value decode_value(ByteReader& in, const RefDecoder& ref_decoder);

// Serialization cost accounting (§6.3): CPU work proportional to elements
// and bytes, plus memory traffic through `domain` (so serializing inside
// the enclave pays the MEE factor — Fig. 4b's in/out asymmetry).
void charge_serialize(Env& env, MemoryDomain& domain, std::uint64_t elements,
                      std::uint64_t bytes);
void charge_deserialize(Env& env, MemoryDomain& domain, std::uint64_t elements,
                        std::uint64_t bytes);

// Number of "elements" a value contributes to serialization cost (lists
// count their items recursively).
std::uint64_t element_count(const rt::Value& v);

}  // namespace msv::rmi
