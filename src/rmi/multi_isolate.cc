#include "rmi/multi_isolate.h"

#include "sched/scheduler.h"
#include "support/error.h"
#include "transform/transformer.h"

namespace msv::rmi {

using interp::ExecContext;
using model::ClassDecl;
using model::MethodDecl;
using model::MethodKind;
using rt::GcRef;
using rt::Value;

MultiIsolateRuntime::MultiIsolateRuntime(Env& env,
                                         sgx::TransitionBridge& bridge,
                                         std::vector<ExecContext*> trusted,
                                         ExecContext& untrusted, Config config)
    : env_(env), bridge_(bridge), config_(config) {
  MSV_CHECK_MSG(!trusted.empty(), "need at least one trusted isolate");
  for (std::size_t k = 0; k < trusted.size(); ++k) {
    MSV_CHECK_MSG(trusted[k]->isolate().trusted(),
                  "trusted context outside the enclave");
    trusted_.push_back(std::make_unique<SideState>(
        *trusted[k], config.hash_scheme,
        "trusted-isolate-" + std::to_string(k)));
  }
  MSV_CHECK_MSG(!untrusted.isolate().trusted(),
                "untrusted context inside the enclave");
  untrusted_ = std::make_unique<SideState>(untrusted, config.hash_scheme,
                                           "untrusted-isolate");
}

MultiIsolateRuntime::SideState& MultiIsolateRuntime::state_of(
    ExecContext& ctx) {
  if (&ctx == &untrusted_->ctx) return *untrusted_;
  for (auto& s : trusted_) {
    if (&ctx == &s->ctx) return *s;
  }
  throw RuntimeFault("context unknown to this multi-isolate runtime");
}

MultiIsolateRuntime::SideState& MultiIsolateRuntime::state_by_id(
    std::uint32_t id) {
  if (id == kUntrustedId) return *untrusted_;
  MSV_CHECK_MSG(id < trusted_.size(), "bad isolate id on the wire");
  return *trusted_[id];
}

std::uint32_t MultiIsolateRuntime::id_of(const SideState& s) const {
  if (&s == untrusted_.get()) return kUntrustedId;
  for (std::size_t k = 0; k < trusted_.size(); ++k) {
    if (&s == trusted_[k].get()) return static_cast<std::uint32_t>(k);
  }
  throw RuntimeFault("unknown side state");
}

RefEncoder MultiIsolateRuntime::make_ref_encoder(SideState& s,
                                                 std::uint32_t peer_id) {
  return [this, &s, peer_id](ByteBuffer& out, const GcRef& ref) {
    const ClassDecl& cls = s.ctx.class_of(ref);
    if (cls.is_proxy()) {
      const std::int64_t hash = s.ctx.isolate().get_field(ref, 0).as_i64();
      if (&s == untrusted_.get()) check_proxy_epoch(hash);
      const std::uint32_t owner =
          (&s == untrusted_.get()) ? hash_owner_.at(hash) : kUntrustedId;
      if (owner != peer_id) {
        throw SecurityFault(
            "proxy of isolate " + std::to_string(owner) +
            " passed into a call on a different isolate — trusted-to-"
            "trusted proxy pairs are not supported");
      }
      out.put_u8(static_cast<std::uint8_t>(WireTag::kRefOwnedByDecoder));
      out.put_i64(hash);
      return;
    }
    if (cls.annotation() != model::Annotation::kNeutral) {
      std::int64_t hash;
      if (const auto existing = s.registry.hash_for(ref)) {
        hash = *existing;
      } else {
        hash =
            s.hasher.next(s.ctx.isolate().heap().identity_hash(ref.address()));
        s.registry.add(hash, ref);
      }
      out.put_u8(static_cast<std::uint8_t>(WireTag::kRefOwnedByEncoder));
      out.put_i64(hash);
      out.put_string(cls.name());
      return;
    }
    // Neutral instance: copy the fields (the multi-isolate runtime keeps
    // the single-level form; nested neutral graphs go through lists).
    out.put_u8(static_cast<std::uint8_t>(WireTag::kNeutralObject));
    out.put_string(cls.name());
    const auto nfields = static_cast<std::uint32_t>(cls.fields().size());
    out.put_varint(nfields);
    const RefEncoder self = make_ref_encoder(s, peer_id);
    for (std::uint32_t i = 0; i < nfields; ++i) {
      encode_value(out, s.ctx.isolate().get_field(ref, i), self);
    }
  };
}

RefDecoder MultiIsolateRuntime::make_ref_decoder(SideState& s,
                                                 std::uint32_t peer_id) {
  return [this, &s, peer_id](ByteReader& in, WireTag tag) -> Value {
    switch (tag) {
      case WireTag::kRefOwnedByDecoder:
        return Value(s.registry.get(in.get_i64()));
      case WireTag::kRefOwnedByEncoder: {
        const std::int64_t hash = in.get_i64();
        const std::string cls = in.get_string();
        return Value(materialize_proxy(s, hash, cls, peer_id));
      }
      case WireTag::kNeutralObject: {
        const std::string name = in.get_string();
        const ClassDecl& cls = s.ctx.classes().cls(name);
        const auto nfields = static_cast<std::uint32_t>(in.get_varint());
        MSV_CHECK_MSG(nfields == cls.fields().size(),
                      "field count mismatch deserializing " + name);
        const GcRef obj =
            s.ctx.isolate().new_instance(s.ctx.class_id(name), nfields);
        const RefDecoder self = make_ref_decoder(s, peer_id);
        for (std::uint32_t i = 0; i < nfields; ++i) {
          s.ctx.isolate().set_field(obj, i, decode_value(in, self));
        }
        return Value(obj);
      }
      default:
        throw RuntimeFault("corrupt wire ref tag");
    }
  };
}

GcRef MultiIsolateRuntime::materialize_proxy(SideState& s, std::int64_t hash,
                                             const std::string& class_name,
                                             std::uint32_t owner_id) {
  const auto it = s.proxy_by_hash.find(hash);
  if (it != s.proxy_by_hash.end()) {
    const rt::WeakEntry& e = s.ctx.isolate().weak_refs().entry(it->second);
    if (e.target != rt::kNullAddr &&
        e.payload == static_cast<std::uint64_t>(hash)) {
      return s.ctx.isolate().make_ref(e.target);
    }
  }
  const ClassDecl& cls = s.ctx.classes().cls(class_name);
  MSV_CHECK_MSG(cls.is_proxy(), "materializing a non-proxy class");
  const GcRef proxy =
      s.ctx.isolate().new_instance(s.ctx.class_id(class_name), 1);
  s.ctx.isolate().set_field(proxy, 0, Value(hash));
  const std::uint32_t weak_index = s.ctx.isolate().weak_refs().add(
      proxy.address(), static_cast<std::uint64_t>(hash));
  s.proxy_by_hash[hash] = weak_index;
  if (&s == untrusted_.get()) {
    hash_owner_[hash] = owner_id;
    hash_epoch_[hash] = bridge_.enclave().epoch();
  }
  return proxy;
}

void MultiIsolateRuntime::check_proxy_epoch(std::int64_t hash) {
  const auto it = hash_epoch_.find(hash);
  if (it == hash_epoch_.end()) return;
  if (it->second == kFencedEpoch) {
    throw StaleProxyError(
        "proxy fenced: its enclave is no longer the shard authority "
        "(replica promoted; rebuild the session against the new enclave)");
  }
  const std::uint64_t current = bridge_.enclave().epoch();
  if (it->second != current) {
    throw StaleProxyError(
        "proxy minted under enclave epoch " + std::to_string(it->second) +
        " invoked after restart (current epoch " + std::to_string(current) +
        "); its mirror died with the old enclave heap");
  }
}

void MultiIsolateRuntime::fence_proxies() {
  // Epoch 0 is unused (Enclave epochs start at 1), so it doubles as the
  // "fenced" sentinel: every existing mint becomes permanently stale, and
  // future mints — stamped with the live epoch — are unaffected. O(minted
  // proxies) here, zero extra cost on the invoke hot path.
  for (auto& [hash, epoch] : hash_epoch_) epoch = kFencedEpoch;
}

void MultiIsolateRuntime::on_enclave_restart() {
  for (auto& s : trusted_) {
    s->registry.clear();
    s->proxy_by_hash.clear();
    s->ctx.isolate().weak_refs().remove_if(
        [](const rt::WeakEntry&) { return true; });
  }
  // Untrusted mirrors were pinned only for the benefit of in-enclave
  // proxies, all of which died with the heap.
  untrusted_->registry.clear();
}

rt::Value MultiIsolateRuntime::construct_in(std::uint32_t isolate_index,
                                            const std::string& cls,
                                            std::vector<Value> args) {
  MSV_CHECK_MSG(isolate_index < trusted_.size(), "no such trusted isolate");
  const ClassDecl& proxy_cls = untrusted_->ctx.classes().cls(cls);
  MSV_CHECK_MSG(proxy_cls.is_proxy(),
                cls + " is not a proxy class in the untrusted image");
  return do_construct(*untrusted_, isolate_index, proxy_cls, args);
}

rt::Value MultiIsolateRuntime::construct_proxy(ExecContext& caller,
                                               const ClassDecl& proxy_cls,
                                               std::vector<Value>& args) {
  SideState& from = state_of(caller);
  // Plain `new` on the untrusted side targets isolate 0; trusted isolates
  // target the single untrusted runtime.
  const std::uint32_t target =
      (&from == untrusted_.get()) ? 0 : kUntrustedId;
  return do_construct(from, target, proxy_cls, args);
}

rt::Value MultiIsolateRuntime::do_construct(SideState& from,
                                            std::uint32_t target_id,
                                            const ClassDecl& proxy_cls,
                                            std::vector<Value>& args) {
  telemetry::SpanScope span(env_.telemetry.tracer(),
                            telemetry::Category::kRmi,
                            env_.telemetry.names().rmi_construct);
  const MethodDecl* ctor_stub = proxy_cls.find_method(model::kConstructorName);
  MSV_CHECK_MSG(ctor_stub != nullptr &&
                    ctor_stub->kind() == MethodKind::kProxyStub,
                "proxy class without a constructor stub");

  const GcRef proxy = from.ctx.isolate().new_instance(
      from.ctx.class_id(proxy_cls.name()), /*field_count=*/1);
  const std::int64_t hash = from.hasher.next(
      from.ctx.isolate().heap().identity_hash(proxy.address()));
  from.ctx.isolate().set_field(proxy, 0, Value(hash));
  const std::uint32_t weak_index = from.ctx.isolate().weak_refs().add(
      proxy.address(), static_cast<std::uint64_t>(hash));
  from.proxy_by_hash[hash] = weak_index;
  if (&from == untrusted_.get()) {
    hash_owner_[hash] = target_id;
    hash_epoch_[hash] = bridge_.enclave().epoch();
  }

  ByteBuffer payload;
  payload.put_u32(target_id);
  payload.put_u32(id_of(from));
  payload.put_i64(hash);
  payload.put_varint(args.size());
  std::uint64_t elements = 0;
  const RefEncoder encoder = make_ref_encoder(from, target_id);
  for (auto& a : args) {
    elements += element_count(a);
    encode_value(payload, a, encoder);
  }
  charge_serialize(env_, from.ctx.isolate().domain(), elements,
                   payload.size());

  const sgx::CallId relay = relay_id(*ctor_stub);
  ByteBuffer response;
  if (target_id == kUntrustedId) {
    bridge_.ocall(relay, payload, response);
  } else {
    bridge_.ecall(relay, payload, response);
  }
  return Value(proxy);
}

rt::Value MultiIsolateRuntime::invoke_proxy(ExecContext& caller,
                                            const GcRef& proxy,
                                            const ClassDecl& proxy_cls,
                                            const MethodDecl& stub,
                                            std::vector<Value>& args) {
  telemetry::SpanScope span(env_.telemetry.tracer(),
                            telemetry::Category::kRmi,
                            env_.telemetry.names().rmi_invoke);
  SideState& from = state_of(caller);
  std::int64_t self_hash = 0;
  std::uint32_t target_id = kUntrustedId;
  if (!stub.is_static()) {
    MSV_CHECK_MSG(!proxy.is_null(), "instance RMI without a proxy");
    self_hash = caller.isolate().get_field(proxy, 0).as_i64();
  }
  if (&from == untrusted_.get()) {
    if (!stub.is_static()) check_proxy_epoch(self_hash);
    target_id = stub.is_static() ? 0 : hash_owner_.at(self_hash);
  }
  (void)proxy_cls;

  ByteBuffer payload;
  payload.put_u32(target_id);
  payload.put_u32(id_of(from));
  payload.put_i64(self_hash);
  payload.put_varint(args.size());
  std::uint64_t elements = 0;
  const RefEncoder encoder = make_ref_encoder(from, target_id);
  for (auto& a : args) {
    elements += element_count(a);
    encode_value(payload, a, encoder);
  }
  charge_serialize(env_, from.ctx.isolate().domain(), elements,
                   payload.size());

  const sgx::CallId relay = relay_id(stub);
  ByteBuffer response;
  if (target_id == kUntrustedId) {
    bridge_.ocall(relay, payload, response);
  } else {
    bridge_.ecall(relay, payload, response);
  }
  ByteReader r(response);
  Value result = decode_value(r, make_ref_decoder(from, target_id));
  charge_deserialize(env_, caller.isolate().domain(), element_count(result),
                     response.size());
  return result;
}

ByteBuffer MultiIsolateRuntime::dispatch_one(SideState& callee,
                                             std::uint32_t caller_id,
                                             const std::string& cls_name,
                                             const std::string& relay_name,
                                             ByteReader& in,
                                             bool charge_attach) {
  telemetry::SpanScope span(env_.telemetry.tracer(),
                            telemetry::Category::kRmi,
                            env_.telemetry.names().rmi_dispatch);
  if (charge_attach) {
    env_.clock.advance(callee.ctx.isolate().trusted()
                           ? env_.cost.isolate_attach_trusted_cycles
                           : env_.cost.isolate_attach_untrusted_cycles);
  }

  const ClassDecl& cls = callee.ctx.classes().cls(cls_name);
  const MethodDecl* relay = cls.find_method(relay_name);
  MSV_CHECK_MSG(relay != nullptr && relay->kind() == MethodKind::kRelay,
                "relay method missing: " + relay_name);
  const model::RelayInfo& info = relay->relay();

  const std::size_t payload_bytes = in.remaining();
  const std::int64_t self_hash = in.get_i64();
  std::vector<Value> args(in.get_varint());
  std::uint64_t elements = 0;
  const RefDecoder decoder = make_ref_decoder(callee, caller_id);
  for (auto& a : args) {
    a = decode_value(in, decoder);
    elements += element_count(a);
  }
  charge_deserialize(env_, callee.ctx.isolate().domain(), elements,
                     payload_bytes);

  Value result;
  if (info.is_constructor) {
    Value mirror = callee.ctx.construct(info.target_class, std::move(args));
    callee.registry.add(self_hash, mirror.as_ref());
  } else {
    const MethodDecl* target = cls.find_method(info.target_method);
    MSV_CHECK_MSG(target != nullptr, "relay target missing");
    if (target->is_static()) {
      result = callee.ctx.invoke_static(info.target_class, info.target_method,
                                        std::move(args));
    } else {
      const GcRef mirror = callee.registry.get(self_hash);
      result = callee.ctx.invoke(mirror, info.target_method, std::move(args));
    }
  }

  ByteBuffer out;
  encode_value(out, result, make_ref_encoder(callee, caller_id));
  charge_serialize(env_, callee.ctx.isolate().domain(), element_count(result),
                   out.size());
  return out;
}

std::vector<MultiIsolateRuntime::BatchOutcome> MultiIsolateRuntime::
    invoke_batch(const std::vector<BatchCall>& calls) {
  MSV_CHECK_MSG(!calls.empty(), "empty RMI batch");
  MSV_CHECK_MSG(handlers_registered_, "invoke_batch before register_handlers");
  SideState& from = *untrusted_;

  // Resolve the owning isolate and epoch-fence every proxy before any
  // transition: one stale proxy fails the batch as a unit, so the serving
  // layer's recovery ladder re-runs it against the recovered enclave
  // without ever half-executing it.
  std::uint32_t target_id = 0;
  std::vector<std::int64_t> hashes(calls.size());
  for (std::size_t i = 0; i < calls.size(); ++i) {
    const BatchCall& c = calls[i];
    MSV_CHECK_MSG(c.stub != nullptr && !c.stub->is_static(),
                  "batched calls must be instance proxy-stub invocations");
    MSV_CHECK_MSG(!c.proxy.is_null(), "batched RMI without a proxy");
    const std::int64_t hash =
        from.ctx.isolate().get_field(c.proxy, 0).as_i64();
    check_proxy_epoch(hash);
    const std::uint32_t owner = hash_owner_.at(hash);
    if (i == 0) {
      target_id = owner;
    } else {
      MSV_CHECK_MSG(owner == target_id,
                    "one batch cannot span trusted isolates");
    }
    hashes[i] = hash;
  }
  MSV_CHECK_MSG(target_id != kUntrustedId,
                "batched calls must target a trusted isolate");

  telemetry::SpanScope span(env_.telemetry.tracer(), telemetry::Category::kRmi,
                            env_.telemetry.names().rmi_batch);
  ByteBuffer frame;
  frame.put_u32(target_id);
  frame.put_u32(kUntrustedId);
  encode_batch_header(frame, calls.size());
  const RefEncoder encoder = make_ref_encoder(from, target_id);
  ByteBuffer entry;
  for (std::size_t i = 0; i < calls.size(); ++i) {
    entry.clear();
    entry.put_i64(hashes[i]);
    entry.put_varint(calls[i].args.size());
    std::uint64_t elements = 0;
    for (const auto& a : calls[i].args) {
      elements += element_count(a);
      encode_value(entry, a, encoder);
    }
    charge_serialize(env_, from.ctx.isolate().domain(), elements,
                     entry.size());
    encode_batch_entry(frame, relay_id(*calls[i].stub), entry.data(),
                       entry.size());
  }

  ByteBuffer response;
  bridge_.ecall(batch_ecall_id_, frame, response);

  const std::vector<BatchResultView> results =
      decode_batch_response(response, calls.size(), BatchLimits{});
  std::vector<BatchOutcome> out(calls.size());
  const RefDecoder decoder = make_ref_decoder(from, target_id);
  for (std::size_t i = 0; i < calls.size(); ++i) {
    const BatchResultView& v = results[i];
    if (v.ok) {
      ByteReader r(v.data, v.size);
      out[i].ok = true;
      out[i].value = decode_value(r, decoder);
      charge_deserialize(env_, from.ctx.isolate().domain(),
                         element_count(out[i].value), v.size);
    } else {
      out[i].error.assign(reinterpret_cast<const char*>(v.data), v.size);
    }
  }
  return out;
}

void MultiIsolateRuntime::register_handlers() {
  MSV_CHECK_MSG(!handlers_registered_, "handlers registered twice");
  handlers_registered_ = true;

  auto make_handler = [this](const std::string& cls_name,
                             const std::string& relay_name) {
    return [this, cls_name, relay_name](ByteReader& in) -> ByteBuffer {
      const std::uint32_t target_id = in.get_u32();
      const std::uint32_t caller_id = in.get_u32();
      SideState& callee = state_by_id(target_id);
      return dispatch_one(callee, caller_id, cls_name, relay_name, in,
                          /*charge_attach=*/true);
    };
  };

  // The trusted image is shared by all trusted isolates: one handler per
  // relay, routed by the isolate id on the wire. The batch dispatcher
  // routes packed entries by the same interned CallIds.
  for (const auto& cls : trusted_[0]->ctx.classes().classes()) {
    for (const auto& m : cls.methods()) {
      if (m.kind() != MethodKind::kRelay) continue;
      const sgx::CallId id = bridge_.register_ecall(
          xform::transition_name(cls.name(), m.relay().target_method, true),
          make_handler(cls.name(), m.name()));
      batch_targets_[id] = {cls.name(), m.name()};
    }
  }
  for (const auto& cls : untrusted_->ctx.classes().classes()) {
    for (const auto& m : cls.methods()) {
      if (m.kind() != MethodKind::kRelay) continue;
      bridge_.register_ocall(
          xform::transition_name(cls.name(), m.relay().target_method, false),
          make_handler(cls.name(), m.name()));
    }
  }

  // Batch endpoint: one ecall carries a whole frame of packed relay
  // invocations for one trusted isolate (DESIGN.md §13). The isolate
  // attach is charged once for the frame, not per entry.
  batch_ecall_id_ = bridge_.register_ecall(
      "ecall_multi_rmi_batch", [this](ByteReader& in) -> ByteBuffer {
        telemetry::SpanScope span(env_.telemetry.tracer(),
                                  telemetry::Category::kRmi,
                                  env_.telemetry.names().rmi_batch);
        const std::uint32_t target_id = in.get_u32();
        const std::uint32_t caller_id = in.get_u32();
        SideState& callee = state_by_id(target_id);
        env_.clock.advance(callee.ctx.isolate().trusted()
                               ? env_.cost.isolate_attach_trusted_cycles
                               : env_.cost.isolate_attach_untrusted_cycles);
        const std::vector<BatchEntryView> entries = decode_batch_request(
            in.raw() + in.position(), in.remaining(), BatchLimits{});
        in.seek(in.position() + in.remaining());
        ByteBuffer out;
        encode_batch_header(out, entries.size());
        for (const BatchEntryView& e : entries) {
          const auto it =
              batch_targets_.find(static_cast<sgx::CallId>(e.call_id));
          if (it == batch_targets_.end()) {
            throw BatchCodecError("batch entry routes to unknown relay id " +
                                  std::to_string(e.call_id));
          }
          ByteReader er(e.data, e.size);
          try {
            const ByteBuffer r =
                dispatch_one(callee, caller_id, it->second.first,
                             it->second.second, er, /*charge_attach=*/false);
            encode_batch_result(out, true, r.data(), r.size());
          } catch (const sched::TaskCancelled&) {
            throw;
          } catch (const Error& f) {
            // In-band per-entry fault: the rest of the batch still runs.
            const std::string msg = f.what();
            encode_batch_result(
                out, false,
                reinterpret_cast<const std::uint8_t*>(msg.data()),
                msg.size());
          }
        }
        return out;
      });

  gc_evict_ecall_id_ =
      bridge_.register_ecall("ecall_multi_gc_evict", [this](ByteReader& in) {
        SideState& s = state_by_id(in.get_u32());
        const std::uint64_t n = in.get_varint();
        for (std::uint64_t i = 0; i < n; ++i) s.registry.remove(in.get_i64());
        return ByteBuffer();
      });
  gc_scan_ecall_id_ =
      bridge_.register_ecall("ecall_multi_gc_scan", [this](ByteReader& in) {
    // The in-enclave helper of one isolate scans and evicts outward.
    SideState& s = state_by_id(in.get_u32());
    std::vector<std::int64_t> dead;
    s.ctx.isolate().weak_refs().remove_if([&](const rt::WeakEntry& e) {
      if (e.was_set && e.target == rt::kNullAddr) {
        dead.push_back(static_cast<std::int64_t>(e.payload));
        return true;
      }
      return false;
    });
    s.proxy_by_hash.clear();
    for (std::uint32_t i = 0; i < s.ctx.isolate().weak_refs().size(); ++i) {
      const rt::WeakEntry& e = s.ctx.isolate().weak_refs().entry(i);
      if (e.target != rt::kNullAddr) {
        s.proxy_by_hash[static_cast<std::int64_t>(e.payload)] = i;
      }
    }
    if (!dead.empty()) {
      ByteBuffer payload;
      payload.put_varint(dead.size());
      for (const auto h : dead) payload.put_i64(h);
      ByteBuffer response;
      bridge_.ocall(gc_evict_ocall_id_, payload, response);
    }
    return ByteBuffer();
  });
  gc_evict_ocall_id_ =
      bridge_.register_ocall("ocall_multi_gc_evict", [this](ByteReader& in) {
        const std::uint64_t n = in.get_varint();
        for (std::uint64_t i = 0; i < n; ++i) {
          untrusted_->registry.remove(in.get_i64());
        }
        return ByteBuffer();
      });
}

sgx::CallId MultiIsolateRuntime::relay_id(const model::MethodDecl& stub) {
  const auto it = relay_ids_.find(&stub);
  if (it != relay_ids_.end()) return it->second;
  const sgx::CallId id = bridge_.find_call(stub.proxy().relay_name);
  MSV_CHECK_MSG(id != sgx::kNoCallId,
                "relay not registered: " + stub.proxy().relay_name);
  relay_ids_.emplace(&stub, id);
  return id;
}

void MultiIsolateRuntime::force_gc_scan() {
  MSV_CHECK_MSG(bridge_.side() == Side::kUntrusted,
                "GC helpers pump from the top level");
  // Untrusted helper: collect dead proxies and evict per owning isolate.
  rt::WeakRefTable& weak = untrusted_->ctx.isolate().weak_refs();
  env_.clock.advance(weak.size() * env_.cost.weakref_scan_entry_cycles);
  std::unordered_map<std::uint32_t, std::vector<std::int64_t>> dead_by_owner;
  weak.remove_if([&](const rt::WeakEntry& e) {
    if (e.was_set && e.target == rt::kNullAddr) {
      const auto hash = static_cast<std::int64_t>(e.payload);
      dead_by_owner[hash_owner_.at(hash)].push_back(hash);
      hash_owner_.erase(hash);
      hash_epoch_.erase(hash);
      return true;
    }
    return false;
  });
  untrusted_->proxy_by_hash.clear();
  for (std::uint32_t i = 0; i < weak.size(); ++i) {
    const rt::WeakEntry& e = weak.entry(i);
    if (e.target != rt::kNullAddr) {
      untrusted_->proxy_by_hash[static_cast<std::int64_t>(e.payload)] = i;
    }
  }
  for (const auto& [owner, hashes] : dead_by_owner) {
    ByteBuffer payload;
    payload.put_u32(owner);
    payload.put_varint(hashes.size());
    for (const auto h : hashes) payload.put_i64(h);
    ByteBuffer response;
    bridge_.ecall(gc_evict_ecall_id_, payload, response);
  }

  // Each in-enclave helper scans its own isolate.
  for (std::uint32_t k = 0; k < trusted_.size(); ++k) {
    if (trusted_[k]->ctx.isolate().weak_refs().cleared_count() > 0) {
      ByteBuffer payload;
      payload.put_u32(k);
      ByteBuffer response;
      bridge_.ecall(gc_scan_ecall_id_, payload, response);
    }
  }
}

const MirrorProxyRegistry& MultiIsolateRuntime::trusted_registry(
    std::uint32_t index) const {
  MSV_CHECK_MSG(index < trusted_.size(), "no such trusted isolate");
  return trusted_[index]->registry;
}

}  // namespace msv::rmi
