// Batched & asynchronous RMI (DESIGN.md §13).
//
// Every proxy invocation pays a full enclave transition (~13,100 cycles)
// plus an isolate attach on the callee side (~480,000 cycles for the
// trusted image) — the dominant cost on chatty partitioned workloads.
// This header holds the pieces shared by the two batching runtimes
// (ProxyRuntime and MultiIsolateRuntime):
//
//   * the batch wire frame: N per-call payloads packed into one request
//     buffer, dispatched by a single bridge transition, with the packed
//     results returned the same way;
//   * bounded decoding of that frame (BatchLimits / BatchCodecError):
//     the callee parses attacker-reachable bytes, so counts and sizes are
//     validated before any allocation — the same discipline as the
//     sealed-storage SealedBlob deserializer;
//   * RmiFuture, the caller-side handle for one batched call. Callers
//     enqueue invocations and keep running; the pending batch flushes on
//     size bounds, explicit flush, a synchronous call on the same
//     runtime, a scheduler suspension point, or the first get().
//
// Wire layout (request):   varint count, then per entry:
//                          varint call_id, varint nbytes, payload bytes
// Wire layout (response):  varint count, then per result:
//                          u8 status (0 = ok, 1 = error), varint nbytes,
//                          payload bytes (encoded result value, or the
//                          error message for status 1)
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "runtime/value.h"
#include "support/bytes.h"
#include "support/error.h"

namespace msv::rmi {

// A malformed batch frame: truncated, over the entry/frame bounds, or an
// impossible count. Typed so tests (and a defensive dispatcher) can tell
// codec violations from application faults.
class BatchCodecError : public RuntimeFault {
 public:
  explicit BatchCodecError(const std::string& what) : RuntimeFault(what) {}
};

// Bounds enforced while decoding a batch frame. The defaults mirror the
// BufferArena pooling bound (1 MiB per wire buffer): no legitimate batch
// entry outgrows a single unbatched call's payload.
struct BatchLimits {
  std::uint32_t max_calls = 1024;
  std::size_t max_entry_bytes = 1 << 20;   // 1 MiB per packed call
  std::size_t max_frame_bytes = 4 << 20;   // 4 MiB per frame
};

// One decoded request entry: a view into the frame buffer (valid only
// while the frame's backing bytes live).
struct BatchEntryView {
  std::uint32_t call_id = 0;
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;
};

// One decoded response slot.
struct BatchResultView {
  bool ok = true;
  const std::uint8_t* data = nullptr;  // result payload, or error message
  std::size_t size = 0;
};

// ---- Frame encoding -------------------------------------------------------

void encode_batch_header(ByteBuffer& out, std::uint64_t count);
void encode_batch_entry(ByteBuffer& out, std::uint32_t call_id,
                        const std::uint8_t* payload, std::size_t size);
void encode_batch_result(ByteBuffer& out, bool ok, const std::uint8_t* payload,
                         std::size_t size);

// ---- Bounded frame decoding ----------------------------------------------

// Parses a request frame. Throws BatchCodecError on truncation, a count
// over limits.max_calls, an entry over limits.max_entry_bytes, a frame
// over limits.max_frame_bytes, or trailing garbage.
std::vector<BatchEntryView> decode_batch_request(const std::uint8_t* data,
                                                 std::size_t size,
                                                 const BatchLimits& limits);
inline std::vector<BatchEntryView> decode_batch_request(
    const ByteBuffer& buf, const BatchLimits& limits) {
  return decode_batch_request(buf.data(), buf.size(), limits);
}

// Parses a response frame under the same bounds; `expected` must match the
// request's entry count (a short response would silently drop calls).
std::vector<BatchResultView> decode_batch_response(const std::uint8_t* data,
                                                   std::size_t size,
                                                   std::uint64_t expected,
                                                   const BatchLimits& limits);
inline std::vector<BatchResultView> decode_batch_response(
    const ByteBuffer& buf, std::uint64_t expected, const BatchLimits& limits) {
  return decode_batch_response(buf.data(), buf.size(), expected, limits);
}

// ---- Futures --------------------------------------------------------------

// Flush hook the future uses to force its batch out on first get(); the
// batching runtimes implement it. An interface (not a std::function) so
// the shared state stays one allocation.
class BatchFlushSink {
 public:
  virtual ~BatchFlushSink() = default;
  virtual void flush_batches() = 0;
};

struct RmiFutureState {
  bool done = false;
  rt::Value result;
  std::exception_ptr error;
  BatchFlushSink* sink = nullptr;  // cleared when the batch resolves
};

// Handle for one batched invocation. get() forces the owning runtime to
// flush the pending batch if this call has not been dispatched yet, then
// returns the decoded result (or rethrows the call's error — including a
// whole-batch failure such as StaleProxyError after an enclave loss).
class RmiFuture {
 public:
  RmiFuture() = default;
  explicit RmiFuture(std::shared_ptr<RmiFutureState> state)
      : state_(std::move(state)) {}

  bool valid() const { return state_ != nullptr; }
  bool ready() const { return state_ != nullptr && state_->done; }
  rt::Value get();

 private:
  std::shared_ptr<RmiFutureState> state_;
};

}  // namespace msv::rmi
