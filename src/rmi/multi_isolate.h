// Multi-isolate proxy/mirror pairs — the paper's second future-work item
// (§7): "extend our proxy-mirror system to permit creation and interaction
// of proxy-mirror object pairs across multiple isolates".
//
// This extension hosts N trusted isolates inside one enclave (GraalVM
// isolates: separate heaps, independently collected — §2.2), all running
// the same trusted image, paired with a single untrusted runtime. Every
// relayed call carries the target isolate id — exactly the `Isolate ctx`
// parameter the paper's relay methods already take (Listing 4) — and the
// untrusted runtime routes each proxy to the isolate that owns its mirror.
//
// Use case: multi-tenant enclave services. Each tenant's objects live in
// their own isolate; a GC pause in one tenant's heap never stops another
// (exercised by the MultiIsolate tests).
//
// Scope: untrusted <-> trusted-isolate-k pairs in both directions. Passing
// a proxy of isolate A's object into a call on isolate B (a trusted-to-
// trusted edge) is detected and rejected — full cross-isolate pairs would
// need trusted-to-trusted transitions the paper also leaves as future
// work.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "interp/exec_context.h"
#include "interp/remote.h"
#include "rmi/batch.h"
#include "rmi/hasher.h"
#include "rmi/registry.h"
#include "rmi/wire.h"
#include "sgx/bridge.h"

namespace msv::rmi {

// Thrown when a proxy minted against a previous enclave incarnation is
// invoked after a restart: its mirror died with the old enclave heap, so
// the call can never be routed. Typed so the serving layer can rebuild the
// session instead of treating it as a bug.
class StaleProxyError : public RuntimeFault {
 public:
  explicit StaleProxyError(const std::string& what) : RuntimeFault(what) {}
};

class MultiIsolateRuntime final : public interp::RemoteInvoker {
 public:
  struct Config {
    HashScheme hash_scheme = HashScheme::kMd5;
  };

  // `trusted` contexts all execute the same trusted image in their own
  // isolates; `untrusted` is the single host-side runtime.
  MultiIsolateRuntime(Env& env, sgx::TransitionBridge& bridge,
                      std::vector<interp::ExecContext*> trusted,
                      interp::ExecContext& untrusted, Config config);

  void register_handlers();

  std::uint32_t isolate_count() const {
    return static_cast<std::uint32_t>(trusted_.size());
  }

  // Constructs a proxy in the untrusted runtime whose mirror lives in
  // trusted isolate `isolate_index`.
  rt::Value construct_in(std::uint32_t isolate_index, const std::string& cls,
                         std::vector<rt::Value> args);

  // ---- RemoteInvoker (plain `new Proxy(...)` defaults to isolate 0) ----
  rt::Value construct_proxy(interp::ExecContext& caller,
                            const model::ClassDecl& proxy_cls,
                            std::vector<rt::Value>& args) override;
  rt::Value invoke_proxy(interp::ExecContext& caller, const rt::GcRef& proxy,
                         const model::ClassDecl& proxy_cls,
                         const model::MethodDecl& stub,
                         std::vector<rt::Value>& args) override;

  // ---- Batched RMI (DESIGN.md §13) ----
  // One packed invocation inside a batch: an instance call on an
  // untrusted-side proxy whose mirror lives in a trusted isolate.
  struct BatchCall {
    rt::GcRef proxy;
    const model::MethodDecl* stub = nullptr;
    std::vector<rt::Value> args;
  };
  // Per-call outcome. Application faults inside one entry do not abort
  // the rest of the batch; they come back in-band so the caller (the
  // request server's coalescer) can fail just that request.
  struct BatchOutcome {
    bool ok = false;
    rt::Value value;
    std::string error;
  };

  // Packs `calls` into one "ecall_multi_rmi_batch" transition. All proxies
  // must be owned by the same trusted isolate, and every proxy is epoch-
  // fenced *up front*: a stale proxy fails the whole batch with
  // StaleProxyError before any transition happens, so the serving layer's
  // recovery ladder retries the batch as a unit. Transition-level faults
  // (enclave lost mid-batch) likewise abort the whole batch by throwing.
  std::vector<BatchOutcome> invoke_batch(const std::vector<BatchCall>& calls);

  // Scans every weak list and evicts dead mirrors across all pairs.
  void force_gc_scan();

  // Authority fence (DESIGN.md §14). Marks every *currently minted*
  // untrusted-side proxy stale without restarting the enclave: the fleet
  // calls this on a shard's demoted runtime when a replica is promoted, so
  // requests still holding old sessions fault with StaleProxyError instead
  // of double-executing against an enclave that is no longer the shard's
  // authority (which may be perfectly healthy in a planned failover).
  // Proxies minted afterwards record the live epoch and work normally.
  void fence_proxies();

  // Enclave-restart fence (DESIGN.md §12). The trusted heaps are gone:
  // drops every trusted-side registry/proxy table and the untrusted-side
  // mirror registry (whose in-enclave proxies died with the heap).
  // Untrusted proxies minted against the old incarnation survive as
  // objects but their next invocation throws StaleProxyError — the epoch
  // recorded at mint no longer matches Enclave::epoch().
  void on_enclave_restart();

  const MirrorProxyRegistry& trusted_registry(std::uint32_t index) const;
  const MirrorProxyRegistry& untrusted_registry() const {
    return untrusted_->registry;
  }

 private:
  // Sentinel isolate id for the (single) untrusted runtime.
  static constexpr std::uint32_t kUntrustedId = 0xffffffffu;
  // Sentinel epoch marking a proxy fenced by fence_proxies(). Real enclave
  // epochs start at 1, so 0 can never match.
  static constexpr std::uint64_t kFencedEpoch = 0;

  struct SideState {
    SideState(interp::ExecContext& c, HashScheme scheme,
              const std::string& domain)
        : ctx(c), registry(c.isolate()), hasher(scheme, domain) {}

    interp::ExecContext& ctx;
    MirrorProxyRegistry registry;
    ProxyHasher hasher;
    std::unordered_map<std::int64_t, std::uint32_t> proxy_by_hash;
  };

  SideState& state_of(interp::ExecContext& ctx);
  SideState& state_by_id(std::uint32_t id);
  std::uint32_t id_of(const SideState& s) const;

  RefEncoder make_ref_encoder(SideState& from, std::uint32_t callee_id);
  RefDecoder make_ref_decoder(SideState& to, std::uint32_t peer_id);

  rt::GcRef materialize_proxy(SideState& s, std::int64_t hash,
                              const std::string& class_name,
                              std::uint32_t owner_id);

  rt::Value do_construct(SideState& from, std::uint32_t target_id,
                         const model::ClassDecl& proxy_cls,
                         std::vector<rt::Value>& args);

  // Throws StaleProxyError when `hash` was minted under an earlier enclave
  // epoch than the current one.
  void check_proxy_epoch(std::int64_t hash);

  // Decodes and executes one relayed call (the body shared by the
  // per-relay handlers and the batch dispatcher). `in` is positioned at
  // the per-call payload (self hash onward); the isolate-attach cost is
  // charged only when `charge_attach` — the batch handler pays it once
  // for the whole frame.
  ByteBuffer dispatch_one(SideState& callee, std::uint32_t caller_id,
                          const std::string& cls_name,
                          const std::string& relay_name, ByteReader& in,
                          bool charge_attach);

  Env& env_;
  sgx::TransitionBridge& bridge_;
  Config config_;
  std::vector<std::unique_ptr<SideState>> trusted_;
  std::unique_ptr<SideState> untrusted_;
  // Untrusted-side routing: proxy hash -> owning trusted isolate.
  std::unordered_map<std::int64_t, std::uint32_t> hash_owner_;
  // Enclave epoch each untrusted-side proxy hash was minted under; stale
  // entries make invoke_proxy fault with StaleProxyError after a restart.
  std::unordered_map<std::int64_t, std::uint64_t> hash_epoch_;
  bool handlers_registered_ = false;
  // Relay-stub dispatch IDs, memoized per proxy-stub decl (ecall and ocall
  // registrations of one relay name share the interned ID).
  sgx::CallId relay_id(const model::MethodDecl& stub);
  std::unordered_map<const model::MethodDecl*, sgx::CallId> relay_ids_;
  // GC-helper transition IDs, interned at registration.
  sgx::CallId gc_evict_ecall_id_ = sgx::kNoCallId;
  sgx::CallId gc_scan_ecall_id_ = sgx::kNoCallId;
  sgx::CallId gc_evict_ocall_id_ = sgx::kNoCallId;
  // Batch endpoint + per-relay routing table (CallId -> class, relay),
  // built as the relay handlers register.
  sgx::CallId batch_ecall_id_ = sgx::kNoCallId;
  std::unordered_map<sgx::CallId, std::pair<std::string, std::string>>
      batch_targets_;
};

}  // namespace msv::rmi
