#include "rmi/registry.h"

#include "support/error.h"

namespace msv::rmi {

void MirrorProxyRegistry::charge() const {
  isolate_.env().clock.advance(isolate_.env().cost.registry_op_cycles);
}

void MirrorProxyRegistry::add(std::int64_t hash, rt::GcRef mirror) {
  charge();
  MSV_CHECK_MSG(!mirror.is_null(), "registering a null mirror");
  MSV_CHECK_MSG(mirror.isolate() == &isolate_,
                "mirror from a foreign isolate");
  const std::uint32_t identity =
      isolate_.heap().identity_hash(mirror.address());
  if (!by_hash_.emplace(hash, mirror).second) {
    throw RuntimeFault(
        "proxy hash collision in registry of " + isolate_.name() + ": " +
        std::to_string(hash) + " (use HashScheme::kMd5, §5.2)");
  }
  by_identity_[identity] = hash;
  ++stats_.adds;
}

const rt::GcRef& MirrorProxyRegistry::get_ref(std::int64_t hash) const {
  charge();
  ++stats_.lookups;
  const auto it = by_hash_.find(hash);
  if (it == by_hash_.end()) {
    throw RuntimeFault("no mirror for proxy hash " + std::to_string(hash) +
                       " in registry of " + isolate_.name());
  }
  return it->second;
}

bool MirrorProxyRegistry::contains(std::int64_t hash) const {
  charge();
  return by_hash_.count(hash) != 0;
}

void MirrorProxyRegistry::remove(std::int64_t hash) {
  charge();
  const auto it = by_hash_.find(hash);
  if (it == by_hash_.end()) return;
  const std::uint32_t identity =
      isolate_.heap().identity_hash(it->second.address());
  by_identity_.erase(identity);
  by_hash_.erase(it);
  ++stats_.removes;
}

std::optional<std::int64_t> MirrorProxyRegistry::hash_for(
    const rt::GcRef& mirror) const {
  charge();
  MSV_CHECK_MSG(!mirror.is_null() && mirror.isolate() == &isolate_,
                "hash_for on a foreign or null mirror");
  const auto it =
      by_identity_.find(isolate_.heap().identity_hash(mirror.address()));
  if (it == by_identity_.end()) return std::nullopt;
  return it->second;
}

}  // namespace msv::rmi
