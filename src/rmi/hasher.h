// Proxy hash generation (§5.2).
//
// The paper's prototype derives proxy hashes from Java identity hash
// codes and notes that "to minimize hash collisions, a hashing algorithm
// like MD5 should be used". Both schemes are implemented:
//   * kIdentityHash — the 32-bit identity hash, as in the prototype;
//   * kMd5          — MD5 over (runtime name, identity hash, counter),
//                     folded to 64 bits (the recommended scheme, default).
#pragma once

#include <cstdint>
#include <string>

namespace msv::rmi {

enum class HashScheme { kIdentityHash, kMd5 };

class ProxyHasher {
 public:
  ProxyHasher(HashScheme scheme, std::string domain)
      : scheme_(scheme), domain_(std::move(domain)) {}

  // Hash for a freshly created proxy whose identity hash is
  // `identity_hash`.
  std::int64_t next(std::uint32_t identity_hash);

  HashScheme scheme() const { return scheme_; }

 private:
  HashScheme scheme_;
  std::string domain_;
  std::uint64_t counter_ = 0;
};

}  // namespace msv::rmi
