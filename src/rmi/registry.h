// The mirror-proxy registry (§5.2).
//
// Each runtime keeps a registry mapping proxy hashes to strong references
// to the local *mirror* objects (the concrete objects that proxies in the
// opposite runtime stand for). The strong reference keeps the mirror alive
// while its proxy lives; the GC helper (§5.5) removes the entry once the
// proxy has been collected, making the mirror eligible for collection.
//
// A reverse index (mirror identity hash -> proxy hash) supports passing
// already-mirrored objects as parameters: the hash travels instead of the
// object.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <unordered_map>

#include "runtime/isolate.h"

namespace msv::rmi {

struct RegistryStats {
  std::uint64_t adds = 0;
  std::uint64_t removes = 0;
  std::uint64_t lookups = 0;
};

class MirrorProxyRegistry {
 public:
  explicit MirrorProxyRegistry(rt::Isolate& isolate) : isolate_(isolate) {
    // by_hash_ is the hottest RMI lookup (one get() per relayed instance
    // call): reserve well ahead and keep the load factor low so lookups
    // stay at one probe and steady-state adds never rehash.
    by_hash_.max_load_factor(0.7f);
    by_identity_.max_load_factor(0.7f);
    reserve(kDefaultReserve);
  }

  // Pre-sizes both indices for `n` expected mirrors.
  void reserve(std::size_t n) {
    by_hash_.reserve(n);
    by_identity_.reserve(n);
  }

  // Registers `mirror` under `hash`. Throws RuntimeFault on a hash
  // collision — the paper's motivation for MD5-based hashing (§5.2).
  void add(std::int64_t hash, rt::GcRef mirror);

  // Strong lookup; throws RuntimeFault when absent (a consistency
  // violation: an RMI arrived for a mirror that was already evicted).
  rt::GcRef get(std::int64_t hash) const { return get_ref(hash); }

  // Reference-returning lookup for the relay hot path: same charge and
  // lookup counter, no refcount churn. The reference is invalidated by the
  // next add() (rehash), so callers must not hold it across a nested
  // relay that could register mirrors on this side.
  const rt::GcRef& get_ref(std::int64_t hash) const;

  bool contains(std::int64_t hash) const;

  // Eviction by the GC helper. Missing hashes are ignored (the proxy may
  // have died before its mirror was ever registered under races the paper
  // tolerates; eviction is idempotent).
  void remove(std::int64_t hash);

  // Proxy hash under which `mirror` is registered, if any.
  std::optional<std::int64_t> hash_for(const rt::GcRef& mirror) const;

  // Drops every entry at once — the enclave-restart path, where the peer
  // runtime's proxies are all gone and the strong references would pin
  // dead state forever. Counted as removes.
  void clear() {
    stats_.removes += by_hash_.size();
    by_hash_.clear();
    by_identity_.clear();
  }

  std::size_t size() const { return by_hash_.size(); }
  const RegistryStats& stats() const { return stats_; }

 private:
  static constexpr std::size_t kDefaultReserve = 1024;

  void charge() const;

  rt::Isolate& isolate_;
  std::unordered_map<std::int64_t, rt::GcRef> by_hash_;
  // Keyed by object identity hash, which is GC-stable.
  std::unordered_map<std::uint32_t, std::int64_t> by_identity_;
  mutable RegistryStats stats_;
};

}  // namespace msv::rmi
