// The proxy/mirror RMI machinery (§5.2) and the GC helpers (§5.5).
//
// ProxyRuntime connects the two ExecContexts (trusted and untrusted native
// images) through the transition bridge:
//
//   * `new Proxy(args)` on one side creates the local proxy object (hash
//     field only), serializes the constructor arguments, transitions to
//     the relay entry point on the other side, constructs the mirror there
//     and registers it (hash -> strong ref) in that side's mirror-proxy
//     registry;
//   * `proxy.m(args)` transitions to the relay of m, which looks the
//     mirror up by hash and invokes the concrete method;
//   * annotated objects passed as arguments or returned travel as hashes
//     (kRefOwnedByEncoder/kRefOwnedByDecoder, see wire.h); proxies are
//     materialized on demand and cached per hash so each object has at
//     most one live proxy per runtime;
//   * neutral values are serialized and copied.
//
// GC synchronisation: every proxy is also recorded in its isolate's weak
// reference list together with its hash. The two GC helpers periodically
// (default: every simulated second) scan their list for cleared entries
// and evict the corresponding mirrors in the opposite registry — the
// untrusted helper via an ecall, the in-enclave helper via an ocall. The
// helpers are driven deterministically from pump_gc(), which the runtime
// invokes before every top-level transition.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "interp/exec_context.h"
#include "interp/remote.h"
#include "rmi/hasher.h"
#include "rmi/registry.h"
#include "rmi/wire.h"
#include "sgx/bridge.h"

namespace msv::rmi {

struct GcHelperStats {
  std::uint64_t scans = 0;
  std::uint64_t proxies_collected = 0;  // cleared weak entries processed
  std::uint64_t eviction_calls = 0;     // cross-runtime eviction batches
};

struct RmiStats {
  std::uint64_t proxies_created = 0;
  std::uint64_t proxies_materialized = 0;  // from received hashes
  std::uint64_t mirrors_registered = 0;
  std::uint64_t remote_invocations = 0;
};

class ProxyRuntime final : public interp::RemoteInvoker {
 public:
  struct Config {
    HashScheme hash_scheme = HashScheme::kMd5;
    // §5.5: the helper threads scan "periodically (e.g., every second)".
    double gc_scan_period_seconds = 1.0;
    // Pump the GC helpers automatically before top-level transitions.
    bool gc_auto_pump = true;
    // Depth limit for serialized neutral object graphs.
    std::uint32_t max_serialization_depth = 64;
  };

  ProxyRuntime(Env& env, sgx::TransitionBridge& bridge,
               interp::ExecContext& trusted_ctx,
               interp::ExecContext& untrusted_ctx, Config config);
  // Default configuration.
  ProxyRuntime(Env& env, sgx::TransitionBridge& bridge,
               interp::ExecContext& trusted_ctx,
               interp::ExecContext& untrusted_ctx);

  // Registers the relay handlers (every kRelay method of both images) and
  // the GC eviction transitions on the bridge. Call exactly once.
  void register_handlers();

  // ---- RemoteInvoker ----
  rt::Value construct_proxy(interp::ExecContext& caller,
                            const model::ClassDecl& proxy_cls,
                            std::vector<rt::Value>& args) override;
  rt::Value invoke_proxy(interp::ExecContext& caller, const rt::GcRef& proxy,
                         const model::ClassDecl& proxy_cls,
                         const model::MethodDecl& stub,
                         std::vector<rt::Value>& args) override;

  // ---- GC helpers (§5.5) ----
  // Runs any helper whose scan period elapsed. Only effective at top level
  // (untrusted side); nested invocations are skipped, like a helper thread
  // that cannot preempt an enclave call it depends on.
  void pump_gc();
  // Makes both helpers scan immediately (tests and Fig. 5b sampling).
  void force_gc_scan();

  // ---- Introspection for tests and benchmarks ----
  const MirrorProxyRegistry& registry(Side side) const;
  std::size_t live_proxy_count(Side side) const;
  const GcHelperStats& gc_stats(Side side) const;
  const RmiStats& stats() const { return stats_; }

 private:
  struct SideState {
    SideState(interp::ExecContext& c, HashScheme scheme)
        : ctx(c),
          registry(c.isolate()),
          hasher(scheme, c.isolate().name()) {}

    interp::ExecContext& ctx;
    MirrorProxyRegistry registry;
    ProxyHasher hasher;
    // hash -> weak-table index of the live local proxy for that hash.
    std::unordered_map<std::int64_t, std::uint32_t> proxy_by_hash;
    Cycles next_scan = 0;
    GcHelperStats gc_stats;
  };

  SideState& state(Side side);
  const SideState& state(Side side) const;
  SideState& state_of(interp::ExecContext& ctx);
  SideState& other(SideState& s);

  Side side_of(const SideState& s) const {
    return s.ctx.isolate().trusted() ? Side::kTrusted : Side::kUntrusted;
  }

  // Creates (or reuses) the local proxy object for `hash` of class
  // `class_name` in `s`.
  rt::GcRef materialize_proxy(SideState& s, std::int64_t hash,
                              const std::string& class_name);

  RefEncoder make_ref_encoder(SideState& s, std::uint32_t depth = 0);
  RefDecoder make_ref_decoder(SideState& s, std::uint32_t depth = 0);

  ByteBuffer encode_call(SideState& caller, std::int64_t self_hash,
                         std::vector<rt::Value>& args);
  ByteBuffer transition(SideState& caller, const std::string& name,
                        const ByteBuffer& payload, bool via_ecall);

  // Bridge handler body for one relay method.
  ByteBuffer dispatch_relay(SideState& callee, const std::string& cls_name,
                            const std::string& relay_name, ByteReader& in);

  // Scans `local`'s weak list; returns the hashes of collected proxies and
  // compacts the list and the proxy cache.
  std::vector<std::int64_t> collect_dead_proxies(SideState& local);
  void evict_remote(SideState& local, const std::vector<std::int64_t>& dead);

  Env& env_;
  sgx::TransitionBridge& bridge_;
  Config config_;
  SideState trusted_;
  SideState untrusted_;
  Cycles scan_period_;
  bool pumping_ = false;
  bool handlers_registered_ = false;
  RmiStats stats_;
};

}  // namespace msv::rmi
