// The proxy/mirror RMI machinery (§5.2) and the GC helpers (§5.5).
//
// ProxyRuntime connects the two ExecContexts (trusted and untrusted native
// images) through the transition bridge:
//
//   * `new Proxy(args)` on one side creates the local proxy object (hash
//     field only), serializes the constructor arguments, transitions to
//     the relay entry point on the other side, constructs the mirror there
//     and registers it (hash -> strong ref) in that side's mirror-proxy
//     registry;
//   * `proxy.m(args)` transitions to the relay of m, which looks the
//     mirror up by hash and invokes the concrete method;
//   * annotated objects passed as arguments or returned travel as hashes
//     (kRefOwnedByEncoder/kRefOwnedByDecoder, see wire.h); proxies are
//     materialized on demand and cached per hash so each object has at
//     most one live proxy per runtime;
//   * neutral values are serialized and copied.
//
// GC synchronisation: every proxy is also recorded in its isolate's weak
// reference list together with its hash. The two GC helpers periodically
// (default: every simulated second) scan their list for cleared entries
// and evict the corresponding mirrors in the opposite registry — the
// untrusted helper via an ecall, the in-enclave helper via an ocall. The
// helpers are driven deterministically from pump_gc(), which the runtime
// invokes before every top-level transition.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "interp/exec_context.h"
#include "interp/remote.h"
#include "rmi/batch.h"
#include "rmi/hasher.h"
#include "rmi/registry.h"
#include "rmi/wire.h"
#include "sgx/bridge.h"

namespace msv::rmi {

struct GcHelperStats {
  std::uint64_t scans = 0;
  std::uint64_t proxies_collected = 0;  // cleared weak entries processed
  std::uint64_t eviction_calls = 0;     // cross-runtime eviction batches
};

struct RmiStats {
  std::uint64_t proxies_created = 0;
  std::uint64_t proxies_materialized = 0;  // from received hashes
  std::uint64_t mirrors_registered = 0;
  // Logical remote calls (every proxy invocation, batched or not).
  std::uint64_t remote_invocations = 0;
  // Calls whose request marshalling stayed entirely on the primitive
  // fixed-layout path (no ref-encoder indirection).
  std::uint64_t fast_path_calls = 0;
  // RMI-layer bridge round trips. A batched flush dispatches N logical
  // calls over ONE transition, so under batching this grows slower than
  // remote_invocations — the per-call accounting the batching layer must
  // keep honest (a transition != a call once batches exist).
  std::uint64_t transitions = 0;
  // Logical calls that travelled inside a batch frame, and the number of
  // flushes that dispatched at least one pending call.
  std::uint64_t batched_calls = 0;
  std::uint64_t batch_flushes = 0;
};

class ProxyRuntime final : public interp::RemoteInvoker,
                           public BatchFlushSink {
 public:
  struct Config {
    HashScheme hash_scheme = HashScheme::kMd5;
    // §5.5: the helper threads scan "periodically (e.g., every second)".
    double gc_scan_period_seconds = 1.0;
    // Pump the GC helpers automatically before top-level transitions.
    bool gc_auto_pump = true;
    // Depth limit for serialized neutral object graphs.
    std::uint32_t max_serialization_depth = 64;
    // Hot-path machinery: interned call-ID dispatch, arena-pooled wire
    // buffers and the primitive fixed-layout encoder. Simulated cycle
    // charges are identical either way (the wire bytes are the same);
    // disabling reverts to the pre-optimisation string-dispatch path and
    // exists for the before/after benchmark (bench/abl_rmi_fastpath).
    bool fast_paths = true;
    // Cross-boundary call batching (DESIGN.md §13): invoke_proxy_async
    // packs calls into one wire frame dispatched by a single transition.
    // Off by default — the sync API is byte-identical either way; only
    // the async API changes behaviour. Requires fast_paths.
    bool batching = false;
    // Flush bounds of the pending batch (calls / marshalled bytes).
    std::uint32_t max_batch_calls = 64;
    std::size_t max_batch_bytes = 64 * 1024;
  };

  ProxyRuntime(Env& env, sgx::TransitionBridge& bridge,
               interp::ExecContext& trusted_ctx,
               interp::ExecContext& untrusted_ctx, Config config);
  // Default configuration.
  ProxyRuntime(Env& env, sgx::TransitionBridge& bridge,
               interp::ExecContext& trusted_ctx,
               interp::ExecContext& untrusted_ctx);
  ~ProxyRuntime() override;

  // Registers the relay handlers (every kRelay method of both images) and
  // the GC eviction transitions on the bridge. Call exactly once.
  void register_handlers();

  // ---- RemoteInvoker ----
  rt::Value construct_proxy(interp::ExecContext& caller,
                            const model::ClassDecl& proxy_cls,
                            std::vector<rt::Value>& args) override;
  rt::Value invoke_proxy(interp::ExecContext& caller, const rt::GcRef& proxy,
                         const model::ClassDecl& proxy_cls,
                         const model::MethodDecl& stub,
                         std::vector<rt::Value>& args) override;

  // ---- Batched & async RMI (DESIGN.md §13) ----
  // Enables (or disables) call batching at run time. Flushes any pending
  // batch first, so toggling never reorders calls.
  void set_batching(bool enabled);
  // Enqueues one invocation into the pending batch and returns a future
  // for its result. Marshalling (and its cycle charge) happens now; the
  // transition is deferred to the flush. Strict program order per
  // (caller task, direction) is preserved: the batch flushes before any
  // synchronous call, on a direction or caller-side change, when the
  // size bounds fill, at every scheduler suspension point, and on the
  // first get(). Calls with non-primitive arguments (which may alias
  // proxy state earlier batched calls mutate) conservatively flush and
  // run synchronously — their future returns already resolved.
  RmiFuture invoke_proxy_async(interp::ExecContext& caller,
                               const rt::GcRef& proxy,
                               const model::ClassDecl& proxy_cls,
                               const model::MethodDecl& stub,
                               std::vector<rt::Value>& args);
  // Dispatches the pending batch (one bridge transition for N calls);
  // no-op when nothing is pending. Whole-batch failures (enclave loss
  // mid-batch) resolve every pending future with the error — surfaced at
  // each get(), retried by the serving layer's existing backoff ladder.
  void flush_batches() override;
  std::size_t pending_batch_calls() const { return pending_calls_.size(); }

  // ---- GC helpers (§5.5) ----
  // Runs any helper whose scan period elapsed. Only effective at top level
  // (untrusted side); nested invocations are skipped, like a helper thread
  // that cannot preempt an enclave call it depends on.
  void pump_gc();
  // Makes both helpers scan immediately (tests and Fig. 5b sampling).
  void force_gc_scan();

  // ---- Introspection for tests and benchmarks ----
  const MirrorProxyRegistry& registry(Side side) const;
  std::size_t live_proxy_count(Side side) const;
  const GcHelperStats& gc_stats(Side side) const;
  const RmiStats& stats() const { return stats_; }

 private:
  struct SideState {
    SideState(interp::ExecContext& c, HashScheme scheme)
        : ctx(c),
          registry(c.isolate()),
          hasher(scheme, c.isolate().name()) {}

    interp::ExecContext& ctx;
    MirrorProxyRegistry registry;
    ProxyHasher hasher;
    // hash -> weak-table index of the live local proxy for that hash.
    std::unordered_map<std::int64_t, std::uint32_t> proxy_by_hash;
    Cycles next_scan = 0;
    GcHelperStats gc_stats;
  };

  SideState& state(Side side);
  const SideState& state(Side side) const;
  SideState& state_of(interp::ExecContext& ctx);
  SideState& other(SideState& s);

  Side side_of(const SideState& s) const {
    return s.ctx.isolate().trusted() ? Side::kTrusted : Side::kUntrusted;
  }

  // Creates (or reuses) the local proxy object for `hash` of class
  // `class_name` in `s`.
  rt::GcRef materialize_proxy(SideState& s, std::int64_t hash,
                              const std::string& class_name);

  RefEncoder make_ref_encoder(SideState& s, std::uint32_t depth = 0);
  RefDecoder make_ref_decoder(SideState& s, std::uint32_t depth = 0);

  // Per-stub dispatch plan, resolved once per proxy-stub MethodDecl: the
  // interned bridge call ID plus the primitive-signature flag. Subsequent
  // invocations dispatch by ID through the bridge's flat tables instead of
  // re-hashing the relay name.
  struct RelayPlan {
    sgx::CallId id;
    bool via_ecall;
    bool primitive;  // declared all-primitive signature (app model hint)
    // Caller-side span name ("rmi.invoke <relay>"), interned once here so
    // tracing adds no per-call string work.
    std::uint32_t span_name = 0;
  };
  const RelayPlan& plan_for(const model::MethodDecl& stub);

  // Everything one registered relay handler needs, resolved at
  // registration. The bridge closure captures a single pointer to its
  // site, so the std::function fits its small-object buffer (a fat
  // capture would heap-allocate and indirect every dispatch).
  struct RelaySite {
    ProxyRuntime* rt;
    SideState* callee;
    const model::ClassDecl* cls;
    const model::MethodDecl* relay;
    const model::MethodDecl* target;  // null for constructor relays
    interp::ExecContext::QuickInfo quick;
  };

  // Encodes self-hash + args into `buf` (arena-backed on the fast path),
  // taking the fixed-layout shortcut per primitive argument. Byte-for-byte
  // identical to the generic encoder; charges charge_serialize the same.
  void encode_call_into(ByteBuffer& buf, SideState& caller,
                        std::int64_t self_hash, std::vector<rt::Value>& args);
  ByteBuffer encode_call(SideState& caller, std::int64_t self_hash,
                         std::vector<rt::Value>& args);
  ByteBuffer transition(SideState& caller, const std::string& name,
                        const ByteBuffer& payload, bool via_ecall);
  // Hot path: ID dispatch, response written into `response`.
  void transition_fast(const RelayPlan& plan, const ByteBuffer& payload,
                       ByteBuffer& response);

  // Bridge handler body for one relay method (`target` pre-resolved at
  // registration; null for constructor relays). `quick` is the target's
  // registration-time quickening classification (null in legacy mode).
  // Writes the marshalled result into `out`. Batched dispatch passes
  // charge_attach=false: the batch handler charges the isolate attach
  // once for the whole frame — the cost batching exists to amortize.
  void dispatch_relay(SideState& callee, const model::ClassDecl& cls,
                      const model::MethodDecl& relay,
                      const model::MethodDecl* target,
                      const interp::ExecContext::QuickInfo* quick,
                      ByteReader& in, ByteBuffer& out,
                      bool charge_attach = true);

  // Callee-side body of the batch transition: bounded-decodes the frame,
  // dispatches every entry through its RelaySite (isolate attach charged
  // once), packs per-entry results/errors into the response frame.
  void dispatch_batch(SideState& callee, ByteReader& in, ByteBuffer& out);

  // One enqueued-but-not-yet-dispatched batched call. The bare payload
  // (identical bytes to the unbatched wire form) lives at
  // [offset, offset + size) of batch_buf_.
  struct PendingCall {
    const RelayPlan* plan;
    std::shared_ptr<RmiFutureState> state;
    std::size_t offset;
    std::size_t size;
  };
  void install_suspend_hook();
  void do_flush();

  // Scans `local`'s weak list; returns the hashes of collected proxies and
  // compacts the list and the proxy cache.
  std::vector<std::int64_t> collect_dead_proxies(SideState& local);
  void evict_remote(SideState& local, const std::vector<std::int64_t>& dead);

  Env& env_;
  sgx::TransitionBridge& bridge_;
  Config config_;
  SideState trusted_;
  SideState untrusted_;
  Cycles scan_period_;
  bool pumping_ = false;
  bool handlers_registered_ = false;
  // GC-helper transition IDs, interned once at registration.
  sgx::CallId gc_evict_ecall_id_ = sgx::kNoCallId;
  sgx::CallId gc_evict_ocall_id_ = sgx::kNoCallId;
  sgx::CallId gc_scan_ecall_id_ = sgx::kNoCallId;
  RmiStats stats_;
  // Request/response wire buffers, reused across calls (nested chains pull
  // additional buffers; steady state allocates nothing).
  BufferArena arena_;
  std::unordered_map<const model::MethodDecl*, RelayPlan> plans_;
  // Monomorphic plan cache: a hot loop invokes one stub repeatedly, so
  // remembering the last resolution skips the map probe entirely.
  const model::MethodDecl* last_plan_stub_ = nullptr;
  const RelayPlan* last_plan_ = nullptr;
  // Relay dispatch sites (deque: handlers capture stable pointers), plus
  // the CallId index the batch dispatcher routes entries through.
  std::deque<RelaySite> relay_sites_;
  std::unordered_map<sgx::CallId, const RelaySite*> sites_by_id_;

  // ---- Pending batch (one per runtime: one caller side + direction) ----
  std::vector<PendingCall> pending_calls_;
  ByteBuffer batch_buf_;  // concatenated bare payloads; capacity reused
  SideState* pending_from_ = nullptr;
  bool pending_via_ecall_ = false;
  bool flushing_ = false;
  bool hook_installed_ = false;
  BatchLimits batch_limits_;
  sgx::CallId batch_ecall_id_ = sgx::kNoCallId;
  sgx::CallId batch_ocall_id_ = sgx::kNoCallId;

  // Argument-vector pool for relay dispatch (fast mode only; constructor
  // relays consume their vector and simply don't return it).
  std::vector<rt::Value> args_take() {
    if (args_pool_.empty()) return {};
    std::vector<rt::Value> v = std::move(args_pool_.back());
    args_pool_.pop_back();
    return v;
  }
  void args_put(std::vector<rt::Value>&& v) {
    // Clear before pooling: a parked Value would keep its GcRef rooted.
    v.clear();
    if (args_pool_.size() < 16) args_pool_.push_back(std::move(v));
  }
  std::vector<std::vector<rt::Value>> args_pool_;
};

}  // namespace msv::rmi
