#include "rmi/wire.h"

#include <cstring>

#include "support/error.h"

namespace msv::rmi {

using rt::Value;
using rt::ValueType;

// Deep neutral-object graphs are legal payloads (a 100k-deep nested list
// is one argument), so the codec walks with explicit frame stacks — the
// byte stream is identical to the old recursive form (pre-order, list
// header then elements in order), only the traversal is iterative.

namespace {

// Encodes every non-list case exactly as the recursive encoder did.
void encode_scalar(ByteBuffer& out, const Value& v,
                   const RefEncoder& ref_encoder) {
  switch (v.type()) {
    case ValueType::kNull:
      out.put_u8(static_cast<std::uint8_t>(WireTag::kNull));
      return;
    case ValueType::kBool:
      out.put_u8(static_cast<std::uint8_t>(WireTag::kBool));
      out.put_u8(v.as_bool() ? 1 : 0);
      return;
    case ValueType::kI32:
      out.put_u8(static_cast<std::uint8_t>(WireTag::kI32));
      out.put_i32(v.as_i32());
      return;
    case ValueType::kI64:
      out.put_u8(static_cast<std::uint8_t>(WireTag::kI64));
      out.put_i64(v.as_i64());
      return;
    case ValueType::kF64:
      out.put_u8(static_cast<std::uint8_t>(WireTag::kF64));
      out.put_f64(v.as_f64());
      return;
    case ValueType::kString:
      out.put_u8(static_cast<std::uint8_t>(WireTag::kString));
      out.put_string(v.as_string());
      return;
    case ValueType::kRef:
      if (v.as_ref().is_null()) {
        out.put_u8(static_cast<std::uint8_t>(WireTag::kNull));
        return;
      }
      ref_encoder(out, v.as_ref());
      return;
    case ValueType::kList:
      break;  // handled by the frame loop
  }
  throw RuntimeFault("encode_scalar on a list");
}

struct EncodeFrame {
  const rt::ValueList* list;
  std::size_t next = 0;
};

// A decoded list's wire count can lie: every element needs at least its
// tag byte, so a count beyond the remaining input is corrupt — reject it
// BEFORE sizing the vector, or a 2^40 count turns into a giant
// allocation from attacker-controlled bytes.
std::uint64_t checked_list_count(ByteReader& in, std::uint64_t n) {
  if (n > in.remaining()) {
    throw RuntimeFault("corrupt wire value: list count exceeds input");
  }
  return n;
}

struct DecodeFrame {
  rt::ValueList list;
  std::size_t next = 0;

  explicit DecodeFrame(std::uint64_t n)
      : list(static_cast<std::size_t>(n)) {}
};

}  // namespace

void encode_value(ByteBuffer& out, const Value& v,
                  const RefEncoder& ref_encoder) {
  if (v.type() != ValueType::kList) {
    encode_scalar(out, v, ref_encoder);
    return;
  }
  std::vector<EncodeFrame> stack;
  out.put_u8(static_cast<std::uint8_t>(WireTag::kList));
  out.put_varint(v.as_list().size());
  stack.push_back({&v.as_list(), 0});
  while (!stack.empty()) {
    EncodeFrame& f = stack.back();
    if (f.next == f.list->size()) {
      stack.pop_back();
      continue;
    }
    const Value& e = (*f.list)[f.next++];
    if (e.type() == ValueType::kList) {
      out.put_u8(static_cast<std::uint8_t>(WireTag::kList));
      out.put_varint(e.as_list().size());
      stack.push_back({&e.as_list(), 0});
    } else {
      encode_scalar(out, e, ref_encoder);
    }
  }
}

rt::Value decode_value(ByteReader& in, const RefDecoder& ref_decoder) {
  const auto decode_scalar = [&](WireTag tag) -> Value {
    switch (tag) {
      case WireTag::kNull:
        return Value();
      case WireTag::kBool:
        return Value(in.get_u8() != 0);
      case WireTag::kI32:
        return Value(in.get_i32());
      case WireTag::kI64:
        return Value(in.get_i64());
      case WireTag::kF64:
        return Value(in.get_f64());
      case WireTag::kString:
        return Value(in.get_string());
      case WireTag::kRefOwnedByEncoder:
      case WireTag::kRefOwnedByDecoder:
      case WireTag::kNeutralObject:
        return ref_decoder(in, tag);
      case WireTag::kList:
        break;  // handled by the frame loop
    }
    throw RuntimeFault("corrupt wire value: unknown tag");
  };
  const auto tag = static_cast<WireTag>(in.get_u8());
  if (tag != WireTag::kList) return decode_scalar(tag);
  std::vector<DecodeFrame> stack;
  stack.emplace_back(checked_list_count(in, in.get_varint()));
  while (true) {
    DecodeFrame& f = stack.back();
    if (f.next == f.list.size()) {
      Value done(std::move(f.list));
      stack.pop_back();
      if (stack.empty()) return done;
      DecodeFrame& parent = stack.back();
      parent.list[parent.next++] = std::move(done);
      continue;
    }
    const auto t = static_cast<WireTag>(in.get_u8());
    if (t == WireTag::kList) {
      stack.emplace_back(checked_list_count(in, in.get_varint()));
    } else {
      f.list[f.next++] = decode_scalar(t);
    }
  }
}



namespace compat {

void put_u32(ByteBuffer& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.put_u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(ByteBuffer& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.put_u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f64(ByteBuffer& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void put_varint(ByteBuffer& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.put_u8(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.put_u8(static_cast<std::uint8_t>(v));
}

void put_string(ByteBuffer& out, std::string_view s) {
  // The seed's put_string already used a bulk copy for the payload.
  put_varint(out, s.size());
  out.put_bytes(s.data(), s.size());
}

std::uint32_t get_u32(ByteReader& in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(in.get_u8()) << (8 * i);
  }
  return v;
}

std::uint64_t get_u64(ByteReader& in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in.get_u8()) << (8 * i);
  }
  return v;
}

double get_f64(ByteReader& in) {
  const std::uint64_t bits = get_u64(in);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::uint64_t get_varint(ByteReader& in) {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    const std::uint8_t b = in.get_u8();
    if (shift >= 64) throw RuntimeFault("ByteReader: varint too long");
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if (!(b & 0x80)) break;
    shift += 7;
  }
  return v;
}

std::string get_string(ByteReader& in) {
  const std::uint64_t n = get_varint(in);
  std::string s(n, '\0');
  in.get_bytes(s.data(), n);
  return s;
}

}  // namespace compat

namespace {

// Non-list cases of the seed-shape codec (byte-at-a-time ops).
void encode_scalar_compat(ByteBuffer& out, const Value& v,
                          const RefEncoder& ref_encoder) {
  switch (v.type()) {
    case ValueType::kNull:
      out.put_u8(static_cast<std::uint8_t>(WireTag::kNull));
      return;
    case ValueType::kBool:
      out.put_u8(static_cast<std::uint8_t>(WireTag::kBool));
      out.put_u8(v.as_bool() ? 1 : 0);
      return;
    case ValueType::kI32:
      out.put_u8(static_cast<std::uint8_t>(WireTag::kI32));
      compat::put_i32(out, v.as_i32());
      return;
    case ValueType::kI64:
      out.put_u8(static_cast<std::uint8_t>(WireTag::kI64));
      compat::put_i64(out, v.as_i64());
      return;
    case ValueType::kF64:
      out.put_u8(static_cast<std::uint8_t>(WireTag::kF64));
      compat::put_f64(out, v.as_f64());
      return;
    case ValueType::kString:
      out.put_u8(static_cast<std::uint8_t>(WireTag::kString));
      compat::put_string(out, v.as_string());
      return;
    case ValueType::kRef:
      if (v.as_ref().is_null()) {
        out.put_u8(static_cast<std::uint8_t>(WireTag::kNull));
        return;
      }
      ref_encoder(out, v.as_ref());
      return;
    case ValueType::kList:
      break;
  }
  throw RuntimeFault("encode_scalar on a list");
}

}  // namespace

void encode_value_compat(ByteBuffer& out, const Value& v,
                         const RefEncoder& ref_encoder) {
  if (v.type() != ValueType::kList) {
    encode_scalar_compat(out, v, ref_encoder);
    return;
  }
  std::vector<EncodeFrame> stack;
  out.put_u8(static_cast<std::uint8_t>(WireTag::kList));
  compat::put_varint(out, v.as_list().size());
  stack.push_back({&v.as_list(), 0});
  while (!stack.empty()) {
    EncodeFrame& f = stack.back();
    if (f.next == f.list->size()) {
      stack.pop_back();
      continue;
    }
    const Value& e = (*f.list)[f.next++];
    if (e.type() == ValueType::kList) {
      out.put_u8(static_cast<std::uint8_t>(WireTag::kList));
      compat::put_varint(out, e.as_list().size());
      stack.push_back({&e.as_list(), 0});
    } else {
      encode_scalar_compat(out, e, ref_encoder);
    }
  }
}

rt::Value decode_value_compat(ByteReader& in, const RefDecoder& ref_decoder) {
  const auto decode_scalar = [&](WireTag tag) -> Value {
    switch (tag) {
      case WireTag::kNull:
        return Value();
      case WireTag::kBool:
        return Value(in.get_u8() != 0);
      case WireTag::kI32:
        return Value(compat::get_i32(in));
      case WireTag::kI64:
        return Value(compat::get_i64(in));
      case WireTag::kF64:
        return Value(compat::get_f64(in));
      case WireTag::kString:
        return Value(compat::get_string(in));
      case WireTag::kRefOwnedByEncoder:
      case WireTag::kRefOwnedByDecoder:
      case WireTag::kNeutralObject:
        return ref_decoder(in, tag);
      case WireTag::kList:
        break;
    }
    throw RuntimeFault("corrupt wire value: unknown tag");
  };
  const auto tag = static_cast<WireTag>(in.get_u8());
  if (tag != WireTag::kList) return decode_scalar(tag);
  std::vector<DecodeFrame> stack;
  stack.emplace_back(checked_list_count(in, compat::get_varint(in)));
  while (true) {
    DecodeFrame& f = stack.back();
    if (f.next == f.list.size()) {
      Value done(std::move(f.list));
      stack.pop_back();
      if (stack.empty()) return done;
      DecodeFrame& parent = stack.back();
      parent.list[parent.next++] = std::move(done);
      continue;
    }
    const auto t = static_cast<WireTag>(in.get_u8());
    if (t == WireTag::kList) {
      stack.emplace_back(checked_list_count(in, compat::get_varint(in)));
    } else {
      f.list[f.next++] = decode_scalar(t);
    }
  }
}

std::uint64_t element_count_list(const rt::Value& v) {
  // Order-independent sum: a pointer work-list replaces the recursion.
  std::uint64_t n = 0;
  std::vector<const rt::Value*> work{&v};
  while (!work.empty()) {
    const rt::Value* cur = work.back();
    work.pop_back();
    ++n;
    if (cur->type() == ValueType::kList) {
      for (const auto& e : cur->as_list()) work.push_back(&e);
    }
  }
  return n;
}

void charge_serialize(Env& env, MemoryDomain& domain, std::uint64_t elements,
                      std::uint64_t bytes) {
  env.clock.advance(env.cost.serialize_base_cycles +
                    elements * env.cost.serialize_element_cycles +
                    static_cast<Cycles>(static_cast<double>(bytes) *
                                        env.cost.serialize_cycles_per_byte));
  domain.charge_traffic(bytes);
}

void charge_deserialize(Env& env, MemoryDomain& domain, std::uint64_t elements,
                        std::uint64_t bytes) {
  env.clock.advance(env.cost.deserialize_base_cycles +
                    elements * env.cost.deserialize_element_cycles +
                    static_cast<Cycles>(static_cast<double>(bytes) *
                                        env.cost.deserialize_cycles_per_byte));
  domain.charge_traffic(bytes);
}

}  // namespace msv::rmi
