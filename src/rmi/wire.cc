#include "rmi/wire.h"

#include "support/error.h"

namespace msv::rmi {

using rt::Value;
using rt::ValueType;

void encode_value(ByteBuffer& out, const Value& v,
                  const RefEncoder& ref_encoder) {
  switch (v.type()) {
    case ValueType::kNull:
      out.put_u8(static_cast<std::uint8_t>(WireTag::kNull));
      return;
    case ValueType::kBool:
      out.put_u8(static_cast<std::uint8_t>(WireTag::kBool));
      out.put_u8(v.as_bool() ? 1 : 0);
      return;
    case ValueType::kI32:
      out.put_u8(static_cast<std::uint8_t>(WireTag::kI32));
      out.put_i32(v.as_i32());
      return;
    case ValueType::kI64:
      out.put_u8(static_cast<std::uint8_t>(WireTag::kI64));
      out.put_i64(v.as_i64());
      return;
    case ValueType::kF64:
      out.put_u8(static_cast<std::uint8_t>(WireTag::kF64));
      out.put_f64(v.as_f64());
      return;
    case ValueType::kString:
      out.put_u8(static_cast<std::uint8_t>(WireTag::kString));
      out.put_string(v.as_string());
      return;
    case ValueType::kList: {
      out.put_u8(static_cast<std::uint8_t>(WireTag::kList));
      const auto& list = v.as_list();
      out.put_varint(list.size());
      for (const auto& e : list) encode_value(out, e, ref_encoder);
      return;
    }
    case ValueType::kRef:
      if (v.as_ref().is_null()) {
        out.put_u8(static_cast<std::uint8_t>(WireTag::kNull));
        return;
      }
      ref_encoder(out, v.as_ref());
      return;
  }
}

rt::Value decode_value(ByteReader& in, const RefDecoder& ref_decoder) {
  const auto tag = static_cast<WireTag>(in.get_u8());
  switch (tag) {
    case WireTag::kNull:
      return Value();
    case WireTag::kBool:
      return Value(in.get_u8() != 0);
    case WireTag::kI32:
      return Value(in.get_i32());
    case WireTag::kI64:
      return Value(in.get_i64());
    case WireTag::kF64:
      return Value(in.get_f64());
    case WireTag::kString:
      return Value(in.get_string());
    case WireTag::kList: {
      rt::ValueList list(in.get_varint());
      for (auto& e : list) e = decode_value(in, ref_decoder);
      return Value(std::move(list));
    }
    case WireTag::kRefOwnedByEncoder:
    case WireTag::kRefOwnedByDecoder:
    case WireTag::kNeutralObject:
      return ref_decoder(in, tag);
  }
  throw RuntimeFault("corrupt wire value: unknown tag");
}

std::uint64_t element_count(const rt::Value& v) {
  if (v.type() == ValueType::kList) {
    std::uint64_t n = 1;
    for (const auto& e : v.as_list()) n += element_count(e);
    return n;
  }
  return 1;
}

void charge_serialize(Env& env, MemoryDomain& domain, std::uint64_t elements,
                      std::uint64_t bytes) {
  env.clock.advance(env.cost.serialize_base_cycles +
                    elements * env.cost.serialize_element_cycles +
                    static_cast<Cycles>(static_cast<double>(bytes) *
                                        env.cost.serialize_cycles_per_byte));
  domain.charge_traffic(bytes);
}

void charge_deserialize(Env& env, MemoryDomain& domain, std::uint64_t elements,
                        std::uint64_t bytes) {
  env.clock.advance(env.cost.deserialize_base_cycles +
                    elements * env.cost.deserialize_element_cycles +
                    static_cast<Cycles>(static_cast<double>(bytes) *
                                        env.cost.deserialize_cycles_per_byte));
  domain.charge_traffic(bytes);
}

}  // namespace msv::rmi
