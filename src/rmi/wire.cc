#include "rmi/wire.h"

#include <cstring>

#include "support/error.h"

namespace msv::rmi {

using rt::Value;
using rt::ValueType;

void encode_value(ByteBuffer& out, const Value& v,
                  const RefEncoder& ref_encoder) {
  switch (v.type()) {
    case ValueType::kNull:
      out.put_u8(static_cast<std::uint8_t>(WireTag::kNull));
      return;
    case ValueType::kBool:
      out.put_u8(static_cast<std::uint8_t>(WireTag::kBool));
      out.put_u8(v.as_bool() ? 1 : 0);
      return;
    case ValueType::kI32:
      out.put_u8(static_cast<std::uint8_t>(WireTag::kI32));
      out.put_i32(v.as_i32());
      return;
    case ValueType::kI64:
      out.put_u8(static_cast<std::uint8_t>(WireTag::kI64));
      out.put_i64(v.as_i64());
      return;
    case ValueType::kF64:
      out.put_u8(static_cast<std::uint8_t>(WireTag::kF64));
      out.put_f64(v.as_f64());
      return;
    case ValueType::kString:
      out.put_u8(static_cast<std::uint8_t>(WireTag::kString));
      out.put_string(v.as_string());
      return;
    case ValueType::kList: {
      out.put_u8(static_cast<std::uint8_t>(WireTag::kList));
      const auto& list = v.as_list();
      out.put_varint(list.size());
      for (const auto& e : list) encode_value(out, e, ref_encoder);
      return;
    }
    case ValueType::kRef:
      if (v.as_ref().is_null()) {
        out.put_u8(static_cast<std::uint8_t>(WireTag::kNull));
        return;
      }
      ref_encoder(out, v.as_ref());
      return;
  }
}

rt::Value decode_value(ByteReader& in, const RefDecoder& ref_decoder) {
  const auto tag = static_cast<WireTag>(in.get_u8());
  switch (tag) {
    case WireTag::kNull:
      return Value();
    case WireTag::kBool:
      return Value(in.get_u8() != 0);
    case WireTag::kI32:
      return Value(in.get_i32());
    case WireTag::kI64:
      return Value(in.get_i64());
    case WireTag::kF64:
      return Value(in.get_f64());
    case WireTag::kString:
      return Value(in.get_string());
    case WireTag::kList: {
      rt::ValueList list(in.get_varint());
      for (auto& e : list) e = decode_value(in, ref_decoder);
      return Value(std::move(list));
    }
    case WireTag::kRefOwnedByEncoder:
    case WireTag::kRefOwnedByDecoder:
    case WireTag::kNeutralObject:
      return ref_decoder(in, tag);
  }
  throw RuntimeFault("corrupt wire value: unknown tag");
}



namespace compat {

void put_u32(ByteBuffer& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.put_u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(ByteBuffer& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.put_u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f64(ByteBuffer& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void put_varint(ByteBuffer& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.put_u8(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.put_u8(static_cast<std::uint8_t>(v));
}

void put_string(ByteBuffer& out, std::string_view s) {
  // The seed's put_string already used a bulk copy for the payload.
  put_varint(out, s.size());
  out.put_bytes(s.data(), s.size());
}

std::uint32_t get_u32(ByteReader& in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(in.get_u8()) << (8 * i);
  }
  return v;
}

std::uint64_t get_u64(ByteReader& in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in.get_u8()) << (8 * i);
  }
  return v;
}

double get_f64(ByteReader& in) {
  const std::uint64_t bits = get_u64(in);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::uint64_t get_varint(ByteReader& in) {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    const std::uint8_t b = in.get_u8();
    if (shift >= 64) throw RuntimeFault("ByteReader: varint too long");
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if (!(b & 0x80)) break;
    shift += 7;
  }
  return v;
}

std::string get_string(ByteReader& in) {
  const std::uint64_t n = get_varint(in);
  std::string s(n, '\0');
  in.get_bytes(s.data(), n);
  return s;
}

}  // namespace compat

void encode_value_compat(ByteBuffer& out, const Value& v,
                         const RefEncoder& ref_encoder) {
  switch (v.type()) {
    case ValueType::kNull:
      out.put_u8(static_cast<std::uint8_t>(WireTag::kNull));
      return;
    case ValueType::kBool:
      out.put_u8(static_cast<std::uint8_t>(WireTag::kBool));
      out.put_u8(v.as_bool() ? 1 : 0);
      return;
    case ValueType::kI32:
      out.put_u8(static_cast<std::uint8_t>(WireTag::kI32));
      compat::put_i32(out, v.as_i32());
      return;
    case ValueType::kI64:
      out.put_u8(static_cast<std::uint8_t>(WireTag::kI64));
      compat::put_i64(out, v.as_i64());
      return;
    case ValueType::kF64:
      out.put_u8(static_cast<std::uint8_t>(WireTag::kF64));
      compat::put_f64(out, v.as_f64());
      return;
    case ValueType::kString:
      out.put_u8(static_cast<std::uint8_t>(WireTag::kString));
      compat::put_string(out, v.as_string());
      return;
    case ValueType::kList: {
      out.put_u8(static_cast<std::uint8_t>(WireTag::kList));
      const auto& list = v.as_list();
      compat::put_varint(out, list.size());
      for (const auto& e : list) encode_value_compat(out, e, ref_encoder);
      return;
    }
    case ValueType::kRef:
      if (v.as_ref().is_null()) {
        out.put_u8(static_cast<std::uint8_t>(WireTag::kNull));
        return;
      }
      ref_encoder(out, v.as_ref());
      return;
  }
}

rt::Value decode_value_compat(ByteReader& in, const RefDecoder& ref_decoder) {
  const auto tag = static_cast<WireTag>(in.get_u8());
  switch (tag) {
    case WireTag::kNull:
      return Value();
    case WireTag::kBool:
      return Value(in.get_u8() != 0);
    case WireTag::kI32:
      return Value(compat::get_i32(in));
    case WireTag::kI64:
      return Value(compat::get_i64(in));
    case WireTag::kF64:
      return Value(compat::get_f64(in));
    case WireTag::kString:
      return Value(compat::get_string(in));
    case WireTag::kList: {
      rt::ValueList list(compat::get_varint(in));
      for (auto& e : list) e = decode_value_compat(in, ref_decoder);
      return Value(std::move(list));
    }
    case WireTag::kRefOwnedByEncoder:
    case WireTag::kRefOwnedByDecoder:
    case WireTag::kNeutralObject:
      return ref_decoder(in, tag);
  }
  throw RuntimeFault("corrupt wire value: unknown tag");
}

std::uint64_t element_count_list(const rt::Value& v) {
  std::uint64_t n = 1;
  for (const auto& e : v.as_list()) n += element_count(e);
  return n;
}

void charge_serialize(Env& env, MemoryDomain& domain, std::uint64_t elements,
                      std::uint64_t bytes) {
  env.clock.advance(env.cost.serialize_base_cycles +
                    elements * env.cost.serialize_element_cycles +
                    static_cast<Cycles>(static_cast<double>(bytes) *
                                        env.cost.serialize_cycles_per_byte));
  domain.charge_traffic(bytes);
}

void charge_deserialize(Env& env, MemoryDomain& domain, std::uint64_t elements,
                        std::uint64_t bytes) {
  env.clock.advance(env.cost.deserialize_base_cycles +
                    elements * env.cost.deserialize_element_cycles +
                    static_cast<Cycles>(static_cast<double>(bytes) *
                                        env.cost.deserialize_cycles_per_byte));
  domain.charge_traffic(bytes);
}

}  // namespace msv::rmi
