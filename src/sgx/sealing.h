// Sealed storage.
//
// SGX enclaves persist secrets by *sealing* them: encrypting with a key
// derived from the CPU's fuse key and the enclave identity (MRENCLAVE
// policy), so only the same enclave on the same platform can unseal. The
// secure KV-store use case of §6.7 needs exactly this to survive restarts
// without ever exposing plaintext to the untrusted side.
//
// The simulation derives the sealing key from a platform secret and the
// enclave measurement, encrypts with a SHA-256-based stream cipher and
// authenticates with the same HMAC-like construction the attestation
// module uses. Unsealing verifies both the MAC and the measurement policy.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sgx/enclave.h"
#include "support/sha256.h"

namespace msv::sgx {

struct SealedBlob {
  Sha256::Digest mr_enclave{};  // sealing policy: MRENCLAVE
  std::vector<std::uint8_t> iv;
  std::vector<std::uint8_t> ciphertext;
  Sha256::Digest mac{};

  // Wire format helpers (what would be written to untrusted storage).
  std::vector<std::uint8_t> serialize() const;
  static SealedBlob deserialize(const std::vector<std::uint8_t>& bytes);
};

// The platform's sealing facility (stands in for EGETKEY).
class SealingPlatform {
 public:
  explicit SealingPlatform(std::string platform_secret)
      : platform_secret_(std::move(platform_secret)) {}

  // Seals `plaintext` to `enclave`'s identity. `iv_seed` makes the IV
  // deterministic for reproducible tests; production callers pass entropy.
  SealedBlob seal(const Enclave& enclave,
                  const std::vector<std::uint8_t>& plaintext,
                  std::uint64_t iv_seed) const;

  // Unseals; throws SecurityFault when the calling enclave's measurement
  // does not match the sealing policy or the blob was tampered with.
  std::vector<std::uint8_t> unseal(const Enclave& enclave,
                                   const SealedBlob& blob) const;

 private:
  Sha256::Digest derive_key(const Sha256::Digest& mr_enclave) const;
  Sha256::Digest compute_mac(const Sha256::Digest& key,
                             const SealedBlob& blob) const;
  static void apply_keystream(const Sha256::Digest& key,
                              const std::vector<std::uint8_t>& iv,
                              std::vector<std::uint8_t>& data);

  std::string platform_secret_;
};

}  // namespace msv::sgx
