#include "sgx/attestation.h"

#include <cstring>

namespace msv::sgx {
namespace {

Sha256::Digest hmac_like(const std::string& key, const Report& report) {
  // HMAC-ish construction: H(key || report || key). Sufficient for a
  // simulation where the "hardware" key never leaves this process.
  Sha256 h;
  h.update(key);
  h.update(report.mr_enclave.data(), report.mr_enclave.size());
  h.update(report.user_data.data(), report.user_data.size());
  h.update(key);
  return h.finish();
}

}  // namespace

Report QuotingEnclave::create_report(const Enclave& enclave,
                                     const std::string& user_data) {
  Report r;
  r.mr_enclave = enclave.measurement();
  const std::size_t n = std::min(user_data.size(), r.user_data.size());
  std::memcpy(r.user_data.data(), user_data.data(), n);
  return r;
}

Quote QuotingEnclave::quote(const Report& report) const {
  return Quote{report, mac_report(report)};
}

Sha256::Digest QuotingEnclave::mac_report(const Report& report) const {
  return hmac_like(platform_key_, report);
}

bool QuotingEnclave::verify(const Quote& quote, const std::string& platform_key,
                            const Sha256::Digest& expected_measurement) {
  if (quote.report.mr_enclave != expected_measurement) return false;
  return hmac_like(platform_key, quote.report) == quote.mac;
}

}  // namespace msv::sgx
