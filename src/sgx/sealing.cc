#include "sgx/sealing.h"

#include "support/bytes.h"
#include "support/error.h"

namespace msv::sgx {

std::vector<std::uint8_t> SealedBlob::serialize() const {
  ByteBuffer buf;
  buf.put_bytes(mr_enclave.data(), mr_enclave.size());
  buf.put_varint(iv.size());
  buf.put_bytes(iv.data(), iv.size());
  buf.put_varint(ciphertext.size());
  buf.put_bytes(ciphertext.data(), ciphertext.size());
  buf.put_bytes(mac.data(), mac.size());
  return buf.take();
}

SealedBlob SealedBlob::deserialize(const std::vector<std::uint8_t>& bytes) {
  // A sealed blob is read back from *untrusted* storage: every length is
  // attacker-controlled, so a corrupt blob must fail typed (SecurityFault)
  // and bounded — resize() on an unchecked varint could be asked for
  // 2^64 bytes before the MAC ever gets a look.
  const auto corrupt = [](const std::string& why) -> SecurityFault {
    return SecurityFault("corrupt sealed blob: " + why);
  };
  ByteReader r(bytes.data(), bytes.size());
  SealedBlob blob;
  if (r.remaining() < blob.mr_enclave.size()) throw corrupt("truncated header");
  r.get_bytes(blob.mr_enclave.data(), blob.mr_enclave.size());
  const auto bounded_len = [&](const char* field) -> std::size_t {
    std::uint64_t n = 0;
    try {
      n = r.get_varint();
    } catch (const RuntimeFault&) {
      throw corrupt(std::string("truncated ") + field + " length");
    }
    if (n > r.remaining()) {
      throw corrupt(std::string(field) + " length exceeds blob size");
    }
    return static_cast<std::size_t>(n);
  };
  blob.iv.resize(bounded_len("iv"));
  r.get_bytes(blob.iv.data(), blob.iv.size());
  blob.ciphertext.resize(bounded_len("ciphertext"));
  r.get_bytes(blob.ciphertext.data(), blob.ciphertext.size());
  if (r.remaining() < blob.mac.size()) throw corrupt("truncated MAC");
  r.get_bytes(blob.mac.data(), blob.mac.size());
  if (!r.done()) throw corrupt("trailing bytes");
  return blob;
}

namespace {

// Explicit little-endian serialization for hashed integers: hashing raw
// object bytes would make keystreams and MACs differ across host
// endianness, breaking sealed-blob portability.
void update_le64(Sha256& h, std::uint64_t v) {
  std::uint8_t le[8];
  for (int i = 0; i < 8; ++i) {
    le[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
  h.update(le, sizeof(le));
}

}  // namespace

Sha256::Digest SealingPlatform::derive_key(
    const Sha256::Digest& mr_enclave) const {
  // EGETKEY with KEYPOLICY.MRENCLAVE: key = KDF(fuse key, measurement).
  Sha256 h;
  h.update(platform_secret_);
  h.update("seal-key-v1");
  h.update(mr_enclave.data(), mr_enclave.size());
  return h.finish();
}

void SealingPlatform::apply_keystream(const Sha256::Digest& key,
                                      const std::vector<std::uint8_t>& iv,
                                      std::vector<std::uint8_t>& data) {
  // CTR-mode stream cipher over SHA-256 blocks.
  Sha256::Digest block{};
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i % block.size() == 0) {
      Sha256 h;
      h.update(key.data(), key.size());
      h.update(iv.data(), iv.size());
      update_le64(h, i / block.size());
      block = h.finish();
    }
    data[i] ^= block[i % block.size()];
  }
}

Sha256::Digest SealingPlatform::compute_mac(const Sha256::Digest& key,
                                            const SealedBlob& blob) const {
  // Every variable-length field is length-framed: hashing bare
  // iv || ciphertext would let an attacker slide bytes across the field
  // boundary (shorten the iv, prepend those bytes to the ciphertext)
  // without changing the MAC input. v2 also drops the redundant trailing
  // key of v1 — the key already keys the hash from the front, and feeding
  // it in twice adds nothing but a fixed-offset copy of secret material.
  Sha256 h;
  h.update(key.data(), key.size());
  h.update("seal-mac-v2");
  h.update(blob.mr_enclave.data(), blob.mr_enclave.size());
  update_le64(h, blob.iv.size());
  h.update(blob.iv.data(), blob.iv.size());
  update_le64(h, blob.ciphertext.size());
  h.update(blob.ciphertext.data(), blob.ciphertext.size());
  return h.finish();
}

SealedBlob SealingPlatform::seal(const Enclave& enclave,
                                 const std::vector<std::uint8_t>& plaintext,
                                 std::uint64_t iv_seed) const {
  SealedBlob blob;
  blob.mr_enclave = enclave.measurement();
  blob.iv.resize(16);
  for (std::size_t i = 0; i < blob.iv.size(); ++i) {
    blob.iv[i] = static_cast<std::uint8_t>(iv_seed >> ((i % 8) * 8)) ^
                 static_cast<std::uint8_t>(i * 37);
  }
  blob.ciphertext = plaintext;
  const Sha256::Digest key = derive_key(blob.mr_enclave);
  apply_keystream(key, blob.iv, blob.ciphertext);
  blob.mac = compute_mac(key, blob);
  return blob;
}

std::vector<std::uint8_t> SealingPlatform::unseal(const Enclave& enclave,
                                                  const SealedBlob& blob) const {
  if (blob.mr_enclave != enclave.measurement()) {
    throw SecurityFault(
        "unseal: blob sealed to a different enclave identity");
  }
  const Sha256::Digest key = derive_key(blob.mr_enclave);
  if (compute_mac(key, blob) != blob.mac) {
    throw SecurityFault("unseal: sealed blob failed authentication");
  }
  std::vector<std::uint8_t> plaintext = blob.ciphertext;
  apply_keystream(key, blob.iv, plaintext);
  return plaintext;
}

}  // namespace msv::sgx
