#include "sgx/sealing.h"

#include "support/bytes.h"
#include "support/error.h"

namespace msv::sgx {

std::vector<std::uint8_t> SealedBlob::serialize() const {
  ByteBuffer buf;
  buf.put_bytes(mr_enclave.data(), mr_enclave.size());
  buf.put_varint(iv.size());
  buf.put_bytes(iv.data(), iv.size());
  buf.put_varint(ciphertext.size());
  buf.put_bytes(ciphertext.data(), ciphertext.size());
  buf.put_bytes(mac.data(), mac.size());
  return buf.take();
}

SealedBlob SealedBlob::deserialize(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes.data(), bytes.size());
  SealedBlob blob;
  r.get_bytes(blob.mr_enclave.data(), blob.mr_enclave.size());
  blob.iv.resize(r.get_varint());
  r.get_bytes(blob.iv.data(), blob.iv.size());
  blob.ciphertext.resize(r.get_varint());
  r.get_bytes(blob.ciphertext.data(), blob.ciphertext.size());
  r.get_bytes(blob.mac.data(), blob.mac.size());
  MSV_CHECK_MSG(r.done(), "trailing bytes in sealed blob");
  return blob;
}

Sha256::Digest SealingPlatform::derive_key(
    const Sha256::Digest& mr_enclave) const {
  // EGETKEY with KEYPOLICY.MRENCLAVE: key = KDF(fuse key, measurement).
  Sha256 h;
  h.update(platform_secret_);
  h.update("seal-key-v1");
  h.update(mr_enclave.data(), mr_enclave.size());
  return h.finish();
}

void SealingPlatform::apply_keystream(const Sha256::Digest& key,
                                      const std::vector<std::uint8_t>& iv,
                                      std::vector<std::uint8_t>& data) {
  // CTR-mode stream cipher over SHA-256 blocks.
  Sha256::Digest block{};
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i % block.size() == 0) {
      Sha256 h;
      h.update(key.data(), key.size());
      h.update(iv.data(), iv.size());
      const std::uint64_t counter = i / block.size();
      h.update(&counter, sizeof(counter));
      block = h.finish();
    }
    data[i] ^= block[i % block.size()];
  }
}

Sha256::Digest SealingPlatform::compute_mac(const Sha256::Digest& key,
                                            const SealedBlob& blob) const {
  Sha256 h;
  h.update(key.data(), key.size());
  h.update("seal-mac-v1");
  h.update(blob.mr_enclave.data(), blob.mr_enclave.size());
  h.update(blob.iv.data(), blob.iv.size());
  h.update(blob.ciphertext.data(), blob.ciphertext.size());
  h.update(key.data(), key.size());
  return h.finish();
}

SealedBlob SealingPlatform::seal(const Enclave& enclave,
                                 const std::vector<std::uint8_t>& plaintext,
                                 std::uint64_t iv_seed) const {
  SealedBlob blob;
  blob.mr_enclave = enclave.measurement();
  blob.iv.resize(16);
  for (std::size_t i = 0; i < blob.iv.size(); ++i) {
    blob.iv[i] = static_cast<std::uint8_t>(iv_seed >> ((i % 8) * 8)) ^
                 static_cast<std::uint8_t>(i * 37);
  }
  blob.ciphertext = plaintext;
  const Sha256::Digest key = derive_key(blob.mr_enclave);
  apply_keystream(key, blob.iv, blob.ciphertext);
  blob.mac = compute_mac(key, blob);
  return blob;
}

std::vector<std::uint8_t> SealingPlatform::unseal(const Enclave& enclave,
                                                  const SealedBlob& blob) const {
  if (blob.mr_enclave != enclave.measurement()) {
    throw SecurityFault(
        "unseal: blob sealed to a different enclave identity");
  }
  const Sha256::Digest key = derive_key(blob.mr_enclave);
  if (compute_mac(key, blob) != blob.mac) {
    throw SecurityFault("unseal: sealed blob failed authentication");
  }
  std::vector<std::uint8_t> plaintext = blob.ciphertext;
  apply_keystream(key, blob.iv, plaintext);
  return plaintext;
}

}  // namespace msv::sgx
