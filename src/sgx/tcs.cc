#include "sgx/tcs.h"

#include <algorithm>

#include "sched/scheduler.h"

namespace msv::sgx {

TcsPool::TcsPool(Env& env, TcsConfig config) : env_(env), config_(config) {
  MSV_CHECK_MSG(config_.slots > 0, "enclave needs at least one TCS");
}

void TcsPool::configure(const TcsConfig& config) {
  MSV_CHECK_MSG(in_use_ == 0 && waiters_.empty() && granted_.empty() &&
                    seized_held_ == 0,
                "TCS pool reconfigured while calls are in flight");
  MSV_CHECK_MSG(config.slots > 0, "enclave needs at least one TCS");
  config_ = config;
}

void TcsPool::acquire() {
  ++stats_.acquisitions;
  // Fast path: a genuinely free slot and nobody queued ahead of us. A
  // slot handed off but not yet claimed (granted_) is already counted in
  // in_use_, so pending grants must NOT close the fast path: when the
  // queue drains during a nested ocall a grant can sit unclaimed for a
  // long simulated while, and gating on granted_.empty() made every
  // fresh caller queue behind an unrelated future release — spurious
  // tcs_waits and wait_cycles charged against a pool with idle slots.
  if (in_use_ + seized_held_ < config_.slots && waiters_.empty()) {
    ++in_use_;
    stats_.max_in_use = std::max(stats_.max_in_use, in_use_);
    return;
  }
  const bool can_block = config_.on_exhaustion == TcsConfig::OnExhaustion::kBlock &&
                         sched_ != nullptr && sched_->in_task();
  if (!can_block) {
    ++stats_.out_of_tcs_failures;
    throw OutOfTcsError("all " + std::to_string(config_.slots) +
                        " TCS busy (SGX_ERROR_OUT_OF_TCS)");
  }
  ++stats_.waits;
  // TCS-wait span: covers exactly the queued window (the uncontended fast
  // path above records nothing). Closes via RAII even when cancellation
  // unwinds out of the suspend loop.
  telemetry::SpanScope span(env_.telemetry.tracer(),
                            telemetry::Category::kTcs,
                            env_.telemetry.names().tcs_wait);
  const Cycles queued_at = env_.clock.now();
  const std::uint64_t me = sched_->current();
  waiters_.push_back(me);
  stats_.max_waiters = std::max(stats_.max_waiters, waiters_.size());
  try {
    // Parked until release() hands us a slot (FIFO). The granted_ set
    // closes the race between the handoff and this task actually running.
    while (std::find(granted_.begin(), granted_.end(), me) == granted_.end()) {
      sched_->suspend();
    }
  } catch (...) {
    // Cancelled while queued (or while holding an unclaimed grant): give
    // the slot onward so surviving waiters are not stranded.
    auto w = std::find(waiters_.begin(), waiters_.end(), me);
    if (w != waiters_.end()) waiters_.erase(w);
    auto g = std::find(granted_.begin(), granted_.end(), me);
    if (g != granted_.end()) {
      granted_.erase(g);
      --in_use_;
      slot_freed();
    }
    throw;
  }
  granted_.erase(std::find(granted_.begin(), granted_.end(), me));
  stats_.wait_cycles += env_.clock.now() - queued_at;
}

void TcsPool::release() {
  MSV_CHECK_MSG(in_use_ > 0, "TCS release without acquire");
  --in_use_;
  slot_freed();
}

// A freed slot feeds a pending seizure first (a fault window draining the
// pool), then is handed directly to the first waiter, else returns to the
// pool. Granting re-raises in_use_, so a handoff leaves it net-constant —
// exactly the pre-seizure accounting.
void TcsPool::slot_freed() {
  if (seized_held_ < seized_target_) {
    ++seized_held_;
    return;
  }
  if (!waiters_.empty() && sched_ != nullptr) {
    const std::uint64_t next = waiters_.front();
    waiters_.pop_front();
    granted_.push_back(next);
    ++in_use_;
    sched_->wake(next);
  }
}

void TcsPool::set_seized(std::uint32_t target) {
  MSV_CHECK_MSG(target < config_.slots,
                "TCS seizure must leave at least one slot");
  seized_target_ = target;
  // Take free slots now; any remainder arrives through slot_freed().
  while (seized_held_ < seized_target_ &&
         in_use_ + seized_held_ < config_.slots) {
    ++seized_held_;
  }
  // Shrinking: returned slots go to queued waiters before the free pool.
  while (seized_held_ > seized_target_) {
    --seized_held_;
    slot_freed();
  }
}

struct SwitchlessRing::Waiters {
  explicit Waiters(sched::Scheduler& sched) : workers(sched), space(sched) {}
  sched::WaitQueue workers;  // workers parked on an empty ring
  sched::WaitQueue space;    // callers parked on a full ring
};

SwitchlessRing::SwitchlessRing(Env& env, sched::Scheduler& sched,
                               SwitchlessConfig config)
    : env_(env),
      sched_(sched),
      config_(config),
      waiters_(std::make_unique<Waiters>(sched)) {
  MSV_CHECK_MSG(config_.ring_capacity > 0, "switchless ring needs capacity");
  MSV_CHECK_MSG(config_.workers > 0, "switchless ring needs workers");
}

SwitchlessRing::~SwitchlessRing() = default;

void SwitchlessRing::push(Request* r) {
  while (queue_.size() >= config_.ring_capacity) {
    ++stats_.full_stalls;
    waiters_->space.wait();
  }
  r->enqueued_at = env_.clock.now();
  queue_.push_back(r);
  ++stats_.enqueued;
  stats_.max_depth = std::max(stats_.max_depth, queue_.size());
  waiters_->workers.notify_one();
}

SwitchlessRing::Request* SwitchlessRing::pop() {
  if (queue_.empty()) return nullptr;
  Request* r = queue_.front();
  queue_.pop_front();
  ++stats_.served;
  stats_.queue_wait_cycles += env_.clock.now() - r->enqueued_at;
  waiters_->space.notify_one();
  return r;
}

void SwitchlessRing::shutdown_kick() { waiters_->workers.notify_all(); }

bool SwitchlessRing::withdraw(Request* r) {
  auto it = std::find(queue_.begin(), queue_.end(), r);
  if (it == queue_.end()) return false;
  queue_.erase(it);
  return true;
}

void SwitchlessRing::wait_for_work() {
  const Cycles idle_start = env_.clock.now();
  waiters_->workers.wait();
  if (queue_.empty()) return;  // raced another worker, or a shutdown kick
  // Counted only when there is work: an empty wake (race / shutdown) is
  // bookkeeping, not a modeled futex wake, and charges nothing — so
  // wake_charge_cycles == worker_wakeups * switchless_wake_cycles exactly.
  ++stats_.worker_wakeups;
  if (config_.policy == SwitchlessConfig::WakePolicy::kSleepWake) {
    // The enqueuer issued a futex wake; the worker eats the syscall +
    // scheduling latency before it can touch the ring.
    env_.clock.advance(env_.cost.switchless_wake_cycles);
    stats_.wake_charge_cycles += env_.cost.switchless_wake_cycles;
  } else {
    // Busy-wait: the worker core spun for the whole idle window. now()
    // cannot have moved backwards, and the spin burns a dedicated core,
    // not the serving timeline — attribute, don't advance.
    stats_.idle_spin_cycles += env_.clock.now() - idle_start;
  }
}

}  // namespace msv::sgx
