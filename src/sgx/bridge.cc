#include "sgx/bridge.h"

#include "support/error.h"

namespace msv::sgx {

TransitionBridge::TransitionBridge(Env& env, Enclave& enclave)
    : env_(env), enclave_(enclave) {}

void TransitionBridge::register_ecall(const std::string& name,
                                      Handler handler) {
  MSV_CHECK_MSG(ecalls_.emplace(name, std::move(handler)).second,
                "duplicate ecall registration: " + name);
}

void TransitionBridge::register_ocall(const std::string& name,
                                      Handler handler) {
  MSV_CHECK_MSG(ocalls_.emplace(name, std::move(handler)).second,
                "duplicate ocall registration: " + name);
}

bool TransitionBridge::has_ecall(const std::string& name) const {
  return ecalls_.count(name) != 0;
}

bool TransitionBridge::has_ocall(const std::string& name) const {
  return ocalls_.count(name) != 0;
}

void TransitionBridge::set_switchless(const std::string& name, bool enabled) {
  switchless_[name] = enabled;
}

ByteBuffer TransitionBridge::ecall(const std::string& name,
                                   const ByteBuffer& request) {
  if (side() != Side::kUntrusted) {
    throw SecurityFault("ecall '" + name + "' issued from inside the enclave");
  }
  if (enclave_.state() != EnclaveState::kInitialized) {
    throw SecurityFault("ecall into uninitialized enclave " + enclave_.name());
  }
  return call(name, request, /*is_ecall=*/true);
}

ByteBuffer TransitionBridge::ocall(const std::string& name,
                                   const ByteBuffer& request) {
  if (side() != Side::kTrusted) {
    throw SecurityFault("ocall '" + name + "' issued from untrusted code");
  }
  return call(name, request, /*is_ecall=*/false);
}

ByteBuffer TransitionBridge::call(const std::string& name,
                                  const ByteBuffer& request, bool is_ecall) {
  const auto& table = is_ecall ? ecalls_ : ocalls_;
  const auto it = table.find(name);
  if (it == table.end()) {
    throw RuntimeFault(std::string("no ") + (is_ecall ? "ecall" : "ocall") +
                       " named '" + name + "' in the EDL");
  }

  const auto sw = switchless_.find(name);
  const bool switchless = sw != switchless_.end() && sw->second;

  // Transition cost: either the hardware EENTER/EEXIT pair or the
  // switchless worker handshake, plus the bridge routine dispatch.
  if (switchless) {
    env_.clock.advance(env_.cost.switchless_call_cycles);
    ++stats_.switchless_calls;
  } else {
    env_.clock.advance(is_ecall ? env_.cost.ecall_cycles
                                : env_.cost.ocall_cycles);
  }
  env_.clock.advance(env_.cost.edge_call_cycles);

  // Request marshalling: the bridge copies the payload across the boundary
  // (into the enclave for ecalls, out of it for ocalls).
  env_.clock.advance(static_cast<Cycles>(static_cast<double>(request.size()) *
                                         env_.cost.edge_copy_cycles_per_byte));

  if (is_ecall) {
    ++stats_.ecalls;
    stats_.bytes_in += request.size();
  } else {
    ++stats_.ocalls;
    stats_.bytes_out += request.size();
  }
  auto& per_call = stats_.per_call[name];
  ++per_call.calls;
  per_call.bytes_in += request.size();

  side_stack_.push_back(is_ecall ? Side::kTrusted : Side::kUntrusted);
  switchless_stack_.push_back(switchless);
  ByteBuffer response;
  try {
    ByteReader reader(request);
    response = it->second(reader);
  } catch (...) {
    side_stack_.pop_back();
    switchless_stack_.pop_back();
    throw;
  }
  side_stack_.pop_back();
  switchless_stack_.pop_back();

  // Response marshalling back to the caller.
  env_.clock.advance(static_cast<Cycles>(static_cast<double>(response.size()) *
                                         env_.cost.edge_copy_cycles_per_byte));
  if (is_ecall) {
    stats_.bytes_out += response.size();
  } else {
    stats_.bytes_in += response.size();
  }
  per_call.bytes_out += response.size();
  return response;
}

}  // namespace msv::sgx
