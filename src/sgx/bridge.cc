#include "sgx/bridge.h"

#include "faults/injector.h"
#include "sched/scheduler.h"
#include "support/error.h"
#include "telemetry/flight.h"

namespace msv::sgx {

TransitionBridge::TransitionBridge(Env& env, Enclave& enclave)
    : env_(env), enclave_(enclave) {
  // Typical interfaces are a few dozen entries (relays + shim + GC);
  // reserving ahead keeps registration from rehashing the interner.
  ids_.reserve(64);
  names_.reserve(64);
}

CallId TransitionBridge::intern(const std::string& name) {
  const auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  const auto id = static_cast<CallId>(names_.size());
  ids_.emplace(name, id);
  names_.push_back(name);
  Slot& slot = slots_.emplace_back();
  // Resolve the telemetry identity here, at registration: the transition
  // span carries the call name verbatim and the category from the prefix
  // registry (relays -> rmi, GC helpers -> gc, everything else bridge;
  // msvlint MSV008 flags names the registry would miss).
  slot.span_name = env_.telemetry.tracer().intern(name);
  telemetry::Category category = telemetry::Category::kBridge;
  (void)telemetry::category_for_call(name, &category);
  slot.span_category = category;
  return id;
}

CallId TransitionBridge::register_raw(const std::string& name,
                                      RawHandler handler, bool is_ecall) {
  const CallId id = intern(name);
  RawHandler& slot = is_ecall ? slots_[id].ecall : slots_[id].ocall;
  MSV_CHECK_MSG(!slot, std::string("duplicate ") +
                           (is_ecall ? "ecall" : "ocall") +
                           " registration: " + name);
  slot = std::move(handler);
  return id;
}

CallId TransitionBridge::register_ecall(const std::string& name,
                                        Handler handler) {
  return register_raw(
      name,
      [h = std::move(handler)](ByteReader& in, ByteBuffer& out) {
        out = h(in);
      },
      /*is_ecall=*/true);
}

CallId TransitionBridge::register_ocall(const std::string& name,
                                        Handler handler) {
  return register_raw(
      name,
      [h = std::move(handler)](ByteReader& in, ByteBuffer& out) {
        out = h(in);
      },
      /*is_ecall=*/false);
}

CallId TransitionBridge::register_ecall_raw(const std::string& name,
                                            RawHandler handler) {
  return register_raw(name, std::move(handler), /*is_ecall=*/true);
}

CallId TransitionBridge::register_ocall_raw(const std::string& name,
                                            RawHandler handler) {
  return register_raw(name, std::move(handler), /*is_ecall=*/false);
}

bool TransitionBridge::has_ecall(const std::string& name) const {
  const auto it = ids_.find(name);
  return it != ids_.end() && static_cast<bool>(slots_[it->second].ecall);
}

bool TransitionBridge::has_ocall(const std::string& name) const {
  const auto it = ids_.find(name);
  return it != ids_.end() && static_cast<bool>(slots_[it->second].ocall);
}

CallId TransitionBridge::find_call(const std::string& name) const {
  const auto it = ids_.find(name);
  return it == ids_.end() ? kNoCallId : it->second;
}

CallId TransitionBridge::ecall_id(const std::string& name) const {
  const CallId id = find_call(name);
  if (id == kNoCallId || !slots_[id].ecall) {
    throw RuntimeFault("no ecall named '" + name + "' in the EDL");
  }
  return id;
}

CallId TransitionBridge::ocall_id(const std::string& name) const {
  const CallId id = find_call(name);
  if (id == kNoCallId || !slots_[id].ocall) {
    throw RuntimeFault("no ocall named '" + name + "' in the EDL");
  }
  return id;
}

const std::string& TransitionBridge::call_name(CallId id) const {
  MSV_CHECK_MSG(id < names_.size(), "bad call id");
  return names_[id];
}

void TransitionBridge::set_switchless(const std::string& name, bool enabled) {
  slots_[intern(name)].switchless = enabled;
}

void TransitionBridge::set_switchless(CallId id, bool enabled) {
  MSV_CHECK_MSG(id < slots_.size(), "bad call id");
  slots_[id].switchless = enabled;
}

void TransitionBridge::check_ecall_entry(const std::string& name) const {
  if (side() != Side::kUntrusted) {
    throw SecurityFault("ecall '" + name + "' issued from inside the enclave");
  }
  if (enclave_.state() == EnclaveState::kLost) {
    // Typed so the serving layer can distinguish "restart and retry" from
    // a genuine security violation.
    throw EnclaveLostError("ecall '" + name + "' into lost enclave " +
                           enclave_.name() +
                           " (SGX_ERROR_ENCLAVE_LOST); restart required");
  }
  if (enclave_.state() != EnclaveState::kInitialized) {
    throw SecurityFault("ecall into uninitialized enclave " + enclave_.name());
  }
}

// The string-dispatch shim is deprecated in the header; its definitions
// (and nothing else here) still refer to it.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
ByteBuffer TransitionBridge::ecall(const std::string& name,
                                   const ByteBuffer& request) {
  check_ecall_entry(name);
  ByteBuffer response;
  call(ecall_id(name), request, response, /*is_ecall=*/true);
  return response;
}

ByteBuffer TransitionBridge::ocall(const std::string& name,
                                   const ByteBuffer& request) {
  if (side() != Side::kTrusted) {
    throw SecurityFault("ocall '" + name + "' issued from untrusted code");
  }
  ByteBuffer response;
  call(ocall_id(name), request, response, /*is_ecall=*/false);
  return response;
}
#pragma GCC diagnostic pop

void TransitionBridge::ecall(CallId id, const ByteBuffer& request,
                             ByteBuffer& response) {
  MSV_CHECK_MSG(id < slots_.size(), "bad call id");
  check_ecall_entry(names_[id]);
  if (!slots_[id].ecall) {
    throw RuntimeFault("no ecall named '" + names_[id] + "' in the EDL");
  }
  call(id, request, response, /*is_ecall=*/true);
}

void TransitionBridge::ocall(CallId id, const ByteBuffer& request,
                             ByteBuffer& response) {
  MSV_CHECK_MSG(id < slots_.size(), "bad call id");
  if (side() != Side::kTrusted) {
    throw SecurityFault("ocall '" + names_[id] +
                        "' issued from untrusted code");
  }
  if (!slots_[id].ocall) {
    throw RuntimeFault("no ocall named '" + names_[id] + "' in the EDL");
  }
  call(id, request, response, /*is_ecall=*/false);
}

TransitionBridge::CallCtx& TransitionBridge::ctx() const {
  if (sched_ != nullptr && sched_->in_task()) {
    return task_ctxs_[sched_->current()];
  }
  return main_ctx_;
}

void TransitionBridge::call(CallId id, const ByteBuffer& request,
                            ByteBuffer& response, bool is_ecall) {
  Slot& slot = slots_[id];

  // Fault window poll: fires every due plan event (pressure windows open/
  // close, transition failures throw). Enclave-loss events are deferred to
  // the mid-ecall poll in execute_call.
  if (injector_ != nullptr) injector_->on_transition_start();

  // Flight ring (DESIGN.md §16): every transition leaves a breadcrumb in
  // the enclave's bounded ring so a post-mortem shows what crossed the
  // boundary right before a loss. Disarmed = one pointer test.
  if (telemetry::FlightBus* bus = env_.telemetry.flight()) {
    if (flight_rec_ == nullptr) {
      flight_rec_ = &bus->recorder(enclave_.name());
    }
    flight_rec_->record(telemetry::FlightEventKind::kBridge, names_[id],
                        static_cast<std::int64_t>(request.size()),
                        is_ecall ? 1 : 0);
  }

  // Transition span: covers handshake, TCS acquisition, copies and the
  // handler — including the parked wait on the ring path (the span lives
  // on the calling task's stack, so it brackets the whole round trip).
  telemetry::SpanScope span(env_.telemetry.tracer(), slot.span_category,
                            slot.span_name);

  if (slot.switchless) {
    // Ring path: with workers running and a task to park, the request is
    // queued to a persistent worker on the other side. Otherwise — the
    // single-caller shape — the handshake plus inline execution models
    // the dedicated worker responding instantly, with identical charges.
    SwitchlessRing* ring = is_ecall ? ecall_ring_.get() : ocall_ring_.get();
    if (workers_running_ && ring != nullptr && sched_ != nullptr &&
        sched_->in_task()) {
      call_via_ring(*ring, id, request, response);
      return;
    }
    env_.clock.advance(env_.cost.switchless_call_cycles);
    slot.stats.transition_cycles += env_.cost.switchless_call_cycles;
    execute_call(slot, request, response, is_ecall, /*switchless=*/true);
    return;
  }

  if (is_ecall) {
    // EENTER binds a TCS for the whole ecall — held across nested ocalls,
    // which re-enter through the same one; a nested ecall from an ocall
    // handler takes a second slot, as on hardware. A free slot costs zero
    // cycles (the binding is part of the EENTER cost below), so the
    // uncontended path is cycle-identical to the pre-pool bridge.
    TcsPool& tcs = enclave_.tcs();
    tcs.acquire();
    try {
      charge_transition(env_.cost.ecall_cycles);
      slot.stats.transition_cycles += env_.cost.ecall_cycles;
      execute_call(slot, request, response, /*is_ecall=*/true,
                   /*switchless=*/false);
    } catch (...) {
      tcs.release();
      throw;
    }
    tcs.release();
    return;
  }

  charge_transition(env_.cost.ocall_cycles);
  slot.stats.transition_cycles += env_.cost.ocall_cycles;
  execute_call(slot, request, response, /*is_ecall=*/false,
               /*switchless=*/false);
}

// Charges a hardware transition window. Outside tasks this advances the
// shared clock — the pre-scheduler behaviour, cycle-exact with the seed.
// Inside a task the EENTER/EEXIT microcode spin occupies only the calling
// thread's core, so it is realized as a sleep on the scheduler: work of
// other tasks overlaps the window, and a TCS held across it is genuinely
// contended — which is what makes slot starvation observable under load
// (DESIGN.md §8). For a lone task the sleep advances the clock by exactly
// the same cycles, so single-caller totals are unchanged.
void TransitionBridge::charge_transition(Cycles cycles) {
  if (sched_ != nullptr && sched_->in_task()) {
    sched_->sleep_for(cycles);
  } else {
    env_.clock.advance(cycles);
  }
}

void TransitionBridge::execute_call(Slot& slot, const ByteBuffer& request,
                                    ByteBuffer& response, bool is_ecall,
                                    bool switchless) {
  if (switchless) ++stats_.switchless_calls;
  env_.clock.advance(env_.cost.edge_call_cycles);
  slot.stats.transition_cycles += env_.cost.edge_call_cycles;

  // Request marshalling: the bridge copies the payload across the boundary
  // (into the enclave for ecalls, out of it for ocalls).
  env_.clock.advance(static_cast<Cycles>(static_cast<double>(request.size()) *
                                         env_.cost.edge_copy_cycles_per_byte));

  if (is_ecall) {
    ++stats_.ecalls;
    stats_.bytes_in += request.size();
  } else {
    ++stats_.ocalls;
    stats_.bytes_out += request.size();
  }
  ++slot.stats.calls;
  slot.stats.bytes_in += request.size();

  // Mid-ecall fault poll: the payload is inside, the TCS is bound, the
  // handler is about to run — the point where SGX_ERROR_ENCLAVE_LOST
  // bites. A thrown loss unwinds through the TCS release in call().
  if (is_ecall && injector_ != nullptr) injector_->on_ecall_entry();

  // Per-task call context: stable reference (node-based map), valid even
  // if the handler suspends and other tasks create contexts meanwhile.
  CallCtx& c = ctx();
  c.side_stack.push_back(is_ecall ? Side::kTrusted : Side::kUntrusted);
  c.switchless_stack.push_back(switchless);
  response.clear();
  try {
    ByteReader reader(request);
    (is_ecall ? slot.ecall : slot.ocall)(reader, response);
  } catch (...) {
    c.side_stack.pop_back();
    c.switchless_stack.pop_back();
    throw;
  }
  c.side_stack.pop_back();
  c.switchless_stack.pop_back();

  // Response marshalling back to the caller.
  env_.clock.advance(static_cast<Cycles>(static_cast<double>(response.size()) *
                                         env_.cost.edge_copy_cycles_per_byte));
  if (is_ecall) {
    stats_.bytes_out += response.size();
  } else {
    stats_.bytes_in += response.size();
  }
  slot.stats.bytes_out += response.size();
}

void TransitionBridge::call_via_ring(SwitchlessRing& ring, CallId id,
                                     const ByteBuffer& request,
                                     ByteBuffer& response) {
  // Caller half of the handshake: write the descriptor, signal, park.
  env_.clock.advance(env_.cost.switchless_call_cycles);
  slots_[id].stats.transition_cycles += env_.cost.switchless_call_cycles;
  telemetry::Tracer& tracer = env_.telemetry.tracer();
  SwitchlessRing::Request r;
  r.call_id = id;
  r.request = &request;
  r.response = &response;
  r.caller = sched_->current();
  // The descriptor carries the caller's trace context across the ring so
  // the worker's service span joins this call's tree (one causal RMI).
  if (env_.telemetry.tracing_enabled()) r.trace = tracer.current_context();
  {
    // Ring-hop span: enqueue through completion, i.e. queue wait plus
    // service time as seen from the calling task.
    telemetry::SpanScope hop(tracer, telemetry::Category::kSwitchless,
                             env_.telemetry.names().swl_ring);
    ring.push(&r);
    try {
      while (!r.done) sched_->suspend();
    } catch (...) {
      // Cancelled while parked: withdraw the stack descriptor. If a worker
      // already popped it, the worker is on the same cancelled timeline and
      // unwinds without ever touching it again.
      ring.withdraw(&r);
      throw;
    }
  }
  if (r.error != nullptr) std::rethrow_exception(r.error);
}

void TransitionBridge::run_switchless_worker(SwitchlessRing& ring,
                                             bool is_ecall_ring) {
  for (;;) {
    if (ring.empty()) {
      if (workers_stop_) return;
      ring.wait_for_work();
      continue;
    }
    SwitchlessRing::Request* r = ring.pop();
    if (r == nullptr) continue;
    Slot& slot = slots_[r->call_id];
    try {
      // Service span, adopted under the caller's context carried in the
      // descriptor: the worker task's work renders inside the caller's
      // call tree, not as a disconnected root.
      telemetry::AdoptedSpanScope serve(env_.telemetry.tracer(), r->trace,
                                        telemetry::Category::kSwitchless,
                                        env_.telemetry.names().swl_serve);
      // The worker runs in its own call context: baseline untrusted, so
      // an ecall-ring worker pushing kTrusted mirrors the persistent
      // in-enclave thread executing the request.
      execute_call(slot, *r->request, *r->response, is_ecall_ring,
                   /*switchless=*/true);
    } catch (const sched::TaskCancelled&) {
      // Teardown: the descriptor's owner may already be unwound — exit
      // without touching it.
      throw;
    } catch (...) {
      r->error = std::current_exception();
    }
    r->done = true;
    sched_->wake(r->caller);
  }
}

void TransitionBridge::attach_scheduler(sched::Scheduler& sched) {
  sched_ = &sched;
  enclave_.tcs().attach_scheduler(&sched);
}

void TransitionBridge::start_switchless_workers(
    const SwitchlessConfig& ecall_ring, const SwitchlessConfig& ocall_ring) {
  MSV_CHECK_MSG(sched_ != nullptr,
                "start_switchless_workers needs an attached scheduler");
  MSV_CHECK_MSG(!workers_running_, "switchless workers already running");
  workers_stop_ = false;
  ecall_ring_ = std::make_unique<SwitchlessRing>(env_, *sched_, ecall_ring);
  ocall_ring_ = std::make_unique<SwitchlessRing>(env_, *sched_, ocall_ring);
  for (std::uint32_t i = 0; i < ecall_ring.workers; ++i) {
    sched_->spawn_daemon(
        "swl-ecall-worker-" + std::to_string(i),
        [this] { run_switchless_worker(*ecall_ring_, /*is_ecall_ring=*/true); });
  }
  for (std::uint32_t i = 0; i < ocall_ring.workers; ++i) {
    sched_->spawn_daemon(
        "swl-ocall-worker-" + std::to_string(i),
        [this] { run_switchless_worker(*ocall_ring_, /*is_ecall_ring=*/false); });
  }
  workers_running_ = true;
}

void TransitionBridge::stop_switchless_workers() {
  if (!workers_running_) return;
  MSV_CHECK_MSG(!sched_->in_task(),
                "stop_switchless_workers from inside a task");
  workers_stop_ = true;
  ecall_ring_->shutdown_kick();
  ocall_ring_->shutdown_kick();
  // Workers are daemons: this drains any queued requests and retires them.
  sched_->run();
  // Fold the retired rings' stats into the persistent accumulators, then
  // drop the rings so switchless calls fall back to the inline path.
  for (const SwitchlessRing* ring : {ecall_ring_.get(), ocall_ring_.get()}) {
    const SwitchlessRingStats& s = ring->stats();
    ring_accum_.enqueued += s.enqueued;
    ring_accum_.served += s.served;
    ring_accum_.queue_wait_cycles += s.queue_wait_cycles;
    ring_accum_.worker_wakeups += s.worker_wakeups;
    ring_accum_.idle_spin_cycles += s.idle_spin_cycles;
    ring_accum_.wake_charge_cycles += s.wake_charge_cycles;
    ring_accum_.full_stalls += s.full_stalls;
  }
  ecall_ring_.reset();
  ocall_ring_.reset();
  workers_running_ = false;
  workers_stop_ = false;
}

const SwitchlessRingStats* TransitionBridge::ecall_ring_stats() const {
  return ecall_ring_ == nullptr ? nullptr : &ecall_ring_->stats();
}

const SwitchlessRingStats* TransitionBridge::ocall_ring_stats() const {
  return ocall_ring_ == nullptr ? nullptr : &ocall_ring_->stats();
}

const BridgeStats& TransitionBridge::stats() const {
  const TcsStats& t = enclave_.tcs().stats();
  stats_.tcs_waits = t.waits;
  stats_.tcs_wait_cycles = t.wait_cycles;
  stats_.out_of_tcs_errors = t.out_of_tcs_failures;
  SwitchlessRingStats merged = ring_accum_;
  for (const SwitchlessRing* ring : {ecall_ring_.get(), ocall_ring_.get()}) {
    if (ring == nullptr) continue;
    const SwitchlessRingStats& s = ring->stats();
    merged.enqueued += s.enqueued;
    merged.queue_wait_cycles += s.queue_wait_cycles;
    merged.worker_wakeups += s.worker_wakeups;
    merged.idle_spin_cycles += s.idle_spin_cycles;
    merged.wake_charge_cycles += s.wake_charge_cycles;
  }
  stats_.switchless_enqueued = merged.enqueued;
  stats_.switchless_queue_wait_cycles = merged.queue_wait_cycles;
  stats_.switchless_worker_wakeups = merged.worker_wakeups;
  stats_.switchless_idle_spin_cycles = merged.idle_spin_cycles;
  stats_.switchless_wake_charge_cycles = merged.wake_charge_cycles;
  stats_.per_call.clear();
  for (CallId id = 0; id < slots_.size(); ++id) {
    const CallStats& s = slots_[id].stats;
    if (s.calls != 0) stats_.per_call.emplace(names_[id], s);
  }
  return stats_;
}

}  // namespace msv::sgx
