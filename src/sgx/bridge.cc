#include "sgx/bridge.h"

#include "support/error.h"

namespace msv::sgx {

TransitionBridge::TransitionBridge(Env& env, Enclave& enclave)
    : env_(env), enclave_(enclave) {
  // Typical interfaces are a few dozen entries (relays + shim + GC);
  // reserving ahead keeps registration from rehashing the interner.
  ids_.reserve(64);
  names_.reserve(64);
}

CallId TransitionBridge::intern(const std::string& name) {
  const auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  const auto id = static_cast<CallId>(names_.size());
  ids_.emplace(name, id);
  names_.push_back(name);
  slots_.emplace_back();
  return id;
}

CallId TransitionBridge::register_raw(const std::string& name,
                                      RawHandler handler, bool is_ecall) {
  const CallId id = intern(name);
  RawHandler& slot = is_ecall ? slots_[id].ecall : slots_[id].ocall;
  MSV_CHECK_MSG(!slot, std::string("duplicate ") +
                           (is_ecall ? "ecall" : "ocall") +
                           " registration: " + name);
  slot = std::move(handler);
  return id;
}

CallId TransitionBridge::register_ecall(const std::string& name,
                                        Handler handler) {
  return register_raw(
      name,
      [h = std::move(handler)](ByteReader& in, ByteBuffer& out) {
        out = h(in);
      },
      /*is_ecall=*/true);
}

CallId TransitionBridge::register_ocall(const std::string& name,
                                        Handler handler) {
  return register_raw(
      name,
      [h = std::move(handler)](ByteReader& in, ByteBuffer& out) {
        out = h(in);
      },
      /*is_ecall=*/false);
}

CallId TransitionBridge::register_ecall_raw(const std::string& name,
                                            RawHandler handler) {
  return register_raw(name, std::move(handler), /*is_ecall=*/true);
}

CallId TransitionBridge::register_ocall_raw(const std::string& name,
                                            RawHandler handler) {
  return register_raw(name, std::move(handler), /*is_ecall=*/false);
}

bool TransitionBridge::has_ecall(const std::string& name) const {
  const auto it = ids_.find(name);
  return it != ids_.end() && static_cast<bool>(slots_[it->second].ecall);
}

bool TransitionBridge::has_ocall(const std::string& name) const {
  const auto it = ids_.find(name);
  return it != ids_.end() && static_cast<bool>(slots_[it->second].ocall);
}

CallId TransitionBridge::find_call(const std::string& name) const {
  const auto it = ids_.find(name);
  return it == ids_.end() ? kNoCallId : it->second;
}

CallId TransitionBridge::ecall_id(const std::string& name) const {
  const CallId id = find_call(name);
  if (id == kNoCallId || !slots_[id].ecall) {
    throw RuntimeFault("no ecall named '" + name + "' in the EDL");
  }
  return id;
}

CallId TransitionBridge::ocall_id(const std::string& name) const {
  const CallId id = find_call(name);
  if (id == kNoCallId || !slots_[id].ocall) {
    throw RuntimeFault("no ocall named '" + name + "' in the EDL");
  }
  return id;
}

const std::string& TransitionBridge::call_name(CallId id) const {
  MSV_CHECK_MSG(id < names_.size(), "bad call id");
  return names_[id];
}

void TransitionBridge::set_switchless(const std::string& name, bool enabled) {
  slots_[intern(name)].switchless = enabled;
}

void TransitionBridge::set_switchless(CallId id, bool enabled) {
  MSV_CHECK_MSG(id < slots_.size(), "bad call id");
  slots_[id].switchless = enabled;
}

void TransitionBridge::check_ecall_entry(const std::string& name) const {
  if (side() != Side::kUntrusted) {
    throw SecurityFault("ecall '" + name + "' issued from inside the enclave");
  }
  if (enclave_.state() != EnclaveState::kInitialized) {
    throw SecurityFault("ecall into uninitialized enclave " + enclave_.name());
  }
}

ByteBuffer TransitionBridge::ecall(const std::string& name,
                                   const ByteBuffer& request) {
  check_ecall_entry(name);
  ByteBuffer response;
  call(ecall_id(name), request, response, /*is_ecall=*/true);
  return response;
}

ByteBuffer TransitionBridge::ocall(const std::string& name,
                                   const ByteBuffer& request) {
  if (side() != Side::kTrusted) {
    throw SecurityFault("ocall '" + name + "' issued from untrusted code");
  }
  ByteBuffer response;
  call(ocall_id(name), request, response, /*is_ecall=*/false);
  return response;
}

void TransitionBridge::ecall(CallId id, const ByteBuffer& request,
                             ByteBuffer& response) {
  MSV_CHECK_MSG(id < slots_.size(), "bad call id");
  check_ecall_entry(names_[id]);
  if (!slots_[id].ecall) {
    throw RuntimeFault("no ecall named '" + names_[id] + "' in the EDL");
  }
  call(id, request, response, /*is_ecall=*/true);
}

void TransitionBridge::ocall(CallId id, const ByteBuffer& request,
                             ByteBuffer& response) {
  MSV_CHECK_MSG(id < slots_.size(), "bad call id");
  if (side() != Side::kTrusted) {
    throw SecurityFault("ocall '" + names_[id] +
                        "' issued from untrusted code");
  }
  if (!slots_[id].ocall) {
    throw RuntimeFault("no ocall named '" + names_[id] + "' in the EDL");
  }
  call(id, request, response, /*is_ecall=*/false);
}

void TransitionBridge::call(CallId id, const ByteBuffer& request,
                            ByteBuffer& response, bool is_ecall) {
  Slot& slot = slots_[id];
  const bool switchless = slot.switchless;

  // Transition cost: either the hardware EENTER/EEXIT pair or the
  // switchless worker handshake, plus the bridge routine dispatch.
  if (switchless) {
    env_.clock.advance(env_.cost.switchless_call_cycles);
    ++stats_.switchless_calls;
  } else {
    env_.clock.advance(is_ecall ? env_.cost.ecall_cycles
                                : env_.cost.ocall_cycles);
  }
  env_.clock.advance(env_.cost.edge_call_cycles);

  // Request marshalling: the bridge copies the payload across the boundary
  // (into the enclave for ecalls, out of it for ocalls).
  env_.clock.advance(static_cast<Cycles>(static_cast<double>(request.size()) *
                                         env_.cost.edge_copy_cycles_per_byte));

  if (is_ecall) {
    ++stats_.ecalls;
    stats_.bytes_in += request.size();
  } else {
    ++stats_.ocalls;
    stats_.bytes_out += request.size();
  }
  ++slot.stats.calls;
  slot.stats.bytes_in += request.size();

  side_stack_.push_back(is_ecall ? Side::kTrusted : Side::kUntrusted);
  switchless_stack_.push_back(switchless);
  response.clear();
  try {
    ByteReader reader(request);
    (is_ecall ? slot.ecall : slot.ocall)(reader, response);
  } catch (...) {
    side_stack_.pop_back();
    switchless_stack_.pop_back();
    throw;
  }
  side_stack_.pop_back();
  switchless_stack_.pop_back();

  // Response marshalling back to the caller.
  env_.clock.advance(static_cast<Cycles>(static_cast<double>(response.size()) *
                                         env_.cost.edge_copy_cycles_per_byte));
  if (is_ecall) {
    stats_.bytes_out += response.size();
  } else {
    stats_.bytes_in += response.size();
  }
  slot.stats.bytes_out += response.size();
}

const BridgeStats& TransitionBridge::stats() const {
  stats_.per_call.clear();
  for (CallId id = 0; id < slots_.size(); ++id) {
    const CallStats& s = slots_[id].stats;
    if (s.calls != 0) stats_.per_call.emplace(names_[id], s);
  }
  return stats_;
}

}  // namespace msv::sgx
