// Transition profiling, in the spirit of sgx-perf [55].
//
// The paper cites sgx-perf for the cost of enclave transitions; the tool's
// key feature is per-call-site transition statistics plus recommendations
// (e.g. "this hot, small-payload call should be switchless"). The bridge
// already collects per-call statistics; this module turns them into the
// report and the recommendation list, which feeds the §7 switchless mode.
#pragma once

#include <string>
#include <vector>

#include "sgx/bridge.h"
#include "support/cost_model.h"

namespace msv::sgx {

struct TransitionProfileEntry {
  std::string name;
  std::uint64_t calls = 0;
  double avg_payload_bytes = 0;
  // Estimated cycles spent on pure transition overhead (EENTER/EEXIT +
  // bridge dispatch) for this call, over the whole run.
  Cycles transition_overhead_cycles = 0;
  bool recommend_switchless = false;
};

struct TransitionProfile {
  std::vector<TransitionProfileEntry> entries;  // sorted by overhead, desc
  Cycles total_overhead_cycles = 0;
  // Overhead that would remain if every recommended call went switchless.
  Cycles overhead_after_switchless_cycles = 0;
};

// Analyzes bridge statistics. A call is recommended for switchless
// serving when it is hot (>= min_calls) and its payloads are small enough
// that the transition dominates (< small_payload_bytes) — the sgx-perf
// heuristic.
TransitionProfile profile_transitions(const BridgeStats& stats,
                                      const CostModel& cost,
                                      std::uint64_t min_calls = 1000,
                                      std::uint64_t small_payload_bytes = 512);

// Renders the profile as the sgx-perf-style report table.
std::string transition_report(const TransitionProfile& profile,
                              const CostModel& cost);

}  // namespace msv::sgx
