// Transition profiling, in the spirit of sgx-perf [55].
//
// The paper cites sgx-perf for the cost of enclave transitions; the tool's
// key feature is per-call-site transition statistics plus recommendations
// (e.g. "this hot, small-payload call should be switchless"). The bridge
// collects measured per-call transition cycles; this module turns the
// telemetry registry's msv_bridge_call_* series into the report and the
// recommendation list, which feeds the §7 switchless mode.
#pragma once

#include <string>
#include <vector>

#include "sgx/bridge.h"
#include "support/cost_model.h"
#include "telemetry/telemetry.h"

namespace msv::sgx {

struct TransitionProfileEntry {
  std::string name;
  std::uint64_t calls = 0;
  double avg_payload_bytes = 0;
  // Cycles spent on pure transition overhead (EENTER/EEXIT or switchless
  // handshake, plus edge dispatch) for this call, over the whole run.
  // Exclusive: a parent call's figure never includes the bridge time of
  // calls nested under it — that time is reported under the nested calls'
  // own entries, so summing entries never double-counts.
  Cycles transition_overhead_cycles = 0;
  bool recommend_switchless = false;
};

struct TransitionProfile {
  std::vector<TransitionProfileEntry> entries;  // sorted by overhead, desc
  Cycles total_overhead_cycles = 0;
  // Overhead that would remain if every recommended call went switchless.
  Cycles overhead_after_switchless_cycles = 0;
};

// Analyzes the msv_bridge_call_* series of a metrics registry (what
// telemetry::publish_bridge emits). Prefers the bridge's measured
// per-call transition cycles — exclusive by construction, and reflecting
// how each call was actually served (hardware transition vs switchless
// ring) — over the constant estimate, which is kept only as a fallback
// for hand-built stats with no measurement. A call is recommended for
// switchless serving when it is hot (>= min_calls) and its payloads are
// small enough that the transition dominates (< small_payload_bytes) —
// the sgx-perf heuristic.
TransitionProfile profile_transitions(const telemetry::MetricsRegistry& metrics,
                                      const CostModel& cost,
                                      std::uint64_t min_calls = 1000,
                                      std::uint64_t small_payload_bytes = 512);

// Convenience overload: publishes `stats` into a scratch registry first.
TransitionProfile profile_transitions(const BridgeStats& stats,
                                      const CostModel& cost,
                                      std::uint64_t min_calls = 1000,
                                      std::uint64_t small_payload_bytes = 512);

// Renders the profile as the sgx-perf-style report table.
std::string transition_report(const TransitionProfile& profile,
                              const CostModel& cost);

}  // namespace msv::sgx
