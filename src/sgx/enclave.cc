#include "sgx/enclave.h"

#include "support/error.h"
#include "telemetry/flight.h"

namespace msv::sgx {

Enclave::Enclave(Env& env, std::string name, Sha256::Digest measurement,
                 std::uint64_t image_bytes, std::uint64_t heap_max_bytes,
                 std::uint64_t stack_bytes, TcsConfig tcs)
    : env_(env),
      name_(std::move(name)),
      measurement_(measurement),
      image_bytes_(image_bytes),
      heap_max_bytes_(heap_max_bytes),
      stack_bytes_(stack_bytes),
      epc_(env),
      tcs_(env, tcs) {
  // ECREATE + EADD/EEXTEND of every image page: the loader hashes the whole
  // blob into MRENCLAVE before EINIT.
  env_.clock.advance(env_.cost.enclave_create_base_cycles);
  env_.clock.advance(static_cast<Cycles>(
      static_cast<double>(image_bytes) *
      env_.cost.enclave_measure_cycles_per_byte));
}

void Enclave::init(const Sha256::Digest& expected) {
  MSV_CHECK_MSG(state_ == EnclaveState::kCreated,
                "enclave already initialized or destroyed");
  if (expected != measurement_) {
    throw SecurityFault("EINIT: measurement mismatch for enclave " + name_);
  }
  state_ = EnclaveState::kInitialized;
}

void Enclave::destroy() {
  MSV_CHECK_MSG(state_ != EnclaveState::kDestroyed, "enclave destroyed twice");
  state_ = EnclaveState::kDestroyed;
}

void Enclave::mark_lost() {
  MSV_CHECK_MSG(state_ == EnclaveState::kInitialized ||
                    state_ == EnclaveState::kLost,
                "only a running enclave can be lost");
  const bool first = state_ != EnclaveState::kLost;
  if (first) ++lost_count_;
  state_ = EnclaveState::kLost;
  // Freeze the flight ring the instant the enclave dies — by the time the
  // recovery ladder runs, the ring would already be full of recovery
  // traffic. One pointer test when no bus is armed.
  if (telemetry::FlightBus* bus = env_.telemetry.flight();
      bus != nullptr && first) {
    bus->recorder(name_).record(telemetry::FlightEventKind::kLifecycle,
                                "enclave.lost",
                                static_cast<std::int64_t>(epoch_),
                                static_cast<std::int64_t>(lost_count_));
    bus->snapshot(name_, "enclave_lost",
                  {{"epoch", std::to_string(epoch_)},
                   {"lost_count", std::to_string(lost_count_)}});
  }
}

void Enclave::restart(const Sha256::Digest& expected) {
  MSV_CHECK_MSG(state_ == EnclaveState::kLost,
                "restart is only legal on a lost enclave");
  // The old incarnation's EPC frames are gone with the enclave.
  epc_.invalidate_all();
  // The loader rebuilds from scratch: ECREATE, then EADD/EEXTEND of every
  // image page — the same measurement cost the constructor charged.
  env_.clock.advance(env_.cost.enclave_create_base_cycles);
  env_.clock.advance(static_cast<Cycles>(
      static_cast<double>(image_bytes_) *
      env_.cost.enclave_measure_cycles_per_byte));
  if (expected != measurement_) {
    throw SecurityFault("EINIT: measurement mismatch for enclave " + name_);
  }
  state_ = EnclaveState::kInitialized;
  ++epoch_;
  if (telemetry::FlightBus* bus = env_.telemetry.flight()) {
    bus->recorder(name_).record(telemetry::FlightEventKind::kLifecycle,
                                "enclave.restart",
                                static_cast<std::int64_t>(epoch_),
                                static_cast<std::int64_t>(lost_count_));
    bus->snapshot(name_, "restart",
                  {{"epoch", std::to_string(epoch_)},
                   {"lost_count", std::to_string(lost_count_)}});
  }
}

std::uint64_t EnclaveDomain::register_region(const std::string&) {
  return next_region_++;
}

void EnclaveDomain::charge_traffic(std::uint64_t bytes) {
  // Same DRAM-level cost as outside, multiplied by the MEE factor: every
  // cache line crossing the CPU boundary is encrypted/decrypted.
  env_.clock.advance(static_cast<Cycles>(static_cast<double>(bytes) *
                                         env_.cost.dram_cycles_per_byte *
                                         env_.cost.mee_traffic_factor));
}

void EnclaveDomain::touch_pages(std::uint64_t region, std::uint64_t first_page,
                                std::uint64_t n_pages) {
  for (std::uint64_t i = 0; i < n_pages; ++i) {
    enclave_.epc().access(region, first_page + i);
  }
}

}  // namespace msv::sgx
