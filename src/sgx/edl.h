// Enclave Definition Language model + Edger8r-style generation (§2.1, §5.3).
//
// Montsalvat's SGX code generator emits an EDL file describing every ecall
// and ocall (the relay transitions plus the shim's libc relays), and the
// Intel SDK's Edger8r turns that file into C bridge routines. This module
// reproduces both artifacts: EdlSpec::to_edl_text() renders the .edl source,
// and Edger8r renders the C stubs (as text, for inspection and the SGX
// module's "link" step) and counts the generated routines.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace msv::sgx {

enum class EdlDirection { kIn, kOut, kInOut, kUserCheck };

struct EdlParam {
  std::string c_type;  // e.g. "int", "const char*"
  std::string name;
  EdlDirection direction = EdlDirection::kIn;
  // For pointer parameters: the name of the size expression, empty for
  // value parameters.
  std::string size_expr;

  bool is_pointer() const { return c_type.find('*') != std::string::npos; }
};

struct EdlFunction {
  std::string name;
  std::string return_type = "void";
  std::vector<EdlParam> params;
  bool switchless = false;
};

// The interface of one enclave: trusted functions are ecalls, untrusted
// functions are ocalls.
struct EdlSpec {
  std::string enclave_name;
  std::vector<EdlFunction> trusted;
  std::vector<EdlFunction> untrusted;

  void add_ecall(EdlFunction fn) { trusted.push_back(std::move(fn)); }
  void add_ocall(EdlFunction fn) { untrusted.push_back(std::move(fn)); }
  bool has_ecall(const std::string& name) const;
  bool has_ocall(const std::string& name) const;

  // Renders the .edl source text.
  std::string to_edl_text() const;
};

// Generated bridge code for one enclave interface.
struct EdgeRoutines {
  std::string trusted_source;    // <name>_t.c — ecall dispatch + ocall stubs
  std::string untrusted_source;  // <name>_u.c — ecall stubs + ocall dispatch
  std::string header;            // shared prototypes
  std::uint64_t routine_count = 0;
};

// The Edger8r tool: EDL in, C bridge routines out.
EdgeRoutines edger8r_generate(const EdlSpec& spec);

}  // namespace msv::sgx
