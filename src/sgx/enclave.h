// The simulated SGX enclave.
//
// An Enclave is created from a measured blob (the linked trusted image plus
// shim, see sgx/sgx_module.h), owns the EPC model for its protected memory,
// and exposes an EnclaveDomain that the trusted isolate's heap uses for
// memory-cost accounting (MEE traffic factor + EPC paging).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sgx/epc.h"
#include "sgx/tcs.h"
#include "sim/domain.h"
#include "sim/env.h"
#include "support/sha256.h"

namespace msv::sgx {

enum class EnclaveState { kCreated, kInitialized, kDestroyed };

class Enclave {
 public:
  // `measurement` is MRENCLAVE: the SHA-256 accumulated over the pages
  // EADDed by the loader. `heap_max_bytes`/`stack_bytes`/`tcs` mirror the
  // enclave configuration XML of the SDK (the paper uses 4 GB / 8 MB).
  Enclave(Env& env, std::string name, Sha256::Digest measurement,
          std::uint64_t image_bytes,
          std::uint64_t heap_max_bytes = 4ull << 30,
          std::uint64_t stack_bytes = 8ull << 20, TcsConfig tcs = {});

  Enclave(const Enclave&) = delete;
  Enclave& operator=(const Enclave&) = delete;

  // EINIT: verifies the launch measurement and makes the enclave callable.
  // Throws SecurityFault when `expected` does not match MRENCLAVE —
  // modelling the load-time verification of the signed enclave (§2.1).
  void init(const Sha256::Digest& expected);

  void destroy();

  const std::string& name() const { return name_; }
  const Sha256::Digest& measurement() const { return measurement_; }
  EnclaveState state() const { return state_; }
  std::uint64_t heap_max_bytes() const { return heap_max_bytes_; }
  std::uint64_t stack_bytes() const { return stack_bytes_; }
  std::uint64_t image_bytes() const { return image_bytes_; }

  EpcModel& epc() { return epc_; }
  const EpcModel& epc() const { return epc_; }
  TcsPool& tcs() { return tcs_; }
  const TcsPool& tcs() const { return tcs_; }
  Env& env() { return env_; }

 private:
  Env& env_;
  std::string name_;
  Sha256::Digest measurement_;
  std::uint64_t image_bytes_;
  std::uint64_t heap_max_bytes_;
  std::uint64_t stack_bytes_;
  EpcModel epc_;
  TcsPool tcs_;
  EnclaveState state_ = EnclaveState::kCreated;
};

// MemoryDomain implementation backed by an enclave: memory traffic pays the
// MEE factor and page touches go through the EPC model.
class EnclaveDomain final : public MemoryDomain {
 public:
  EnclaveDomain(Env& env, Enclave& enclave)
      : MemoryDomain(env), enclave_(enclave) {}

  bool trusted() const override { return true; }

  std::uint64_t register_region(const std::string& name) override;

  void charge_traffic(std::uint64_t bytes) override;

  void touch_pages(std::uint64_t region, std::uint64_t first_page,
                   std::uint64_t n_pages) override;

  Enclave& enclave() { return enclave_; }

 private:
  Enclave& enclave_;
  std::uint64_t next_region_ = 1;
};

}  // namespace msv::sgx
