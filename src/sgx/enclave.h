// The simulated SGX enclave.
//
// An Enclave is created from a measured blob (the linked trusted image plus
// shim, see sgx/sgx_module.h), owns the EPC model for its protected memory,
// and exposes an EnclaveDomain that the trusted isolate's heap uses for
// memory-cost accounting (MEE traffic factor + EPC paging).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sgx/epc.h"
#include "sgx/tcs.h"
#include "sim/domain.h"
#include "sim/env.h"
#include "support/error.h"
#include "support/sha256.h"

namespace msv::sgx {

// The SGX_ERROR_ENCLAVE_LOST analog: the enclave was destroyed out from
// under a caller (power transition, AEX the runtime could not resume). The
// CPU-held state is gone; the host must rebuild the enclave and restore
// state from sealed storage. Transient — the call can be retried once the
// enclave has been restarted.
class EnclaveLostError : public RuntimeFault {
 public:
  explicit EnclaveLostError(const std::string& what) : RuntimeFault(what) {}
};

// A transiently failed transition (EENTER/EEXIT interrupted before the
// handler ran): no enclave state was touched, retrying is always safe.
class TransitionError : public RuntimeFault {
 public:
  explicit TransitionError(const std::string& what) : RuntimeFault(what) {}
};

// kLost: the hardware dropped the enclave (SGX_ERROR_ENCLAVE_LOST). All
// in-enclave state is gone; only restart() leads back to kInitialized.
enum class EnclaveState { kCreated, kInitialized, kLost, kDestroyed };

class Enclave {
 public:
  // `measurement` is MRENCLAVE: the SHA-256 accumulated over the pages
  // EADDed by the loader. `heap_max_bytes`/`stack_bytes`/`tcs` mirror the
  // enclave configuration XML of the SDK (the paper uses 4 GB / 8 MB).
  Enclave(Env& env, std::string name, Sha256::Digest measurement,
          std::uint64_t image_bytes,
          std::uint64_t heap_max_bytes = 4ull << 30,
          std::uint64_t stack_bytes = 8ull << 20, TcsConfig tcs = {});

  Enclave(const Enclave&) = delete;
  Enclave& operator=(const Enclave&) = delete;

  // EINIT: verifies the launch measurement and makes the enclave callable.
  // Throws SecurityFault when `expected` does not match MRENCLAVE —
  // modelling the load-time verification of the signed enclave (§2.1).
  void init(const Sha256::Digest& expected);

  void destroy();

  // Models the platform dropping the enclave (power event / unrecoverable
  // AEX): every page of enclave memory and every TCS binding is void. The
  // next ecall observes EnclaveLostError until restart() completes.
  void mark_lost();

  // Rebuilds a lost enclave: ECREATE + EADD/EEXTEND over the same image
  // (the full measurement cost is paid again) and EINIT against
  // `expected`. EPC residency is cleared — the old frames died with the
  // enclave — and the epoch advances, invalidating references minted
  // against the previous incarnation.
  void restart(const Sha256::Digest& expected);

  // Incarnation counter: 1 for the initial build, +1 per restart().
  // Cross-isolate proxies record the epoch they were minted under so a
  // stale reference faults cleanly instead of dispatching into state that
  // no longer exists.
  std::uint64_t epoch() const { return epoch_; }
  std::uint64_t lost_count() const { return lost_count_; }

  const std::string& name() const { return name_; }
  const Sha256::Digest& measurement() const { return measurement_; }
  EnclaveState state() const { return state_; }
  std::uint64_t heap_max_bytes() const { return heap_max_bytes_; }
  std::uint64_t stack_bytes() const { return stack_bytes_; }
  std::uint64_t image_bytes() const { return image_bytes_; }

  EpcModel& epc() { return epc_; }
  const EpcModel& epc() const { return epc_; }
  TcsPool& tcs() { return tcs_; }
  const TcsPool& tcs() const { return tcs_; }
  Env& env() { return env_; }

 private:
  Env& env_;
  std::string name_;
  Sha256::Digest measurement_;
  std::uint64_t image_bytes_;
  std::uint64_t heap_max_bytes_;
  std::uint64_t stack_bytes_;
  EpcModel epc_;
  TcsPool tcs_;
  EnclaveState state_ = EnclaveState::kCreated;
  std::uint64_t epoch_ = 1;
  std::uint64_t lost_count_ = 0;
};

// MemoryDomain implementation backed by an enclave: memory traffic pays the
// MEE factor and page touches go through the EPC model.
class EnclaveDomain final : public MemoryDomain {
 public:
  EnclaveDomain(Env& env, Enclave& enclave)
      : MemoryDomain(env), enclave_(enclave) {}

  bool trusted() const override { return true; }

  std::uint64_t register_region(const std::string& name) override;

  void charge_traffic(std::uint64_t bytes) override;

  void touch_pages(std::uint64_t region, std::uint64_t first_page,
                   std::uint64_t n_pages) override;

  Enclave& enclave() { return enclave_; }

 private:
  Enclave& enclave_;
  std::uint64_t next_region_ = 1;
};

}  // namespace msv::sgx
