#include "sgx/profiler.h"

#include <algorithm>

#include "support/stats.h"
#include "support/table.h"
#include "telemetry/adapters.h"

namespace msv::sgx {

namespace {

std::uint64_t series_value(const telemetry::MetricsRegistry& metrics,
                           const std::string& name,
                           const telemetry::LabelSet& labels) {
  const auto* e = metrics.find(name, labels);
  return e == nullptr ? 0 : e->counter.value;
}

}  // namespace

TransitionProfile profile_transitions(const telemetry::MetricsRegistry& metrics,
                                      const CostModel& cost,
                                      std::uint64_t min_calls,
                                      std::uint64_t small_payload_bytes) {
  TransitionProfile profile;
  for (const auto& [key, entry] : metrics.sorted_entries()) {
    if (entry->name != "msv_bridge_call_count") continue;
    const std::string& name = entry->labels.front().second;  // {call="..."}
    const std::uint64_t calls = entry->counter.value;

    TransitionProfileEntry e;
    e.name = name;
    e.calls = calls;
    const std::uint64_t bytes =
        series_value(metrics, "msv_bridge_call_bytes_in", entry->labels) +
        series_value(metrics, "msv_bridge_call_bytes_out", entry->labels);
    e.avg_payload_bytes =
        calls == 0 ? 0
                   : static_cast<double>(bytes) / static_cast<double>(calls);

    // Measured transition cycles from the bridge: only this call's own
    // handshake + edge dispatch, never the bridge time of nested calls.
    // (The old constant estimate charged a hardware transition per call
    // regardless of serving mode, so a recommended-switchless ecall with
    // nested ocalls had the nested bridge time counted both under the
    // nested calls and — through the parent's inflated constant — again
    // under the parent.)
    const Cycles measured =
        series_value(metrics, "msv_bridge_call_transition_cycles",
                     entry->labels);
    const bool is_ecall = name.rfind("ecall", 0) == 0;
    const Cycles modeled =
        ((is_ecall ? cost.ecall_cycles : cost.ocall_cycles) +
         cost.edge_call_cycles) *
        calls;
    e.transition_overhead_cycles = measured != 0 ? measured : modeled;

    e.recommend_switchless =
        calls >= min_calls &&
        e.avg_payload_bytes < static_cast<double>(small_payload_bytes);
    profile.total_overhead_cycles += e.transition_overhead_cycles;
    if (e.recommend_switchless) {
      profile.overhead_after_switchless_cycles +=
          std::min<Cycles>((cost.switchless_call_cycles +
                            cost.edge_call_cycles) *
                               calls,
                           e.transition_overhead_cycles);
    } else {
      profile.overhead_after_switchless_cycles +=
          e.transition_overhead_cycles;
    }
    profile.entries.push_back(std::move(e));
  }
  std::sort(profile.entries.begin(), profile.entries.end(),
            [](const TransitionProfileEntry& a,
               const TransitionProfileEntry& b) {
              return a.transition_overhead_cycles >
                     b.transition_overhead_cycles;
            });
  return profile;
}

TransitionProfile profile_transitions(const BridgeStats& stats,
                                      const CostModel& cost,
                                      std::uint64_t min_calls,
                                      std::uint64_t small_payload_bytes) {
  telemetry::MetricsRegistry scratch;
  telemetry::publish_bridge(scratch, stats);
  return profile_transitions(scratch, cost, min_calls, small_payload_bytes);
}

std::string transition_report(const TransitionProfile& profile,
                              const CostModel& cost) {
  Table table({"transition", "calls", "avg payload", "overhead",
               "switchless?"});
  for (const auto& e : profile.entries) {
    table.add_row({e.name, std::to_string(e.calls),
                   format_bytes(e.avg_payload_bytes),
                   format_seconds(static_cast<double>(
                                      e.transition_overhead_cycles) /
                                  cost.cpu_hz),
                   e.recommend_switchless ? "recommend" : "-"});
  }
  std::string out = "Transition profile (sgx-perf style):\n";
  out += table.to_string();
  out += "Total transition overhead: " +
         format_seconds(static_cast<double>(profile.total_overhead_cycles) /
                        cost.cpu_hz) +
         "; with recommended switchless serving: " +
         format_seconds(
             static_cast<double>(profile.overhead_after_switchless_cycles) /
             cost.cpu_hz) +
         "\n";
  return out;
}

}  // namespace msv::sgx
