#include "sgx/profiler.h"

#include <algorithm>

#include "support/stats.h"
#include "support/table.h"

namespace msv::sgx {

TransitionProfile profile_transitions(const BridgeStats& stats,
                                      const CostModel& cost,
                                      std::uint64_t min_calls,
                                      std::uint64_t small_payload_bytes) {
  TransitionProfile profile;
  for (const auto& [name, call] : stats.per_call) {
    TransitionProfileEntry e;
    e.name = name;
    e.calls = call.calls;
    e.avg_payload_bytes =
        call.calls == 0
            ? 0
            : static_cast<double>(call.bytes_in + call.bytes_out) /
                  static_cast<double>(call.calls);
    const bool is_ecall = name.rfind("ecall", 0) == 0;
    const Cycles per_call =
        (is_ecall ? cost.ecall_cycles : cost.ocall_cycles) +
        cost.edge_call_cycles;
    e.transition_overhead_cycles = per_call * call.calls;
    e.recommend_switchless =
        call.calls >= min_calls &&
        e.avg_payload_bytes < static_cast<double>(small_payload_bytes);
    profile.total_overhead_cycles += e.transition_overhead_cycles;
    if (!e.recommend_switchless) {
      profile.overhead_after_switchless_cycles +=
          e.transition_overhead_cycles;
    } else {
      profile.overhead_after_switchless_cycles +=
          cost.switchless_call_cycles * call.calls;
    }
    profile.entries.push_back(std::move(e));
  }
  std::sort(profile.entries.begin(), profile.entries.end(),
            [](const TransitionProfileEntry& a,
               const TransitionProfileEntry& b) {
              return a.transition_overhead_cycles >
                     b.transition_overhead_cycles;
            });
  return profile;
}

std::string transition_report(const TransitionProfile& profile,
                              const CostModel& cost) {
  Table table({"transition", "calls", "avg payload", "overhead",
               "switchless?"});
  for (const auto& e : profile.entries) {
    table.add_row({e.name, std::to_string(e.calls),
                   format_bytes(e.avg_payload_bytes),
                   format_seconds(static_cast<double>(
                                      e.transition_overhead_cycles) /
                                  cost.cpu_hz),
                   e.recommend_switchless ? "recommend" : "-"});
  }
  std::string out = "Transition profile (sgx-perf style):\n";
  out += table.to_string();
  out += "Total transition overhead: " +
         format_seconds(static_cast<double>(profile.total_overhead_cycles) /
                        cost.cpu_hz) +
         "; with recommended switchless serving: " +
         format_seconds(
             static_cast<double>(profile.overhead_after_switchless_cycles) /
             cost.cpu_hz) +
         "\n";
  return out;
}

}  // namespace msv::sgx
