// ecall/ocall transition machinery (§2.1, §5.4).
//
// The bridge is the runtime counterpart of the Edger8r-generated edge
// routines: named ecall handlers live on the trusted side, named ocall
// handlers on the untrusted side, and every call marshals a byte payload
// across the boundary while charging the hardware transition cost, the
// bridge dispatch cost and a per-byte copy cost to the virtual clock.
//
// Re-entrancy follows the SGX programming model: ecalls may only be issued
// from untrusted code, ocalls only from trusted code, and an ocall handler
// may issue nested ecalls (the SDK's "nested calls"), which the side stack
// tracks.
//
// The bridge also implements the paper's first future-work item (§7):
// switchless calls in the style of HotCalls / the SDK's switchless mode. A
// call marked switchless is serviced by a worker thread on the other side
// through a shared-memory request queue, replacing the 13k-cycle hardware
// transition with a much cheaper handshake.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sgx/enclave.h"
#include "sim/env.h"
#include "support/bytes.h"

namespace msv::sgx {

struct CallStats {
  std::uint64_t calls = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
};

struct BridgeStats {
  std::uint64_t ecalls = 0;
  std::uint64_t ocalls = 0;
  std::uint64_t switchless_calls = 0;
  std::uint64_t bytes_in = 0;   // payload bytes copied into the enclave
  std::uint64_t bytes_out = 0;  // payload bytes copied out of the enclave
  std::map<std::string, CallStats> per_call;
};

class TransitionBridge {
 public:
  // A handler consumes the marshalled request and produces the marshalled
  // response. Handlers run on the side that registered them.
  using Handler = std::function<ByteBuffer(ByteReader&)>;

  TransitionBridge(Env& env, Enclave& enclave);

  TransitionBridge(const TransitionBridge&) = delete;
  TransitionBridge& operator=(const TransitionBridge&) = delete;

  // Registration normally happens via Edger8r-generated tables
  // (sgx/edl.h); direct registration is exposed for tests.
  void register_ecall(const std::string& name, Handler handler);
  void register_ocall(const std::string& name, Handler handler);
  bool has_ecall(const std::string& name) const;
  bool has_ocall(const std::string& name) const;

  // Invokes trusted function `name`. Must be called from the untrusted
  // side; throws SecurityFault otherwise (the hardware would fault).
  ByteBuffer ecall(const std::string& name, const ByteBuffer& request);

  // Invokes untrusted function `name` from inside the enclave.
  ByteBuffer ocall(const std::string& name, const ByteBuffer& request);

  // Marks `name` (ecall or ocall) as switchless: subsequent invocations
  // pay the worker-handshake cost instead of a hardware transition.
  void set_switchless(const std::string& name, bool enabled);

  Side side() const { return side_stack_.back(); }
  // True while executing a handler that was invoked switchlessly (the
  // serving worker thread is persistent and stays attached to its isolate;
  // relay dispatch uses this to skip the attach cost).
  bool current_call_switchless() const { return switchless_stack_.back(); }
  const BridgeStats& stats() const { return stats_; }
  Enclave& enclave() { return enclave_; }

 private:
  ByteBuffer call(const std::string& name, const ByteBuffer& request,
                  bool is_ecall);

  Env& env_;
  Enclave& enclave_;
  std::map<std::string, Handler> ecalls_;
  std::map<std::string, Handler> ocalls_;
  std::map<std::string, bool> switchless_;
  std::vector<Side> side_stack_{Side::kUntrusted};
  std::vector<bool> switchless_stack_{false};
  BridgeStats stats_;
};

}  // namespace msv::sgx
