// ecall/ocall transition machinery (§2.1, §5.4).
//
// The bridge is the runtime counterpart of the Edger8r-generated edge
// routines: named ecall handlers live on the trusted side, named ocall
// handlers on the untrusted side, and every call marshals a byte payload
// across the boundary while charging the hardware transition cost, the
// bridge dispatch cost and a per-byte copy cost to the virtual clock.
//
// Re-entrancy follows the SGX programming model: ecalls may only be issued
// from untrusted code, ocalls only from trusted code, and an ocall handler
// may issue nested ecalls (the SDK's "nested calls"), which the side stack
// tracks.
//
// The bridge also implements the paper's first future-work item (§7):
// switchless calls in the style of HotCalls / the SDK's switchless mode. A
// call marked switchless is serviced by a worker thread on the other side
// through a shared-memory request queue, replacing the 13k-cycle hardware
// transition with a much cheaper handshake.
//
// Hot-path dispatch works on interned call IDs: registration assigns every
// call name a dense uint32_t, and handlers, switchless flags and per-call
// stats live in one flat table indexed by that ID — no string hashing or
// tree walks per call. The real Edger8r does the same thing: generated
// stubs invoke sgx_ecall(eid, ordinal, ...) with the function's table
// index, never its name. The string-keyed API remains as a thin shim (one
// interner lookup) for registration-time code and tests.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sgx/enclave.h"
#include "sgx/tcs.h"
#include "sim/env.h"
#include "support/bytes.h"

namespace msv::sched {
class Scheduler;
}

namespace msv::faults {
class FaultInjector;
}

namespace msv::telemetry {
class FlightRecorder;  // telemetry/flight.h
}

namespace msv::sgx {

// Dense index assigned at registration; the ordinal of the Edger8r table.
using CallId = std::uint32_t;
inline constexpr CallId kNoCallId = 0xffffffffu;

struct CallStats {
  std::uint64_t calls = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  // Measured bridge overhead charged by this call itself: the hardware
  // transition (or switchless handshake) plus edge dispatch. Exclusive by
  // construction — a nested ocall issued from inside an ecall handler
  // charges its *own* slot, never the parent's — which is what lets the
  // profiler report per-call overhead without double counting
  // (sgx/profiler.h).
  Cycles transition_cycles = 0;
};

struct BridgeStats {
  std::uint64_t ecalls = 0;
  std::uint64_t ocalls = 0;
  std::uint64_t switchless_calls = 0;
  std::uint64_t bytes_in = 0;   // payload bytes copied into the enclave
  std::uint64_t bytes_out = 0;  // payload bytes copied out of the enclave
  // ---- Serving layer (merged from TcsPool / SwitchlessRing on access) ----
  std::uint64_t tcs_waits = 0;            // ecalls that queued for a TCS
  Cycles tcs_wait_cycles = 0;             // total TCS queueing delay
  std::uint64_t out_of_tcs_errors = 0;
  std::uint64_t switchless_enqueued = 0;  // calls that went through a ring
  Cycles switchless_queue_wait_cycles = 0;
  std::uint64_t switchless_worker_wakeups = 0;
  Cycles switchless_idle_spin_cycles = 0;  // busy-wait workers, idle core
  Cycles switchless_wake_charge_cycles = 0;  // sleep/wake workers
  // Name-keyed view, rebuilt from the flat per-ID table on access (the
  // table itself is ID-indexed; names only matter for reporting).
  std::map<std::string, CallStats> per_call;
};

class TransitionBridge {
 public:
  // A handler consumes the marshalled request and produces the marshalled
  // response. Handlers run on the side that registered them.
  using Handler = std::function<ByteBuffer(ByteReader&)>;
  // Hot-path variant: writes the response into a caller-provided buffer
  // (normally arena-backed) instead of returning a fresh allocation.
  using RawHandler = std::function<void(ByteReader&, ByteBuffer&)>;

  TransitionBridge(Env& env, Enclave& enclave);

  TransitionBridge(const TransitionBridge&) = delete;
  TransitionBridge& operator=(const TransitionBridge&) = delete;

  // Registration normally happens via Edger8r-generated tables
  // (sgx/edl.h); direct registration is exposed for tests. Returns the
  // interned ID callers can dispatch by.
  CallId register_ecall(const std::string& name, Handler handler);
  CallId register_ocall(const std::string& name, Handler handler);
  CallId register_ecall_raw(const std::string& name, RawHandler handler);
  CallId register_ocall_raw(const std::string& name, RawHandler handler);
  bool has_ecall(const std::string& name) const;
  bool has_ocall(const std::string& name) const;

  // Interner lookups. find_call returns kNoCallId for unknown names;
  // ecall_id/ocall_id additionally require a registered handler and throw
  // RuntimeFault otherwise.
  CallId find_call(const std::string& name) const;
  CallId ecall_id(const std::string& name) const;
  CallId ocall_id(const std::string& name) const;
  const std::string& call_name(CallId id) const;
  // Every interned call name, indexed by CallId (registration order). The
  // serving layer uses this to flag relay transitions switchless by prefix,
  // the way PartitionedApp walks its EDL spec.
  const std::vector<std::string>& call_names() const { return names_; }

  // Invokes trusted function `name`. Must be called from the untrusted
  // side; throws SecurityFault otherwise (the hardware would fault).
  [[deprecated(
      "string dispatch is a registration-time shim; hot paths resolve an "
      "ecall_id() once and use the CallId overload")]]
  ByteBuffer ecall(const std::string& name, const ByteBuffer& request);

  // Invokes untrusted function `name` from inside the enclave.
  [[deprecated(
      "string dispatch is a registration-time shim; hot paths resolve an "
      "ocall_id() once and use the CallId overload")]]
  ByteBuffer ocall(const std::string& name, const ByteBuffer& request);

  // Hot path: dispatch by interned ID; the response is written into
  // `response` (cleared first). Identical cycle charges to the string API.
  void ecall(CallId id, const ByteBuffer& request, ByteBuffer& response);
  void ocall(CallId id, const ByteBuffer& request, ByteBuffer& response);

  // Marks `name` (ecall or ocall) as switchless: subsequent invocations
  // pay the worker-handshake cost instead of a hardware transition.
  void set_switchless(const std::string& name, bool enabled);
  void set_switchless(CallId id, bool enabled);

  // ---- Serving layer (DESIGN.md §8) ----
  // Attaching a scheduler turns on concurrency-aware behaviour: call
  // side/switchless stacks become per-task, TCS exhaustion can park the
  // calling task, and switchless rings can be started. Single-task
  // programs behave exactly as without a scheduler.
  void attach_scheduler(sched::Scheduler& sched);
  sched::Scheduler* scheduler() { return sched_; }

  // ---- Fault injection (DESIGN.md §12) ----
  // Attaches a (pre-armed) fault injector: every transition polls it for
  // due events, and an ecall polls again right before the trusted handler
  // runs so enclave-loss events surface mid-ecall. nullptr detaches.
  // Without an injector the only added cost is one pointer test per call
  // — cycle totals are byte-identical to the uninstrumented bridge.
  void attach_fault_injector(faults::FaultInjector* injector) {
    injector_ = injector;
  }
  faults::FaultInjector* fault_injector() { return injector_; }

  // Spawns persistent daemon worker tasks servicing per-direction request
  // rings; switchless-marked calls issued from tasks are then enqueued and
  // executed by a worker instead of inline. Requires an attached
  // scheduler. For a single caller the cycle total of a ring call is
  // identical to the inline switchless path (the honesty contract that
  // bench/abl_switchless asserts).
  void start_switchless_workers(const SwitchlessConfig& ecall_ring,
                                const SwitchlessConfig& ocall_ring);
  // Signals workers to drain and exit, then runs the scheduler until they
  // are gone. Must be called from outside tasks. Idempotent.
  void stop_switchless_workers();
  bool switchless_workers_running() const { return workers_running_; }
  const SwitchlessRingStats* ecall_ring_stats() const;
  const SwitchlessRingStats* ocall_ring_stats() const;

  Side side() const { return ctx().side_stack.back(); }
  // True while executing a handler that was invoked switchlessly (the
  // serving worker thread is persistent and stays attached to its isolate;
  // relay dispatch uses this to skip the attach cost).
  bool current_call_switchless() const {
    return ctx().switchless_stack.back();
  }
  const BridgeStats& stats() const;
  Enclave& enclave() { return enclave_; }

 private:
  // One row of the flat dispatch table. ecall and ocall handlers share the
  // interner namespace but not the slot fields (names are disjoint in
  // practice; a name registered on both sides simply fills both).
  struct Slot {
    RawHandler ecall;
    RawHandler ocall;
    bool switchless = false;
    CallStats stats;
    // Telemetry: span name interned and category resolved once, at
    // registration (telemetry::category_for_call), so tracing costs the
    // hot path nothing beyond one enabled() branch.
    std::uint32_t span_name = 0;
    telemetry::Category span_category = telemetry::Category::kBridge;
  };

  // Call context: the side/switchless stacks of one logical thread. With
  // a scheduler attached each task gets its own (task A can sit inside an
  // ecall handler while task B is still untrusted); code running outside
  // any task uses the main context, exactly the pre-scheduler behaviour.
  struct CallCtx {
    std::vector<Side> side_stack{Side::kUntrusted};
    std::vector<bool> switchless_stack{false};
  };

  CallId intern(const std::string& name);
  CallId register_raw(const std::string& name, RawHandler handler,
                      bool is_ecall);
  void check_ecall_entry(const std::string& name) const;
  void call(CallId id, const ByteBuffer& request, ByteBuffer& response,
            bool is_ecall);
  // Hardware transition cost: advance outside tasks, sleep inside them
  // (the spin occupies the caller's core, not the shared timeline).
  void charge_transition(Cycles cycles);
  // The post-handshake portion of a call: edge dispatch, copies, handler,
  // shared between the inline path and the ring workers.
  void execute_call(Slot& slot, const ByteBuffer& request,
                    ByteBuffer& response, bool is_ecall, bool switchless);
  void call_via_ring(SwitchlessRing& ring, CallId id,
                     const ByteBuffer& request, ByteBuffer& response);
  void run_switchless_worker(SwitchlessRing& ring, bool is_ecall_ring);
  CallCtx& ctx() const;

  Env& env_;
  Enclave& enclave_;
  std::unordered_map<std::string, CallId> ids_;
  std::vector<std::string> names_;
  // Deque: slot references stay valid if a handler registers new calls.
  std::deque<Slot> slots_;
  mutable CallCtx main_ctx_;
  // Ordered map: deterministic, and entries are created per live task.
  mutable std::map<std::uint64_t, CallCtx> task_ctxs_;
  sched::Scheduler* sched_ = nullptr;
  faults::FaultInjector* injector_ = nullptr;
  // Flight-recorder ring for this enclave, resolved lazily on the first
  // call with a bus armed (telemetry.flight()); nullptr otherwise, so the
  // disarmed cost is one pointer test per transition.
  telemetry::FlightRecorder* flight_rec_ = nullptr;
  std::unique_ptr<SwitchlessRing> ecall_ring_;
  std::unique_ptr<SwitchlessRing> ocall_ring_;
  bool workers_running_ = false;
  bool workers_stop_ = false;
  // Stats of rings already torn down, folded in stop_switchless_workers.
  SwitchlessRingStats ring_accum_;
  mutable BridgeStats stats_;
};

}  // namespace msv::sgx
