// ecall/ocall transition machinery (§2.1, §5.4).
//
// The bridge is the runtime counterpart of the Edger8r-generated edge
// routines: named ecall handlers live on the trusted side, named ocall
// handlers on the untrusted side, and every call marshals a byte payload
// across the boundary while charging the hardware transition cost, the
// bridge dispatch cost and a per-byte copy cost to the virtual clock.
//
// Re-entrancy follows the SGX programming model: ecalls may only be issued
// from untrusted code, ocalls only from trusted code, and an ocall handler
// may issue nested ecalls (the SDK's "nested calls"), which the side stack
// tracks.
//
// The bridge also implements the paper's first future-work item (§7):
// switchless calls in the style of HotCalls / the SDK's switchless mode. A
// call marked switchless is serviced by a worker thread on the other side
// through a shared-memory request queue, replacing the 13k-cycle hardware
// transition with a much cheaper handshake.
//
// Hot-path dispatch works on interned call IDs: registration assigns every
// call name a dense uint32_t, and handlers, switchless flags and per-call
// stats live in one flat table indexed by that ID — no string hashing or
// tree walks per call. The real Edger8r does the same thing: generated
// stubs invoke sgx_ecall(eid, ordinal, ...) with the function's table
// index, never its name. The string-keyed API remains as a thin shim (one
// interner lookup) for registration-time code and tests.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "sgx/enclave.h"
#include "sim/env.h"
#include "support/bytes.h"

namespace msv::sgx {

// Dense index assigned at registration; the ordinal of the Edger8r table.
using CallId = std::uint32_t;
inline constexpr CallId kNoCallId = 0xffffffffu;

struct CallStats {
  std::uint64_t calls = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
};

struct BridgeStats {
  std::uint64_t ecalls = 0;
  std::uint64_t ocalls = 0;
  std::uint64_t switchless_calls = 0;
  std::uint64_t bytes_in = 0;   // payload bytes copied into the enclave
  std::uint64_t bytes_out = 0;  // payload bytes copied out of the enclave
  // Name-keyed view, rebuilt from the flat per-ID table on access (the
  // table itself is ID-indexed; names only matter for reporting).
  std::map<std::string, CallStats> per_call;
};

class TransitionBridge {
 public:
  // A handler consumes the marshalled request and produces the marshalled
  // response. Handlers run on the side that registered them.
  using Handler = std::function<ByteBuffer(ByteReader&)>;
  // Hot-path variant: writes the response into a caller-provided buffer
  // (normally arena-backed) instead of returning a fresh allocation.
  using RawHandler = std::function<void(ByteReader&, ByteBuffer&)>;

  TransitionBridge(Env& env, Enclave& enclave);

  TransitionBridge(const TransitionBridge&) = delete;
  TransitionBridge& operator=(const TransitionBridge&) = delete;

  // Registration normally happens via Edger8r-generated tables
  // (sgx/edl.h); direct registration is exposed for tests. Returns the
  // interned ID callers can dispatch by.
  CallId register_ecall(const std::string& name, Handler handler);
  CallId register_ocall(const std::string& name, Handler handler);
  CallId register_ecall_raw(const std::string& name, RawHandler handler);
  CallId register_ocall_raw(const std::string& name, RawHandler handler);
  bool has_ecall(const std::string& name) const;
  bool has_ocall(const std::string& name) const;

  // Interner lookups. find_call returns kNoCallId for unknown names;
  // ecall_id/ocall_id additionally require a registered handler and throw
  // RuntimeFault otherwise.
  CallId find_call(const std::string& name) const;
  CallId ecall_id(const std::string& name) const;
  CallId ocall_id(const std::string& name) const;
  const std::string& call_name(CallId id) const;

  // Invokes trusted function `name`. Must be called from the untrusted
  // side; throws SecurityFault otherwise (the hardware would fault).
  ByteBuffer ecall(const std::string& name, const ByteBuffer& request);

  // Invokes untrusted function `name` from inside the enclave.
  ByteBuffer ocall(const std::string& name, const ByteBuffer& request);

  // Hot path: dispatch by interned ID; the response is written into
  // `response` (cleared first). Identical cycle charges to the string API.
  void ecall(CallId id, const ByteBuffer& request, ByteBuffer& response);
  void ocall(CallId id, const ByteBuffer& request, ByteBuffer& response);

  // Marks `name` (ecall or ocall) as switchless: subsequent invocations
  // pay the worker-handshake cost instead of a hardware transition.
  void set_switchless(const std::string& name, bool enabled);
  void set_switchless(CallId id, bool enabled);

  Side side() const { return side_stack_.back(); }
  // True while executing a handler that was invoked switchlessly (the
  // serving worker thread is persistent and stays attached to its isolate;
  // relay dispatch uses this to skip the attach cost).
  bool current_call_switchless() const { return switchless_stack_.back(); }
  const BridgeStats& stats() const;
  Enclave& enclave() { return enclave_; }

 private:
  // One row of the flat dispatch table. ecall and ocall handlers share the
  // interner namespace but not the slot fields (names are disjoint in
  // practice; a name registered on both sides simply fills both).
  struct Slot {
    RawHandler ecall;
    RawHandler ocall;
    bool switchless = false;
    CallStats stats;
  };

  CallId intern(const std::string& name);
  CallId register_raw(const std::string& name, RawHandler handler,
                      bool is_ecall);
  void check_ecall_entry(const std::string& name) const;
  void call(CallId id, const ByteBuffer& request, ByteBuffer& response,
            bool is_ecall);

  Env& env_;
  Enclave& enclave_;
  std::unordered_map<std::string, CallId> ids_;
  std::vector<std::string> names_;
  // Deque: slot references stay valid if a handler registers new calls.
  std::deque<Slot> slots_;
  std::vector<Side> side_stack_{Side::kUntrusted};
  std::vector<bool> switchless_stack_{false};
  mutable BridgeStats stats_;
};

}  // namespace msv::sgx
