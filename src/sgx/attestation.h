// Remote attestation (simulated).
//
// The threat model (§4) relies on remote attestation to validate enclave
// integrity at runtime. We model the EPID/DCAP flow minimally: the enclave
// produces a REPORT (measurement + user data), the platform's quoting
// enclave MACs it into a QUOTE with a platform key, and a verifier holding
// that key checks the quote and the expected measurement.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "sgx/enclave.h"
#include "support/sha256.h"

namespace msv::sgx {

struct Report {
  Sha256::Digest mr_enclave{};
  std::array<std::uint8_t, 64> user_data{};
};

struct Quote {
  Report report;
  Sha256::Digest mac{};
};

// The platform's quoting enclave, holding the (simulated) attestation key.
class QuotingEnclave {
 public:
  explicit QuotingEnclave(std::string platform_key)
      : platform_key_(std::move(platform_key)) {}

  // EREPORT: builds a report for `enclave` binding `user_data` (e.g. a
  // channel public key) to its measurement.
  static Report create_report(const Enclave& enclave,
                              const std::string& user_data);

  Quote quote(const Report& report) const;

  // Verification as done by a relying party that trusts `platform_key`:
  // checks the MAC and that the measurement matches the expected one.
  static bool verify(const Quote& quote, const std::string& platform_key,
                     const Sha256::Digest& expected_measurement);

 private:
  Sha256::Digest mac_report(const Report& report) const;

  std::string platform_key_;
};

}  // namespace msv::sgx
