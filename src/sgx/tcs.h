// TCS slot pool and switchless request rings (serving layer, DESIGN.md §8).
//
// Every non-switchless ecall enters the enclave through a Thread Control
// Structure, and an enclave has a fixed number of them (the TCSNum of the
// SDK's enclave configuration XML). A thread holds its TCS for the whole
// ecall — across nested ocalls, which re-enter through the *same* TCS —
// so concurrent callers beyond the slot count must either wait for a slot
// or fail with SGX_ERROR_OUT_OF_TCS, per configuration. Switchless calls
// never consume a TCS: the persistent worker inside the enclave already
// holds one.
//
// SwitchlessRing models the HotCalls / SDK-switchless shared-memory queue
// for one direction (ecall requests or ocall requests): callers enqueue a
// request descriptor and park; persistent worker tasks dequeue and execute
// the handler. Workers either busy-wait on the ring (zero wake latency,
// a core burned while idle) or sleep and pay a futex-wake cost per
// wakeup — the two policies the SDK exposes.
//
// Both structures are passive bookkeeping over the simulated scheduler
// (src/sched): with no scheduler attached the pool degrades to the
// single-caller semantics of the seed (a free slot costs zero cycles, so
// cycle totals are unchanged), and the rings stay inactive.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "sim/env.h"
#include "support/bytes.h"
#include "support/error.h"

namespace msv::sched {
class Scheduler;
}

namespace msv::sgx {

// The SGX_ERROR_OUT_OF_TCS analog: every TCS is busy and the pool is
// configured to fail rather than queue the caller.
class OutOfTcsError : public RuntimeFault {
 public:
  explicit OutOfTcsError(const std::string& what) : RuntimeFault(what) {}
};

struct TcsConfig {
  // TCSNum: number of threads that can be inside the enclave at once.
  // The SDK default template uses 10; 8 matches one slot per vCPU on the
  // paper's testbed.
  std::uint32_t slots = 8;
  enum class OnExhaustion : std::uint8_t {
    kBlock,  // queue the calling task FIFO until a slot frees
    kFail,   // throw OutOfTcsError (SGX_ERROR_OUT_OF_TCS)
  };
  OnExhaustion on_exhaustion = OnExhaustion::kBlock;
};

struct TcsStats {
  std::uint64_t acquisitions = 0;
  std::uint64_t waits = 0;            // acquisitions that had to queue
  Cycles wait_cycles = 0;             // total queueing delay
  std::uint64_t out_of_tcs_failures = 0;
  std::uint32_t max_in_use = 0;
  std::size_t max_waiters = 0;
};

// FIFO pool of TCS slots. Zero-cycle when a slot is free — the TCS binding
// itself is part of the EENTER cost already charged by the bridge — so the
// uncontended path is cycle-identical to the pre-pool bridge.
class TcsPool {
 public:
  TcsPool(Env& env, TcsConfig config);

  TcsPool(const TcsPool&) = delete;
  TcsPool& operator=(const TcsPool&) = delete;

  // Reconfiguration is only legal while no call is in flight.
  void configure(const TcsConfig& config);
  // Blocking on exhaustion requires a scheduler (a task to park).
  void attach_scheduler(sched::Scheduler* sched) { sched_ = sched; }

  // Takes a slot for the calling task, queueing or throwing on exhaustion
  // as configured. Callers without a scheduler task context cannot queue
  // and always get OutOfTcsError when the pool is exhausted.
  void acquire();
  void release();

  // Withholds `target` slots from callers — external pressure (another
  // workload's threads squatting in the enclave) for fault-injection
  // bursts. Free slots are seized immediately; the remainder is taken as
  // in-flight calls release. At least one slot always stays available.
  // 0 returns every seized slot (queued waiters are granted first).
  void set_seized(std::uint32_t target);
  std::uint32_t seized() const { return seized_held_; }

  const TcsConfig& config() const { return config_; }
  std::uint32_t slots() const { return config_.slots; }
  std::uint32_t in_use() const { return in_use_; }
  const TcsStats& stats() const { return stats_; }

 private:
  // Routes one newly-free slot: pending seizure first, then the first
  // queued waiter, else back to the pool.
  void slot_freed();

  Env& env_;
  TcsConfig config_;
  sched::Scheduler* sched_ = nullptr;
  std::uint32_t in_use_ = 0;
  std::uint32_t seized_target_ = 0;
  std::uint32_t seized_held_ = 0;
  std::deque<std::uint64_t> waiters_;   // TaskId, FIFO
  std::vector<std::uint64_t> granted_;  // slots handed off, not yet claimed
  TcsStats stats_;
};

struct SwitchlessConfig {
  enum class WakePolicy : std::uint8_t {
    kBusyWait,   // worker spins on the ring: no wake cost, core burned idle
    kSleepWake,  // worker parks when empty; enqueue pays a futex wake
  };
  WakePolicy policy = WakePolicy::kBusyWait;
  std::uint32_t workers = 1;
  std::size_t ring_capacity = 64;  // enqueues beyond this stall the caller
};

struct SwitchlessRingStats {
  std::uint64_t enqueued = 0;
  std::uint64_t served = 0;
  Cycles queue_wait_cycles = 0;   // enqueue -> worker pickup
  std::uint64_t worker_wakeups = 0;
  Cycles idle_spin_cycles = 0;    // kBusyWait: idle cycles on the worker core
  Cycles wake_charge_cycles = 0;  // kSleepWake: futex wakes charged
  std::uint64_t full_stalls = 0;  // enqueues that waited for ring space
  std::size_t max_depth = 0;
};

// One direction of the switchless shared-memory queue. The ring holds
// pointers to caller-stack request descriptors (the real implementation
// passes untrusted-memory descriptors the same way); completion is
// signalled through the descriptor plus a task wake.
class SwitchlessRing {
 public:
  struct Request {
    std::uint32_t call_id = 0;  // CallId; kept as raw int to avoid a cycle
    const ByteBuffer* request = nullptr;
    ByteBuffer* response = nullptr;
    Cycles enqueued_at = 0;
    std::uint64_t caller = 0;  // TaskId to wake on completion
    // Caller's trace context: lets the worker's service span join the
    // caller's span tree across the task boundary (DESIGN.md §10).
    telemetry::TraceContext trace;
    bool done = false;
    std::exception_ptr error;
  };

  SwitchlessRing(Env& env, sched::Scheduler& sched, SwitchlessConfig config);
  ~SwitchlessRing();

  SwitchlessRing(const SwitchlessRing&) = delete;
  SwitchlessRing& operator=(const SwitchlessRing&) = delete;

  const SwitchlessConfig& config() const { return config_; }

  // Caller side: blocks while the ring is full, then enqueues and wakes a
  // worker. The descriptor must stay alive until done.
  void push(Request* r);

  // Worker side: nullptr when empty.
  Request* pop();
  // Parks the worker until push() signals; counts the wakeup and applies
  // the policy cost (idle-spin attribution or futex-wake charge). A wake
  // that finds the ring still empty — another worker won the race, or a
  // shutdown kick — is neither counted nor charged.
  void wait_for_work();
  // Wakes every parked worker so it can observe a stop flag and drain.
  void shutdown_kick();
  // Removes a still-queued descriptor (cancellation unwinding). Returns
  // false when a worker already took it.
  bool withdraw(Request* r);

  bool empty() const { return queue_.empty(); }
  std::size_t depth() const { return queue_.size(); }
  const SwitchlessRingStats& stats() const { return stats_; }

 private:
  Env& env_;
  sched::Scheduler& sched_;
  SwitchlessConfig config_;
  std::deque<Request*> queue_;
  // WaitQueue is declared in sched/scheduler.h; stored by pointer to keep
  // this header free of the scheduler's internals.
  struct Waiters;
  std::unique_ptr<Waiters> waiters_;
  SwitchlessRingStats stats_;
};

}  // namespace msv::sgx
