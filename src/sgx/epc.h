// Enclave Page Cache model (§2.1).
//
// Recent SGX processors expose a small protected memory region (93.5 MB
// usable on the paper's testbed). The kernel driver swaps pages between the
// EPC and regular DRAM when an enclave's working set exceeds it; this
// paging is very expensive (tens of thousands of cycles per page). The
// model below tracks resident pages with an LRU policy and charges page-in
// and page-out costs to the virtual clock on misses and evictions.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "sim/env.h"

namespace msv::sgx {

struct EpcStats {
  std::uint64_t accesses = 0;
  std::uint64_t faults = 0;       // page not resident, paged in
  std::uint64_t evictions = 0;    // resident page pushed out to DRAM
  std::uint64_t released = 0;     // dropped free by release_region
  std::uint64_t invalidated = 0;  // dropped free by invalidate_all
};

class EpcModel {
 public:
  // Capacity is taken from env.cost (epc_usable_bytes / page_bytes).
  explicit EpcModel(Env& env);

  // Notes an access to `page` of `region`, charging fault/eviction costs.
  void access(std::uint64_t region, std::uint64_t page);

  // Drops all pages of `region` (e.g. a GC semispace that was released);
  // no cost — the driver just reclaims the EPC pages.
  void release_region(std::uint64_t region);

  // Drops every resident page without cost: the enclave that owned them is
  // gone (SGX_ERROR_ENCLAVE_LOST), so there is nothing to write back.
  void invalidate_all();

  // External EPC pressure (other enclaves on the platform grabbing
  // frames): `n` pages are withheld from this enclave's share, shrinking
  // the effective capacity. Pages already resident beyond the shrunken
  // capacity are evicted lazily, on the next access. 0 restores the full
  // share. Must leave at least one usable page.
  void set_reserved_pages(std::uint64_t n);
  std::uint64_t reserved_pages() const { return reserved_pages_; }

  // Administrative capacity limit (the cgroup/driver-quota analog used by
  // the stress suite to shrink capacity mid-run): the enclave's share is
  // clamped to `pages` regardless of external pressure. Like reservation
  // pressure, a shrink below the resident set evicts lazily — each excess
  // page charges its page-out exactly once, on the next access (any
  // access, hit or miss: a "hit" on a page the shrunken EPC cannot hold
  // is physically impossible, so the drain happens before the lookup).
  // capacity_pages() (the default) removes the limit. Must be >= 1.
  void set_limit(std::uint64_t pages);
  std::uint64_t limit_pages() const { return limit_pages_; }

  std::uint64_t capacity_pages() const { return capacity_pages_; }
  std::uint64_t effective_capacity_pages() const {
    const std::uint64_t share = capacity_pages_ - reserved_pages_;
    return share < limit_pages_ ? share : limit_pages_;
  }
  std::uint64_t resident_pages() const { return lru_.size(); }
  const EpcStats& stats() const { return stats_; }

  // Page-count conservation: every fault brought one page in, and every
  // page left through exactly one of eviction / region release /
  // enclave-loss invalidation or is still resident. The stress suite
  // asserts this after every shrink/regrow storm; a drift means an
  // eviction was double-charged or skipped.
  bool stats_reconcile() const {
    return stats_.faults == stats_.evictions + stats_.released +
                                stats_.invalidated + lru_.size();
  }

 private:
  using Key = std::uint64_t;  // (region << 40) | page
  static Key make_key(std::uint64_t region, std::uint64_t page);

  // Evicts LRU pages until the resident set fits the effective capacity
  // (strictly, or leaving `headroom` free frames), charging page-out per
  // page.
  void drain_to_capacity(std::uint64_t headroom);

  Env& env_;
  std::uint64_t capacity_pages_;
  std::uint64_t reserved_pages_ = 0;
  std::uint64_t limit_pages_;
  // Most-recently-used at the front.
  std::list<Key> lru_;
  std::unordered_map<Key, std::list<Key>::iterator> index_;
  EpcStats stats_;
};

}  // namespace msv::sgx
