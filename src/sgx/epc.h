// Enclave Page Cache model (§2.1).
//
// Recent SGX processors expose a small protected memory region (93.5 MB
// usable on the paper's testbed). The kernel driver swaps pages between the
// EPC and regular DRAM when an enclave's working set exceeds it; this
// paging is very expensive (tens of thousands of cycles per page). The
// model below tracks resident pages with an LRU policy and charges page-in
// and page-out costs to the virtual clock on misses and evictions.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "sim/env.h"

namespace msv::sgx {

struct EpcStats {
  std::uint64_t accesses = 0;
  std::uint64_t faults = 0;     // page not resident, paged in
  std::uint64_t evictions = 0;  // resident page pushed out to DRAM
};

class EpcModel {
 public:
  // Capacity is taken from env.cost (epc_usable_bytes / page_bytes).
  explicit EpcModel(Env& env);

  // Notes an access to `page` of `region`, charging fault/eviction costs.
  void access(std::uint64_t region, std::uint64_t page);

  // Drops all pages of `region` (e.g. a GC semispace that was released);
  // no cost — the driver just reclaims the EPC pages.
  void release_region(std::uint64_t region);

  // Drops every resident page without cost: the enclave that owned them is
  // gone (SGX_ERROR_ENCLAVE_LOST), so there is nothing to write back.
  void invalidate_all();

  // External EPC pressure (other enclaves on the platform grabbing
  // frames): `n` pages are withheld from this enclave's share, shrinking
  // the effective capacity. Pages already resident beyond the shrunken
  // capacity are evicted lazily, on the next access. 0 restores the full
  // share. Must leave at least one usable page.
  void set_reserved_pages(std::uint64_t n);
  std::uint64_t reserved_pages() const { return reserved_pages_; }

  std::uint64_t capacity_pages() const { return capacity_pages_; }
  std::uint64_t effective_capacity_pages() const {
    return capacity_pages_ - reserved_pages_;
  }
  std::uint64_t resident_pages() const { return lru_.size(); }
  const EpcStats& stats() const { return stats_; }

 private:
  using Key = std::uint64_t;  // (region << 40) | page
  static Key make_key(std::uint64_t region, std::uint64_t page);

  Env& env_;
  std::uint64_t capacity_pages_;
  std::uint64_t reserved_pages_ = 0;
  // Most-recently-used at the front.
  std::list<Key> lru_;
  std::unordered_map<Key, std::list<Key>::iterator> index_;
  EpcStats stats_;
};

}  // namespace msv::sgx
