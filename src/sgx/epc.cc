#include "sgx/epc.h"

#include "support/error.h"

namespace msv::sgx {

EpcModel::EpcModel(Env& env)
    : env_(env),
      capacity_pages_(env.cost.epc_usable_bytes / env.cost.page_bytes) {
  MSV_CHECK_MSG(capacity_pages_ > 0, "EPC capacity must be at least a page");
}

EpcModel::Key EpcModel::make_key(std::uint64_t region, std::uint64_t page) {
  // Both halves must be range-checked: a region id >= 2^24 would shift
  // bits off the top and silently alias another region's keys.
  MSV_CHECK_MSG(region < (1ull << 24), "EPC region index out of range");
  MSV_CHECK_MSG(page < (1ull << 40), "EPC page index out of range");
  return (region << 40) | page;
}

void EpcModel::access(std::uint64_t region, std::uint64_t page) {
  ++stats_.accesses;
  const Key key = make_key(region, page);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  // Miss: the driver pages the frame in, evicting the LRU page if full.
  ++stats_.faults;
  {
    telemetry::SpanScope span(env_.telemetry.tracer(),
                              telemetry::Category::kEpc,
                              env_.telemetry.names().epc_page_in);
    env_.clock.advance(env_.cost.epc_page_in_cycles);
  }
  // With reserved_pages_ == 0 this runs at most once — exactly the
  // pre-pressure behaviour. A pressure spike that shrank the effective
  // capacity below the resident set drains the excess here, lazily.
  while (lru_.size() >= effective_capacity_pages()) {
    ++stats_.evictions;
    telemetry::SpanScope span(env_.telemetry.tracer(),
                              telemetry::Category::kEpc,
                              env_.telemetry.names().epc_page_out);
    env_.clock.advance(env_.cost.epc_page_out_cycles);
    index_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(key);
  index_[key] = lru_.begin();
}

void EpcModel::invalidate_all() {
  index_.clear();
  lru_.clear();
}

void EpcModel::set_reserved_pages(std::uint64_t n) {
  MSV_CHECK_MSG(n < capacity_pages_,
                "EPC pressure must leave at least one usable page");
  reserved_pages_ = n;
}

void EpcModel::release_region(std::uint64_t region) {
  for (auto it = lru_.begin(); it != lru_.end();) {
    if ((*it >> 40) == region) {
      index_.erase(*it);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace msv::sgx
