#include "sgx/epc.h"

#include "support/error.h"

namespace msv::sgx {

EpcModel::EpcModel(Env& env)
    : env_(env),
      capacity_pages_(env.cost.epc_usable_bytes / env.cost.page_bytes),
      limit_pages_(capacity_pages_) {
  MSV_CHECK_MSG(capacity_pages_ > 0, "EPC capacity must be at least a page");
}

EpcModel::Key EpcModel::make_key(std::uint64_t region, std::uint64_t page) {
  // Both halves must be range-checked: a region id >= 2^24 would shift
  // bits off the top and silently alias another region's keys.
  MSV_CHECK_MSG(region < (1ull << 24), "EPC region index out of range");
  MSV_CHECK_MSG(page < (1ull << 40), "EPC page index out of range");
  return (region << 40) | page;
}

void EpcModel::drain_to_capacity(std::uint64_t headroom) {
  // Each excess page charges its page-out exactly once, here: the lazy
  // eviction promised by set_reserved_pages / set_limit. With the
  // resident set within capacity this loop is a no-op, so the
  // no-pressure path stays byte-identical to the pre-limit model.
  const std::uint64_t cap = effective_capacity_pages();
  while (lru_.size() + headroom > cap) {
    ++stats_.evictions;
    telemetry::SpanScope span(env_.telemetry.tracer(),
                              telemetry::Category::kEpc,
                              env_.telemetry.names().epc_page_out);
    env_.clock.advance(env_.cost.epc_page_out_cycles);
    index_.erase(lru_.back());
    lru_.pop_back();
  }
}

void EpcModel::access(std::uint64_t region, std::uint64_t page) {
  ++stats_.accesses;
  // The pressure drain runs before the lookup: a page beyond the
  // (possibly just-shrunk) effective capacity cannot be EPC-resident, so
  // touching one must fault and page back in — treating it as a free hit
  // (the pre-set_limit behaviour) both skipped the eviction charge and
  // left the resident count physically over capacity indefinitely.
  drain_to_capacity(0);
  const Key key = make_key(region, page);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  // Miss: the driver pages the frame in, evicting the LRU page if full.
  ++stats_.faults;
  {
    telemetry::SpanScope span(env_.telemetry.tracer(),
                              telemetry::Category::kEpc,
                              env_.telemetry.names().epc_page_in);
    env_.clock.advance(env_.cost.epc_page_in_cycles);
  }
  // Make room for the incoming page (at most one eviction here — the
  // pre-access drain already clamped the set to capacity).
  drain_to_capacity(1);
  lru_.push_front(key);
  index_[key] = lru_.begin();
}

void EpcModel::invalidate_all() {
  stats_.invalidated += lru_.size();
  index_.clear();
  lru_.clear();
}

void EpcModel::set_reserved_pages(std::uint64_t n) {
  MSV_CHECK_MSG(n < capacity_pages_,
                "EPC pressure must leave at least one usable page");
  reserved_pages_ = n;
}

void EpcModel::set_limit(std::uint64_t pages) {
  MSV_CHECK_MSG(pages > 0, "EPC limit must leave at least one usable page");
  limit_pages_ = pages < capacity_pages_ ? pages : capacity_pages_;
}

void EpcModel::release_region(std::uint64_t region) {
  for (auto it = lru_.begin(); it != lru_.end();) {
    if ((*it >> 40) == region) {
      index_.erase(*it);
      it = lru_.erase(it);
      ++stats_.released;
    } else {
      ++it;
    }
  }
}

}  // namespace msv::sgx
