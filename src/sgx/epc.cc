#include "sgx/epc.h"

#include "support/error.h"

namespace msv::sgx {

EpcModel::EpcModel(Env& env)
    : env_(env),
      capacity_pages_(env.cost.epc_usable_bytes / env.cost.page_bytes) {
  MSV_CHECK_MSG(capacity_pages_ > 0, "EPC capacity must be at least a page");
}

EpcModel::Key EpcModel::make_key(std::uint64_t region, std::uint64_t page) {
  MSV_CHECK_MSG(page < (1ull << 40), "EPC page index out of range");
  return (region << 40) | page;
}

void EpcModel::access(std::uint64_t region, std::uint64_t page) {
  ++stats_.accesses;
  const Key key = make_key(region, page);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  // Miss: the driver pages the frame in, evicting the LRU page if full.
  ++stats_.faults;
  {
    telemetry::SpanScope span(env_.telemetry.tracer(),
                              telemetry::Category::kEpc,
                              env_.telemetry.names().epc_page_in);
    env_.clock.advance(env_.cost.epc_page_in_cycles);
  }
  if (lru_.size() >= capacity_pages_) {
    ++stats_.evictions;
    telemetry::SpanScope span(env_.telemetry.tracer(),
                              telemetry::Category::kEpc,
                              env_.telemetry.names().epc_page_out);
    env_.clock.advance(env_.cost.epc_page_out_cycles);
    index_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(key);
  index_[key] = lru_.begin();
}

void EpcModel::release_region(std::uint64_t region) {
  for (auto it = lru_.begin(); it != lru_.end();) {
    if ((*it >> 40) == region) {
      index_.erase(*it);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace msv::sgx
