#include "sched/scheduler.h"

#include <ucontext.h>

#include <algorithm>
#include <utility>

#include "support/error.h"
#include "telemetry/sampler.h"

// ASan cannot follow swapcontext on its own: each fiber's stack must be
// announced around every switch or the tool reports false stack-overflow /
// use-after-return on the first resume. These hooks are no-ops without
// ASan (guarded below), so the scheduler builds identically either way.
#if defined(__SANITIZE_ADDRESS__)
#define MSV_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MSV_ASAN_FIBERS 1
#endif
#endif

#if defined(MSV_ASAN_FIBERS)
#include <sanitizer/common_interface_defs.h>
#endif

namespace msv::sched {

struct Scheduler::Task {
  enum class State : std::uint8_t {
    kReady,
    kRunning,
    kSleeping,
    kBlocked,
    kFinished,
  };

  TaskId id = kNoTask;
  std::string name;
  std::function<void()> fn;
  bool daemon = false;
  State state = State::kReady;
  bool started = false;
  bool wake_pending = false;
  std::uint64_t sleep_token = 0;  // invalidates stale heap entries
  std::vector<TaskId> joiners;
  std::exception_ptr error;
  std::unique_ptr<char[]> stack;
  std::size_t stack_size = 0;
  ucontext_t ctx{};
  void* asan_fake = nullptr;
};

struct Scheduler::MainCtx {
  ucontext_t ctx{};
  void* asan_fake = nullptr;
  // Bounds of the thread stack hosting run(), reported by the sanitizer on
  // the first switch into a fiber; needed to announce switches back.
  const void* stack_bottom = nullptr;
  std::size_t stack_size = 0;
};

Scheduler* Scheduler::tramp_sched_ = nullptr;
Scheduler::Task* Scheduler::tramp_task_ = nullptr;

Scheduler::Scheduler(Env& env, Config config)
    : env_(env), config_(config), main_(std::make_unique<MainCtx>()) {
  MSV_CHECK_MSG(config_.stack_bytes >= 16 * 1024, "fiber stack too small");
  // Telemetry spans opened inside fibers must nest per task, not
  // globally: hand the tracer a view of the running TaskId.
  env_.telemetry.tracer().set_task_source(
      [this]() -> std::uint64_t { return current_; });
}

Scheduler::~Scheduler() {
  try {
    cancel_all();
  } catch (...) {
    // Destructors must not throw; a failed teardown leaks fiber stacks
    // but keeps the process coherent.
  }
  env_.telemetry.tracer().clear_task_source();
}

Scheduler::Task* Scheduler::find(TaskId id) {
  auto it = tasks_.find(id);
  return it == tasks_.end() ? nullptr : it->second.get();
}

const Scheduler::Task* Scheduler::find(TaskId id) const {
  auto it = tasks_.find(id);
  return it == tasks_.end() ? nullptr : it->second.get();
}

Scheduler::Task& Scheduler::current_task() {
  MSV_CHECK_MSG(in_task(), "this operation requires a running task");
  Task* t = find(current_);
  MSV_CHECK(t != nullptr);
  return *t;
}

TaskId Scheduler::spawn(std::string name, std::function<void()> fn) {
  return spawn_impl(std::move(name), std::move(fn), /*daemon=*/false);
}

TaskId Scheduler::spawn_daemon(std::string name, std::function<void()> fn) {
  return spawn_impl(std::move(name), std::move(fn), /*daemon=*/true);
}

TaskId Scheduler::spawn_impl(std::string name, std::function<void()> fn,
                             bool daemon) {
  MSV_CHECK_MSG(fn != nullptr, "spawn with empty function");
  const TaskId id = next_id_++;
  auto t = std::make_unique<Task>();
  t->id = id;
  t->name = std::move(name);
  t->fn = std::move(fn);
  t->daemon = daemon;
  ready_.push_back(id);
  ++live_total_;
  if (!daemon) ++live_nondaemon_;
  ++stats_.spawned;
  if (env_.telemetry.tracing_enabled()) {
    env_.telemetry.tracer().set_thread_name(id, t->name);
  }
  tasks_.emplace(id, std::move(t));
  return id;
}

void Scheduler::run() {
  MSV_CHECK_MSG(!in_task(), "Scheduler::run() called from inside a task");
  for (;;) {
    promote_due_sleepers();
    if (!ready_.empty()) {
      const TaskId id = ready_.front();
      ready_.pop_front();
      Task* t = find(id);
      if (t == nullptr || t->state != Task::State::kReady) continue;
      resume(*t);
      continue;
    }
    // Advance to the next sleeper before considering exit: a *sleeping*
    // daemon is mid-work (a worker inside a transition window) and must be
    // driven to completion; only *blocked* daemons — parked on a queue,
    // waiting for work that will never come from this run() — are ignored
    // by the exit condition.
    Cycles next = 0;
    if (next_deadline(&next)) {
      MSV_CHECK(next >= env_.clock.now());
      stats_.idle_advanced_cycles += next - env_.clock.now();
      // May fire VirtualClock timers; the loop re-examines queues after.
      env_.clock.advance(next - env_.clock.now());
      // Ticks crossed by the idle jump belong to nobody's stack.
      if (sampler_ != nullptr) sampler_->poll_label("(idle)");
      continue;
    }
    if (live_nondaemon_ == 0) break;
    std::string who;
    for (const auto& [id, t] : tasks_) {
      if (t->state == Task::State::kFinished || t->daemon) continue;
      if (!who.empty()) who += ", ";
      who += t->name;
    }
    throw RuntimeFault(
        "scheduler deadlock: every live task is blocked with no sleeper to "
        "advance time to (blocked: " +
        who + ")");
  }
}

bool Scheduler::promote_due_sleepers() {
  bool any = false;
  while (!sleepers_.empty() &&
         sleepers_.top().deadline <= env_.clock.now()) {
    const SleepEntry e = sleepers_.top();
    sleepers_.pop();
    Task* t = find(e.id);
    if (t != nullptr && t->state == Task::State::kSleeping &&
        t->sleep_token == e.token) {
      t->sleep_token = 0;
      make_ready(*t);
      any = true;
    }
  }
  return any;
}

bool Scheduler::next_deadline(Cycles* out) {
  while (!sleepers_.empty()) {
    const SleepEntry& e = sleepers_.top();
    const Task* t = find(e.id);
    if (t == nullptr || t->state != Task::State::kSleeping ||
        t->sleep_token != e.token) {
      sleepers_.pop();  // invalidated by an early wake
      continue;
    }
    *out = e.deadline;
    return true;
  }
  return false;
}

void Scheduler::make_ready(Task& t) {
  t.state = Task::State::kReady;
  ready_.push_back(t.id);
}

void Scheduler::resume(Task& t) {
  ++stats_.context_switches;
  if (!t.started) {
    t.started = true;
    t.stack = std::make_unique<char[]>(config_.stack_bytes);
    t.stack_size = config_.stack_bytes;
    MSV_CHECK(getcontext(&t.ctx) == 0);
    t.ctx.uc_stack.ss_sp = t.stack.get();
    t.ctx.uc_stack.ss_size = t.stack_size;
    t.ctx.uc_link = nullptr;  // tasks exit through exit_task, never fall off
    makecontext(&t.ctx, &Scheduler::trampoline, 0);
  }
  t.state = Task::State::kRunning;
  current_ = t.id;
  switch_into(t);
  current_ = kNoTask;
  if (t.state == Task::State::kFinished) {
    t.stack.reset();
    if (t.error != nullptr && !cancelling_) {
      std::exception_ptr e = t.error;
      t.error = nullptr;
      std::rethrow_exception(e);
    }
  }
}

void Scheduler::switch_into(Task& t) {
  tramp_sched_ = this;
  tramp_task_ = &t;
#if defined(MSV_ASAN_FIBERS)
  __sanitizer_start_switch_fiber(&main_->asan_fake, t.stack.get(),
                                 t.stack_size);
#endif
  swapcontext(&main_->ctx, &t.ctx);
#if defined(MSV_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(main_->asan_fake, nullptr, nullptr);
#endif
}

void Scheduler::switch_out(Task& t) {
#if defined(MSV_ASAN_FIBERS)
  __sanitizer_start_switch_fiber(&t.asan_fake, main_->stack_bottom,
                                 main_->stack_size);
#endif
  swapcontext(&t.ctx, &main_->ctx);
#if defined(MSV_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(t.asan_fake, nullptr, nullptr);
#endif
  // Resumed. Teardown resumes a task only so it can unwind.
  if (cancelling_) throw TaskCancelled{};
}

void Scheduler::exit_task(Task& t) {
  poll_sampler();  // the task's final charge segment, before teardown
  t.state = Task::State::kFinished;
  ++stats_.completed;
  --live_total_;
  if (!t.daemon) --live_nondaemon_;
  for (const TaskId j : t.joiners) wake(j);
  t.joiners.clear();
#if defined(MSV_ASAN_FIBERS)
  // nullptr fake-stack handle: tells ASan this fiber is exiting for good.
  __sanitizer_start_switch_fiber(nullptr, main_->stack_bottom,
                                 main_->stack_size);
#endif
  swapcontext(&t.ctx, &main_->ctx);
  std::abort();  // unreachable: finished tasks are never resumed
}

void Scheduler::trampoline() {
  Scheduler* s = tramp_sched_;
  Task* t = tramp_task_;
#if defined(MSV_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(t->asan_fake, &s->main_->stack_bottom,
                                  &s->main_->stack_size);
#endif
  // Task-lifetime span: opened and closed in the fiber's own context
  // (current_ == t->id on both sides, even on the cancellation path).
  telemetry::Tracer& tracer = s->env_.telemetry.tracer();
  const bool traced = tracer.enabled(telemetry::Category::kSched);
  if (traced) {
    tracer.begin_span(telemetry::Category::kSched,
                      tracer.intern("task:" + t->name));
  }
  try {
    if (!s->cancelling_) t->fn();
  } catch (const TaskCancelled&) {
    // Normal teardown path.
  } catch (...) {
    t->error = std::current_exception();
  }
  if (traced) tracer.end_span();
  t->fn = nullptr;  // release captured state deterministically
  s->exit_task(*t);
}

void Scheduler::poll_sampler() {
  if (sampler_ == nullptr || !sampler_->due()) return;
  if (current_ == kNoTask) {
    sampler_->poll_label("(main)");
  } else {
    sampler_->poll_task(current_, current_task().name);
  }
}

void Scheduler::run_suspend_hook() {
  if (!suspend_hook_ || in_suspend_hook_ || current_ == kNoTask) return;
  in_suspend_hook_ = true;
  try {
    suspend_hook_();
  } catch (...) {
    in_suspend_hook_ = false;
    throw;
  }
  in_suspend_hook_ = false;
}

void Scheduler::yield() {
  poll_sampler();
  run_suspend_hook();
  Task& t = current_task();
  t.state = Task::State::kReady;
  ready_.push_back(t.id);
  switch_out(t);
}

void Scheduler::sleep_until(Cycles deadline) {
  poll_sampler();
  run_suspend_hook();
  Task& t = current_task();
  ++stats_.sleeps;
  if (t.wake_pending) {  // a latched wake cancels the sleep outright
    t.wake_pending = false;
    return;
  }
  if (deadline <= env_.clock.now()) {
    yield();
    return;
  }
  // The sleep span closes via RAII even when switch_out throws
  // TaskCancelled (the fiber unwinds in its own context).
  telemetry::SpanScope span(env_.telemetry.tracer(),
                            telemetry::Category::kSched,
                            env_.telemetry.names().fiber_sleep);
  t.state = Task::State::kSleeping;
  t.sleep_token = next_token_++;
  sleepers_.push(SleepEntry{deadline, t.sleep_token, t.id});
  switch_out(t);
}

void Scheduler::sleep_for(Cycles cycles) {
  sleep_until(env_.clock.now() + cycles);
}

void Scheduler::join(TaskId id) {
  Task& t = current_task();
  MSV_CHECK_MSG(id != t.id, "task joining itself");
  Task* target = find(id);
  if (target == nullptr || target->state == Task::State::kFinished) return;
  target->joiners.push_back(t.id);
  while (target->state != Task::State::kFinished) suspend();
}

void Scheduler::suspend() {
  poll_sampler();
  run_suspend_hook();
  Task& t = current_task();
  if (t.wake_pending) {
    t.wake_pending = false;
    return;
  }
  t.state = Task::State::kBlocked;
  switch_out(t);
}

void Scheduler::wake(TaskId id) {
  Task* t = find(id);
  if (t == nullptr || t->state == Task::State::kFinished) return;
  ++stats_.wakes;
  switch (t->state) {
    case Task::State::kBlocked:
      make_ready(*t);
      break;
    case Task::State::kSleeping:
      t->sleep_token = 0;  // the heap entry is skipped as stale
      make_ready(*t);
      break;
    case Task::State::kRunning:
    case Task::State::kReady:
      t->wake_pending = true;  // latch: consumes the next suspend/sleep
      break;
    case Task::State::kFinished:
      break;
  }
}

void Scheduler::cancel_all() {
  MSV_CHECK_MSG(!in_task(), "cancel_all() called from inside a task");
  cancelling_ = true;
  for (auto& [id, t] : tasks_) {
    (void)id;
    if (t->state == Task::State::kFinished) continue;
    if (!t->started) {
      // Never ran: nothing to unwind, just retire it.
      t->fn = nullptr;
      t->state = Task::State::kFinished;
      ++stats_.completed;
      --live_total_;
      if (!t->daemon) --live_nondaemon_;
      for (const TaskId j : t->joiners) wake(j);
      t->joiners.clear();
      continue;
    }
    if (t->state == Task::State::kSleeping ||
        t->state == Task::State::kBlocked) {
      t->sleep_token = 0;
      make_ready(*t);
    }
  }
  // Resume each cancelled task once; TaskCancelled is thrown from its
  // suspension point and the fiber unwinds to completion. Task errors are
  // intentionally dropped here (resume() checks cancelling_).
  while (!ready_.empty()) {
    const TaskId id = ready_.front();
    ready_.pop_front();
    Task* t = find(id);
    if (t == nullptr || t->state != Task::State::kReady) continue;
    resume(*t);
  }
  cancelling_ = false;
}

bool Scheduler::finished(TaskId id) const {
  const Task* t = find(id);
  return t == nullptr || t->state == Task::State::kFinished;
}

const std::string& Scheduler::task_name(TaskId id) const {
  static const std::string kUnknown = "<unknown-task>";
  const Task* t = find(id);
  return t == nullptr ? kUnknown : t->name;
}

void WaitQueue::wait() {
  const TaskId me = sched_->current();
  MSV_CHECK_MSG(me != kNoTask, "WaitQueue::wait() outside a task");
  q_.push_back(me);
  try {
    // Parked until a notify removed us; robust against latched wakes
    // aimed at this task for other reasons.
    while (std::find(q_.begin(), q_.end(), me) != q_.end()) {
      sched_->suspend();
    }
  } catch (...) {
    auto it = std::find(q_.begin(), q_.end(), me);
    if (it != q_.end()) q_.erase(it);
    throw;
  }
}

std::size_t WaitQueue::notify_one() {
  if (q_.empty()) return 0;
  const TaskId id = q_.front();
  q_.pop_front();
  sched_->wake(id);
  return 1;
}

std::size_t WaitQueue::notify_all() {
  std::size_t n = 0;
  while (notify_one() == 1) ++n;
  return n;
}

}  // namespace msv::sched
