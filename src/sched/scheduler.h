// Deterministic discrete-event scheduler over the simulated clock.
//
// The serving layer needs *concurrent* callers — tenants contending for
// TCS slots, switchless worker threads, GC helpers — but the simulation
// must stay bit-for-bit reproducible, so no real threads are involved.
// Instead tasks are stackful cooperative fibers multiplexed onto the one
// simulated CPU:
//
//   - All cycle charges (env.clock.advance) performed by the running task
//     serialize on the single VirtualClock, exactly as before. Scheduling
//     itself charges zero cycles; concurrency is visible only at explicit
//     suspension points (yield / sleep / join / blocking waits inside the
//     bridge).
//   - The run loop is deterministic: ready tasks resume in FIFO order,
//     sleepers wake at exact deadlines (ties broken by sleep order), and
//     when every task is parked the clock jumps to the next deadline.
//     Given the same program and seed, two runs interleave identically.
//   - Fibers are ucontext-based so a task can suspend from arbitrarily
//     deep inside plain call stacks — which is where blocking actually
//     happens (TcsPool::acquire under TransitionBridge::call). C++20
//     coroutines cannot do that without colouring every frame in between.
//
// Determinism contract (DESIGN.md §8): no wall-clock, no real threads, no
// address-dependent ordering; every queue in this file is FIFO and every
// tie-break uses a monotonic sequence number.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "sim/env.h"

namespace msv::telemetry {
class SampleProfiler;  // telemetry/sampler.h
}

namespace msv::sched {

using TaskId = std::uint64_t;
inline constexpr TaskId kNoTask = 0;

// Thrown *into* a task (from its current suspension point) when the
// scheduler tears it down (cancel_all / destructor), so fiber stacks
// unwind and run their destructors instead of leaking. Deliberately not
// derived from Error: cancellation is control flow, not a fault, and
// `catch (const msv::Error&)` handlers in task code must not swallow it.
struct TaskCancelled {};

struct SchedulerStats {
  std::uint64_t spawned = 0;
  std::uint64_t completed = 0;
  std::uint64_t context_switches = 0;
  std::uint64_t sleeps = 0;
  std::uint64_t wakes = 0;
  // Cycles the run loop advanced the clock because every task was asleep
  // (simulated idle time of the serving CPU).
  Cycles idle_advanced_cycles = 0;
};

class Scheduler {
 public:
  struct Config {
    // Per-fiber stack. Interpreter recursion across nested RMI relays can
    // go deep; 256 KiB matches the SGX stack ballpark and is plenty.
    std::size_t stack_bytes = 256 * 1024;
  };

  explicit Scheduler(Env& env) : Scheduler(env, Config{}) {}
  Scheduler(Env& env, Config config);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Creates a task in the ready queue. `name` shows up in deadlock
  // reports and profiling; it need not be unique. Tasks run only inside
  // run().
  TaskId spawn(std::string name, std::function<void()> fn);

  // Daemon tasks (switchless workers, server worker pools) do not keep
  // run() alive: the loop exits when no non-daemon task is runnable or
  // sleeping, regardless of parked daemons.
  TaskId spawn_daemon(std::string name, std::function<void()> fn);

  // Runs tasks until every non-daemon task has finished. Rethrows the
  // first exception that escapes a task (remaining tasks stay parked and
  // are cancelled on destruction). Throws RuntimeFault when all live
  // non-daemon tasks are blocked with no sleeper to advance time to —
  // a genuine deadlock in the simulated program.
  void run();

  // ---- Task-side primitives (callable only from inside a task) ----
  void yield();                      // back of the ready queue
  void sleep_until(Cycles deadline); // absolute simulated instant
  void sleep_for(Cycles cycles);
  void join(TaskId id);              // block until `id` finishes
  // Parks the current task until some other task calls wake() on it.
  // A wake that arrives while the task is still running is latched and
  // consumes the next suspend()/sleep — the lost-wakeup pattern.
  void suspend();

  // ---- Callable from anywhere ----
  // Makes `id` runnable: unblocks a suspend, cuts a sleep short, or — if
  // the task is currently running or already ready — latches a pending
  // wake. No-op on finished/unknown tasks.
  void wake(TaskId id);

  // Cancels every unfinished task by resuming it once with TaskCancelled
  // thrown from its suspension point. Must be called from outside tasks;
  // the destructor calls it automatically.
  void cancel_all();

  // Pre-suspension hook, invoked in the suspending task's context at the
  // top of every voluntary suspension point (yield / sleep / suspend; join
  // parks through suspend). The batching RMI layer hangs its flush here so
  // a pending batch never outlives the quantum that built it — any work
  // another task could observe is forced out before control changes hands.
  // Reentrancy-guarded: suspensions performed *by* the hook (the flush's
  // own bridge transition sleeps through charge_transition) do not re-fire
  // it. One hook per scheduler; replace with nullptr to clear.
  void set_suspend_hook(std::function<void()> hook) {
    suspend_hook_ = std::move(hook);
  }

  // Sampling-profiler hook (telemetry/sampler.h). The scheduler owns
  // every point where simulated time is charged between context changes,
  // so it polls the profiler at each voluntary suspension point and task
  // exit (ticks attributed to the suspending task + its open span path)
  // and after every idle clock advance (attributed to "(idle)").
  // Detached = one pointer test per site; the profiler never advances
  // the clock, so attaching it cannot change simulated totals.
  void set_sampler(telemetry::SampleProfiler* sampler) {
    sampler_ = sampler;
  }

  bool in_task() const { return current_ != kNoTask; }
  TaskId current() const { return current_; }
  bool finished(TaskId id) const;
  const std::string& task_name(TaskId id) const;
  // Unfinished non-daemon tasks.
  std::size_t live_tasks() const { return live_nondaemon_; }

  Env& env() { return env_; }
  const SchedulerStats& stats() const { return stats_; }

 private:
  struct Task;

  Task* find(TaskId id);
  const Task* find(TaskId id) const;
  Task& current_task();
  TaskId spawn_impl(std::string name, std::function<void()> fn, bool daemon);
  void resume(Task& t);
  void switch_into(Task& t);
  void switch_out(Task& t);          // fiber -> main; rechecks cancellation
  [[noreturn]] void exit_task(Task& t);
  void make_ready(Task& t);
  void finishd(Task& t);             // bookkeeping when a task ends
  void run_suspend_hook();           // guarded; no-op outside tasks
  void poll_sampler();               // one pointer test when detached
  bool promote_due_sleepers();
  // Earliest valid sleeper deadline, or false if none.
  bool next_deadline(Cycles* out);
  static void trampoline();

  struct SleepEntry {
    Cycles deadline;
    std::uint64_t token;  // also the FIFO tie-break at equal deadlines
    TaskId id;
    bool operator>(const SleepEntry& o) const {
      return deadline != o.deadline ? deadline > o.deadline : token > o.token;
    }
  };

  Env& env_;
  Config config_;
  std::map<TaskId, std::unique_ptr<Task>> tasks_;  // ordered: deterministic
  std::deque<TaskId> ready_;
  std::priority_queue<SleepEntry, std::vector<SleepEntry>, std::greater<>>
      sleepers_;
  TaskId current_ = kNoTask;
  TaskId next_id_ = 1;
  std::uint64_t next_token_ = 1;
  std::size_t live_nondaemon_ = 0;
  std::size_t live_total_ = 0;
  bool cancelling_ = false;
  std::function<void()> suspend_hook_;
  bool in_suspend_hook_ = false;
  telemetry::SampleProfiler* sampler_ = nullptr;
  SchedulerStats stats_;

  // Main-context bookkeeping for swapcontext / ASan fiber annotations.
  struct MainCtx;
  std::unique_ptr<MainCtx> main_;
  static Scheduler* tramp_sched_;  // handoff into the trampoline
  static Task* tramp_task_;        // (single-threaded by construction)
};

// FIFO condition-variable analog for tasks. wait() is robust against
// spurious resumes: the task stays parked until a notify has actually
// removed it from the queue. Cancellation propagates out of wait().
class WaitQueue {
 public:
  explicit WaitQueue(Scheduler& sched) : sched_(&sched) {}

  void wait();
  // Both return the number of tasks released.
  std::size_t notify_one();
  std::size_t notify_all();
  std::size_t waiters() const { return q_.size(); }

 private:
  Scheduler* sched_;
  std::deque<TaskId> q_;
};

}  // namespace msv::sched
