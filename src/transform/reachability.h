// Closed-world reachability analysis (§5.3).
//
// GraalVM native-image runs a points-to analysis from the entry points and
// compiles only reachable program elements. We implement the variant that
// matters for partitioning: a rapid-type-analysis-style fixpoint over the
// model's call edges.
//
//   * kNew edges are precise (the class name is in the instruction).
//   * kCall edges are resolved against every *instantiated* class declaring
//     the method (dynamic dispatch without receiver types — RTA).
//   * Native bodies are opaque; their declared_callees() hints play the
//     role of GraalVM's reflection configuration (§2.2).
//   * Relay methods reach their target concrete method; proxy stubs have
//     no same-image callees (their target lives in the other image).
//
// Entry points follow the paper: for the trusted image, every relay method
// of a trusted class; for the untrusted image, main plus the relay methods
// of untrusted classes.
#pragma once

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "model/app_model.h"

namespace msv::xform {

// A method identified as "Class.method".
using MethodRef = std::pair<std::string, std::string>;

struct ReachabilityResult {
  std::set<std::string> classes;
  std::set<MethodRef> methods;
  std::set<std::string> instantiated;

  bool class_reachable(const std::string& cls) const {
    return classes.count(cls) != 0;
  }
  bool method_reachable(const std::string& cls,
                        const std::string& method) const {
    return methods.count({cls, method}) != 0;
  }
};

class ReachabilityAnalysis {
 public:
  explicit ReachabilityAnalysis(const model::AppModel& app) : app_(app) {}

  ReachabilityResult analyze(const std::vector<MethodRef>& entry_points) const;

 private:
  const model::AppModel& app_;
};

// The entry points of an image per §5.3.
std::vector<MethodRef> trusted_image_entry_points(const model::AppModel& set);
std::vector<MethodRef> untrusted_image_entry_points(const model::AppModel& set);

}  // namespace msv::xform
