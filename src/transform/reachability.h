// Closed-world reachability analysis (§5.3).
//
// GraalVM native-image runs a points-to analysis from the entry points and
// compiles only reachable program elements. We implement the variant that
// matters for partitioning: a rapid-type-analysis-style fixpoint over the
// model's call edges.
//
//   * kNew edges are precise (the class name is in the instruction).
//   * kCall edges are resolved against every *instantiated* class declaring
//     the method (dynamic dispatch without receiver types — RTA).
//   * Native bodies are opaque; their declared_callees() hints play the
//     role of GraalVM's reflection configuration (§2.2).
//   * Relay methods reach their target concrete method; proxy stubs have
//     no same-image callees (their target lives in the other image).
//
// Entry points follow the paper: for the trusted image, every relay method
// of a trusted class; for the untrusted image, main plus the relay methods
// of untrusted classes.
#pragma once

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "model/app_model.h"

namespace msv::xform {

// A method identified as "Class.method".
using MethodRef = std::pair<std::string, std::string>;

// One syntactic call edge leaving a method body. This is the unit shared
// between the RTA fixpoint below and the partition lints
// (analysis/lint.cc): both walk the same edges, so a method the analysis
// reaches is exactly a method the linter attributes to a partition.
struct CallSite {
  enum class Kind : std::uint8_t {
    kNew,       // kNew instruction: precise class, implies <init>
    kVirtual,   // kCall instruction: method name only, RTA-resolved
    kDeclared,  // declared_callees() hint on a native body
    kRelay,     // relay method -> its concrete target
  };
  Kind kind;
  std::string cls;     // target class; empty for kVirtual
  std::string method;  // target method; empty for kNew (constructor implied)
  std::int32_t pc = -1;  // instruction index for kNew/kVirtual, else -1
};

// The call sites of one method body. Total: never throws, even on dangling
// declared callees (callers validate targets themselves).
std::vector<CallSite> direct_call_sites(const model::MethodDecl& method);

struct ReachabilityResult {
  std::set<std::string> classes;
  std::set<MethodRef> methods;
  std::set<std::string> instantiated;

  bool class_reachable(const std::string& cls) const {
    return classes.count(cls) != 0;
  }
  bool method_reachable(const std::string& cls,
                        const std::string& method) const {
    return methods.count({cls, method}) != 0;
  }
};

class ReachabilityAnalysis {
 public:
  explicit ReachabilityAnalysis(const model::AppModel& app) : app_(app) {}

  ReachabilityResult analyze(const std::vector<MethodRef>& entry_points) const;

 private:
  const model::AppModel& app_;
};

// The entry points of an image per §5.3.
std::vector<MethodRef> trusted_image_entry_points(const model::AppModel& set);
std::vector<MethodRef> untrusted_image_entry_points(const model::AppModel& set);

}  // namespace msv::xform
