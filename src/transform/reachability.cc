#include "transform/reachability.h"

#include <deque>

#include "support/error.h"

namespace msv::xform {

using model::Annotation;
using model::ClassDecl;
using model::MethodDecl;
using model::MethodKind;
using model::Op;

namespace {

struct Worklist {
  std::deque<MethodRef> pending;
  ReachabilityResult result;
  // Method names invoked virtually somewhere reachable; re-examined when a
  // new class becomes instantiated.
  std::set<std::string> virtual_calls;

  void mark_class(const std::string& cls) { result.classes.insert(cls); }

  void mark_method(const std::string& cls, const std::string& method) {
    if (result.methods.insert({cls, method}).second) {
      pending.push_back({cls, method});
    }
    mark_class(cls);
  }
};

}  // namespace

ReachabilityResult ReachabilityAnalysis::analyze(
    const std::vector<MethodRef>& entry_points) const {
  Worklist wl;

  auto instantiate = [&](const std::string& cls_name) {
    if (!wl.result.instantiated.insert(cls_name).second) return;
    wl.mark_class(cls_name);
    // Newly instantiated class: any already-seen virtual call may now
    // dispatch to it.
    const ClassDecl* cls = app_.find_class(cls_name);
    if (cls == nullptr) return;
    for (const auto& name : wl.virtual_calls) {
      if (cls->find_method(name) != nullptr) wl.mark_method(cls_name, name);
    }
  };

  auto virtual_call = [&](const std::string& method_name) {
    if (!wl.virtual_calls.insert(method_name).second) return;
    for (const auto& cls : app_.classes()) {
      if (wl.result.instantiated.count(cls.name()) != 0 &&
          cls.find_method(method_name) != nullptr) {
        wl.mark_method(cls.name(), method_name);
      }
    }
  };

  for (const auto& [cls, method] : entry_points) {
    const ClassDecl* c = app_.find_class(cls);
    if (c == nullptr || c->find_method(method) == nullptr) {
      throw ConfigError("entry point " + cls + "." + method + " not found");
    }
    wl.mark_method(cls, method);
  }

  while (!wl.pending.empty()) {
    const auto [cls_name, method_name] = wl.pending.front();
    wl.pending.pop_front();
    const ClassDecl& cls = app_.cls(cls_name);
    const MethodDecl* m = cls.find_method(method_name);
    MSV_CHECK_MSG(m != nullptr, "reachable method vanished");

    // Instance methods imply an instance of the declaring class.
    if (!m->is_static()) instantiate(cls_name);

    switch (m->kind()) {
      case MethodKind::kIr: {
        const model::IrBody& ir = m->ir();
        for (const auto& instr : ir.code) {
          if (instr.op == Op::kNew) {
            const std::string& target = ir.names[instr.a];
            instantiate(target);
            const ClassDecl* t = app_.find_class(target);
            if (t != nullptr &&
                t->find_method(model::kConstructorName) != nullptr) {
              wl.mark_method(target, model::kConstructorName);
            }
          } else if (instr.op == Op::kCall) {
            virtual_call(ir.names[instr.a]);
          }
        }
        break;
      }
      case MethodKind::kNative:
        // Opaque body: use the declared callees ("reflection config").
        for (const auto& [tc, tm] : m->declared_callees()) {
          const ClassDecl* t = app_.find_class(tc);
          if (t == nullptr || t->find_method(tm) == nullptr) {
            throw ConfigError("declared callee " + tc + "." + tm +
                              " of native method " + cls_name + "." +
                              method_name + " not found");
          }
          if (tm == model::kConstructorName) instantiate(tc);
          wl.mark_method(tc, tm);
        }
        break;
      case MethodKind::kRelay: {
        const auto& info = m->relay();
        const ClassDecl* target = app_.find_class(info.target_class);
        MSV_CHECK_MSG(target != nullptr, "relay target class missing");
        // Synthesized default-constructor relays have no concrete <init>;
        // they still instantiate the class.
        if (target->find_method(info.target_method) != nullptr) {
          wl.mark_method(info.target_class, info.target_method);
        }
        if (info.is_constructor) instantiate(info.target_class);
        break;
      }
      case MethodKind::kProxyStub:
        // The stub's target lives in the opposite image; within this image
        // it only needs the proxy class itself (plus the serializer and
        // bridge, which are runtime components, not model classes).
        instantiate(cls_name);
        break;
    }
  }
  return wl.result;
}

std::vector<MethodRef> trusted_image_entry_points(const model::AppModel& set) {
  // All relay methods of concrete (non-proxy) classes in the trusted set
  // are exported @CEntryPoints (§5.3).
  std::vector<MethodRef> eps;
  for (const auto& cls : set.classes()) {
    if (cls.is_proxy() || cls.annotation() != Annotation::kTrusted) continue;
    for (const auto& m : cls.methods()) {
      if (m.kind() == MethodKind::kRelay) eps.push_back({cls.name(), m.name()});
    }
  }
  return eps;
}

std::vector<MethodRef> untrusted_image_entry_points(
    const model::AppModel& set) {
  // main plus the relay methods of concrete untrusted classes (§5.3).
  std::vector<MethodRef> eps;
  if (!set.main_class().empty()) eps.push_back({set.main_class(), "main"});
  for (const auto& cls : set.classes()) {
    if (cls.is_proxy() || cls.annotation() != Annotation::kUntrusted) continue;
    for (const auto& m : cls.methods()) {
      if (m.kind() == MethodKind::kRelay) eps.push_back({cls.name(), m.name()});
    }
  }
  return eps;
}

}  // namespace msv::xform
