#include "transform/reachability.h"

#include <deque>

#include "support/error.h"

namespace msv::xform {

using model::Annotation;
using model::ClassDecl;
using model::MethodDecl;
using model::MethodKind;
using model::Op;

namespace {

struct Worklist {
  std::deque<MethodRef> pending;
  ReachabilityResult result;
  // Method names invoked virtually somewhere reachable; re-examined when a
  // new class becomes instantiated.
  std::set<std::string> virtual_calls;

  void mark_class(const std::string& cls) { result.classes.insert(cls); }

  void mark_method(const std::string& cls, const std::string& method) {
    if (result.methods.insert({cls, method}).second) {
      pending.push_back({cls, method});
    }
    mark_class(cls);
  }
};

}  // namespace

std::vector<CallSite> direct_call_sites(const model::MethodDecl& method) {
  std::vector<CallSite> sites;
  switch (method.kind()) {
    case MethodKind::kIr: {
      const model::IrBody& ir = method.ir();
      for (std::size_t pc = 0; pc < ir.code.size(); ++pc) {
        const auto& instr = ir.code[pc];
        if (instr.a < 0 || static_cast<std::size_t>(instr.a) >= ir.names.size())
          continue;  // malformed operand; the verifier reports it
        if (instr.op == Op::kNew) {
          sites.push_back({CallSite::Kind::kNew, ir.names[instr.a], "",
                           static_cast<std::int32_t>(pc)});
        } else if (instr.op == Op::kCall) {
          sites.push_back({CallSite::Kind::kVirtual, "", ir.names[instr.a],
                           static_cast<std::int32_t>(pc)});
        }
      }
      break;
    }
    case MethodKind::kNative:
      for (const auto& [tc, tm] : method.declared_callees()) {
        sites.push_back({CallSite::Kind::kDeclared, tc, tm, -1});
      }
      break;
    case MethodKind::kRelay:
      sites.push_back({CallSite::Kind::kRelay, method.relay().target_class,
                       method.relay().target_method, -1});
      break;
    case MethodKind::kProxyStub:
      break;  // target lives in the opposite image
  }
  return sites;
}

ReachabilityResult ReachabilityAnalysis::analyze(
    const std::vector<MethodRef>& entry_points) const {
  Worklist wl;

  auto instantiate = [&](const std::string& cls_name) {
    if (!wl.result.instantiated.insert(cls_name).second) return;
    wl.mark_class(cls_name);
    // Newly instantiated class: any already-seen virtual call may now
    // dispatch to it.
    const ClassDecl* cls = app_.find_class(cls_name);
    if (cls == nullptr) return;
    for (const auto& name : wl.virtual_calls) {
      if (cls->find_method(name) != nullptr) wl.mark_method(cls_name, name);
    }
  };

  auto virtual_call = [&](const std::string& method_name) {
    if (!wl.virtual_calls.insert(method_name).second) return;
    for (const auto& cls : app_.classes()) {
      if (wl.result.instantiated.count(cls.name()) != 0 &&
          cls.find_method(method_name) != nullptr) {
        wl.mark_method(cls.name(), method_name);
      }
    }
  };

  for (const auto& [cls, method] : entry_points) {
    const ClassDecl* c = app_.find_class(cls);
    if (c == nullptr || c->find_method(method) == nullptr) {
      throw ConfigError("entry point " + cls + "." + method + " not found");
    }
    wl.mark_method(cls, method);
  }

  while (!wl.pending.empty()) {
    const auto [cls_name, method_name] = wl.pending.front();
    wl.pending.pop_front();
    const ClassDecl& cls = app_.cls(cls_name);
    const MethodDecl* m = cls.find_method(method_name);
    MSV_CHECK_MSG(m != nullptr, "reachable method vanished");

    // Instance methods imply an instance of the declaring class; proxy
    // stubs likewise need the proxy class itself (the target lives in the
    // opposite image).
    if (!m->is_static() || m->kind() == MethodKind::kProxyStub) {
      instantiate(cls_name);
    }

    for (const auto& site : direct_call_sites(*m)) {
      switch (site.kind) {
        case CallSite::Kind::kNew: {
          instantiate(site.cls);
          const ClassDecl* t = app_.find_class(site.cls);
          if (t != nullptr &&
              t->find_method(model::kConstructorName) != nullptr) {
            wl.mark_method(site.cls, model::kConstructorName);
          }
          break;
        }
        case CallSite::Kind::kVirtual:
          virtual_call(site.method);
          break;
        case CallSite::Kind::kDeclared: {
          // Opaque native body: the declared callees play the role of
          // GraalVM's reflection configuration.
          const ClassDecl* t = app_.find_class(site.cls);
          if (t == nullptr || t->find_method(site.method) == nullptr) {
            throw ConfigError("declared callee " + site.cls + "." +
                              site.method + " of native method " + cls_name +
                              "." + method_name + " not found");
          }
          if (site.method == model::kConstructorName) instantiate(site.cls);
          wl.mark_method(site.cls, site.method);
          break;
        }
        case CallSite::Kind::kRelay: {
          const ClassDecl* target = app_.find_class(site.cls);
          MSV_CHECK_MSG(target != nullptr, "relay target class missing");
          // Synthesized default-constructor relays have no concrete <init>;
          // they still instantiate the class.
          if (target->find_method(site.method) != nullptr) {
            wl.mark_method(site.cls, site.method);
          }
          if (m->relay().is_constructor) instantiate(site.cls);
          break;
        }
      }
    }
  }
  return wl.result;
}

std::vector<MethodRef> trusted_image_entry_points(const model::AppModel& set) {
  // All relay methods of concrete (non-proxy) classes in the trusted set
  // are exported @CEntryPoints (§5.3).
  std::vector<MethodRef> eps;
  for (const auto& cls : set.classes()) {
    if (cls.is_proxy() || cls.annotation() != Annotation::kTrusted) continue;
    for (const auto& m : cls.methods()) {
      if (m.kind() == MethodKind::kRelay) eps.push_back({cls.name(), m.name()});
    }
  }
  return eps;
}

std::vector<MethodRef> untrusted_image_entry_points(
    const model::AppModel& set) {
  // main plus the relay methods of concrete untrusted classes (§5.3).
  std::vector<MethodRef> eps;
  if (!set.main_class().empty()) eps.push_back({set.main_class(), "main"});
  for (const auto& cls : set.classes()) {
    if (cls.is_proxy() || cls.annotation() != Annotation::kUntrusted) continue;
    for (const auto& m : cls.methods()) {
      if (m.kind() == MethodKind::kRelay) eps.push_back({cls.name(), m.name()});
    }
  }
  return eps;
}

}  // namespace msv::xform
