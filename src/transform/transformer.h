// The bytecode transformer (§5.2) — the Javassist weaver of the paper.
//
// Input: an annotated application model. Output: the two class sets used
// for image generation (§5.3):
//   * trusted set  (T ∪ N): concrete @Trusted classes extended with relay
//     methods, proxy versions of @Untrusted classes, neutral classes;
//   * untrusted set (U ∪ N): concrete @Untrusted classes extended with
//     relay methods, proxy versions of @Trusted classes, neutral classes;
// plus the EDL fragment describing every generated ecall/ocall transition.
//
// Proxy classes are produced by *stripping*: fields are removed and
// replaced by a single `hash` field, public method bodies are replaced by
// native transition stubs to the corresponding relay method, and private
// methods are dropped (they are unreachable from the other runtime).
// Relay methods are static @CEntryPoint-style wrappers added to concrete
// classes; their restrictions (static, primitive/pointer parameters only)
// are what forces the hash+serialized-buffer calling convention.
#pragma once

#include <string>

#include "model/app_model.h"
#include "sgx/edl.h"

namespace msv::analysis {
struct PartitionPlan;
}

namespace msv::xform {

struct TransformResult {
  model::AppModel trusted;    // input set for the trusted image
  model::AppModel untrusted;  // input set for the untrusted image
  sgx::EdlSpec edl;           // relay transitions (ecalls + ocalls)
};

// Name of the relay method added to a concrete class for `method`.
std::string relay_method_name(const std::string& method);

// Name of the bridge transition invoked by a proxy stub for
// `cls.method`: "ecall_relay_<cls>_<method>" when the concrete class is
// trusted, "ocall_relay_<cls>_<method>" otherwise.
std::string transition_name(const std::string& cls, const std::string& method,
                            bool concrete_is_trusted);

// Applies a partition plan (analysis/optimize.h) to an annotated model:
// every placed class's annotation is rewritten to the plan's `after` side
// and the model is re-validated, so the transformer weaves the
// re-partitioned images. Classes absent from the plan (neutral classes)
// keep their annotation. Throws ConfigError when the plan names an
// unknown or neutral class.
model::AppModel apply_partition_plan(const model::AppModel& app,
                                     const analysis::PartitionPlan& plan);

class BytecodeTransformer {
 public:
  // Validates `app` and produces the two transformed class sets. Only
  // annotated classes are modified; neutral classes are copied verbatim
  // into both sets. Unpartitioned builds (§5.6) skip this entirely.
  TransformResult transform(const model::AppModel& app) const;

 private:
  // Appends a stripped proxy version of `concrete` to `out`.
  void add_proxy_class(model::AppModel& out, const model::ClassDecl& concrete,
                       bool concrete_is_trusted) const;
  // Appends `concrete` plus relay methods for its public methods to `out`.
  void add_concrete_class(model::AppModel& out,
                          const model::ClassDecl& concrete) const;
  void add_edl_entries(sgx::EdlSpec& edl, const model::ClassDecl& concrete,
                       bool concrete_is_trusted) const;
};

}  // namespace msv::xform
