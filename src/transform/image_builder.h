// The native image generator (§5.3).
//
// Takes a transformed class set, runs the reachability analysis from the
// image's entry points, prunes unreachable classes and methods (this is
// what removes unneeded proxies), and produces a NativeImage artifact: the
// pruned code, size accounting used for TCB reporting, and — because the
// Montsalvat image generator bypasses the final linking step — a
// relocatable object file name (trusted.o / untrusted.o) plus a canonical
// byte serialization over which the SGX module computes the enclave
// measurement.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/app_model.h"
#include "support/bytes.h"
#include "support/sha256.h"
#include "transform/reachability.h"

namespace msv::xform {

struct ImageBuildConfig {
  // Size of the embedded runtime components (GC, thread support, stack
  // walking, exception handling — §2.2). GraalVM helloworld images are a
  // few MB; this is the part that is always in the TCB.
  std::uint64_t runtime_code_bytes = 3ull << 20;
  std::uint64_t image_heap_base_bytes = 1ull << 20;
  std::uint64_t image_heap_per_class_bytes = 2048;
  // Native image max heap at run time (the paper builds with -Xmx2G).
  std::uint64_t max_heap_bytes = 2ull << 30;
};

struct NativeImage {
  std::string name;            // "trusted" or "untrusted"
  std::string object_file;     // "trusted.o" / "untrusted.o"
  bool is_trusted = false;
  model::AppModel classes;     // pruned, reachable program elements only
  std::vector<MethodRef> entry_points;
  ReachabilityResult reachable;
  std::uint64_t code_bytes = 0;        // compiled application methods
  std::uint64_t runtime_code_bytes = 0;
  std::uint64_t image_heap_bytes = 0;
  std::uint64_t max_heap_bytes = 0;

  std::uint64_t total_bytes() const {
    return code_bytes + runtime_code_bytes + image_heap_bytes;
  }

  // Canonical serialization (what gets EADDed page by page); stable across
  // runs so measurements are reproducible.
  ByteBuffer serialize() const;
  Sha256::Digest measure() const;

  // Statistics useful for the TCB discussion in the paper.
  std::size_t class_count() const { return classes.classes().size(); }
  std::size_t method_count() const;
  std::size_t pruned_proxy_count = 0;  // proxies dropped by reachability
};

class ImageBuilder {
 public:
  explicit ImageBuilder(ImageBuildConfig config = {}) : config_(config) {}

  // Builds the trusted or untrusted image from its transformed class set.
  // `entry_override`, when non-empty, replaces the §5.3 entry-point rule —
  // used for unpartitioned builds (§5.6), where the whole application goes
  // into one image rooted at main.
  NativeImage build(const model::AppModel& input, bool is_trusted,
                    std::vector<MethodRef> entry_override = {}) const;

 private:
  ImageBuildConfig config_;
};

}  // namespace msv::xform
