#include "transform/image_builder.h"

#include "support/error.h"

namespace msv::xform {

using model::ClassDecl;
using model::MethodDecl;

std::size_t NativeImage::method_count() const {
  std::size_t n = 0;
  for (const auto& c : classes.classes()) n += c.methods().size();
  return n;
}

ByteBuffer NativeImage::serialize() const {
  ByteBuffer buf;
  buf.put_string(name);
  buf.put_u8(is_trusted ? 1 : 0);
  buf.put_u64(code_bytes);
  buf.put_u64(runtime_code_bytes);
  buf.put_u64(image_heap_bytes);
  buf.put_varint(classes.classes().size());
  for (const auto& c : classes.classes()) {
    buf.put_string(c.name());
    buf.put_u8(static_cast<std::uint8_t>(c.annotation()));
    buf.put_u8(c.is_proxy() ? 1 : 0);
    buf.put_varint(c.fields().size());
    for (const auto& f : c.fields()) buf.put_string(f.name);
    buf.put_varint(c.methods().size());
    for (const auto& m : c.methods()) {
      buf.put_string(m.name());
      buf.put_u8(static_cast<std::uint8_t>(m.kind()));
      buf.put_u64(m.code_bytes());
      // Bytecode bodies contribute their instruction stream: a change in
      // any compiled method changes the measurement.
      for (const auto& instr : m.ir().code) {
        buf.put_u8(static_cast<std::uint8_t>(instr.op));
        buf.put_i32(instr.a);
        buf.put_i32(instr.b);
      }
    }
  }
  return buf;
}

Sha256::Digest NativeImage::measure() const {
  const ByteBuffer buf = serialize();
  Sha256 h;
  h.update(buf.data(), buf.size());
  return h.finish();
}

NativeImage ImageBuilder::build(const model::AppModel& input, bool is_trusted,
                                std::vector<MethodRef> entry_override) const {
  NativeImage image;
  image.name = is_trusted ? "trusted" : "untrusted";
  image.object_file = image.name + ".o";
  image.is_trusted = is_trusted;
  image.entry_points = !entry_override.empty()
                           ? std::move(entry_override)
                           : (is_trusted ? trusted_image_entry_points(input)
                                         : untrusted_image_entry_points(input));
  // An image can legitimately be empty, e.g. the trusted image of an
  // application with no @Trusted classes.

  ReachabilityAnalysis analysis(input);
  image.reachable = analysis.analyze(image.entry_points);

  // Prune: only reachable classes, and within them only reachable methods,
  // survive into the image (§2.2: AoT compiles only reachable elements).
  for (const auto& cls : input.classes()) {
    if (!image.reachable.class_reachable(cls.name())) {
      if (cls.is_proxy()) ++image.pruned_proxy_count;
      continue;
    }
    ClassDecl& kept = image.classes.add_class(cls.name(), cls.annotation());
    if (cls.is_proxy()) kept.mark_proxy();
    for (const auto& f : cls.fields()) kept.add_field(f.name, f.is_private);
    for (const auto& m : cls.methods()) {
      // Proxy classes are pruned at class granularity only: a reachable
      // proxy "exposes the same methods as the original class" (§5.2) so
      // any of its stubs may be invoked through a received reference.
      if (!cls.is_proxy() &&
          !image.reachable.method_reachable(cls.name(), m.name())) {
        continue;
      }
      kept.methods().push_back(m);
      image.code_bytes += m.code_bytes();
    }
  }
  image.classes.set_main_class(input.main_class());

  image.runtime_code_bytes = config_.runtime_code_bytes;
  image.image_heap_bytes =
      config_.image_heap_base_bytes +
      config_.image_heap_per_class_bytes * image.classes.classes().size();
  image.max_heap_bytes = config_.max_heap_bytes;
  return image;
}

}  // namespace msv::xform
