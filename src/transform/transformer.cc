#include "transform/transformer.h"

#include "analysis/optimize.h"
#include "support/error.h"

namespace msv::xform {

using model::Annotation;
using model::ClassDecl;
using model::MethodDecl;

namespace {

// "<init>" is not a valid C identifier fragment; transitions use "init".
std::string sanitize(const std::string& method) {
  return method == model::kConstructorName ? "init" : method;
}

}  // namespace

std::string relay_method_name(const std::string& method) {
  return "relay$" + sanitize(method);
}

std::string transition_name(const std::string& cls, const std::string& method,
                            bool concrete_is_trusted) {
  return std::string(concrete_is_trusted ? "ecall" : "ocall") + "_relay_" +
         cls + "_" + sanitize(method);
}

void BytecodeTransformer::add_concrete_class(model::AppModel& out,
                                             const ClassDecl& concrete) const {
  ClassDecl& copy = out.add_class(concrete.name(), concrete.annotation());
  for (const auto& f : concrete.fields()) copy.add_field(f.name, f.is_private);
  for (const auto& m : concrete.methods()) {
    copy.methods().push_back(m);
  }
  // Relay methods: one static entry-point wrapper per public method,
  // including constructors (Listing 4). Private methods stay internal, and
  // neutral classes need no relays — they are serialized across the
  // boundary, never remotely invoked.
  if (concrete.annotation() == Annotation::kNeutral) return;
  for (const auto& m : concrete.methods()) {
    if (!m.is_public() || m.kind() == model::MethodKind::kRelay) continue;
    MethodDecl& relay = copy.add_static_method(relay_method_name(m.name()),
                                               m.param_count());
    relay.primitive_signature(m.has_primitive_signature());
    relay.batch_async(m.is_batch_async());
    relay.set_relay(model::RelayInfo{concrete.name(), m.name(),
                                     m.is_constructor()});
  }
  // A class without a declared constructor still needs a construction
  // relay: its proxies must be able to create mirrors (default ctor).
  if (concrete.find_method(model::kConstructorName) == nullptr) {
    MethodDecl& relay = copy.add_static_method(
        relay_method_name(model::kConstructorName), 0);
    relay.set_relay(
        model::RelayInfo{concrete.name(), model::kConstructorName, true});
  }
}

void BytecodeTransformer::add_proxy_class(model::AppModel& out,
                                          const ClassDecl& concrete,
                                          bool concrete_is_trusted) const {
  ClassDecl& proxy = out.add_class(concrete.name(), concrete.annotation());
  proxy.mark_proxy();
  // Stripping: all fields vanish; a single hash field identifies the proxy
  // and its mirror across the boundary (§5.2).
  proxy.add_field("hash");
  for (const auto& m : concrete.methods()) {
    if (!m.is_public()) continue;  // stripped entirely
    MethodDecl& stub = proxy.add_method(m.name(), m.param_count());
    if (m.is_static()) stub.set_static();
    stub.primitive_signature(m.has_primitive_signature());
    stub.batch_async(m.is_batch_async());
    stub.make_proxy_stub(model::ProxyStubInfo{
        transition_name(concrete.name(), m.name(), concrete_is_trusted),
        /*via_ecall=*/concrete_is_trusted, concrete.name(), m.name(),
        m.is_constructor()});
  }
  // Default-constructor stub when the concrete class declares none.
  if (concrete.find_method(model::kConstructorName) == nullptr) {
    MethodDecl& stub = proxy.add_method(model::kConstructorName, 0);
    stub.make_proxy_stub(model::ProxyStubInfo{
        transition_name(concrete.name(), model::kConstructorName,
                        concrete_is_trusted),
        /*via_ecall=*/concrete_is_trusted, concrete.name(),
        model::kConstructorName, true});
  }
}

void BytecodeTransformer::add_edl_entries(sgx::EdlSpec& edl,
                                          const ClassDecl& concrete,
                                          bool concrete_is_trusted) const {
  for (const auto& m : concrete.methods()) {
    if (!m.is_public()) continue;
    sgx::EdlFunction fn;
    fn.name = transition_name(concrete.name(), m.name(), concrete_is_trusted);
    fn.return_type = "void";
    // The relay calling convention (§5.2): the callee isolate, the caller
    // proxy's hash, and a serialized buffer holding neutral parameters and
    // the hashes standing in for proxy/mirror parameters.
    fn.params = {
        {"uint64_t", "isolate", sgx::EdlDirection::kIn, ""},
        {"int64_t", "hash", sgx::EdlDirection::kIn, ""},
        {"const uint8_t*", "buf", sgx::EdlDirection::kIn, "len"},
        {"size_t", "len", sgx::EdlDirection::kIn, ""},
        {"uint8_t*", "ret", sgx::EdlDirection::kOut, "ret_len"},
        {"size_t", "ret_len", sgx::EdlDirection::kIn, ""},
    };
    if (concrete_is_trusted) {
      edl.add_ecall(std::move(fn));
    } else {
      edl.add_ocall(std::move(fn));
    }
  }
  if (concrete.find_method(model::kConstructorName) == nullptr) {
    sgx::EdlFunction fn;
    fn.name = transition_name(concrete.name(), model::kConstructorName,
                              concrete_is_trusted);
    fn.return_type = "void";
    fn.params = {{"uint64_t", "isolate", sgx::EdlDirection::kIn, ""},
                 {"int64_t", "hash", sgx::EdlDirection::kIn, ""}};
    if (concrete_is_trusted) {
      edl.add_ecall(std::move(fn));
    } else {
      edl.add_ocall(std::move(fn));
    }
  }
}

TransformResult BytecodeTransformer::transform(
    const model::AppModel& app) const {
  app.validate();
  TransformResult result;
  result.edl.enclave_name = "montsalvat_enclave";
  result.trusted.set_main_class("");  // main lives in the untrusted image
  result.untrusted.set_main_class(app.main_class());

  for (const auto& c : app.classes()) {
    MSV_CHECK_MSG(!c.is_proxy(), "transform() re-applied to transformed code");
    switch (c.annotation()) {
      case Annotation::kNeutral:
        // Unchanged, present in both worlds; instances may evolve
        // independently (§5.1).
        add_concrete_class(result.trusted, c);
        add_concrete_class(result.untrusted, c);
        break;
      case Annotation::kTrusted:
        add_concrete_class(result.trusted, c);
        add_proxy_class(result.untrusted, c, /*concrete_is_trusted=*/true);
        add_edl_entries(result.edl, c, /*concrete_is_trusted=*/true);
        break;
      case Annotation::kUntrusted:
        add_concrete_class(result.untrusted, c);
        add_proxy_class(result.trusted, c, /*concrete_is_trusted=*/false);
        add_edl_entries(result.edl, c, /*concrete_is_trusted=*/false);
        break;
    }
  }
  return result;
}

model::AppModel apply_partition_plan(const model::AppModel& app,
                                     const analysis::PartitionPlan& plan) {
  model::AppModel out = app;
  for (const auto& p : plan.placements) {
    model::ClassDecl* cls = out.find_class(p.cls);
    if (cls == nullptr) {
      throw ConfigError("partition plan names unknown class " + p.cls);
    }
    if (cls->annotation() == model::Annotation::kNeutral) {
      throw ConfigError("partition plan places neutral class " + p.cls +
                        " (the optimizer only moves annotated classes)");
    }
    cls->set_annotation(p.after);
  }
  // The plan must still satisfy the programming model (encapsulated
  // annotated classes, untrusted main, ...).
  out.validate();
  return out;
}

}  // namespace msv::xform
