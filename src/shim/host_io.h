// The shim helper / direct host I/O (§5.4).
//
// On the untrusted side this *is* libc: every call charges the syscall and
// copy costs of the real thing against the virtual filesystem. The
// enclave-side shim (enclave_shim.h) relays to an instance of this class.
#pragma once

#include <unordered_map>

#include "shim/io_service.h"

namespace msv::shim {

class HostIo final : public IoService {
 public:
  HostIo(Env& env, MemoryDomain& domain);

  FileId open(const std::string& path, vfs::OpenMode mode) override;
  void write(FileId file, const void* buf, std::uint64_t len) override;
  std::uint64_t read(FileId file, void* buf, std::uint64_t len) override;
  void seek(FileId file, std::uint64_t pos) override;
  void flush(FileId file) override;
  void close(FileId file) override;
  bool exists(const std::string& path) override;
  std::uint64_t file_size(const std::string& path) override;
  void remove(const std::string& path) override;
  std::vector<std::string> list(const std::string& prefix) override;
  std::shared_ptr<MappedFile> map(const std::string& path) override;

  const IoStats& stats() const override { return stats_; }

 private:
  vfs::File& file(FileId id);

  Env& env_;
  MemoryDomain& domain_;
  std::unordered_map<FileId, std::unique_ptr<vfs::File>> open_files_;
  FileId next_id_ = 1;
  IoStats stats_;
};

}  // namespace msv::shim
