// The I/O interface seen by application code (§5.4).
//
// Real-world applications call libc for files; enclaves cannot. Montsalvat
// redefines unsupported libc routines inside the enclave as ocall wrappers
// (the *shim library*) relayed to a *shim helper* outside that invokes the
// real libc. Application code — native methods, PalDB, GraphChi — programs
// against this interface and gets the right behaviour and the right costs
// on both sides:
//   * HostIo        (untrusted side): syscall costs + page-cache copies;
//   * EnclaveShim   (trusted side):   ocall transition + boundary copies,
//                                     then the host costs via the helper.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/domain.h"
#include "sim/env.h"
#include "vfs/fs.h"

namespace msv::shim {

using FileId = std::uint64_t;

// A file mapped for reading. Inside an enclave, mapped pages are copied in
// on first touch (SGX cannot map untrusted files into EPC directly; library
// OSes and shims copy through), then reads pay normal domain traffic. This
// is what makes PalDB's mmap-optimised reads expensive in the enclave and
// cheap outside (§6.5).
class MappedFile {
 public:
  // `fetch_page`, when set, is invoked on the first touch of each page —
  // the enclave shim wires it to an ocall that pulls the page through the
  // boundary (this is where the reader-side ocalls of §6.5 come from).
  // When unset, first touches charge a soft page fault locally.
  MappedFile(Env& env, MemoryDomain& domain,
             std::shared_ptr<const std::vector<std::uint8_t>> data,
             std::string path,
             std::function<void(std::uint64_t page)> fetch_page = nullptr);

  std::uint64_t size() const { return data_->size(); }
  const std::string& path() const { return path_; }

  // Copies [offset, offset+len) into `dst`, charging first-touch and
  // traffic costs. Throws RuntimeFault on out-of-range access.
  void read(std::uint64_t offset, void* dst, std::uint64_t len);

  // Reads a little-endian integer at `offset` (convenience for index
  // probes).
  std::uint32_t read_u32(std::uint64_t offset);
  std::uint64_t read_u64(std::uint64_t offset);

  std::uint64_t pages_touched() const { return touched_count_; }

 private:
  void touch_range(std::uint64_t offset, std::uint64_t len);

  Env& env_;
  MemoryDomain& domain_;
  std::shared_ptr<const std::vector<std::uint8_t>> data_;
  std::string path_;
  std::function<void(std::uint64_t)> fetch_page_;
  std::uint64_t region_;
  std::vector<bool> touched_;
  std::uint64_t touched_count_ = 0;
};

struct IoStats {
  std::uint64_t opens = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t maps = 0;
  std::uint64_t other_calls = 0;  // seek/close/flush/stat/...
};

class IoService {
 public:
  virtual ~IoService() = default;

  virtual FileId open(const std::string& path, vfs::OpenMode mode) = 0;
  virtual void write(FileId file, const void* buf, std::uint64_t len) = 0;
  virtual std::uint64_t read(FileId file, void* buf, std::uint64_t len) = 0;
  virtual void seek(FileId file, std::uint64_t pos) = 0;
  virtual void flush(FileId file) = 0;
  virtual void close(FileId file) = 0;
  virtual bool exists(const std::string& path) = 0;
  virtual std::uint64_t file_size(const std::string& path) = 0;
  virtual void remove(const std::string& path) = 0;
  virtual std::vector<std::string> list(const std::string& prefix) = 0;
  virtual std::shared_ptr<MappedFile> map(const std::string& path) = 0;

  virtual const IoStats& stats() const = 0;
};

}  // namespace msv::shim
