// Montsalvat's in-enclave shim library (§5.4).
//
// Each libc routine that cannot execute inside an enclave is redefined as a
// wrapper that marshals its arguments and performs an ocall to the shim
// helper (a HostIo on the untrusted side). This module registers one ocall
// per relayed routine — so the bridge statistics directly expose per-call
// ocall counts like the paper's "23x more ocalls" observation — and
// contributes the corresponding entries to the application's EDL.
//
// Compared to library-OS approaches the shim is tiny; shim_code_bytes() is
// what the TCB report charges for it.
#pragma once

#include "sgx/bridge.h"
#include "sgx/edl.h"
#include "shim/host_io.h"
#include "shim/io_service.h"

namespace msv::shim {

class EnclaveShim final : public IoService {
 public:
  // `host` is the shim helper on the untrusted side; `enclave_domain` is
  // the memory domain of the trusted runtime (mapped files read from the
  // enclave pay enclave costs).
  EnclaveShim(Env& env, sgx::TransitionBridge& bridge, HostIo& host,
              MemoryDomain& enclave_domain);

  // Registers the ocall handlers on the bridge. Must be called once,
  // before any relayed call.
  void register_ocalls();

  // Adds the shim's ocalls to the enclave's EDL.
  static void add_edl_entries(sgx::EdlSpec& edl);

  // Size of the shim library linked into the enclave (vs. the millions of
  // LoC of a library OS — §1, §5.4).
  static std::uint64_t shim_code_bytes() { return 48ull << 10; }

  FileId open(const std::string& path, vfs::OpenMode mode) override;
  void write(FileId file, const void* buf, std::uint64_t len) override;
  std::uint64_t read(FileId file, void* buf, std::uint64_t len) override;
  void seek(FileId file, std::uint64_t pos) override;
  void flush(FileId file) override;
  void close(FileId file) override;
  bool exists(const std::string& path) override;
  std::uint64_t file_size(const std::string& path) override;
  void remove(const std::string& path) override;
  std::vector<std::string> list(const std::string& prefix) override;
  std::shared_ptr<MappedFile> map(const std::string& path) override;

  const IoStats& stats() const override { return stats_; }

 private:
  ByteBuffer relay(const std::string& ocall, const ByteBuffer& request);

  Env& env_;
  sgx::TransitionBridge& bridge_;
  HostIo& host_;
  MemoryDomain& enclave_domain_;
  IoStats stats_;
  bool registered_ = false;
};

}  // namespace msv::shim
