#include "shim/host_io.h"

#include <cstring>

#include "support/error.h"

namespace msv::shim {

MappedFile::MappedFile(Env& env, MemoryDomain& domain,
                       std::shared_ptr<const std::vector<std::uint8_t>> data,
                       std::string path,
                       std::function<void(std::uint64_t)> fetch_page)
    : env_(env),
      domain_(domain),
      data_(std::move(data)),
      path_(std::move(path)),
      fetch_page_(std::move(fetch_page)),
      region_(domain_.register_region("mmap:" + path_)),
      touched_((data_->size() + env.cost.page_bytes - 1) / env.cost.page_bytes,
               false) {
  env_.clock.advance(env_.cost.mmap_base_cycles);
}

void MappedFile::touch_range(std::uint64_t offset, std::uint64_t len) {
  if (len == 0) return;
  const std::uint64_t page_bytes = env_.cost.page_bytes;
  const std::uint64_t first = offset / page_bytes;
  const std::uint64_t last = (offset + len - 1) / page_bytes;
  for (std::uint64_t p = first; p <= last; ++p) {
    if (!touched_[p]) {
      touched_[p] = true;
      ++touched_count_;
      // First touch: the page is faulted in.
      if (fetch_page_) {
        // Enclave mapping: the shim pulls the page through the boundary.
        fetch_page_(p);
      } else {
        env_.clock.advance(env_.cost.soft_page_fault_cycles);
        if (domain_.trusted()) {
          // Enclave domain without a shim (direct use in tests): charge
          // the boundary copy inline.
          env_.clock.advance(static_cast<Cycles>(
              static_cast<double>(page_bytes) *
              env_.cost.edge_copy_cycles_per_byte));
        }
      }
    }
    domain_.touch_pages(region_, p, 1);
  }
}

void MappedFile::read(std::uint64_t offset, void* dst, std::uint64_t len) {
  if (offset + len > data_->size()) {
    throw RuntimeFault("mmap read past end of " + path_);
  }
  touch_range(offset, len);
  domain_.charge_traffic(len);
  std::memcpy(dst, data_->data() + offset, len);
}

std::uint32_t MappedFile::read_u32(std::uint64_t offset) {
  std::uint32_t v;
  read(offset, &v, sizeof(v));
  return v;
}

std::uint64_t MappedFile::read_u64(std::uint64_t offset) {
  std::uint64_t v;
  read(offset, &v, sizeof(v));
  return v;
}

HostIo::HostIo(Env& env, MemoryDomain& domain) : env_(env), domain_(domain) {}

vfs::File& HostIo::file(FileId id) {
  const auto it = open_files_.find(id);
  if (it == open_files_.end()) {
    throw RuntimeFault("I/O on closed or unknown file id " +
                       std::to_string(id));
  }
  return *it->second;
}

FileId HostIo::open(const std::string& path, vfs::OpenMode mode) {
  env_.clock.advance(env_.cost.file_open_cycles);
  ++stats_.opens;
  const FileId id = next_id_++;
  open_files_.emplace(id, env_.fs->open(path, mode));
  return id;
}

void HostIo::write(FileId id, const void* buf, std::uint64_t len) {
  env_.clock.advance(env_.cost.syscall_base_cycles +
                     static_cast<Cycles>(static_cast<double>(len) *
                                         env_.cost.io_write_cycles_per_byte));
  ++stats_.writes;
  stats_.bytes_written += len;
  file(id).write(buf, len);
}

std::uint64_t HostIo::read(FileId id, void* buf, std::uint64_t len) {
  env_.clock.advance(env_.cost.syscall_base_cycles +
                     static_cast<Cycles>(static_cast<double>(len) *
                                         env_.cost.io_read_cycles_per_byte));
  ++stats_.reads;
  const std::uint64_t got = file(id).read(buf, len);
  stats_.bytes_read += got;
  return got;
}

void HostIo::seek(FileId id, std::uint64_t pos) {
  env_.clock.advance(env_.cost.syscall_base_cycles);
  ++stats_.other_calls;
  file(id).seek(pos);
}

void HostIo::flush(FileId id) {
  env_.clock.advance(env_.cost.syscall_base_cycles);
  ++stats_.other_calls;
  file(id).flush();
}

void HostIo::close(FileId id) {
  env_.clock.advance(env_.cost.syscall_base_cycles);
  ++stats_.other_calls;
  file(id);  // validate
  open_files_.erase(id);
}

bool HostIo::exists(const std::string& path) {
  env_.clock.advance(env_.cost.syscall_base_cycles);
  ++stats_.other_calls;
  return env_.fs->exists(path);
}

std::uint64_t HostIo::file_size(const std::string& path) {
  env_.clock.advance(env_.cost.syscall_base_cycles);
  ++stats_.other_calls;
  return env_.fs->file_size(path);
}

void HostIo::remove(const std::string& path) {
  env_.clock.advance(env_.cost.syscall_base_cycles);
  ++stats_.other_calls;
  env_.fs->remove(path);
}

std::vector<std::string> HostIo::list(const std::string& prefix) {
  env_.clock.advance(env_.cost.syscall_base_cycles);
  ++stats_.other_calls;
  return env_.fs->list(prefix);
}

std::shared_ptr<MappedFile> HostIo::map(const std::string& path) {
  env_.clock.advance(env_.cost.mmap_base_cycles);
  ++stats_.maps;
  return std::make_shared<MappedFile>(env_, domain_, env_.fs->map(path), path);
}

}  // namespace msv::shim
