#include "shim/enclave_shim.h"

#include <cstring>

#include "support/error.h"

namespace msv::shim {
namespace {

constexpr const char* kOcallNames[] = {
    "ocall_fopen",  "ocall_fwrite", "ocall_fread",  "ocall_fseek",
    "ocall_fflush", "ocall_fclose", "ocall_access", "ocall_stat",
    "ocall_unlink", "ocall_listdir", "ocall_mmap", "ocall_mmap_fetch",
};

}  // namespace

EnclaveShim::EnclaveShim(Env& env, sgx::TransitionBridge& bridge, HostIo& host,
                         MemoryDomain& enclave_domain)
    : env_(env), bridge_(bridge), host_(host), enclave_domain_(enclave_domain) {}

void EnclaveShim::add_edl_entries(sgx::EdlSpec& edl) {
  for (const char* name : kOcallNames) {
    sgx::EdlFunction fn;
    fn.name = name;
    fn.return_type = "long";
    fn.params = {
        {"const uint8_t*", "req", sgx::EdlDirection::kIn, "req_len"},
        {"size_t", "req_len", sgx::EdlDirection::kIn, ""},
        {"uint8_t*", "resp", sgx::EdlDirection::kOut, "resp_len"},
        {"size_t", "resp_len", sgx::EdlDirection::kIn, ""},
    };
    edl.add_ocall(std::move(fn));
  }
}

void EnclaveShim::register_ocalls() {
  MSV_CHECK_MSG(!registered_, "shim ocalls registered twice");
  registered_ = true;

  bridge_.register_ocall("ocall_fopen", [this](ByteReader& r) {
    const std::string path = r.get_string();
    const auto mode = static_cast<vfs::OpenMode>(r.get_u8());
    ByteBuffer out;
    out.put_u64(host_.open(path, mode));
    return out;
  });
  bridge_.register_ocall("ocall_fwrite", [this](ByteReader& r) {
    const FileId id = r.get_u64();
    const std::uint64_t len = r.get_varint();
    std::vector<std::uint8_t> buf(len);
    r.get_bytes(buf.data(), len);
    host_.write(id, buf.data(), len);
    return ByteBuffer();
  });
  bridge_.register_ocall("ocall_fread", [this](ByteReader& r) {
    const FileId id = r.get_u64();
    const std::uint64_t len = r.get_varint();
    std::vector<std::uint8_t> buf(len);
    const std::uint64_t got = host_.read(id, buf.data(), len);
    ByteBuffer out;
    out.put_varint(got);
    out.put_bytes(buf.data(), got);
    return out;
  });
  bridge_.register_ocall("ocall_fseek", [this](ByteReader& r) {
    const FileId id = r.get_u64();
    host_.seek(id, r.get_u64());
    return ByteBuffer();
  });
  bridge_.register_ocall("ocall_fflush", [this](ByteReader& r) {
    host_.flush(r.get_u64());
    return ByteBuffer();
  });
  bridge_.register_ocall("ocall_fclose", [this](ByteReader& r) {
    host_.close(r.get_u64());
    return ByteBuffer();
  });
  bridge_.register_ocall("ocall_access", [this](ByteReader& r) {
    ByteBuffer out;
    out.put_u8(host_.exists(r.get_string()) ? 1 : 0);
    return out;
  });
  bridge_.register_ocall("ocall_stat", [this](ByteReader& r) {
    ByteBuffer out;
    out.put_u64(host_.file_size(r.get_string()));
    return out;
  });
  bridge_.register_ocall("ocall_unlink", [this](ByteReader& r) {
    host_.remove(r.get_string());
    return ByteBuffer();
  });
  bridge_.register_ocall("ocall_listdir", [this](ByteReader& r) {
    const auto names = host_.list(r.get_string());
    ByteBuffer out;
    out.put_varint(names.size());
    for (const auto& n : names) out.put_string(n);
    return out;
  });
  bridge_.register_ocall("ocall_mmap", [this](ByteReader& r) {
    // The helper validates the path; the enclave-side map() fetches pages
    // on demand through ocall_mmap_fetch.
    ByteBuffer out;
    out.put_u64(host_.file_size(r.get_string()));
    return out;
  });
  bridge_.register_ocall("ocall_mmap_fetch", [this](ByteReader& r) {
    r.get_u64();  // page index; the helper reads it from its own mapping
    env_.clock.advance(env_.cost.soft_page_fault_cycles);
    // The page content travels back as the response payload; the bridge
    // charges the boundary copy.
    ByteBuffer out;
    const std::vector<std::uint8_t> page(env_.cost.page_bytes, 0);
    out.put_bytes(page.data(), page.size());
    return out;
  });
}

ByteBuffer EnclaveShim::relay(const std::string& ocall,
                              const ByteBuffer& request) {
  return bridge_.ocall(ocall, request);
}

FileId EnclaveShim::open(const std::string& path, vfs::OpenMode mode) {
  ++stats_.opens;
  ByteBuffer req;
  req.put_string(path);
  req.put_u8(static_cast<std::uint8_t>(mode));
  ByteBuffer resp = relay("ocall_fopen", req);
  ByteReader r(resp);
  return r.get_u64();
}

void EnclaveShim::write(FileId file, const void* buf, std::uint64_t len) {
  ++stats_.writes;
  stats_.bytes_written += len;
  ByteBuffer req;
  req.put_u64(file);
  req.put_varint(len);
  req.put_bytes(buf, len);
  relay("ocall_fwrite", req);
}

std::uint64_t EnclaveShim::read(FileId file, void* buf, std::uint64_t len) {
  ++stats_.reads;
  ByteBuffer req;
  req.put_u64(file);
  req.put_varint(len);
  ByteBuffer resp = relay("ocall_fread", req);
  ByteReader r(resp);
  const std::uint64_t got = r.get_varint();
  MSV_CHECK_MSG(got <= len, "shim helper returned too many bytes");
  r.get_bytes(buf, got);
  stats_.bytes_read += got;
  return got;
}

void EnclaveShim::seek(FileId file, std::uint64_t pos) {
  ++stats_.other_calls;
  ByteBuffer req;
  req.put_u64(file);
  req.put_u64(pos);
  relay("ocall_fseek", req);
}

void EnclaveShim::flush(FileId file) {
  ++stats_.other_calls;
  ByteBuffer req;
  req.put_u64(file);
  relay("ocall_fflush", req);
}

void EnclaveShim::close(FileId file) {
  ++stats_.other_calls;
  ByteBuffer req;
  req.put_u64(file);
  relay("ocall_fclose", req);
}

bool EnclaveShim::exists(const std::string& path) {
  ++stats_.other_calls;
  ByteBuffer req;
  req.put_string(path);
  ByteBuffer resp = relay("ocall_access", req);
  ByteReader r(resp);
  return r.get_u8() != 0;
}

std::uint64_t EnclaveShim::file_size(const std::string& path) {
  ++stats_.other_calls;
  ByteBuffer req;
  req.put_string(path);
  ByteBuffer resp = relay("ocall_stat", req);
  ByteReader r(resp);
  return r.get_u64();
}

void EnclaveShim::remove(const std::string& path) {
  ++stats_.other_calls;
  ByteBuffer req;
  req.put_string(path);
  relay("ocall_unlink", req);
}

std::vector<std::string> EnclaveShim::list(const std::string& prefix) {
  ++stats_.other_calls;
  ByteBuffer req;
  req.put_string(prefix);
  ByteBuffer resp = relay("ocall_listdir", req);
  ByteReader r(resp);
  std::vector<std::string> names(r.get_varint());
  for (auto& n : names) n = r.get_string();
  return names;
}

std::shared_ptr<MappedFile> EnclaveShim::map(const std::string& path) {
  ++stats_.maps;
  ByteBuffer req;
  req.put_string(path);
  relay("ocall_mmap", req);  // charges the ocall; validates existence
  // The snapshot itself is pulled page by page on first touch through an
  // ocall per page — the reader-side ocalls the paper counts in §6.5.
  return std::make_shared<MappedFile>(
      env_, enclave_domain_, env_.fs->map(path), path,
      [this](std::uint64_t page) {
        ByteBuffer req_page;
        req_page.put_u64(page);
        relay("ocall_mmap_fetch", req_page);
      });
}

}  // namespace msv::shim
