// SHA-256 (FIPS 180-4). Used by the SGX substrate for enclave measurement:
// the image builder EADD/EEXTENDs every page of the trusted image into a
// measurement that load-time verification checks (§2.1: "cryptographically
// hashed for verification at runtime").
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace msv {

class Sha256 {
 public:
  using Digest = std::array<std::uint8_t, 32>;

  Sha256();

  void update(const void* data, std::size_t len);
  void update(std::string_view s) { update(s.data(), s.size()); }
  Digest finish();

  static Digest hash(std::string_view s);
  static std::string hex(const Digest& d);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::uint64_t total_len_ = 0;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
  bool finished_ = false;
};

}  // namespace msv
