// FNV-1a hashing — the cheap hash used for identity hash codes (the paper's
// default proxy hash, §5.2) and for bucket selection in the PalDB index.
#pragma once

#include <cstdint>
#include <string_view>

namespace msv {

constexpr std::uint64_t kFnvOffset64 = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime64 = 0x100000001b3ull;

constexpr std::uint64_t fnv1a64(const void* data, std::size_t len,
                                std::uint64_t seed = kFnvOffset64) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime64;
  }
  return h;
}

constexpr std::uint64_t fnv1a64(std::string_view s,
                                std::uint64_t seed = kFnvOffset64) {
  return fnv1a64(s.data(), s.size(), seed);
}

constexpr std::uint32_t fnv1a32(std::string_view s) {
  std::uint32_t h = 0x811c9dc5u;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x01000193u;
  }
  return h;
}

}  // namespace msv
