// Small statistics helpers for benchmark reporting.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace msv {

// Accumulates samples and computes summary statistics.
class Samples {
 public:
  void add(double v) { values_.push_back(v); }
  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double min() const;
  double max() const;
  double mean() const;
  double stddev() const;  // sample standard deviation
  // Linear-interpolation percentile, p in [0, 100].
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

 private:
  std::vector<double> values_;
};

// Formats a duration in seconds with an appropriate SI unit (ns/us/ms/s).
std::string format_seconds(double s);

// Formats a byte count with binary units (B/KiB/MiB/GiB).
std::string format_bytes(double bytes);

// Formats `v` with `digits` significant fraction digits.
std::string format_fixed(double v, int digits);

}  // namespace msv
