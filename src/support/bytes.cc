#include "support/bytes.h"

#include <cstring>

#include "support/error.h"

namespace msv {

void ByteBuffer::put_f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(bits);
}

void ByteBuffer::put_string(std::string_view s) {
  put_varint(s.size());
  put_bytes(s.data(), s.size());
}

void ByteReader::fail_truncated() {
  throw RuntimeFault("ByteReader: truncated input");
}

void ByteReader::fail_varint() {
  throw RuntimeFault("ByteReader: varint too long");
}

void ByteReader::seek(std::size_t pos) {
  MSV_CHECK_MSG(pos <= size_, "ByteReader::seek out of range");
  pos_ = pos;
}

double ByteReader::get_f64() {
  const std::uint64_t bits = get_u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void ByteReader::get_bytes(void* p, std::size_t n) {
  need(n);
  std::memcpy(p, data_ + pos_, n);
  pos_ += n;
}

std::string ByteReader::get_string() {
  const std::uint64_t n = get_varint();
  need(n);
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

}  // namespace msv
