#include "support/bytes.h"

#include <cstring>

#include "support/error.h"

namespace msv {

void ByteBuffer::put_u16(std::uint16_t v) {
  put_u8(static_cast<std::uint8_t>(v));
  put_u8(static_cast<std::uint8_t>(v >> 8));
}

void ByteBuffer::put_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) put_u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteBuffer::put_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) put_u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteBuffer::put_f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(bits);
}

void ByteBuffer::put_varint(std::uint64_t v) {
  while (v >= 0x80) {
    put_u8(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  put_u8(static_cast<std::uint8_t>(v));
}

void ByteBuffer::put_bytes(const void* p, std::size_t n) {
  const auto* b = static_cast<const std::uint8_t*>(p);
  data_.insert(data_.end(), b, b + n);
}

void ByteBuffer::put_string(std::string_view s) {
  put_varint(s.size());
  put_bytes(s.data(), s.size());
}

void ByteReader::need(std::size_t n) const {
  if (remaining() < n) throw RuntimeFault("ByteReader: truncated input");
}

void ByteReader::seek(std::size_t pos) {
  MSV_CHECK_MSG(pos <= size_, "ByteReader::seek out of range");
  pos_ = pos;
}

std::uint8_t ByteReader::get_u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::get_u16() {
  std::uint16_t v = get_u8();
  v |= static_cast<std::uint16_t>(get_u8()) << 8;
  return v;
}

std::uint32_t ByteReader::get_u32() {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(get_u8()) << (8 * i);
  return v;
}

std::uint64_t ByteReader::get_u64() {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(get_u8()) << (8 * i);
  return v;
}

double ByteReader::get_f64() {
  const std::uint64_t bits = get_u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::uint64_t ByteReader::get_varint() {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    const std::uint8_t b = get_u8();
    if (shift >= 64) throw RuntimeFault("ByteReader: varint too long");
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if (!(b & 0x80)) break;
    shift += 7;
  }
  return v;
}

void ByteReader::get_bytes(void* p, std::size_t n) {
  need(n);
  std::memcpy(p, data_ + pos_, n);
  pos_ += n;
}

std::string ByteReader::get_string() {
  const std::uint64_t n = get_varint();
  need(n);
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

}  // namespace msv
