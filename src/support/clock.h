// Deterministic virtual time.
//
// All latencies reported by benchmarks in this repository are *simulated*:
// a VirtualClock counts CPU cycles charged by the cost model (see
// cost_model.h) and converts them to seconds at the frequency of the paper's
// evaluation machine (3.8 GHz Xeon E3-1270). The clock also owns a timer
// queue so periodic activities — most importantly the GC helper threads of
// §5.5 — fire at exact simulated instants, which keeps every test and
// benchmark reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace msv {

using Cycles = std::uint64_t;

class VirtualClock {
 public:
  explicit VirtualClock(double hz = 3.8e9) : hz_(hz) {}

  VirtualClock(const VirtualClock&) = delete;
  VirtualClock& operator=(const VirtualClock&) = delete;

  Cycles now() const { return now_; }
  double seconds() const { return static_cast<double>(now_) / hz_; }
  double hz() const { return hz_; }

  Cycles seconds_to_cycles(double s) const {
    return static_cast<Cycles>(s * hz_);
  }

  // Advances time by `c` cycles, firing any timers that become due. Timer
  // callbacks run with the clock set to their exact deadline, so a periodic
  // timer observes evenly spaced instants regardless of advance granularity.
  void advance(Cycles c);

  // Runs `fn` with the clock detached: every advance() it performs is
  // accumulated and returned instead of moving now() (timers do not fire).
  // This measures the exact cycle cost of an activity that executes on a
  // core of its own — the GC helper threads of §5.5 — so the serving layer
  // can realize the cost as a sleep of the owning isolate rather than a
  // stall of the shared timeline. Nesting is allowed; the inner call
  // returns only its own charges.
  Cycles measure_detached(const std::function<void()>& fn);

  // Schedules `fn` to run once when the clock reaches `deadline` (absolute).
  // Returns an id usable with cancel().
  std::uint64_t schedule_at(Cycles deadline, std::function<void()> fn);

  // Schedules `fn` every `period` cycles, first firing at now()+period.
  // The callback keeps firing until cancelled.
  std::uint64_t schedule_every(Cycles period, std::function<void()> fn);

  void cancel(std::uint64_t timer_id);

  // Number of timers currently scheduled (periodic timers count once).
  std::size_t pending_timers() const;

 private:
  struct Timer {
    Cycles deadline;
    std::uint64_t id;
    Cycles period;  // 0 for one-shot
    std::function<void()> fn;
    bool operator>(const Timer& o) const {
      return deadline != o.deadline ? deadline > o.deadline : id > o.id;
    }
  };

  double hz_;
  Cycles now_ = 0;
  std::uint32_t detached_depth_ = 0;
  Cycles detached_total_ = 0;
  std::uint64_t next_id_ = 1;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timers_;
  std::vector<std::uint64_t> cancelled_;
  bool firing_ = false;

  bool is_cancelled(std::uint64_t id) const;
};

}  // namespace msv
