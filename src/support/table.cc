#include "support/table.h"

#include <cstdio>

#include "support/error.h"

namespace msv {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  MSV_CHECK_MSG(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  MSV_CHECK_MSG(cells.size() == headers_.size(),
                "row width does not match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      line += c == 0 ? "| " : " | ";
      line += cells[c];
      line.append(widths[c] - cells[c].size(), ' ');
    }
    line += " |\n";
    return line;
  };
  std::string out = render_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += c == 0 ? "|-" : "-|-";
    rule.append(widths[c], '-');
  }
  rule += "-|\n";
  out += rule;
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace msv
