#include "support/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "support/error.h"

namespace msv {

double Samples::min() const {
  MSV_CHECK(!values_.empty());
  return *std::min_element(values_.begin(), values_.end());
}

double Samples::max() const {
  MSV_CHECK(!values_.empty());
  return *std::max_element(values_.begin(), values_.end());
}

double Samples::mean() const {
  MSV_CHECK(!values_.empty());
  double sum = 0;
  for (const double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double Samples::stddev() const {
  MSV_CHECK(!values_.empty());
  if (values_.size() == 1) return 0.0;
  const double m = mean();
  double acc = 0;
  for (const double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double Samples::percentile(double p) const {
  MSV_CHECK(!values_.empty());
  MSV_CHECK(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

std::string format_seconds(double s) {
  char buf[64];
  if (s < 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.1f ns", s * 1e9);
  } else if (s < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2f us", s * 1e6);
  } else if (s < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f s", s);
  }
  return buf;
}

std::string format_bytes(double bytes) {
  char buf[64];
  if (bytes < 1024) {
    std::snprintf(buf, sizeof(buf), "%.0f B", bytes);
  } else if (bytes < 1024.0 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB", bytes / 1024);
  } else if (bytes < 1024.0 * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB", bytes / (1024.0 * 1024));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", bytes / (1024.0 * 1024 * 1024));
  }
  return buf;
}

std::string format_fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

}  // namespace msv
