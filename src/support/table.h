// Fixed-width console table used by the benchmark harnesses to print the
// rows/series of each paper table and figure.
#pragma once

#include <string>
#include <vector>

namespace msv {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Adds a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  // Renders the table with column separators and a header rule.
  std::string to_string() const;

  // Renders and writes to stdout.
  void print() const;

  // Raw cells, for machine-readable exports (bench --json).
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace msv
