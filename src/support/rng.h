// Deterministic pseudo-random numbers (xorshift64*).
//
// The standard library engines are avoided on purpose: their exact output is
// implementation-defined for the distributions, and the benchmarks must be
// reproducible across toolchains.
#pragma once

#include <cstdint>

#include "support/error.h"

namespace msv {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
      : state_(seed ? seed : 1) {}

  std::uint64_t next_u64() {
    std::uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545f4914f6cdd1dull;
  }

  // Uniform in [0, bound).
  std::uint64_t next_below(std::uint64_t bound) {
    MSV_CHECK(bound > 0);
    return next_u64() % bound;
  }

  // Uniform in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    MSV_CHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  // Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool next_bool(double p_true) { return next_double() < p_true; }

 private:
  std::uint64_t state_;
};

}  // namespace msv
