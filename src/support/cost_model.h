// The cycle-cost model behind all simulated latencies.
//
// Every interesting event in the simulation — an enclave transition, a byte
// copied across the boundary, an EPC page fault, a GC copy, a syscall —
// charges cycles to the VirtualClock according to the constants below. The
// defaults are calibrated against the numbers reported or cited by the paper
// (Middleware '21, §2.1 and §6) and against published SGX measurements:
//
//  * ecall/ocall hardware transition: "up to 13,100 cycles" (§2.1, citing
//    sgx-perf and HotCalls).
//  * GraalVM isolate attach on the callee side of a relayed call dominates
//    the end-to-end proxy cost; it is calibrated so that proxy creation is
//    ~4 orders of magnitude over concrete creation outside the enclave and
//    ~3 orders inside (Fig. 3).
//  * EPC page-in ≈ 10k cycles/page (EAUG/ELDU fast path; the worst-case
//    eviction+reload pair reported by VAULT/Eleos is the sum of both
//    constants).
//  * The MEE encrypts/decrypts cache lines between the CPU and the EPC; we
//    model it as a multiplier on DRAM-level memory traffic charged inside
//    the enclave (§6.5's explanation of CPU-intensive slowdown).
//
// The struct is deliberately plain data: benchmarks that sweep a parameter
// (e.g. the EPC-size ablation) copy it and adjust fields.
#pragma once

#include <cstdint>

#include "support/clock.h"

namespace msv {

struct CostModel {
  // ---- CPU ----
  double cpu_hz = 3.8e9;  // Xeon E3-1270 v6 (paper §6.1)

  // ---- SGX transitions (§2.1) ----
  Cycles ecall_cycles = 13'100;   // hardware enclave entry + exit
  Cycles ocall_cycles = 10'600;   // enclave exit + re-entry (slightly cheaper)
  // GraalVM isolate attach performed by the relay machinery on the callee
  // side of each cross-runtime call. Entering the *trusted* isolate is more
  // expensive: its thread-local structures live in EPC memory.
  Cycles isolate_attach_trusted_cycles = 480'000;   // ~126 us
  Cycles isolate_attach_untrusted_cycles = 120'000; // ~32 us
  // Edge-routine marshalling (Edger8r-generated bridge): per call and per
  // byte copied across the enclave boundary.
  Cycles edge_call_cycles = 600;
  double edge_copy_cycles_per_byte = 0.4;

  // ---- EPC / MEE (§2.1) ----
  std::uint64_t epc_usable_bytes = 93'500ull * 1024;  // 93.5 MB (§6.1)
  std::uint64_t page_bytes = 4096;
  Cycles epc_page_in_cycles = 10'000;  // EAUG+EACCEPT / ELDU path
  Cycles epc_page_out_cycles = 7'000;
  // Multiplier applied to DRAM-level memory-traffic charges issued by code
  // running inside the enclave (MEE encryption/decryption of cache lines,
  // plus driver-side effects). Calibrated so GC inside the enclave is about
  // an order of magnitude slower than outside (Fig. 5a).
  double mee_traffic_factor = 10.0;

  // ---- Enclave lifecycle ----
  Cycles enclave_create_base_cycles = 20'000'000;  // EINIT, TCS setup, ...
  double enclave_measure_cycles_per_byte = 2.0;    // EADD+EEXTEND hashing

  // ---- Managed runtime (GraalVM-native-image-like) ----
  Cycles alloc_cycles = 12;               // bump-pointer allocation
  double alloc_cycles_per_byte = 0.06;    // header init + zeroing
  Cycles field_access_cycles = 2;
  Cycles gc_base_cycles = 12'000;         // stop-the-world entry/exit
  double gc_copy_cycles_per_byte = 0.15;  // CPU work of the semispace copy
  // DRAM streaming cost per byte (~15 GB/s at 3.8 GHz); the MEE factor
  // multiplies this inside the enclave.
  double dram_cycles_per_byte = 0.25;
  Cycles gc_scan_root_cycles = 14;
  Cycles weakref_scan_entry_cycles = 9;
  Cycles registry_op_cycles = 120;        // mirror-proxy registry insert/get

  // ---- Neutral-object serialization (§5.2) ----
  // Per-element costs model Java object-stream serialization (~1 us per
  // boxed element), which is what drives Fig. 4b's x10 / x3 penalties.
  Cycles serialize_base_cycles = 900;
  Cycles serialize_element_cycles = 4'800;
  double serialize_cycles_per_byte = 1.1;
  Cycles deserialize_base_cycles = 1'100;
  Cycles deserialize_element_cycles = 5'600;
  double deserialize_cycles_per_byte = 1.3;

  // ---- Host OS (the real libc invoked by the shim helper, §5.4) ----
  Cycles syscall_base_cycles = 3'800;     // mode switch + VFS dispatch
  double io_write_cycles_per_byte = 0.55; // page-cache copy
  double io_read_cycles_per_byte = 0.45;
  Cycles file_open_cycles = 9'000;
  Cycles mmap_base_cycles = 14'000;
  Cycles soft_page_fault_cycles = 2'600;  // first touch of a mapped page

  // ---- Interpreter ----
  Cycles ir_op_cycles = 3;        // dispatch cost per executed IR instruction
  Cycles method_call_cycles = 14; // frame setup of a (local) method call

  // ---- Switchless calls (future work §7, HotCalls-style) ----
  Cycles switchless_call_cycles = 1'300;  // spinlock handshake, no transition
  // Futex wake of a sleeping switchless worker (the SDK's adaptive mode
  // parks idle workers instead of spinning): syscall + scheduler latency
  // paid once per wakeup, on top of the handshake. Busy-wait workers skip
  // this but burn their core while idle (tracked as idle_spin_cycles).
  Cycles switchless_wake_cycles = 8'000;

  // ---- JVM baseline (SCONE+JVM, §6.6) ----
  Cycles jvm_startup_cycles = 800'000'000;    // JVM boot, core classes, JIT
  Cycles jvm_class_load_cycles = 1'000'000;   // per application class
  double jvm_compute_factor = 1.35;   // residual interp/JIT-warmup overhead
  double jvm_alloc_factor = 2.1;      // object headers, boxing, card marks
  double jvm_heap_bloat_factor = 2.4; // live-heap expansion vs native image
  // HotSpot's generational collector is far more efficient than the native
  // image's serial semispace GC on allocation-heavy workloads (§6.6, [28],
  // Table 1's Monte_Carlo row): a scavenge touches only young survivors
  // while the serial GC re-copies the entire live window every collection.
  // This rescales the measured NI GC share for the JVM estimate.
  double jvm_gc_efficiency = 0.05;
  // SCONE adds its own shielding layer on syscalls.
  double scone_syscall_factor = 1.8;

  // Model calibrated to the paper's testbed; identical to the defaults.
  static CostModel paper() { return CostModel{}; }

  Cycles seconds_to_cycles(double s) const {
    return static_cast<Cycles>(s * cpu_hz);
  }
};

}  // namespace msv
