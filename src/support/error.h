// Error types shared across the Montsalvat library.
//
// Errors that indicate misuse of the public API or an invalid application
// model throw ConfigError; violations of internal invariants detected at
// run time throw RuntimeFault. Both derive from Error so callers can catch
// everything from this library with one handler.
#pragma once

#include <stdexcept>
#include <string>

namespace msv {

// Base class for all exceptions thrown by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// An invalid configuration, application model, or API misuse.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

// An internal invariant was violated during simulation.
class RuntimeFault : public Error {
 public:
  explicit RuntimeFault(const std::string& what) : Error(what) {}
};

// A security violation detected by the simulated SGX substrate, e.g. code
// outside the enclave touching enclave memory.
class SecurityFault : public Error {
 public:
  explicit SecurityFault(const std::string& what) : Error(what) {}
};

// Malformed bytecode trapped by the interpreter's operand decoding: an
// out-of-bounds constant-pool/name-pool/local/field index or jump target.
// Derives from RuntimeFault so existing handlers keep working; the typed
// subclass lets tests and the verify gate distinguish "the bytecode is
// broken" from "the simulation violated an invariant".
class TrapError : public RuntimeFault {
 public:
  explicit TrapError(const std::string& what) : RuntimeFault(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  throw RuntimeFault(std::string("check failed: ") + expr + " at " + file +
                     ":" + std::to_string(line) +
                     (msg.empty() ? "" : (": " + msg)));
}
}  // namespace detail

}  // namespace msv

// Invariant check that throws RuntimeFault (never compiled out: the
// simulation relies on these checks as part of its contract).
#define MSV_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr)) ::msv::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define MSV_CHECK_MSG(expr, msg)                                      \
  do {                                                                \
    if (!(expr)) ::msv::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
