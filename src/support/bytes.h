// Growable byte buffer with little-endian primitive encoding.
//
// Used by the neutral-object serializer (src/rmi), the PalDB store format
// (src/apps/paldb) and the GraphChi shard files (src/apps/graphchi).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace msv {

class ByteBuffer {
 public:
  ByteBuffer() = default;
  explicit ByteBuffer(std::vector<std::uint8_t> data) : data_(std::move(data)) {}

  const std::uint8_t* data() const { return data_.data(); }
  std::size_t size() const { return data_.size(); }
  std::size_t capacity() const { return data_.capacity(); }
  bool empty() const { return data_.empty(); }
  // Drops the contents but keeps the allocation — the property BufferArena
  // relies on to amortize marshalling buffers across calls.
  void clear() { data_.clear(); }
  void reserve(std::size_t n) { data_.reserve(n); }
  const std::vector<std::uint8_t>& bytes() const { return data_; }
  std::vector<std::uint8_t> take() { return std::move(data_); }

  // The fixed-width put/get pairs are defined inline: they are the RMI
  // marshalling inner loop and the call overhead is measurable there.
  void put_u8(std::uint8_t v) { data_.push_back(v); }
  void put_u16(std::uint16_t v) {
    put_u8(static_cast<std::uint8_t>(v));
    put_u8(static_cast<std::uint8_t>(v >> 8));
  }
  void put_u32(std::uint32_t v) {
    // One growth check + memcpy instead of four checked push_backs.
    std::uint8_t b[4];
    for (int i = 0; i < 4; ++i) {
      b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
    put_bytes(b, sizeof b);
  }
  void put_u64(std::uint64_t v) {
    std::uint8_t b[8];
    for (int i = 0; i < 8; ++i) {
      b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
    put_bytes(b, sizeof b);
  }
  void put_i32(std::int32_t v) { put_u32(static_cast<std::uint32_t>(v)); }
  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }
  void put_f64(double v);
  // Unsigned LEB128; compact for small lengths and ids.
  void put_varint(std::uint64_t v) {
    while (v >= 0x80) {
      put_u8(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    put_u8(static_cast<std::uint8_t>(v));
  }
  void put_bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    data_.insert(data_.end(), b, b + n);
  }
  // Length-prefixed (varint) string.
  void put_string(std::string_view s);

 private:
  std::vector<std::uint8_t> data_;
};

// Non-owning sequential reader over an encoded buffer. Throws RuntimeFault
// on truncated input.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit ByteReader(const ByteBuffer& b) : ByteReader(b.data(), b.size()) {}

  std::size_t remaining() const { return size_ - pos_; }
  std::size_t position() const { return pos_; }
  // Base pointer of the underlying buffer (position 0). The batch frame
  // decoder slices per-entry views out of one frame without copying.
  const std::uint8_t* raw() const { return data_; }
  bool done() const { return pos_ == size_; }
  void seek(std::size_t pos);

  std::uint8_t get_u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint16_t get_u16() {
    std::uint16_t v = get_u8();
    v |= static_cast<std::uint16_t>(get_u8()) << 8;
    return v;
  }
  std::uint32_t get_u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  std::uint64_t get_u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  std::int32_t get_i32() { return static_cast<std::int32_t>(get_u32()); }
  std::int64_t get_i64() { return static_cast<std::int64_t>(get_u64()); }
  double get_f64();
  std::uint64_t get_varint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      const std::uint8_t b = get_u8();
      if (shift >= 64) fail_varint();
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if (!(b & 0x80)) break;
      shift += 7;
    }
    return v;
  }
  void get_bytes(void* p, std::size_t n);
  std::string get_string();

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;

  void need(std::size_t n) const {
    if (remaining() < n) fail_truncated();
  }
  [[noreturn]] static void fail_truncated();
  [[noreturn]] static void fail_varint();
};

// A small pool of marshalling buffers. The RMI hot path encodes a request
// and decodes a response for every relayed call; acquiring buffers here
// instead of default-constructing them reuses the grown capacity of
// earlier calls, so steady-state marshalling performs no heap allocation.
// Release order is irrelevant (nested ecall/ocall chains release inner
// buffers first; the pool is just a free list).
class BufferArena {
 public:
  struct Stats {
    std::uint64_t acquires = 0;
    std::uint64_t reuses = 0;  // acquires served from the free list
  };

  BufferArena() = default;
  BufferArena(const BufferArena&) = delete;
  BufferArena& operator=(const BufferArena&) = delete;

  // Returns an empty buffer, reusing pooled capacity when available.
  // Inline: the RMI hot path takes two leases per relayed call.
  ByteBuffer acquire() {
    ++stats_.acquires;
    if (free_.empty()) return ByteBuffer();
    ++stats_.reuses;
    std::vector<std::uint8_t> storage = std::move(free_.back());
    free_.pop_back();
    storage.clear();
    return ByteBuffer(std::move(storage));
  }
  // Returns `b`'s storage to the pool (contents are discarded).
  void release(ByteBuffer&& b) {
    if (free_.size() >= kMaxPooled) return;
    std::vector<std::uint8_t> storage = b.take();
    // Don't let one huge payload pin its allocation forever.
    if (storage.capacity() == 0 || storage.capacity() > kMaxPooledCapacity) {
      return;
    }
    free_.push_back(std::move(storage));
  }

  std::size_t pooled() const { return free_.size(); }
  const Stats& stats() const { return stats_; }

 private:
  static constexpr std::size_t kMaxPooled = 16;
  static constexpr std::size_t kMaxPooledCapacity = 1 << 20;  // 1 MiB
  std::vector<std::vector<std::uint8_t>> free_;
  Stats stats_;
};

// RAII lease of one arena buffer; returns it on destruction. Move-only.
class ArenaLease {
 public:
  explicit ArenaLease(BufferArena& arena)
      : arena_(&arena), buf_(arena.acquire()) {}
  ~ArenaLease() {
    if (arena_ != nullptr) arena_->release(std::move(buf_));
  }
  ArenaLease(ArenaLease&& other) noexcept
      : arena_(other.arena_), buf_(std::move(other.buf_)) {
    other.arena_ = nullptr;
  }
  ArenaLease& operator=(ArenaLease&&) = delete;
  ArenaLease(const ArenaLease&) = delete;
  ArenaLease& operator=(const ArenaLease&) = delete;

  ByteBuffer& buf() { return buf_; }
  ByteBuffer& operator*() { return buf_; }
  ByteBuffer* operator->() { return &buf_; }

 private:
  BufferArena* arena_;
  ByteBuffer buf_;
};

}  // namespace msv
