// Growable byte buffer with little-endian primitive encoding.
//
// Used by the neutral-object serializer (src/rmi), the PalDB store format
// (src/apps/paldb) and the GraphChi shard files (src/apps/graphchi).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace msv {

class ByteBuffer {
 public:
  ByteBuffer() = default;
  explicit ByteBuffer(std::vector<std::uint8_t> data) : data_(std::move(data)) {}

  const std::uint8_t* data() const { return data_.data(); }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  void clear() { data_.clear(); }
  const std::vector<std::uint8_t>& bytes() const { return data_; }
  std::vector<std::uint8_t> take() { return std::move(data_); }

  void put_u8(std::uint8_t v) { data_.push_back(v); }
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i32(std::int32_t v) { put_u32(static_cast<std::uint32_t>(v)); }
  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }
  void put_f64(double v);
  // Unsigned LEB128; compact for small lengths and ids.
  void put_varint(std::uint64_t v);
  void put_bytes(const void* p, std::size_t n);
  // Length-prefixed (varint) string.
  void put_string(std::string_view s);

 private:
  std::vector<std::uint8_t> data_;
};

// Non-owning sequential reader over an encoded buffer. Throws RuntimeFault
// on truncated input.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit ByteReader(const ByteBuffer& b) : ByteReader(b.data(), b.size()) {}

  std::size_t remaining() const { return size_ - pos_; }
  std::size_t position() const { return pos_; }
  bool done() const { return pos_ == size_; }
  void seek(std::size_t pos);

  std::uint8_t get_u8();
  std::uint16_t get_u16();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  std::int32_t get_i32() { return static_cast<std::int32_t>(get_u32()); }
  std::int64_t get_i64() { return static_cast<std::int64_t>(get_u64()); }
  double get_f64();
  std::uint64_t get_varint();
  void get_bytes(void* p, std::size_t n);
  std::string get_string();

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;

  void need(std::size_t n) const;
};

}  // namespace msv
