// MD5 (RFC 1321). The paper (§5.2) recommends an MD5-based proxy hash to
// minimise collisions between proxy identities; ProxyHasher (src/rmi) uses
// this implementation when configured for Md5 hashing.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace msv {

class Md5 {
 public:
  using Digest = std::array<std::uint8_t, 16>;

  Md5();

  void update(const void* data, std::size_t len);
  void update(std::string_view s) { update(s.data(), s.size()); }

  // Finalises and returns the digest; the object must not be updated after.
  Digest finish();

  static Digest hash(std::string_view s);
  static std::string hex(const Digest& d);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 4> state_;
  std::uint64_t total_len_ = 0;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
  bool finished_ = false;
};

}  // namespace msv
