#include "support/clock.h"

#include <algorithm>

#include "support/error.h"

namespace msv {

void VirtualClock::advance(Cycles c) {
  if (detached_depth_ > 0) {
    detached_total_ += c;
    return;
  }
  const Cycles target = now_ + c;
  MSV_CHECK_MSG(target >= now_, "virtual clock overflow");
  while (!timers_.empty() && timers_.top().deadline <= target) {
    Timer t = timers_.top();
    timers_.pop();
    if (is_cancelled(t.id)) {
      cancelled_.erase(std::find(cancelled_.begin(), cancelled_.end(), t.id));
      continue;
    }
    now_ = t.deadline;
    if (t.period != 0) {
      Timer next = t;
      next.deadline = t.deadline + t.period;
      timers_.push(std::move(next));
    }
    firing_ = true;
    t.fn();
    firing_ = false;
  }
  now_ = target;
}

Cycles VirtualClock::measure_detached(const std::function<void()>& fn) {
  ++detached_depth_;
  const Cycles before = detached_total_;
  try {
    fn();
  } catch (...) {
    --detached_depth_;
    if (detached_depth_ == 0) detached_total_ = 0;
    throw;
  }
  --detached_depth_;
  const Cycles charged = detached_total_ - before;
  if (detached_depth_ == 0) detached_total_ = 0;
  return charged;
}

std::uint64_t VirtualClock::schedule_at(Cycles deadline,
                                        std::function<void()> fn) {
  MSV_CHECK_MSG(deadline >= now_, "timer deadline in the past");
  const std::uint64_t id = next_id_++;
  timers_.push(Timer{deadline, id, 0, std::move(fn)});
  return id;
}

std::uint64_t VirtualClock::schedule_every(Cycles period,
                                           std::function<void()> fn) {
  MSV_CHECK_MSG(period > 0, "periodic timer needs a non-zero period");
  const std::uint64_t id = next_id_++;
  timers_.push(Timer{now_ + period, id, period, std::move(fn)});
  return id;
}

void VirtualClock::cancel(std::uint64_t timer_id) {
  cancelled_.push_back(timer_id);
}

std::size_t VirtualClock::pending_timers() const {
  return timers_.size() - cancelled_.size();
}

bool VirtualClock::is_cancelled(std::uint64_t id) const {
  return std::find(cancelled_.begin(), cancelled_.end(), id) !=
         cancelled_.end();
}

}  // namespace msv
