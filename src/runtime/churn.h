// Managed-allocation churn.
//
// Converts a workload's allocation pressure (bytes of short-lived Java
// objects — boxed samples, per-edge objects, stream buffers) into *real*
// allocations on an isolate heap, holding a FIFO window of live objects.
// The window size controls how much every semispace collection copies,
// which is the lever behind the serial-GC pathologies of §6.6/Table 1.
#pragma once

#include <cstdint>

#include "runtime/isolate.h"

namespace msv::rt {

struct ChurnResult {
  std::uint64_t allocations = 0;
};

// Allocates ~`total_bytes` of boxes (each `box_payload_bytes` of payload)
// keeping at most `live_window_bytes` of them reachable.
ChurnResult alloc_churn(Isolate& isolate, std::uint64_t total_bytes,
                        std::uint64_t live_window_bytes,
                        std::uint32_t box_payload_bytes = 56);

}  // namespace msv::rt
