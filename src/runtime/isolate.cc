#include "runtime/isolate.h"

#include "support/error.h"

namespace msv::rt {

Isolate::Isolate(Env& env, MemoryDomain& domain, Config config)
    : env_(env), domain_(domain), config_(std::move(config)) {
  heap_ = std::make_unique<Heap>(
      env_, domain_, handles_, weak_refs_,
      Heap::Config{config_.heap_max_bytes, config_.name});
  // The image heap is memory-mapped into the application heap at startup
  // (§2.2): charge the mapping plus first-touch of its pages.
  if (config_.image_heap_bytes > 0) {
    env_.clock.advance(env_.cost.mmap_base_cycles);
    const std::uint64_t region = domain_.register_region(config_.name +
                                                         "/image-heap");
    const std::uint64_t pages =
        (config_.image_heap_bytes + env_.cost.page_bytes - 1) /
        env_.cost.page_bytes;
    domain_.touch_pages(region, 0, pages);
  }
}

// A 100k-deep nested list is a legal neutral value (checkpoints and RMI
// arguments both carry them), so to_slot/from_slot walk the graph with
// explicit frame stacks — allocation order, rooting discipline and
// therefore every simulated charge and GC trigger point are identical to
// the old recursive walk; only the native-stack usage changed.

SlotValue Isolate::to_slot(const Value& v) {
  if (v.type() != ValueType::kList) return to_slot_scalar(v);
  // One frame per open list. Elements convert in order: strings allocate
  // immediately, sublists complete (post-order) before the parent's
  // array is allocated. Each conversion may allocate and collect, so
  // addresses are only taken while no further allocation happens —
  // element objects stay alive through the `rooted` Values (GcRef roots
  // / C++ copies), exactly the old two-pass discipline.
  struct Frame {
    const ValueList* input;
    std::vector<Value> rooted;
    std::size_t next = 0;
  };
  std::vector<Frame> stack;
  stack.push_back({&v.as_list(), {}, 0});
  stack.back().rooted.reserve(v.as_list().size());
  while (true) {
    Frame& f = stack.back();
    if (f.next < f.input->size()) {
      const Value& e = (*f.input)[f.next];
      ++f.next;
      if (e.type() == ValueType::kString) {
        f.rooted.emplace_back(make_ref(heap_->alloc_string(e.as_string())));
      } else if (e.type() == ValueType::kList) {
        stack.push_back({&e.as_list(), {}, 0});
        stack.back().rooted.reserve(e.as_list().size());
      } else {
        f.rooted.push_back(e);
      }
      continue;
    }
    // Every element rooted: allocate the array and fill it (the fill
    // converts only primitives and refs — nothing allocates here).
    const ObjAddr arr =
        heap_->alloc_array(static_cast<std::uint32_t>(f.input->size()));
    const GcRef arr_ref = make_ref(arr);
    for (std::uint32_t i = 0; i < f.rooted.size(); ++i) {
      heap_->set_slot(arr_ref.address(), i, to_slot_scalar(f.rooted[i]));
    }
    stack.pop_back();
    if (stack.empty()) return SlotValue::from_ref(arr_ref.address());
    stack.back().rooted.emplace_back(make_ref(arr_ref.address()));
  }
}

SlotValue Isolate::to_slot_scalar(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return SlotValue::null();
    case ValueType::kBool:
      return SlotValue::from_bool(v.as_bool());
    case ValueType::kI32:
      return SlotValue::from_i32(v.as_i32());
    case ValueType::kI64:
      return SlotValue::from_i64(v.as_i64());
    case ValueType::kF64:
      return SlotValue::from_f64(v.as_f64());
    case ValueType::kString:
      return SlotValue::from_ref(heap_->alloc_string(v.as_string()));
    case ValueType::kRef: {
      const GcRef& r = v.as_ref();
      if (r.is_null()) return SlotValue::null();
      if (r.isolate() != this) {
        throw SecurityFault(
            "cross-isolate reference stored into heap of " + name() +
            " — annotated objects must cross the boundary via proxies");
      }
      return SlotValue::from_ref(r.address());
    }
    case ValueType::kList:
      MSV_CHECK_MSG(false, "to_slot_scalar on a list");
  }
  return SlotValue::null();
}

Value Isolate::from_slot(SlotValue s) {
  const bool is_array = s.tag == SlotTag::kRef && s.as_ref() != kNullAddr &&
                        heap_->kind(s.as_ref()) == ObjectKind::kArray;
  if (!is_array) return from_slot_scalar(s);
  // Materialize a neutral copy, one frame per open array. Arrays are
  // rooted for their whole frame lifetime: from_slot of elements cannot
  // allocate (only strings/arrays do, and those are read, not written),
  // but rooting is cheap and keeps this safe if that ever changes.
  struct Frame {
    GcRef arr;
    ValueList out;
    std::uint32_t n;
    std::uint32_t next = 0;
  };
  std::vector<Frame> stack;
  stack.push_back({make_ref(s.as_ref()), {}, heap_->count(s.as_ref()), 0});
  stack.back().out.reserve(stack.back().n);
  while (true) {
    Frame& f = stack.back();
    if (f.next < f.n) {
      const SlotValue sv = heap_->slot(f.arr.address(), f.next);
      ++f.next;
      const bool sub_array = sv.tag == SlotTag::kRef &&
                             sv.as_ref() != kNullAddr &&
                             heap_->kind(sv.as_ref()) == ObjectKind::kArray;
      if (sub_array) {
        stack.push_back(
            {make_ref(sv.as_ref()), {}, heap_->count(sv.as_ref()), 0});
        stack.back().out.reserve(stack.back().n);
      } else {
        f.out.push_back(from_slot_scalar(sv));
      }
      continue;
    }
    Value done(std::move(f.out));
    stack.pop_back();
    if (stack.empty()) return done;
    stack.back().out.push_back(std::move(done));
  }
}

Value Isolate::from_slot_scalar(SlotValue s) {
  switch (s.tag) {
    case SlotTag::kNull:
      return Value();
    case SlotTag::kBool:
      return Value(s.as_bool());
    case SlotTag::kI32:
      return Value(s.as_i32());
    case SlotTag::kI64:
      return Value(s.as_i64());
    case SlotTag::kF64:
      return Value(s.as_f64());
    case SlotTag::kRef: {
      const ObjAddr addr = s.as_ref();
      if (addr == kNullAddr) return Value();
      switch (heap_->kind(addr)) {
        case ObjectKind::kString:
          return Value(std::string(heap_->string_at(addr)));
        case ObjectKind::kArray:
          MSV_CHECK_MSG(false, "from_slot_scalar on an array");
          return Value();
        case ObjectKind::kInstance:
          return Value(make_ref(addr));
      }
      return Value();
    }
  }
  return Value();
}

GcRef Isolate::new_instance(std::uint32_t class_id,
                            std::uint32_t field_count) {
  return make_ref(heap_->alloc_instance(class_id, field_count));
}

Value Isolate::get_field(const GcRef& obj, std::uint32_t index) {
  MSV_CHECK_MSG(obj.isolate() == this, "field access on a foreign object");
  return from_slot(heap_->slot(obj.address(), index));
}

void Isolate::set_field(const GcRef& obj, std::uint32_t index,
                        const Value& v) {
  MSV_CHECK_MSG(obj.isolate() == this, "field access on a foreign object");
  const SlotValue s = to_slot(v);  // may allocate and move `obj`
  heap_->set_slot(obj.address(), index, s);
}

}  // namespace msv::rt
