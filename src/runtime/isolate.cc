#include "runtime/isolate.h"

#include "support/error.h"

namespace msv::rt {

Isolate::Isolate(Env& env, MemoryDomain& domain, Config config)
    : env_(env), domain_(domain), config_(std::move(config)) {
  heap_ = std::make_unique<Heap>(
      env_, domain_, handles_, weak_refs_,
      Heap::Config{config_.heap_max_bytes, config_.name});
  // The image heap is memory-mapped into the application heap at startup
  // (§2.2): charge the mapping plus first-touch of its pages.
  if (config_.image_heap_bytes > 0) {
    env_.clock.advance(env_.cost.mmap_base_cycles);
    const std::uint64_t region = domain_.register_region(config_.name +
                                                         "/image-heap");
    const std::uint64_t pages =
        (config_.image_heap_bytes + env_.cost.page_bytes - 1) /
        env_.cost.page_bytes;
    domain_.touch_pages(region, 0, pages);
  }
}

SlotValue Isolate::to_slot(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return SlotValue::null();
    case ValueType::kBool:
      return SlotValue::from_bool(v.as_bool());
    case ValueType::kI32:
      return SlotValue::from_i32(v.as_i32());
    case ValueType::kI64:
      return SlotValue::from_i64(v.as_i64());
    case ValueType::kF64:
      return SlotValue::from_f64(v.as_f64());
    case ValueType::kString:
      return SlotValue::from_ref(heap_->alloc_string(v.as_string()));
    case ValueType::kRef: {
      const GcRef& r = v.as_ref();
      if (r.is_null()) return SlotValue::null();
      if (r.isolate() != this) {
        throw SecurityFault(
            "cross-isolate reference stored into heap of " + name() +
            " — annotated objects must cross the boundary via proxies");
      }
      return SlotValue::from_ref(r.address());
    }
    case ValueType::kList: {
      const ValueList& list = v.as_list();
      // Convert elements first: each conversion may allocate and collect,
      // so addresses are only taken while no further allocation happens.
      // Element values are rooted via a temporary array object filled in a
      // second pass; to keep element objects alive during the first pass we
      // hold them as Values (GcRef roots / C++ copies).
      std::vector<Value> rooted;
      rooted.reserve(list.size());
      for (const auto& e : list) {
        if (e.type() == ValueType::kString) {
          rooted.emplace_back(make_ref(heap_->alloc_string(e.as_string())));
        } else if (e.type() == ValueType::kList) {
          const SlotValue s = to_slot(e);
          rooted.emplace_back(make_ref(s.as_ref()));
        } else {
          rooted.push_back(e);
        }
      }
      const ObjAddr arr =
          heap_->alloc_array(static_cast<std::uint32_t>(list.size()));
      const GcRef arr_ref = make_ref(arr);
      for (std::uint32_t i = 0; i < rooted.size(); ++i) {
        heap_->set_slot(arr_ref.address(), i, to_slot(rooted[i]));
      }
      return SlotValue::from_ref(arr_ref.address());
    }
  }
  return SlotValue::null();
}

Value Isolate::from_slot(SlotValue s) {
  switch (s.tag) {
    case SlotTag::kNull:
      return Value();
    case SlotTag::kBool:
      return Value(s.as_bool());
    case SlotTag::kI32:
      return Value(s.as_i32());
    case SlotTag::kI64:
      return Value(s.as_i64());
    case SlotTag::kF64:
      return Value(s.as_f64());
    case SlotTag::kRef: {
      const ObjAddr addr = s.as_ref();
      if (addr == kNullAddr) return Value();
      switch (heap_->kind(addr)) {
        case ObjectKind::kString:
          return Value(std::string(heap_->string_at(addr)));
        case ObjectKind::kArray: {
          // Materialize a neutral copy. Root the array first: from_slot of
          // elements cannot allocate (only strings/arrays do, and those are
          // read, not written), but rooting is cheap and keeps this safe if
          // that ever changes.
          const GcRef arr = make_ref(addr);
          ValueList list;
          const std::uint32_t n = heap_->count(arr.address());
          list.reserve(n);
          for (std::uint32_t i = 0; i < n; ++i) {
            list.push_back(from_slot(heap_->slot(arr.address(), i)));
          }
          return Value(std::move(list));
        }
        case ObjectKind::kInstance:
          return Value(make_ref(addr));
      }
      return Value();
    }
  }
  return Value();
}

GcRef Isolate::new_instance(std::uint32_t class_id,
                            std::uint32_t field_count) {
  return make_ref(heap_->alloc_instance(class_id, field_count));
}

Value Isolate::get_field(const GcRef& obj, std::uint32_t index) {
  MSV_CHECK_MSG(obj.isolate() == this, "field access on a foreign object");
  return from_slot(heap_->slot(obj.address(), index));
}

void Isolate::set_field(const GcRef& obj, std::uint32_t index,
                        const Value& v) {
  MSV_CHECK_MSG(obj.isolate() == this, "field access on a foreign object");
  const SlotValue s = to_slot(v);  // may allocate and move `obj`
  heap_->set_slot(obj.address(), index, s);
}

}  // namespace msv::rt
