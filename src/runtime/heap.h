// A managed heap with a serial semispace stop-and-copy collector — the
// collector GraalVM native images embed (§2.2, §6.4: "GraalVM native
// images embed a serial stop and copy GC").
//
// Allocation is bump-pointer. When a semispace fills up, collect() copies
// the transitive closure of the roots (the isolate's handle table) into the
// other semispace, updating roots and clearing weak references to dead
// objects. All costs — allocation, copying, and crucially the extra MEE/EPC
// traffic when the heap lives inside an enclave — are charged through the
// MemoryDomain, which is what makes in-enclave GC an order of magnitude
// more expensive (Fig. 5a).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/handles.h"
#include "runtime/object.h"
#include "runtime/weakref.h"
#include "sim/domain.h"
#include "sim/env.h"

namespace msv::rt {

// Thrown when a collection cannot free enough space for an allocation.
class OutOfMemoryError : public RuntimeFault {
 public:
  explicit OutOfMemoryError(const std::string& what) : RuntimeFault(what) {}
};

struct HeapStats {
  std::uint64_t allocations = 0;
  std::uint64_t allocated_bytes = 0;
  std::uint64_t gc_count = 0;
  std::uint64_t copied_bytes_total = 0;
  Cycles gc_cycles_total = 0;
  std::uint64_t last_live_bytes = 0;
};

class Heap {
 public:
  struct Config {
    std::uint64_t max_bytes = 64ull << 20;  // both semispaces combined
    std::string name = "heap";
  };

  Heap(Env& env, MemoryDomain& domain, HandleTable& handles,
       WeakRefTable& weak_refs, Config config);

  Heap(const Heap&) = delete;
  Heap& operator=(const Heap&) = delete;

  // ---- Allocation (may trigger a collection) ----
  ObjAddr alloc_instance(std::uint32_t class_id, std::uint32_t field_count);
  ObjAddr alloc_array(std::uint32_t length);
  ObjAddr alloc_string(std::string_view bytes);

  // ---- Object access ----
  ObjectKind kind(ObjAddr addr) const;
  std::uint32_t class_id(ObjAddr addr) const;
  // Field count, array length, or string byte length.
  std::uint32_t count(ObjAddr addr) const;
  std::uint32_t identity_hash(ObjAddr addr) const;
  std::uint32_t object_bytes(ObjAddr addr) const;

  SlotValue slot(ObjAddr addr, std::uint32_t index) const;
  void set_slot(ObjAddr addr, std::uint32_t index, SlotValue value);
  std::string_view string_at(ObjAddr addr) const;

  // ---- Collection ----
  // Stop-the-world semispace collection. Roots: the handle table. Weak
  // entries to unreached objects are cleared.
  void collect();

  // Invoked after every collection with (live_bytes, collected_bytes).
  void set_gc_observer(std::function<void(std::uint64_t, std::uint64_t)> fn) {
    gc_observer_ = std::move(fn);
  }

  std::uint64_t used_bytes() const { return top_; }
  std::uint64_t semispace_bytes() const { return semi_bytes_; }
  const HeapStats& stats() const { return stats_; }
  MemoryDomain& domain() { return domain_; }

 private:
  std::vector<std::uint8_t>& from_space() { return a_is_from_ ? a_ : b_; }
  const std::vector<std::uint8_t>& from_space() const {
    return a_is_from_ ? a_ : b_;
  }
  std::vector<std::uint8_t>& to_space() { return a_is_from_ ? b_ : a_; }

  const ObjectHeader* header(ObjAddr addr) const;
  ObjectHeader* header_mut(ObjAddr addr);
  void check_addr(ObjAddr addr) const;

  // Raw (uncharged) slot access used internally and by the collector.
  SlotValue raw_slot(const std::vector<std::uint8_t>& space, ObjAddr addr,
                     std::uint32_t index) const;
  void raw_set_slot(std::vector<std::uint8_t>& space, ObjAddr addr,
                    std::uint32_t index, SlotValue value);

  ObjAddr alloc_raw(ObjectKind kind, std::uint32_t class_id,
                    std::uint32_t count, std::uint32_t payload_bytes);
  void ensure_space(std::vector<std::uint8_t>& space, std::uint64_t needed);
  std::uint32_t next_identity_hash();

  // Copies the object at `addr` (from-space) to to-space if not already
  // forwarded; returns its new address.
  ObjAddr forward(ObjAddr addr, std::uint64_t& to_top);

  static std::uint32_t tag_bytes(std::uint32_t count) {
    return (count + 7u) & ~7u;
  }

  Env& env_;
  MemoryDomain& domain_;
  HandleTable& handles_;
  WeakRefTable& weak_refs_;
  Config config_;
  std::uint64_t semi_bytes_;
  std::uint64_t region_a_;
  std::uint64_t region_b_;

  std::vector<std::uint8_t> a_;
  std::vector<std::uint8_t> b_;
  bool a_is_from_ = true;
  std::uint64_t top_ = 8;  // offset 0 is the null reference
  std::uint32_t hash_counter_ = 0;

  HeapStats stats_;
  std::function<void(std::uint64_t, std::uint64_t)> gc_observer_;
};

}  // namespace msv::rt
