#include "runtime/handles.h"

namespace msv::rt {

std::uint32_t HandleTable::create(ObjAddr addr) {
  if (!free_.empty()) {
    const std::uint32_t idx = free_.back();
    free_.pop_back();
    slots_[idx] = addr;
    used_[idx] = true;
    return idx;
  }
  slots_.push_back(addr);
  used_.push_back(true);
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void HandleTable::release(std::uint32_t index) {
  MSV_CHECK_MSG(index < slots_.size() && used_[index],
                "releasing a dead handle");
  used_[index] = false;
  slots_[index] = kNullAddr;
  free_.push_back(index);
}

ObjAddr HandleTable::get(std::uint32_t index) const {
  MSV_CHECK_MSG(index < slots_.size() && used_[index],
                "reading a dead handle");
  return slots_[index];
}

void HandleTable::set(std::uint32_t index, ObjAddr addr) {
  MSV_CHECK_MSG(index < slots_.size() && used_[index],
                "writing a dead handle");
  slots_[index] = addr;
}

}  // namespace msv::rt
