#include "runtime/value.h"

#include "runtime/isolate.h"
#include "support/error.h"

namespace msv::rt {

struct GcRef::Root {
  Isolate* isolate;
  std::uint32_t handle;

  Root(Isolate* iso, std::uint32_t h) : isolate(iso), handle(h) {}
  ~Root() { isolate->handles().release(handle); }
  Root(const Root&) = delete;
  Root& operator=(const Root&) = delete;
};

GcRef::GcRef(Isolate& isolate, ObjAddr addr) {
  MSV_CHECK_MSG(addr != kNullAddr, "GcRef to null; use a default GcRef");
  shared_ = std::make_shared<Root>(&isolate, isolate.handles().create(addr));
}

ObjAddr GcRef::address() const {
  if (!shared_) return kNullAddr;
  return shared_->isolate->handles().get(shared_->handle);
}

Isolate* GcRef::isolate() const {
  return shared_ ? shared_->isolate : nullptr;
}

bool GcRef::same_object(const GcRef& other) const {
  if (is_null() || other.is_null()) return is_null() && other.is_null();
  return shared_->isolate == other.shared_->isolate &&
         address() == other.address();
}

ValueType Value::type() const {
  switch (v_.index()) {
    case 0:
      return ValueType::kNull;
    case 1:
      return ValueType::kBool;
    case 2:
      return ValueType::kI32;
    case 3:
      return ValueType::kI64;
    case 4:
      return ValueType::kF64;
    case 5:
      return ValueType::kString;
    case 6:
      return ValueType::kRef;
    default:
      return ValueType::kList;
  }
}

const char* Value::type_name() const {
  switch (type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return "bool";
    case ValueType::kI32:
      return "i32";
    case ValueType::kI64:
      return "i64";
    case ValueType::kF64:
      return "f64";
    case ValueType::kString:
      return "string";
    case ValueType::kRef:
      return "ref";
    case ValueType::kList:
      return "list";
  }
  return "?";
}

void Value::require(ValueType t) const {
  if (type() != t) {
    throw RuntimeFault(std::string("value type mismatch: have ") +
                       type_name());
  }
}

bool Value::as_bool() const {
  require(ValueType::kBool);
  return std::get<bool>(v_);
}

std::int32_t Value::as_i32() const {
  require(ValueType::kI32);
  return std::get<std::int32_t>(v_);
}

std::int64_t Value::as_i64() const {
  if (type() == ValueType::kI32) return std::get<std::int32_t>(v_);
  require(ValueType::kI64);
  return std::get<std::int64_t>(v_);
}

double Value::as_f64() const {
  switch (type()) {
    case ValueType::kI32:
      return std::get<std::int32_t>(v_);
    case ValueType::kI64:
      return static_cast<double>(std::get<std::int64_t>(v_));
    case ValueType::kF64:
      return std::get<double>(v_);
    default:
      require(ValueType::kF64);
      return 0;
  }
}

const std::string& Value::as_string() const {
  require(ValueType::kString);
  return std::get<std::string>(v_);
}

const GcRef& Value::as_ref() const {
  require(ValueType::kRef);
  return std::get<GcRef>(v_);
}

const ValueList& Value::as_list() const {
  require(ValueType::kList);
  return *std::get<std::shared_ptr<ValueList>>(v_);
}

std::shared_ptr<ValueList> Value::list_ptr() const {
  require(ValueType::kList);
  return std::get<std::shared_ptr<ValueList>>(v_);
}

std::uint64_t Value::payload_bytes() const {
  switch (type()) {
    case ValueType::kNull:
      return 1;
    case ValueType::kBool:
      return 1;
    case ValueType::kI32:
      return 4;
    case ValueType::kI64:
    case ValueType::kF64:
      return 8;
    case ValueType::kString:
      return 4 + as_string().size();
    case ValueType::kRef:
      return 8;  // the proxy hash travels instead of the object
    case ValueType::kList: {
      std::uint64_t total = 4;
      for (const auto& v : as_list()) total += v.payload_bytes();
      return total;
    }
  }
  return 0;
}

std::string Value::to_debug_string() const {
  switch (type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return as_bool() ? "true" : "false";
    case ValueType::kI32:
      return std::to_string(as_i32());
    case ValueType::kI64:
      return std::to_string(std::get<std::int64_t>(v_)) + "L";
    case ValueType::kF64:
      return std::to_string(as_f64());
    case ValueType::kString:
      return "\"" + as_string() + "\"";
    case ValueType::kRef:
      return as_ref().is_null()
                 ? "ref(null)"
                 : "ref@" + std::to_string(as_ref().address());
    case ValueType::kList: {
      std::string s = "[";
      for (std::size_t i = 0; i < as_list().size(); ++i) {
        if (i) s += ", ";
        s += as_list()[i].to_debug_string();
      }
      return s + "]";
    }
  }
  return "?";
}

}  // namespace msv::rt
