#include "runtime/value.h"

#include "runtime/isolate.h"
#include "support/error.h"

namespace msv::rt {

struct GcRef::Root {
  Isolate* isolate;
  std::uint32_t handle;

  Root(Isolate* iso, std::uint32_t h) : isolate(iso), handle(h) {}
  ~Root() { isolate->handles().release(handle); }
  Root(const Root&) = delete;
  Root& operator=(const Root&) = delete;
};

GcRef::GcRef(Isolate& isolate, ObjAddr addr) {
  MSV_CHECK_MSG(addr != kNullAddr, "GcRef to null; use a default GcRef");
  shared_ = std::make_shared<Root>(&isolate, isolate.handles().create(addr));
}

ObjAddr GcRef::address() const {
  if (!shared_) return kNullAddr;
  return shared_->isolate->handles().get(shared_->handle);
}

Isolate* GcRef::isolate() const {
  return shared_ ? shared_->isolate : nullptr;
}

bool GcRef::same_object(const GcRef& other) const {
  if (is_null() || other.is_null()) return is_null() && other.is_null();
  return shared_->isolate == other.shared_->isolate &&
         address() == other.address();
}

ValueType Value::type() const {
  switch (v_.index()) {
    case 0:
      return ValueType::kNull;
    case 1:
      return ValueType::kBool;
    case 2:
      return ValueType::kI32;
    case 3:
      return ValueType::kI64;
    case 4:
      return ValueType::kF64;
    case 5:
      return ValueType::kString;
    case 6:
      return ValueType::kRef;
    default:
      return ValueType::kList;
  }
}

const char* Value::type_name() const {
  switch (type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return "bool";
    case ValueType::kI32:
      return "i32";
    case ValueType::kI64:
      return "i64";
    case ValueType::kF64:
      return "f64";
    case ValueType::kString:
      return "string";
    case ValueType::kRef:
      return "ref";
    case ValueType::kList:
      return "list";
  }
  return "?";
}

void Value::require(ValueType t) const {
  if (type() != t) {
    throw RuntimeFault(std::string("value type mismatch: have ") +
                       type_name());
  }
}

bool Value::as_bool() const {
  require(ValueType::kBool);
  return std::get<bool>(v_);
}

std::int32_t Value::as_i32() const {
  require(ValueType::kI32);
  return std::get<std::int32_t>(v_);
}

std::int64_t Value::as_i64() const {
  if (type() == ValueType::kI32) return std::get<std::int32_t>(v_);
  require(ValueType::kI64);
  return std::get<std::int64_t>(v_);
}

double Value::as_f64() const {
  switch (type()) {
    case ValueType::kI32:
      return std::get<std::int32_t>(v_);
    case ValueType::kI64:
      return static_cast<double>(std::get<std::int64_t>(v_));
    case ValueType::kF64:
      return std::get<double>(v_);
    default:
      require(ValueType::kF64);
      return 0;
  }
}

const std::string& Value::as_string() const {
  require(ValueType::kString);
  return std::get<std::string>(v_);
}

const GcRef& Value::as_ref() const {
  require(ValueType::kRef);
  return std::get<GcRef>(v_);
}

const ValueList& Value::as_list() const {
  require(ValueType::kList);
  return *std::get<std::shared_ptr<ValueList>>(v_);
}

std::shared_ptr<ValueList> Value::list_ptr() const {
  require(ValueType::kList);
  return std::get<std::shared_ptr<ValueList>>(v_);
}

// Deep neutral-object graphs are legal RMI arguments (a 100k-deep nested
// list must round-trip), so every graph walk below — including the
// destructor — uses an explicit work-list instead of native-stack
// recursion.

Value::~Value() {
  auto* own = std::get_if<std::shared_ptr<ValueList>>(&v_);
  if (own == nullptr || *own == nullptr || own->use_count() != 1) return;
  // Uniquely-owned list: without help, the shared_ptr teardown would
  // recurse element-by-element down the chain. Steal sublists that are
  // about to become uniquely owned and drain them iteratively; elements
  // are destroyed one at a time (back to front) so a sublist shared
  // between siblings is seen as unique by the *last* sibling to die and
  // still lands on the work-list instead of unwinding recursively.
  std::vector<std::shared_ptr<ValueList>> pending;
  pending.push_back(std::move(*own));
  while (!pending.empty()) {
    std::shared_ptr<ValueList> list = std::move(pending.back());
    pending.pop_back();
    while (!list->empty()) {
      auto* sub = std::get_if<std::shared_ptr<ValueList>>(&list->back().v_);
      if (sub != nullptr && *sub != nullptr && sub->use_count() == 1) {
        pending.push_back(std::move(*sub));
      }
      list->pop_back();  // shallow: the element's sublist was stolen
    }
  }
}

std::uint64_t Value::payload_bytes() const {
  // The footprint is an order-independent sum, so a plain pointer
  // work-list replaces the recursion.
  std::uint64_t total = 0;
  std::vector<const Value*> work{this};
  while (!work.empty()) {
    const Value* v = work.back();
    work.pop_back();
    switch (v->type()) {
      case ValueType::kNull:
      case ValueType::kBool:
        total += 1;
        break;
      case ValueType::kI32:
        total += 4;
        break;
      case ValueType::kI64:
      case ValueType::kF64:
        total += 8;
        break;
      case ValueType::kString:
        total += 4 + v->as_string().size();
        break;
      case ValueType::kRef:
        total += 8;  // the proxy hash travels instead of the object
        break;
      case ValueType::kList:
        total += 4;
        for (const auto& e : v->as_list()) work.push_back(&e);
        break;
    }
  }
  return total;
}

namespace {

std::string scalar_debug_string(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return v.as_bool() ? "true" : "false";
    case ValueType::kI32:
      return std::to_string(v.as_i32());
    case ValueType::kI64:
      return std::to_string(v.as_i64()) + "L";
    case ValueType::kF64:
      return std::to_string(v.as_f64());
    case ValueType::kString:
      return "\"" + v.as_string() + "\"";
    case ValueType::kRef:
      return v.as_ref().is_null()
                 ? "ref(null)"
                 : "ref@" + std::to_string(v.as_ref().address());
    case ValueType::kList:
      break;
  }
  return "?";
}

}  // namespace

std::string Value::to_debug_string() const {
  if (type() != ValueType::kList) return scalar_debug_string(*this);
  // Depth-first with an explicit frame stack; emits exactly the bytes
  // the recursive formatter did ("[e0, e1, ...]", nested in place).
  struct Frame {
    const ValueList* list;
    std::size_t next = 0;
  };
  std::string out = "[";
  std::vector<Frame> stack{{&as_list(), 0}};
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next == f.list->size()) {
      out += "]";
      stack.pop_back();
      continue;
    }
    if (f.next > 0) out += ", ";
    const Value& e = (*f.list)[f.next++];
    if (e.type() == ValueType::kList) {
      out += "[";
      stack.push_back({&e.as_list(), 0});
    } else {
      out += scalar_debug_string(e);
    }
  }
  return out;
}

}  // namespace msv::rt
