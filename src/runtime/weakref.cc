#include "runtime/weakref.h"

#include "support/error.h"

namespace msv::rt {

std::uint32_t WeakRefTable::add(ObjAddr addr, std::uint64_t payload) {
  MSV_CHECK_MSG(addr != kNullAddr, "weak reference to null");
  entries_.push_back(WeakEntry{addr, payload, true});
  return static_cast<std::uint32_t>(entries_.size() - 1);
}

const WeakEntry& WeakRefTable::entry(std::uint32_t index) const {
  MSV_CHECK_MSG(index < entries_.size(), "weak entry index out of range");
  return entries_[index];
}

bool WeakRefTable::is_cleared(std::uint32_t index) const {
  const WeakEntry& e = entry(index);
  return e.was_set && e.target == kNullAddr;
}

std::size_t WeakRefTable::cleared_count() const {
  std::size_t n = 0;
  for (const auto& e : entries_) {
    if (e.was_set && e.target == kNullAddr) ++n;
  }
  return n;
}

}  // namespace msv::rt
