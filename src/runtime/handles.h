// GC handles.
//
// The semispace collector moves objects, so C++ code never holds raw heap
// addresses across an allocation. Instead it holds an index into the
// isolate's handle table; the collector updates the table in place. Handle
// table entries are GC roots.
#pragma once

#include <cstdint>
#include <vector>

#include "support/error.h"

namespace msv::rt {

// Heap address: byte offset into the current from-space. 0 is the null
// reference (the first 8 bytes of each semispace are never allocated).
using ObjAddr = std::uint64_t;
constexpr ObjAddr kNullAddr = 0;

class HandleTable {
 public:
  // Creates a root slot holding `addr`; returns its index.
  std::uint32_t create(ObjAddr addr);
  void release(std::uint32_t index);

  ObjAddr get(std::uint32_t index) const;
  void set(std::uint32_t index, ObjAddr addr);

  std::size_t live() const { return slots_.size() - free_.size(); }

  // Visits every live slot; `fn(ObjAddr&)` may rewrite the address (used by
  // the collector to forward roots).
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (used_[i]) fn(slots_[i]);
    }
  }

 private:
  std::vector<ObjAddr> slots_;
  std::vector<bool> used_;
  std::vector<std::uint32_t> free_;
};

}  // namespace msv::rt
