// Isolates (§2.2).
//
// GraalVM native images can host multiple independent VM instances, each
// with its own heap and independent garbage collection. Montsalvat creates
// one isolate per runtime — trusted (heap in EPC memory) and untrusted —
// and all cross-isolate object traffic goes through the proxy machinery.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "runtime/handles.h"
#include "runtime/heap.h"
#include "runtime/value.h"
#include "runtime/weakref.h"
#include "sim/domain.h"
#include "sim/env.h"

namespace msv::rt {

class Isolate {
 public:
  struct Config {
    std::string name = "isolate";
    std::uint64_t heap_max_bytes = 64ull << 20;
    std::uint64_t image_heap_bytes = 0;  // mapped at startup (§2.2)
  };

  Isolate(Env& env, MemoryDomain& domain, Config config);

  Isolate(const Isolate&) = delete;
  Isolate& operator=(const Isolate&) = delete;

  const std::string& name() const { return config_.name; }
  bool trusted() const { return domain_.trusted(); }
  Env& env() { return env_; }
  MemoryDomain& domain() { return domain_; }
  Heap& heap() { return *heap_; }
  HandleTable& handles() { return handles_; }
  WeakRefTable& weak_refs() { return weak_refs_; }

  GcRef make_ref(ObjAddr addr) { return GcRef(*this, addr); }

  // ---- Value <-> heap conversion ----
  // Stores a Value into slot form. Neutral values (strings, lists) are
  // materialized as heap objects; refs must belong to this isolate
  // (cross-isolate references are a partitioning violation and throw).
  SlotValue to_slot(const Value& v);
  // Loads a slot into a Value. Strings and arrays come back as neutral
  // copies; instances come back as rooted refs.
  Value from_slot(SlotValue s);

  // Convenience for tests and native methods.
  GcRef new_instance(std::uint32_t class_id, std::uint32_t field_count);
  Value get_field(const GcRef& obj, std::uint32_t index);
  void set_field(const GcRef& obj, std::uint32_t index, const Value& v);

 private:
  // Non-list / non-array cases of to_slot/from_slot (the leaves the
  // iterative graph walks bottom out on).
  SlotValue to_slot_scalar(const Value& v);
  Value from_slot_scalar(SlotValue s);

  Env& env_;
  MemoryDomain& domain_;
  Config config_;
  HandleTable handles_;
  WeakRefTable weak_refs_;
  std::unique_ptr<Heap> heap_;
};

}  // namespace msv::rt
