#include "runtime/heap.h"

#include <cstring>

#include "support/fnv.h"

namespace msv::rt {

double SlotValue::as_f64() const {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

SlotValue SlotValue::from_f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return {SlotTag::kF64, bits};
}

Heap::Heap(Env& env, MemoryDomain& domain, HandleTable& handles,
           WeakRefTable& weak_refs, Config config)
    : env_(env),
      domain_(domain),
      handles_(handles),
      weak_refs_(weak_refs),
      config_(std::move(config)),
      semi_bytes_(config_.max_bytes / 2),
      region_a_(domain.register_region(config_.name + "/semispace-a")),
      region_b_(domain.register_region(config_.name + "/semispace-b")) {
  MSV_CHECK_MSG(semi_bytes_ >= 4096, "heap too small to be usable");
}

void Heap::check_addr(ObjAddr addr) const {
  MSV_CHECK_MSG(addr != kNullAddr, "null dereference in heap " + config_.name);
  MSV_CHECK_MSG(addr % 8 == 0 && addr + sizeof(ObjectHeader) <= top_,
                "bad object address in heap " + config_.name);
}

const ObjectHeader* Heap::header(ObjAddr addr) const {
  check_addr(addr);
  return reinterpret_cast<const ObjectHeader*>(from_space().data() + addr);
}

ObjectHeader* Heap::header_mut(ObjAddr addr) {
  check_addr(addr);
  return reinterpret_cast<ObjectHeader*>(from_space().data() + addr);
}

void Heap::ensure_space(std::vector<std::uint8_t>& space,
                        std::uint64_t needed) {
  if (space.size() < needed) {
    std::uint64_t target = space.empty() ? 1ull << 16 : space.size();
    while (target < needed) target *= 2;
    space.resize(std::min<std::uint64_t>(target, semi_bytes_));
    if (space.size() < needed) space.resize(needed);
  }
}

std::uint32_t Heap::next_identity_hash() {
  // Java identity hash codes: effectively address/counter based. FNV mixing
  // keeps them well distributed while staying deterministic.
  std::uint32_t h = 0;
  while (h == 0) {
    ++hash_counter_;
    h = fnv1a32(config_.name) ^
        static_cast<std::uint32_t>(
            fnv1a64(&hash_counter_, sizeof(hash_counter_)));
  }
  return h;
}

ObjAddr Heap::alloc_raw(ObjectKind kind, std::uint32_t class_id,
                        std::uint32_t count, std::uint32_t payload_bytes) {
  const std::uint64_t total =
      sizeof(ObjectHeader) + ((payload_bytes + 7ull) & ~7ull);
  if (top_ + total > semi_bytes_) {
    collect();
    if (top_ + total > semi_bytes_) {
      throw OutOfMemoryError("heap " + config_.name + " exhausted: need " +
                             std::to_string(total) + " bytes, " +
                             std::to_string(semi_bytes_ - top_) + " free");
    }
  }
  auto& space = from_space();
  ensure_space(space, top_ + total);

  const ObjAddr addr = top_;
  top_ += total;

  auto* h = reinterpret_cast<ObjectHeader*>(space.data() + addr);
  h->class_id = class_id;
  h->count = count;
  h->kind = kind;
  h->flags = 0;
  h->reserved = 0;
  h->identity_hash = next_identity_hash();
  h->byte_size = static_cast<std::uint32_t>(total);
  h->forward = 0;
  std::memset(space.data() + addr + sizeof(ObjectHeader), 0,
              total - sizeof(ObjectHeader));

  // Cost: bump allocation + zeroing, DRAM/MEE traffic for the written
  // bytes, EPC residency for the touched pages.
  env_.clock.advance(env_.cost.alloc_cycles +
                     static_cast<Cycles>(static_cast<double>(total) *
                                         env_.cost.alloc_cycles_per_byte));
  domain_.charge_traffic(total);
  const std::uint64_t region = a_is_from_ ? region_a_ : region_b_;
  const std::uint64_t first_page = addr / env_.cost.page_bytes;
  const std::uint64_t last_page = (addr + total - 1) / env_.cost.page_bytes;
  domain_.touch_pages(region, first_page, last_page - first_page + 1);

  ++stats_.allocations;
  stats_.allocated_bytes += total;
  return addr;
}

ObjAddr Heap::alloc_instance(std::uint32_t class_id,
                             std::uint32_t field_count) {
  return alloc_raw(ObjectKind::kInstance, class_id, field_count,
                   tag_bytes(field_count) + field_count * 8);
}

ObjAddr Heap::alloc_array(std::uint32_t length) {
  return alloc_raw(ObjectKind::kArray, 0, length, tag_bytes(length) + length * 8);
}

ObjAddr Heap::alloc_string(std::string_view bytes) {
  const auto len = static_cast<std::uint32_t>(bytes.size());
  const ObjAddr addr = alloc_raw(ObjectKind::kString, 0, len, len);
  std::memcpy(from_space().data() + addr + sizeof(ObjectHeader), bytes.data(),
              bytes.size());
  return addr;
}

ObjectKind Heap::kind(ObjAddr addr) const { return header(addr)->kind; }

std::uint32_t Heap::class_id(ObjAddr addr) const {
  return header(addr)->class_id;
}

std::uint32_t Heap::count(ObjAddr addr) const { return header(addr)->count; }

std::uint32_t Heap::identity_hash(ObjAddr addr) const {
  return header(addr)->identity_hash;
}

std::uint32_t Heap::object_bytes(ObjAddr addr) const {
  return header(addr)->byte_size;
}

SlotValue Heap::raw_slot(const std::vector<std::uint8_t>& space, ObjAddr addr,
                         std::uint32_t index) const {
  const auto* h = reinterpret_cast<const ObjectHeader*>(space.data() + addr);
  MSV_CHECK_MSG(h->kind != ObjectKind::kString, "slot access on a string");
  MSV_CHECK_MSG(index < h->count, "slot index out of range");
  const std::uint8_t* base = space.data() + addr + sizeof(ObjectHeader);
  SlotValue v;
  v.tag = static_cast<SlotTag>(base[index]);
  std::memcpy(&v.bits, base + tag_bytes(h->count) + index * 8, 8);
  return v;
}

void Heap::raw_set_slot(std::vector<std::uint8_t>& space, ObjAddr addr,
                        std::uint32_t index, SlotValue value) {
  auto* h = reinterpret_cast<ObjectHeader*>(space.data() + addr);
  MSV_CHECK_MSG(h->kind != ObjectKind::kString, "slot access on a string");
  MSV_CHECK_MSG(index < h->count, "slot index out of range");
  std::uint8_t* base = space.data() + addr + sizeof(ObjectHeader);
  base[index] = static_cast<std::uint8_t>(value.tag);
  std::memcpy(base + tag_bytes(h->count) + index * 8, &value.bits, 8);
}

SlotValue Heap::slot(ObjAddr addr, std::uint32_t index) const {
  check_addr(addr);
  env_.clock.advance(env_.cost.field_access_cycles);
  return raw_slot(from_space(), addr, index);
}

void Heap::set_slot(ObjAddr addr, std::uint32_t index, SlotValue value) {
  check_addr(addr);
  if (value.tag == SlotTag::kRef && value.bits != kNullAddr) {
    MSV_CHECK_MSG(value.bits % 8 == 0 && value.bits < top_,
                  "storing a foreign reference into heap " + config_.name);
  }
  env_.clock.advance(env_.cost.field_access_cycles);
  raw_set_slot(from_space(), addr, index, value);
}

std::string_view Heap::string_at(ObjAddr addr) const {
  const auto* h = header(addr);
  MSV_CHECK_MSG(h->kind == ObjectKind::kString, "string access on non-string");
  return {reinterpret_cast<const char*>(from_space().data() + addr +
                                        sizeof(ObjectHeader)),
          h->count};
}

ObjAddr Heap::forward(ObjAddr addr, std::uint64_t& to_top) {
  if (addr == kNullAddr) return kNullAddr;
  auto& from = from_space();
  auto* h = reinterpret_cast<ObjectHeader*>(from.data() + addr);
  if (h->forward != 0) return static_cast<ObjAddr>(h->forward - 1);

  auto& to = to_space();
  ensure_space(to, to_top + h->byte_size);
  std::memcpy(to.data() + to_top, from.data() + addr, h->byte_size);
  const ObjAddr new_addr = to_top;
  to_top += h->byte_size;
  h->forward = new_addr + 1;
  reinterpret_cast<ObjectHeader*>(to.data() + new_addr)->forward = 0;
  return new_addr;
}

void Heap::collect() {
  const Cycles start = env_.clock.now();
  // GC spans (DESIGN.md §10): a gc.collect parent with per-phase
  // children. Charges keep the seed's exact order; the spans only bracket
  // them. Under a detached collection (measure_detached) now() is frozen,
  // so these record as zero-duration markers — the realized pause is the
  // server's gc.pause span.
  telemetry::Tracer& tracer = env_.telemetry.tracer();
  telemetry::SpanScope collect_span(tracer, telemetry::Category::kGc,
                                    env_.telemetry.names().gc_collect);
  env_.clock.advance(env_.cost.gc_base_cycles);

  std::uint64_t to_top = 8;
  ensure_space(to_space(), to_top);

  // Roots: every live handle.
  {
    telemetry::SpanScope span(tracer, telemetry::Category::kGc,
                              env_.telemetry.names().gc_roots);
    std::uint64_t root_count = 0;
    handles_.for_each([&](ObjAddr& root) {
      ++root_count;
      if (root != kNullAddr) root = forward(root, to_top);
    });
    env_.clock.advance(root_count * env_.cost.gc_scan_root_cycles);
  }

  // Cheney scan of the copied objects.
  {
    telemetry::SpanScope span(tracer, telemetry::Category::kGc,
                              env_.telemetry.names().gc_copy);
    auto& to = to_space();
    std::uint64_t scan = 8;
    while (scan < to_top) {
      // Copy header fields out: forward() below may grow the to-space
      // vector and invalidate pointers into it.
      const auto* h = reinterpret_cast<const ObjectHeader*>(to.data() + scan);
      const ObjectKind obj_kind = h->kind;
      const std::uint32_t obj_count = h->count;
      const std::uint32_t obj_bytes = h->byte_size;
      if (obj_kind != ObjectKind::kString) {
        for (std::uint32_t i = 0; i < obj_count; ++i) {
          SlotValue v = raw_slot(to, scan, i);
          if (v.tag == SlotTag::kRef && v.bits != kNullAddr) {
            v.bits = forward(v.bits, to_top);
            raw_set_slot(to, scan, i, v);
          }
        }
      }
      scan += obj_bytes;
    }
  }

  // Weak references: forward survivors, clear the rest (§5.5 relies on
  // exactly this "null referent" signal).
  {
    telemetry::SpanScope span(tracer, telemetry::Category::kGc,
                              env_.telemetry.names().gc_weak);
    weak_refs_.for_each([&](WeakEntry& e) {
      const auto* h = reinterpret_cast<const ObjectHeader*>(
          from_space().data() + e.target);
      e.target = h->forward != 0 ? static_cast<ObjAddr>(h->forward - 1)
                                 : kNullAddr;
    });
  }

  const std::uint64_t live_bytes = to_top - 8;
  const std::uint64_t collected = top_ - 8 - live_bytes;

  // Cost: CPU work of the copy plus the memory traffic it causes (read from
  // from-space, write to to-space). Inside an enclave the traffic term pays
  // the MEE factor and the to-space pages are touched in the EPC — this is
  // what Fig. 5a measures.
  env_.clock.advance(static_cast<Cycles>(static_cast<double>(live_bytes) *
                                         env_.cost.gc_copy_cycles_per_byte));
  domain_.charge_traffic(2 * live_bytes);
  const std::uint64_t to_region = a_is_from_ ? region_b_ : region_a_;
  domain_.touch_pages(to_region, 0,
                      (to_top + env_.cost.page_bytes - 1) / env_.cost.page_bytes);

  a_is_from_ = !a_is_from_;
  top_ = to_top;

  ++stats_.gc_count;
  stats_.copied_bytes_total += live_bytes;
  stats_.last_live_bytes = live_bytes;
  stats_.gc_cycles_total += env_.clock.now() - start;

  if (gc_observer_) gc_observer_(live_bytes, collected);
}

}  // namespace msv::rt
