// Weak references (§5.5).
//
// Montsalvat's GC helper stores, for every proxy object, a weak reference
// and the proxy's hash in a global list. The collector clears a weak entry
// when its referent dies; the helper thread later scans the list for
// cleared entries and evicts the corresponding mirror from the registry in
// the opposite runtime.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/handles.h"

namespace msv::rt {

struct WeakEntry {
  ObjAddr target = kNullAddr;  // kNullAddr once the referent is collected
  std::uint64_t payload = 0;   // the proxy hash in Montsalvat's usage
  bool was_set = false;        // distinguishes "cleared" from "never set"
};

class WeakRefTable {
 public:
  // Registers a weak reference to `addr` carrying `payload`.
  std::uint32_t add(ObjAddr addr, std::uint64_t payload);

  std::size_t size() const { return entries_.size(); }
  const WeakEntry& entry(std::uint32_t index) const;

  bool is_cleared(std::uint32_t index) const;

  // Removes entries for which `fn(entry)` returns true (used by the GC
  // helper after it has processed cleared referents).
  template <typename Fn>
  void remove_if(Fn&& fn) {
    std::size_t w = 0;
    for (std::size_t r = 0; r < entries_.size(); ++r) {
      if (!fn(entries_[r])) entries_[w++] = entries_[r];
    }
    entries_.resize(w);
  }

  // Collector interface: visits every non-cleared entry so the collector
  // can forward or clear it.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (auto& e : entries_) {
      if (e.target != kNullAddr) fn(e);
    }
  }

  std::size_t cleared_count() const;

 private:
  std::vector<WeakEntry> entries_;
};

}  // namespace msv::rt
