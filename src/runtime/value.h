// Dynamic values used by the interpreter, the RMI layer and native-bound
// methods.
//
// Primitive values and *neutral* values (strings, lists — §5.1's neutral
// classes) live as plain C++ data and may be freely copied between the
// trusted and untrusted runtimes. Instances of annotated classes live on a
// managed heap and are held through GcRef, a root-protected reference that
// survives moving collections and never crosses an isolate boundary (that
// is what proxies are for).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "runtime/handles.h"

namespace msv::rt {

class Isolate;

// A rooted reference to a heap object of one isolate. Copies share the
// same root slot; the slot is released when the last copy dies.
class GcRef {
 public:
  GcRef() = default;  // null reference

  // Roots `addr` in `isolate`'s handle table.
  GcRef(Isolate& isolate, ObjAddr addr);

  bool is_null() const { return shared_ == nullptr; }
  explicit operator bool() const { return !is_null(); }

  // The object's current address (valid until the next allocation/GC).
  ObjAddr address() const;
  Isolate* isolate() const;

  bool same_object(const GcRef& other) const;

 private:
  struct Root;
  std::shared_ptr<Root> shared_;
};

enum class ValueType : std::uint8_t {
  kNull,
  kBool,
  kI32,
  kI64,
  kF64,
  kString,
  kRef,
  kList
};

class Value;
using ValueList = std::vector<Value>;

class Value {
 public:
  Value() : v_(std::monostate{}) {}
  Value(bool b) : v_(b) {}
  Value(std::int32_t i) : v_(i) {}
  Value(std::int64_t i) : v_(i) {}
  Value(double d) : v_(d) {}
  Value(const char* s) : v_(std::string(s)) {}
  Value(std::string s) : v_(std::move(s)) {}
  Value(GcRef r) : v_(std::move(r)) {}
  Value(ValueList l) : v_(std::make_shared<ValueList>(std::move(l))) {}
  Value(std::shared_ptr<ValueList> l) : v_(std::move(l)) {}

  // Deep neutral-object graphs (a 100k-deep nested list is one RMI
  // argument) must not unwind the native stack recursively: the custom
  // destructor drains uniquely-owned list chains with an explicit
  // work-list. Declaring it suppresses the implicit copy/move members,
  // so they are defaulted back explicitly — all four are memberwise.
  ~Value();
  Value(const Value&) = default;
  Value(Value&&) = default;
  Value& operator=(const Value&) = default;
  Value& operator=(Value&&) = default;

  ValueType type() const;
  const char* type_name() const;

  bool is_null() const { return type() == ValueType::kNull; }
  bool as_bool() const;
  std::int32_t as_i32() const;
  std::int64_t as_i64() const;
  // Accepts i32/i64/f64 and widens.
  double as_f64() const;
  const std::string& as_string() const;
  const GcRef& as_ref() const;
  const ValueList& as_list() const;
  std::shared_ptr<ValueList> list_ptr() const;

  // Rough serialized footprint, used for cost accounting.
  std::uint64_t payload_bytes() const;

  std::string to_debug_string() const;

 private:
  void require(ValueType t) const;

  std::variant<std::monostate, bool, std::int32_t, std::int64_t, double,
               std::string, GcRef, std::shared_ptr<ValueList>>
      v_;
};

}  // namespace msv::rt
