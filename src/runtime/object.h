// On-heap object layout.
//
// Three object kinds exist, mirroring what the partitioned applications
// need: class instances (tagged field slots), arrays of tagged slots, and
// byte strings. Every object starts with a fixed 32-byte header carrying
// the class id, the slot/byte count, the Java-style identity hash (the
// paper's default proxy hash, §5.2) and the forwarding word used by the
// semispace collector.
#pragma once

#include <cstdint>

namespace msv::rt {

enum class ObjectKind : std::uint8_t { kInstance = 1, kArray = 2, kString = 3 };

// Tag of one field/array slot.
enum class SlotTag : std::uint8_t {
  kNull = 0,
  kBool = 1,
  kI32 = 2,
  kI64 = 3,
  kF64 = 4,
  kRef = 5,  // payload is an ObjAddr into the same heap
};

struct ObjectHeader {
  std::uint32_t class_id;    // index into the image's class table; 0 for
                             // arrays/strings
  std::uint32_t count;       // field/element count, or byte length
  ObjectKind kind;
  std::uint8_t flags;
  std::uint16_t reserved;
  std::uint32_t identity_hash;
  std::uint32_t byte_size;   // total object size including header, 8-aligned
  std::uint64_t forward;     // 0, or (new address + 1) during collection
};

static_assert(sizeof(ObjectHeader) == 32, "header layout is part of the ABI");

// A tagged slot value as read from / written to an object.
struct SlotValue {
  SlotTag tag = SlotTag::kNull;
  std::uint64_t bits = 0;

  static SlotValue null() { return {}; }
  static SlotValue from_bool(bool b) { return {SlotTag::kBool, b ? 1u : 0u}; }
  static SlotValue from_i32(std::int32_t v) {
    return {SlotTag::kI32, static_cast<std::uint32_t>(v)};
  }
  static SlotValue from_i64(std::int64_t v) {
    return {SlotTag::kI64, static_cast<std::uint64_t>(v)};
  }
  static SlotValue from_f64(double v);
  static SlotValue from_ref(std::uint64_t addr) { return {SlotTag::kRef, addr}; }

  bool as_bool() const { return bits != 0; }
  std::int32_t as_i32() const { return static_cast<std::int32_t>(bits); }
  std::int64_t as_i64() const { return static_cast<std::int64_t>(bits); }
  double as_f64() const;
  std::uint64_t as_ref() const { return bits; }
};

}  // namespace msv::rt
