#include "runtime/churn.h"

#include <deque>
#include <string>

namespace msv::rt {

ChurnResult alloc_churn(Isolate& isolate, std::uint64_t total_bytes,
                        std::uint64_t live_window_bytes,
                        std::uint32_t box_payload_bytes) {
  const std::string payload(box_payload_bytes, 's');
  // Total footprint per box: header + padded payload.
  const std::uint64_t box_total =
      sizeof(ObjectHeader) + ((box_payload_bytes + 7ull) & ~7ull);
  const std::uint64_t boxes = total_bytes / box_total;
  const std::uint64_t live_boxes =
      std::max<std::uint64_t>(1, live_window_bytes / box_total);

  ChurnResult result;
  std::deque<GcRef> window;
  for (std::uint64_t i = 0; i < boxes; ++i) {
    window.push_back(isolate.make_ref(isolate.heap().alloc_string(payload)));
    if (window.size() > live_boxes) window.pop_front();
    ++result.allocations;
  }
  return result;
}

}  // namespace msv::rt
