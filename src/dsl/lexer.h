// Lexer for the Montsalvat source language.
//
// The paper's developers annotate Java sources; this repository's front
// end is a small Java-like language whose compiler (src/dsl/parser.h)
// produces the same AppModel the rest of the toolchain consumes:
//
//   class Account @Trusted {
//     field owner;
//     field balance;
//     ctor(s, b) { this.owner = s; this.balance = b; }
//     method updateBalance(v) { this.balance = this.balance + v; }
//   }
//   class Main @Untrusted {
//     static method main() {
//       a = new Account("Alice", 100);
//       a.updateBalance(0 - 25);
//       @print(a.getBalance());
//     }
//   }
//   main Main;
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/error.h"

namespace msv::dsl {

enum class TokenKind {
  kIdentifier,   // foo
  kAnnotation,   // @Trusted / @print — '@' + identifier
  kIntLiteral,   // 42
  kFloatLiteral, // 2.5
  kStringLiteral,// "text"
  kPunct,        // { } ( ) ; , . = + - * / < > !
  kPunct2,       // == <= >= !=
  kEof,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;       // identifier/annotation name, punct characters
  std::int64_t int_value = 0;
  double float_value = 0;
  std::string string_value;
  int line = 0;

  bool is_punct(const char* p) const {
    return (kind == TokenKind::kPunct || kind == TokenKind::kPunct2) &&
           text == p;
  }
  bool is_identifier(const char* name) const {
    return kind == TokenKind::kIdentifier && text == name;
  }
};

// Thrown on lexical or syntax errors; carries the line number.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, int line)
      : Error("line " + std::to_string(line) + ": " + what), line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

// Tokenizes the whole input ('//' comments are skipped). Throws ParseError
// on malformed input.
std::vector<Token> tokenize(const std::string& source);

}  // namespace msv::dsl
