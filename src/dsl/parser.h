// Parser + bytecode compiler for the Montsalvat source language.
//
// Produces the model::AppModel the rest of the toolchain consumes — the
// same artifact the paper obtains from annotated Java classes. Grammar
// (see lexer.h for an example program):
//
//   program  := (class | "main" IDENT ";")*
//   class    := "class" IDENT annotation? "{" member* "}"
//   annotation := "@Trusted" | "@Untrusted" | "@Neutral"
//   member   := "field" IDENT ";"
//             | "ctor" "(" params ")" block
//             | "static"? "method" IDENT "(" params ")" block
//   stmt     := "return" expr? ";"
//             | "if" "(" expr ")" block ("else" block)?
//             | "while" "(" expr ")" block
//             | "this" "." IDENT "=" expr ";"
//             | IDENT "=" expr ";"
//             | expr ";"
//   expr     := comparison; operators: * / + - < <= > >= == !=,
//               unary - and !, calls expr.m(args), "new" C(args),
//               intrinsics @name(args), literals, this, locals, ( expr )
//
// Fields must be declared before the methods that use them. Every parse
// or compile problem throws ParseError with the line number.
#pragma once

#include <string>

#include "dsl/lexer.h"
#include "model/app_model.h"

namespace msv::dsl {

// Parses and compiles a whole program.
model::AppModel parse_program(const std::string& source);

}  // namespace msv::dsl
