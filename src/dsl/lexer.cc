#include "dsl/lexer.h"

#include <cctype>

namespace msv::dsl {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

std::vector<Token> tokenize(const std::string& source) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  int line = 1;

  auto peek = [&](std::size_t ahead = 0) -> char {
    return i + ahead < source.size() ? source[i + ahead] : '\0';
  };

  while (i < source.size()) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && peek(1) == '/') {
      while (i < source.size() && source[i] != '\n') ++i;
      continue;
    }

    Token t;
    t.line = line;

    if (ident_start(c)) {
      std::size_t start = i;
      while (i < source.size() && ident_char(source[i])) ++i;
      t.kind = TokenKind::kIdentifier;
      t.text = source.substr(start, i - start);
      tokens.push_back(std::move(t));
      continue;
    }
    if (c == '@') {
      ++i;
      if (i >= source.size() || !ident_start(source[i])) {
        throw ParseError("'@' must be followed by a name", line);
      }
      std::size_t start = i;
      while (i < source.size() && ident_char(source[i])) ++i;
      t.kind = TokenKind::kAnnotation;
      t.text = source.substr(start, i - start);
      tokens.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = i;
      while (i < source.size() &&
             std::isdigit(static_cast<unsigned char>(source[i]))) {
        ++i;
      }
      if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
        ++i;
        while (i < source.size() &&
               std::isdigit(static_cast<unsigned char>(source[i]))) {
          ++i;
        }
        t.kind = TokenKind::kFloatLiteral;
        t.float_value = std::stod(source.substr(start, i - start));
      } else {
        t.kind = TokenKind::kIntLiteral;
        t.int_value = std::stoll(source.substr(start, i - start));
      }
      tokens.push_back(std::move(t));
      continue;
    }
    if (c == '"') {
      ++i;
      std::string value;
      while (i < source.size() && source[i] != '"') {
        if (source[i] == '\n') throw ParseError("unterminated string", line);
        if (source[i] == '\\' && i + 1 < source.size()) {
          ++i;
          switch (source[i]) {
            case 'n':
              value += '\n';
              break;
            case 't':
              value += '\t';
              break;
            case '"':
              value += '"';
              break;
            case '\\':
              value += '\\';
              break;
            default:
              throw ParseError("unknown escape sequence", line);
          }
          ++i;
        } else {
          value += source[i++];
        }
      }
      if (i >= source.size()) throw ParseError("unterminated string", line);
      ++i;  // closing quote
      t.kind = TokenKind::kStringLiteral;
      t.string_value = std::move(value);
      tokens.push_back(std::move(t));
      continue;
    }

    // Two-character operators first.
    static const char* kTwoChar[] = {"==", "<=", ">=", "!="};
    bool matched = false;
    for (const char* op : kTwoChar) {
      if (c == op[0] && peek(1) == op[1]) {
        t.kind = TokenKind::kPunct2;
        t.text = op;
        i += 2;
        tokens.push_back(std::move(t));
        matched = true;
        break;
      }
    }
    if (matched) continue;

    static const std::string kSingles = "{}();,.=+-*/<>!";
    if (kSingles.find(c) != std::string::npos) {
      t.kind = TokenKind::kPunct;
      t.text = std::string(1, c);
      ++i;
      tokens.push_back(std::move(t));
      continue;
    }
    throw ParseError(std::string("unexpected character '") + c + "'", line);
  }

  Token eof;
  eof.kind = TokenKind::kEof;
  eof.line = line;
  tokens.push_back(std::move(eof));
  return tokens;
}

}  // namespace msv::dsl
