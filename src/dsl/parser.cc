#include "dsl/parser.h"

#include <unordered_map>

#include "model/ir.h"

namespace msv::dsl {
namespace {

using model::Annotation;
using model::ClassDecl;
using model::IrBuilder;
using rt::Value;

class Parser {
 public:
  explicit Parser(const std::string& source) : tokens_(tokenize(source)) {}

  model::AppModel parse_program() {
    model::AppModel app;
    while (!at(TokenKind::kEof)) {
      if (cur().is_identifier("class")) {
        parse_class(app);
      } else if (cur().is_identifier("main")) {
        next();
        app.set_main_class(expect_identifier("main class name"));
        expect_punct(";");
      } else {
        fail("expected 'class' or 'main'");
      }
    }
    app.validate();
    return app;
  }

 private:
  // ---- token helpers ----
  const Token& cur() const { return tokens_[pos_]; }
  // Safe lookahead: returns the trailing EOF token when out of range.
  const Token& peek(std::size_t ahead) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& next() { return tokens_[pos_++]; }
  bool at(TokenKind k) const { return cur().kind == k; }

  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError(msg + " (got '" + cur().text + "')", cur().line);
  }

  std::string expect_identifier(const char* what) {
    if (!at(TokenKind::kIdentifier)) fail(std::string("expected ") + what);
    return next().text;
  }

  void expect_punct(const char* p) {
    if (!cur().is_punct(p)) fail(std::string("expected '") + p + "'");
    next();
  }

  bool accept_punct(const char* p) {
    if (cur().is_punct(p)) {
      next();
      return true;
    }
    return false;
  }

  // ---- declarations ----
  void parse_class(model::AppModel& app) {
    next();  // 'class'
    const std::string name = expect_identifier("class name");
    Annotation annotation = Annotation::kNeutral;
    if (at(TokenKind::kAnnotation)) {
      const std::string a = next().text;
      if (a == "Trusted") {
        annotation = Annotation::kTrusted;
      } else if (a == "Untrusted") {
        annotation = Annotation::kUntrusted;
      } else if (a == "Neutral") {
        annotation = Annotation::kNeutral;
      } else {
        fail("unknown class annotation @" + a);
      }
    }
    ClassDecl& cls = app.add_class(name, annotation);
    expect_punct("{");
    while (!accept_punct("}")) {
      if (cur().is_identifier("field")) {
        next();
        cls.add_field(expect_identifier("field name"));
        expect_punct(";");
      } else if (cur().is_identifier("ctor")) {
        next();
        parse_method(cls, model::kConstructorName, /*is_static=*/false);
      } else if (cur().is_identifier("method") ||
                 cur().is_identifier("static")) {
        bool is_static = false;
        if (cur().is_identifier("static")) {
          is_static = true;
          next();
        }
        if (!cur().is_identifier("method")) fail("expected 'method'");
        next();
        const std::string method_name = expect_identifier("method name");
        parse_method(cls, method_name, is_static);
      } else {
        fail("expected 'field', 'ctor', 'method' or '}'");
      }
    }
  }

  void parse_method(ClassDecl& cls, const std::string& name, bool is_static) {
    locals_.clear();
    is_static_ = is_static;
    if (!is_static) locals_["this"] = 0;

    expect_punct("(");
    std::uint32_t params = 0;
    if (!cur().is_punct(")")) {
      while (true) {
        const std::string param = expect_identifier("parameter name");
        if (locals_.count(param) != 0) fail("duplicate parameter " + param);
        locals_[param] = static_cast<std::int32_t>(locals_.size());
        ++params;
        if (!accept_punct(",")) break;
      }
    }
    expect_punct(")");

    cls_ = &cls;
    ir_ = IrBuilder();
    parse_block();
    ir_.ret_void();  // implicit return at the end
    ir_.locals(static_cast<std::uint32_t>(locals_.size()));

    model::MethodDecl& m = cls.add_method(name, params);
    if (is_static) m.set_static();
    m.body(ir_.build());
  }

  // ---- statements ----
  void parse_block() {
    expect_punct("{");
    while (!accept_punct("}")) parse_statement();
  }

  void parse_statement() {
    if (cur().is_identifier("return")) {
      next();
      if (accept_punct(";")) {
        ir_.ret_void();
      } else {
        parse_expr();
        expect_punct(";");
        ir_.ret();
      }
      return;
    }
    if (cur().is_identifier("if")) {
      next();
      expect_punct("(");
      parse_expr();
      expect_punct(")");
      const auto else_label = ir_.new_label();
      ir_.branch_false(else_label);
      parse_block();
      if (cur().is_identifier("else")) {
        next();
        const auto end_label = ir_.new_label();
        ir_.jump(end_label);
        ir_.bind(else_label);
        parse_block();
        ir_.bind(end_label);
      } else {
        ir_.bind(else_label);
      }
      return;
    }
    if (cur().is_identifier("while")) {
      next();
      const auto head = ir_.new_label();
      const auto end = ir_.new_label();
      ir_.bind(head);
      expect_punct("(");
      parse_expr();
      expect_punct(")");
      ir_.branch_false(end);
      parse_block();
      ir_.jump(head);
      ir_.bind(end);
      return;
    }
    // this.field = expr;
    if (cur().is_identifier("this") && peek(1).is_punct(".") &&
        peek(2).kind == TokenKind::kIdentifier && peek(3).is_punct("=")) {
      if (is_static_) fail("'this' in a static method");
      next();  // this
      next();  // .
      const std::string field = next().text;
      next();  // =
      ir_.load_local(0);
      parse_expr();
      ir_.put_field(field_index(field));
      expect_punct(";");
      return;
    }
    // local = expr;
    if (at(TokenKind::kIdentifier) && peek(1).is_punct("=")) {
      const std::string name = next().text;
      next();  // =
      parse_expr();
      const auto it = locals_.find(name);
      std::int32_t index;
      if (it != locals_.end()) {
        index = it->second;
      } else {
        index = static_cast<std::int32_t>(locals_.size());
        locals_[name] = index;
      }
      ir_.store_local(index);
      expect_punct(";");
      return;
    }
    // Expression statement.
    parse_expr();
    ir_.pop();
    expect_punct(";");
  }

  // ---- expressions ----
  void parse_expr() { parse_comparison(); }

  void parse_comparison() {
    parse_additive();
    while (cur().is_punct("<") || cur().is_punct("<=") ||
           cur().is_punct(">") || cur().is_punct(">=") ||
           cur().is_punct("==") || cur().is_punct("!=")) {
      const std::string op = next().text;
      if (op == ">" || op == ">=") {
        // a > b compiles as b < a: stash the rhs first via a temp local.
        const auto temp = static_cast<std::int32_t>(locals_.size());
        locals_["$tmp" + std::to_string(temp)] = temp;
        parse_additive();
        ir_.store_local(temp);   // rhs
        const auto temp2 = static_cast<std::int32_t>(locals_.size());
        locals_["$tmp" + std::to_string(temp2)] = temp2;
        ir_.store_local(temp2);  // lhs
        ir_.load_local(temp);
        ir_.load_local(temp2);
        if (op == ">") {
          ir_.lt();
        } else {
          ir_.le();
        }
      } else {
        parse_additive();
        if (op == "<") {
          ir_.lt();
        } else if (op == "<=") {
          ir_.le();
        } else if (op == "==") {
          ir_.eq();
        } else {  // !=
          ir_.eq();
          ir_.const_val(Value(false));
          ir_.eq();
        }
      }
    }
  }

  void parse_additive() {
    parse_multiplicative();
    while (cur().is_punct("+") || cur().is_punct("-")) {
      const bool add = next().text == "+";
      parse_multiplicative();
      if (add) {
        ir_.add();
      } else {
        ir_.sub();
      }
    }
  }

  void parse_multiplicative() {
    parse_unary();
    while (cur().is_punct("*") || cur().is_punct("/")) {
      const bool mul = next().text == "*";
      parse_unary();
      if (mul) {
        ir_.mul();
      } else {
        ir_.div();
      }
    }
  }

  void parse_unary() {
    if (cur().is_punct("-")) {
      next();
      ir_.const_val(Value(std::int32_t{0}));
      parse_unary();
      ir_.sub();
      return;
    }
    if (cur().is_punct("!")) {
      next();
      parse_unary();
      ir_.const_val(Value(false));
      ir_.eq();
      return;
    }
    parse_postfix();
  }

  void parse_postfix() {
    parse_primary();
    while (cur().is_punct(".")) {
      next();
      const std::string method = expect_identifier("method name");
      const std::int32_t argc = parse_args();
      ir_.call(method, argc);
    }
  }

  std::int32_t parse_args() {
    expect_punct("(");
    std::int32_t argc = 0;
    if (!cur().is_punct(")")) {
      while (true) {
        parse_expr();
        ++argc;
        if (!accept_punct(",")) break;
      }
    }
    expect_punct(")");
    return argc;
  }

  void parse_primary() {
    switch (cur().kind) {
      case TokenKind::kIntLiteral: {
        const std::int64_t v = next().int_value;
        if (v >= INT32_MIN && v <= INT32_MAX) {
          ir_.const_val(Value(static_cast<std::int32_t>(v)));
        } else {
          ir_.const_val(Value(v));
        }
        return;
      }
      case TokenKind::kFloatLiteral:
        ir_.const_val(Value(next().float_value));
        return;
      case TokenKind::kStringLiteral:
        ir_.const_val(Value(next().string_value));
        return;
      case TokenKind::kAnnotation: {
        // Intrinsic call: @name(args).
        const std::string name = next().text;
        const std::int32_t argc = parse_args();
        ir_.intrinsic(name, argc);
        return;
      }
      default:
        break;
    }
    if (accept_punct("(")) {
      parse_expr();
      expect_punct(")");
      return;
    }
    if (cur().is_identifier("new")) {
      next();
      const std::string cls = expect_identifier("class name");
      const std::int32_t argc = parse_args();
      ir_.new_object(cls, argc);
      return;
    }
    if (cur().is_identifier("true") || cur().is_identifier("false")) {
      ir_.const_val(Value(next().text == "true"));
      return;
    }
    if (cur().is_identifier("null")) {
      next();
      ir_.const_val(Value());
      return;
    }
    if (cur().is_identifier("this")) {
      if (is_static_) fail("'this' in a static method");
      next();
      if (cur().is_punct(".") && peek(1).kind == TokenKind::kIdentifier &&
          !peek(2).is_punct("(")) {
        // Field read: this.field (method calls are handled by postfix).
        next();
        const std::string field = next().text;
        ir_.load_local(0);
        ir_.get_field(field_index(field));
        return;
      }
      ir_.load_local(0);
      return;
    }
    if (at(TokenKind::kIdentifier)) {
      const std::string name = next().text;
      const auto it = locals_.find(name);
      if (it == locals_.end()) fail("unknown variable '" + name + "'");
      ir_.load_local(it->second);
      return;
    }
    fail("expected an expression");
  }

  std::int32_t field_index(const std::string& field) const {
    const std::int32_t index = cls_->field_index(field);
    if (index < 0) {
      throw ParseError("class " + cls_->name() + " has no field '" + field +
                           "' (fields must be declared before methods)",
                       cur().line);
    }
    return index;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  ClassDecl* cls_ = nullptr;
  IrBuilder ir_;
  std::unordered_map<std::string, std::int32_t> locals_;
  bool is_static_ = false;
};

}  // namespace

model::AppModel parse_program(const std::string& source) {
  return Parser(source).parse_program();
}

}  // namespace msv::dsl
