// Fault injector: drives a FaultPlan against a live enclave.
//
// The injector is *polled*, not timer-driven: the bridge calls
// on_transition_start() at the top of every ecall/ocall and
// on_ecall_entry() just before a trusted handler runs, and the injector
// fires every event whose instant the virtual clock has reached. Polling
// keeps injection deterministic — events apply at transition boundaries,
// which are themselves deterministic under the fiber scheduler — and
// keeps the disarmed hot path at exactly one pointer test in the bridge
// (the honesty contract: with no injector attached, every abl_* /
// fig_server baseline stays byte-identical).
//
// Enclave-loss events are special: they are held until the next ecall
// entry so the loss always surfaces *mid-ecall* (payload copied in, TCS
// bound, handler about to run), which is where SGX_ERROR_ENCLAVE_LOST
// bites on real hardware. Events scheduled after a pending loss wait
// behind it.
#pragma once

#include <cstdint>
#include <functional>

#include "faults/plan.h"
#include "sgx/enclave.h"
#include "support/rng.h"

namespace msv::faults {

struct FaultInjectorStats {
  std::uint64_t enclave_losses = 0;
  std::uint64_t transition_failures = 0;
  std::uint64_t epc_spikes = 0;       // windows opened
  std::uint64_t tcs_bursts = 0;       // windows opened
  std::uint64_t blob_corruptions = 0;
  // Corruption events that found nothing to corrupt (no corrupter
  // registered, or no blob stored yet) — reported, never silently eaten.
  std::uint64_t skipped_corruptions = 0;
};

class FaultInjector {
 public:
  // Flips bits in some stored sealed blob, drawing all randomness from the
  // provided (injector-owned, seeded) Rng. Returns false when there is no
  // blob to corrupt.
  using BlobCorrupter = std::function<bool(Rng&)>;

  FaultInjector(Env& env, FaultPlan plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Binds the injector to its target enclave and resolves deferred window
  // magnitudes (0 pages -> half the EPC capacity; 0 slots -> all but one).
  // Attach to the bridge separately (TransitionBridge::attach_fault_injector).
  void arm(sgx::Enclave& enclave);

  // Re-points an armed injector at a different enclave. The fleet uses
  // this after a replica promotion: the shard's remaining schedule must
  // strike whichever enclave currently holds the shard's authority, not
  // the demoted one. Already-resolved window magnitudes are kept (they
  // were sized against the original enclave; fleet shards share one
  // geometry, so the numbers transfer).
  void retarget(sgx::Enclave& enclave);

  void set_blob_corrupter(BlobCorrupter corrupter) {
    corrupter_ = std::move(corrupter);
  }

  // Bridge hook: top of every transition. Fires due non-loss events; may
  // throw TransitionError (exactly one call fails per event).
  void on_transition_start();
  // Bridge hook: inside an ecall, after entry costs, before the handler.
  // Fires due events including enclave loss; may throw EnclaveLostError
  // (after marking the enclave lost) or TransitionError.
  void on_ecall_entry();

  const FaultInjectorStats& stats() const { return stats_; }
  std::size_t pending() const { return plan_.size() - next_; }
  bool exhausted() const { return next_ >= plan_.size(); }
  const FaultPlan& plan() const { return plan_; }

 private:
  void process_due(bool in_ecall);
  void apply(const FaultEvent& event);

  Env& env_;
  FaultPlan plan_;
  std::size_t next_ = 0;
  sgx::Enclave* enclave_ = nullptr;
  BlobCorrupter corrupter_;
  Rng rng_;
  FaultInjectorStats stats_;
};

}  // namespace msv::faults
