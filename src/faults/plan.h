// Seeded, deterministic fault plans (DESIGN.md §12).
//
// A FaultPlan is a pre-generated, time-sorted schedule of fault events on
// the virtual clock: enclave loss mid-ecall, transient transition
// failures, EPC pressure windows (another workload grabbing frames), TCS
// exhaustion windows (foreign threads squatting in the enclave) and
// sealed-blob corruption (bit rot / tampering in untrusted storage).
//
// Determinism is the whole point — Stress-SGX-style chaos testing is only
// a regression tool if the storm replays bit-for-bit. The plan is a pure
// function of its config (one seeded Rng, consumed in a fixed order), and
// the injector (injector.h) consumes it by polling the virtual clock at
// transition boundaries, so the same seed produces the same faults at the
// same simulated instants on every run.
#pragma once

#include <cstdint>
#include <vector>

#include "support/clock.h"

namespace msv::faults {

enum class FaultKind : std::uint8_t {
  kEnclaveLoss,        // SGX_ERROR_ENCLAVE_LOST, surfaced mid-ecall
  kTransitionFailure,  // one transition fails transiently (retry-safe)
  kEpcPressureStart,   // begin withholding `magnitude` EPC pages
  kEpcPressureEnd,
  kTcsSeizeStart,      // begin withholding `magnitude` TCS slots
  kTcsSeizeEnd,
  kBlobCorruption,     // flip one bit in a stored sealed blob
};

const char* fault_kind_name(FaultKind kind);

// Fleet-scoped events name the shard they strike; kAnyTarget events apply
// wherever the consuming injector is armed (the single-enclave plans every
// pre-fleet bench uses are all-kAnyTarget, and their digests are unchanged
// because the target only mixes in when explicitly set).
inline constexpr std::uint32_t kAnyTarget = 0xffffffffu;

struct FaultEvent {
  Cycles at = 0;
  FaultKind kind = FaultKind::kTransitionFailure;
  // Window magnitude: pages withheld (EPC) or slots withheld (TCS).
  // 0 = resolve against the target enclave when the injector is armed
  // (half the EPC capacity / all TCS slots but one).
  std::uint64_t magnitude = 0;
  // Fleet shard this event strikes ("lose enclave k at cycle c"), or
  // kAnyTarget for untargeted events.
  std::uint32_t target = kAnyTarget;
};

struct FaultPlanConfig {
  std::uint64_t seed = 1;
  // Event instants are drawn uniformly from [0, horizon); windows start in
  // [0, horizon - duration] so they always close inside the horizon.
  Cycles horizon = 200'000'000;
  std::uint32_t enclave_losses = 0;
  std::uint32_t transition_failures = 0;
  std::uint32_t epc_spikes = 0;
  Cycles epc_spike_cycles = 20'000'000;
  std::uint64_t epc_spike_pages = 0;  // 0 = half the capacity, at arm time
  std::uint32_t tcs_bursts = 0;
  Cycles tcs_burst_cycles = 10'000'000;
  std::uint32_t tcs_burst_slots = 0;  // 0 = all but one, at arm time
  std::uint32_t blob_corruptions = 0;
  // Fleet-scoped storm (DESIGN.md §14): each of these events draws a
  // uniform shard in [0, fleet_shards) as its target. fleet_shards = 0
  // keeps the plan single-enclave (and must, if the counts are zero too,
  // to leave pre-fleet plan digests untouched).
  std::uint32_t fleet_shards = 0;
  std::uint32_t shard_losses = 0;
  std::uint32_t shard_transition_failures = 0;
};

class FaultPlan {
 public:
  // Draws every event from one Rng(seed) in a fixed kind order, then
  // stable-sorts by instant — a pure function of the config.
  static FaultPlan generate(const FaultPlanConfig& config);

  // Manual construction for tests: events may be appended in any order
  // and are kept time-sorted (stable for equal instants).
  void add(const FaultEvent& event);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  // Projects the per-shard schedule out of a fleet plan: the events whose
  // target is `shard`, plus (optionally) every untargeted event. Relative
  // order is preserved, so per-shard injectors driven by the projections
  // replay exactly the instants the fleet plan scheduled.
  FaultPlan for_target(std::uint32_t shard,
                       bool include_untargeted = false) const;

  // FNV-1a over the serialized schedule: two plans with equal digests are
  // identical event-for-event (the determinism self-checks compare this).
  std::uint64_t digest() const;

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace msv::faults
