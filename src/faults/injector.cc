#include "faults/injector.h"

#include <utility>

#include "support/error.h"
#include "telemetry/flight.h"

namespace msv::faults {

FaultInjector::FaultInjector(Env& env, FaultPlan plan)
    : env_(env),
      plan_(std::move(plan)),
      // Corruption randomness is derived from the plan itself, so a given
      // plan corrupts the same blob bytes on every run.
      rng_(plan_.digest() | 1) {}

void FaultInjector::arm(sgx::Enclave& enclave) {
  MSV_CHECK_MSG(enclave_ == nullptr, "fault injector armed twice");
  enclave_ = &enclave;
  // Resolve deferred window magnitudes against the live enclave.
  FaultPlan resolved;
  for (FaultEvent e : plan_.events()) {
    if (e.kind == FaultKind::kEpcPressureStart && e.magnitude == 0) {
      e.magnitude = std::max<std::uint64_t>(1, enclave.epc().capacity_pages() / 2);
    }
    if (e.kind == FaultKind::kTcsSeizeStart && e.magnitude == 0) {
      e.magnitude = enclave.tcs().slots() - 1;
    }
    resolved.add(e);
  }
  plan_ = std::move(resolved);
}

void FaultInjector::retarget(sgx::Enclave& enclave) {
  MSV_CHECK_MSG(enclave_ != nullptr, "retarget() before arm()");
  enclave_ = &enclave;
}

void FaultInjector::on_transition_start() {
  if (next_ >= plan_.size()) return;
  process_due(/*in_ecall=*/false);
}

void FaultInjector::on_ecall_entry() {
  if (next_ >= plan_.size()) return;
  process_due(/*in_ecall=*/true);
}

void FaultInjector::process_due(bool in_ecall) {
  MSV_CHECK_MSG(enclave_ != nullptr, "fault injector polled before arm()");
  const std::vector<FaultEvent>& events = plan_.events();
  while (next_ < events.size() && events[next_].at <= env_.clock.now()) {
    const FaultEvent& e = events[next_];
    // A due enclave loss is held until the next ecall entry so it always
    // surfaces mid-ecall; later events queue behind it.
    if (e.kind == FaultKind::kEnclaveLoss && !in_ecall) return;
    ++next_;
    apply(e);  // may throw — the consumed event never replays
  }
}

void FaultInjector::apply(const FaultEvent& e) {
  // Zero-duration marker span: faults are instants, and telemetry never
  // advances the clock, so the marker costs the timeline nothing.
  {
    telemetry::SpanScope span(env_.telemetry.tracer(),
                              telemetry::Category::kFault,
                              env_.telemetry.names().fault_inject);
  }
  // Every applied fault leaves a breadcrumb in the victim's flight ring
  // *before* the effect lands, so the post-mortem taken on mark_lost
  // already shows the active fault-plan window. Disarmed = pointer test.
  if (telemetry::FlightBus* bus = env_.telemetry.flight()) {
    bus->recorder(enclave_->name())
        .record(telemetry::FlightEventKind::kFault,
                std::string("fault.") + fault_kind_name(e.kind),
                static_cast<std::int64_t>(e.at),
                static_cast<std::int64_t>(e.magnitude));
  }
  switch (e.kind) {
    case FaultKind::kEnclaveLoss:
      ++stats_.enclave_losses;
      enclave_->mark_lost();
      throw sgx::EnclaveLostError(
          "enclave " + enclave_->name() +
          " lost mid-ecall (SGX_ERROR_ENCLAVE_LOST)");
    case FaultKind::kTransitionFailure:
      ++stats_.transition_failures;
      throw sgx::TransitionError("injected transient transition failure");
    case FaultKind::kEpcPressureStart:
      ++stats_.epc_spikes;
      enclave_->epc().set_reserved_pages(e.magnitude);
      return;
    case FaultKind::kEpcPressureEnd:
      enclave_->epc().set_reserved_pages(0);
      return;
    case FaultKind::kTcsSeizeStart:
      ++stats_.tcs_bursts;
      enclave_->tcs().set_seized(static_cast<std::uint32_t>(e.magnitude));
      return;
    case FaultKind::kTcsSeizeEnd:
      enclave_->tcs().set_seized(0);
      return;
    case FaultKind::kBlobCorruption:
      if (corrupter_ && corrupter_(rng_)) {
        ++stats_.blob_corruptions;
      } else {
        ++stats_.skipped_corruptions;
      }
      return;
  }
}

}  // namespace msv::faults
