#include "faults/plan.h"

#include <algorithm>

#include "support/error.h"
#include "support/rng.h"

namespace msv::faults {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kEnclaveLoss:
      return "enclave_loss";
    case FaultKind::kTransitionFailure:
      return "transition_failure";
    case FaultKind::kEpcPressureStart:
      return "epc_pressure_start";
    case FaultKind::kEpcPressureEnd:
      return "epc_pressure_end";
    case FaultKind::kTcsSeizeStart:
      return "tcs_seize_start";
    case FaultKind::kTcsSeizeEnd:
      return "tcs_seize_end";
    case FaultKind::kBlobCorruption:
      return "blob_corruption";
  }
  return "unknown";
}

FaultPlan FaultPlan::generate(const FaultPlanConfig& config) {
  FaultPlan plan;
  Rng rng(config.seed);
  const auto instant = [&] {
    return static_cast<Cycles>(rng.next_below(config.horizon));
  };
  // One kind at a time, in declaration order: the Rng consumption order is
  // part of the plan's identity, so reordering these loops would be a
  // (deliberate, testable) format change.
  for (std::uint32_t i = 0; i < config.enclave_losses; ++i) {
    plan.add({instant(), FaultKind::kEnclaveLoss, 0});
  }
  for (std::uint32_t i = 0; i < config.transition_failures; ++i) {
    plan.add({instant(), FaultKind::kTransitionFailure, 0});
  }
  for (std::uint32_t i = 0; i < config.epc_spikes; ++i) {
    const Cycles dur = std::min(config.epc_spike_cycles, config.horizon);
    const Cycles start =
        static_cast<Cycles>(rng.next_below(config.horizon - dur + 1));
    plan.add({start, FaultKind::kEpcPressureStart, config.epc_spike_pages});
    plan.add({start + dur, FaultKind::kEpcPressureEnd, 0});
  }
  for (std::uint32_t i = 0; i < config.tcs_bursts; ++i) {
    const Cycles dur = std::min(config.tcs_burst_cycles, config.horizon);
    const Cycles start =
        static_cast<Cycles>(rng.next_below(config.horizon - dur + 1));
    plan.add({start, FaultKind::kTcsSeizeStart, config.tcs_burst_slots});
    plan.add({start + dur, FaultKind::kTcsSeizeEnd, 0});
  }
  for (std::uint32_t i = 0; i < config.blob_corruptions; ++i) {
    plan.add({instant(), FaultKind::kBlobCorruption, 0});
  }
  // Fleet-scoped events come last in the consumption order so a fleet
  // storm with the same seed and the same single-enclave counts replays
  // the single-enclave prefix identically.
  if (config.shard_losses > 0 || config.shard_transition_failures > 0) {
    MSV_CHECK_MSG(config.fleet_shards > 0,
                  "fleet-scoped fault counts need fleet_shards > 0");
  }
  for (std::uint32_t i = 0; i < config.shard_losses; ++i) {
    plan.add({instant(), FaultKind::kEnclaveLoss, 0,
              static_cast<std::uint32_t>(rng.next_below(config.fleet_shards))});
  }
  for (std::uint32_t i = 0; i < config.shard_transition_failures; ++i) {
    plan.add({instant(), FaultKind::kTransitionFailure, 0,
              static_cast<std::uint32_t>(rng.next_below(config.fleet_shards))});
  }
  return plan;
}

FaultPlan FaultPlan::for_target(std::uint32_t shard,
                                bool include_untargeted) const {
  FaultPlan out;
  for (const FaultEvent& e : events_) {
    if (e.target == shard || (include_untargeted && e.target == kAnyTarget)) {
      out.add(e);
    }
  }
  return out;
}

void FaultPlan::add(const FaultEvent& event) {
  // Insert behind every event with an instant <= this one: stable order
  // for simultaneous events, so repeated add() sequences replay exactly.
  const auto pos =
      std::upper_bound(events_.begin(), events_.end(), event,
                       [](const FaultEvent& a, const FaultEvent& b) {
                         return a.at < b.at;
                       });
  events_.insert(pos, event);
}

std::uint64_t FaultPlan::digest() const {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a
  const auto mix = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 0x100000001b3ull;
    }
  };
  for (const FaultEvent& e : events_) {
    mix(e.at);
    mix(static_cast<std::uint64_t>(e.kind));
    mix(e.magnitude);
    // Mixed only when targeted: all-kAnyTarget plans keep the exact
    // digests the pre-fleet self-checks recorded.
    if (e.target != kAnyTarget) mix(e.target);
  }
  return h;
}

}  // namespace msv::faults
