// Abstract interpretation over model::IrBody — the shared engine under the
// bytecode verifier (analysis/verify.h) and the partition lints
// (analysis/lint.h).
//
// The abstraction simulates the operand stack and locals with *value
// kinds* (null/bool/i32/i64/f64/string/list/ref/top), a set of possible
// classes for references, and a taint bit marking data read from @Trusted
// class fields (the secret-flow source of MSV001). A worklist iterates
// block entry states to a fixpoint, joining at merge points; a final pass
// records the state before every reachable instruction so rule passes can
// inspect operands without re-running the transfer functions.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/diag.h"
#include "model/app_model.h"

namespace msv::analysis {

enum class Kind : std::uint8_t {
  kBottom,  // no value (unreached)
  kNull,
  kBool,
  kI32,
  kI64,
  kF64,
  kString,
  kList,
  kRef,
  kTop,  // any value
};

const char* kind_name(Kind k);

struct AbsValue {
  Kind kind = Kind::kBottom;
  bool tainted = false;  // derived from a @Trusted class field
  // Possible classes when kind == kRef (empty = unknown ref).
  std::set<std::string> classes;

  bool is_primitive() const {
    return kind == Kind::kNull || kind == Kind::kBool || kind == Kind::kI32 ||
           kind == Kind::kI64 || kind == Kind::kF64;
  }
  // True when the abstraction proves the value is not a primitive — used by
  // the MSV005 primitive-signature check (unknown kinds pass).
  bool definitely_nonprimitive() const {
    return kind == Kind::kString || kind == Kind::kList || kind == Kind::kRef;
  }

  static AbsValue bottom() { return {}; }
  static AbsValue top() { return {Kind::kTop, false, {}}; }
  static AbsValue of(Kind k) { return {k, false, {}}; }
  static AbsValue ref_to(std::string cls) {
    AbsValue v{Kind::kRef, false, {}};
    v.classes.insert(std::move(cls));
    return v;
  }

  // Least upper bound; returns true if *this changed.
  bool join(const AbsValue& other);
  bool operator==(const AbsValue& other) const = default;
};

struct FrameState {
  bool reachable = false;
  std::vector<AbsValue> locals;
  std::vector<AbsValue> stack;

  // Joins `other` into *this; returns true on change. `depth_mismatch` is
  // set when the operand stacks disagree in depth (a verification error;
  // the join truncates to the shallower depth to keep the analysis total).
  bool join(const FrameState& other, bool* depth_mismatch);
};

// Return-value summaries for interprocedural propagation: what a call to
// (class, method) may produce. Populated by lint's fixpoint over the RTA
// call graph; absent entries mean "unknown" (top, untainted).
using SummaryKey = std::pair<std::string, std::string>;
using SummaryMap = std::map<SummaryKey, AbsValue>;

struct DataflowContext {
  // Optional model context. With `app`, kNew results carry the target
  // class, kCall results consult `summaries`, and field reads on receivers
  // whose class set includes a @Trusted class are tainted.
  const model::AppModel* app = nullptr;
  const model::ClassDecl* cls = nullptr;        // declaring class
  const model::MethodDecl* method = nullptr;    // analyzed method
  const SummaryMap* summaries = nullptr;
  bool taint_trusted_fields = false;
  std::uint32_t max_stack = 1024;
};

struct DataflowResult {
  Cfg cfg;
  // State *before* each pc; .reachable == false for dead code.
  std::vector<FrameState> before;
  // Verification problems: operand-stack underflow/overflow, inconsistent
  // merge depths, out-of-bounds operands, malformed jump targets,
  // fall-through past the end. `rule`/`cls`/`method` are left for the
  // caller (verify -> plain errors, lint -> MSV007).
  std::vector<Diagnostic> errors;
  // Join over every kReturn operand (bottom if the method never returns a
  // value).
  AbsValue return_value;
  bool falls_off_end = false;
  std::uint64_t block_visits = 0;
};

DataflowResult analyze_method(const model::IrBody& body,
                              const DataflowContext& ctx);

}  // namespace msv::analysis
