// Abstract interpretation over model::IrBody — the shared engine under the
// bytecode verifier (analysis/verify.h) and the partition lints
// (analysis/lint.h).
//
// The abstraction simulates the operand stack and locals with *value
// kinds* (null/bool/i32/i64/f64/string/list/ref/top), a set of possible
// classes for references, and a taint bit marking data read from @Trusted
// class fields (the secret-flow source of MSV001). A worklist iterates
// block entry states to a fixpoint, joining at merge points; a final pass
// records the state before every reachable instruction so rule passes can
// inspect operands without re-running the transfer functions.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/diag.h"
#include "model/app_model.h"

namespace msv::analysis {

enum class Kind : std::uint8_t {
  kBottom,  // no value (unreached)
  kNull,
  kBool,
  kI32,
  kI64,
  kF64,
  kString,
  kList,
  kRef,
  kTop,  // any value
};

const char* kind_name(Kind k);

// Value-granular trust (DESIGN.md §15, SecV-style): where a value may have
// been observed. kPublic = provably already visible outside the enclave
// (constants, untrusted-side inputs); kSecret = may be enclave-confined
// (secret intrinsics, policy-pinned fields); kMixed = both. A power-set
// lattice over {public, secret}, so join is bitwise-or. Distinct from the
// MSV001 `tainted` bit, which marks the class-granular source (read from
// any @Trusted field); trust tracks what the value itself could reveal.
enum class Trust : std::uint8_t {
  kBottom = 0,  // no value seen (unreached)
  kPublic = 1,
  kSecret = 2,
  kMixed = 3,
};

const char* trust_name(Trust t);

constexpr Trust trust_join(Trust a, Trust b) {
  return static_cast<Trust>(static_cast<std::uint8_t>(a) |
                            static_cast<std::uint8_t>(b));
}

// True when the lattice point admits a secret constituent.
constexpr bool trust_may_be_secret(Trust t) {
  return (static_cast<std::uint8_t>(t) &
          static_cast<std::uint8_t>(Trust::kSecret)) != 0;
}

struct AbsValue {
  Kind kind = Kind::kBottom;
  bool tainted = false;  // derived from a @Trusted class field
  // Trust tag; stays kBottom unless DataflowContext::trust is set, so the
  // verifier and the taint lints are unaffected by the trust machinery.
  Trust trust = Trust::kBottom;
  // Possible classes when kind == kRef (empty = unknown ref).
  std::set<std::string> classes;

  bool is_primitive() const {
    return kind == Kind::kNull || kind == Kind::kBool || kind == Kind::kI32 ||
           kind == Kind::kI64 || kind == Kind::kF64;
  }
  // True when the abstraction proves the value is not a primitive — used by
  // the MSV005 primitive-signature check (unknown kinds pass).
  bool definitely_nonprimitive() const {
    return kind == Kind::kString || kind == Kind::kList || kind == Kind::kRef;
  }

  static AbsValue bottom() { return {}; }
  static AbsValue top() { return {Kind::kTop, false, Trust::kBottom, {}}; }
  static AbsValue of(Kind k) { return {k, false, Trust::kBottom, {}}; }
  static AbsValue ref_to(std::string cls) {
    AbsValue v{Kind::kRef, false, Trust::kBottom, {}};
    v.classes.insert(std::move(cls));
    return v;
  }

  // Least upper bound; returns true if *this changed.
  bool join(const AbsValue& other);
  bool operator==(const AbsValue& other) const = default;
};

struct FrameState {
  bool reachable = false;
  std::vector<AbsValue> locals;
  std::vector<AbsValue> stack;

  // Joins `other` into *this; returns true on change. `depth_mismatch` is
  // set when the operand stacks disagree in depth (a verification error;
  // the join truncates to the shallower depth to keep the analysis total).
  bool join(const FrameState& other, bool* depth_mismatch);
};

// Return-value summaries for interprocedural propagation: what a call to
// (class, method) may produce. Populated by lint's fixpoint over the RTA
// call graph; absent entries mean "unknown" (top, untainted).
using SummaryKey = std::pair<std::string, std::string>;
using SummaryMap = std::map<SummaryKey, AbsValue>;

// Keys for the value-trust side tables (analysis/trust.h owns the
// fixpoints; absint only consults them).
using FieldKey = std::pair<std::string, std::int32_t>;  // (class, field idx)
// (class, method, receiver-set context) — the context is the canonical
// "A|B|C" serialization of the receiver class set at the call site, ""
// for an unknown receiver and "*" for the collapsed overflow context.
using TrustSummaryKey = std::tuple<std::string, std::string, std::string>;
using TrustSummaryMap = std::map<TrustSummaryKey, Trust>;

// Plugged into DataflowContext by the interprocedural trust fixpoint
// (analysis/trust.cc). All pointers may be null (treated as empty tables).
// Transfer rules, active only when DataflowContext::trust is set:
//   kConst           -> kPublic
//   kGetField        -> join of field_trust over the receiver class set
//                       (kMixed for an unknown receiver)
//   kCall            -> summary under the call site's receiver-set context,
//                       falling back to the "*" overflow context
//   kIntrinsic       -> join of argument trusts, plus kSecret for names in
//                       secret_intrinsics
//   arith / compare  -> join of operand trusts
//   kNew             -> kPublic (the reference is a handle; secrecy lives
//                       in the fields, tracked by field_trust)
//   entry            -> `this` kPublic, parameters from param_trust
struct TrustContext {
  const std::map<FieldKey, Trust>* field_trust = nullptr;
  const TrustSummaryMap* summaries = nullptr;
  const std::set<std::string>* secret_intrinsics = nullptr;
  // Entry trust per declared parameter (receiver excluded); parameters past
  // the end of the vector are kMixed (unknown caller).
  std::vector<Trust> param_trust;
};

struct DataflowContext {
  // Optional model context. With `app`, kNew results carry the target
  // class, kCall results consult `summaries`, and field reads on receivers
  // whose class set includes a @Trusted class are tainted.
  const model::AppModel* app = nullptr;
  const model::ClassDecl* cls = nullptr;        // declaring class
  const model::MethodDecl* method = nullptr;    // analyzed method
  const SummaryMap* summaries = nullptr;
  bool taint_trusted_fields = false;
  // Null = trust tracking off: every AbsValue::trust stays kBottom and the
  // analysis is bit-identical to the pre-trust engine.
  const TrustContext* trust = nullptr;
  std::uint32_t max_stack = 1024;
};

struct DataflowResult {
  Cfg cfg;
  // State *before* each pc; .reachable == false for dead code.
  std::vector<FrameState> before;
  // Verification problems: operand-stack underflow/overflow, inconsistent
  // merge depths, out-of-bounds operands, malformed jump targets,
  // fall-through past the end. `rule`/`cls`/`method` are left for the
  // caller (verify -> plain errors, lint -> MSV007).
  std::vector<Diagnostic> errors;
  // Join over every kReturn operand (bottom if the method never returns a
  // value).
  AbsValue return_value;
  bool falls_off_end = false;
  std::uint64_t block_visits = 0;
};

DataflowResult analyze_method(const model::IrBody& body,
                              const DataflowContext& ctx);

// Canonical receiver-set context key: sorted class names joined with '|'
// ("" for an unknown/empty receiver set). Shared between the call-result
// lookup here and the context discovery in analysis/trust.cc.
std::string receiver_context_key(const std::set<std::string>& classes);

}  // namespace msv::analysis
