// Diagnostics engine for the static-analysis layer (msvlint).
//
// Every finding carries a stable rule ID (MSV001...), a severity, and a
// class/method/instruction location, so the golden-fixture tests can assert
// exact output and CI can gate on "no new findings". Reports render as
// human text or machine-readable JSON; a baseline file suppresses known
// findings without deleting them from the report.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace msv::analysis {

enum class Severity : std::uint8_t { kInfo, kWarning, kError };

const char* severity_name(Severity s);

struct Diagnostic {
  std::string rule;  // stable ID, e.g. "MSV001"
  Severity severity = Severity::kWarning;
  std::string cls;      // class the finding is located in ("" = whole app)
  std::string method;   // method within cls ("" = whole class)
  std::int32_t pc = -1; // instruction index within the method, -1 = none
  std::string message;
  bool suppressed = false;  // matched by the baseline file

  // Location as "Class.method@pc" (parts omitted when absent).
  std::string location() const;
  // Baseline key: rule + class/method location, pc excluded so small body
  // edits do not invalidate the suppression.
  std::string baseline_key() const;
  // One human-readable line: "error MSV001 Class.method@3: ...".
  std::string to_text() const;
};

// A baseline ("suppression") file: one key per line, '#' comments. Findings
// whose baseline_key() appears in the file are marked suppressed.
class Baseline {
 public:
  Baseline() = default;
  // Parses baseline text (not a path; callers own the I/O).
  static Baseline parse(const std::string& text);

  void add(const std::string& key) { keys_.insert(key); }
  bool contains(const std::string& key) const { return keys_.count(key) != 0; }
  std::size_t size() const { return keys_.size(); }
  // Serialized form, one key per line, sorted.
  std::string to_text() const;

 private:
  std::set<std::string> keys_;
};

// Analysis cost counters, surfaced through --json so linter cost shows up
// in the bench trajectory alongside BENCH_*.json records.
struct AnalysisStats {
  std::uint64_t methods_analyzed = 0;
  std::uint64_t instrs_analyzed = 0;
  std::uint64_t dataflow_iterations = 0;  // worklist block visits
  double wall_ms = 0.0;                   // filled in by the driver
  // Per-rule analysis wall time. The linter seeds an entry for EVERY rule
  // it runs (0.0 when the pass is folded into a shared fixpoint), so the
  // v2 report can emit timings unconditionally — the v1 schema dropped
  // zero-diagnostic rules from the timing object, which made "rule was
  // cheap" indistinguishable from "rule did not run".
  std::map<std::string, double> rule_wall_ms;
};

class Report {
 public:
  void add(Diagnostic d);
  void merge(Report other);

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  std::vector<Diagnostic>& diagnostics() { return diags_; }
  bool empty() const { return diags_.empty(); }

  // Counts exclude suppressed findings.
  std::size_t count(Severity s) const;
  std::size_t errors() const { return count(Severity::kError); }
  std::size_t warnings() const { return count(Severity::kWarning); }

  // Marks findings present in `baseline` as suppressed.
  void apply_baseline(const Baseline& baseline);
  // Baseline covering every current (unsuppressed) finding.
  Baseline to_baseline() const;

  // Sorts by (class, method, pc, rule) for stable golden output.
  void sort();

  std::string to_text() const;
  // Machine-readable report. `version` selects the schema:
  //   2 (default) — "msvlint-report-v2": adds a "rule_timings" object that
  //     lists wall time for every rule in stats.rule_wall_ms,
  //     unconditionally (zero-diagnostic rules included).
  //   1 — byte-compatible "msvlint-report-v1" for consumers pinned to the
  //     old schema (--json-v1): rule timings only for rules that produced
  //     at least one diagnostic, and the key is omitted entirely when no
  //     rule did — the omission v2 exists to fix.
  std::string to_json(const std::vector<std::string>& rules_run,
                      const AnalysisStats& stats,
                      const std::string& target = "", int version = 2) const;

  AnalysisStats& stats() { return stats_; }
  const AnalysisStats& stats() const { return stats_; }

 private:
  std::vector<Diagnostic> diags_;
  AnalysisStats stats_;
};

}  // namespace msv::analysis
