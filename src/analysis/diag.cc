#include "analysis/diag.h"

#include <algorithm>
#include <iterator>
#include <sstream>

namespace msv::analysis {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

std::string Diagnostic::location() const {
  std::string out = cls.empty() ? std::string("<app>") : cls;
  if (!method.empty()) out += "." + method;
  if (pc >= 0) out += "@" + std::to_string(pc);
  return out;
}

std::string Diagnostic::baseline_key() const {
  std::string out = rule + " " + (cls.empty() ? std::string("<app>") : cls);
  if (!method.empty()) out += "." + method;
  return out;
}

std::string Diagnostic::to_text() const {
  std::string out = std::string(severity_name(severity)) + " " + rule + " " +
                    location() + ": " + message;
  if (suppressed) out += " [suppressed by baseline]";
  return out;
}

Baseline Baseline::parse(const std::string& text) {
  Baseline b;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    // Trim surrounding whitespace.
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    const auto last = line.find_last_not_of(" \t\r");
    b.add(line.substr(first, last - first + 1));
  }
  return b;
}

std::string Baseline::to_text() const {
  std::string out =
      "# msvlint baseline: one `RULE Class.method` key per line.\n";
  for (const auto& key : keys_) out += key + "\n";
  return out;
}

void Report::add(Diagnostic d) { diags_.push_back(std::move(d)); }

void Report::merge(Report other) {
  for (auto& d : other.diags_) diags_.push_back(std::move(d));
  stats_.methods_analyzed += other.stats_.methods_analyzed;
  stats_.instrs_analyzed += other.stats_.instrs_analyzed;
  stats_.dataflow_iterations += other.stats_.dataflow_iterations;
  for (const auto& [rule, ms] : other.stats_.rule_wall_ms) {
    stats_.rule_wall_ms[rule] += ms;
  }
}

std::size_t Report::count(Severity s) const {
  std::size_t n = 0;
  for (const auto& d : diags_) {
    if (!d.suppressed && d.severity == s) ++n;
  }
  return n;
}

void Report::apply_baseline(const Baseline& baseline) {
  for (auto& d : diags_) {
    if (baseline.contains(d.baseline_key())) d.suppressed = true;
  }
}

Baseline Report::to_baseline() const {
  Baseline b;
  for (const auto& d : diags_) b.add(d.baseline_key());
  return b;
}

void Report::sort() {
  std::stable_sort(diags_.begin(), diags_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.cls != b.cls) return a.cls < b.cls;
                     if (a.method != b.method) return a.method < b.method;
                     if (a.pc != b.pc) return a.pc < b.pc;
                     return a.rule < b.rule;
                   });
}

std::string Report::to_text() const {
  std::string out;
  for (const auto& d : diags_) out += d.to_text() + "\n";
  return out;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

std::string Report::to_json(const std::vector<std::string>& rules_run,
                            const AnalysisStats& stats,
                            const std::string& target, int version) const {
  std::ostringstream out;
  out << "{\n  \"schema\": \"msvlint-report-v" << version << "\",\n";
  if (!target.empty()) {
    out << "  \"target\": \"" << json_escape(target) << "\",\n";
  }
  out << "  \"rules_run\": [";
  for (std::size_t i = 0; i < rules_run.size(); ++i) {
    out << (i ? ", " : "") << "\"" << rules_run[i] << "\"";
  }
  out << "],\n";
  // Per-rule wall time. v1 only listed rules that produced a finding and
  // dropped the object when none did; v2 emits every timed rule so a cheap
  // rule and a skipped rule are distinguishable.
  std::map<std::string, double> timings = stats.rule_wall_ms;
  if (version < 2) {
    std::set<std::string> with_findings;
    for (const auto& d : diags_) with_findings.insert(d.rule);
    for (auto it = timings.begin(); it != timings.end();) {
      it = with_findings.count(it->first) != 0 ? std::next(it)
                                               : timings.erase(it);
    }
  }
  if (version >= 2 || !timings.empty()) {
    out << "  \"rule_timings\": {";
    std::size_t i = 0;
    for (const auto& [rule, ms] : timings) {
      out << (i++ ? ", " : " ") << "\"" << rule << "\": " << ms;
    }
    out << " },\n";
  }
  out << "  \"findings\": [\n";
  for (std::size_t i = 0; i < diags_.size(); ++i) {
    const Diagnostic& d = diags_[i];
    out << "    { \"rule\": \"" << d.rule << "\", \"severity\": \""
        << severity_name(d.severity) << "\", \"class\": \""
        << json_escape(d.cls) << "\", \"method\": \"" << json_escape(d.method)
        << "\", \"pc\": " << d.pc << ", \"suppressed\": "
        << (d.suppressed ? "true" : "false") << ", \"message\": \""
        << json_escape(d.message) << "\" }" << (i + 1 < diags_.size() ? "," : "")
        << "\n";
  }
  out << "  ],\n  \"metrics\": { \"findings_total\": " << diags_.size()
      << ", \"errors\": " << errors() << ", \"warnings\": " << warnings()
      << ", \"infos\": " << count(Severity::kInfo)
      << ", \"methods_analyzed\": " << stats.methods_analyzed
      << ", \"instrs_analyzed\": " << stats.instrs_analyzed
      << ", \"dataflow_iterations\": " << stats.dataflow_iterations
      << ", \"wall_ms\": " << stats.wall_ms << " }\n}\n";
  return out.str();
}

}  // namespace msv::analysis
