#include "analysis/trust.h"

#include <algorithm>
#include <utility>

#include "model/annotations.h"
#include "model/ir.h"

namespace msv::analysis {

using model::AppModel;
using model::ClassDecl;
using model::Instr;
using model::MethodDecl;
using model::MethodKind;
using model::Op;

namespace {

bool join_into(Trust& slot, Trust t) {
  const Trust joined = trust_join(slot, t);
  if (joined == slot) return false;
  slot = joined;
  return true;
}

bool join_params(std::vector<Trust>& slot, const std::vector<Trust>& args) {
  bool changed = false;
  if (slot.size() < args.size()) {
    slot.resize(args.size(), Trust::kBottom);
    changed = true;
  }
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (join_into(slot[i], args[i])) changed = true;
  }
  return changed;
}

// The interprocedural fixpoint driver. All iteration orders are sorted
// (class names, context keys), so the result is independent of model
// construction order — the optimizer's plan digest depends on that.
class TrustEngine {
 public:
  TrustEngine(const AppModel& app, const TrustOptions& options)
      : app_(app), options_(options) {}

  TrustFacts run() {
    seed();
    bool changed = true;
    while (changed && facts_.rounds < options_.max_rounds) {
      ++facts_.rounds;
      changed = round();
    }
    facts_.converged = !changed;
    finish();
    return std::move(facts_);
  }

 private:
  // ---- Seeding ----
  void seed() {
    for (const ClassDecl* cls : sorted_classes()) {
      const bool opaque = has_native_method(*cls);
      for (std::size_t i = 0; i < cls->fields().size(); ++i) {
        const FieldKey key{cls->name(), static_cast<std::int32_t>(i)};
        Trust t = Trust::kBottom;
        if (opaque) t = Trust::kMixed;  // native bodies may store anything
        if (options_.pinned_secret_fields.count(cls->name() + "." +
                                                cls->fields()[i].name) > 0) {
          t = trust_join(t, Trust::kSecret);
        }
        if (t != Trust::kBottom) field_trust_[key] = t;
      }
      for (const MethodDecl& m : cls->methods()) {
        if (m.kind() == MethodKind::kIr) {
          // Boundary context: any public method may be entered from the
          // untrusted side (relay or harness) carrying data the untrusted
          // side already holds — all-kPublic parameters.
          if (m.is_public()) {
            std::vector<Trust> params(m.param_count(), Trust::kPublic);
            join_params(contexts_[{cls->name(), m.name()}]
                                 [receiver_context_key({cls->name()})],
                        params);
          }
          continue;
        }
        // Opaque (native/stub) bodies: callers must assume a mixed-trust
        // result, and declared callees see mixed-trust arguments.
        summaries_[{cls->name(), m.name(), "*"}] = Trust::kMixed;
        for (const auto& [callee_cls, callee_m] : m.declared_callees()) {
          const ClassDecl* target = app_.find_class(callee_cls);
          const MethodDecl* target_m =
              target != nullptr ? target->find_method(callee_m) : nullptr;
          if (target_m == nullptr || target_m->kind() != MethodKind::kIr) {
            continue;
          }
          std::vector<Trust> params(target_m->param_count(), Trust::kMixed);
          join_params(contexts_[{callee_cls, callee_m}]["*"], params);
        }
      }
    }
  }

  // ---- One chaotic-iteration round over every (method, context) ----
  bool round() {
    bool changed = false;
    for (const ClassDecl* cls : sorted_classes()) {
      for (const MethodDecl& m : cls->methods()) {
        if (m.kind() != MethodKind::kIr) continue;
        auto ctx_it = contexts_.find({cls->name(), m.name()});
        if (ctx_it == contexts_.end()) continue;  // unreachable so far
        // Copy the keys: discovery during analysis may grow the table.
        std::vector<std::string> keys;
        keys.reserve(ctx_it->second.size());
        for (const auto& [key, params] : ctx_it->second) keys.push_back(key);
        for (const auto& key : keys) {
          if (analyze_in_context(*cls, m, key)) changed = true;
        }
      }
    }
    return changed;
  }

  bool analyze_in_context(const ClassDecl& cls, const MethodDecl& m,
                          const std::string& ctx_key) {
    TrustContext trust_ctx;
    trust_ctx.field_trust = &field_trust_;
    trust_ctx.summaries = &summaries_;
    trust_ctx.secret_intrinsics = &options_.secret_intrinsics;
    trust_ctx.param_trust = contexts_[{cls.name(), m.name()}][ctx_key];

    DataflowContext ctx;
    ctx.app = &app_;
    ctx.cls = &cls;
    ctx.method = &m;
    ctx.trust = &trust_ctx;
    ctx.max_stack = options_.max_stack;

    const DataflowResult result = analyze_method(m.ir(), ctx);
    ++facts_.contexts_analyzed;

    bool changed =
        join_into(summaries_[{cls.name(), m.name(), ctx_key}],
                  result.return_value.trust);
    for (std::size_t pc = 0; pc < m.ir().code.size(); ++pc) {
      if (!result.before[pc].reachable) continue;
      const Instr& instr = m.ir().code[pc];
      switch (instr.op) {
        case Op::kPutField:
          if (record_store(instr, result.before[pc])) changed = true;
          break;
        case Op::kCall:
          if (discover_call(m.ir(), instr, result.before[pc])) changed = true;
          break;
        case Op::kNew:
          if (discover_new(m.ir(), instr, result.before[pc])) changed = true;
          break;
        default:
          break;
      }
    }
    return changed;
  }

  // kPutField: stack is [... receiver value]. Join the stored trust into
  // the field of every possible receiver class; an unknown receiver widens
  // every class declaring a field at that index (soundness over
  // precision).
  bool record_store(const Instr& instr, const FrameState& before) {
    if (before.stack.size() < 2 || instr.a < 0) return false;
    const AbsValue& value = before.stack[before.stack.size() - 1];
    const AbsValue& receiver = before.stack[before.stack.size() - 2];
    const Trust stored =
        value.trust == Trust::kBottom ? Trust::kMixed : value.trust;
    bool changed = false;
    if (!receiver.classes.empty()) {
      for (const auto& name : receiver.classes) {
        const ClassDecl* target = app_.find_class(name);
        if (target == nullptr ||
            static_cast<std::size_t>(instr.a) >= target->fields().size()) {
          continue;
        }
        if (join_into(field_trust_[{name, instr.a}], stored)) changed = true;
      }
      return changed;
    }
    for (const ClassDecl* target : sorted_classes()) {
      if (static_cast<std::size_t>(instr.a) >= target->fields().size()) {
        continue;
      }
      if (join_into(field_trust_[{target->name(), instr.a}], stored)) {
        changed = true;
      }
    }
    return changed;
  }

  // kCall: stack is [... receiver arg0 .. argN-1]. Feed the argument
  // trusts into the callee's context table under this site's receiver-set
  // key.
  bool discover_call(const model::IrBody& body, const Instr& instr,
                     const FrameState& before) {
    if (instr.a < 0 ||
        static_cast<std::size_t>(instr.a) >= body.names.size() ||
        instr.b < 0) {
      return false;
    }
    const std::size_t argc = static_cast<std::size_t>(instr.b);
    if (before.stack.size() < argc + 1) return false;
    const AbsValue& receiver = before.stack[before.stack.size() - 1 - argc];
    const std::string& method = body.names[static_cast<std::size_t>(instr.a)];

    std::vector<Trust> args(argc, Trust::kBottom);
    for (std::size_t i = 0; i < argc; ++i) {
      args[i] = before.stack[before.stack.size() - argc + i].trust;
    }

    bool changed = false;
    if (!receiver.classes.empty()) {
      const std::string key = receiver_context_key(receiver.classes);
      for (const auto& name : receiver.classes) {
        const ClassDecl* target = app_.find_class(name);
        const MethodDecl* target_m =
            target != nullptr ? target->find_method(method) : nullptr;
        if (target_m == nullptr) continue;
        if (feed_context(name, *target_m, key, args)) changed = true;
      }
      return changed;
    }
    // Unknown receiver: any class declaring the method may be the target.
    for (const ClassDecl* target : sorted_classes()) {
      const MethodDecl* target_m = target->find_method(method);
      if (target_m == nullptr) continue;
      if (feed_context(target->name(), *target_m, "*", args)) changed = true;
    }
    return changed;
  }

  // kNew: stack is [... arg0 .. argN-1]; the receiver set is exactly the
  // instantiated class.
  bool discover_new(const model::IrBody& body, const Instr& instr,
                    const FrameState& before) {
    if (instr.a < 0 ||
        static_cast<std::size_t>(instr.a) >= body.names.size() ||
        instr.b < 0) {
      return false;
    }
    const std::size_t argc = static_cast<std::size_t>(instr.b);
    if (before.stack.size() < argc) return false;
    const std::string& cls_name =
        body.names[static_cast<std::size_t>(instr.a)];
    const ClassDecl* target = app_.find_class(cls_name);
    const MethodDecl* ctor =
        target != nullptr ? target->find_method(model::kConstructorName)
                          : nullptr;
    if (ctor == nullptr) return false;

    std::vector<Trust> args(argc, Trust::kBottom);
    for (std::size_t i = 0; i < argc; ++i) {
      args[i] = before.stack[before.stack.size() - argc + i].trust;
    }
    return feed_context(cls_name, *ctor,
                        receiver_context_key({cls_name}), args);
  }

  bool feed_context(const std::string& cls_name, const MethodDecl& m,
                    const std::string& key, const std::vector<Trust>& args) {
    if (m.kind() != MethodKind::kIr) return false;  // opaque: seeded "*"
    auto& table = contexts_[{cls_name, m.name()}];
    std::string slot = key;
    if (table.find(slot) == table.end() && slot != "*" &&
        table.size() >= options_.max_contexts_per_method) {
      slot = "*";  // cap reached: collapse into the overflow context
    }
    return join_params(table[slot], args);
  }

  // ---- Output shaping ----
  void finish() {
    // Every declared field gets an entry (kBottom = no store reaches it).
    for (const ClassDecl* cls : sorted_classes()) {
      for (std::size_t i = 0; i < cls->fields().size(); ++i) {
        field_trust_.try_emplace({cls->name(), static_cast<std::int32_t>(i)},
                                 Trust::kBottom);
      }
      for (const MethodDecl& m : cls->methods()) {
        const SummaryKey key{cls->name(), m.name()};
        Trust ret = Trust::kBottom;
        for (const auto& [skey, t] : summaries_) {
          if (std::get<0>(skey) == key.first &&
              std::get<1>(skey) == key.second) {
            ret = trust_join(ret, t);
          }
        }
        facts_.return_trust[key] = ret;
        std::vector<Trust> params(m.param_count(), Trust::kBottom);
        const auto ctx_it = contexts_.find(key);
        if (ctx_it != contexts_.end()) {
          for (const auto& [ctx_key, ctx_params] : ctx_it->second) {
            join_params(params, ctx_params);
          }
        }
        facts_.param_trust[key] = std::move(params);
      }
    }
    facts_.field_trust = std::move(field_trust_);
    facts_.context_summaries = std::move(summaries_);
  }

  std::vector<const ClassDecl*> sorted_classes() const {
    std::vector<const ClassDecl*> out;
    out.reserve(app_.classes().size());
    for (const ClassDecl& cls : app_.classes()) out.push_back(&cls);
    std::sort(out.begin(), out.end(),
              [](const ClassDecl* a, const ClassDecl* b) {
                return a->name() < b->name();
              });
    return out;
  }

  static bool has_native_method(const ClassDecl& cls) {
    return std::any_of(cls.methods().begin(), cls.methods().end(),
                       [](const MethodDecl& m) {
                         return m.kind() != MethodKind::kIr;
                       });
  }

  const AppModel& app_;
  const TrustOptions& options_;
  TrustFacts facts_;
  std::map<FieldKey, Trust> field_trust_;
  TrustSummaryMap summaries_;
  // (class, method) -> context key -> joined parameter trusts.
  std::map<SummaryKey, std::map<std::string, std::vector<Trust>>> contexts_;
};

}  // namespace

Trust TrustFacts::field(const std::string& cls, std::int32_t idx) const {
  const auto it = field_trust.find({cls, idx});
  return it == field_trust.end() ? Trust::kBottom : it->second;
}

std::set<std::string> TrustFacts::secret_classes() const {
  std::set<std::string> out;
  for (const auto& [key, t] : field_trust) {
    if (trust_may_be_secret(t)) out.insert(key.first);
  }
  return out;
}

std::vector<FieldKey> TrustFacts::demotable_trusted_fields(
    const model::AppModel& app) const {
  std::vector<FieldKey> out;
  for (const auto& cls : app.classes()) {
    if (cls.annotation() != model::Annotation::kTrusted) continue;
    for (std::size_t i = 0; i < cls.fields().size(); ++i) {
      const Trust t = field(cls.name(), static_cast<std::int32_t>(i));
      if (!trust_may_be_secret(t)) {
        out.push_back({cls.name(), static_cast<std::int32_t>(i)});
      }
    }
  }
  return out;
}

TrustFacts analyze_trust(const model::AppModel& app,
                         const TrustOptions& options) {
  return TrustEngine(app, options).run();
}

}  // namespace msv::analysis
