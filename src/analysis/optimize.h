// Partition optimizer (DESIGN.md §15): given the value-trust facts
// (analysis/trust.h), a telemetry-measured call profile and the cycle cost
// model, propose the @Trusted/@Untrusted class placement that minimizes
//   boundary-crossing cost  = per-direction transition cycles
//                             (ecall/ocall + isolate attach + edge routine)
//                             x measured call counts, plus
//   enclave-residency cost  = modeled EPC/MEE traffic and I/O-ocall
//                             relaying of the code kept inside.
//
// The placement problem is a minimum s-t cut: one node per annotated
// class, source = trusted side, sink = untrusted side. The arc (A, B)
// carries the cost paid when A lands trusted and B untrusted (A->B calls
// cross in the ocall direction, B->A calls in the ecall direction); the
// arc (C, sink) carries C's enclave-residency penalty; policy pins are
// infinite-capacity terminal arcs. Max-flow/min-cut (Dinic) then yields
// the cheapest consistent assignment. Classes the trust analysis proves
// secret-carrying are pinned trusted regardless of cost — the optimizer
// must never move a secret out of the enclave.
//
// Neutral classes exist in both images and never host a crossing; they are
// not graph nodes and keep their annotation. Everything iterates in sorted
// class-name order, so for a fixed (model, profile, policy) the emitted
// plan — and its digest — is deterministic.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/trust.h"
#include "model/app_model.h"
#include "support/cost_model.h"

namespace msv::interp {
class ExecContext;
}

namespace msv::analysis {

// Telemetry-measured call counts, gathered from a profiled dry run
// (interp::ExecContext::enable_call_profiling) of a recorded workload.
struct CallProfile {
  using MethodRef = std::pair<std::string, std::string>;

  // (caller class.method -> callee class.method) -> invocation count.
  std::map<std::pair<MethodRef, MethodRef>, std::uint64_t> edges;

  static CallProfile from_context(const interp::ExecContext& ctx);

  // Callee-side invocation totals per (class, method).
  std::map<MethodRef, std::uint64_t> invocation_counts() const;
  // Class-to-class call counts; intra-class and "<entry>" edges excluded.
  std::map<std::pair<std::string, std::string>, std::uint64_t> class_edges()
      const;
  std::uint64_t total_calls() const;
};

struct PartitionPolicy {
  // Classes forced to a side regardless of cost (the main class is always
  // pinned untrusted — SGX applications begin in the untrusted runtime).
  std::set<std::string> pin_trusted;
  std::set<std::string> pin_untrusted;
  // Keep every currently-@Trusted class whose fields may carry secrets
  // (TrustFacts::secret_classes) inside the enclave.
  bool pin_secret_classes = true;
  // Recorded in the plan digest: two plans with different seeds never
  // collide even when the placements agree.
  std::uint64_t seed = 0;
  // Required relative modeled-cost gain in [0, 1); below it the plan is
  // returned unchanged (every `after` == `before`).
  double min_gain = 0.0;
};

struct ClassPlacement {
  std::string cls;
  model::Annotation before = model::Annotation::kNeutral;
  model::Annotation after = model::Annotation::kNeutral;
};

struct PartitionPlan {
  // Every annotated class, sorted by name; neutral classes are omitted
  // (they keep their annotation by construction).
  std::vector<ClassPlacement> placements;
  std::vector<std::string> moved;  // classes whose side changed, sorted

  // Profiled cross-partition call counts under the before/after placements.
  std::uint64_t crossings_before = 0;
  std::uint64_t crossings_after = 0;
  // Modeled cycles: crossing cost + enclave-residency cost.
  double modeled_cost_before = 0.0;
  double modeled_cost_after = 0.0;

  // True when the min-cut found a cheaper placement but the relative gain
  // fell below PartitionPolicy::min_gain and the plan was reverted.
  bool below_min_gain = false;

  // FNV-1a over the policy seed and the sorted placements.
  std::uint64_t digest = 0;

  bool changed() const { return !moved.empty(); }
  const ClassPlacement* find(const std::string& cls) const;

  std::string to_text() const;
  // The re-partitioned app config emitted by `msvlint --propose-partition`
  // (schema msvlint-partition-plan-v1).
  std::string to_json() const;
};

PartitionPlan optimize_partition(const model::AppModel& app,
                                 const TrustFacts& trust,
                                 const CallProfile& profile,
                                 const CostModel& cost,
                                 const PartitionPolicy& policy = {});

}  // namespace msv::analysis
