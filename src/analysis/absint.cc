#include "analysis/absint.h"

#include <algorithm>
#include <deque>

#include "model/annotations.h"

namespace msv::analysis {

using model::Instr;
using model::Op;

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kBottom:
      return "bottom";
    case Kind::kNull:
      return "null";
    case Kind::kBool:
      return "bool";
    case Kind::kI32:
      return "i32";
    case Kind::kI64:
      return "i64";
    case Kind::kF64:
      return "f64";
    case Kind::kString:
      return "string";
    case Kind::kList:
      return "list";
    case Kind::kRef:
      return "ref";
    case Kind::kTop:
      return "top";
  }
  return "?";
}

const char* trust_name(Trust t) {
  switch (t) {
    case Trust::kBottom:
      return "bottom";
    case Trust::kPublic:
      return "public";
    case Trust::kSecret:
      return "secret";
    case Trust::kMixed:
      return "mixed";
  }
  return "?";
}

std::string receiver_context_key(const std::set<std::string>& classes) {
  std::string key;
  for (const auto& c : classes) {  // std::set iterates sorted
    if (!key.empty()) key += '|';
    key += c;
  }
  return key;
}

namespace {

Kind join_kind(Kind a, Kind b) {
  if (a == b) return a;
  if (a == Kind::kBottom) return b;
  if (b == Kind::kBottom) return a;
  // null joins with a ref to "possibly-null ref"; we keep kRef, the class
  // set already expresses the uncertainty.
  if ((a == Kind::kNull && b == Kind::kRef) ||
      (a == Kind::kRef && b == Kind::kNull)) {
    return Kind::kRef;
  }
  return Kind::kTop;
}

Kind kind_of_const(const rt::Value& v) {
  switch (v.type()) {
    case rt::ValueType::kNull:
      return Kind::kNull;
    case rt::ValueType::kBool:
      return Kind::kBool;
    case rt::ValueType::kI32:
      return Kind::kI32;
    case rt::ValueType::kI64:
      return Kind::kI64;
    case rt::ValueType::kF64:
      return Kind::kF64;
    case rt::ValueType::kString:
      return Kind::kString;
    case rt::ValueType::kList:
      return Kind::kList;
    case rt::ValueType::kRef:
      return Kind::kRef;
  }
  return Kind::kTop;
}

Kind arith_kind(Kind a, Kind b) {
  if (a == Kind::kF64 || b == Kind::kF64) return Kind::kF64;
  if (a == Kind::kI64 || b == Kind::kI64) return Kind::kI64;
  if (a == Kind::kI32 && b == Kind::kI32) return Kind::kI32;
  return Kind::kTop;  // one side unknown: i32/i64/f64 at run time
}

}  // namespace

bool AbsValue::join(const AbsValue& other) {
  bool changed = false;
  const Kind joined = join_kind(kind, other.kind);
  if (joined != kind) {
    kind = joined;
    changed = true;
  }
  if (other.tainted && !tainted) {
    tainted = true;
    changed = true;
  }
  const Trust joined_trust = trust_join(trust, other.trust);
  if (joined_trust != trust) {
    trust = joined_trust;
    changed = true;
  }
  for (const auto& c : other.classes) {
    if (classes.insert(c).second) changed = true;
  }
  return changed;
}

bool FrameState::join(const FrameState& other, bool* depth_mismatch) {
  if (!other.reachable) return false;
  if (!reachable) {
    *this = other;
    return true;
  }
  bool changed = false;
  if (stack.size() != other.stack.size()) {
    if (depth_mismatch != nullptr) *depth_mismatch = true;
    const std::size_t keep = std::min(stack.size(), other.stack.size());
    // Truncate to the common suffix (top of stack) so analysis stays total.
    // `changed` must reflect whether *this* state actually moved: reporting
    // change unconditionally re-queues the block forever when a loop's back
    // edge keeps arriving with a deeper stack than the (already truncated)
    // entry state.
    std::vector<AbsValue> mine(stack.end() - static_cast<std::ptrdiff_t>(keep),
                               stack.end());
    std::vector<AbsValue> theirs(
        other.stack.end() - static_cast<std::ptrdiff_t>(keep),
        other.stack.end());
    if (stack.size() != keep) changed = true;  // dropped our own operands
    stack = std::move(mine);
    for (std::size_t i = 0; i < keep; ++i) {
      if (stack[i].join(theirs[i])) changed = true;
    }
  } else {
    for (std::size_t i = 0; i < stack.size(); ++i) {
      if (stack[i].join(other.stack[i])) changed = true;
    }
  }
  const std::size_t nlocals = std::max(locals.size(), other.locals.size());
  locals.resize(nlocals);
  for (std::size_t i = 0; i < other.locals.size(); ++i) {
    if (locals[i].join(other.locals[i])) changed = true;
  }
  return changed;
}

namespace {

// Per-run transfer machinery, bundling the error sink and model context.
class Interpreter {
 public:
  Interpreter(const model::IrBody& body, const DataflowContext& ctx,
              DataflowResult& result)
      : body_(body), ctx_(ctx), result_(result) {}

  // Applies instruction `pc` to `state`. Returns false when execution
  // cannot continue past this instruction (underflow or terminator).
  bool step(std::size_t pc, FrameState& state) {
    const Instr& instr = body_.code[pc];
    const std::int32_t pops = model::stack_pops(instr);
    if (pops < 0 ||
        state.stack.size() < static_cast<std::size_t>(std::max(pops, 0))) {
      error(pc, std::string("operand stack underflow at `") +
                    model::op_name(instr.op) + "` (depth " +
                    std::to_string(state.stack.size()) + ", needs " +
                    std::to_string(std::max(pops, 0)) + ")");
      return false;
    }

    switch (instr.op) {
      case Op::kNop:
        break;
      case Op::kConst:
        if (!valid_index(instr.a, body_.consts.size())) {
          error(pc, "constant pool index " + std::to_string(instr.a) +
                        " out of range (pool size " +
                        std::to_string(body_.consts.size()) + ")");
          push(state, AbsValue::top());
          break;
        }
        {
          AbsValue v = AbsValue::of(kind_of_const(
              body_.consts[static_cast<std::size_t>(instr.a)]));
          tag(v, Trust::kPublic);  // literals are compiled into both images
          push(state, std::move(v));
        }
        break;
      case Op::kLoadLocal:
        if (!valid_index(instr.a, state.locals.size())) {
          error(pc, "local index " + std::to_string(instr.a) +
                        " out of range (local count " +
                        std::to_string(state.locals.size()) + ")");
          push(state, AbsValue::top());
          break;
        }
        push(state, state.locals[static_cast<std::size_t>(instr.a)]);
        break;
      case Op::kStoreLocal: {
        const AbsValue v = pop(state);
        if (!valid_index(instr.a, state.locals.size())) {
          error(pc, "local index " + std::to_string(instr.a) +
                        " out of range (local count " +
                        std::to_string(state.locals.size()) + ")");
          break;
        }
        state.locals[static_cast<std::size_t>(instr.a)] = v;
        break;
      }
      case Op::kGetField: {
        const AbsValue obj = pop(state);
        if (instr.a < 0) {
          error(pc, "negative field index " + std::to_string(instr.a));
        } else {
          check_field_bounds(pc, obj, instr.a);
        }
        AbsValue v = AbsValue::top();
        v.tainted = ctx_.taint_trusted_fields && reads_trusted_field(obj);
        tag(v, field_trust(obj, instr.a));
        push(state, std::move(v));
        break;
      }
      case Op::kPutField: {
        pop(state);  // value
        const AbsValue obj = pop(state);
        if (instr.a < 0) {
          error(pc, "negative field index " + std::to_string(instr.a));
        } else {
          check_field_bounds(pc, obj, instr.a);
        }
        break;
      }
      case Op::kNew: {
        if (!check_name_and_argc(pc, instr)) {
          pop_n(state, std::max<std::int32_t>(instr.b, 0));
          push(state, AbsValue::top());
          break;
        }
        pop_n(state, instr.b);
        {
          AbsValue v =
              AbsValue::ref_to(body_.names[static_cast<std::size_t>(instr.a)]);
          // The reference itself is a handle; secrecy lives in the fields.
          tag(v, Trust::kPublic);
          push(state, std::move(v));
        }
        break;
      }
      case Op::kCall: {
        if (!check_name_and_argc(pc, instr)) {
          pop_n(state, std::max<std::int32_t>(instr.b, 0) + 1);
          push(state, AbsValue::top());
          break;
        }
        pop_n(state, instr.b);
        const AbsValue receiver = pop(state);
        push(state, call_result(receiver,
                                body_.names[static_cast<std::size_t>(instr.a)]));
        break;
      }
      case Op::kIntrinsic: {
        if (!check_name_and_argc(pc, instr)) {
          pop_n(state, std::max<std::int32_t>(instr.b, 0));
          push(state, AbsValue::top());
          break;
        }
        bool tainted = false;
        Trust trust = instr.b > 0 ? Trust::kBottom : Trust::kPublic;
        for (std::int32_t i = 0; i < instr.b; ++i) {
          const AbsValue arg = pop(state);
          tainted = arg.tainted || tainted;
          trust = trust_join(trust, arg.trust);
        }
        if (ctx_.trust != nullptr &&
            ctx_.trust->secret_intrinsics != nullptr &&
            ctx_.trust->secret_intrinsics->count(
                body_.names[static_cast<std::size_t>(instr.a)]) > 0) {
          trust = trust_join(trust, Trust::kSecret);
        }
        AbsValue v = AbsValue::top();
        v.tainted = tainted;  // e.g. str_concat of a secret stays secret
        tag(v, trust);
        push(state, std::move(v));
        break;
      }
      case Op::kAdd:
      case Op::kSub:
      case Op::kMul:
      case Op::kDiv: {
        const AbsValue rhs = pop(state);
        const AbsValue lhs = pop(state);
        AbsValue v = AbsValue::of(arith_kind(lhs.kind, rhs.kind));
        v.tainted = lhs.tainted || rhs.tainted;
        tag(v, trust_join(lhs.trust, rhs.trust));
        push(state, std::move(v));
        break;
      }
      case Op::kLt:
      case Op::kLe:
      case Op::kEq: {
        const AbsValue rhs = pop(state);
        const AbsValue lhs = pop(state);
        AbsValue v = AbsValue::of(Kind::kBool);
        v.tainted = lhs.tainted || rhs.tainted;
        tag(v, trust_join(lhs.trust, rhs.trust));
        push(state, std::move(v));
        break;
      }
      case Op::kJump:
      case Op::kBranchFalse:
        if (instr.op == Op::kBranchFalse) pop(state);
        if (instr.a < 0 ||
            static_cast<std::size_t>(instr.a) >= body_.code.size()) {
          error(pc, std::string("malformed `") + model::op_name(instr.op) +
                        "` target " + std::to_string(instr.a) +
                        " (code size " + std::to_string(body_.code.size()) +
                        ")");
        }
        break;
      case Op::kPop:
        pop(state);
        break;
      case Op::kDup:
        push(state, state.stack.back());
        break;
      case Op::kReturn:
        result_.return_value.join(pop(state));
        break;
      case Op::kReturnVoid:
        break;
    }
    if (state.stack.size() > ctx_.max_stack) {
      error(pc, "operand stack overflow (depth " +
                    std::to_string(state.stack.size()) + " exceeds limit " +
                    std::to_string(ctx_.max_stack) + ")");
      return false;
    }
    return true;
  }

  void error(std::size_t pc, std::string message) {
    // One report per pc keeps the fixpoint from duplicating findings.
    if (!reported_.insert(pc).second) return;
    Diagnostic d;
    d.severity = Severity::kError;
    d.pc = static_cast<std::int32_t>(pc);
    d.message = std::move(message);
    result_.errors.push_back(std::move(d));
  }

 private:
  static bool valid_index(std::int32_t idx, std::size_t size) {
    return idx >= 0 && static_cast<std::size_t>(idx) < size;
  }

  bool check_name_and_argc(std::size_t pc, const Instr& instr) {
    bool ok = true;
    if (!valid_index(instr.a, body_.names.size())) {
      error(pc, "name pool index " + std::to_string(instr.a) +
                    " out of range (pool size " +
                    std::to_string(body_.names.size()) + ")");
      ok = false;
    }
    if (instr.b < 0) {
      error(pc, std::string("negative argument count on `") +
                    model::op_name(instr.op) + "`");
      ok = false;
    }
    return ok;
  }

  void check_field_bounds(std::size_t pc, const AbsValue& obj,
                          std::int32_t field) {
    // Only provable with a unique receiver class.
    if (ctx_.app == nullptr || obj.classes.size() != 1) return;
    const model::ClassDecl* cls = ctx_.app->find_class(*obj.classes.begin());
    if (cls == nullptr) return;
    if (static_cast<std::size_t>(field) >= cls->fields().size()) {
      error(pc, "field index " + std::to_string(field) +
                    " out of range for " + cls->name() + " (" +
                    std::to_string(cls->fields().size()) + " fields)");
    }
  }

  // Trust tagging is a no-op when the trust context is absent, keeping the
  // verifier/lint behavior bit-identical to the pre-trust engine.
  void tag(AbsValue& v, Trust t) const {
    if (ctx_.trust != nullptr) v.trust = t;
  }

  Trust field_trust(const AbsValue& obj, std::int32_t field) const {
    if (ctx_.trust == nullptr) return Trust::kBottom;
    if (obj.classes.empty()) return Trust::kMixed;  // unknown receiver
    Trust t = Trust::kBottom;
    if (ctx_.trust->field_trust != nullptr) {
      for (const auto& cls : obj.classes) {
        const auto it = ctx_.trust->field_trust->find({cls, field});
        // Absent = never stored during the fixpoint so far (kBottom).
        if (it != ctx_.trust->field_trust->end()) t = trust_join(t, it->second);
      }
    }
    return t;
  }

  bool reads_trusted_field(const AbsValue& obj) const {
    if (ctx_.app == nullptr) return false;
    for (const auto& name : obj.classes) {
      const model::ClassDecl* cls = ctx_.app->find_class(name);
      if (cls != nullptr &&
          cls->annotation() == model::Annotation::kTrusted) {
        return true;
      }
    }
    return false;
  }

  AbsValue call_result(const AbsValue& receiver, const std::string& method) {
    AbsValue result = AbsValue::top();
    if (ctx_.summaries != nullptr && ctx_.app != nullptr &&
        !receiver.classes.empty()) {
      AbsValue out = AbsValue::bottom();
      bool complete = true;
      for (const auto& cls : receiver.classes) {
        const auto it = ctx_.summaries->find({cls, method});
        if (it == ctx_.summaries->end()) {
          complete = false;
          break;
        }
        out.join(it->second);
      }
      if (complete && out.kind != Kind::kBottom) result = out;
    }
    tag(result, call_trust(receiver, method));
    return result;
  }

  // Return trust of a call, from the trust summaries under the call site's
  // receiver-set context (falling back to the "*" overflow context). An
  // unknown receiver yields kMixed; an entry the fixpoint has not computed
  // yet is optimistically kBottom and rises monotonically across rounds.
  Trust call_trust(const AbsValue& receiver, const std::string& method) const {
    if (ctx_.trust == nullptr) return Trust::kBottom;
    if (ctx_.trust->summaries == nullptr || receiver.classes.empty()) {
      return Trust::kMixed;
    }
    const std::string key = receiver_context_key(receiver.classes);
    Trust t = Trust::kBottom;
    for (const auto& cls : receiver.classes) {
      const auto it = ctx_.trust->summaries->find({cls, method, key});
      if (it != ctx_.trust->summaries->end()) {
        t = trust_join(t, it->second);
        continue;
      }
      const auto overflow = ctx_.trust->summaries->find({cls, method, "*"});
      if (overflow != ctx_.trust->summaries->end()) {
        t = trust_join(t, overflow->second);
      }
    }
    return t;
  }

  AbsValue pop(FrameState& state) {
    AbsValue v = std::move(state.stack.back());
    state.stack.pop_back();
    return v;
  }
  void pop_n(FrameState& state, std::int32_t n) {
    for (std::int32_t i = 0; i < n; ++i) state.stack.pop_back();
  }
  void push(FrameState& state, AbsValue v) {
    state.stack.push_back(std::move(v));
  }

  const model::IrBody& body_;
  const DataflowContext& ctx_;
  DataflowResult& result_;
  std::set<std::size_t> reported_;
};

FrameState entry_state(const model::IrBody& body, const DataflowContext& ctx) {
  FrameState state;
  state.reachable = true;
  std::size_t nparams = 0;
  bool is_static = true;
  if (ctx.method != nullptr) {
    nparams = ctx.method->param_count();
    is_static = ctx.method->is_static();
  }
  const std::size_t nlocals = std::max<std::size_t>(
      body.local_count, nparams + (is_static ? 0 : 1));
  // Uninitialized locals are null at run time (exec_ir's default Value()).
  state.locals.assign(nlocals, AbsValue::of(Kind::kNull));
  std::size_t next = 0;
  if (!is_static && ctx.cls != nullptr) {
    state.locals[next] = AbsValue::ref_to(ctx.cls->name());
    // The receiver reference is a handle, observable by whoever holds it.
    if (ctx.trust != nullptr) state.locals[next].trust = Trust::kPublic;
    ++next;
  } else if (!is_static) {
    state.locals[next++] = AbsValue::top();
  }
  for (std::size_t i = 0; i < nparams && next < nlocals; ++i) {
    state.locals[next] = AbsValue::top();
    if (ctx.trust != nullptr) {
      state.locals[next].trust = i < ctx.trust->param_trust.size()
                                     ? ctx.trust->param_trust[i]
                                     : Trust::kMixed;
    }
    ++next;
  }
  return state;
}

}  // namespace

DataflowResult analyze_method(const model::IrBody& body,
                              const DataflowContext& ctx) {
  DataflowResult result;
  result.cfg = build_cfg(body);
  result.before.assign(body.code.size(), FrameState{});
  if (result.cfg.empty()) {
    result.falls_off_end = true;  // an empty body "returns" void implicitly
    return result;
  }

  Interpreter interp(body, ctx, result);

  std::vector<FrameState> block_entry(result.cfg.blocks.size());
  std::vector<bool> merge_reported(result.cfg.blocks.size(), false);
  block_entry[0] = entry_state(body, ctx);

  std::deque<std::size_t> worklist{0};
  std::vector<bool> queued(result.cfg.blocks.size(), false);
  queued[0] = true;

  while (!worklist.empty()) {
    const std::size_t bi = worklist.front();
    worklist.pop_front();
    queued[bi] = false;
    ++result.block_visits;

    const BasicBlock& block = result.cfg.blocks[bi];
    FrameState state = block_entry[bi];
    bool fell_through = true;
    for (std::size_t pc = block.begin; pc < block.end && fell_through; ++pc) {
      fell_through = interp.step(pc, state);
    }
    if (!fell_through) continue;  // underflow/overflow cut this path
    if (block.falls_off_end) result.falls_off_end = true;

    for (const std::size_t succ : block.succs) {
      bool depth_mismatch = false;
      if (block_entry[succ].join(state, &depth_mismatch)) {
        if (!queued[succ]) {
          worklist.push_back(succ);
          queued[succ] = true;
        }
      }
      if (depth_mismatch && !merge_reported[succ]) {
        merge_reported[succ] = true;
        interp.error(result.cfg.blocks[succ].begin,
                     "inconsistent operand stack depth at merge point");
      }
    }
  }

  // Recording pass: capture the state before every reachable instruction.
  for (std::size_t bi = 0; bi < result.cfg.blocks.size(); ++bi) {
    if (!block_entry[bi].reachable) continue;
    const BasicBlock& block = result.cfg.blocks[bi];
    FrameState state = block_entry[bi];
    for (std::size_t pc = block.begin; pc < block.end; ++pc) {
      result.before[pc] = state;
      if (!interp.step(pc, state)) break;
    }
  }

  if (result.falls_off_end) {
    Diagnostic d;
    d.severity = Severity::kError;
    d.pc = static_cast<std::int32_t>(body.code.size() - 1);
    d.message = "control can fall off the end of the method without a return";
    result.errors.push_back(std::move(d));
  }
  return result;
}

}  // namespace msv::analysis
