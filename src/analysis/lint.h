// msvlint — the partition-soundness lint suite (rule IDs MSV001…).
//
// The transformer (§5.2) weaves whatever the annotations say; nothing in
// the pipeline checks that the annotated application is a *sound*
// partition. These rules make the bad scenarios statically detectable,
// in the spirit of Glamdring's dataflow checks and SecV's secure-value
// tracking:
//
//   MSV001  secret-flow taint: a value read from @Trusted-class state
//           reaches an argument of a call that crosses to the untrusted
//           side (the woven proxy stub would serialize the secret into
//           untrusted memory) or an I/O/print intrinsic (which leaves the
//           enclave through the shim's ocalls).
//   MSV002  neutral-state divergence: neutral instances are per-side
//           *copies* (§5.1); a neutral field written on one side and read
//           on the other silently reads the wrong copy.
//   MSV003  cross-partition instantiation: `new` of an opposite-partition
//           class whose constructor is private (the transformer relays
//           only public methods — the woven proxy has no construction
//           stub and the allocation fails at run time), and `new` of a
//           partitioned class from neutral code (concrete on one side,
//           proxy on the other: the neutral copies diverge structurally).
//   MSV004  native-hint completeness: declared_callees() hints that
//           dangle, target a never-relayed private method across the
//           boundary, or — given call edges observed by the tracing agent
//           — omit a call the native body actually makes (a blind spot of
//           the closed-world reachability analysis: the callee may be
//           pruned from the image).
//   MSV005  relay signature constraints: a call site passes a provably
//           non-primitive value to a method declared
//           primitive_signature(), or such a method returns one (the
//           fixed-layout wire fast path cannot encode it); call arity
//           must match the relay's parameter count.
//   MSV006  cross-boundary reference cycles: class-level reference edges
//           that form a cycle spanning both partitions — proxy and mirror
//           keep each other alive and the per-side GCs never reclaim the
//           cycle (the paper's proxy-GC limitation, §7).
//   MSV007  malformed bytecode: the verifier's findings (stack
//           underflow/overflow, bad jump targets, out-of-bounds operand
//           indices, fall-through without return) surfaced as lint
//           diagnostics.
//   MSV008  unregistered telemetry category (informational): a woven
//           relay's transition name matches none of the telemetry layer's
//           registered call prefixes, so its spans fall back to the
//           generic bridge category and silently opt out of the rmi/gc
//           trace filters (DESIGN.md §10).
//   MSV009  batch-reorder safety: a method declared batch_async() — safe
//           to reorder within a batched RMI flush (DESIGN.md §13) — whose
//           body performs I/O or invokes other methods, effects that are
//           not reorder-safe. Suppress audited declarations with
//           LintOptions::batch_reorder_exempt.
//   MSV010  over-trusted field (informational; needs trust_analysis): the
//           value-granular trust fixpoint (analysis/trust.h) proves every
//           store to a @Trusted-class field is public — constants,
//           untrusted-side inputs, values already observable outside the
//           enclave — so the field never carries a secret and the class is
//           a demotion candidate for the partition optimizer
//           (DESIGN.md §15). Keeping it @Trusted costs two transitions per
//           access from the untrusted side for no confidentiality gain.
//
// The engine runs the abstract interpreter (analysis/absint.h) per
// method, layered with two interprocedural fixpoints over the same call
// edges the RTA reachability analysis walks (xform::direct_call_sites):
// return-value taint summaries, and a partition-side propagation that
// computes which side(s) each neutral method may execute on.
#pragma once

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/diag.h"
#include "analysis/trust.h"
#include "model/app_model.h"
#include "telemetry/telemetry.h"

namespace msv::analysis {

// A method identified as (class, method) — mirrors xform::MethodRef.
using MethodKey = std::pair<std::string, std::string>;

// One call edge observed while executing a native method body, from
// interp::ExecContext::native_edges() after an instrumented dry run.
using NativeEdge = std::pair<MethodKey, MethodKey>;  // caller -> callee

struct LintRule {
  const char* id;       // "MSV001"
  const char* summary;  // one line, for --list-rules and reports
};

// The rule catalogue, in rule-ID order.
const std::vector<LintRule>& lint_rules();
std::vector<std::string> lint_rule_ids();

struct LintOptions {
  std::uint32_t max_stack = 1024;
  // Observed native-body call edges; enables the dynamic half of MSV004.
  std::vector<NativeEdge> native_edges;
  // Intrinsics whose arguments leave the enclave when invoked from
  // trusted-side code (MSV001 sinks). The I/O intrinsics relay through
  // the shim's ocalls; print writes to the host's stdout.
  std::set<std::string> sink_intrinsics{"io_write", "io_read", "print"};
  // Call-name prefixes the telemetry layer classifies into span
  // categories (MSV008). Defaults to the live registry, so the lint stays
  // in lockstep with src/telemetry; tests override to force findings.
  std::vector<std::string> telemetry_call_prefixes =
      telemetry::registered_call_prefix_strings();
  // "Class.method" entries exempted from MSV009: batch_async()
  // declarations audited by hand (the body's calls are known to commute
  // with any batch the method can appear in).
  std::set<std::string> batch_reorder_exempt;
  // Runs the value-granular trust fixpoint (analysis/trust.h) and the
  // MSV010 over-trusted-field rule. Off by default: the embedded
  // lint_partition gate (core/app.h) keeps its historical rule set and
  // cost; the msvlint driver enables it for corpus runs and fix-it mode.
  bool trust_analysis = false;
  TrustOptions trust;
};

// Runs every rule over the annotated (pre-weave) application and returns
// the sorted report. Total: never throws on malformed input — malformed
// bytecode comes back as MSV007 findings instead.
Report lint(const model::AppModel& app, const LintOptions& options = {});

}  // namespace msv::analysis
