#include "analysis/verify.h"

namespace msv::analysis {

std::vector<Diagnostic> verify(const model::IrBody& body,
                               const VerifyOptions& options) {
  DataflowContext ctx;
  ctx.app = options.app;
  ctx.cls = options.cls;
  ctx.method = options.method;
  ctx.max_stack = options.max_stack;
  DataflowResult result = analyze_method(body, ctx);
  return std::move(result.errors);
}

bool verifies(const model::IrBody& body, const VerifyOptions& options) {
  return verify(body, options).empty();
}

Report verify_app(const model::AppModel& app) {
  Report report;
  for (const auto& cls : app.classes()) {
    for (const auto& method : cls.methods()) {
      if (method.kind() != model::MethodKind::kIr) continue;
      DataflowContext ctx;
      ctx.app = &app;
      ctx.cls = &cls;
      ctx.method = &method;
      DataflowResult result = analyze_method(method.ir(), ctx);
      ++report.stats().methods_analyzed;
      report.stats().instrs_analyzed += method.ir().code.size();
      report.stats().dataflow_iterations += result.block_visits;
      for (auto& d : result.errors) {
        d.cls = cls.name();
        d.method = method.name();
        report.add(std::move(d));
      }
    }
  }
  report.sort();
  return report;
}

}  // namespace msv::analysis
