#include "analysis/optimize.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <queue>

#include "interp/exec_context.h"
#include "model/ir.h"
#include "support/error.h"

namespace msv::analysis {

using model::Annotation;
using model::ClassDecl;
using model::MethodDecl;
using model::MethodKind;
using model::Op;

namespace {

constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max() / 4;

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t fnv1a_str(std::uint64_t h, const std::string& s) {
  return fnv1a(h, s.data(), s.size());
}

// Dinic max-flow; deterministic for a fixed arc insertion order.
class MaxFlow {
 public:
  explicit MaxFlow(std::size_t n) : graph_(n) {}

  void add_arc(std::size_t u, std::size_t v, std::uint64_t cap) {
    graph_[u].push_back({v, cap, graph_[v].size()});
    graph_[v].push_back({u, 0, graph_[u].size() - 1});
  }

  std::uint64_t run(std::size_t s, std::size_t t) {
    std::uint64_t flow = 0;
    while (bfs(s, t)) {
      iter_.assign(graph_.size(), 0);
      while (const std::uint64_t f = dfs(s, t, kInf)) flow += f;
    }
    return flow;
  }

  // After run(): the source side of the min cut (reachable in the
  // residual graph).
  std::vector<bool> source_side(std::size_t s) const {
    std::vector<bool> seen(graph_.size(), false);
    std::queue<std::size_t> q;
    seen[s] = true;
    q.push(s);
    while (!q.empty()) {
      const std::size_t u = q.front();
      q.pop();
      for (const Arc& a : graph_[u]) {
        if (a.cap > 0 && !seen[a.to]) {
          seen[a.to] = true;
          q.push(a.to);
        }
      }
    }
    return seen;
  }

 private:
  struct Arc {
    std::size_t to;
    std::uint64_t cap;
    std::size_t rev;
  };

  bool bfs(std::size_t s, std::size_t t) {
    level_.assign(graph_.size(), -1);
    std::queue<std::size_t> q;
    level_[s] = 0;
    q.push(s);
    while (!q.empty()) {
      const std::size_t u = q.front();
      q.pop();
      for (const Arc& a : graph_[u]) {
        if (a.cap > 0 && level_[a.to] < 0) {
          level_[a.to] = level_[u] + 1;
          q.push(a.to);
        }
      }
    }
    return level_[t] >= 0;
  }

  std::uint64_t dfs(std::size_t u, std::size_t t, std::uint64_t limit) {
    if (u == t) return limit;
    for (std::size_t& i = iter_[u]; i < graph_[u].size(); ++i) {
      Arc& a = graph_[u][i];
      if (a.cap == 0 || level_[a.to] != level_[u] + 1) continue;
      const std::uint64_t f = dfs(a.to, t, std::min(limit, a.cap));
      if (f == 0) continue;
      a.cap -= f;
      graph_[a.to][a.rev].cap += f;
      return f;
    }
    return 0;
  }

  std::vector<std::vector<Arc>> graph_;
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// Integer constant pushed by the instruction immediately preceding `pc`
// (the last argument of the intrinsic at `pc`), or `fallback`.
std::int64_t preceding_const(const model::IrBody& body, std::size_t pc,
                             std::int64_t fallback) {
  if (pc == 0) return fallback;
  const model::Instr& prev = body.code[pc - 1];
  if (prev.op != Op::kConst || prev.a < 0 ||
      static_cast<std::size_t>(prev.a) >= body.consts.size()) {
    return fallback;
  }
  const rt::Value& v = body.consts[static_cast<std::size_t>(prev.a)];
  if (v.type() == rt::ValueType::kI64) return v.as_i64();
  if (v.type() == rt::ValueType::kI32) return v.as_i32();
  return fallback;
}

// Modeled cycles one invocation of `m` adds on top of its untrusted-side
// cost when its class lives inside the enclave: MEE-scaled memory traffic
// of compute intrinsics plus ocall relaying of I/O intrinsics. A static
// over-approximation (every intrinsic site charged once per invocation);
// native bodies are opaque and charge nothing here.
double residency_cycles_per_call(const model::IrBody& body,
                                 const CostModel& cost) {
  double cycles = 0.0;
  for (std::size_t pc = 0; pc < body.code.size(); ++pc) {
    const model::Instr& instr = body.code[pc];
    if (instr.op != Op::kIntrinsic || instr.a < 0 ||
        static_cast<std::size_t>(instr.a) >= body.names.size()) {
      continue;
    }
    const std::string& name = body.names[static_cast<std::size_t>(instr.a)];
    if (name == "compute_fft") {
      const double mb =
          static_cast<double>(preceding_const(body, pc, /*fallback=*/1));
      const double traffic = mb * 1024.0 * 1024.0;
      cycles += traffic * cost.dram_cycles_per_byte *
                (cost.mee_traffic_factor - 1.0);
    } else if (name == "io_write" || name == "io_read") {
      const double bytes =
          static_cast<double>(preceding_const(body, pc, /*fallback=*/4096));
      cycles += static_cast<double>(cost.ocall_cycles) +
                2.0 * static_cast<double>(cost.edge_call_cycles) +
                bytes * cost.edge_copy_cycles_per_byte;
    }
  }
  return cycles;
}

struct Direction {
  double trusted_to_untrusted;  // ocall direction
  double untrusted_to_trusted;  // ecall direction
};

Direction crossing_costs(const CostModel& cost) {
  return {static_cast<double>(cost.ocall_cycles +
                              cost.isolate_attach_untrusted_cycles +
                              cost.edge_call_cycles),
          static_cast<double>(cost.ecall_cycles +
                              cost.isolate_attach_trusted_cycles +
                              cost.edge_call_cycles)};
}

const char* side_name(Annotation a) {
  return a == Annotation::kTrusted ? "@Trusted" : "@Untrusted";
}

}  // namespace

CallProfile CallProfile::from_context(const interp::ExecContext& ctx) {
  CallProfile profile;
  profile.edges = ctx.call_counts();
  return profile;
}

std::map<CallProfile::MethodRef, std::uint64_t>
CallProfile::invocation_counts() const {
  std::map<MethodRef, std::uint64_t> out;
  for (const auto& [edge, count] : edges) out[edge.second] += count;
  return out;
}

std::map<std::pair<std::string, std::string>, std::uint64_t>
CallProfile::class_edges() const {
  std::map<std::pair<std::string, std::string>, std::uint64_t> out;
  for (const auto& [edge, count] : edges) {
    const std::string& caller = edge.first.first;
    const std::string& callee = edge.second.first;
    if (caller == "<entry>" || caller == callee) continue;
    out[{caller, callee}] += count;
  }
  return out;
}

std::uint64_t CallProfile::total_calls() const {
  std::uint64_t total = 0;
  for (const auto& [edge, count] : edges) total += count;
  return total;
}

const ClassPlacement* PartitionPlan::find(const std::string& cls) const {
  for (const auto& p : placements) {
    if (p.cls == cls) return &p;
  }
  return nullptr;
}

std::string PartitionPlan::to_text() const {
  std::string out = "partition plan (digest 0x";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(digest));
  out += buf;
  out += "):\n";
  for (const auto& p : placements) {
    out += "  " + p.cls + ": " + side_name(p.before);
    if (p.after != p.before) {
      out += " -> ";
      out += side_name(p.after);
    }
    out += "\n";
  }
  out += "  moved: " + std::to_string(moved.size()) + " class(es)";
  if (below_min_gain) out += " [reverted: below min_gain]";
  out += "\n  profiled crossings: " + std::to_string(crossings_before) +
         " -> " + std::to_string(crossings_after);
  out += "\n  modeled cycles: " +
         std::to_string(static_cast<std::uint64_t>(modeled_cost_before)) +
         " -> " +
         std::to_string(static_cast<std::uint64_t>(modeled_cost_after)) +
         "\n";
  return out;
}

std::string PartitionPlan::to_json() const {
  std::string out = "{\n  \"schema\": \"msvlint-partition-plan-v1\",\n";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(digest));
  out += "  \"digest\": \"" + std::string(buf) + "\",\n";
  out += "  \"crossings_before\": " + std::to_string(crossings_before) +
         ",\n  \"crossings_after\": " + std::to_string(crossings_after) +
         ",\n";
  out += "  \"modeled_cost_before\": " +
         std::to_string(static_cast<std::uint64_t>(modeled_cost_before)) +
         ",\n  \"modeled_cost_after\": " +
         std::to_string(static_cast<std::uint64_t>(modeled_cost_after)) +
         ",\n";
  out += std::string("  \"below_min_gain\": ") +
         (below_min_gain ? "true" : "false") + ",\n";
  out += "  \"moved\": [";
  for (std::size_t i = 0; i < moved.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + json_escape(moved[i]) + "\"";
  }
  out += "],\n  \"placements\": [\n";
  for (std::size_t i = 0; i < placements.size(); ++i) {
    const auto& p = placements[i];
    out += "    {\"class\": \"" + json_escape(p.cls) + "\", \"before\": \"" +
           side_name(p.before) + "\", \"after\": \"" + side_name(p.after) +
           "\"}";
    out += i + 1 < placements.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

PartitionPlan optimize_partition(const model::AppModel& app,
                                 const TrustFacts& trust,
                                 const CallProfile& profile,
                                 const CostModel& cost,
                                 const PartitionPolicy& policy) {
  // ---- Node set: annotated classes, sorted by name ----
  std::vector<const ClassDecl*> nodes;
  for (const ClassDecl& cls : app.classes()) {
    if (cls.annotation() != Annotation::kNeutral) nodes.push_back(&cls);
  }
  std::sort(nodes.begin(), nodes.end(),
            [](const ClassDecl* a, const ClassDecl* b) {
              return a->name() < b->name();
            });
  std::map<std::string, std::size_t> node_of;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    node_of[nodes[i]->name()] = i + 2;  // 0 = source (T), 1 = sink (U)
  }

  // ---- Pins ----
  // SGX applications begin in the untrusted runtime: main stays outside.
  std::set<std::string> pin_untrusted = policy.pin_untrusted;
  if (!app.main_class().empty()) pin_untrusted.insert(app.main_class());
  std::set<std::string> pin_trusted = policy.pin_trusted;
  if (policy.pin_secret_classes) {
    for (const std::string& cls : trust.secret_classes()) {
      // Only classes currently inside may be *kept* inside by the trust
      // pin; a secret-carrying @Untrusted class is an MSV001-style leak,
      // not a placement decision.
      const ClassDecl* decl = app.find_class(cls);
      if (decl != nullptr && decl->annotation() == Annotation::kTrusted) {
        pin_trusted.insert(cls);
      }
    }
  }
  for (const std::string& cls : pin_trusted) {
    if (pin_untrusted.count(cls) > 0) {
      throw ConfigError("partition policy pins " + cls + " to both sides");
    }
  }

  // ---- Per-class modeled costs ----
  const Direction dir = crossing_costs(cost);
  const auto invocations = profile.invocation_counts();
  std::vector<double> residency(nodes.size(), 0.0);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (const MethodDecl& m : nodes[i]->methods()) {
      if (m.kind() != MethodKind::kIr) continue;
      const auto it = invocations.find({nodes[i]->name(), m.name()});
      if (it == invocations.end() || it->second == 0) continue;
      residency[i] += static_cast<double>(it->second) *
                      residency_cycles_per_call(m.ir(), cost);
    }
  }

  const auto class_edges = profile.class_edges();
  const auto annotated_edge_count =
      [&](const std::string& a, const std::string& b) -> std::uint64_t {
    const auto it = class_edges.find({a, b});
    return it == class_edges.end() ? 0 : it->second;
  };

  // ---- Build the cut graph ----
  MaxFlow flow(nodes.size() + 2);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const std::string& name = nodes[i]->name();
    if (pin_trusted.count(name) > 0) {
      flow.add_arc(0, i + 2, kInf);
    }
    if (pin_untrusted.count(name) > 0) {
      flow.add_arc(i + 2, 1, kInf);
    } else if (residency[i] > 0.0) {
      flow.add_arc(i + 2, 1,
                   static_cast<std::uint64_t>(std::llround(residency[i])));
    }
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      const std::string& a = nodes[i]->name();
      const std::string& b = nodes[j]->name();
      const std::uint64_t ab = annotated_edge_count(a, b);
      const std::uint64_t ba = annotated_edge_count(b, a);
      if (ab == 0 && ba == 0) continue;
      // Cut (A trusted, B untrusted): A->B calls cross as ocalls, B->A
      // calls as ecalls — and symmetrically for the other orientation.
      const auto cap = [&](std::uint64_t out_calls, std::uint64_t in_calls) {
        const double c =
            static_cast<double>(out_calls) * dir.trusted_to_untrusted +
            static_cast<double>(in_calls) * dir.untrusted_to_trusted;
        return static_cast<std::uint64_t>(std::llround(c));
      };
      if (const std::uint64_t c = cap(ab, ba)) {
        flow.add_arc(i + 2, j + 2, c);
      }
      if (const std::uint64_t c = cap(ba, ab)) {
        flow.add_arc(j + 2, i + 2, c);
      }
    }
  }

  flow.run(0, 1);
  const std::vector<bool> trusted_side = flow.source_side(0);

  // ---- Assemble the plan ----
  PartitionPlan plan;
  std::map<std::string, Annotation> before;
  std::map<std::string, Annotation> after;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    ClassPlacement p;
    p.cls = nodes[i]->name();
    p.before = nodes[i]->annotation();
    p.after =
        trusted_side[i + 2] ? Annotation::kTrusted : Annotation::kUntrusted;
    before[p.cls] = p.before;
    after[p.cls] = p.after;
    plan.placements.push_back(std::move(p));
  }

  const auto evaluate = [&](const std::map<std::string, Annotation>& side,
                            std::uint64_t* crossings) -> double {
    double cycles = 0.0;
    *crossings = 0;
    for (const auto& [edge, count] : class_edges) {
      const auto a = side.find(edge.first);
      const auto b = side.find(edge.second);
      if (a == side.end() || b == side.end() || a->second == b->second) {
        continue;
      }
      *crossings += count;
      cycles += static_cast<double>(count) *
                (a->second == Annotation::kTrusted ? dir.trusted_to_untrusted
                                                   : dir.untrusted_to_trusted);
    }
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const auto it = side.find(nodes[i]->name());
      if (it != side.end() && it->second == Annotation::kTrusted) {
        cycles += residency[i];
      }
    }
    return cycles;
  };

  plan.modeled_cost_before = evaluate(before, &plan.crossings_before);
  plan.modeled_cost_after = evaluate(after, &plan.crossings_after);

  // min_gain gate: revert placements that do not pay for the re-weave.
  const double gain =
      plan.modeled_cost_before > 0.0
          ? (plan.modeled_cost_before - plan.modeled_cost_after) /
                plan.modeled_cost_before
          : 0.0;
  if (gain < policy.min_gain ||
      plan.modeled_cost_after > plan.modeled_cost_before) {
    bool any_moved = false;
    for (const auto& p : plan.placements) any_moved |= p.after != p.before;
    if (any_moved) plan.below_min_gain = true;
    for (auto& p : plan.placements) p.after = p.before;
    plan.crossings_after = plan.crossings_before;
    plan.modeled_cost_after = plan.modeled_cost_before;
  }

  for (const auto& p : plan.placements) {
    if (p.after != p.before) plan.moved.push_back(p.cls);
  }

  std::uint64_t digest = 14695981039346656037ull;
  digest = fnv1a(digest, &policy.seed, sizeof policy.seed);
  for (const auto& p : plan.placements) {
    digest = fnv1a_str(digest, p.cls);
    digest = fnv1a_str(digest, p.after == Annotation::kTrusted ? "=T;" : "=U;");
  }
  plan.digest = digest;
  return plan;
}

}  // namespace msv::analysis
