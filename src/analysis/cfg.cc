#include "analysis/cfg.h"

#include <algorithm>

namespace msv::analysis {

using model::Instr;
using model::Op;

Cfg build_cfg(const model::IrBody& body) {
  Cfg cfg;
  const std::size_t n = body.code.size();
  if (n == 0) return cfg;

  auto valid_target = [n](std::int32_t a) {
    return a >= 0 && static_cast<std::size_t>(a) < n;
  };

  // Leaders: pc 0, every valid branch target, and every pc following a
  // control transfer.
  std::vector<bool> leader(n, false);
  leader[0] = true;
  for (std::size_t pc = 0; pc < n; ++pc) {
    const Instr& instr = body.code[pc];
    if (instr.op == Op::kJump || instr.op == Op::kBranchFalse) {
      if (valid_target(instr.a)) leader[static_cast<std::size_t>(instr.a)] = true;
      if (pc + 1 < n) leader[pc + 1] = true;
    } else if (instr.op == Op::kReturn || instr.op == Op::kReturnVoid) {
      if (pc + 1 < n) leader[pc + 1] = true;
    }
  }

  cfg.block_of_pc.assign(n, 0);
  for (std::size_t pc = 0; pc < n; ++pc) {
    if (leader[pc]) {
      cfg.blocks.push_back(BasicBlock{pc, pc, {}, false});
    }
    cfg.block_of_pc[pc] = cfg.blocks.size() - 1;
    cfg.blocks.back().end = pc + 1;
  }

  for (auto& block : cfg.blocks) {
    const Instr& last = body.code[block.end - 1];
    switch (last.op) {
      case Op::kJump:
        if (valid_target(last.a)) {
          block.succs.push_back(cfg.block_of_pc[static_cast<std::size_t>(last.a)]);
        }
        break;
      case Op::kBranchFalse:
        if (block.end < n) {
          block.succs.push_back(cfg.block_of_pc[block.end]);
        } else {
          block.falls_off_end = true;  // fall-through exit of the last branch
        }
        if (valid_target(last.a)) {
          const std::size_t target =
              cfg.block_of_pc[static_cast<std::size_t>(last.a)];
          if (std::find(block.succs.begin(), block.succs.end(), target) ==
              block.succs.end()) {
            block.succs.push_back(target);
          }
        }
        break;
      case Op::kReturn:
      case Op::kReturnVoid:
        break;
      default:
        if (block.end < n) {
          block.succs.push_back(cfg.block_of_pc[block.end]);
        } else {
          block.falls_off_end = true;
        }
        break;
    }
  }
  return cfg;
}

}  // namespace msv::analysis
