// Bytecode verifier over model::IrBody.
//
// A thin, error-only view of the abstract interpreter (analysis/absint.h):
// it proves the structural properties the interpreter's dispatch loop
// relies on — no operand-stack underflow/overflow on any path, every jump
// target inside the method, constant-pool/name-pool/local indices in
// range, no fall-through past the last instruction, consistent stack
// depths at merge points. Field indices are checked when the receiver
// class is statically unique (they are otherwise re-checked dynamically by
// the interpreter's TrapError bounds checks).
//
// The interpreter can gate on this: ExecContext::set_verify_bytecode(true)
// refuses to execute any kIr body that fails verification, turning what
// used to be undefined behaviour on corrupt operands into a typed
// TrapError at first dispatch.
#pragma once

#include <string>
#include <vector>

#include "analysis/absint.h"
#include "analysis/diag.h"
#include "model/app_model.h"
#include "model/ir.h"

namespace msv::analysis {

struct VerifyOptions {
  // Optional model context. With `app` + `cls` + `method`, field indices
  // on provably-typed receivers and entry locals (this + parameters) are
  // checked precisely; without it the verifier still proves stack and
  // operand-index safety.
  const model::AppModel* app = nullptr;
  const model::ClassDecl* cls = nullptr;
  const model::MethodDecl* method = nullptr;
  std::uint32_t max_stack = 1024;
};

// Verifies one method body. Returns the list of verification errors
// (empty = the body is safe to interpret). Total: never throws.
std::vector<Diagnostic> verify(const model::IrBody& body,
                               const VerifyOptions& options = {});

// True when `body` verifies cleanly.
bool verifies(const model::IrBody& body, const VerifyOptions& options = {});

// Verifies every kIr body in the application. Diagnostics carry the
// class/method location; `stats()` accumulates analysis cost.
Report verify_app(const model::AppModel& app);

}  // namespace msv::analysis
