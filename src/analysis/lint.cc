#include "analysis/lint.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <map>
#include <tuple>

#include "analysis/absint.h"
#include "analysis/trust.h"
#include "model/ir.h"
#include "transform/reachability.h"
#include "transform/transformer.h"

namespace msv::analysis {

using model::Annotation;
using model::ClassDecl;
using model::MethodDecl;
using model::Op;

const std::vector<LintRule>& lint_rules() {
  static const std::vector<LintRule> rules = {
      {"MSV001",
       "secret read from @Trusted state flows into a cross-boundary call "
       "argument or I/O intrinsic"},
      {"MSV002",
       "neutral-class field written on one side and read on the other "
       "(neutral instances are per-side copies)"},
      {"MSV003",
       "cross-partition instantiation with no construction relay, or from "
       "neutral code"},
      {"MSV004",
       "declared_callees() hint dangling, unreachable across the boundary, "
       "or missing an observed native call edge"},
      {"MSV005",
       "primitive-signature relay passed or returning a non-primitive "
       "value, or call arity mismatch"},
      {"MSV006",
       "cross-boundary reference cycle (proxy and mirror keep each other "
       "alive; never collected, paper §7)"},
      {"MSV007", "malformed bytecode (verifier findings)"},
      {"MSV008",
       "relay transition name matches no registered telemetry call prefix "
       "(spans fall back to the generic bridge category; informational)"},
      {"MSV009",
       "batch_async() method body performs I/O or invokes other methods — "
       "unsafe to reorder within a batched RMI flush"},
      {"MSV010",
       "@Trusted field provably never carries secret data (every store is "
       "public) — demotion candidate for the partition optimizer"},
  };
  return rules;
}

std::vector<std::string> lint_rule_ids() {
  std::vector<std::string> ids;
  for (const auto& r : lint_rules()) ids.emplace_back(r.id);
  return ids;
}

namespace {

// Which partition(s) a method's code may execute in.
constexpr unsigned kSideT = 1;  // inside the enclave
constexpr unsigned kSideU = 2;  // outside

std::string side_name(unsigned mask) {
  switch (mask) {
    case kSideT:
      return "trusted";
    case kSideU:
      return "untrusted";
    case kSideT | kSideU:
      return "both";
  }
  return "unreached";
}

struct Access {
  // Deterministic ordering for golden output.
  std::string cls;  // accessing class
  std::string method;
  std::int32_t pc;
  bool is_write;
  unsigned mask;

  bool operator<(const Access& other) const {
    return std::tie(cls, method, pc) <
           std::tie(other.cls, other.method, other.pc);
  }
};

struct Location {
  std::string cls;
  std::string method;
  std::int32_t pc = -1;

  bool operator<(const Location& other) const {
    return std::tie(cls, method, pc) <
           std::tie(other.cls, other.method, other.pc);
  }
};

// Accumulates wall time into stats().rule_wall_ms[rule] on scope exit.
// Rules folded into the shared per-method pass (MSV003/5/7) keep their
// seeded 0.0 entry — the v2 report still lists them, which is the point:
// a zero-cost rule is distinguishable from a rule that never ran.
class RuleTimer {
 public:
  RuleTimer(Report& report, const char* rule)
      : report_(report),
        rule_(rule),
        start_(std::chrono::steady_clock::now()) {}
  ~RuleTimer() {
    report_.stats().rule_wall_ms[rule_] +=
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start_)
            .count();
  }
  RuleTimer(const RuleTimer&) = delete;
  RuleTimer& operator=(const RuleTimer&) = delete;

 private:
  Report& report_;
  const char* rule_;
  std::chrono::steady_clock::time_point start_;
};

class Linter {
 public:
  Linter(const model::AppModel& app, const LintOptions& options,
         Report& report)
      : app_(app), options_(options), report_(report) {}

  void run() {
    // Every rule the suite runs gets a timing entry up front, so
    // zero-diagnostic (and zero-cost) rules still appear in the v2
    // report's rule_timings. MSV010 only runs under trust_analysis.
    for (const auto& id : lint_rule_ids()) {
      if (id == "MSV010" && !options_.trust_analysis) continue;
      report_.stats().rule_wall_ms[id] += 0.0;
    }
    index_model();
    {
      // The taint fixpoint exists for MSV001; the per-method rule passes
      // that reuse its dataflow states are near-free by comparison.
      RuleTimer t(report_, "MSV001");
      compute_summaries();
    }
    compute_side_masks();
    for (const auto& cls : app_.classes()) {
      for (const auto& method : cls.methods()) {
        if (method.kind() == model::MethodKind::kIr) {
          check_ir_method(cls, method);
        } else if (method.kind() == model::MethodKind::kNative) {
          check_native_hints(cls, method);
        }
      }
    }
    {
      RuleTimer t(report_, "MSV004");
      check_native_edges();
    }
    {
      RuleTimer t(report_, "MSV002");
      check_neutral_divergence();
    }
    {
      RuleTimer t(report_, "MSV006");
      check_reference_cycles();
    }
    {
      RuleTimer t(report_, "MSV008");
      check_telemetry_categories();
    }
    {
      RuleTimer t(report_, "MSV009");
      check_batch_async();
    }
    if (options_.trust_analysis) {
      RuleTimer t(report_, "MSV010");
      check_trusted_fields();
    }
  }

 private:
  void add(const char* rule, Severity severity, const std::string& cls,
           const std::string& method, std::int32_t pc, std::string message) {
    Diagnostic d;
    d.rule = rule;
    d.severity = severity;
    d.cls = cls;
    d.method = method;
    d.pc = pc;
    d.message = std::move(message);
    report_.add(std::move(d));
  }

  void index_model() {
    for (const auto& cls : app_.classes()) {
      for (const auto& m : cls.methods()) {
        declarers_[m.name()].push_back(&cls);
      }
    }
  }

  // Virtual-call resolution, RTA-style: every class declaring the method
  // name, narrowed by the abstract receiver's class set when known.
  std::vector<const ClassDecl*> resolve(const std::string& name,
                                        const std::set<std::string>& recv)
      const {
    std::vector<const ClassDecl*> out;
    if (!recv.empty()) {
      for (const auto& cls_name : recv) {
        const ClassDecl* cls = app_.find_class(cls_name);
        if (cls != nullptr && cls->find_method(name) != nullptr) {
          out.push_back(cls);
        }
      }
      return out;
    }
    const auto it = declarers_.find(name);
    return it == declarers_.end() ? out : it->second;
  }

  // ---- Interprocedural fixpoint 1: return-value taint summaries ----
  //
  // Iterates analyze_method over every bytecode body, feeding each round's
  // return-value abstractions into the next, so a secret returned by
  // Account.getBalance taints the call result at every getBalance site.
  void compute_summaries() {
    constexpr int kMaxRounds = 8;
    for (int round = 0; round < kMaxRounds; ++round) {
      SummaryMap next;
      bool last_round = false;
      for (const auto& cls : app_.classes()) {
        for (const auto& method : cls.methods()) {
          if (method.kind() != model::MethodKind::kIr) continue;
          DataflowContext ctx;
          ctx.app = &app_;
          ctx.cls = &cls;
          ctx.method = &method;
          ctx.summaries = &summaries_;
          ctx.taint_trusted_fields = true;
          ctx.max_stack = options_.max_stack;
          DataflowResult flow = analyze_method(method.ir(), ctx);
          report_.stats().dataflow_iterations += flow.block_visits;
          next[{cls.name(), method.name()}] = flow.return_value;
          flows_[{cls.name(), method.name()}] = std::move(flow);
        }
      }
      last_round = (next == summaries_) || round == kMaxRounds - 1;
      summaries_ = std::move(next);
      if (last_round) break;
    }
    for (const auto& [key, flow] : flows_) {
      ++report_.stats().methods_analyzed;
      report_.stats().instrs_analyzed += flow.before.size();
    }
  }

  // ---- Interprocedural fixpoint 2: partition-side propagation ----
  //
  // Methods of @Trusted classes execute inside the enclave, @Untrusted
  // outside; a *neutral* method executes wherever its callers do. The
  // propagation walks the same call edges the RTA reachability fixpoint
  // walks (xform::direct_call_sites), so a method the analysis reaches
  // from side S is exactly a method the linter attributes to S.
  void compute_side_masks() {
    std::deque<MethodKey> worklist;
    for (const auto& cls : app_.classes()) {
      unsigned seed = 0;
      if (cls.annotation() == Annotation::kTrusted) seed = kSideT;
      if (cls.annotation() == Annotation::kUntrusted) seed = kSideU;
      for (const auto& m : cls.methods()) {
        mask_[{cls.name(), m.name()}] = seed;
        if (seed != 0) worklist.push_back({cls.name(), m.name()});
      }
    }
    auto propagate = [&](const MethodKey& target, unsigned bits) {
      const ClassDecl* cls = app_.find_class(target.first);
      if (cls == nullptr || cls->annotation() != Annotation::kNeutral) {
        return;  // annotated methods have a fixed side
      }
      const auto it = mask_.find(target);
      if (it == mask_.end()) return;
      if ((it->second | bits) != it->second) {
        it->second |= bits;
        worklist.push_back(target);
      }
    };
    while (!worklist.empty()) {
      const MethodKey key = worklist.front();
      worklist.pop_front();
      const unsigned bits = mask_[key];
      const ClassDecl* cls = app_.find_class(key.first);
      const MethodDecl* method =
          cls == nullptr ? nullptr : cls->find_method(key.second);
      if (method == nullptr || bits == 0) continue;
      for (const auto& site : xform::direct_call_sites(*method)) {
        switch (site.kind) {
          case xform::CallSite::Kind::kNew:
            propagate({site.cls, model::kConstructorName}, bits);
            break;
          case xform::CallSite::Kind::kVirtual:
            for (const ClassDecl* target : resolve(site.method, {})) {
              propagate({target->name(), site.method}, bits);
            }
            break;
          case xform::CallSite::Kind::kDeclared:
          case xform::CallSite::Kind::kRelay:
            propagate({site.cls, site.method}, bits);
            break;
        }
      }
    }
  }

  unsigned mask_of(const std::string& cls, const std::string& method) const {
    const auto it = mask_.find({cls, method});
    return it == mask_.end() ? 0 : it->second;
  }

  // ---- Per-method rule pass over the recorded dataflow states ----
  void check_ir_method(const ClassDecl& cls, const MethodDecl& method) {
    const auto flow_it = flows_.find({cls.name(), method.name()});
    if (flow_it == flows_.end()) return;
    const DataflowResult& flow = flow_it->second;
    const unsigned m_mask = mask_of(cls.name(), method.name());
    const model::IrBody& body = method.ir();

    // MSV007: verifier findings, surfaced as lint diagnostics.
    for (const Diagnostic& e : flow.errors) {
      Diagnostic d = e;
      d.rule = "MSV007";
      d.cls = cls.name();
      d.method = method.name();
      report_.add(std::move(d));
    }

    for (std::size_t pc = 0; pc < body.code.size(); ++pc) {
      if (!flow.before[pc].reachable) continue;
      const model::Instr& instr = body.code[pc];
      const FrameState& state = flow.before[pc];
      switch (instr.op) {
        case Op::kCall:
          check_call_site(cls, method, m_mask, state, pc, instr);
          break;
        case Op::kNew:
          check_new_site(cls, method, m_mask, state, pc, instr);
          break;
        case Op::kIntrinsic:
          check_intrinsic_site(cls, method, m_mask, state, pc, instr);
          break;
        case Op::kGetField:
        case Op::kPutField:
          record_field_access(cls, method, m_mask, state, pc, instr);
          break;
        default:
          break;
      }
    }

    // MSV005: a primitive-signature method must return a primitive — the
    // relay's fixed-layout wire encoding has no slot for anything else.
    if (method.has_primitive_signature() &&
        cls.annotation() != Annotation::kNeutral &&
        flow.return_value.definitely_nonprimitive()) {
      add("MSV005", Severity::kError, cls.name(), method.name(), -1,
          "method declares primitive_signature() but returns a " +
              std::string(kind_name(flow.return_value.kind)) +
              "; the fixed-layout wire path cannot encode it");
    }
  }

  // Arguments are the top `argc` stack slots; named helper shared by the
  // call/new/intrinsic passes. Returns an empty span view when the
  // recorded stack is shallower than argc (already an MSV007).
  static std::vector<const AbsValue*> args_of(const FrameState& state,
                                              std::int32_t argc) {
    std::vector<const AbsValue*> args;
    if (argc < 0 ||
        state.stack.size() < static_cast<std::size_t>(argc)) {
      return args;
    }
    const std::size_t base = state.stack.size() - static_cast<std::size_t>(argc);
    for (std::size_t i = 0; i < static_cast<std::size_t>(argc); ++i) {
      args.push_back(&state.stack[base + i]);
    }
    return args;
  }

  void report_tainted_args(const ClassDecl& cls, const MethodDecl& method,
                           std::size_t pc,
                           const std::vector<const AbsValue*>& args,
                           const std::string& sink) {
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (!args[i]->tainted) continue;
      add("MSV001", Severity::kError, cls.name(), method.name(),
          static_cast<std::int32_t>(pc),
          "value read from @Trusted state flows into argument " +
              std::to_string(i) + " of " + sink +
              " — the secret crosses into untrusted memory");
    }
  }

  void check_call_site(const ClassDecl& cls, const MethodDecl& method,
                       unsigned m_mask, const FrameState& state,
                       std::size_t pc, const model::Instr& instr) {
    const model::IrBody& body = method.ir();
    if (instr.a < 0 ||
        static_cast<std::size_t>(instr.a) >= body.names.size()) {
      return;  // malformed operand; MSV007 already reported it
    }
    const std::string& name = body.names[static_cast<std::size_t>(instr.a)];
    const auto args = args_of(state, instr.b);
    // Receiver sits under the arguments.
    std::set<std::string> recv;
    const std::size_t need = static_cast<std::size_t>(std::max(instr.b, 0)) + 1;
    if (state.stack.size() >= need) {
      recv = state.stack[state.stack.size() - need].classes;
    }
    const auto candidates = resolve(name, recv);

    bool crosses_to_untrusted = false;
    for (const ClassDecl* target : candidates) {
      if (target->annotation() == Annotation::kUntrusted) {
        crosses_to_untrusted = true;
      }
    }
    // MSV001: trusted-side caller, untrusted-side callee — the woven proxy
    // stub serializes every argument into untrusted memory.
    if ((m_mask & kSideT) != 0 && crosses_to_untrusted) {
      report_tainted_args(cls, method, pc, args,
                          "untrusted-side method " + name + "()");
    }

    // MSV005: primitive-signature + arity constraints against each
    // partitioned candidate (their relays carry the constraint).
    bool any_arity_match = candidates.empty();
    for (const ClassDecl* target : candidates) {
      const MethodDecl* callee = target->find_method(name);
      if (callee == nullptr) continue;
      if (callee->param_count() == static_cast<std::uint32_t>(
                                       std::max(instr.b, 0))) {
        any_arity_match = true;
      }
      if (target->annotation() == Annotation::kNeutral) continue;
      if (!callee->has_primitive_signature()) continue;
      for (std::size_t i = 0; i < args.size(); ++i) {
        if (!args[i]->definitely_nonprimitive()) continue;
        add("MSV005", Severity::kError, cls.name(), method.name(),
            static_cast<std::int32_t>(pc),
            "argument " + std::to_string(i) + " of " + target->name() + "." +
                name + " is a " + kind_name(args[i]->kind) +
                " but the method declares primitive_signature(); the "
                "fixed-layout wire path cannot encode it");
      }
    }
    if (!any_arity_match) {
      add("MSV005", Severity::kError, cls.name(), method.name(),
          static_cast<std::int32_t>(pc),
          "call to " + name + " with " + std::to_string(instr.b) +
              " argument(s) matches no declaration of that method — the "
              "relay invocation fails at run time");
    }
  }

  void check_new_site(const ClassDecl& cls, const MethodDecl& method,
                      unsigned m_mask, const FrameState& state,
                      std::size_t pc, const model::Instr& instr) {
    const model::IrBody& body = method.ir();
    if (instr.a < 0 ||
        static_cast<std::size_t>(instr.a) >= body.names.size()) {
      return;  // MSV007
    }
    const std::string& target_name =
        body.names[static_cast<std::size_t>(instr.a)];
    const ClassDecl* target = app_.find_class(target_name);
    if (target == nullptr) return;  // pruned/undefined: a model error
    const Annotation ann = target->annotation();
    const auto args = args_of(state, instr.b);
    const MethodDecl* ctor = target->find_method(model::kConstructorName);

    const bool crossing = (ann == Annotation::kTrusted && (m_mask & kSideU)) ||
                          (ann == Annotation::kUntrusted && (m_mask & kSideT));
    // MSV003a: the transformer relays only *public* methods; a private
    // constructor means the stripped proxy has no construction stub, so
    // this allocation fails on the proxy side at run time.
    if (crossing && ctor != nullptr && !ctor->is_public()) {
      add("MSV003", Severity::kError, cls.name(), method.name(),
          static_cast<std::int32_t>(pc),
          "cross-partition instantiation of " +
              std::string(model::annotation_name(ann)) + " class " +
              target_name +
              ": its constructor is private, so no construction relay is "
              "woven and the proxy-side new fails at run time");
    }
    // MSV003b: neutral code instantiating a partitioned class gets a
    // concrete instance on one side and a proxy on the other — the two
    // copies of the neutral state diverge structurally.
    if (cls.annotation() == Annotation::kNeutral &&
        ann != Annotation::kNeutral) {
      add("MSV003", Severity::kWarning, cls.name(), method.name(),
          static_cast<std::int32_t>(pc),
          "neutral method instantiates " +
              std::string(model::annotation_name(ann)) + " class " +
              target_name +
              " — concrete on one side, a proxy on the other; the per-side "
              "copies of the neutral object graph diverge");
    }
    // MSV001: constructor arguments cross the boundary like call args.
    if ((m_mask & kSideT) != 0 && ann == Annotation::kUntrusted) {
      report_tainted_args(cls, method, pc, args,
                          "constructor of untrusted class " + target_name);
    }
    // MSV005: constructor arity/signature against the construction relay.
    if (ctor != nullptr) {
      if (ctor->param_count() !=
          static_cast<std::uint32_t>(std::max(instr.b, 0))) {
        add("MSV005", Severity::kError, cls.name(), method.name(),
            static_cast<std::int32_t>(pc),
            "new " + target_name + " with " + std::to_string(instr.b) +
                " argument(s) but the constructor takes " +
                std::to_string(ctor->param_count()));
      }
      if (ann != Annotation::kNeutral && ctor->has_primitive_signature()) {
        for (std::size_t i = 0; i < args.size(); ++i) {
          if (!args[i]->definitely_nonprimitive()) continue;
          add("MSV005", Severity::kError, cls.name(), method.name(),
              static_cast<std::int32_t>(pc),
              "constructor argument " + std::to_string(i) + " of " +
                  target_name + " is a " + kind_name(args[i]->kind) +
                  " but the constructor declares primitive_signature()");
        }
      }
    } else if (instr.b > 0) {
      add("MSV005", Severity::kError, cls.name(), method.name(),
          static_cast<std::int32_t>(pc),
          "new " + target_name + " with " + std::to_string(instr.b) +
              " argument(s) but the class declares no constructor");
    }
  }

  void check_intrinsic_site(const ClassDecl& cls, const MethodDecl& method,
                            unsigned m_mask, const FrameState& state,
                            std::size_t pc, const model::Instr& instr) {
    const model::IrBody& body = method.ir();
    if (instr.a < 0 ||
        static_cast<std::size_t>(instr.a) >= body.names.size()) {
      return;  // MSV007
    }
    const std::string& name = body.names[static_cast<std::size_t>(instr.a)];
    if ((m_mask & kSideT) == 0 || options_.sink_intrinsics.count(name) == 0) {
      return;
    }
    // From trusted-side code, the I/O intrinsics relay through the shim's
    // ocalls and print writes to host stdout: the argument bytes leave the
    // enclave.
    report_tainted_args(cls, method, pc, args_of(state, instr.b),
                        "intrinsic " + name + " (leaves the enclave via the "
                        "shim)");
  }

  void record_field_access(const ClassDecl& cls, const MethodDecl& method,
                           unsigned m_mask, const FrameState& state,
                           std::size_t pc, const model::Instr& instr) {
    const bool is_write = instr.op == Op::kPutField;
    const std::size_t need = is_write ? 2 : 1;
    if (state.stack.size() < need) return;  // MSV007 territory
    const AbsValue& receiver = state.stack[state.stack.size() - need];
    // MSV002 bookkeeping: accesses to neutral-class fields, attributed to
    // the side(s) this method executes on. Constructor writes are excluded
    // — each side's copy initializes identically.
    for (const auto& recv_cls_name : receiver.classes) {
      const ClassDecl* recv_cls = app_.find_class(recv_cls_name);
      if (recv_cls == nullptr ||
          recv_cls->annotation() != Annotation::kNeutral) {
        continue;
      }
      if (is_write && method.is_constructor() &&
          recv_cls_name == cls.name()) {
        continue;
      }
      neutral_accesses_[{recv_cls_name, instr.a}].push_back(
          Access{cls.name(), method.name(), static_cast<std::int32_t>(pc),
                 is_write, m_mask});
    }
    // MSV006 bookkeeping: a store of a value with known classes into a
    // field gives a class-level "may reference" edge receiver -> value.
    if (is_write) {
      const AbsValue& value = state.stack.back();
      for (const auto& from : receiver.classes) {
        for (const auto& to : value.classes) {
          const auto key = std::make_pair(from, to);
          const Location loc{cls.name(), method.name(),
                             static_cast<std::int32_t>(pc)};
          const auto it = ref_edges_.find(key);
          if (it == ref_edges_.end() || loc < it->second) {
            ref_edges_[key] = loc;
          }
        }
      }
    }
  }

  // ---- MSV002: neutral-class state divergence ----
  void check_neutral_divergence() {
    for (auto& [key, accesses] : neutral_accesses_) {
      std::sort(accesses.begin(), accesses.end());
      unsigned write_mask = 0;
      unsigned read_mask = 0;
      for (const auto& a : accesses) {
        (a.is_write ? write_mask : read_mask) |= a.mask;
      }
      const unsigned any_mask = write_mask | read_mask;
      const bool diverges =
          ((write_mask & kSideT) && (any_mask & kSideU)) ||
          ((write_mask & kSideU) && (any_mask & kSideT));
      if (!diverges) continue;
      const ClassDecl* cls = app_.find_class(key.first);
      std::string field = "#" + std::to_string(key.second);
      if (cls != nullptr && key.second >= 0 &&
          static_cast<std::size_t>(key.second) < cls->fields().size()) {
        field = cls->fields()[static_cast<std::size_t>(key.second)].name;
      }
      // Anchor the finding at the first write that participates.
      const Access* anchor = nullptr;
      for (const auto& a : accesses) {
        if (a.is_write) {
          anchor = &a;
          break;
        }
      }
      if (anchor == nullptr) continue;
      add("MSV002", Severity::kWarning, anchor->cls, anchor->method,
          anchor->pc,
          "neutral class " + key.first + " field `" + field +
              "` is written on the " + side_name(write_mask) +
              " side and accessed on the other — neutral instances are "
              "per-side copies, the views silently diverge");
    }
  }

  // ---- MSV004: declared_callees() completeness ----
  void check_native_hints(const ClassDecl& cls, const MethodDecl& method) {
    const unsigned m_mask = mask_of(cls.name(), method.name());
    for (const auto& [tc, tm] : method.declared_callees()) {
      const ClassDecl* target = app_.find_class(tc);
      const MethodDecl* callee =
          target == nullptr ? nullptr : target->find_method(tm);
      if (callee == nullptr) {
        add("MSV004", Severity::kError, cls.name(), method.name(), -1,
            "declared callee " + tc + "." + tm +
                " does not exist in the model — the reachability analysis "
                "rejects this hint at build time");
        continue;
      }
      const Annotation ann = target->annotation();
      const bool crossing =
          (ann == Annotation::kTrusted && (m_mask & kSideU)) ||
          (ann == Annotation::kUntrusted && (m_mask & kSideT));
      if (crossing && !callee->is_public()) {
        add("MSV004", Severity::kError, cls.name(), method.name(), -1,
            "declared callee " + tc + "." + tm +
                " is private on the opposite partition — private methods "
                "are stripped from proxies, so the call cannot be relayed");
      }
    }
  }

  void check_native_edges() {
    std::set<NativeEdge> seen;
    for (const auto& edge : options_.native_edges) {
      if (!seen.insert(edge).second) continue;
      const auto& [caller, callee] = edge;
      const ClassDecl* cls = app_.find_class(caller.first);
      const MethodDecl* method =
          cls == nullptr ? nullptr : cls->find_method(caller.second);
      if (method == nullptr ||
          method->kind() != model::MethodKind::kNative) {
        continue;
      }
      bool declared = false;
      for (const auto& hint : method->declared_callees()) {
        if (hint.first == callee.first && hint.second == callee.second) {
          declared = true;
          break;
        }
      }
      if (declared) continue;
      add("MSV004", Severity::kError, caller.first, caller.second, -1,
          "native body invokes " + callee.first + "." + callee.second +
              " at run time but declared_callees() omits it — the callee "
              "is invisible to the closed-world reachability analysis and "
              "may be pruned from the image");
    }
  }

  // ---- MSV006: cross-boundary reference cycles ----
  void check_reference_cycles() {
    // Transitive closure over the (tiny) class-reference graph.
    std::map<std::string, std::set<std::string>> reach;
    for (const auto& [edge, loc] : ref_edges_) {
      reach[edge.first].insert(edge.second);
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (auto& [from, tos] : reach) {
        std::set<std::string> grow = tos;
        for (const auto& mid : tos) {
          const auto it = reach.find(mid);
          if (it == reach.end()) continue;
          grow.insert(it->second.begin(), it->second.end());
        }
        if (grow.size() != tos.size()) {
          tos = std::move(grow);
          changed = true;
        }
      }
    }
    for (const auto& [a, a_reach] : reach) {
      const ClassDecl* cls_a = app_.find_class(a);
      if (cls_a == nullptr || cls_a->annotation() == Annotation::kNeutral) {
        continue;
      }
      for (const auto& b : a_reach) {
        if (b <= a) continue;  // one finding per unordered pair
        const auto it = reach.find(b);
        if (it == reach.end() || it->second.count(a) == 0) continue;
        const ClassDecl* cls_b = app_.find_class(b);
        if (cls_b == nullptr ||
            cls_b->annotation() == Annotation::kNeutral ||
            cls_b->annotation() == cls_a->annotation()) {
          continue;
        }
        // Anchor at the smallest recorded edge location on the cycle.
        Location anchor;
        bool have_anchor = false;
        for (const auto& [edge, loc] : ref_edges_) {
          const bool on_cycle =
              (a_reach.count(edge.first) || edge.first == a) &&
              (a_reach.count(edge.second) || edge.second == a);
          if (!on_cycle) continue;
          if (!have_anchor || loc < anchor) {
            anchor = loc;
            have_anchor = true;
          }
        }
        if (!have_anchor) continue;
        add("MSV006", Severity::kWarning, anchor.cls, anchor.method,
            anchor.pc,
            "cross-boundary reference cycle between " +
                std::string(model::annotation_name(cls_a->annotation())) +
                " " + a + " and " +
                std::string(model::annotation_name(cls_b->annotation())) +
                " " + b +
                " — proxy and mirror keep each other alive across the "
                "boundary; neither side's GC ever reclaims the cycle "
                "(paper §7)");
      }
    }
  }

  // MSV008: every public method of a partitioned class gets a woven relay
  // transition (xform::transition_name); if its name matches none of the
  // registered telemetry call prefixes, its spans land in the generic
  // bridge category and silently opt out of the rmi/gc trace filters.
  // Informational: the weave still works, only the observability is
  // degraded.
  void check_telemetry_categories() {
    for (const auto& cls : app_.classes()) {
      const Annotation ann = cls.annotation();
      if (ann == Annotation::kNeutral) continue;
      const bool trusted = ann == Annotation::kTrusted;
      const auto check_one = [&](const std::string& method_name) {
        const std::string transition =
            xform::transition_name(cls.name(), method_name, trusted);
        for (const auto& prefix : options_.telemetry_call_prefixes) {
          if (transition.rfind(prefix, 0) == 0) return;
        }
        add("MSV008", Severity::kInfo, cls.name(), method_name, -1,
            "relay transition " + transition +
                " matches no registered telemetry call prefix — its spans "
                "fall back to the generic bridge category and opt out of "
                "the rmi/gc trace filters (DESIGN.md §10)");
      };
      bool has_ctor = false;
      for (const auto& m : cls.methods()) {
        if (m.kind() == model::MethodKind::kRelay || !m.is_public()) continue;
        if (m.is_constructor()) has_ctor = true;
        check_one(m.name());
      }
      // A class without a declared constructor still gets a default
      // construction relay (transform/transformer.cc).
      if (!has_ctor) check_one(model::kConstructorName);
    }
  }

  // MSV009: batch_async() claims the method is safe to reorder within a
  // batched flush (proxy_runtime.h's BatchBuilder pipelines such calls
  // freely). A body that performs a sink intrinsic (I/O, print — effects
  // observable outside the receiver) or calls/constructs other objects
  // (effects on state other batched calls may touch) makes that claim
  // dubious: flag it. Pure field reads/writes on the receiver and local
  // arithmetic are fine. `Class.method` entries in batch_reorder_exempt
  // suppress the finding for audited declarations.
  void check_batch_async() {
    for (const auto& cls : app_.classes()) {
      if (cls.annotation() == Annotation::kNeutral) continue;
      for (const auto& method : cls.methods()) {
        if (!method.is_batch_async() || !method.is_public()) continue;
        if (method.kind() != model::MethodKind::kIr) continue;
        if (options_.batch_reorder_exempt.count(cls.name() + "." +
                                                method.name()) > 0) {
          continue;
        }
        const model::IrBody& body = method.ir();
        for (std::size_t pc = 0; pc < body.code.size(); ++pc) {
          const model::Instr& instr = body.code[pc];
          if (instr.op == Op::kIntrinsic) {
            if (instr.a < 0 ||
                static_cast<std::size_t>(instr.a) >= body.names.size()) {
              continue;  // MSV007
            }
            const std::string& name = body.names[instr.a];
            if (options_.sink_intrinsics.count(name) == 0) continue;
            add("MSV009", Severity::kWarning, cls.name(), method.name(),
                static_cast<std::int32_t>(pc),
                "method declares batch_async() but its body invokes the "
                "I/O intrinsic '" +
                    name +
                    "' — reordering it within a batched RMI flush reorders "
                    "externally observable effects");
            break;
          }
          if (instr.op == Op::kCall || instr.op == Op::kNew) {
            const std::string callee =
                (instr.a >= 0 &&
                 static_cast<std::size_t>(instr.a) < body.names.size())
                    ? body.names[instr.a]
                    : "<malformed>";
            add("MSV009", Severity::kWarning, cls.name(), method.name(),
                static_cast<std::int32_t>(pc),
                std::string("method declares batch_async() but its body ") +
                    (instr.op == Op::kCall ? "calls '" : "constructs '") +
                    callee +
                    "' — effects on other objects are not safe to reorder "
                    "within a batched RMI flush");
            break;
          }
        }
      }
    }
  }

  // ---- MSV010: over-trusted fields (value-granular trust fixpoint) ----
  //
  // Runs analysis/trust.h's interprocedural fixpoint and flags every
  // @Trusted-class field whose stores are all provably public (or that is
  // never stored to): the field cannot carry a secret, so keeping its
  // class inside the enclave buys no confidentiality — only transition
  // cost. Informational: demotion is the optimizer's call, not the lint's.
  void check_trusted_fields() {
    const TrustFacts facts = analyze_trust(app_, options_.trust);
    report_.stats().dataflow_iterations += facts.contexts_analyzed;
    for (const auto& [cls_name, idx] : facts.demotable_trusted_fields(app_)) {
      const ClassDecl* cls = app_.find_class(cls_name);
      std::string field = "#" + std::to_string(idx);
      if (cls != nullptr && idx >= 0 &&
          static_cast<std::size_t>(idx) < cls->fields().size()) {
        field = cls->fields()[static_cast<std::size_t>(idx)].name;
      }
      const bool never_stored =
          facts.field(cls_name, idx) == Trust::kBottom;
      // d.method carries the field name: the baseline key becomes
      // "MSV010 Class.field", one suppression per field.
      add("MSV010", Severity::kInfo, cls_name, field, -1,
          "@Trusted field `" + field + "` " +
              (never_stored
                   ? "is never stored to"
                   : "only ever holds values provably visible outside the "
                     "enclave (constants and untrusted-side inputs)") +
              " — it cannot carry a secret; demotion candidate for "
              "msvlint --propose-partition (DESIGN.md §15)");
    }
  }

  const model::AppModel& app_;
  const LintOptions& options_;
  Report& report_;

  std::map<std::string, std::vector<const ClassDecl*>> declarers_;
  SummaryMap summaries_;
  std::map<MethodKey, DataflowResult> flows_;
  std::map<MethodKey, unsigned> mask_;
  // (neutral class, field index) -> accesses.
  std::map<std::pair<std::string, std::int32_t>, std::vector<Access>>
      neutral_accesses_;
  // (from class, to class) -> first recorded store location.
  std::map<std::pair<std::string, std::string>, Location> ref_edges_;
};

}  // namespace

Report lint(const model::AppModel& app, const LintOptions& options) {
  Report report;
  Linter linter(app, options, report);
  linter.run();
  report.sort();
  return report;
}

}  // namespace msv::analysis
