// Value-granular trust analysis (DESIGN.md §15) — the SecV-style
// refinement of Montsalvat's class-granularity partitioning.
//
// The class-granular lints (MSV001) over-approximate: annotating a class
// @Trusted taints *every* field read, even when the values a field holds
// were already visible to the untrusted side (constants, untrusted-side
// inputs echoed back). This pass runs the absint engine with per-value
// Trust tags (absint.h: kPublic / kSecret / kMixed) and computes an
// interprocedural fixpoint over
//   * per-field trust  — the join of every value stored to the field, and
//   * per-method summaries keyed by *receiver-set context* — the canonical
//     serialization of the receiver class set at the call site, so a
//     method name resolved through a wide receiver set does not pollute
//     the summary of a monomorphic site (and vice versa).
//
// Contexts are discovered on the fly: analyzing a method under context C
// records the argument trusts flowing into each kCall/kNew site, which
// seeds (or widens) the callee's context table. Per-method context tables
// are capped; overflow collapses into a single "*" context. Everything is
// monotone in the 2-bit trust lattice, so the fixpoint terminates.
//
// Consumers: MSV010 (a @Trusted field whose stores are all provably
// public is a demotion candidate) and the partition optimizer
// (analysis/optimize.h), which must keep secret-carrying classes inside
// the enclave no matter what the crossing-cost model says.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/absint.h"
#include "model/app_model.h"

namespace msv::analysis {

struct TrustOptions {
  // Fixpoint bound; the lattice has height 2 per cell, so real programs
  // converge long before this.
  std::uint32_t max_rounds = 16;
  // Receiver-set contexts tracked per (class, method); discovery past the
  // cap collapses into the "*" overflow context.
  std::uint32_t max_contexts_per_method = 8;
  // Intrinsics whose results are enclave-confined regardless of argument
  // trusts (sealed-key material, enclave entropy).
  std::set<std::string> secret_intrinsics{"enclave_secret"};
  // "Class.field" entries pinned kSecret by policy — material provisioned
  // out of band that the analysis cannot see flowing in.
  std::set<std::string> pinned_secret_fields;
  std::uint32_t max_stack = 1024;
};

struct TrustFacts {
  // Join of every store observed per declared field. Every declared field
  // of every class has an entry; kBottom = no store ever reaches it.
  std::map<FieldKey, Trust> field_trust;
  // Per-method return / parameter trusts, joined across all contexts the
  // fixpoint discovered (kBottom return = void or never analyzed).
  std::map<SummaryKey, Trust> return_trust;
  std::map<SummaryKey, std::vector<Trust>> param_trust;
  // The raw context-keyed return summaries (receiver-set keys, "" for
  // unknown receivers, "*" for the collapsed overflow context).
  TrustSummaryMap context_summaries;

  std::uint64_t contexts_analyzed = 0;  // (method, context) analyses run
  std::uint64_t rounds = 0;
  bool converged = false;

  // Field trust lookup; kBottom for unknown fields.
  Trust field(const std::string& cls, std::int32_t idx) const;

  // Classes holding at least one possibly-secret field — the classes a
  // sound re-partitioning must keep (or place) inside the enclave.
  std::set<std::string> secret_classes() const;

  // @Trusted fields whose stores are all provably public (or that are
  // never stored to): the MSV010 demotion candidates, in declaration
  // order for stable diagnostics.
  std::vector<FieldKey> demotable_trusted_fields(
      const model::AppModel& app) const;
};

// Runs the interprocedural trust fixpoint over every IR method body.
// Native bodies are opaque: their classes' fields are widened to kMixed
// and their declared callees are analyzed under an all-kMixed "*" context.
TrustFacts analyze_trust(const model::AppModel& app,
                         const TrustOptions& options = {});

}  // namespace msv::analysis
