// Per-method control-flow graph over model::IrBody.
//
// Basic blocks are the maximal straight-line runs between jump targets and
// control transfers (kJump / kBranchFalse / the two returns). The builder
// is total: malformed jump targets never crash it — they simply produce no
// edge (the verifier reports them separately), so the dataflow engine can
// run over arbitrary input bytecode.
#pragma once

#include <cstddef>
#include <vector>

#include "model/ir.h"

namespace msv::analysis {

struct BasicBlock {
  std::size_t begin = 0;  // first pc (inclusive)
  std::size_t end = 0;    // one past the last pc
  std::vector<std::size_t> succs;  // successor block indices
  // True when the block's last instruction can fall off the end of the
  // method (end == code.size() and the last op is not a terminator).
  bool falls_off_end = false;
};

struct Cfg {
  std::vector<BasicBlock> blocks;        // blocks[0] is the entry block
  std::vector<std::size_t> block_of_pc;  // pc -> owning block index

  bool empty() const { return blocks.empty(); }
};

Cfg build_cfg(const model::IrBody& body);

}  // namespace msv::analysis
