// Compute kernels used by the evaluation workloads.
//
// These are real implementations — the FFT really transforms, SOR really
// relaxes, PageRank's engine really converges — executed at the workload's
// actual sizes, with their *simulated* cost charged to the virtual clock:
// a CPU term (cycles per elementary operation, calibrated to JIT-compiled
// Java throughput on the paper's 3.8 GHz machine) and a memory-traffic term
// routed through the MemoryDomain so the MEE factor applies inside the
// enclave. The set mirrors SPECjvm2008's SciMark group plus an
// MPEG-audio-like filterbank (Fig. 12 / Table 1) and the 1 MB-array FFT of
// the synthetic benchmark (§6.5).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/domain.h"
#include "sim/env.h"
#include "support/rng.h"

namespace msv::kernels {

struct KernelResult {
  double checksum = 0;        // value derived from the real computation
  std::uint64_t ops = 0;      // elementary operations performed
  std::uint64_t alloc_bytes = 0;  // managed-allocation pressure generated
};

// Complex FFT (radix-2, in place) over n_doubles real values packed as
// n_doubles/2 complex pairs; n_doubles must be a power of two.
KernelResult fft(Env& env, MemoryDomain& domain, std::uint64_t n_doubles,
                 Rng& rng);

// Jacobi successive over-relaxation on a grid x grid lattice.
KernelResult sor(Env& env, MemoryDomain& domain, std::uint32_t grid,
                 std::uint32_t iterations, Rng& rng);

// LU factorisation with partial pivoting of an n x n matrix.
KernelResult lu(Env& env, MemoryDomain& domain, std::uint32_t n, Rng& rng);

// Sparse matrix-vector multiplication, `iterations` passes over an n-row
// matrix with nz non-zeros (CRS layout, SciMark-style scatter).
KernelResult sparse_matmult(Env& env, MemoryDomain& domain, std::uint32_t n,
                            std::uint32_t nz, std::uint32_t iterations,
                            Rng& rng);

// Monte-Carlo pi integration. Heavy on small, short-lived allocations —
// the workload the native image's serial GC handles badly (Table 1's
// 0.25x entry). alloc_bytes reports the pressure; callers that run on a
// managed heap turn it into real allocations.
KernelResult monte_carlo(Env& env, MemoryDomain& domain, std::uint64_t samples,
                         Rng& rng);

// MPEG-audio-like decode: windowed subband synthesis (IMDCT-ish butterfly
// plus 32-tap filterbank) over `frames` frames.
KernelResult mpegaudio(Env& env, MemoryDomain& domain, std::uint32_t frames,
                       Rng& rng);

}  // namespace msv::kernels
