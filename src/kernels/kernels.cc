#include "kernels/kernels.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"

namespace msv::kernels {
namespace {

// Calibration: cycles of CPU work per elementary kernel operation
// (multiply-add plus loop/index overhead at JIT-compiled-Java density), and
// the fraction of array bytes per pass that misses the cache and becomes
// DRAM/MEE traffic.
constexpr double kCyclesPerFlop = 10.0;
constexpr double kMissFraction = 0.35;

void charge(Env& env, MemoryDomain& domain, std::uint64_t ops,
            std::uint64_t traffic_bytes) {
  env.clock.advance(
      static_cast<Cycles>(static_cast<double>(ops) * kCyclesPerFlop));
  domain.charge_traffic(
      static_cast<std::uint64_t>(static_cast<double>(traffic_bytes)));
}

}  // namespace

KernelResult fft(Env& env, MemoryDomain& domain, std::uint64_t n_doubles,
                 Rng& rng) {
  MSV_CHECK_MSG(n_doubles >= 4 && (n_doubles & (n_doubles - 1)) == 0,
                "FFT size must be a power of two");
  const std::uint64_t n = n_doubles / 2;  // complex points
  std::vector<double> re(n), im(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    re[i] = rng.next_double() - 0.5;
    im[i] = 0.0;
  }

  // Bit reversal.
  for (std::uint64_t i = 1, j = 0; i < n; ++i) {
    std::uint64_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) {
      std::swap(re[i], re[j]);
      std::swap(im[i], im[j]);
    }
  }
  // Danielson-Lanczos passes.
  std::uint64_t ops = 0;
  for (std::uint64_t len = 2; len <= n; len <<= 1) {
    const double ang = -2.0 * M_PI / static_cast<double>(len);
    const double wr = std::cos(ang), wi = std::sin(ang);
    for (std::uint64_t i = 0; i < n; i += len) {
      double cur_r = 1.0, cur_i = 0.0;
      for (std::uint64_t k = 0; k < len / 2; ++k) {
        const std::uint64_t a = i + k, b = i + k + len / 2;
        const double tr = re[b] * cur_r - im[b] * cur_i;
        const double ti = re[b] * cur_i + im[b] * cur_r;
        re[b] = re[a] - tr;
        im[b] = im[a] - ti;
        re[a] += tr;
        im[a] += ti;
        const double nr = cur_r * wr - cur_i * wi;
        cur_i = cur_r * wi + cur_i * wr;
        cur_r = nr;
        ops += 10;
      }
    }
  }

  const std::uint64_t passes = static_cast<std::uint64_t>(
      std::llround(std::log2(static_cast<double>(n))));
  const std::uint64_t array_bytes = n_doubles * sizeof(double);
  charge(env, domain, ops,
         static_cast<std::uint64_t>(static_cast<double>(array_bytes) *
                                    static_cast<double>(passes) *
                                    kMissFraction) +
             2 * array_bytes);

  double checksum = 0;
  for (std::uint64_t i = 0; i < n; i += std::max<std::uint64_t>(1, n / 64)) {
    checksum += re[i] + im[i];
  }
  return {checksum, ops, 0};
}

KernelResult sor(Env& env, MemoryDomain& domain, std::uint32_t grid,
                 std::uint32_t iterations, Rng& rng) {
  MSV_CHECK(grid >= 3);
  std::vector<double> g(static_cast<std::size_t>(grid) * grid);
  for (auto& v : g) v = rng.next_double();
  const double omega = 1.25;
  auto at = [&](std::uint32_t r, std::uint32_t c) -> double& {
    return g[static_cast<std::size_t>(r) * grid + c];
  };
  std::uint64_t ops = 0;
  for (std::uint32_t it = 0; it < iterations; ++it) {
    for (std::uint32_t r = 1; r + 1 < grid; ++r) {
      for (std::uint32_t c = 1; c + 1 < grid; ++c) {
        at(r, c) = omega * 0.25 *
                       (at(r - 1, c) + at(r + 1, c) + at(r, c - 1) +
                        at(r, c + 1)) +
                   (1.0 - omega) * at(r, c);
        ops += 6;
      }
    }
  }
  const std::uint64_t bytes = g.size() * sizeof(double);
  charge(env, domain, ops,
         static_cast<std::uint64_t>(static_cast<double>(bytes) * iterations *
                                    kMissFraction));
  return {at(grid / 2, grid / 2), ops, 0};
}

KernelResult lu(Env& env, MemoryDomain& domain, std::uint32_t n, Rng& rng) {
  MSV_CHECK(n >= 2);
  std::vector<double> m(static_cast<std::size_t>(n) * n);
  for (auto& v : m) v = rng.next_double() + 0.5;
  auto at = [&](std::uint32_t r, std::uint32_t c) -> double& {
    return m[static_cast<std::size_t>(r) * n + c];
  };
  std::uint64_t ops = 0;
  double pivot_product = 1.0;
  for (std::uint32_t k = 0; k < n; ++k) {
    // Partial pivoting.
    std::uint32_t p = k;
    for (std::uint32_t r = k + 1; r < n; ++r) {
      if (std::fabs(at(r, k)) > std::fabs(at(p, k))) p = r;
    }
    if (p != k) {
      for (std::uint32_t c = 0; c < n; ++c) std::swap(at(p, c), at(k, c));
    }
    pivot_product *= at(k, k);
    for (std::uint32_t r = k + 1; r < n; ++r) {
      const double f = at(r, k) / at(k, k);
      at(r, k) = f;
      for (std::uint32_t c = k + 1; c < n; ++c) {
        at(r, c) -= f * at(k, c);
        ops += 2;
      }
    }
  }
  const std::uint64_t bytes = m.size() * sizeof(double);
  charge(env, domain, ops,
         static_cast<std::uint64_t>(static_cast<double>(bytes) *
                                    std::sqrt(static_cast<double>(n)) *
                                    kMissFraction));
  return {pivot_product, ops, 0};
}

KernelResult sparse_matmult(Env& env, MemoryDomain& domain, std::uint32_t n,
                            std::uint32_t nz, std::uint32_t iterations,
                            Rng& rng) {
  MSV_CHECK(n >= 1 && nz >= n);
  // CRS with nz/n entries per row at pseudo-random columns.
  const std::uint32_t per_row = nz / n;
  std::vector<double> val(static_cast<std::size_t>(per_row) * n);
  std::vector<std::uint32_t> col(val.size());
  for (std::size_t i = 0; i < val.size(); ++i) {
    val[i] = rng.next_double();
    col[i] = static_cast<std::uint32_t>(rng.next_below(n));
  }
  std::vector<double> x(n, 1.0), y(n, 0.0);
  std::uint64_t ops = 0;
  for (std::uint32_t it = 0; it < iterations; ++it) {
    for (std::uint32_t r = 0; r < n; ++r) {
      double sum = 0;
      const std::size_t base = static_cast<std::size_t>(r) * per_row;
      for (std::uint32_t k = 0; k < per_row; ++k) {
        sum += val[base + k] * x[col[base + k]];
        ops += 2;
      }
      y[r] = sum;
    }
    std::swap(x, y);
  }
  // Scatter access: nearly every non-zero is a cache miss.
  const std::uint64_t traffic =
      static_cast<std::uint64_t>(val.size()) * iterations * 12;
  charge(env, domain, ops, traffic);
  return {x[n / 2], ops, 0};
}

KernelResult monte_carlo(Env& env, MemoryDomain& domain, std::uint64_t samples,
                         Rng& rng) {
  std::uint64_t inside = 0;
  for (std::uint64_t i = 0; i < samples; ++i) {
    const double x = rng.next_double();
    const double y = rng.next_double();
    if (x * x + y * y <= 1.0) ++inside;
  }
  const std::uint64_t ops = samples * 6;
  // The SPECjvm harness boxes each sample point; that allocation pressure
  // is what thrashes the native image's serial collector (Table 1).
  const std::uint64_t alloc_bytes = samples * 48;
  charge(env, domain, ops, samples * 2);
  return {4.0 * static_cast<double>(inside) / static_cast<double>(samples),
          ops, alloc_bytes};
}

KernelResult mpegaudio(Env& env, MemoryDomain& domain, std::uint32_t frames,
                       Rng& rng) {
  // Subband synthesis: per frame, a 32-point DCT-like butterfly feeding a
  // 512-tap windowed FIR, as in layer-3 decoding.
  constexpr std::uint32_t kSubbands = 32;
  constexpr std::uint32_t kWindow = 512;
  std::vector<double> window(kWindow);
  for (std::uint32_t i = 0; i < kWindow; ++i) {
    window[i] = std::cos(static_cast<double>(i) * 0.013);
  }
  std::vector<double> fifo(kWindow, 0.0);
  std::uint64_t ops = 0;
  double checksum = 0;
  for (std::uint32_t f = 0; f < frames; ++f) {
    double bands[kSubbands];
    for (auto& b : bands) b = rng.next_double() - 0.5;
    // Butterfly stage.
    for (std::uint32_t s = kSubbands / 2; s >= 1; s /= 2) {
      for (std::uint32_t i = 0; i < kSubbands; i += 2 * s) {
        for (std::uint32_t k = 0; k < s; ++k) {
          const double a = bands[i + k], b = bands[i + k + s];
          bands[i + k] = a + b;
          bands[i + k + s] = (a - b) * window[(k * 7) % kWindow];
          ops += 4;
        }
      }
    }
    // Windowed FIR over the FIFO.
    std::rotate(fifo.begin(), fifo.end() - kSubbands, fifo.end());
    for (std::uint32_t i = 0; i < kSubbands; ++i) fifo[i] = bands[i];
    double sample = 0;
    for (std::uint32_t i = 0; i < kWindow; i += 8) {
      sample += fifo[i] * window[i];
      ops += 2;
    }
    checksum += sample;
  }
  charge(env, domain, ops,
         static_cast<std::uint64_t>(frames) * kWindow * sizeof(double) / 4);
  return {checksum, ops, static_cast<std::uint64_t>(frames) * 96};
}

}  // namespace msv::kernels
