// Filesystem abstraction used by the host-side shim helper (§5.4).
//
// Two implementations exist: MemFs, a deterministic in-memory filesystem
// used by tests and benchmarks, and RealFs, a pass-through to the host OS
// for the examples. The shim layer charges syscall costs; this layer only
// moves bytes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace msv::vfs {

enum class OpenMode {
  kRead,      // existing file, read-only
  kWrite,     // create or truncate
  kAppend,    // create if needed, position at end
  kReadWrite  // create if needed, read/write from the start
};

// An open file handle. Closing happens in the destructor (RAII).
class File {
 public:
  virtual ~File() = default;

  // Reads up to `n` bytes; returns the number of bytes read (0 at EOF).
  virtual std::size_t read(void* buf, std::size_t n) = 0;
  // Writes exactly `n` bytes (the in-memory FS cannot fail short; RealFs
  // throws RuntimeFault on short writes).
  virtual void write(const void* buf, std::size_t n) = 0;
  virtual void seek(std::uint64_t pos) = 0;
  virtual std::uint64_t tell() const = 0;
  virtual std::uint64_t size() const = 0;
  virtual void flush() = 0;
};

class FileSystem {
 public:
  virtual ~FileSystem() = default;

  // Throws RuntimeFault if the file cannot be opened.
  virtual std::unique_ptr<File> open(const std::string& path, OpenMode mode) = 0;
  virtual bool exists(const std::string& path) const = 0;
  virtual std::uint64_t file_size(const std::string& path) const = 0;
  virtual void remove(const std::string& path) = 0;
  // Returns the paths of all files whose name starts with `prefix`.
  virtual std::vector<std::string> list(const std::string& prefix) const = 0;
  // Memory-maps a file for reading: returns an immutable snapshot of its
  // contents. PalDB's reader uses this, mirroring the mmap-optimised reads
  // the paper's evaluation relies on (§6.5).
  virtual std::shared_ptr<const std::vector<std::uint8_t>> map(
      const std::string& path) = 0;
};

// Deterministic in-memory filesystem.
class MemFs final : public FileSystem {
 public:
  MemFs();
  ~MemFs() override;

  std::unique_ptr<File> open(const std::string& path, OpenMode mode) override;
  bool exists(const std::string& path) const override;
  std::uint64_t file_size(const std::string& path) const override;
  void remove(const std::string& path) override;
  std::vector<std::string> list(const std::string& prefix) const override;
  std::shared_ptr<const std::vector<std::uint8_t>> map(
      const std::string& path) override;

  // Total bytes stored across all files (test/diagnostic helper).
  std::uint64_t total_bytes() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Pass-through to the host OS (stdio). Paths are used verbatim.
class RealFs final : public FileSystem {
 public:
  std::unique_ptr<File> open(const std::string& path, OpenMode mode) override;
  bool exists(const std::string& path) const override;
  std::uint64_t file_size(const std::string& path) const override;
  void remove(const std::string& path) override;
  std::vector<std::string> list(const std::string& prefix) const override;
  std::shared_ptr<const std::vector<std::uint8_t>> map(
      const std::string& path) override;
};

}  // namespace msv::vfs
