#include <cstdio>
#include <filesystem>

#include "support/error.h"
#include "vfs/fs.h"

namespace msv::vfs {
namespace {

class StdioFile final : public File {
 public:
  StdioFile(std::FILE* f, std::string path) : f_(f), path_(std::move(path)) {}
  ~StdioFile() override {
    if (f_ != nullptr) std::fclose(f_);
  }

  std::size_t read(void* buf, std::size_t n) override {
    return std::fread(buf, 1, n, f_);
  }

  void write(const void* buf, std::size_t n) override {
    if (std::fwrite(buf, 1, n, f_) != n)
      throw RuntimeFault("RealFs: short write to " + path_);
  }

  void seek(std::uint64_t pos) override {
    if (std::fseek(f_, static_cast<long>(pos), SEEK_SET) != 0)
      throw RuntimeFault("RealFs: seek failed on " + path_);
  }

  std::uint64_t tell() const override {
    return static_cast<std::uint64_t>(std::ftell(f_));
  }

  std::uint64_t size() const override {
    const long pos = std::ftell(f_);
    std::fseek(f_, 0, SEEK_END);
    const long end = std::ftell(f_);
    std::fseek(f_, pos, SEEK_SET);
    return static_cast<std::uint64_t>(end);
  }

  void flush() override { std::fflush(f_); }

 private:
  std::FILE* f_;
  std::string path_;
};

const char* mode_string(OpenMode mode) {
  switch (mode) {
    case OpenMode::kRead:
      return "rb";
    case OpenMode::kWrite:
      return "wb";
    case OpenMode::kAppend:
      return "ab";
    case OpenMode::kReadWrite:
      return "w+b";
  }
  return "rb";
}

}  // namespace

std::unique_ptr<File> RealFs::open(const std::string& path, OpenMode mode) {
  std::FILE* f = std::fopen(path.c_str(), mode_string(mode));
  if (f == nullptr) throw RuntimeFault("RealFs: cannot open " + path);
  return std::make_unique<StdioFile>(f, path);
}

bool RealFs::exists(const std::string& path) const {
  return std::filesystem::exists(path);
}

std::uint64_t RealFs::file_size(const std::string& path) const {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) throw RuntimeFault("RealFs: cannot stat " + path);
  return size;
}

void RealFs::remove(const std::string& path) {
  std::error_code ec;
  if (!std::filesystem::remove(path, ec) || ec)
    throw RuntimeFault("RealFs: cannot remove " + path);
}

std::vector<std::string> RealFs::list(const std::string& prefix) const {
  namespace fs = std::filesystem;
  const fs::path p(prefix);
  const fs::path dir = p.has_parent_path() ? p.parent_path() : fs::path(".");
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string path = entry.path().string();
    if (path.rfind(prefix, 0) == 0) out.push_back(path);
  }
  return out;
}

std::shared_ptr<const std::vector<std::uint8_t>> RealFs::map(
    const std::string& path) {
  auto f = open(path, OpenMode::kRead);
  auto data = std::make_shared<std::vector<std::uint8_t>>(f->size());
  if (!data->empty()) {
    const std::size_t got = f->read(data->data(), data->size());
    if (got != data->size())
      throw RuntimeFault("RealFs: short read mapping " + path);
  }
  return data;
}

}  // namespace msv::vfs
