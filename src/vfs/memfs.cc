#include <algorithm>
#include <cstring>
#include <map>

#include "support/error.h"
#include "vfs/fs.h"

namespace msv::vfs {

struct MemFs::Impl {
  // shared_ptr so map() snapshots stay valid if the file is removed.
  std::map<std::string, std::shared_ptr<std::vector<std::uint8_t>>> files;
};

namespace {

class MemFile final : public File {
 public:
  MemFile(std::shared_ptr<std::vector<std::uint8_t>> data, OpenMode mode)
      : data_(std::move(data)), writable_(mode != OpenMode::kRead) {
    if (mode == OpenMode::kAppend) pos_ = data_->size();
  }

  std::size_t read(void* buf, std::size_t n) override {
    const std::size_t avail =
        pos_ < data_->size() ? data_->size() - pos_ : 0;
    const std::size_t take = std::min(n, avail);
    if (take != 0) std::memcpy(buf, data_->data() + pos_, take);
    pos_ += take;
    return take;
  }

  void write(const void* buf, std::size_t n) override {
    MSV_CHECK_MSG(writable_, "write to a read-only MemFile");
    if (pos_ + n > data_->size()) data_->resize(pos_ + n);
    if (n != 0) std::memcpy(data_->data() + pos_, buf, n);
    pos_ += n;
  }

  void seek(std::uint64_t pos) override { pos_ = pos; }
  std::uint64_t tell() const override { return pos_; }
  std::uint64_t size() const override { return data_->size(); }
  void flush() override {}

 private:
  std::shared_ptr<std::vector<std::uint8_t>> data_;
  bool writable_;
  std::uint64_t pos_ = 0;
};

}  // namespace

MemFs::MemFs() : impl_(std::make_unique<Impl>()) {}
MemFs::~MemFs() = default;

std::unique_ptr<File> MemFs::open(const std::string& path, OpenMode mode) {
  auto it = impl_->files.find(path);
  if (mode == OpenMode::kRead) {
    if (it == impl_->files.end())
      throw RuntimeFault("MemFs: no such file: " + path);
    return std::make_unique<MemFile>(it->second, mode);
  }
  if (it == impl_->files.end()) {
    it = impl_->files
             .emplace(path, std::make_shared<std::vector<std::uint8_t>>())
             .first;
  } else if (mode == OpenMode::kWrite) {
    it->second->clear();
  }
  return std::make_unique<MemFile>(it->second, mode);
}

bool MemFs::exists(const std::string& path) const {
  return impl_->files.count(path) != 0;
}

std::uint64_t MemFs::file_size(const std::string& path) const {
  const auto it = impl_->files.find(path);
  if (it == impl_->files.end())
    throw RuntimeFault("MemFs: no such file: " + path);
  return it->second->size();
}

void MemFs::remove(const std::string& path) {
  if (impl_->files.erase(path) == 0)
    throw RuntimeFault("MemFs: no such file: " + path);
}

std::vector<std::string> MemFs::list(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [path, data] : impl_->files) {
    if (path.rfind(prefix, 0) == 0) out.push_back(path);
  }
  return out;
}

std::shared_ptr<const std::vector<std::uint8_t>> MemFs::map(
    const std::string& path) {
  const auto it = impl_->files.find(path);
  if (it == impl_->files.end())
    throw RuntimeFault("MemFs: no such file: " + path);
  return it->second;
}

std::uint64_t MemFs::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [path, data] : impl_->files) total += data->size();
  return total;
}

}  // namespace msv::vfs
