// Memory domains.
//
// An isolate's heap lives either in normal DRAM (untrusted) or in EPC
// memory (trusted). The domain abstraction lets the managed runtime charge
// memory costs without knowing about SGX: the enclave-backed implementation
// (sgx::EnclaveDomain) applies the MEE traffic factor and simulates EPC
// paging, while the plain implementation charges DRAM costs only.
#pragma once

#include <cstdint>
#include <string>

#include "sim/env.h"

namespace msv {

class MemoryDomain {
 public:
  explicit MemoryDomain(Env& env) : env_(env) {}
  virtual ~MemoryDomain() = default;

  MemoryDomain(const MemoryDomain&) = delete;
  MemoryDomain& operator=(const MemoryDomain&) = delete;

  virtual bool trusted() const = 0;

  // Registers a contiguous region (a heap semispace, a mapped file, ...).
  // Returns a region id used by touch_pages.
  virtual std::uint64_t register_region(const std::string& name) = 0;

  // Charges DRAM-level memory traffic of `bytes` (reads+writes that miss
  // the cache). Trusted domains multiply by the MEE factor.
  virtual void charge_traffic(std::uint64_t bytes) = 0;

  // Notes that pages [first_page, first_page+n_pages) of `region` are being
  // accessed. Trusted domains may charge EPC page-in/out costs.
  virtual void touch_pages(std::uint64_t region, std::uint64_t first_page,
                           std::uint64_t n_pages) = 0;

  Env& env() { return env_; }
  const Env& env() const { return env_; }

 protected:
  Env& env_;
};

// Normal (untrusted) DRAM: traffic at face value, no paging beyond the
// host's page cache (charged by the shim, not here).
class UntrustedDomain final : public MemoryDomain {
 public:
  explicit UntrustedDomain(Env& env) : MemoryDomain(env) {}

  bool trusted() const override { return false; }

  std::uint64_t register_region(const std::string&) override {
    return next_region_++;
  }

  void charge_traffic(std::uint64_t bytes) override {
    env_.clock.advance(static_cast<Cycles>(static_cast<double>(bytes) *
                                           env_.cost.dram_cycles_per_byte));
  }

  void touch_pages(std::uint64_t, std::uint64_t, std::uint64_t) override {}

 private:
  std::uint64_t next_region_ = 1;
};

}  // namespace msv
