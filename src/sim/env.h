// The simulation environment shared by every component of a run: the
// virtual clock, the cost model and the (virtual) host filesystem.
//
// One Env corresponds to one "machine". Everything that happens during a
// simulated execution — enclave transitions, GC pauses, syscalls — charges
// cycles to env.clock via the constants in env.cost.
#pragma once

#include <memory>

#include "support/clock.h"
#include "support/cost_model.h"
#include "telemetry/telemetry.h"
#include "vfs/fs.h"

namespace msv {

// Which side of the enclave boundary code is currently executing on.
enum class Side { kUntrusted, kTrusted };

inline const char* side_name(Side s) {
  return s == Side::kTrusted ? "trusted" : "untrusted";
}

struct Env {
  explicit Env(CostModel cm = CostModel::paper(),
               std::shared_ptr<vfs::FileSystem> filesystem = nullptr)
      : clock(cm.cpu_hz),
        cost(cm),
        fs(filesystem ? std::move(filesystem)
                      : std::make_shared<vfs::MemFs>()),
        telemetry(clock) {}

  Env(const Env&) = delete;
  Env& operator=(const Env&) = delete;

  VirtualClock clock;
  CostModel cost;
  std::shared_ptr<vfs::FileSystem> fs;
  // Metrics registry + deterministic span tracer (DESIGN.md §10). Off by
  // default; AppConfig::trace configures it at app construction.
  telemetry::Telemetry telemetry;
};

}  // namespace msv
