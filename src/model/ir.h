// A small stack-based bytecode, standing in for the Java bytecode that
// Montsalvat's Javassist-based weaver transforms (§5.2).
//
// The instruction set is deliberately compact: enough for the paper's
// illustrative programs (Listing 1), the synthetic benchmark generator
// (§6.5) and the micro-benchmarks, while giving the reachability analysis
// (§5.3) real call edges to walk.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/value.h"

namespace msv::model {

enum class Op : std::uint8_t {
  kNop,
  kConst,       // a = constant pool index; push consts[a]
  kLoadLocal,   // a = local index (arguments first, `this` is local 0 for
                // instance methods); push locals[a]
  kStoreLocal,  // a = local index; pop into locals[a]
  kGetField,    // a = field index; pop obj, push obj.field[a]
  kPutField,    // a = field index; pop value, pop obj, obj.field[a] = value
  kNew,         // a = name pool index (class), b = argc; pop args, construct,
                // push ref (a proxy-aware allocation: §5.2)
  kCall,        // a = name pool index (method), b = argc; pop args, pop
                // receiver, invoke, push result
  kIntrinsic,   // a = name pool index, b = argc; pop args, invoke intrinsic
                // (compute kernels, I/O — see interp/intrinsics)
  kAdd,         // numeric add (i32/i64/f64, receiver-type driven)
  kSub,
  kMul,
  kDiv,
  kLt,          // push bool
  kLe,
  kEq,
  kJump,        // a = target pc
  kBranchFalse, // a = target pc; pop cond
  kPop,
  kDup,
  kReturn,      // pop return value
  kReturnVoid,
};

struct Instr {
  Op op = Op::kNop;
  std::int32_t a = 0;
  std::int32_t b = 0;
};

// Mnemonic for diagnostics ("kGetField" -> "get_field").
const char* op_name(Op op);

// Net operand-stack effect of one instruction (pushes minus pops), and the
// number of values it pops. kCall/kNew/kIntrinsic depend on the argc in
// `b`. Used by the bytecode verifier and the dataflow engine.
std::int32_t stack_pops(const Instr& instr);
std::int32_t stack_pushes(const Instr& instr);

// True for instructions after which control never falls through to pc+1.
inline bool is_terminator(Op op) {
  return op == Op::kJump || op == Op::kReturn || op == Op::kReturnVoid;
}

// The body of a bytecode method.
struct IrBody {
  std::vector<Instr> code;
  std::vector<rt::Value> consts;  // constant pool
  std::vector<std::string> names; // class/method/intrinsic name pool
  std::uint32_t local_count = 0;  // locals including parameters and `this`
};

// Convenience builder used by tests, examples and the synthetic program
// generator.
class IrBuilder {
 public:
  IrBuilder& const_val(rt::Value v);
  IrBuilder& load_local(std::int32_t idx);
  IrBuilder& store_local(std::int32_t idx);
  IrBuilder& get_field(std::int32_t field_idx);
  IrBuilder& put_field(std::int32_t field_idx);
  IrBuilder& new_object(const std::string& class_name, std::int32_t argc);
  IrBuilder& call(const std::string& method, std::int32_t argc);
  IrBuilder& intrinsic(const std::string& name, std::int32_t argc);
  IrBuilder& add();
  IrBuilder& sub();
  IrBuilder& mul();
  IrBuilder& div();
  IrBuilder& lt();
  IrBuilder& le();
  IrBuilder& eq();
  IrBuilder& pop();
  IrBuilder& dup();
  IrBuilder& ret();
  IrBuilder& ret_void();

  // Control flow: label() marks the current pc; jump/branch take label ids
  // created with new_label() and bound with bind().
  std::int32_t new_label();
  IrBuilder& bind(std::int32_t label);
  IrBuilder& jump(std::int32_t label);
  IrBuilder& branch_false(std::int32_t label);

  IrBuilder& locals(std::uint32_t count);

  IrBody build();

 private:
  std::int32_t intern_name(const std::string& name);

  IrBody body_;
  std::vector<std::int32_t> label_pcs_;
  std::vector<std::pair<std::size_t, std::int32_t>> fixups_;  // (pc, label)
};

}  // namespace msv::model
