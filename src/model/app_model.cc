#include "model/app_model.h"

#include <unordered_set>

#include "support/error.h"

namespace msv::model {

MethodDecl& MethodDecl::body(IrBody ir) {
  kind_ = MethodKind::kIr;
  ir_ = std::move(ir);
  return *this;
}

MethodDecl& MethodDecl::body_native(NativeFn fn) {
  kind_ = MethodKind::kNative;
  native_ = std::move(fn);
  return *this;
}

MethodDecl& MethodDecl::calls(const std::string& cls,
                              const std::string& method) {
  declared_callees_.emplace_back(cls, method);
  return *this;
}

MethodDecl& MethodDecl::set_static() {
  is_static_ = true;
  return *this;
}

MethodDecl& MethodDecl::set_private() {
  is_public_ = false;
  return *this;
}

MethodDecl& MethodDecl::code_size(std::uint64_t bytes) {
  native_code_bytes_ = bytes;
  return *this;
}

MethodDecl& MethodDecl::primitive_signature(bool v) {
  primitive_sig_ = v;
  return *this;
}

MethodDecl& MethodDecl::batch_async(bool v) {
  batch_async_ = v;
  return *this;
}

std::uint64_t MethodDecl::code_bytes() const {
  switch (kind_) {
    case MethodKind::kIr:
      // Rough AoT expansion: each bytecode compiles to a handful of machine
      // instructions.
      return 32 + ir_.code.size() * 16;
    case MethodKind::kNative:
      return native_code_bytes_;
    case MethodKind::kProxyStub:
      return 96;  // hash lookup + marshalling + transition call
    case MethodKind::kRelay:
      return 160;  // entry point prologue + unmarshal + dispatch
  }
  return 0;
}

void MethodDecl::make_proxy_stub(ProxyStubInfo info) {
  kind_ = MethodKind::kProxyStub;
  proxy_ = std::move(info);
  ir_ = IrBody{};
  native_ = nullptr;
}

void MethodDecl::set_relay(RelayInfo info) {
  kind_ = MethodKind::kRelay;
  relay_ = std::move(info);
}

FieldDecl& ClassDecl::add_field(const std::string& name, bool is_private) {
  MSV_CHECK_MSG(field_index(name) < 0,
                "duplicate field " + name_ + "." + name);
  fields_.push_back(FieldDecl{name, is_private});
  return fields_.back();
}

MethodDecl& ClassDecl::add_constructor(std::uint32_t param_count) {
  return add_method(kConstructorName, param_count);
}

MethodDecl& ClassDecl::add_method(const std::string& name,
                                  std::uint32_t param_count) {
  if (find_method(name) != nullptr) {
    throw ConfigError("duplicate method " + name_ + "." + name +
                      " (overloading is not supported by the model)");
  }
  methods_.emplace_back(name, param_count);
  return methods_.back();
}

MethodDecl& ClassDecl::add_static_method(const std::string& name,
                                         std::uint32_t param_count) {
  return add_method(name, param_count).set_static();
}

std::int32_t ClassDecl::field_index(const std::string& name) const {
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<std::int32_t>(i);
  }
  return -1;
}

const MethodDecl* ClassDecl::find_method(const std::string& name) const {
  for (const auto& m : methods_) {
    if (m.name() == name) return &m;
  }
  return nullptr;
}

MethodDecl* ClassDecl::find_method(const std::string& name) {
  for (auto& m : methods_) {
    if (m.name() == name) return &m;
  }
  return nullptr;
}

ClassDecl& AppModel::add_class(const std::string& name,
                               Annotation annotation) {
  if (find_class(name) != nullptr) {
    throw ConfigError("duplicate class " + name);
  }
  classes_.emplace_back(name, annotation);
  return classes_.back();
}

const ClassDecl* AppModel::find_class(const std::string& name) const {
  for (const auto& c : classes_) {
    if (c.name() == name) return &c;
  }
  return nullptr;
}

ClassDecl* AppModel::find_class(const std::string& name) {
  for (auto& c : classes_) {
    if (c.name() == name) return &c;
  }
  return nullptr;
}

const ClassDecl& AppModel::cls(const std::string& name) const {
  const ClassDecl* c = find_class(name);
  if (c == nullptr) throw ConfigError("unknown class " + name);
  return *c;
}

ClassDecl& AppModel::cls(const std::string& name) {
  ClassDecl* c = find_class(name);
  if (c == nullptr) throw ConfigError("unknown class " + name);
  return *c;
}

void AppModel::validate() const {
  std::unordered_set<std::string> names;
  for (const auto& c : classes_) {
    MSV_CHECK_MSG(names.insert(c.name()).second,
                  "duplicate class " + c.name());
    if (c.annotation() != Annotation::kNeutral) {
      for (const auto& f : c.fields()) {
        if (!f.is_private) {
          throw ConfigError(
              "annotated class " + c.name() + " exposes public field '" +
              f.name +
              "': @Trusted/@Untrusted classes must be properly encapsulated "
              "(§5.1)");
        }
      }
    }
  }
  if (!main_class_.empty()) {
    const ClassDecl* main_cls = find_class(main_class_);
    if (main_cls == nullptr) {
      throw ConfigError("main class " + main_class_ + " not found");
    }
    const MethodDecl* main = main_cls->find_method("main");
    if (main == nullptr || !main->is_static() || !main->is_public()) {
      throw ConfigError("main class " + main_class_ +
                        " needs a public static main method");
    }
    if (main_cls->annotation() == Annotation::kTrusted) {
      throw ConfigError(
          "main class must not be @Trusted: SGX applications begin in the "
          "untrusted runtime (§5.3)");
    }
  }
}

}  // namespace msv::model
