// The application model: classes, fields, methods — the unit Montsalvat's
// toolchain operates on.
//
// This is the stand-in for compiled Java classes. A method body is either
// bytecode (IrBody), a native C++ function (how the real applications —
// PalDB, GraphChi, the SPECjvm kernels — are bound into the model), or one
// of the two synthetic forms the bytecode transformer produces: a proxy
// stub that transitions into the opposite runtime, or a relay method (a
// @CEntryPoint wrapper) invoked from the opposite runtime (§5.2).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "model/annotations.h"
#include "model/ir.h"
#include "runtime/value.h"

namespace msv::interp {
class ExecContext;
}

namespace msv::model {

// Context passed to native method bodies. `ctx` gives access to cost
// charging, the shim (I/O) and object construction; `isolate` is the
// runtime the method executes in; `self` is null for static methods.
struct NativeCall {
  interp::ExecContext& ctx;
  rt::Isolate& isolate;
  rt::GcRef self;
  std::vector<rt::Value>& args;
};

using NativeFn = std::function<rt::Value(NativeCall&)>;

enum class MethodKind : std::uint8_t {
  kIr,         // bytecode body
  kNative,     // C++ body
  kProxyStub,  // transformed: transition to the relay in the other runtime
  kRelay,      // transformed: @CEntryPoint wrapper around a concrete method
};

// Filled in by the transformer for kProxyStub methods.
struct ProxyStubInfo {
  std::string relay_name;  // bridge function, e.g. "ecall_relay_Account_init"
  bool via_ecall = false;  // true in untrusted image (enters the enclave)
  std::string target_class;
  std::string target_method;
  bool is_constructor = false;
};

// Filled in by the transformer for kRelay methods.
struct RelayInfo {
  std::string target_class;
  std::string target_method;
  bool is_constructor = false;
};

// The paper names constructors after the class; internally we use the JVM
// convention so the transformer can treat them uniformly.
inline constexpr const char* kConstructorName = "<init>";

struct FieldDecl {
  std::string name;
  bool is_private = true;
};

class MethodDecl {
 public:
  MethodDecl(std::string name, std::uint32_t param_count)
      : name_(std::move(name)), param_count_(param_count) {}

  // ---- Fluent definition API ----
  MethodDecl& body(IrBody ir);
  MethodDecl& body_native(NativeFn fn);
  // Reachability hint for native bodies: "this method may invoke
  // Class.method". The analog of GraalVM's reflection configuration: the
  // points-to analysis cannot see through native code, so the developer
  // declares dynamic targets (§2.2).
  MethodDecl& calls(const std::string& cls, const std::string& method);
  MethodDecl& set_static();
  MethodDecl& set_private();
  // Code-size estimate for native bodies, used for image/TCB accounting.
  MethodDecl& code_size(std::uint64_t bytes);
  // Declares that every parameter and the return value are primitives
  // (null/bool/i32/i64/f64). The analog of a Java signature like
  // `void set(int)`: the transformer copies the flag onto the generated
  // proxy stub and relay, and the RMI layer uses it to pick the
  // fixed-layout wire fast path without inspecting arguments per call.
  MethodDecl& primitive_signature(bool v = true);
  // Declares the method safe to reorder within a batched RMI flush
  // (DESIGN.md §13): invoking it carries no ordering dependency on other
  // batched calls — e.g. pure field reads/writes on the receiver. The
  // transformer copies the flag onto the generated stub and relay; the
  // MSV009 lint flags declarations whose bodies make the claim dubious.
  MethodDecl& batch_async(bool v = true);

  // ---- Accessors ----
  const std::string& name() const { return name_; }
  std::uint32_t param_count() const { return param_count_; }
  bool is_static() const { return is_static_; }
  bool is_public() const { return is_public_; }
  bool is_constructor() const { return name_ == kConstructorName; }
  bool has_primitive_signature() const { return primitive_sig_; }
  bool is_batch_async() const { return batch_async_; }
  MethodKind kind() const { return kind_; }
  const IrBody& ir() const { return ir_; }
  const NativeFn& native() const { return native_; }
  const ProxyStubInfo& proxy() const { return proxy_; }
  const RelayInfo& relay() const { return relay_; }
  const std::vector<std::pair<std::string, std::string>>& declared_callees()
      const {
    return declared_callees_;
  }

  // Estimated compiled size, used by the image builder for TCB numbers.
  std::uint64_t code_bytes() const;

  // ---- Transformer interface ----
  void make_proxy_stub(ProxyStubInfo info);
  void set_relay(RelayInfo info);

 private:
  std::string name_;
  std::uint32_t param_count_;
  bool is_static_ = false;
  bool is_public_ = true;
  bool primitive_sig_ = false;
  bool batch_async_ = false;
  MethodKind kind_ = MethodKind::kIr;
  IrBody ir_;
  NativeFn native_;
  std::uint64_t native_code_bytes_ = 256;
  std::vector<std::pair<std::string, std::string>> declared_callees_;
  ProxyStubInfo proxy_;
  RelayInfo relay_;
};

class ClassDecl {
 public:
  ClassDecl(std::string name, Annotation annotation)
      : name_(std::move(name)), annotation_(annotation) {}

  const std::string& name() const { return name_; }
  Annotation annotation() const { return annotation_; }
  bool is_proxy() const { return is_proxy_; }
  void mark_proxy() { is_proxy_ = true; }
  // Optimizer interface (xform::apply_partition_plan): re-partitioning
  // rewrites the annotation before the model is transformed and woven.
  void set_annotation(Annotation a) { annotation_ = a; }

  FieldDecl& add_field(const std::string& name, bool is_private = true);
  MethodDecl& add_constructor(std::uint32_t param_count);
  MethodDecl& add_method(const std::string& name, std::uint32_t param_count);
  MethodDecl& add_static_method(const std::string& name,
                                std::uint32_t param_count);

  const std::vector<FieldDecl>& fields() const { return fields_; }
  std::vector<FieldDecl>& fields() { return fields_; }
  // Index of a field by name, -1 if absent.
  std::int32_t field_index(const std::string& name) const;

  const std::deque<MethodDecl>& methods() const { return methods_; }
  std::deque<MethodDecl>& methods() { return methods_; }
  const MethodDecl* find_method(const std::string& name) const;
  MethodDecl* find_method(const std::string& name);

 private:
  std::string name_;
  Annotation annotation_;
  bool is_proxy_ = false;
  std::vector<FieldDecl> fields_;
  std::deque<MethodDecl> methods_;  // deque: references stay valid
};

// A set of classes forming one application (or one transformed image
// input). Copyable: the transformer clones the model to build the trusted
// and untrusted variants.
class AppModel {
 public:
  ClassDecl& add_class(const std::string& name,
                       Annotation annotation = Annotation::kNeutral);

  const ClassDecl* find_class(const std::string& name) const;
  ClassDecl* find_class(const std::string& name);
  // Like find_class but throws ConfigError when absent.
  const ClassDecl& cls(const std::string& name) const;
  ClassDecl& cls(const std::string& name);

  const std::deque<ClassDecl>& classes() const { return classes_; }
  std::deque<ClassDecl>& classes() { return classes_; }

  // The class whose static `main` is the program entry point.
  void set_main_class(const std::string& name) { main_class_ = name; }
  const std::string& main_class() const { return main_class_; }

  // Checks the model's well-formedness and the paper's programming-model
  // assumptions; throws ConfigError on violation:
  //  * unique class names; unique method names per class (no overloading);
  //  * @Trusted/@Untrusted classes are properly encapsulated — all fields
  //    private (§5.1 "Assumptions");
  //  * the main class exists, has a static public `main`, and is not
  //    @Trusted (SGX applications begin in the untrusted runtime, §5.3).
  void validate() const;

 private:
  std::deque<ClassDecl> classes_;
  std::string main_class_;
};

}  // namespace msv::model
