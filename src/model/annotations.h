// The partitioning language (§5.1).
//
// Montsalvat annotates whole classes: @Trusted classes are instantiated and
// executed only inside the enclave, @Untrusted classes only outside, and
// unannotated classes are Neutral — copyable utility classes that exist on
// both sides and may evolve independently.
#pragma once

namespace msv::model {

enum class Annotation {
  kNeutral,    // default: included in both images, instances are copies
  kTrusted,    // @Trusted: lives in the enclave heap, methods run inside
  kUntrusted,  // @Untrusted: lives in the untrusted heap, methods run outside
};

inline const char* annotation_name(Annotation a) {
  switch (a) {
    case Annotation::kNeutral:
      return "@Neutral";
    case Annotation::kTrusted:
      return "@Trusted";
    case Annotation::kUntrusted:
      return "@Untrusted";
  }
  return "?";
}

}  // namespace msv::model
