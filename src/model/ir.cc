#include "model/ir.h"

#include "support/error.h"

namespace msv::model {

const char* op_name(Op op) {
  switch (op) {
    case Op::kNop:
      return "nop";
    case Op::kConst:
      return "const";
    case Op::kLoadLocal:
      return "load_local";
    case Op::kStoreLocal:
      return "store_local";
    case Op::kGetField:
      return "get_field";
    case Op::kPutField:
      return "put_field";
    case Op::kNew:
      return "new";
    case Op::kCall:
      return "call";
    case Op::kIntrinsic:
      return "intrinsic";
    case Op::kAdd:
      return "add";
    case Op::kSub:
      return "sub";
    case Op::kMul:
      return "mul";
    case Op::kDiv:
      return "div";
    case Op::kLt:
      return "lt";
    case Op::kLe:
      return "le";
    case Op::kEq:
      return "eq";
    case Op::kJump:
      return "jump";
    case Op::kBranchFalse:
      return "branch_false";
    case Op::kPop:
      return "pop";
    case Op::kDup:
      return "dup";
    case Op::kReturn:
      return "return";
    case Op::kReturnVoid:
      return "return_void";
  }
  return "?";
}

std::int32_t stack_pops(const Instr& instr) {
  switch (instr.op) {
    case Op::kNop:
    case Op::kConst:
    case Op::kLoadLocal:
    case Op::kJump:
    case Op::kReturnVoid:
      return 0;
    case Op::kStoreLocal:
    case Op::kGetField:
    case Op::kBranchFalse:
    case Op::kPop:
    case Op::kReturn:
      return 1;
    case Op::kDup:
      return 1;  // peeks one, pushes two
    case Op::kPutField:
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kLt:
    case Op::kLe:
    case Op::kEq:
      return 2;
    case Op::kNew:
    case Op::kIntrinsic:
      return instr.b;
    case Op::kCall:
      return instr.b + 1;  // arguments plus the receiver
  }
  return 0;
}

std::int32_t stack_pushes(const Instr& instr) {
  switch (instr.op) {
    case Op::kNop:
    case Op::kStoreLocal:
    case Op::kPutField:
    case Op::kJump:
    case Op::kBranchFalse:
    case Op::kPop:
    case Op::kReturn:
    case Op::kReturnVoid:
      return 0;
    case Op::kConst:
    case Op::kLoadLocal:
    case Op::kGetField:
    case Op::kNew:
    case Op::kCall:
    case Op::kIntrinsic:
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kLt:
    case Op::kLe:
    case Op::kEq:
      return 1;
    case Op::kDup:
      return 2;
  }
  return 0;
}

std::int32_t IrBuilder::intern_name(const std::string& name) {
  for (std::size_t i = 0; i < body_.names.size(); ++i) {
    if (body_.names[i] == name) return static_cast<std::int32_t>(i);
  }
  body_.names.push_back(name);
  return static_cast<std::int32_t>(body_.names.size() - 1);
}

IrBuilder& IrBuilder::const_val(rt::Value v) {
  body_.consts.push_back(std::move(v));
  body_.code.push_back(
      {Op::kConst, static_cast<std::int32_t>(body_.consts.size() - 1), 0});
  return *this;
}

IrBuilder& IrBuilder::load_local(std::int32_t idx) {
  body_.code.push_back({Op::kLoadLocal, idx, 0});
  return *this;
}

IrBuilder& IrBuilder::store_local(std::int32_t idx) {
  body_.code.push_back({Op::kStoreLocal, idx, 0});
  return *this;
}

IrBuilder& IrBuilder::get_field(std::int32_t field_idx) {
  body_.code.push_back({Op::kGetField, field_idx, 0});
  return *this;
}

IrBuilder& IrBuilder::put_field(std::int32_t field_idx) {
  body_.code.push_back({Op::kPutField, field_idx, 0});
  return *this;
}

IrBuilder& IrBuilder::new_object(const std::string& class_name,
                                 std::int32_t argc) {
  body_.code.push_back({Op::kNew, intern_name(class_name), argc});
  return *this;
}

IrBuilder& IrBuilder::call(const std::string& method, std::int32_t argc) {
  body_.code.push_back({Op::kCall, intern_name(method), argc});
  return *this;
}

IrBuilder& IrBuilder::intrinsic(const std::string& name, std::int32_t argc) {
  body_.code.push_back({Op::kIntrinsic, intern_name(name), argc});
  return *this;
}

IrBuilder& IrBuilder::add() {
  body_.code.push_back({Op::kAdd, 0, 0});
  return *this;
}
IrBuilder& IrBuilder::sub() {
  body_.code.push_back({Op::kSub, 0, 0});
  return *this;
}
IrBuilder& IrBuilder::mul() {
  body_.code.push_back({Op::kMul, 0, 0});
  return *this;
}
IrBuilder& IrBuilder::div() {
  body_.code.push_back({Op::kDiv, 0, 0});
  return *this;
}
IrBuilder& IrBuilder::lt() {
  body_.code.push_back({Op::kLt, 0, 0});
  return *this;
}
IrBuilder& IrBuilder::le() {
  body_.code.push_back({Op::kLe, 0, 0});
  return *this;
}
IrBuilder& IrBuilder::eq() {
  body_.code.push_back({Op::kEq, 0, 0});
  return *this;
}
IrBuilder& IrBuilder::pop() {
  body_.code.push_back({Op::kPop, 0, 0});
  return *this;
}
IrBuilder& IrBuilder::dup() {
  body_.code.push_back({Op::kDup, 0, 0});
  return *this;
}
IrBuilder& IrBuilder::ret() {
  body_.code.push_back({Op::kReturn, 0, 0});
  return *this;
}
IrBuilder& IrBuilder::ret_void() {
  body_.code.push_back({Op::kReturnVoid, 0, 0});
  return *this;
}

std::int32_t IrBuilder::new_label() {
  label_pcs_.push_back(-1);
  return static_cast<std::int32_t>(label_pcs_.size() - 1);
}

IrBuilder& IrBuilder::bind(std::int32_t label) {
  MSV_CHECK_MSG(label >= 0 &&
                    label < static_cast<std::int32_t>(label_pcs_.size()),
                "unknown label");
  MSV_CHECK_MSG(label_pcs_[label] == -1, "label bound twice");
  label_pcs_[label] = static_cast<std::int32_t>(body_.code.size());
  return *this;
}

IrBuilder& IrBuilder::jump(std::int32_t label) {
  fixups_.emplace_back(body_.code.size(), label);
  body_.code.push_back({Op::kJump, -1, 0});
  return *this;
}

IrBuilder& IrBuilder::branch_false(std::int32_t label) {
  fixups_.emplace_back(body_.code.size(), label);
  body_.code.push_back({Op::kBranchFalse, -1, 0});
  return *this;
}

IrBuilder& IrBuilder::locals(std::uint32_t count) {
  body_.local_count = count;
  return *this;
}

IrBody IrBuilder::build() {
  for (const auto& [pc, label] : fixups_) {
    MSV_CHECK_MSG(label_pcs_[label] != -1, "unbound label in IR");
    body_.code[pc].a = label_pcs_[label];
  }
  fixups_.clear();
  return body_;
}

}  // namespace msv::model
