// Load harness for the request server: open-loop (Poisson arrivals) and
// closed-loop (think-time clients) tenant workloads, with percentile
// latency reporting. Backs bench/fig_server and the serving-layer tests.
//
// Determinism: every generator task owns a private Rng seeded from
// (spec.seed, tenant index), and consumes it in program order within that
// task — the sampled arrival process is a pure function of the spec, not
// of scheduler interleaving. Two runs of the same spec produce identical
// cycle totals and identical latency vectors (fig_server asserts this).
//
// Coordinated omission: open-loop latencies are measured from a request's
// *intended* arrival instant (precomputed from the Poisson process), not
// from when the generator got around to submitting it, so backlog delay
// is charged to the requests that suffered it.
#pragma once

#include <cstdint>
#include <vector>

#include "server/server.h"
#include "support/stats.h"

namespace msv::server {

struct OpenLoopSpec {
  std::uint64_t requests_per_tenant = 200;
  // Mean of the exponential interarrival gap, per tenant, in cycles.
  Cycles mean_interarrival_cycles = 400'000;
  std::uint64_t seed = 42;
  double read_fraction = 0.5;  // getBalance share; rest are deposits
  // Inject a GC on `gc_tenant` every `gc_every` submissions (0 = never).
  std::uint64_t gc_every = 0;
  std::uint32_t gc_tenant = 0;
};

struct ClosedLoopSpec {
  std::uint32_t clients_per_tenant = 4;
  std::uint64_t requests_per_client = 50;
  Cycles mean_think_cycles = 100'000;
  std::uint64_t seed = 42;
  double read_fraction = 0.5;
};

struct LatencySummary {
  std::uint64_t count = 0;
  double mean_us = 0;
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
  double max_us = 0;
};

// Exact-integer digests make determinism checks robust: two runs of the
// same spec must agree on every field bit-for-bit.
struct TenantReport {
  LatencySummary latency;
  TenantStats stats;
  Cycles latency_cycle_sum = 0;
};

struct HarnessReport {
  std::vector<TenantReport> tenants;
  LatencySummary aggregate;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t failed = 0;   // finished with an error; no latency sample
  std::uint64_t retries = 0;  // recoverable faults absorbed by retries
  Cycles final_clock = 0;
  Cycles latency_cycle_sum = 0;
  double elapsed_seconds = 0;
  double throughput_rps = 0;  // completed / elapsed
};

LatencySummary summarize_latencies(const std::vector<Cycles>& lat, double hz);

class LoadHarness {
 public:
  explicit LoadHarness(RequestServer& server)
      : server_(server), env_(server.app().env()) {}

  // Starts the server if needed, runs the workload to completion
  // (including draining queued requests) and reports. Latency vectors on
  // the server accumulate across runs; use a fresh server per measured
  // configuration.
  HarnessReport run_open_loop(const OpenLoopSpec& spec);
  HarnessReport run_closed_loop(const ClosedLoopSpec& spec);

 private:
  HarnessReport report() const;

  RequestServer& server_;
  Env& env_;
};

}  // namespace msv::server
