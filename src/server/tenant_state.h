// Per-tenant session + sealed-checkpoint state (DESIGN.md §12/§14).
//
// Factored out of RequestServer::Tenant so every consumer of the
// checkpoint primitive — the single-enclave request server, the fleet's
// shards and the replica streams between them — speaks exactly one
// checkpoint format. The payload layout and the IV-seed formula are
// load-bearing: fig_faults' two-run determinism check compares sealed
// bytes produced before and after this refactor, and a fleet promotion
// unseals on a *different* enclave than the one that sealed (legal
// because both enclaves run the same measured image, so the sealing KDF
// derives the same key — sgx/sealing.h).
//
// Payload (plaintext inside the sealed blob), little-endian:
//   u32     tenant id   (splice detection: unseal checks it back)
//   varint  checkpoint sequence number (monotonic per tenant)
//   i32     account balance
// IV seed: (seq << 8) | tenant — unique per (tenant, seq) pair.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "interp/exec_context.h"
#include "sgx/sealing.h"

namespace msv::server {

struct TenantState {
  // Untrusted-side proxy of the tenant's session object ("Account").
  rt::Value session;
  // Enclave epoch `session` was minted under. A recovery pass is complete
  // only when this matches the serving enclave's epoch; a fault striking
  // mid-restore leaves the rest stale and the next pass resumes there.
  std::uint64_t session_epoch = 0;
  // Latest sealed checkpoint exactly as it sits in untrusted storage (and
  // so exactly what a corruption fault flips bits in). Empty = none.
  std::vector<std::uint8_t> checkpoint;
  std::uint64_t checkpoint_seq = 0;
  std::uint32_t since_checkpoint = 0;

  bool has_checkpoint() const { return !checkpoint.empty(); }

  // Seals `balance` as this tenant's next checkpoint against `enclave`'s
  // identity, stores the serialized blob and bumps checkpoint_seq. The
  // returned reference is the stored untrusted-storage bytes — what a
  // replication stream forwards verbatim. No-throw on the happy path;
  // nothing is mutated if sealing throws.
  const std::vector<std::uint8_t>& seal_checkpoint(
      const sgx::SealingPlatform& sealer, const sgx::Enclave& enclave,
      std::uint32_t tenant, std::int32_t balance);

  // Unseals the stored checkpoint against `enclave` and returns the
  // balance, updating checkpoint_seq. Empty optional when no checkpoint
  // is stored. Throws SecurityFault on a tampered or spliced blob — the
  // caller decides the fallback (count it, clear, fresh session).
  std::optional<std::int32_t> unseal_checkpoint(
      const sgx::SealingPlatform& sealer, const sgx::Enclave& enclave,
      std::uint32_t tenant);

  // The plaintext payload codec, exposed for byte-format regression tests.
  static std::vector<std::uint8_t> encode_payload(std::uint32_t tenant,
                                                  std::uint64_t seq,
                                                  std::int32_t balance);
  struct Payload {
    std::uint64_t seq = 0;
    std::int32_t balance = 0;
  };
  static Payload decode_payload(const std::vector<std::uint8_t>& plain,
                                std::uint32_t expect_tenant);
};

}  // namespace msv::server
