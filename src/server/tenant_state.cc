#include "server/tenant_state.h"

#include "support/bytes.h"
#include "support/error.h"

namespace msv::server {

std::vector<std::uint8_t> TenantState::encode_payload(std::uint32_t tenant,
                                                      std::uint64_t seq,
                                                      std::int32_t balance) {
  ByteBuffer payload;
  payload.put_u32(tenant);
  payload.put_varint(seq);
  payload.put_i32(balance);
  return payload.take();
}

TenantState::Payload TenantState::decode_payload(
    const std::vector<std::uint8_t>& plain, std::uint32_t expect_tenant) {
  ByteReader r(plain.data(), plain.size());
  if (r.get_u32() != expect_tenant) {
    throw SecurityFault("checkpoint sealed for a different tenant");
  }
  Payload p;
  p.seq = r.get_varint();
  p.balance = r.get_i32();
  return p;
}

const std::vector<std::uint8_t>& TenantState::seal_checkpoint(
    const sgx::SealingPlatform& sealer, const sgx::Enclave& enclave,
    std::uint32_t tenant, std::int32_t balance) {
  const std::uint64_t seq = checkpoint_seq + 1;
  const sgx::SealedBlob blob =
      sealer.seal(enclave, encode_payload(tenant, seq, balance),
                  /*iv_seed=*/(seq << 8) | tenant);
  checkpoint = blob.serialize();
  checkpoint_seq = seq;
  return checkpoint;
}

std::optional<std::int32_t> TenantState::unseal_checkpoint(
    const sgx::SealingPlatform& sealer, const sgx::Enclave& enclave,
    std::uint32_t tenant) {
  if (checkpoint.empty()) return std::nullopt;
  const sgx::SealedBlob blob = sgx::SealedBlob::deserialize(checkpoint);
  const std::vector<std::uint8_t> plain = sealer.unseal(enclave, blob);
  const Payload p = decode_payload(plain, tenant);
  checkpoint_seq = p.seq;
  return p.balance;
}

}  // namespace msv::server
