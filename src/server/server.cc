#include "server/server.h"

#include <algorithm>

#include "faults/injector.h"
#include "support/error.h"
#include "telemetry/slo.h"

namespace msv::server {

RequestServer::RequestServer(sched::Scheduler& sched,
                             core::MultiIsolateApp& app, ServerConfig config)
    : env_(app.env()),
      sched_(sched),
      app_(app),
      config_(config),
      sealer_(config.recovery.platform_secret),
      recovery_done_(sched) {
  MSV_CHECK_MSG(config_.max_queue_depth > 0, "queue depth must be positive");
  MSV_CHECK_MSG(config_.workers_per_tenant > 0, "need at least one worker");
  MSV_CHECK_MSG(config_.recovery.max_attempts > 0,
                "retry budget needs at least one attempt");
  MSV_CHECK_MSG(config_.recovery.backoff_multiplier >= 1.0,
                "backoff must not shrink");
  for (std::uint32_t t = 0; t < app_.isolate_count(); ++t) {
    tenants_.push_back(std::make_unique<Tenant>(sched_));
  }
}

RequestServer::~RequestServer() {
  try {
    stop();
  } catch (...) {
    // Destructor teardown of a half-wedged simulation must not terminate.
  }
}

RequestServer::Tenant& RequestServer::tenant(std::uint32_t t) {
  MSV_CHECK_MSG(t < tenants_.size(), "no such tenant");
  return *tenants_[t];
}

const RequestServer::Tenant& RequestServer::tenant(std::uint32_t t) const {
  MSV_CHECK_MSG(t < tenants_.size(), "no such tenant");
  return *tenants_[t];
}

void RequestServer::start() {
  if (started_) return;
  MSV_CHECK_MSG(!sched_.in_task(), "start() must be called outside tasks");
  app_.bridge().attach_scheduler(sched_);
  if (config_.switchless) {
    // Flag the relay transitions switchless by prefix, the way
    // PartitionedApp walks its EDL spec, then bring up the rings.
    const auto& names = app_.bridge().call_names();
    for (sgx::CallId id = 0; id < names.size(); ++id) {
      if (names[id].rfind("ecall_relay_", 0) == 0 ||
          names[id].rfind("ocall_relay_", 0) == 0) {
        app_.bridge().set_switchless(id, true);
      }
    }
    app_.bridge().start_switchless_workers(config_.ecall_ring,
                                           config_.ocall_ring);
  }
  for (std::uint32_t t = 0; t < tenants_.size(); ++t) {
    tenants_[t]->state.session = app_.construct_in(
        t, "Account",
        {rt::Value("tenant-" + std::to_string(t)),
         rt::Value(config_.initial_balance)});
    tenants_[t]->state.session_epoch = app_.enclave().epoch();
    if (env_.telemetry.metrics_enabled()) {
      // Handle resolved once; workers record with a pointer poke.
      tenants_[t]->latency_hist = &env_.telemetry.metrics().histogram(
          "msv_server_request_latency_cycles",
          {{"tenant", std::to_string(t)}});
    }
  }
  for (std::uint32_t t = 0; t < tenants_.size(); ++t) {
    for (std::uint32_t w = 0; w < config_.workers_per_tenant; ++w) {
      sched_.spawn_daemon(
          "srv-t" + std::to_string(t) + "-w" + std::to_string(w),
          [this, t] { worker_loop(t); });
    }
  }
  started_ = true;
}

void RequestServer::stop() {
  if (!started_) return;
  MSV_CHECK_MSG(!sched_.in_task(), "stop() must be called outside tasks");
  stopping_ = true;
  for (auto& ten : tenants_) ten->work.notify_all();
  // Workers drain their queues, observe the stop flag and retire; run()
  // returns once only parked daemons (none of ours) remain.
  sched_.run();
  if (app_.bridge().switchless_workers_running()) {
    app_.bridge().stop_switchless_workers();
  }
  stopping_ = false;
  started_ = false;
}

void RequestServer::enqueue(Tenant& ten, Pending* p) {
  ten.queue.push_back(p);
  ten.stats.max_queue_depth =
      std::max(ten.stats.max_queue_depth, ten.queue.size());
  ++ten.stats.accepted;
  ten.work.notify_one();
}

bool RequestServer::submit(std::uint32_t tenant_id, Request r) {
  MSV_CHECK_MSG(started_, "server not started");
  Tenant& ten = tenant(tenant_id);
  // Mid-recovery the enclave cannot serve anyway: shed at admission so the
  // backlog does not grow against a stalled service (degradation ladder:
  // retry -> recover -> shed).
  if (config_.recovery.enabled && recovering_) {
    ++ten.stats.shed;
    ++ten.stats.shed_recovery;
    if (slo_ != nullptr) slo_->record_shed(tenant_id);
    return false;
  }
  if (queue_full(ten)) {
    if (config_.shed_on_full) {
      ++ten.stats.shed;
      if (slo_ != nullptr) slo_->record_shed(tenant_id);
      return false;
    }
    MSV_CHECK_MSG(sched_.in_task(),
                  "blocking admission requires a scheduler task");
    while (queue_full(ten)) ten.space.wait();
  }
  if (r.arrival == 0) r.arrival = env_.clock.now();
  auto* p = new Pending;
  p->req = r;
  p->owned = true;
  if (env_.telemetry.tracer().enabled(telemetry::Category::kServer)) {
    p->span = env_.telemetry.tracer().begin_detached(
        telemetry::Category::kServer, env_.telemetry.names().request,
        static_cast<std::int32_t>(tenant_id));
  }
  enqueue(ten, p);
  return true;
}

std::int64_t RequestServer::submit_and_wait(std::uint32_t tenant_id,
                                            Request r) {
  MSV_CHECK_MSG(started_, "server not started");
  MSV_CHECK_MSG(sched_.in_task(), "submit_and_wait must run inside a task");
  Tenant& ten = tenant(tenant_id);
  // Closed-loop clients are synchronous; they block for space, never shed.
  while (queue_full(ten)) ten.space.wait();
  if (r.arrival == 0) r.arrival = env_.clock.now();
  Pending p;
  p.req = r;
  p.waiter = sched_.current();
  if (env_.telemetry.tracer().enabled(telemetry::Category::kServer)) {
    p.span = env_.telemetry.tracer().begin_detached(
        telemetry::Category::kServer, env_.telemetry.names().request,
        static_cast<std::int32_t>(tenant_id));
  }
  enqueue(ten, &p);
  try {
    while (!p.done) sched_.suspend();
  } catch (...) {
    // Cancellation while queued: withdraw the stack descriptor. Once a
    // worker has popped it, the worker is guaranteed never to touch it
    // again on a cancelled timeline (every suspension point throws).
    auto it = std::find(ten.queue.begin(), ten.queue.end(), &p);
    if (it != ten.queue.end()) ten.queue.erase(it);
    throw;
  }
  if (p.error) std::rethrow_exception(p.error);
  return p.result;
}

void RequestServer::worker_loop(std::uint32_t t) {
  Tenant& ten = *tenants_[t];
  for (;;) {
    while (ten.queue.empty()) {
      if (stopping_) return;
      ten.work.wait();
    }
    // Coalescing: a worker waking to a backlog drains up to coalesce_max
    // requests and serves them in one batched transition. A backlog of one
    // (or coalesce_max = 1) takes the single-request path below unchanged,
    // so the uncoalesced server's timeline is preserved exactly.
    if (config_.coalesce_max > 1 && ten.queue.size() > 1) {
      std::vector<Pending*> batch;
      while (!ten.queue.empty() && batch.size() < config_.coalesce_max) {
        batch.push_back(ten.queue.front());
        ten.queue.pop_front();
        ten.space.notify_one();
        ++ten.in_flight;
      }
      execute_batch(t, ten, batch);
      continue;
    }
    Pending* p = ten.queue.front();
    ten.queue.pop_front();
    ten.space.notify_one();
    ++ten.in_flight;
    {
      // Service span, adopted under the request's detached span so the
      // whole chain — request -> handle -> rmi -> ecall — is one tree.
      telemetry::AdoptedSpanScope handle(
          env_.telemetry.tracer(), p->span.ctx, telemetry::Category::kServer,
          env_.telemetry.names().server_handle, static_cast<std::int32_t>(t));
      // GC gate: this tenant's isolate is paused while its heap is
      // collected; the request waits out the pause. Other tenants' workers
      // never pass through this gate (§2.2 isolate independence).
      while (ten.gc_active) {
        const Cycles gate_start = env_.clock.now();
        ten.gc_done.wait();
        ten.stats.gc_gate_wait_cycles += env_.clock.now() - gate_start;
      }
      try {
        p->result = execute_with_retry(t, ten, *p);
        maybe_checkpoint(t, ten);
      } catch (const sched::TaskCancelled&) {
        // Teardown: unwind without touching the descriptor — its owner (a
        // cancelled submit_and_wait frame) may already be gone.
        throw;
      } catch (...) {
        p->error = std::current_exception();
      }
    }
    finish_request(t, ten, p);
  }
}

void RequestServer::finish_request(std::uint32_t t, Tenant& ten, Pending* p) {
  const Cycles done_at = env_.clock.now();
  env_.telemetry.tracer().end_detached(p->span);
  if (p->error) {
    // Failed requests are availability losses, not latency samples.
    ++ten.stats.failed;
    if (slo_ != nullptr) slo_->record_error(t);
  } else {
    if (ten.latency_hist != nullptr) {
      ten.latency_hist->record(done_at - p->req.arrival);
    }
    if (slo_ != nullptr) slo_->record_latency(t, done_at - p->req.arrival);
    ten.latencies.push_back(done_at - p->req.arrival);
    ten.completion_times.push_back(done_at);
    ++ten.stats.completed;
  }
  --ten.in_flight;
  p->done = true;
  if (p->waiter != sched::kNoTask) sched_.wake(p->waiter);
  if (p->owned) delete p;
}

void RequestServer::execute_batch(std::uint32_t t, Tenant& ten,
                                  std::vector<Pending*>& batch) {
  // Same GC gate as the single path, taken once for the swing: the whole
  // batch executes inside this tenant's un-paused window.
  while (ten.gc_active) {
    const Cycles gate_start = env_.clock.now();
    ten.gc_done.wait();
    ten.stats.gc_gate_wait_cycles += env_.clock.now() - gate_start;
  }
  bool batched = false;
  try {
    // Recovery runs inside the try: a fault during restart drops to the
    // per-request fallback below, which owns the retry budget.
    if (config_.recovery.enabled) ensure_recovered();
    const model::ClassDecl& cls =
        app_.untrusted_context().class_of(ten.state.session.as_ref());
    std::vector<rmi::MultiIsolateRuntime::BatchCall> calls(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const Pending& p = *batch[i];
      calls[i].proxy = ten.state.session.as_ref();
      if (p.req.op == RequestOp::kDeposit) {
        calls[i].stub = cls.find_method("updateBalance");
        calls[i].args = {rt::Value(p.req.amount)};
      } else {
        calls[i].stub = cls.find_method("getBalance");
      }
    }
    const std::vector<rmi::MultiIsolateRuntime::BatchOutcome> outcomes =
        app_.rmi().invoke_batch(calls);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      Pending* p = batch[i];
      if (outcomes[i].ok) {
        p->result = outcomes[i].value.type() == rt::ValueType::kI32
                        ? outcomes[i].value.as_i32()
                        : 0;
        maybe_checkpoint(t, ten);
      } else {
        // Per-call application fault, surfaced in-band by the batch
        // dispatcher: fail this request only.
        p->error =
            std::make_exception_ptr(RuntimeFault(outcomes[i].error));
      }
      finish_request(t, ten, p);
    }
    batched = true;
  } catch (const sched::TaskCancelled&) {
    // Teardown: unwind without touching the descriptors (see worker_loop).
    throw;
  } catch (const sgx::EnclaveLostError&) {
  } catch (const rmi::StaleProxyError&) {
  } catch (const sgx::TransitionError&) {
  }
  if (batched) return;
  // The whole batch aborted before any call executed (lost enclave, stale
  // session, transient transition fault — the up-front epoch fence in
  // invoke_batch guarantees no partial execution). Re-run each request
  // through the ordinary retry ladder, which recovers the enclave and
  // applies the per-request backoff budget; with recovery disabled the
  // fault surfaces as each request's error, as in the single path.
  for (Pending* p : batch) {
    try {
      p->result = execute_with_retry(t, ten, *p);
      maybe_checkpoint(t, ten);
    } catch (const sched::TaskCancelled&) {
      throw;
    } catch (...) {
      p->error = std::current_exception();
    }
    finish_request(t, ten, p);
  }
}

std::int64_t RequestServer::execute_with_retry(std::uint32_t t, Tenant& ten,
                                               Pending& p) {
  const RecoveryConfig& rc = config_.recovery;
  auto& u = app_.untrusted_context();
  const Cycles deadline = p.req.arrival + rc.request_deadline_cycles;
  Cycles backoff = rc.initial_backoff_cycles;
  std::uint32_t attempt = 0;
  for (;;) {
    try {
      // Recovery runs inside the try on purpose: a fault during restart
      // or restore consumes this attempt and re-enters the backoff path,
      // instead of escaping the loop mid-recovery.
      if (rc.enabled) ensure_recovered();
      const rt::Value result =
          p.req.op == RequestOp::kDeposit
              ? u.invoke(ten.state.session.as_ref(), "updateBalance",
                         {rt::Value(p.req.amount)})
              : u.invoke(ten.state.session.as_ref(), "getBalance", {});
      return result.type() == rt::ValueType::kI32 ? result.as_i32() : 0;
    } catch (const sgx::EnclaveLostError&) {
      if (!rc.enabled) throw;
    } catch (const rmi::StaleProxyError&) {
      if (!rc.enabled) throw;
    } catch (const sgx::TransitionError&) {
      if (!rc.enabled) throw;
    }
    ++attempt;
    ++ten.stats.retries;
    if (attempt >= rc.max_attempts) {
      throw RetriesExhaustedError(
          "request failed after " + std::to_string(attempt) +
          " attempts (tenant " + std::to_string(t) + ")");
    }
    if (env_.clock.now() + backoff > deadline) {
      throw RetriesExhaustedError(
          "retry backoff would exceed the request deadline (tenant " +
          std::to_string(t) + ", attempt " + std::to_string(attempt) + ")");
    }
    {
      // The retry span covers the backoff sleep: its duration in the
      // trace *is* the wait this attempt added to the request.
      telemetry::SpanScope span(
          env_.telemetry.tracer(), telemetry::Category::kFault,
          env_.telemetry.names().rmi_retry, static_cast<std::int32_t>(t));
      sched_.sleep_for(backoff);
    }
    backoff = std::min(
        static_cast<Cycles>(static_cast<double>(backoff) *
                            rc.backoff_multiplier),
        rc.max_backoff_cycles);
  }
}

void RequestServer::ensure_recovered() {
  // Parked workers re-check on wake: the recovery they waited out may
  // itself have been interrupted by another loss.
  while (recovering_) recovery_done_.wait();
  const bool lost = app_.enclave().state() == sgx::EnclaveState::kLost;
  bool stale = false;
  for (const auto& ten : tenants_) {
    if (ten->state.session_epoch != app_.enclave().epoch()) {
      stale = true;
      break;
    }
  }
  if (!lost && !stale) return;
  recovering_ = true;
  try {
    if (app_.enclave().state() == sgx::EnclaveState::kLost) {
      app_.restart_enclave();
      ++restarts_;
    }
    // Restore only the tenants still behind — resuming a restore that a
    // second fault interrupted picks up where it left off.
    for (std::uint32_t t = 0; t < tenant_count(); ++t) {
      if (tenants_[t]->state.session_epoch != app_.enclave().epoch()) {
        restore_tenant(t);
      }
    }
  } catch (...) {
    recovering_ = false;
    recovery_done_.notify_all();
    throw;
  }
  recovering_ = false;
  recovery_done_.notify_all();
}

void RequestServer::restore_tenant(std::uint32_t t) {
  Tenant& ten = *tenants_[t];
  std::int32_t balance = config_.initial_balance;
  try {
    if (const auto restored =
            ten.state.unseal_checkpoint(sealer_, app_.enclave(), t)) {
      balance = *restored;
      ++ten.stats.restored;
    }
  } catch (const SecurityFault&) {
    // Tampered or spliced blob: refuse it, count it, and fall back to a
    // fresh session — corruption must never fail the whole recovery.
    ++ten.stats.checkpoint_corrupt;
    ten.state.checkpoint.clear();
    balance = config_.initial_balance;
  }
  ten.state.session = app_.construct_in(
      t, "Account",
      {rt::Value("tenant-" + std::to_string(t)), rt::Value(balance)});
  ten.state.session_epoch = app_.enclave().epoch();
}

void RequestServer::maybe_checkpoint(std::uint32_t t, Tenant& ten) {
  const RecoveryConfig& rc = config_.recovery;
  if (!rc.enabled || rc.checkpoint_every == 0) return;
  if (++ten.state.since_checkpoint < rc.checkpoint_every) return;
  ten.state.since_checkpoint = 0;
  try {
    const rt::Value bal = app_.untrusted_context().invoke(
        ten.state.session.as_ref(), "getBalance", {});
    ten.state.seal_checkpoint(sealer_, app_.enclave(), t, bal.as_i32());
    ++ten.stats.checkpoints;
  } catch (const sched::TaskCancelled&) {
    throw;
  } catch (...) {
    // A fault mid-checkpoint loses this checkpoint, not the request: the
    // previous sealed blob stays valid and the next interval retries.
    // The rollback applies even when the balance read (not the seal)
    // faulted — the next successful checkpoint reuses this seq, which is
    // the sequence the pre-TenantState fig_faults runs sealed.
    --ten.state.checkpoint_seq;
  }
}

void RequestServer::attach_fault_injector(faults::FaultInjector& injector) {
  injector.set_blob_corrupter([this](Rng& rng) {
    std::vector<std::uint32_t> with;
    for (std::uint32_t t = 0; t < tenant_count(); ++t) {
      if (tenants_[t]->state.has_checkpoint()) with.push_back(t);
    }
    if (with.empty()) return false;
    std::vector<std::uint8_t>& bytes =
        tenants_[with[rng.next_below(with.size())]]->state.checkpoint;
    bytes[rng.next_below(bytes.size())] ^=
        static_cast<std::uint8_t>(1u << rng.next_below(8));
    return true;
  });
}

void RequestServer::collect_tenant_async(std::uint32_t tenant_id) {
  MSV_CHECK_MSG(started_, "server not started");
  MSV_CHECK_MSG(tenant_id < tenants_.size(), "no such tenant");
  sched_.spawn("gc-tenant-" + std::to_string(tenant_id), [this, tenant_id] {
    Tenant& ten = *tenants_[tenant_id];
    // One collection of a heap at a time; a second request queues behind
    // the gate like any worker.
    while (ten.gc_active) ten.gc_done.wait();
    // Realized pause window of this tenant (the zero-duration gc.collect
    // phase markers from the detached collection sit inside it).
    telemetry::SpanScope span(env_.telemetry.tracer(),
                              telemetry::Category::kGc,
                              env_.telemetry.names().gc_pause,
                              static_cast<std::int32_t>(tenant_id));
    ten.gc_active = true;
    const Cycles pause_start = env_.clock.now();
    // The collection itself runs on the §5.5 GC helper thread — its own
    // core — so its cycles never advance the shared serving timeline;
    // they are realized as a sleep (pause) of this isolate only.
    const Cycles cost =
        env_.clock.measure_detached([&] { app_.collect_isolate(tenant_id); });
    sched_.sleep_for(cost);
    ten.gc_active = false;
    ++ten.stats.gc_runs;
    ten.stats.gc_pause_cycles += cost;
    ten.gc_windows.emplace_back(pause_start, env_.clock.now());
    ten.gc_done.notify_all();
  });
}

std::size_t RequestServer::pending() const {
  std::size_t n = 0;
  for (const auto& ten : tenants_) n += ten->queue.size() + ten->in_flight;
  return n;
}

const TenantStats& RequestServer::tenant_stats(std::uint32_t t) const {
  return tenant(t).stats;
}

ServerStats RequestServer::stats() const {
  ServerStats s;
  for (const auto& ten : tenants_) {
    s.accepted += ten->stats.accepted;
    s.shed += ten->stats.shed;
    s.completed += ten->stats.completed;
    s.failed += ten->stats.failed;
    s.retries += ten->stats.retries;
  }
  return s;
}

const std::vector<Cycles>& RequestServer::latencies(std::uint32_t t) const {
  return tenant(t).latencies;
}

const std::vector<Cycles>& RequestServer::completion_times(
    std::uint32_t t) const {
  return tenant(t).completion_times;
}

const std::vector<std::pair<Cycles, Cycles>>& RequestServer::gc_windows(
    std::uint32_t t) const {
  return tenant(t).gc_windows;
}

}  // namespace msv::server
