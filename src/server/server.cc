#include "server/server.h"

#include <algorithm>

#include "support/error.h"

namespace msv::server {

RequestServer::RequestServer(sched::Scheduler& sched,
                             core::MultiIsolateApp& app, ServerConfig config)
    : env_(app.env()), sched_(sched), app_(app), config_(config) {
  MSV_CHECK_MSG(config_.max_queue_depth > 0, "queue depth must be positive");
  MSV_CHECK_MSG(config_.workers_per_tenant > 0, "need at least one worker");
  for (std::uint32_t t = 0; t < app_.isolate_count(); ++t) {
    tenants_.push_back(std::make_unique<Tenant>(sched_));
  }
}

RequestServer::~RequestServer() {
  try {
    stop();
  } catch (...) {
    // Destructor teardown of a half-wedged simulation must not terminate.
  }
}

RequestServer::Tenant& RequestServer::tenant(std::uint32_t t) {
  MSV_CHECK_MSG(t < tenants_.size(), "no such tenant");
  return *tenants_[t];
}

const RequestServer::Tenant& RequestServer::tenant(std::uint32_t t) const {
  MSV_CHECK_MSG(t < tenants_.size(), "no such tenant");
  return *tenants_[t];
}

void RequestServer::start() {
  if (started_) return;
  MSV_CHECK_MSG(!sched_.in_task(), "start() must be called outside tasks");
  app_.bridge().attach_scheduler(sched_);
  if (config_.switchless) {
    // Flag the relay transitions switchless by prefix, the way
    // PartitionedApp walks its EDL spec, then bring up the rings.
    const auto& names = app_.bridge().call_names();
    for (sgx::CallId id = 0; id < names.size(); ++id) {
      if (names[id].rfind("ecall_relay_", 0) == 0 ||
          names[id].rfind("ocall_relay_", 0) == 0) {
        app_.bridge().set_switchless(id, true);
      }
    }
    app_.bridge().start_switchless_workers(config_.ecall_ring,
                                           config_.ocall_ring);
  }
  for (std::uint32_t t = 0; t < tenants_.size(); ++t) {
    tenants_[t]->session = app_.construct_in(
        t, "Account",
        {rt::Value("tenant-" + std::to_string(t)),
         rt::Value(config_.initial_balance)});
    if (env_.telemetry.metrics_enabled()) {
      // Handle resolved once; workers record with a pointer poke.
      tenants_[t]->latency_hist = &env_.telemetry.metrics().histogram(
          "msv_server_request_latency_cycles",
          {{"tenant", std::to_string(t)}});
    }
  }
  for (std::uint32_t t = 0; t < tenants_.size(); ++t) {
    for (std::uint32_t w = 0; w < config_.workers_per_tenant; ++w) {
      sched_.spawn_daemon(
          "srv-t" + std::to_string(t) + "-w" + std::to_string(w),
          [this, t] { worker_loop(t); });
    }
  }
  started_ = true;
}

void RequestServer::stop() {
  if (!started_) return;
  MSV_CHECK_MSG(!sched_.in_task(), "stop() must be called outside tasks");
  stopping_ = true;
  for (auto& ten : tenants_) ten->work.notify_all();
  // Workers drain their queues, observe the stop flag and retire; run()
  // returns once only parked daemons (none of ours) remain.
  sched_.run();
  if (app_.bridge().switchless_workers_running()) {
    app_.bridge().stop_switchless_workers();
  }
  stopping_ = false;
  started_ = false;
}

void RequestServer::enqueue(Tenant& ten, Pending* p) {
  ten.queue.push_back(p);
  ten.stats.max_queue_depth =
      std::max(ten.stats.max_queue_depth, ten.queue.size());
  ++ten.stats.accepted;
  ten.work.notify_one();
}

bool RequestServer::submit(std::uint32_t tenant_id, Request r) {
  MSV_CHECK_MSG(started_, "server not started");
  Tenant& ten = tenant(tenant_id);
  if (queue_full(ten)) {
    if (config_.shed_on_full) {
      ++ten.stats.shed;
      return false;
    }
    MSV_CHECK_MSG(sched_.in_task(),
                  "blocking admission requires a scheduler task");
    while (queue_full(ten)) ten.space.wait();
  }
  if (r.arrival == 0) r.arrival = env_.clock.now();
  auto* p = new Pending;
  p->req = r;
  p->owned = true;
  if (env_.telemetry.tracer().enabled(telemetry::Category::kServer)) {
    p->span = env_.telemetry.tracer().begin_detached(
        telemetry::Category::kServer, env_.telemetry.names().request,
        static_cast<std::int32_t>(tenant_id));
  }
  enqueue(ten, p);
  return true;
}

std::int64_t RequestServer::submit_and_wait(std::uint32_t tenant_id,
                                            Request r) {
  MSV_CHECK_MSG(started_, "server not started");
  MSV_CHECK_MSG(sched_.in_task(), "submit_and_wait must run inside a task");
  Tenant& ten = tenant(tenant_id);
  // Closed-loop clients are synchronous; they block for space, never shed.
  while (queue_full(ten)) ten.space.wait();
  if (r.arrival == 0) r.arrival = env_.clock.now();
  Pending p;
  p.req = r;
  p.waiter = sched_.current();
  if (env_.telemetry.tracer().enabled(telemetry::Category::kServer)) {
    p.span = env_.telemetry.tracer().begin_detached(
        telemetry::Category::kServer, env_.telemetry.names().request,
        static_cast<std::int32_t>(tenant_id));
  }
  enqueue(ten, &p);
  try {
    while (!p.done) sched_.suspend();
  } catch (...) {
    // Cancellation while queued: withdraw the stack descriptor. Once a
    // worker has popped it, the worker is guaranteed never to touch it
    // again on a cancelled timeline (every suspension point throws).
    auto it = std::find(ten.queue.begin(), ten.queue.end(), &p);
    if (it != ten.queue.end()) ten.queue.erase(it);
    throw;
  }
  if (p.error) std::rethrow_exception(p.error);
  return p.result;
}

void RequestServer::worker_loop(std::uint32_t t) {
  Tenant& ten = *tenants_[t];
  auto& u = app_.untrusted_context();
  for (;;) {
    while (ten.queue.empty()) {
      if (stopping_) return;
      ten.work.wait();
    }
    Pending* p = ten.queue.front();
    ten.queue.pop_front();
    ten.space.notify_one();
    ++ten.in_flight;
    {
      // Service span, adopted under the request's detached span so the
      // whole chain — request -> handle -> rmi -> ecall — is one tree.
      telemetry::AdoptedSpanScope handle(
          env_.telemetry.tracer(), p->span.ctx, telemetry::Category::kServer,
          env_.telemetry.names().server_handle, static_cast<std::int32_t>(t));
      // GC gate: this tenant's isolate is paused while its heap is
      // collected; the request waits out the pause. Other tenants' workers
      // never pass through this gate (§2.2 isolate independence).
      while (ten.gc_active) {
        const Cycles gate_start = env_.clock.now();
        ten.gc_done.wait();
        ten.stats.gc_gate_wait_cycles += env_.clock.now() - gate_start;
      }
      try {
        const rt::Value result =
            p->req.op == RequestOp::kDeposit
                ? u.invoke(ten.session.as_ref(), "updateBalance",
                           {rt::Value(p->req.amount)})
                : u.invoke(ten.session.as_ref(), "getBalance", {});
        p->result =
            result.type() == rt::ValueType::kI32 ? result.as_i32() : 0;
      } catch (const sched::TaskCancelled&) {
        // Teardown: unwind without touching the descriptor — its owner (a
        // cancelled submit_and_wait frame) may already be gone.
        throw;
      } catch (...) {
        p->error = std::current_exception();
      }
    }
    const Cycles done_at = env_.clock.now();
    if (ten.latency_hist != nullptr) {
      ten.latency_hist->record(done_at - p->req.arrival);
    }
    env_.telemetry.tracer().end_detached(p->span);
    ten.latencies.push_back(done_at - p->req.arrival);
    ten.completion_times.push_back(done_at);
    ++ten.stats.completed;
    --ten.in_flight;
    p->done = true;
    if (p->waiter != sched::kNoTask) sched_.wake(p->waiter);
    if (p->owned) delete p;
  }
}

void RequestServer::collect_tenant_async(std::uint32_t tenant_id) {
  MSV_CHECK_MSG(started_, "server not started");
  MSV_CHECK_MSG(tenant_id < tenants_.size(), "no such tenant");
  sched_.spawn("gc-tenant-" + std::to_string(tenant_id), [this, tenant_id] {
    Tenant& ten = *tenants_[tenant_id];
    // One collection of a heap at a time; a second request queues behind
    // the gate like any worker.
    while (ten.gc_active) ten.gc_done.wait();
    // Realized pause window of this tenant (the zero-duration gc.collect
    // phase markers from the detached collection sit inside it).
    telemetry::SpanScope span(env_.telemetry.tracer(),
                              telemetry::Category::kGc,
                              env_.telemetry.names().gc_pause,
                              static_cast<std::int32_t>(tenant_id));
    ten.gc_active = true;
    const Cycles pause_start = env_.clock.now();
    // The collection itself runs on the §5.5 GC helper thread — its own
    // core — so its cycles never advance the shared serving timeline;
    // they are realized as a sleep (pause) of this isolate only.
    const Cycles cost =
        env_.clock.measure_detached([&] { app_.collect_isolate(tenant_id); });
    sched_.sleep_for(cost);
    ten.gc_active = false;
    ++ten.stats.gc_runs;
    ten.stats.gc_pause_cycles += cost;
    ten.gc_windows.emplace_back(pause_start, env_.clock.now());
    ten.gc_done.notify_all();
  });
}

std::size_t RequestServer::pending() const {
  std::size_t n = 0;
  for (const auto& ten : tenants_) n += ten->queue.size() + ten->in_flight;
  return n;
}

const TenantStats& RequestServer::tenant_stats(std::uint32_t t) const {
  return tenant(t).stats;
}

ServerStats RequestServer::stats() const {
  ServerStats s;
  for (const auto& ten : tenants_) {
    s.accepted += ten->stats.accepted;
    s.shed += ten->stats.shed;
    s.completed += ten->stats.completed;
  }
  return s;
}

const std::vector<Cycles>& RequestServer::latencies(std::uint32_t t) const {
  return tenant(t).latencies;
}

const std::vector<Cycles>& RequestServer::completion_times(
    std::uint32_t t) const {
  return tenant(t).completion_times;
}

const std::vector<std::pair<Cycles, Cycles>>& RequestServer::gc_windows(
    std::uint32_t t) const {
  return tenant(t).gc_windows;
}

}  // namespace msv::server
