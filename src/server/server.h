// Multi-tenant enclave request server (serving layer, DESIGN.md §8).
//
// Wraps a MultiIsolateApp — one trusted isolate per tenant behind one
// measured enclave — in the shape of an actual enclave service: requests
// are admitted into bounded per-tenant queues, worker tasks (fibers on the
// deterministic scheduler, src/sched) drain each queue and execute the
// tenant's operation through the proxy/RMI machinery, and GC runs per
// isolate on the §5.5 helper-thread model without stopping other tenants.
//
// Concurrency and cost accounting:
//   * Workers contend for the enclave's TCS pool through the bridge; with
//     fewer slots than concurrently-entering tasks the queueing delay
//     shows up in BridgeStats::tcs_wait_cycles (the starvation signal the
//     acceptance test asserts).
//   * With `switchless` enabled the relay transitions are served by the
//     bridge's per-direction worker rings instead of hardware transitions.
//   * A tenant GC measures the collection cost with the clock detached
//     (VirtualClock::measure_detached — the helper thread runs on its own
//     core) and realizes it as a pause gate on that tenant only; workers
//     of other tenants keep serving, which is the multi-isolate property
//     (§2.2) the serving layer exists to demonstrate.
//
// Destruction order: the scheduler must outlive the server (declare the
// app, then the scheduler, then the server — C++ destroys in reverse, so
// the server's cooperative stop() runs while the scheduler is still
// alive, and the scheduler's cancel_all() runs before the bridge dies).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/multi_app.h"
#include "sched/scheduler.h"
#include "server/tenant_state.h"
#include "sgx/sealing.h"

namespace msv::faults {
class FaultInjector;
}

namespace msv::telemetry {
class SloMonitor;  // telemetry/slo.h
}

namespace msv::server {

// A request that ran out of retry budget: either max_attempts faults in a
// row, or the next backoff would blow the request's deadline.
class RetriesExhaustedError : public RuntimeFault {
 public:
  explicit RetriesExhaustedError(const std::string& what)
      : RuntimeFault(what) {}
};

enum class RequestOp : std::uint8_t {
  kDeposit,  // Account.updateBalance(amount)
  kBalance,  // Account.getBalance()
};

struct Request {
  RequestOp op = RequestOp::kDeposit;
  std::int32_t amount = 1;
  // Intended arrival instant (absolute simulated cycles). Latency is
  // measured from here, which keeps open-loop results honest under
  // coordinated omission: a request delayed behind a backlog accrues the
  // full delay since it *should* have arrived. 0 = stamp at submission.
  Cycles arrival = 0;
};

// Fault-recovery policy (DESIGN.md §12). Disabled by default: a server
// without recovery behaves — cycle for cycle — like the pre-fault server,
// and a fault surfaces as the request's error.
struct RecoveryConfig {
  bool enabled = false;
  // Per-request retry budget: a request is retried after a recoverable
  // fault (enclave loss, stale proxy, transient transition failure) at
  // most `max_attempts - 1` times...
  std::uint32_t max_attempts = 4;
  // ...under truncated exponential backoff...
  Cycles initial_backoff_cycles = 200'000;
  double backoff_multiplier = 2.0;
  Cycles max_backoff_cycles = 3'200'000;
  // ...and never past this deadline after the request's arrival instant
  // (a retry that cannot finish in time is not worth the enclave's
  // cycles; the request fails with RetriesExhaustedError instead).
  Cycles request_deadline_cycles = 400'000'000;
  // Seal a per-tenant state checkpoint every N completed requests
  // (0 = never). Restarted enclaves restore from the latest checkpoint;
  // deposits since then are lost — the crash-consistency window the
  // fig_faults bench measures.
  std::uint32_t checkpoint_every = 0;
  // Platform fuse-key stand-in for the sealing KDF.
  std::string platform_secret = "msv-sim-fuse-key";
};

struct ServerConfig {
  // Per-tenant admission queue bound; submissions beyond it shed or block.
  std::size_t max_queue_depth = 64;
  bool shed_on_full = true;  // false: submitter task blocks for queue space
  std::uint32_t workers_per_tenant = 1;
  std::int32_t initial_balance = 0;
  // Serve relay transitions through the bridge's switchless worker rings.
  bool switchless = false;
  sgx::SwitchlessConfig ecall_ring;
  sgx::SwitchlessConfig ocall_ring;
  // Cross-boundary call coalescing (DESIGN.md §13): a worker waking to a
  // backlog drains up to this many queued requests in one swing and packs
  // them into a single "ecall_multi_rmi_batch" transition, paying the
  // 13,100-cycle ecall and the isolate attach once for the batch. 1 (the
  // default) disables coalescing; the single-request path is untouched.
  std::uint32_t coalesce_max = 1;
  RecoveryConfig recovery;
};

struct TenantStats {
  std::uint64_t accepted = 0;
  std::uint64_t shed = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;   // finished with an error (retries exhausted
                              // or recovery disabled); no latency recorded
  std::uint64_t retries = 0;  // recoverable faults absorbed by re-attempts
  std::uint64_t restored = 0;            // checkpoint unseals that succeeded
  std::uint64_t checkpoints = 0;         // checkpoints sealed
  std::uint64_t checkpoint_corrupt = 0;  // unseals rejected (tampered blob)
  std::uint64_t shed_recovery = 0;  // of `shed`: load-shed mid-recovery
  std::uint64_t gc_runs = 0;
  Cycles gc_pause_cycles = 0;      // detached collection cost, realized
  Cycles gc_gate_wait_cycles = 0;  // worker time spent waiting out a pause
  std::size_t max_queue_depth = 0;
};

struct ServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t shed = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t retries = 0;
};

class RequestServer {
 public:
  RequestServer(sched::Scheduler& sched, core::MultiIsolateApp& app,
                ServerConfig config);
  ~RequestServer();

  RequestServer(const RequestServer&) = delete;
  RequestServer& operator=(const RequestServer&) = delete;

  // Attaches the scheduler to the bridge, constructs one session object
  // ("Account") per tenant isolate and spawns the worker daemons. Must be
  // called from outside tasks.
  void start();
  // Cooperative drain: workers finish queued requests, then retire. Must
  // be called from outside tasks; idempotent. The destructor calls it.
  void stop();
  bool started() const { return started_; }

  // Fire-and-forget admission. Returns false when the tenant queue is
  // full and the server sheds; with shed_on_full=false a task blocks for
  // space (callers outside tasks cannot block and fault instead).
  bool submit(std::uint32_t tenant, Request r);

  // Closed-loop admission: blocks for queue space (never sheds), waits
  // for completion and returns the operation result. Task-only.
  std::int64_t submit_and_wait(std::uint32_t tenant, Request r);

  // Spawns a task that collects tenant `t`'s isolate on the GC helper
  // thread model: cost measured detached, realized as a pause gate on
  // this tenant only.
  void collect_tenant_async(std::uint32_t tenant);

  // Registers the server as the injector's sealed-blob corruption target
  // (a corruption event flips one bit of one tenant's stored checkpoint).
  // Attach the injector to the bridge separately. Call before start().
  void attach_fault_injector(faults::FaultInjector& injector);

  // Per-tenant SLO wiring (DESIGN.md §16): completion latencies, sheds
  // and failures feed the monitor keyed by tenant id. nullptr detaches;
  // every record site is one pointer test, so a server without a monitor
  // is cycle-identical to the pre-SLO server.
  void attach_slo(telemetry::SloMonitor* slo) { slo_ = slo; }

  // Enclave restarts performed by the recovery path.
  std::uint64_t restarts() const { return restarts_; }
  bool recovering() const { return recovering_; }

  std::uint32_t tenant_count() const {
    return static_cast<std::uint32_t>(tenants_.size());
  }
  // Queued + in-flight requests across all tenants (0 = fully drained).
  std::size_t pending() const;

  const TenantStats& tenant_stats(std::uint32_t t) const;
  ServerStats stats() const;  // aggregated over tenants
  // Completed-request latencies (cycles from Request::arrival), in
  // completion order.
  const std::vector<Cycles>& latencies(std::uint32_t t) const;
  // Completion instants, parallel to latencies().
  const std::vector<Cycles>& completion_times(std::uint32_t t) const;
  // [start, end) of every realized GC pause of tenant `t`.
  const std::vector<std::pair<Cycles, Cycles>>& gc_windows(
      std::uint32_t t) const;

  core::MultiIsolateApp& app() { return app_; }
  sched::Scheduler& scheduler() { return sched_; }

 private:
  // One queued request. Fire-and-forget descriptors are heap-owned and
  // freed by the worker; submit_and_wait descriptors live on the waiting
  // task's fiber stack.
  struct Pending {
    Request req;
    bool owned = false;
    bool done = false;
    sched::TaskId waiter = sched::kNoTask;
    std::int64_t result = 0;
    std::exception_ptr error;
    // Request-lifetime span (admission -> completion). Detached because
    // it is opened by the submitting task and closed by a worker; its
    // context parents the worker's server.handle span (DESIGN.md §10).
    telemetry::Tracer::DetachedSpan span;
  };

  struct Tenant {
    explicit Tenant(sched::Scheduler& s) : work(s), space(s), gc_done(s) {}
    // Session proxy + sealed-checkpoint state, shared with the fleet layer
    // (tenant_state.h owns the checkpoint byte format).
    TenantState state;
    std::deque<Pending*> queue;
    sched::WaitQueue work;     // workers park here when the queue is empty
    sched::WaitQueue space;    // submitters park here when the queue is full
    sched::WaitQueue gc_done;  // workers park here during a GC pause
    bool gc_active = false;
    std::size_t in_flight = 0;
    TenantStats stats;
    std::vector<Cycles> latencies;
    std::vector<Cycles> completion_times;
    std::vector<std::pair<Cycles, Cycles>> gc_windows;
    // Per-tenant request-latency histogram handle, resolved once in
    // start() when metrics are enabled (p50/p99 in the metrics dump).
    telemetry::Histogram* latency_hist = nullptr;
  };

  Tenant& tenant(std::uint32_t t);
  const Tenant& tenant(std::uint32_t t) const;
  bool queue_full(const Tenant& ten) const {
    return ten.queue.size() >= config_.max_queue_depth;
  }
  void enqueue(Tenant& ten, Pending* p);
  void worker_loop(std::uint32_t t);
  // Completion bookkeeping shared by the single and coalesced paths:
  // closes the request span, records latency or failure, releases the
  // descriptor and wakes a closed-loop waiter.
  void finish_request(std::uint32_t t, Tenant& ten, Pending* p);
  // Executes a drained swing of >=2 requests as one batched transition;
  // a transition-level fault aborts the batch before any call executes
  // and the requests fall back to the per-request retry ladder.
  void execute_batch(std::uint32_t t, Tenant& ten,
                     std::vector<Pending*>& batch);
  // Runs one request, absorbing recoverable faults under the retry
  // budget; first step of every attempt is ensure_recovered().
  std::int64_t execute_with_retry(std::uint32_t t, Tenant& ten, Pending& p);
  // Restart-and-restore barrier: first worker to find the enclave lost
  // performs the restart and restores every tenant from its checkpoint;
  // the rest park on recovery_done_ (and admission sheds) meanwhile.
  void ensure_recovered();
  void restore_tenant(std::uint32_t t);
  void maybe_checkpoint(std::uint32_t t, Tenant& ten);

  Env& env_;
  sched::Scheduler& sched_;
  core::MultiIsolateApp& app_;
  ServerConfig config_;
  std::vector<std::unique_ptr<Tenant>> tenants_;
  sgx::SealingPlatform sealer_;
  sched::WaitQueue recovery_done_;
  telemetry::SloMonitor* slo_ = nullptr;
  std::uint64_t restarts_ = 0;
  bool recovering_ = false;
  bool started_ = false;
  bool stopping_ = false;
};

}  // namespace msv::server
