#include "server/harness.h"

#include <cmath>
#include <string>

#include "support/rng.h"

namespace msv::server {

namespace {

// Exponential gap with the given mean, quantized to whole cycles. The Rng
// is consumed exactly once per call, in task program order, so the sampled
// process is independent of scheduler interleaving.
Cycles exp_gap(Rng& rng, Cycles mean) {
  const double u = rng.next_double();  // [0, 1)
  return static_cast<Cycles>(-std::log(1.0 - u) *
                             static_cast<double>(mean));
}

RequestOp pick_op(Rng& rng, double read_fraction) {
  return rng.next_bool(read_fraction) ? RequestOp::kBalance
                                      : RequestOp::kDeposit;
}

// Keeps the scheduler's run loop alive until every queued request has
// been served. Quantized sleep-polling (not yield-polling): while work is
// in flight the clock advances from the work itself and the poll costs
// nothing; once drained the overshoot is at most one quantum of idle.
constexpr Cycles kDrainQuantum = 10'000;

}  // namespace

LatencySummary summarize_latencies(const std::vector<Cycles>& lat,
                                   double hz) {
  LatencySummary s;
  s.count = lat.size();
  if (lat.empty()) return s;
  Samples samples;
  for (const Cycles c : lat) samples.add(static_cast<double>(c));
  const double to_us = 1e6 / hz;
  s.mean_us = samples.mean() * to_us;
  s.p50_us = samples.percentile(50.0) * to_us;
  s.p95_us = samples.percentile(95.0) * to_us;
  s.p99_us = samples.percentile(99.0) * to_us;
  s.max_us = samples.max() * to_us;
  return s;
}

HarnessReport LoadHarness::run_open_loop(const OpenLoopSpec& spec) {
  server_.start();
  sched::Scheduler& sched = server_.scheduler();
  for (std::uint32_t t = 0; t < server_.tenant_count(); ++t) {
    sched.spawn("gen-t" + std::to_string(t), [this, &sched, spec, t] {
      Rng rng(spec.seed * 0x9e3779b97f4a7c15ull + t + 1);
      Cycles next = env_.clock.now();
      for (std::uint64_t i = 0; i < spec.requests_per_tenant; ++i) {
        next += exp_gap(rng, spec.mean_interarrival_cycles);
        if (next > env_.clock.now()) sched.sleep_until(next);
        Request r;
        r.op = pick_op(rng, spec.read_fraction);
        r.arrival = next;
        server_.submit(t, r);
        if (spec.gc_every != 0 && t == spec.gc_tenant &&
            (i + 1) % spec.gc_every == 0) {
          server_.collect_tenant_async(t);
        }
      }
    });
  }
  sched.run();  // generators finish (worker daemons may still hold work)
  sched.spawn("drain", [this, &sched] {
    while (server_.pending() > 0) sched.sleep_for(kDrainQuantum);
  });
  sched.run();
  return report();
}

HarnessReport LoadHarness::run_closed_loop(const ClosedLoopSpec& spec) {
  server_.start();
  sched::Scheduler& sched = server_.scheduler();
  for (std::uint32_t t = 0; t < server_.tenant_count(); ++t) {
    for (std::uint32_t c = 0; c < spec.clients_per_tenant; ++c) {
      sched.spawn(
          "cli-t" + std::to_string(t) + "-" + std::to_string(c),
          [this, &sched, spec, t, c] {
            Rng rng(spec.seed * 0x9e3779b97f4a7c15ull +
                    (static_cast<std::uint64_t>(t) << 16) + c + 1);
            for (std::uint64_t i = 0; i < spec.requests_per_client; ++i) {
              Request r;
              r.op = pick_op(rng, spec.read_fraction);
              server_.submit_and_wait(t, r);
              if (spec.mean_think_cycles > 0) {
                sched.sleep_for(exp_gap(rng, spec.mean_think_cycles));
              }
            }
          });
    }
  }
  sched.run();  // clients are synchronous: done means drained
  return report();
}

HarnessReport LoadHarness::report() const {
  HarnessReport rep;
  const double hz = env_.clock.hz();
  std::vector<Cycles> all;
  for (std::uint32_t t = 0; t < server_.tenant_count(); ++t) {
    TenantReport tr;
    const std::vector<Cycles>& lat = server_.latencies(t);
    tr.latency = summarize_latencies(lat, hz);
    tr.stats = server_.tenant_stats(t);
    for (const Cycles c : lat) tr.latency_cycle_sum += c;
    rep.latency_cycle_sum += tr.latency_cycle_sum;
    all.insert(all.end(), lat.begin(), lat.end());
    rep.tenants.push_back(tr);
  }
  rep.aggregate = summarize_latencies(all, hz);
  const ServerStats s = server_.stats();
  rep.completed = s.completed;
  rep.shed = s.shed;
  rep.failed = s.failed;
  rep.retries = s.retries;
  rep.final_clock = env_.clock.now();
  rep.elapsed_seconds = env_.clock.seconds();
  rep.throughput_rps = rep.elapsed_seconds > 0
                           ? static_cast<double>(rep.completed) /
                                 rep.elapsed_seconds
                           : 0.0;
  return rep;
}

}  // namespace msv::server
