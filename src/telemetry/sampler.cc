#include "telemetry/sampler.h"

namespace msv::telemetry {

void SampleProfiler::take(const std::string& stack) {
  const Cycles now = clock_->now();
  // All whole ticks in (previous poll, now] belong to this stack; a long
  // uninterrupted charge yields several ticks at once.
  const std::uint64_t ticks = (now - next_sample_) / interval_ + 1;
  counts_[stack] += ticks;
  samples_ += ticks;
  next_sample_ += ticks * interval_;
}

void SampleProfiler::poll_label(const char* label) {
  if (!due()) return;
  take(label);
}

void SampleProfiler::poll_task(std::uint64_t tid,
                               const std::string& task_name) {
  if (!due()) return;
  std::string stack = task_name;
  for (const std::uint32_t name_id : tracer_->stack_names(tid)) {
    stack += ';';
    stack += tracer_->name(name_id);
  }
  take(stack);
}

std::string SampleProfiler::folded() const {
  std::string out;
  for (const auto& [stack, count] : counts_) {
    out += stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

void SampleProfiler::publish(MetricsRegistry& m) const {
  m.counter("msv_profile_samples").value = samples_;
  m.counter("msv_profile_stacks").value = counts_.size();
  m.counter("msv_profile_interval_cycles").value = interval_;
}

}  // namespace msv::telemetry
