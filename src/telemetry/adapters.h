// Adapters from the repo's per-subsystem *Stats structs into the
// telemetry metrics registry (DESIGN.md §10).
//
// The stats structs stay the steady-state collection mechanism — plain
// field increments on hot paths, exactly as the seed had them. These
// publishers absorb a snapshot into the shared registry at export time,
// so every subsystem lands in one tree (and one Prometheus dump) without
// adding a single instruction to the paths being measured.
//
// Metric names follow msv_<subsystem>_<what>[_cycles|_bytes]; labels
// carry the dimension ({call=...}, {tenant=...}, {heap=...}, {side=...}).
#pragma once

#include <cstdint>
#include <string>

#include "telemetry/telemetry.h"

namespace msv::sgx {
struct BridgeStats;
struct EpcStats;
struct TcsStats;
}  // namespace msv::sgx
namespace msv::sched {
struct SchedulerStats;
}
namespace msv::rt {
struct HeapStats;
}
namespace msv::rmi {
struct RmiStats;
struct GcHelperStats;
}  // namespace msv::rmi
namespace msv::server {
struct ServerStats;
struct TenantStats;
}  // namespace msv::server
namespace msv::fleet {
struct FleetStats;
struct ShardStats;
}  // namespace msv::fleet

namespace msv::telemetry {

// Bridge totals plus the per-call table: msv_bridge_call_count /
// _bytes_in / _bytes_out / _transition_cycles{call="..."} — the measured
// per-call series sgx/profiler builds its recommendations from.
void publish_bridge(MetricsRegistry& metrics, const sgx::BridgeStats& stats);

void publish_epc(MetricsRegistry& metrics, const sgx::EpcStats& stats);
void publish_tcs(MetricsRegistry& metrics, const sgx::TcsStats& stats);
void publish_scheduler(MetricsRegistry& metrics,
                       const sched::SchedulerStats& stats);
void publish_heap(MetricsRegistry& metrics, const rt::HeapStats& stats,
                  const std::string& heap_label);
void publish_rmi(MetricsRegistry& metrics, const rmi::RmiStats& stats);
void publish_gc_helper(MetricsRegistry& metrics,
                       const rmi::GcHelperStats& stats,
                       const std::string& side);
void publish_server(MetricsRegistry& metrics, const server::ServerStats& stats);
void publish_tenant(MetricsRegistry& metrics, const server::TenantStats& stats,
                    std::uint32_t tenant);

// Fleet aggregates (msv_fleet_*) and the per-shard table
// (msv_fleet_shard_*{shard="k"}): request counters, failover/promotion
// counts, the replication stream's byte totals, and recovery-stall
// cycles. The router pairs these with its own ring-rebalance gauge.
void publish_fleet(MetricsRegistry& metrics, const fleet::FleetStats& stats);
void publish_fleet_shard(MetricsRegistry& metrics,
                         const fleet::ShardStats& stats, std::uint32_t shard);

// The tracer's own accounting (spans recorded/started/dropped), so drop
// counters are visible in the same dump the drops would bias.
void publish_tracer_self(MetricsRegistry& metrics, const Tracer& tracer);

}  // namespace msv::telemetry
