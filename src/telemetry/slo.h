// Windowed SLO objectives with multi-window burn-rate alerting
// (DESIGN.md §16).
//
// Production fleets do not page on point samples: they track an *error
// budget* (the fraction of requests allowed to be bad under the SLO) and
// alert when the budget is being burned faster than it accrues, over two
// windows at once — a fast window so detection is prompt, a slow window
// so a single bad instant cannot page. SloMonitor reproduces that
// machinery over the virtual clock: every shard (or tenant) owns a ring
// of fixed-width trailing windows; record_latency / record_shed /
// record_error update the current window and re-evaluate a per-key health
// state machine (healthy / degraded / critical) whose transitions are
// logged on a deterministic timeline.
//
// "Bad" events come from three dimensions, each with its own budget:
//   * slow  — completions whose latency exceeds p99_target_cycles
//             (budget: max_slow_fraction of completions),
//   * shed  — admission-control rejections (budget: max_shed_rate),
//   * error — enclave-loss / transition failures (budget: max_error_rate).
// The burn rate of a window is max over dimensions of bad_rate / budget;
// the state machine fires only when *both* the fast and the slow window
// burn above the threshold (the SRE multi-window rule), and recovers as
// soon as the fast window drops below the degraded threshold.
//
// Determinism: windows are aligned to absolute clock boundaries
// (start = now - now % window_cycles), evaluation happens inside the
// record_* calls, and the monitor never advances the clock — so two runs
// at a seed produce byte-identical timelines and reports, and attaching a
// monitor never changes simulated cycle totals.
//
// Like the rest of this directory, slo.h depends only on support/clock.h
// and telemetry.h; it must not include sim/, sgx/ or sched/.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "support/clock.h"
#include "telemetry/telemetry.h"

namespace msv::telemetry {

enum class HealthState : std::uint8_t { kHealthy = 0, kDegraded, kCritical };

const char* health_state_name(HealthState s);

struct SloConfig {
  // Window geometry: the fast window is the trailing `fast_windows`
  // buckets of `window_cycles` each, the slow window the trailing
  // `slow_windows` buckets (slow >= fast).
  Cycles window_cycles = 25'000'000;  // ~6.6ms at 3.8GHz
  std::uint32_t fast_windows = 1;
  std::uint32_t slow_windows = 4;
  // Objectives / budgets.
  Cycles p99_target_cycles = 4'000'000;
  double max_slow_fraction = 0.01;
  double max_shed_rate = 0.05;
  double max_error_rate = 0.01;
  // Burn-rate thresholds (1.0 = burning budget exactly as fast as it
  // accrues). Both fast and slow windows must exceed a threshold for the
  // state machine to escalate.
  double degraded_burn = 1.0;
  double critical_burn = 8.0;
  // Below this many events in the fast window the monitor withholds
  // judgement (no escalation, no recovery) — a single request cannot
  // whipsaw the state machine.
  std::uint64_t min_samples = 1;
};

// A health-state transition (or epoch annotation) on the timeline.
struct HealthEvent {
  Cycles at = 0;
  std::uint32_t key = 0;
  HealthState from = HealthState::kHealthy;
  HealthState to = HealthState::kHealthy;
  // Dominant dimension at the transition ("slow", "shed", "error"), or
  // "epoch" for promotion/restart annotations (from == to then).
  std::string reason;
  // Burn rates at evaluation time, scaled by 100 (fixed-point, two
  // decimals) so the timeline text needs no float formatting.
  std::uint64_t fast_burn_x100 = 0;
  std::uint64_t slow_burn_x100 = 0;
};

// Point-in-time evaluation of one key (what health() computes).
struct SloSnapshot {
  HealthState state = HealthState::kHealthy;
  std::uint64_t fast_total = 0;   // events in the fast window
  std::uint64_t slow_total = 0;   // events in the slow window
  double fast_burn = 0;           // max-dimension burn, fast window
  double slow_burn = 0;           // max-dimension burn, slow window
  Cycles window_p99 = 0;          // p99 latency over the slow window
  const char* dominant = "none";  // dimension driving the burn
};

// One monitor per scope ("shard" for the fleet router, "tenant" for the
// request server); keys are shard ids / tenant ids within that scope.
class SloMonitor {
 public:
  SloMonitor(const VirtualClock& clock, const SloConfig& cfg,
             std::string scope);

  SloMonitor(const SloMonitor&) = delete;
  SloMonitor& operator=(const SloMonitor&) = delete;

  const SloConfig& config() const { return cfg_; }
  const std::string& scope() const { return scope_; }

  // Recording: each call rolls the key's windows forward to now(),
  // updates the current window, and re-evaluates the state machine.
  void record_latency(std::uint32_t key, Cycles latency);
  void record_shed(std::uint32_t key);
  void record_error(std::uint32_t key);

  // Annotates an authority-epoch bump (promotion / restart) on the
  // timeline and forgives the key's accumulated bad events: the new
  // authority starts with a clean budget (its windows restart at the
  // current boundary), which is also what keeps a clock jump across the
  // bump from attributing the dead time to the fresh enclave.
  void note_epoch(std::uint32_t key, std::uint64_t epoch);

  // Rolls windows to now() and returns the current state / evaluation.
  HealthState health(std::uint32_t key);
  SloSnapshot evaluate(std::uint32_t key);

  // First cycle at which `key` entered `state` (0 = never).
  Cycles first_entered(std::uint32_t key, HealthState state) const;

  // Count of keys currently at or above `state`.
  std::size_t keys_at_least(HealthState state) const;

  // Full transition/annotation timeline, in record order (deterministic).
  const std::vector<HealthEvent>& timeline() const { return timeline_; }

  // Deterministic plain-text health report: config banner, the timeline
  // (cycles + seconds at `hz`), and a per-key breach summary.
  std::string report(double hz) const;

  // Gauges msv_slo_health{<scope>=...} (0/1/2) and counters
  // msv_slo_transitions{<scope>=...,to=...} into the registry.
  void publish(MetricsRegistry& m) const;

 private:
  struct Bucket {
    Cycles start = 0;
    std::uint64_t completed = 0;
    std::uint64_t slow = 0;
    std::uint64_t shed = 0;
    std::uint64_t errors = 0;
    Histogram latency;
  };

  struct KeyState {
    std::deque<Bucket> buckets;  // trailing, newest at back
    HealthState state = HealthState::kHealthy;
    Cycles first_degraded_at = 0;
    Cycles first_critical_at = 0;
    std::uint64_t degraded_count = 0;
    std::uint64_t critical_count = 0;
    std::uint64_t epoch = 0;
  };

  // Rolls `ks` forward so its newest bucket covers now(); ages out
  // buckets beyond the slow window. Large jumps (idle gaps, epoch bumps)
  // simply drop every stale bucket.
  void roll(KeyState& ks);
  Bucket& current_bucket(KeyState& ks);
  SloSnapshot evaluate_locked(const KeyState& ks) const;
  void transition(std::uint32_t key, KeyState& ks, const SloSnapshot& snap);

  const VirtualClock* clock_;
  SloConfig cfg_;
  std::string scope_;
  std::map<std::uint32_t, KeyState> keys_;
  std::vector<HealthEvent> timeline_;
};

}  // namespace msv::telemetry
