// Unified telemetry layer: deterministic span tracing and a metrics
// registry over the simulated clock (DESIGN.md §10).
//
// Every subsystem of the simulation — bridge transitions, TCS queueing,
// switchless rings, RMI dispatch, GC phases, EPC paging, the fiber
// scheduler and the request server — reports into one spine:
//
//   * MetricsRegistry: counters, gauges and log-bucketed latency
//     histograms (p50/p90/p99/p999) keyed by name + labels. Hot paths
//     resolve a handle once and poke a field; adapters (adapters.h)
//     absorb the existing *Stats structs at export time so steady-state
//     collection costs nothing beyond what the seed already paid.
//   * Tracer: scoped spans stamped with VirtualClock cycles. Because all
//     timestamps are simulated, two runs at the same seed emit
//     byte-identical traces — a determinism property no wall-clock tracer
//     can offer, and one tier-1 asserts. Trace context (trace id + parent
//     span id) crosses task switches and enclave transitions so one
//     cross-enclave RMI renders as a single causal tree.
//
// Overhead-when-off contract: with TraceMode::kOff every instrumentation
// site reduces to one branch on a cached bool; nothing allocates, nothing
// is recorded, and — unconditionally, in every mode — telemetry never
// advances the virtual clock, so simulated cycle totals are identical
// whether tracing is on or off (bench/abl_* baselines are the proof).
//
// This header depends only on support/clock.h so it can sit inside Env
// without include cycles; it must not include sim/, sgx/ or sched/.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "support/clock.h"

namespace msv::telemetry {

// ---------------------------------------------------------------------------
// Categories

// Span taxonomy, one bit per subsystem (TraceConfig::categories masks).
enum class Category : std::uint8_t {
  kBridge = 0,  // raw ecall/ocall transitions (shim I/O, ecall_main, ...)
  kTcs,         // TCS slot queueing
  kSwitchless,  // ring hops: caller handshake and worker service
  kRmi,         // proxy invoke/construct, relay transitions, relay dispatch
  kGc,          // collector phases, GC-helper transitions, server GC pauses
  kEpc,         // page-in / page-out
  kSched,       // task lifetimes and fiber sleeps
  kServer,      // per-tenant request lifecycle
  kFault,       // injected faults, enclave restarts, request retries
  kFleet,       // shard routing, replica promotion, hot-tenant migration
};
inline constexpr std::size_t kCategoryCount = 10;

const char* category_name(Category c);

using CategoryMask = std::uint32_t;
constexpr CategoryMask mask_of(Category c) {
  return 1u << static_cast<unsigned>(c);
}
inline constexpr CategoryMask kAllCategories =
    (1u << kCategoryCount) - 1;

enum class TraceMode : std::uint8_t {
  kOff,          // no spans, no histogram recording
  kMetricsOnly,  // registry live (histograms record), no spans
  kFull,         // spans + metrics
};

struct TraceConfig {
  TraceMode mode = TraceMode::kOff;
  CategoryMask categories = kAllCategories;
  // Bounded span ring: spans beyond this are counted in dropped(), never
  // stored — memory stays bounded no matter how long the run.
  std::size_t max_spans = 1u << 18;
};

// ---------------------------------------------------------------------------
// Bridge-call category registry
//
// Every bridge call name is classified by prefix into the span taxonomy at
// registration time. msvlint's MSV008 checks the same table statically:
// a relay whose transition name no prefix covers would fall back to the
// generic kBridge category and silently opt out of RMI/GC trace filters.

struct CallPrefix {
  const char* prefix;
  Category category;
};

// The prefix table, in match order (first hit wins).
const std::vector<CallPrefix>& registered_call_prefixes();
// Just the prefix strings (LintOptions defaults, MSV008).
std::vector<std::string> registered_call_prefix_strings();
// Classifies a bridge call name; false when no prefix matches.
bool category_for_call(const std::string& call_name, Category* out);

// ---------------------------------------------------------------------------
// Metrics

struct Counter {
  std::uint64_t value = 0;
  void add(std::uint64_t delta = 1) { value += delta; }
};

struct Gauge {
  double value = 0;
  void set(double v) { value = v; }
};

// Log-bucketed histogram in the HdrHistogram style: values below 2^4 are
// exact; above that each power-of-two octave splits into 8 sub-buckets,
// bounding the relative quantile error at ~12.5% with a few hundred
// buckets across the full uint64 range. Buckets grow on demand, so a
// histogram that only ever sees small values stays small.
class Histogram {
 public:
  void record(std::uint64_t value);
  // Adds every bucket of `other` (the SLO monitor aggregates its trailing
  // windows this way). Exact: both sides share the same bucket geometry.
  void merge(const Histogram& other);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }

  // Quantile estimate (q in [0,1]): the upper bound of the bucket holding
  // the rank, clamped to the recorded max. 0 when empty.
  std::uint64_t quantile(double q) const;

  static std::size_t bucket_index(std::uint64_t value);
  static std::uint64_t bucket_upper_bound(std::size_t index);

 private:
  static constexpr unsigned kSubBits = 3;  // 8 sub-buckets per octave

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ull;
  std::uint64_t max_ = 0;
};

using LabelSet = std::vector<std::pair<std::string, std::string>>;

// Canonical metric key: name{k1="v1",k2="v2"} with labels sorted by key.
std::string render_metric_key(const std::string& name, const LabelSet& labels);

// One tree of named metrics. Handles (the returned references) are stable
// for the registry's lifetime — resolve once, poke forever (the "cheap
// static handle" pattern the hot paths use).
class MetricsRegistry {
 public:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  struct Entry {
    std::string name;
    LabelSet labels;  // sorted by key
    Kind kind = Kind::kCounter;
    Counter counter;
    Gauge gauge;
    Histogram histogram;
  };

  Counter& counter(const std::string& name, const LabelSet& labels = {});
  Gauge& gauge(const std::string& name, const LabelSet& labels = {});
  Histogram& histogram(const std::string& name, const LabelSet& labels = {});

  // nullptr when the key was never registered.
  const Entry* find(const std::string& name, const LabelSet& labels = {}) const;

  // Entries sorted by canonical key — the deterministic export order.
  std::vector<std::pair<std::string, const Entry*>> sorted_entries() const;

  std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

 private:
  Entry& resolve(const std::string& name, const LabelSet& labels, Kind kind);

  // std::map: node stability makes every handle reference permanent, and
  // iteration order is the export order for free.
  std::map<std::string, Entry> entries_;
};

// ---------------------------------------------------------------------------
// Tracing

// Propagated across tasks and enclave transitions: a ring worker or a
// server worker adopts the submitter's context so the serviced span hangs
// under the caller's tree. {0, 0} = no context (the adoptee roots a new
// trace).
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
};

struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  // 0 = root
  std::uint32_t name = 0;       // interned (Tracer::name())
  Category category = Category::kBridge;
  std::int32_t tenant = -1;  // per-tenant label, -1 = none
  std::uint64_t tid = 0;     // scheduler TaskId, 0 = main context
  Cycles start = 0;
  Cycles end = 0;
  bool open = true;
};

class Tracer {
 public:
  static constexpr std::uint32_t kNoIndex = 0xffffffffu;

  explicit Tracer(const VirtualClock& clock) : clock_(&clock) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void configure(TraceMode mode, CategoryMask categories,
                 std::size_t max_spans);

  // The one hot-path gate: false short-circuits every instrumentation
  // site to a single branch.
  bool enabled(Category c) const {
    return full_ && (categories_ & mask_of(c)) != 0;
  }

  // Name interning. Registration-time code interns once and hot paths
  // carry the id; interning is idempotent.
  std::uint32_t intern(const std::string& name);
  const std::string& name(std::uint32_t id) const;

  // Per-task span stacks: the scheduler registers a callback returning
  // the running TaskId (0 outside tasks) so spans opened inside fibers
  // nest per task, not globally.
  void set_task_source(std::function<std::uint64_t()> source) {
    task_source_ = std::move(source);
  }
  void clear_task_source() { task_source_ = nullptr; }

  // Thread-name metadata for the Chrome trace rendering.
  void set_thread_name(std::uint64_t tid, const std::string& name);
  const std::map<std::uint64_t, std::string>& thread_names() const {
    return thread_names_;
  }

  // Opens a span on the current task's stack. Root spans (empty stack)
  // start a fresh trace; nested spans inherit trace id and parent.
  void begin_span(Category c, std::uint32_t name, std::int32_t tenant = -1);
  // Same, but parented under `parent` (cross-task adoption). A null
  // context degrades to begin_span.
  void begin_span_adopted(const TraceContext& parent, Category c,
                          std::uint32_t name, std::int32_t tenant = -1);
  // Closes the top span of the current task's stack (no-op when empty —
  // robust against mid-run reconfiguration).
  void end_span();

  // The innermost open span of the current task — what a submitter
  // stamps into a cross-task request descriptor.
  TraceContext current_context() const;

  // Detached spans live on no stack: opened by one task (request
  // admission) and closed by another (request completion).
  struct DetachedSpan {
    std::uint32_t index = kNoIndex;
    TraceContext ctx;  // for parenting children under this span
    bool valid() const { return ctx.span_id != 0; }
  };
  DetachedSpan begin_detached(Category c, std::uint32_t name,
                              std::int32_t tenant = -1);
  void end_detached(const DetachedSpan& span);

  const std::deque<SpanRecord>& spans() const { return spans_; }
  // Spans that hit the ring bound and were counted, not stored.
  std::uint64_t dropped() const { return dropped_; }
  // Ring-wrap accounting per subsystem: which category lost spans when
  // the ring filled (exported as msv_trace_dropped{category=...}).
  std::uint64_t dropped_in(Category c) const {
    return dropped_by_category_[static_cast<std::size_t>(c)];
  }
  // Total spans started (stored + dropped).
  std::uint64_t started() const { return next_span_id_ - 1; }

  // Interned name ids of `tid`'s open spans, outermost first (empty when
  // the task has none). Stack frames carry names even when the record
  // ring dropped the span, so the sampling profiler keeps attributing
  // after the ring wraps.
  std::vector<std::uint32_t> stack_names(std::uint64_t tid) const;

  void reset();

 private:
  struct Frame {
    std::uint32_t index;  // kNoIndex when the record was dropped
    std::uint32_t name;   // interned; survives a dropped record
    std::uint64_t span_id;
    std::uint64_t trace_id;
  };

  std::uint64_t current_tid() const {
    return task_source_ ? task_source_() : 0;
  }
  // Allocates the record (or drops) and pushes the stack frame.
  void open_span(std::uint64_t trace_id, std::uint64_t parent_id, Category c,
                 std::uint32_t name, std::int32_t tenant);
  std::uint32_t alloc_record(std::uint64_t trace_id, std::uint64_t span_id,
                             std::uint64_t parent_id, Category c,
                             std::uint32_t name, std::int32_t tenant,
                             std::uint64_t tid);

  const VirtualClock* clock_;
  bool full_ = false;
  CategoryMask categories_ = kAllCategories;
  std::size_t max_spans_ = 1u << 18;

  std::deque<SpanRecord> spans_;
  std::uint64_t dropped_ = 0;
  std::uint64_t dropped_by_category_[kCategoryCount] = {};
  std::uint64_t next_span_id_ = 1;

  std::vector<std::string> names_;
  std::unordered_map<std::string, std::uint32_t> name_ids_;
  // Ordered map: deterministic, entries erased when a stack drains.
  std::map<std::uint64_t, std::vector<Frame>> stacks_;
  std::map<std::uint64_t, std::string> thread_names_;
  std::function<std::uint64_t()> task_source_;
};

// RAII span; the enabled() check happens once, at construction, so the
// destructor stays paired with it even if the config changes mid-scope.
class SpanScope {
 public:
  SpanScope(Tracer& tracer, Category c, std::uint32_t name,
            std::int32_t tenant = -1)
      : tracer_(tracer.enabled(c) ? &tracer : nullptr) {
    if (tracer_ != nullptr) tracer_->begin_span(c, name, tenant);
  }
  ~SpanScope() {
    if (tracer_ != nullptr) tracer_->end_span();
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  Tracer* tracer_;
};

// RAII adopted span (cross-task parenting).
class AdoptedSpanScope {
 public:
  AdoptedSpanScope(Tracer& tracer, const TraceContext& parent, Category c,
                   std::uint32_t name, std::int32_t tenant = -1)
      : tracer_(tracer.enabled(c) ? &tracer : nullptr) {
    if (tracer_ != nullptr) {
      tracer_->begin_span_adopted(parent, c, name, tenant);
    }
  }
  ~AdoptedSpanScope() {
    if (tracer_ != nullptr) tracer_->end_span();
  }

  AdoptedSpanScope(const AdoptedSpanScope&) = delete;
  AdoptedSpanScope& operator=(const AdoptedSpanScope&) = delete;

 private:
  Tracer* tracer_;
};

// ---------------------------------------------------------------------------
// Facade

class FlightBus;  // flight.h — forensics layer, attached via set_flight()

// One Telemetry per Env ("machine"): the registry, the tracer and the
// pre-interned names of the fixed span taxonomy, so hot paths never hash
// a string.
class Telemetry {
 public:
  struct WellKnown {
    std::uint32_t tcs_wait = 0;
    std::uint32_t swl_ring = 0;   // caller: enqueue -> completion
    std::uint32_t swl_serve = 0;  // worker: adopted service span
    std::uint32_t fiber_sleep = 0;
    std::uint32_t epc_page_in = 0;
    std::uint32_t epc_page_out = 0;
    std::uint32_t gc_collect = 0;
    std::uint32_t gc_roots = 0;
    std::uint32_t gc_copy = 0;
    std::uint32_t gc_weak = 0;
    std::uint32_t gc_pause = 0;
    std::uint32_t rmi_invoke = 0;
    std::uint32_t rmi_construct = 0;
    std::uint32_t rmi_dispatch = 0;
    std::uint32_t rmi_batch = 0;
    std::uint32_t request = 0;
    std::uint32_t server_handle = 0;
    std::uint32_t fault_inject = 0;
    std::uint32_t enclave_restart = 0;
    std::uint32_t rmi_retry = 0;
    std::uint32_t fleet_request = 0;   // router admission -> completion
    std::uint32_t fleet_failover = 0;  // shard recovery window (either path)
    std::uint32_t fleet_promote = 0;   // replica promotion inside a failover
    std::uint32_t fleet_restore = 0;   // per-tenant checkpoint restore
    std::uint32_t fleet_migrate = 0;   // hot-tenant migration (drain+rebind)
  };

  explicit Telemetry(const VirtualClock& clock);

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  void configure(const TraceConfig& config);
  const TraceConfig& config() const { return config_; }

  bool metrics_enabled() const { return config_.mode != TraceMode::kOff; }
  bool tracing_enabled() const { return config_.mode == TraceMode::kFull; }

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }
  const WellKnown& names() const { return names_; }
  const VirtualClock& clock() const { return *clock_; }

  // Flight-recorder bus (flight.h). nullptr = disarmed: every recording
  // site in the bridge / faults / fleet layers is one pointer test, so
  // baselines without a bus stay byte-identical.
  FlightBus* flight() { return flight_; }
  void set_flight(FlightBus* bus) { flight_ = bus; }

 private:
  const VirtualClock* clock_;
  TraceConfig config_;
  MetricsRegistry metrics_;
  Tracer tracer_;
  WellKnown names_;
  FlightBus* flight_ = nullptr;
};

}  // namespace msv::telemetry
