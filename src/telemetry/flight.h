// Always-on bounded flight recorder + post-mortem bundles (DESIGN.md §16).
//
// Full tracing answers "what happened?" only while its span ring lasts;
// on a long fleet run the ring wraps long before the interesting failure.
// An aircraft-style flight recorder inverts the trade: each enclave owns
// a tiny bounded ring of coarse events (bridge transitions, injected
// faults, lifecycle edges, scheduler activity, metric deltas) that is
// *always* cheap enough to leave armed, and the moment the enclave is
// lost / promoted / restarted the ring is frozen into a PostMortem
// snapshot together with the tracer's recent-span tail and a metrics
// snapshot. The collected snapshots render as one self-contained JSON
// bundle (`bundle_json`) that tools/msvmon pretty-prints — forensics for
// a failure that happened megacycles before the run ended.
//
// Disarmed path: Telemetry carries a nullable FlightBus pointer; every
// instrumentation site is a single pointer test when no bus is attached,
// and the recorder never advances the virtual clock, so fault-off
// baselines stay byte-identical (tier-1 asserts this).
//
// Determinism: events are stamped with virtual cycles, rings and
// snapshot sequence numbers are per-run counters, and the bundle is
// rendered from sorted containers — two runs at a seed emit byte-equal
// bundles.
//
// Depends only on support/clock.h + telemetry.h (no sim/, sgx/, sched/).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "support/clock.h"
#include "telemetry/telemetry.h"

namespace msv::telemetry {

enum class FlightEventKind : std::uint8_t {
  kLifecycle = 0,  // enclave created / lost / restarted / promoted
  kBridge,         // an ecall/ocall transition through this enclave
  kFault,          // an injected fault applied to this enclave
  kSched,          // scheduler activity attributed to the enclave's work
  kMetric,         // a metric delta worth keeping (e.g. bytes copied)
};

const char* flight_event_kind_name(FlightEventKind k);

struct FlightEvent {
  Cycles at = 0;
  FlightEventKind kind = FlightEventKind::kLifecycle;
  std::string name;     // e.g. "ecall_invoke", "fault.enclave_loss"
  std::int64_t a = 0;   // kind-specific payload (bytes, epoch, slot, ...)
  std::int64_t b = 0;
};

// One bounded ring per enclave. Eviction is strictly FIFO; `evicted()`
// counts what the ring forgot so post-mortems are honest about coverage.
class FlightRecorder {
 public:
  FlightRecorder(const VirtualClock& clock, std::size_t capacity)
      : clock_(&clock), capacity_(capacity == 0 ? 1 : capacity) {}

  void record(FlightEventKind kind, const std::string& name,
              std::int64_t a = 0, std::int64_t b = 0);

  const std::deque<FlightEvent>& events() const { return events_; }
  std::uint64_t recorded() const { return recorded_; }
  std::uint64_t evicted() const { return evicted_; }
  std::size_t capacity() const { return capacity_; }

 private:
  const VirtualClock* clock_;
  std::size_t capacity_;
  std::deque<FlightEvent> events_;
  std::uint64_t recorded_ = 0;
  std::uint64_t evicted_ = 0;
};

// A frozen snapshot: what the ring + tracer + registry knew at the
// moment an enclave was lost / promoted / restarted.
struct PostMortem {
  std::uint64_t seq = 0;  // per-run snapshot ordinal (deterministic)
  std::string enclave;
  std::string reason;  // "enclave_lost" | "promotion" | "restart" | ...
  Cycles at = 0;
  std::uint64_t ring_recorded = 0;
  std::uint64_t ring_evicted = 0;
  // Caller-supplied context (authority epoch, pending queue depth, ...),
  // kept in insertion order.
  std::vector<std::pair<std::string, std::string>> extra;
  std::vector<FlightEvent> events;  // the frozen ring, oldest first
  // Tracer tail: the most recent spans at snapshot time, names resolved
  // (the bundle must stay self-contained — no interning table needed).
  struct SpanTail {
    std::string name;
    const char* category = "";
    std::int32_t tenant = -1;
    std::uint64_t tid = 0;
    Cycles start = 0;
    Cycles end = 0;
    bool open = true;
  };
  std::vector<SpanTail> recent_spans;
  // Registry snapshot: canonical key -> rendered value. Histograms render
  // as count/sum/p99 so latency shape survives into the post-mortem.
  std::vector<std::pair<std::string, std::string>> metrics;
};

// The per-Env registry of recorders plus the snapshot archive. Attach to
// Telemetry (set_flight) to arm; instrumentation sites reach it through
// telemetry.flight() with a single pointer test.
class FlightBus {
 public:
  explicit FlightBus(Telemetry& telemetry, std::size_t ring_capacity = 256,
                     std::size_t span_tail = 32);

  FlightBus(const FlightBus&) = delete;
  FlightBus& operator=(const FlightBus&) = delete;

  // Creates the ring on first use (deterministic: keyed by name).
  FlightRecorder& recorder(const std::string& enclave);
  // nullptr when the enclave never recorded anything.
  const FlightRecorder* find(const std::string& enclave) const;

  // Freezes `enclave`'s ring (plus tracer tail + metrics snapshot) into
  // the archive. Safe to call for a name that never recorded — forensics
  // must not depend on the victim having been chatty.
  const PostMortem& snapshot(
      const std::string& enclave, const std::string& reason,
      std::vector<std::pair<std::string, std::string>> extra = {});

  const std::vector<PostMortem>& post_mortems() const { return archive_; }

  // The whole archive as one self-contained JSON bundle (escaped,
  // parseable, byte-deterministic). `hz` stamps the clock rate so the
  // bundle needs no companion file.
  std::string bundle_json(double hz) const;

  // Counters msv_flight_events_total / msv_flight_postmortems into `m`.
  void publish(MetricsRegistry& m) const;

  std::size_t ring_capacity() const { return ring_capacity_; }

 private:
  Telemetry* telemetry_;
  std::size_t ring_capacity_;
  std::size_t span_tail_;
  std::map<std::string, FlightRecorder> recorders_;
  std::vector<PostMortem> archive_;
  std::uint64_t next_seq_ = 1;
};

}  // namespace msv::telemetry
