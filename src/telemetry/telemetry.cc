#include "telemetry/telemetry.h"

#include <algorithm>
#include <bit>

#include "support/error.h"

namespace msv::telemetry {

const char* category_name(Category c) {
  switch (c) {
    case Category::kBridge:
      return "bridge";
    case Category::kTcs:
      return "tcs";
    case Category::kSwitchless:
      return "switchless";
    case Category::kRmi:
      return "rmi";
    case Category::kGc:
      return "gc";
    case Category::kEpc:
      return "epc";
    case Category::kSched:
      return "sched";
    case Category::kServer:
      return "server";
    case Category::kFault:
      return "fault";
    case Category::kFleet:
      return "fleet";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Bridge-call category registry

const std::vector<CallPrefix>& registered_call_prefixes() {
  // Match order matters: more specific prefixes first. Every bridge call
  // the repo registers today is covered; msvlint MSV008 flags relays that
  // would fall through (transform/transformer.cc names relays, so the
  // "ecall_relay_" / "ocall_relay_" rows are the ones it leans on).
  static const std::vector<CallPrefix> kPrefixes = {
      {"ecall_multi_gc_", Category::kGc},
      {"ocall_multi_gc_", Category::kGc},
      {"ecall_gc_", Category::kGc},
      {"ocall_gc_", Category::kGc},
      {"ecall_relay_", Category::kRmi},
      {"ocall_relay_", Category::kRmi},
      {"ecall_rmi_batch", Category::kRmi},
      {"ocall_rmi_batch", Category::kRmi},
      {"ecall_multi_rmi_batch", Category::kRmi},
      {"ecall_", Category::kBridge},  // ecall_main, ecall_invoke, ...
      {"ocall_", Category::kBridge},  // shim I/O relays
  };
  return kPrefixes;
}

std::vector<std::string> registered_call_prefix_strings() {
  std::vector<std::string> out;
  for (const CallPrefix& p : registered_call_prefixes()) {
    out.emplace_back(p.prefix);
  }
  return out;
}

bool category_for_call(const std::string& call_name, Category* out) {
  for (const CallPrefix& p : registered_call_prefixes()) {
    if (call_name.rfind(p.prefix, 0) == 0) {
      if (out != nullptr) *out = p.category;
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Histogram

std::size_t Histogram::bucket_index(std::uint64_t value) {
  constexpr unsigned kExactBits = kSubBits + 1;
  if (value < (1ull << kExactBits)) return static_cast<std::size_t>(value);
  const unsigned n = std::bit_width(value);  // position of highest set bit + 1
  const unsigned shift = n - kExactBits;
  const std::size_t sub =
      static_cast<std::size_t>((value >> shift) - (1ull << kSubBits));
  return (1u << kExactBits) +
         static_cast<std::size_t>(n - kExactBits - 1) * (1u << kSubBits) + sub;
}

std::uint64_t Histogram::bucket_upper_bound(std::size_t index) {
  constexpr unsigned kExactBits = kSubBits + 1;
  if (index < (1u << kExactBits)) return index;
  const std::size_t rel = index - (1u << kExactBits);
  const std::size_t octave = rel >> kSubBits;
  const std::size_t sub = rel & ((1u << kSubBits) - 1);
  const unsigned shift = static_cast<unsigned>(octave) + 1;
  return (((1ull << kSubBits) + sub + 1) << shift) - 1;
}

void Histogram::record(std::uint64_t value) {
  const std::size_t index = bucket_index(value);
  if (index >= buckets_.size()) buckets_.resize(index + 1, 0);
  ++buckets_[index];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

std::uint64_t Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  if (q <= 0) return min();
  if (q >= 1) return max_;
  // Rank of the q-th quantile, 1-based; walk buckets until we pass it.
  const std::uint64_t rank = static_cast<std::uint64_t>(q * count_) + 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) return std::min(bucket_upper_bound(i), max_);
  }
  return max_;
}

// ---------------------------------------------------------------------------
// MetricsRegistry

std::string render_metric_key(const std::string& name, const LabelSet& labels) {
  if (labels.empty()) return name;
  LabelSet sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key = name;
  key += '{';
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) key += ',';
    key += sorted[i].first;
    key += "=\"";
    key += sorted[i].second;
    key += '"';
  }
  key += '}';
  return key;
}

MetricsRegistry::Entry& MetricsRegistry::resolve(const std::string& name,
                                                 const LabelSet& labels,
                                                 Kind kind) {
  const std::string key = render_metric_key(name, labels);
  auto [it, inserted] = entries_.try_emplace(key);
  Entry& e = it->second;
  if (inserted) {
    e.name = name;
    e.labels = labels;
    std::sort(e.labels.begin(), e.labels.end());
    e.kind = kind;
  } else {
    MSV_CHECK_MSG(e.kind == kind,
                  "metric '" + key + "' registered with two different types");
  }
  return e;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const LabelSet& labels) {
  return resolve(name, labels, Kind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const LabelSet& labels) {
  return resolve(name, labels, Kind::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const LabelSet& labels) {
  return resolve(name, labels, Kind::kHistogram).histogram;
}

const MetricsRegistry::Entry* MetricsRegistry::find(
    const std::string& name, const LabelSet& labels) const {
  const auto it = entries_.find(render_metric_key(name, labels));
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<std::pair<std::string, const MetricsRegistry::Entry*>>
MetricsRegistry::sorted_entries() const {
  std::vector<std::pair<std::string, const Entry*>> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) out.emplace_back(key, &entry);
  return out;
}

// ---------------------------------------------------------------------------
// Tracer

void Tracer::configure(TraceMode mode, CategoryMask categories,
                       std::size_t max_spans) {
  full_ = mode == TraceMode::kFull;
  categories_ = categories;
  max_spans_ = max_spans;
}

std::uint32_t Tracer::intern(const std::string& name) {
  const auto it = name_ids_.find(name);
  if (it != name_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.push_back(name);
  name_ids_.emplace(name, id);
  return id;
}

const std::string& Tracer::name(std::uint32_t id) const {
  MSV_CHECK(id < names_.size());
  return names_[id];
}

void Tracer::set_thread_name(std::uint64_t tid, const std::string& name) {
  thread_names_[tid] = name;
}

std::uint32_t Tracer::alloc_record(std::uint64_t trace_id,
                                   std::uint64_t span_id,
                                   std::uint64_t parent_id, Category c,
                                   std::uint32_t name, std::int32_t tenant,
                                   std::uint64_t tid) {
  if (spans_.size() >= max_spans_) {
    ++dropped_;
    ++dropped_by_category_[static_cast<std::size_t>(c)];
    return kNoIndex;
  }
  SpanRecord r;
  r.trace_id = trace_id;
  r.span_id = span_id;
  r.parent_id = parent_id;
  r.name = name;
  r.category = c;
  r.tenant = tenant;
  r.tid = tid;
  r.start = clock_->now();
  r.end = r.start;
  spans_.push_back(r);
  return static_cast<std::uint32_t>(spans_.size() - 1);
}

void Tracer::open_span(std::uint64_t trace_id, std::uint64_t parent_id,
                       Category c, std::uint32_t name, std::int32_t tenant) {
  const std::uint64_t tid = current_tid();
  const std::uint64_t span_id = next_span_id_++;
  if (trace_id == 0) trace_id = span_id;  // roots start a fresh trace
  const std::uint32_t index =
      alloc_record(trace_id, span_id, parent_id, c, name, tenant, tid);
  stacks_[tid].push_back(Frame{index, name, span_id, trace_id});
}

std::vector<std::uint32_t> Tracer::stack_names(std::uint64_t tid) const {
  std::vector<std::uint32_t> out;
  const auto it = stacks_.find(tid);
  if (it == stacks_.end()) return out;
  out.reserve(it->second.size());
  for (const Frame& f : it->second) out.push_back(f.name);
  return out;
}

void Tracer::begin_span(Category c, std::uint32_t name, std::int32_t tenant) {
  const std::uint64_t tid = current_tid();
  std::uint64_t trace_id = 0;
  std::uint64_t parent_id = 0;
  const auto it = stacks_.find(tid);
  if (it != stacks_.end() && !it->second.empty()) {
    trace_id = it->second.back().trace_id;
    parent_id = it->second.back().span_id;
  }
  open_span(trace_id, parent_id, c, name, tenant);
}

void Tracer::begin_span_adopted(const TraceContext& parent, Category c,
                                std::uint32_t name, std::int32_t tenant) {
  if (parent.span_id == 0) {
    begin_span(c, name, tenant);
    return;
  }
  open_span(parent.trace_id, parent.span_id, c, name, tenant);
}

void Tracer::end_span() {
  const std::uint64_t tid = current_tid();
  const auto it = stacks_.find(tid);
  if (it == stacks_.end() || it->second.empty()) return;
  const Frame frame = it->second.back();
  it->second.pop_back();
  if (it->second.empty()) stacks_.erase(it);
  if (frame.index != kNoIndex) {
    SpanRecord& r = spans_[frame.index];
    r.end = clock_->now();
    r.open = false;
  }
}

TraceContext Tracer::current_context() const {
  const auto it = stacks_.find(current_tid());
  if (it == stacks_.end() || it->second.empty()) return {};
  return {it->second.back().trace_id, it->second.back().span_id};
}

Tracer::DetachedSpan Tracer::begin_detached(Category c, std::uint32_t name,
                                            std::int32_t tenant) {
  const std::uint64_t span_id = next_span_id_++;
  DetachedSpan d;
  d.ctx = {span_id, span_id};  // detached spans root their own trace
  d.index = alloc_record(span_id, span_id, /*parent_id=*/0, c, name, tenant,
                         current_tid());
  return d;
}

void Tracer::end_detached(const DetachedSpan& span) {
  if (span.index == kNoIndex || span.index >= spans_.size()) return;
  SpanRecord& r = spans_[span.index];
  r.end = clock_->now();
  r.open = false;
}

void Tracer::reset() {
  spans_.clear();
  stacks_.clear();
  dropped_ = 0;
  for (std::uint64_t& d : dropped_by_category_) d = 0;
  next_span_id_ = 1;
}

// ---------------------------------------------------------------------------
// Telemetry facade

Telemetry::Telemetry(const VirtualClock& clock)
    : clock_(&clock), tracer_(clock) {
  names_.tcs_wait = tracer_.intern("tcs.wait");
  names_.swl_ring = tracer_.intern("swl.ring");
  names_.swl_serve = tracer_.intern("swl.serve");
  names_.fiber_sleep = tracer_.intern("fiber.sleep");
  names_.epc_page_in = tracer_.intern("epc.page_in");
  names_.epc_page_out = tracer_.intern("epc.page_out");
  names_.gc_collect = tracer_.intern("gc.collect");
  names_.gc_roots = tracer_.intern("gc.roots");
  names_.gc_copy = tracer_.intern("gc.copy");
  names_.gc_weak = tracer_.intern("gc.weak");
  names_.gc_pause = tracer_.intern("gc.pause");
  names_.rmi_invoke = tracer_.intern("rmi.invoke");
  names_.rmi_construct = tracer_.intern("rmi.construct");
  names_.rmi_dispatch = tracer_.intern("rmi.dispatch");
  names_.rmi_batch = tracer_.intern("rmi.batch");
  names_.request = tracer_.intern("request");
  names_.server_handle = tracer_.intern("server.handle");
  names_.fault_inject = tracer_.intern("fault.inject");
  names_.enclave_restart = tracer_.intern("enclave.restart");
  names_.rmi_retry = tracer_.intern("rmi.retry");
  names_.fleet_request = tracer_.intern("fleet.request");
  names_.fleet_failover = tracer_.intern("fleet.failover");
  names_.fleet_promote = tracer_.intern("fleet.promote");
  names_.fleet_restore = tracer_.intern("fleet.restore");
  names_.fleet_migrate = tracer_.intern("fleet.migrate");
}

void Telemetry::configure(const TraceConfig& config) {
  config_ = config;
  tracer_.configure(config.mode, config.categories, config.max_spans);
}

}  // namespace msv::telemetry
