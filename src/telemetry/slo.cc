#include "telemetry/slo.h"

#include <algorithm>

#include "support/stats.h"

namespace msv::telemetry {

namespace {

// Burn rate of one dimension: bad_rate / budget. A zero budget means any
// bad event is an immediate page — model that as a huge finite burn so
// the fixed-point timeline stays printable.
double dimension_burn(std::uint64_t bad, std::uint64_t total, double budget) {
  if (total == 0 || bad == 0) return 0;
  const double rate = static_cast<double>(bad) / static_cast<double>(total);
  if (budget <= 0) return 1e6;
  return rate / budget;
}

std::uint64_t burn_x100(double burn) {
  const double scaled = burn * 100.0;
  if (scaled >= 1e8) return 100000000;  // clamp: "∞" for zero budgets
  return static_cast<std::uint64_t>(scaled);
}

std::string burn_text(std::uint64_t x100) {
  std::string out = std::to_string(x100 / 100);
  out += '.';
  const std::uint64_t frac = x100 % 100;
  if (frac < 10) out += '0';
  out += std::to_string(frac);
  return out;
}

}  // namespace

const char* health_state_name(HealthState s) {
  switch (s) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kCritical:
      return "critical";
  }
  return "unknown";
}

SloMonitor::SloMonitor(const VirtualClock& clock, const SloConfig& cfg,
                       std::string scope)
    : clock_(&clock), cfg_(cfg), scope_(std::move(scope)) {
  if (cfg_.window_cycles == 0) cfg_.window_cycles = 1;
  if (cfg_.fast_windows == 0) cfg_.fast_windows = 1;
  cfg_.slow_windows = std::max(cfg_.slow_windows, cfg_.fast_windows);
}

void SloMonitor::roll(KeyState& ks) {
  const Cycles now = clock_->now();
  const Cycles aligned = now - now % cfg_.window_cycles;
  if (ks.buckets.empty()) {
    ks.buckets.emplace_back();
    ks.buckets.back().start = aligned;
    return;
  }
  // Age out buckets that fell off the slow window; a jump larger than the
  // whole window (idle gap, epoch bump) drops everything at once rather
  // than materializing the empty buckets in between.
  const Cycles horizon =
      aligned >= static_cast<Cycles>(cfg_.slow_windows - 1) * cfg_.window_cycles
          ? aligned - static_cast<Cycles>(cfg_.slow_windows - 1) *
                          cfg_.window_cycles
          : 0;
  while (!ks.buckets.empty() && ks.buckets.front().start < horizon) {
    ks.buckets.pop_front();
  }
  if (ks.buckets.empty() || ks.buckets.back().start < aligned) {
    // Materialize the skipped-but-in-horizon empty buckets so fast/slow
    // window totals reflect the quiet time (an empty window is evidence
    // of health, not absence of evidence).
    Cycles next = ks.buckets.empty() ? aligned
                                     : ks.buckets.back().start +
                                           cfg_.window_cycles;
    next = std::max(next, horizon);
    for (; next <= aligned; next += cfg_.window_cycles) {
      ks.buckets.emplace_back();
      ks.buckets.back().start = next;
    }
  }
}

SloMonitor::Bucket& SloMonitor::current_bucket(KeyState& ks) {
  roll(ks);
  return ks.buckets.back();
}

SloSnapshot SloMonitor::evaluate_locked(const KeyState& ks) const {
  SloSnapshot snap;
  snap.state = ks.state;
  std::uint64_t fast_completed = 0, fast_slow = 0, fast_shed = 0,
                fast_errors = 0;
  std::uint64_t all_completed = 0, all_slow = 0, all_shed = 0, all_errors = 0;
  Histogram merged;
  const std::size_t n = ks.buckets.size();
  const std::size_t fast_from =
      n > cfg_.fast_windows ? n - cfg_.fast_windows : 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Bucket& b = ks.buckets[i];
    all_completed += b.completed;
    all_slow += b.slow;
    all_shed += b.shed;
    all_errors += b.errors;
    merged.merge(b.latency);
    if (i >= fast_from) {
      fast_completed += b.completed;
      fast_slow += b.slow;
      fast_shed += b.shed;
      fast_errors += b.errors;
    }
  }
  snap.fast_total = fast_completed + fast_shed + fast_errors;
  snap.slow_total = all_completed + all_shed + all_errors;
  snap.window_p99 = merged.quantile(0.99);

  const double fast_burns[3] = {
      dimension_burn(fast_slow, snap.fast_total, cfg_.max_slow_fraction),
      dimension_burn(fast_shed, snap.fast_total, cfg_.max_shed_rate),
      dimension_burn(fast_errors, snap.fast_total, cfg_.max_error_rate)};
  const double slow_burns[3] = {
      dimension_burn(all_slow, snap.slow_total, cfg_.max_slow_fraction),
      dimension_burn(all_shed, snap.slow_total, cfg_.max_shed_rate),
      dimension_burn(all_errors, snap.slow_total, cfg_.max_error_rate)};
  static const char* kDims[3] = {"slow", "shed", "error"};
  std::size_t dominant = 0;
  for (std::size_t d = 0; d < 3; ++d) {
    snap.fast_burn = std::max(snap.fast_burn, fast_burns[d]);
    snap.slow_burn = std::max(snap.slow_burn, slow_burns[d]);
    if (fast_burns[d] > fast_burns[dominant]) dominant = d;
  }
  snap.dominant = snap.fast_burn > 0 ? kDims[dominant] : "none";
  return snap;
}

void SloMonitor::transition(std::uint32_t key, KeyState& ks,
                            const SloSnapshot& snap) {
  if (snap.fast_total < cfg_.min_samples) return;  // withhold judgement
  const double paging = std::min(snap.fast_burn, snap.slow_burn);
  HealthState next = ks.state;
  if (paging >= cfg_.critical_burn) {
    next = HealthState::kCritical;
  } else if (paging >= cfg_.degraded_burn) {
    // Multi-window rule: escalate, but never de-escalate from critical on
    // a reading that still pages at degraded level.
    next = std::max(ks.state, HealthState::kDegraded);
  } else if (snap.fast_burn < cfg_.degraded_burn) {
    // Recovery keys off the fast window alone so a healed shard is
    // readmitted promptly even while the slow window remembers the storm.
    next = HealthState::kHealthy;
  }
  if (next == ks.state) return;
  HealthEvent ev;
  ev.at = clock_->now();
  ev.key = key;
  ev.from = ks.state;
  ev.to = next;
  ev.reason = snap.dominant;
  ev.fast_burn_x100 = burn_x100(snap.fast_burn);
  ev.slow_burn_x100 = burn_x100(snap.slow_burn);
  timeline_.push_back(std::move(ev));
  ks.state = next;
  if (next == HealthState::kDegraded) {
    ++ks.degraded_count;
    if (ks.first_degraded_at == 0) ks.first_degraded_at = clock_->now();
  } else if (next == HealthState::kCritical) {
    ++ks.critical_count;
    if (ks.first_critical_at == 0) ks.first_critical_at = clock_->now();
    if (ks.first_degraded_at == 0) ks.first_degraded_at = clock_->now();
  }
}

void SloMonitor::record_latency(std::uint32_t key, Cycles latency) {
  KeyState& ks = keys_[key];
  Bucket& b = current_bucket(ks);
  ++b.completed;
  b.latency.record(latency);
  if (latency > cfg_.p99_target_cycles) ++b.slow;
  transition(key, ks, evaluate_locked(ks));
}

void SloMonitor::record_shed(std::uint32_t key) {
  KeyState& ks = keys_[key];
  ++current_bucket(ks).shed;
  transition(key, ks, evaluate_locked(ks));
}

void SloMonitor::record_error(std::uint32_t key) {
  KeyState& ks = keys_[key];
  ++current_bucket(ks).errors;
  transition(key, ks, evaluate_locked(ks));
}

void SloMonitor::note_epoch(std::uint32_t key, std::uint64_t epoch) {
  KeyState& ks = keys_[key];
  ks.epoch = epoch;
  // Forgive: the new authority starts with a clean error budget.
  ks.buckets.clear();
  roll(ks);
  HealthEvent ev;
  ev.at = clock_->now();
  ev.key = key;
  ev.from = ks.state;
  ev.to = ks.state;
  ev.reason = "epoch=" + std::to_string(epoch);
  timeline_.push_back(std::move(ev));
}

HealthState SloMonitor::health(std::uint32_t key) {
  return evaluate(key).state;
}

SloSnapshot SloMonitor::evaluate(std::uint32_t key) {
  KeyState& ks = keys_[key];
  roll(ks);
  SloSnapshot snap = evaluate_locked(ks);
  transition(key, ks, snap);
  snap.state = ks.state;
  return snap;
}

Cycles SloMonitor::first_entered(std::uint32_t key, HealthState state) const {
  const auto it = keys_.find(key);
  if (it == keys_.end()) return 0;
  if (state == HealthState::kCritical) return it->second.first_critical_at;
  if (state == HealthState::kDegraded) return it->second.first_degraded_at;
  return 0;
}

std::size_t SloMonitor::keys_at_least(HealthState state) const {
  std::size_t n = 0;
  for (const auto& [key, ks] : keys_) {
    if (ks.state >= state) ++n;
  }
  return n;
}

std::string SloMonitor::report(double hz) const {
  std::string out;
  out += "# msv health report scope=" + scope_ + "\n";
  out += "window_cycles=" + std::to_string(cfg_.window_cycles);
  out += " fast_windows=" + std::to_string(cfg_.fast_windows);
  out += " slow_windows=" + std::to_string(cfg_.slow_windows);
  out += " p99_target_cycles=" + std::to_string(cfg_.p99_target_cycles);
  out += " degraded_burn=" + burn_text(burn_x100(cfg_.degraded_burn));
  out += " critical_burn=" + burn_text(burn_x100(cfg_.critical_burn));
  out += "\n";
  out += "## timeline\n";
  for (const HealthEvent& ev : timeline_) {
    out += "[" + std::to_string(ev.at) + "cy ";
    out += format_seconds(static_cast<double>(ev.at) / hz);
    out += "] " + scope_ + " " + std::to_string(ev.key) + ": ";
    if (ev.from == ev.to) {
      out += ev.reason;  // annotation (epoch bump)
    } else {
      out += std::string(health_state_name(ev.from)) + " -> " +
             health_state_name(ev.to);
      out += " (" + ev.reason + " burn fast=" + burn_text(ev.fast_burn_x100) +
             " slow=" + burn_text(ev.slow_burn_x100) + ")";
    }
    out += "\n";
  }
  out += "## breaches\n";
  for (const auto& [key, ks] : keys_) {
    out += scope_ + " " + std::to_string(key) + ": state=" +
           health_state_name(ks.state);
    out += " degraded=" + std::to_string(ks.degraded_count);
    out += " critical=" + std::to_string(ks.critical_count);
    out += " first_degraded_at=" + std::to_string(ks.first_degraded_at);
    out += " epoch=" + std::to_string(ks.epoch);
    out += "\n";
  }
  return out;
}

void SloMonitor::publish(MetricsRegistry& m) const {
  for (const auto& [key, ks] : keys_) {
    const LabelSet labels = {{scope_, std::to_string(key)}};
    m.gauge("msv_slo_health", labels)
        .set(static_cast<double>(static_cast<std::uint8_t>(ks.state)));
    m.counter("msv_slo_degraded_total", labels).value = ks.degraded_count;
    m.counter("msv_slo_critical_total", labels).value = ks.critical_count;
  }
  m.counter("msv_slo_timeline_events").value = timeline_.size();
}

}  // namespace msv::telemetry
