// Telemetry exporters (DESIGN.md §10): every format is rendered with
// fixed-precision formatting from integer cycle counts, so two runs at
// the same seed produce byte-identical output.
//
//   * chrome_trace_json — Chrome trace_event JSON ("X" complete events),
//     loadable in Perfetto / chrome://tracing. Timestamps are simulated
//     microseconds (cycles / hz * 1e6, 3 decimals); span/trace/parent ids
//     and raw cycle counts ride in args so the causal tree survives the
//     conversion.
//   * folded_stacks — flamegraph.pl / speedscope "folded" text: one line
//     per unique span path with the summed *exclusive* cycles (children
//     subtracted), sorted lexicographically.
//   * prometheus_text — Prometheus exposition text, conformant with the
//     exposition-format spec: # HELP + # TYPE per family, label values
//     escaped (backslash, double-quote, newline), histograms emitting
//     _count, _sum and quantile-labelled lines (0.5 / 0.9 / 0.99 /
//     0.999), which tools/bench_to_json folds into BENCH_*.json.
#pragma once

#include <string>

#include "telemetry/telemetry.h"

namespace msv::telemetry {

std::string chrome_trace_json(const Tracer& tracer, double hz);

std::string folded_stacks(const Tracer& tracer);

std::string prometheus_text(const MetricsRegistry& metrics);

// Help text for a metric family (the # HELP line). Families this repo
// exports get a curated line; anything else a deterministic fallback.
std::string metric_help(const std::string& name);

// An ASCII rendering of the recorded spans of one trace tree (indent =
// depth, bar = position/extent on the simulated timeline). The
// "Perfetto screenshot equivalent" used by EXPERIMENTS.md and handy in
// test failure output. trace_id = 0 renders every trace.
std::string ascii_trace(const Tracer& tracer, double hz,
                        std::uint64_t trace_id = 0,
                        std::size_t max_lines = 80);

}  // namespace msv::telemetry
